(** Whole-system simulation harness for Ben-Or runs.

    Spawns [n] engine processes, each running either the decomposed
    (template-driven) or the monolithic consensus; injects crash faults on
    a virtual-time schedule; records every object observation through a
    {!Consensus.Monitor}; and reports decisions, message counts and
    property violations. *)

type mode = Decomposed | Monolithic

type config = {
  n : int;
  faults : int;  (** the resilience parameter t; crash budget, [2t < n] *)
  seed : int64;
  latency : Netsim.Latency.t;
  inputs : bool array;  (** length [n] *)
  crash_schedule : (int * int) list;
      (** [(virtual_time, pid)]: crash pid at that time *)
  policy : Messages.t Netsim.Async_net.envelope -> Netsim.Async_net.policy_verdict;
  mode : mode;
  max_rounds : int;
  common_coin : float option;
      (** [Some agreement] swaps the private-coin reconciliator for a weak
          common coin with that per-round agreement probability *)
  oracle : Dsim.Engine.oracle option;
      (** installed on the engine before any process spawns; [Some _]
          hands delivery order, message delays and drop decisions to a
          schedule explorer (see [lib/mcheck]).  [None] (the default)
          keeps the seeded-RNG behaviour. *)
}

val default_config : n:int -> inputs:bool array -> config
(** [t = (n-1)/2], seed 1, uniform 1–10 latency, no crashes, decomposed
    mode, 500 round cap. *)

type report = {
  decisions : (int * bool * int) list;  (** (pid, value, deciding round) *)
  engine_outcome : Dsim.Engine.outcome;
  virtual_time : int;  (** time of the last processed event *)
  messages_sent : int;
  messages_delivered : int;
  max_decision_round : int;  (** 0 when nobody decided *)
  crashed : int list;  (** pids actually crashed during the run *)
  process_failures : (int * exn) list;  (** uncaught protocol exceptions *)
  violations : Consensus.Monitor.violation list;
      (** VAC-object + consensus-property violations found by the monitor *)
  adopt_overruled : bool;
      (** true when some processor received [(adopt, u)] in some round yet
          the run decided [¬u] — the paper's Section-5 scenario showing why
          a commit-on-second-AC reading of such rounds would break
          agreement *)
  trace : Dsim.Trace.t;
      (** the run's structured trace (bounded to the newest ~10k events);
          read with {!Dsim.Trace.events} / {!Dsim.Trace.last} *)
}

val run : config -> report
(** Execute one simulation to quiescence (or deadlock — reported, never
    raised). *)

val all_decided_same : report -> expected_live:int -> bool
(** True when exactly [expected_live] processors decided and on a single
    common value. *)
