module Engine = Dsim.Engine
module Async_net = Netsim.Async_net
module Bool_monitor = Consensus.Monitor.Make (Consensus.Objects.Bool_value)

type mode = Decomposed | Monolithic

type config = {
  n : int;
  faults : int;
  seed : int64;
  latency : Netsim.Latency.t;
  inputs : bool array;
  crash_schedule : (int * int) list;
  policy : Messages.t Async_net.envelope -> Async_net.policy_verdict;
  mode : mode;
  max_rounds : int;
  common_coin : float option;
  oracle : Dsim.Engine.oracle option;
}

let default_config ~n ~inputs =
  {
    n;
    faults = (n - 1) / 2;
    seed = 1L;
    latency = Netsim.Latency.Uniform (1, 10);
    inputs;
    crash_schedule = [];
    policy = (fun _ -> Async_net.Deliver);
    mode = Decomposed;
    max_rounds = 500;
    common_coin = None;
    oracle = None;
  }

type report = {
  decisions : (int * bool * int) list;
  engine_outcome : Engine.outcome;
  virtual_time : int;
  messages_sent : int;
  messages_delivered : int;
  max_decision_round : int;
  crashed : int list;
  process_failures : (int * exn) list;
  violations : Consensus.Monitor.violation list;
  adopt_overruled : bool;
  trace : Dsim.Trace.t;
}

let run config =
  if Array.length config.inputs <> config.n then
    invalid_arg "Ben_or.Runner.run: inputs length must equal n";
  if 2 * config.faults >= config.n then
    invalid_arg "Ben_or.Runner.run: requires 2t < n";
  let eng = Engine.create ~seed:config.seed ~trace_capacity:10_000 () in
  Engine.set_oracle eng config.oracle;
  let net =
    Async_net.create eng ~n:config.n ~latency:config.latency ~policy:config.policy
      ~retain_inbox:false ()
  in
  let monitor = Bool_monitor.create () in
  let decisions = ref [] in
  let coin =
    Option.map
      (fun agreement ->
        Common_coin.create ~rng:(Dsim.Rng.split (Engine.rng eng)) ~agreement)
      config.common_coin
  in
  let pids = Array.make config.n (-1) in
  for i = 0 to config.n - 1 do
    Bool_monitor.record_initial monitor ~pid:i config.inputs.(i);
    let body ctx =
      let pctx =
        Protocol.make_ctx ?coin ~net ~me:i ~faults:config.faults
          ~rng:ctx.Engine.rng ()
      in
      let base_observer = Bool_monitor.observer monitor ~pid:i in
      let observer =
        {
          base_observer with
          Consensus.Template.on_decide =
            (fun ~round v ->
              base_observer.Consensus.Template.on_decide ~round v;
              decisions := (i, v, round) :: !decisions);
        }
      in
      let consensus =
        match config.mode with
        | Decomposed -> Protocol.Consensus_decomposed.consensus
        | Monolithic -> Protocol.monolithic_consensus
      in
      let (_ : bool * int) =
        consensus ~max_rounds:config.max_rounds ~observer pctx config.inputs.(i)
      in
      ()
    in
    pids.(i) <- Engine.spawn eng ~name:(Printf.sprintf "benor-%d" i) body
  done;
  let crashed = ref [] in
  List.iter
    (fun (time, victim) ->
      if victim < 0 || victim >= config.n then
        invalid_arg "Ben_or.Runner.run: crash_schedule pid out of range";
      Engine.schedule eng ~delay:time (fun () ->
          if Engine.alive eng pids.(victim) then begin
            crashed := victim :: !crashed;
            Async_net.crash net victim;
            Engine.kill eng pids.(victim)
          end))
    config.crash_schedule;
  let engine_outcome = Engine.run eng in
  let process_failures =
    List.filter_map
      (fun i ->
        match Engine.process_failed eng pids.(i) with
        | Some exn -> Some (i, exn)
        | None -> None)
      (List.init config.n Fun.id)
  in
  let violations =
    Bool_monitor.check_vac monitor @ Bool_monitor.check_consensus monitor
  in
  let decisions = List.rev !decisions in
  let adopt_overruled =
    match decisions with
    | [] -> false
    | (_, final, _) :: _ ->
        List.exists
          (fun round ->
            List.exists
              (fun (_pid, out) ->
                match out with
                | Consensus.Types.Adopt u -> not (Bool.equal u final)
                | Consensus.Types.Vacillate _ | Consensus.Types.Commit _ -> false)
              (Bool_monitor.outputs monitor ~round))
          (Bool_monitor.rounds monitor)
  in
  {
    decisions;
    engine_outcome;
    virtual_time = Engine.now eng;
    messages_sent = Async_net.messages_sent net;
    messages_delivered = Async_net.messages_delivered net;
    max_decision_round =
      List.fold_left (fun acc (_, _, r) -> max acc r) 0 decisions;
    crashed = List.rev !crashed;
    process_failures;
    violations;
    adopt_overruled;
    trace = Engine.trace eng;
  }

let all_decided_same report ~expected_live =
  List.length report.decisions = expected_live
  &&
  match report.decisions with
  | [] -> expected_live = 0
  | (_, v0, _) :: rest -> List.for_all (fun (_, v, _) -> Bool.equal v v0) rest
