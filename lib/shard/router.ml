type t = { shards : int }

let create ~shards =
  if shards < 1 then invalid_arg "Router.create: need at least one shard";
  { shards }

let shards t = t.shards

(* FNV-1a 64-bit: stable across OCaml versions, unlike Hashtbl.hash. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

let shard_of_key t key = fnv1a key mod t.shards

let slice t wops =
  let tbl : (int, Cmd.wop list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun w ->
      let s = shard_of_key t (Cmd.wop_key w) in
      match Hashtbl.find_opt tbl s with
      | Some l -> l := w :: !l
      | None -> Hashtbl.replace tbl s (ref [ w ]))
    wops;
  Hashtbl.fold (fun s l acc -> (s, List.rev !l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let make_tx t ~txid wops =
  if wops = [] then invalid_arg "Router.make_tx: empty transaction";
  let ops = slice t wops in
  { Cmd.txid; participants = List.map fst ops; ops }

let coordinator (tx : Cmd.tx) =
  match tx.participants with
  | p :: _ -> p
  | [] -> invalid_arg "Router.coordinator: no participants"
