type tx_status = Prepared | Committed | Aborted

type tx_entry = {
  status : tx_status;
  buffered : Cmd.wop list;  (* this shard's slice, held while Prepared *)
}

type output =
  | O_kv of Obj.Kv.resp
  | O_vote of bool
  | O_decided of bool
  | O_outcome of bool

type t = {
  shard : int;
  kv : (string, string) Hashtbl.t;
  txs : (int, tx_entry) Hashtbl.t;
  locks : (string, int) Hashtbl.t;  (* key -> holding txid *)
}

let create ~shard =
  {
    shard;
    kv = Hashtbl.create 64;
    txs = Hashtbl.create 32;
    locks = Hashtbl.create 32;
  }

let shard t = t.shard
let lookup t k = Hashtbl.find_opt t.kv k
let locked_keys t = Hashtbl.length t.locks

let tx_status t txid =
  Option.map (fun e -> e.status) (Hashtbl.find_opt t.txs txid)

let apply_kv t (c : Obj.Kv.op) : Obj.Kv.resp =
  match c with
  | Get k -> Got (Hashtbl.find_opt t.kv k)
  | Set (k, v) ->
      Hashtbl.replace t.kv k v;
      Done
  | Cas { key; expect; update } ->
      if Hashtbl.find_opt t.kv key = expect then begin
        Hashtbl.replace t.kv key update;
        Cas_result true
      end
      else Cas_result false

let apply_wop t = function
  | Cmd.W_set (k, v) -> Hashtbl.replace t.kv k v
  | Cmd.W_add (k, d) ->
      let cur =
        match Hashtbl.find_opt t.kv k with
        | Some v -> ( try int_of_string v with _ -> 0)
        | None -> 0
      in
      Hashtbl.replace t.kv k (string_of_int (cur + d))

let my_slice t (tx : Cmd.tx) =
  match List.assoc_opt t.shard tx.ops with Some w -> w | None -> []

let unlock t txid wops =
  List.iter
    (fun w ->
      let k = Cmd.wop_key w in
      match Hashtbl.find_opt t.locks k with
      | Some holder when holder = txid -> Hashtbl.remove t.locks k
      | _ -> ())
    wops

(* Resolve a Prepared transaction with the given decision; the fenced
   paths (no buffered prepare) are handled by the callers. *)
let settle t txid entry commit =
  if commit then List.iter (apply_wop t) entry.buffered;
  unlock t txid entry.buffered;
  Hashtbl.replace t.txs txid
    { status = (if commit then Committed else Aborted); buffered = [] }

let apply_prepare t (tx : Cmd.tx) =
  match Hashtbl.find_opt t.txs tx.txid with
  | Some { status = Prepared; _ } -> O_vote true
  | Some { status = Committed; _ } | Some { status = Aborted; _ } ->
      (* fenced: the decision beat the prepare here; too late to lock *)
      O_vote false
  | None ->
      let slice = my_slice t tx in
      let keys = List.sort_uniq compare (List.map Cmd.wop_key slice) in
      let conflict =
        List.exists
          (fun k ->
            match Hashtbl.find_opt t.locks k with
            | Some holder -> holder <> tx.txid
            | None -> false)
          keys
      in
      if conflict || slice = [] then begin
        (* vote no (a prepare with no local ops is malformed routing) *)
        Hashtbl.replace t.txs tx.txid { status = Aborted; buffered = [] };
        O_vote false
      end
      else begin
        List.iter (fun k -> Hashtbl.replace t.locks k tx.txid) keys;
        Hashtbl.replace t.txs tx.txid { status = Prepared; buffered = slice };
        O_vote true
      end

let apply_decision t txid commit mk =
  match Hashtbl.find_opt t.txs txid with
  | Some ({ status = Prepared; _ } as e) ->
      settle t txid e commit;
      mk commit
  | Some { status = Committed; _ } -> mk true
  | Some { status = Aborted; _ } -> mk false
  | None ->
      (* fence: remember the decision so a late prepare votes no *)
      Hashtbl.replace t.txs txid
        { status = (if commit then Committed else Aborted); buffered = [] };
      mk commit

let apply t (c : Cmd.t) =
  match c with
  | Kv kc -> O_kv (apply_kv t kc)
  | Prepare tx -> apply_prepare t tx
  | Decide { txid; commit } -> apply_decision t txid commit (fun c -> O_decided c)
  | Outcome { txid; commit } ->
      apply_decision t txid commit (fun c -> O_outcome c)

(* {2 Serialization} — single line, counted tokens, %S-quoted strings
   (same discipline as {!Cmd}'s codec); everything emitted in sorted
   order so replicas in equal states produce byte-equal strings. *)

let status_char = function Prepared -> 'P' | Committed -> 'C' | Aborted -> 'A'

let status_of_char = function
  | 'P' -> Prepared
  | 'C' -> Committed
  | 'A' -> Aborted
  | c -> invalid_arg (Printf.sprintf "Machine.restore: bad status %c" c)

let serialize t =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int t.shard);
  let kvs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.kv []
    |> List.sort compare
  in
  Buffer.add_string b (Printf.sprintf " %d" (List.length kvs));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %S %S" k v))
    kvs;
  let txs =
    Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.txs []
    |> List.sort compare
  in
  Buffer.add_string b (Printf.sprintf " %d" (List.length txs));
  List.iter
    (fun (id, e) ->
      Buffer.add_string b
        (Printf.sprintf " %d %c %d" id (status_char e.status)
           (List.length e.buffered));
      List.iter
        (fun w ->
          Buffer.add_char b ' ';
          Buffer.add_string b (Cmd.wop_to_string w))
        e.buffered)
    txs;
  Buffer.contents b

let digest = serialize
let snapshot = serialize

let restore s =
  let ib = Scanf.Scanning.from_string s in
  let int () = Scanf.bscanf ib " %d" Fun.id in
  let str () = Scanf.bscanf ib " %S" Fun.id in
  let shard = int () in
  let t = create ~shard in
  let nkv = int () in
  for _ = 1 to nkv do
    let k = str () in
    let v = str () in
    Hashtbl.replace t.kv k v
  done;
  let ntx = int () in
  for _ = 1 to ntx do
    let id = int () in
    let st = Scanf.bscanf ib " %c" status_of_char in
    let nw = int () in
    let buffered =
      List.init nw (fun _ ->
          Scanf.bscanf ib " %c" (fun tag ->
              match tag with
              | 'S' -> Scanf.bscanf ib " %S %S" (fun k v -> Cmd.W_set (k, v))
              | 'A' -> Scanf.bscanf ib " %S %d" (fun k d -> Cmd.W_add (k, d))
              | c ->
                  invalid_arg
                    (Printf.sprintf "Machine.restore: bad wop tag %c" c)))
    in
    Hashtbl.replace t.txs id { status = st; buffered };
    if st = Prepared then
      List.iter
        (fun w -> Hashtbl.replace t.locks (Cmd.wop_key w) id)
        buffered
  done;
  t

let pp_output ppf = function
  | O_kv _ -> Format.fprintf ppf "kv"
  | O_vote v -> Format.fprintf ppf "vote:%b" v
  | O_decided c -> Format.fprintf ppf "decided:%s" (if c then "commit" else "abort")
  | O_outcome c -> Format.fprintf ppf "outcome:%s" (if c then "commit" else "abort")
