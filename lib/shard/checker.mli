(** Cross-shard atomicity monitor — the transaction-level companion to
    the per-shard {!Rsm.Checker} total-order monitor.

    Record what the shards' logs actually applied (votes as prepares
    apply, outcomes as decides/outcomes settle) and then ask for
    violations.  Safety properties, checked by {!check}:

    - {b vote consistency}: a shard never records two different votes
      for the same transaction (replicas of one shard are covered by
      slot agreement; this catches cross-recording bugs);
    - {b outcome agreement}: no transaction commits at one participant
      and aborts at another — the atomicity clause of 2PC;
    - {b commit requires unanimous yes}: a transaction with any
      committed outcome must have a recorded {e yes} vote from every
      participant — the property the deliberately broken
      commit-without-quorum coordinator violates;
    - {b no spurious participants}: votes/outcomes only from declared
      participant shards.

    {!check_complete} separately demands that every started transaction
    reached an outcome at every participant — a liveness claim that
    only holds for drained runs, exactly like
    {!Rsm.Checker.check_complete}. *)

type violation = {
  property : string;
  txid : int;
  shard : int option;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

type t

val create : unit -> t

val record_tx : t -> txid:int -> participants:int list -> unit
(** Declare a transaction and its participant set (idempotent). *)

val record_vote : t -> txid:int -> shard:int -> vote:bool -> unit
(** A prepare applied at [shard] and voted [vote].  Duplicate
    recordings with the same polarity are idempotent; a conflicting
    duplicate is kept and flagged by {!check}. *)

val record_outcome : t -> txid:int -> shard:int -> committed:bool -> unit
(** A decide/outcome settled the transaction at [shard] with the given
    canonical status.  Conflicting duplicates are flagged. *)

val txs_started : t -> int
val committed : t -> int
(** Transactions with at least one committed outcome and no conflict. *)

val aborted : t -> int

val check : t -> violation list
val check_complete : t -> violation list
