(** The sharded run: N consensus {!Group}s in one engine, a {!Router}
    splitting the keyspace, two-phase commit over the logs for
    multi-key transactions, and a client layer sized for tens of
    thousands of simulated clients.

    {b 2PC over consensus.}  Every protocol record is a replicated
    command (see {!Cmd}): a coordinator submits [Prepare tx] (carrying
    the {e full} transaction) to every participant shard, collects the
    votes as they {e apply} — votes are deterministic functions of each
    shard's lock table, so the log is the source of truth — then
    submits [Decide] to the coordinator shard (the first applied decide
    for a txid is canonical) and fans [Outcome] records out to the
    other participants.  Because every step is readable from the logs,
    a crashed coordinator's transactions are finished by a periodic
    {e recovery daemon} that re-derives the next step from the recorded
    votes/decision — the coordinator keeps no state that matters.

    {b Clients.}  Pure callback state machines (no polling fibers):
    closed-loop clients issue their next operation when the previous
    completes; open-loop clients issue on a seeded exponential arrival
    process regardless of completion.  Completion is push-based via
    {!Group}'s [on_ready].

    {b Checking.}  Each group carries its own {!Rsm.Checker} (per-shard
    total order + durability audit); the cross-shard {!Checker} judges
    atomicity over the recorded votes and outcomes. *)

type faults = {
  engine : Dsim.Engine.t;
  crash : shard:int -> replica:int -> unit;
  restart : shard:int -> replica:int -> unit;
  partition : shard:int -> int list list -> unit;
  heal : shard:int -> unit;
  set_policy :
    shard:int ->
    (Cmd.t Rsm.Tob.entry Netsim.Async_net.envelope ->
    Netsim.Async_net.policy_verdict) ->
    unit;
  set_store_policy : shard:int -> Store.Policy.t -> unit;
}

type client_op =
  | Single of Obj.Kv.op  (** routed to one shard, no coordination *)
  | Tx of Cmd.wop list  (** multi-key write set, 2PC when it spans shards *)

type arrival =
  | Closed_loop of { think : int }
  | Open_loop of { mean_gap : float }

(** Test hook: simulate the coordinator dying at a protocol stage (the
    transaction is then finished by the recovery daemon, from the
    logs). *)
type crash_point = No_crash | After_prepare | After_decide

type config = {
  shards : int;
  replicas : int;  (** per shard *)
  backend : Rsm.Backend.t;
  batch : int;
  seed : int64;
  latency : Netsim.Latency.t;
  ops : client_op list array;  (** one list per client *)
  arrival : arrival;
  ack_timeout : int;
  max_events : int;
  store : Rsm.Runner.store_config option;
  inject : (faults -> unit) option;
  trace_capacity : int option;
  quiet : bool;
  broken_2pc : bool;
      (** mutant: the coordinator decides {e commit} on the first yes
          vote without waiting for the full prepare quorum — the bug
          {!Checker}'s commit-quorum property exists to catch *)
  coordinator_crash : int -> crash_point;  (** keyed by txid *)
  recovery_interval : int;
  recovery_timeout : int;
      (** a transaction idle this long is adopted by the recovery
          daemon *)
}

val default_config : shards:int -> ops:client_op list array -> config

type shard_report = {
  sr_shard : int;
  sr_violations : Rsm.Checker.violation list;
  sr_completeness : Rsm.Checker.violation list;
  sr_durability : Rsm.Checker.violation list;
  sr_digests_agree : bool;
  sr_digests : string array;
  sr_applied : int;  (** distinct commands applied (shard throughput) *)
  sr_delivered : int array;
  sr_slots : int;
  sr_instances : int;
  sr_messages_sent : int;
  sr_messages_delivered : int;
  sr_crashed : int list;
  sr_restarted : int list;
  sr_store_stats : Store.Disk.stats array;
}

type report = {
  engine_outcome : Dsim.Engine.outcome;
  virtual_time : int;
  singles_submitted : int;
  singles_acked : int;
  txs_started : int;
  txs_committed : int;  (** finished with a commit decision *)
  txs_aborted : int;
  atomicity : Checker.violation list;
  tx_completeness : Checker.violation list;
  shard_reports : shard_report array;
  single_latencies : float list;
  tx_latencies : float list;  (** committed transactions, start→ack *)
  abort_rate : float;
  trace : Dsim.Trace.t;
  groups : Group.t array;
  router : Router.t;
}

val kv_key : Obj.Kv.op -> string
val run : config -> report
