(* One shard's consensus group in a shared engine.  The WAL format,
   recovery rules and snapshot flow are ported from Rsm.Runner (same
   record grammar, Cmd codec instead of the kv one), so a shard's
   crash–recovery behaviour is exactly the single-group model's. *)

type wal_item = W_entry of int * int * Cmd.t | W_commit of int * int

let encode_entry slot (e : Cmd.t Rsm.Tob.entry) =
  Printf.sprintf "E %d %d %s" slot e.Rsm.Tob.cid (Cmd.to_string e.Rsm.Tob.op)

let encode_commit slot winner = Printf.sprintf "C %d %d" slot winner

let decode_record s =
  if String.length s > 0 && s.[0] = 'C' then
    Scanf.sscanf s "C %d %d" (fun slot w -> W_commit (slot, w))
  else
    Scanf.sscanf s "E %d %d %[^\n]" (fun slot cid rest ->
        W_entry (slot, cid, Cmd.of_string rest))

let encode_snapshot ~upto ~state ~cids =
  Printf.sprintf "%d\n%s\n%s" upto state
    (String.concat "," (List.map string_of_int cids))

let decode_snapshot payload =
  match String.split_on_char '\n' payload with
  | upto :: state :: cids :: _ ->
      ( int_of_string upto,
        state,
        if cids = "" then []
        else List.map int_of_string (String.split_on_char ',' cids) )
  | _ -> invalid_arg "Group: malformed snapshot payload"

type recovered_disk = {
  r_snap : (int * string * int list) option;
  r_slots : (int * int * Cmd.t Rsm.Tob.entry list) list;
  r_next_slot : int;
  r_cids : int list;
}

let recover_disk disk =
  let r_snap =
    Option.map
      (fun s -> decode_snapshot s.Store.Disk.payload)
      (Store.Disk.latest_snapshot disk)
  in
  let base_slot = match r_snap with Some (upto, _, _) -> upto | None -> -1 in
  let entries : (int, Cmd.t Rsm.Tob.entry list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let committed : (int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (r : Store.Disk.record) ->
      match decode_record r.Store.Disk.data with
      | W_entry (slot, cid, op) when slot > base_slot ->
          let l =
            match Hashtbl.find_opt entries slot with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace entries slot l;
                l
          in
          if
            not
              (List.exists (fun (e : _ Rsm.Tob.entry) -> e.Rsm.Tob.cid = cid) !l)
          then l := !l @ [ { Rsm.Tob.cid; op } ]
      | W_commit (slot, w) when slot > base_slot ->
          if not (Hashtbl.mem committed slot) then Hashtbl.replace committed slot w
      | W_entry _ | W_commit _ -> ())
    (Store.Disk.read_back disk);
  let entries_of slot =
    match Hashtbl.find_opt entries slot with Some l -> !l | None -> []
  in
  let r_slots =
    Hashtbl.fold (fun slot w acc -> (slot, w, entries_of slot) :: acc) committed []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let rec prefix_end s = if Hashtbl.mem committed s then prefix_end (s + 1) else s in
  let r_next_slot = prefix_end (base_slot + 1) in
  let cid_set = Hashtbl.create 64 in
  (match r_snap with
  | Some (_, _, cids) -> List.iter (fun c -> Hashtbl.replace cid_set c ()) cids
  | None -> ());
  List.iter
    (fun (slot, _, es) ->
      if slot < r_next_slot then
        List.iter
          (fun (e : _ Rsm.Tob.entry) -> Hashtbl.replace cid_set e.Rsm.Tob.cid ())
          es)
    r_slots;
  let r_cids =
    Hashtbl.fold (fun c _ acc -> c :: acc) cid_set [] |> List.sort compare
  in
  { r_snap; r_slots; r_next_slot; r_cids }

type t = {
  engine : Dsim.Engine.t;
  shard : int;
  n : int;
  net : Cmd.t Rsm.Tob.entry Netsim.Async_net.t;
  log : Cmd.t Rsm.Tob.entry Rsm.Log.t;
  mutable tob : Cmd.t Rsm.Tob.t option;
  machines : Machine.t array;
  checker : Rsm.Checker.t;
  policy_ref :
    (Cmd.t Rsm.Tob.entry Netsim.Async_net.envelope ->
    Netsim.Async_net.policy_verdict)
    ref;
  (* stable storage (empty arrays when store = None) *)
  store_on : bool;
  scfg : Rsm.Runner.store_config;
  store_policy_ref : Store.Policy.t ref;
  disks : Store.Disk.t array;
  durable_cids : (int, unit) Hashtbl.t;
  awaiting : int list array;
  last_seq : int array;
  nonempty_slots : int array;
  (* completion plumbing *)
  first_output : (int, Machine.output) Hashtbl.t;  (* cid -> first result *)
  readied : (int, unit) Hashtbl.t;
  on_first_apply : cid:int -> Cmd.t -> Machine.output -> unit;
  on_ready : cid:int -> unit;
  mutable crashed_acc : int list;
  mutable restarted_acc : int list;
}

let the_tob t = Option.get t.tob
let shard t = t.shard
let replicas t = t.n
let is_crashed t r = Netsim.Async_net.is_crashed t.net r

let live t =
  List.filter (fun p -> not (is_crashed t p)) (List.init t.n Fun.id)

(* a cid is ready once applied somewhere and, under honest durable
   acks, hardened on some disk *)
let ready_now t cid =
  Hashtbl.mem t.first_output cid
  && ((not t.store_on) || t.scfg.ack_before_fsync || Hashtbl.mem t.durable_cids cid)

let fire_ready t cid =
  if (not (Hashtbl.mem t.readied cid)) && ready_now t cid then begin
    Hashtbl.replace t.readied cid ();
    Dsim.Engine.schedule t.engine ~delay:0 (fun () -> t.on_ready ~cid)
  end

let mark_durable t cids =
  List.iter (fun c -> Hashtbl.replace t.durable_cids c ()) cids;
  List.iter (fun c -> fire_ready t c) cids

let retry_delay = 17

let rec flush t pid epoch0 () =
  let disk = t.disks.(pid) in
  if Store.Disk.epoch disk = epoch0 && not (is_crashed t pid) then begin
    let batch = t.awaiting.(pid) in
    match Store.Disk.fsync disk ~k:(fun () -> mark_durable t batch) with
    | Ok () -> t.awaiting.(pid) <- []
    | Error `Io_error ->
        Dsim.Engine.schedule t.engine ~delay:retry_delay (flush t pid epoch0)
  end

let rec log_slot t pid slot fresh epoch0 () =
  let disk = t.disks.(pid) in
  if Store.Disk.epoch disk = epoch0 && not (is_crashed t pid) then begin
    let append s =
      match Store.Disk.append disk s with
      | Ok seq ->
          t.last_seq.(pid) <- seq;
          true
      | Error `Io_error -> false
    in
    let winner =
      match Rsm.Log.decided t.log ~slot with
      | Some d -> d.Rsm.Log.winner
      | None -> pid
    in
    if
      List.for_all (fun e -> append (encode_entry slot e)) fresh
      && append (encode_commit slot winner)
    then begin
      t.awaiting.(pid) <-
        t.awaiting.(pid)
        @ List.map (fun (e : _ Rsm.Tob.entry) -> e.Rsm.Tob.cid) fresh;
      if fresh <> [] then flush t pid epoch0 ()
    end
    else
      Dsim.Engine.schedule t.engine ~delay:retry_delay
        (log_slot t pid slot fresh epoch0)
  end

let take_snapshot t pid ~upto =
  let disk = t.disks.(pid) in
  let state = Machine.snapshot t.machines.(pid) in
  let cids = Rsm.Tob.delivered_cids (the_tob t) ~pid in
  let payload = encode_snapshot ~upto ~state ~cids in
  let watermark = t.last_seq.(pid) in
  let flying = t.awaiting.(pid) in
  t.awaiting.(pid) <- [];
  match
    Store.Disk.save_snapshot disk ~upto payload ~k:(fun () ->
        Store.Disk.compact disk ~upto_seq:watermark;
        mark_durable t flying;
        Rsm.Log.set_floor t.log ~owner:pid ~upto ~state ~cids)
  with
  | Ok () -> ()
  | Error `Io_error -> t.awaiting.(pid) <- flying

let create ~engine ~shard ~replicas:n ~backend ~seed
    ?(latency = Netsim.Latency.Uniform (1, 10)) ~batch ?store ~on_first_apply
    ~on_ready () =
  if n < 1 then invalid_arg "Group.create: need at least one replica";
  let policy_ref = ref (fun _ -> Netsim.Async_net.Deliver) in
  let net =
    Netsim.Async_net.create engine ~n ~latency
      ~policy:(fun env -> !policy_ref env)
      ~retain_inbox:false ()
  in
  let store_on = store <> None in
  let scfg = Option.value store ~default:Rsm.Runner.default_store_config in
  let store_policy_ref = ref scfg.Rsm.Runner.policy in
  let t =
    {
      engine;
      shard;
      n;
      net;
      log =
        (let live () =
           List.filter
             (fun p -> not (Netsim.Async_net.is_crashed net p))
             (List.init n Fun.id)
         in
         Rsm.Log.create ~engine ~backend ~seed ~live
           ~view:(Rsm.Log.majority_view ~net ~live) ());
      tob = None;
      machines = Array.init n (fun _ -> Machine.create ~shard);
      checker = Rsm.Checker.create ();
      policy_ref;
      store_on;
      scfg;
      store_policy_ref;
      disks =
        (if store_on then
           Array.init n (fun pid ->
               Store.Disk.create ~engine ~pid
                 ~policy:(fun () -> !store_policy_ref)
                 ())
         else [||]);
      durable_cids = Hashtbl.create 64;
      awaiting = Array.make n [];
      last_seq = Array.make n (-1);
      nonempty_slots = Array.make n 0;
      first_output = Hashtbl.create 256;
      readied = Hashtbl.create 256;
      on_first_apply;
      on_ready;
      crashed_acc = [];
      restarted_acc = [];
    }
  in
  let deliver ~pid ~slot (e : Cmd.t Rsm.Tob.entry) =
    let out = Machine.apply t.machines.(pid) e.Rsm.Tob.op in
    Rsm.Checker.record_applied t.checker ~replica:pid ~slot ~cid:e.Rsm.Tob.cid;
    if not (Hashtbl.mem t.first_output e.Rsm.Tob.cid) then begin
      Hashtbl.replace t.first_output e.Rsm.Tob.cid out;
      let cid = e.Rsm.Tob.cid and op = e.Rsm.Tob.op in
      Dsim.Engine.schedule t.engine ~delay:0 (fun () ->
          t.on_first_apply ~cid op out);
      fire_ready t cid
    end
  in
  let on_slot_applied ~pid ~slot ~fresh =
    if t.store_on && not (is_crashed t pid) then begin
      log_slot t pid slot fresh (Store.Disk.epoch t.disks.(pid)) ();
      if fresh <> [] then begin
        t.nonempty_slots.(pid) <- t.nonempty_slots.(pid) + 1;
        if
          t.scfg.snapshot_every > 0
          && t.nonempty_slots.(pid) mod t.scfg.snapshot_every = 0
        then take_snapshot t pid ~upto:slot
      end
    end
  in
  let on_install ~pid ~owner ~upto ~state ~cids =
    t.machines.(pid) <- Machine.restore state;
    Rsm.Checker.record_installed t.checker ~replica:pid ~from_replica:owner
      ~upto_slot:upto;
    Dsim.Engine.emitk engine ~tag:"shard" (fun () ->
        Printf.sprintf "shard %d replica %d installed snapshot upto %d from %d"
          t.shard pid upto owner);
    if t.store_on then begin
      let payload = encode_snapshot ~upto ~state ~cids in
      let watermark = t.last_seq.(pid) in
      match
        Store.Disk.save_snapshot t.disks.(pid) ~upto payload ~k:(fun () ->
            Store.Disk.compact t.disks.(pid) ~upto_seq:watermark)
      with
      | Ok () | Error `Io_error -> ()
    end
  in
  t.tob <-
    Some
      (Rsm.Tob.create ~engine ~net ~log:t.log ~batch ~deliver ~on_slot_applied
         ~on_install ());
  t

let submit t ?(attempt = 0) ~cid op =
  Rsm.Checker.record_submitted t.checker ~cid;
  let rec pick j =
    if j >= t.n then None
    else
      let r = (cid + attempt + j) mod t.n in
      if is_crashed t r then pick (j + 1) else Some r
  in
  match pick 0 with
  | None -> false
  | Some r -> Rsm.Tob.submit (the_tob t) ~replica:r { Rsm.Tob.cid; op }

let crash t victim =
  if not (is_crashed t victim) then begin
    Netsim.Async_net.crash t.net victim;
    Dsim.Engine.kill t.engine (Rsm.Tob.process (the_tob t) victim);
    if t.store_on then begin
      Rsm.Tob.crash (the_tob t) victim;
      Store.Disk.crash t.disks.(victim);
      t.awaiting.(victim) <- [];
      let rd = recover_disk t.disks.(victim) in
      Rsm.Checker.record_crashed t.checker ~replica:victim
        ~survived:(List.length rd.r_cids);
      if live t = [] then Rsm.Log.forget_volatile t.log
    end;
    t.crashed_acc <- victim :: t.crashed_acc;
    Dsim.Engine.emitk t.engine ~tag:"shard" (fun () ->
        Printf.sprintf "shard %d crashed replica %d" t.shard victim)
  end

let restart t victim =
  if is_crashed t victim then begin
    Netsim.Async_net.restart t.net victim;
    if t.store_on then begin
      let rd = recover_disk t.disks.(victim) in
      (match rd.r_snap with
      | Some (_, state, _) -> t.machines.(victim) <- Machine.restore state
      | None -> t.machines.(victim) <- Machine.create ~shard:t.shard);
      (match rd.r_snap with
      | Some (upto, state, cids) -> Rsm.Log.set_floor t.log ~owner:victim ~upto ~state ~cids
      | None -> ());
      List.iter
        (fun (slot, _w, entries) ->
          if slot < rd.r_next_slot then
            List.iter
              (fun (e : _ Rsm.Tob.entry) ->
                ignore
                  (Machine.apply t.machines.(victim) e.Rsm.Tob.op
                    : Machine.output))
              entries)
        rd.r_slots;
      List.iter
        (fun (slot, w, entries) ->
          Rsm.Log.reseed t.log ~slot ~winner:w ~batch:entries)
        rd.r_slots;
      Rsm.Tob.restart (the_tob t)
        ~recovery:
          { Rsm.Tob.next_slot = rd.r_next_slot; delivered_cids = rd.r_cids }
        victim
    end
    else Rsm.Tob.restart (the_tob t) victim;
    t.restarted_acc <- victim :: t.restarted_acc;
    Dsim.Engine.emitk t.engine ~tag:"shard" (fun () ->
        Printf.sprintf "shard %d restarted replica %d" t.shard victim)
  end

let partition t groups = Netsim.Async_net.set_partition t.net groups
let heal t = Netsim.Async_net.heal t.net
let set_policy t p = t.policy_ref := p
let set_store_policy t p = t.store_policy_ref := p
let record_acked t ~cid = Rsm.Checker.record_acked t.checker ~cid
let stop t = Rsm.Tob.stop (the_tob t)
let violations t = Rsm.Checker.check t.checker
let completeness t = Rsm.Checker.check_complete t.checker ~live:(live t)
let durability t = Rsm.Checker.check_durable t.checker ~live:(live t)
let digests t = Array.map Machine.digest t.machines

let digests_agree t =
  let ds = digests t in
  match List.map (fun p -> ds.(p)) (live t) with
  | [] -> true
  | d :: rest -> List.for_all (( = ) d) rest

let delivered t =
  Array.init t.n (fun pid -> Rsm.Tob.delivered_count (the_tob t) ~pid)

let applied_unique t = Hashtbl.length t.first_output
let slots t = Rsm.Log.decided_count t.log
let instances t = Rsm.Log.instances_total t.log
let messages_sent t = Netsim.Async_net.messages_sent t.net
let messages_delivered t = Netsim.Async_net.messages_delivered t.net
let crashed_list t = List.rev t.crashed_acc
let restarted_list t = List.rev t.restarted_acc
let store_stats t = Array.map Store.Disk.stats t.disks
let machine t r = t.machines.(r)
