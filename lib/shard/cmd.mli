(** Commands replicated through a shard's consensus log.

    A shard group totally orders values of {!t}: plain key-value
    commands ([Kv]) plus the three two-phase-commit record kinds.  The
    2PC records being ordinary log entries is the whole point of the
    design — prepare votes, the commit/abort decision and the final
    outcomes are replicated and recovered exactly like data commands,
    so a crashed coordinator's transactions are finished from the logs
    rather than from anyone's memory.

    {b Command-id scheme.}  Every submission carries a [cid] the TOB
    layer de-duplicates on.  A transaction id packs the issuing client
    in the high bits ([txid = client lsl 20 lor seq], the same scheme
    {!Rsm.Runner} uses for plain commands); the cids of the records a
    transaction spawns are [txid * 8 + tag] with a distinct tag per
    record kind {e and} decision polarity, so a commit-decide and an
    abort-decide for the same transaction never collide while identical
    re-submissions still deduplicate. *)

(** A write operation inside a transaction ([W_add] is the bank
    example's increment — it makes transfer conservation checkable). *)
type wop = W_set of string * string | W_add of string * int

type tx = {
  txid : int;
  participants : int list;  (** sorted shard ids; head coordinates *)
  ops : (int * wop list) list;
      (** the full transaction, sliced per participant shard — carried
          in every [Prepare] so recovery can finish the transaction
          from any one participant's log *)
}

type t =
  | Kv of Obj.Kv.op  (** single-shard, coordination-free *)
  | Prepare of tx  (** participant votes by applying this *)
  | Decide of { txid : int; commit : bool }
      (** coordinator-shard record; the {e first} applied decide for a
          txid is the canonical decision *)
  | Outcome of { txid : int; commit : bool }
      (** propagates the decision to the other participants *)

val wop_key : wop -> string

(** {1 Command ids} *)

val base : client:int -> seq:int -> int
(** Also the [txid] when the operation is a transaction. *)

val kv_cid : client:int -> seq:int -> int
val prepare_cid : txid:int -> int
val decide_cid : txid:int -> commit:bool -> int
val outcome_cid : txid:int -> commit:bool -> int

(** What a cid was for, recovered from its tag bits. *)
type cid_kind =
  | K_kv
  | K_prepare of int  (** txid *)
  | K_decide of int * bool  (** txid, polarity *)
  | K_outcome of int * bool

val kind_of_cid : int -> cid_kind

(** {1 Codec} — total one-line encodings for WAL records, mirroring
    {!Obj.Kv.op_to_string}. *)

val wop_to_string : wop -> string
val wop_of_string : string -> wop
val to_string : t -> string

val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
