type wop = W_set of string * string | W_add of string * int

type tx = {
  txid : int;
  participants : int list;
  ops : (int * wop list) list;
}

type t =
  | Kv of Obj.Kv.op
  | Prepare of tx
  | Decide of { txid : int; commit : bool }
  | Outcome of { txid : int; commit : bool }

let wop_key = function W_set (k, _) -> k | W_add (k, _) -> k

(* {2 Command ids}

   base = client in the high bits, per-client sequence low (the Runner
   scheme); sub-command cids append a 3-bit tag so every record kind a
   transaction spawns has its own dedup identity. *)

let base ~client ~seq = (client lsl 20) lor seq
let kv_cid ~client ~seq = base ~client ~seq * 8
let prepare_cid ~txid = (txid * 8) + 1
let decide_cid ~txid ~commit = (txid * 8) + if commit then 2 else 3
let outcome_cid ~txid ~commit = (txid * 8) + if commit then 4 else 5

type cid_kind =
  | K_kv
  | K_prepare of int
  | K_decide of int * bool
  | K_outcome of int * bool

let kind_of_cid cid =
  let b = cid / 8 in
  match cid land 7 with
  | 0 -> K_kv
  | 1 -> K_prepare b
  | 2 -> K_decide (b, true)
  | 3 -> K_decide (b, false)
  | 4 -> K_outcome (b, true)
  | 5 -> K_outcome (b, false)
  | _ -> invalid_arg (Printf.sprintf "Cmd.kind_of_cid: unknown tag in %d" cid)

(* {2 Codec} — single line, space-separated tokens, strings %S-quoted
   (which escapes any embedded newline, keeping WAL records one per
   line). *)

let wop_to_string = function
  | W_set (k, v) -> Printf.sprintf "S %S %S" k v
  | W_add (k, d) -> Printf.sprintf "A %S %d" k d

let wop_of_string s =
  if String.length s > 0 && s.[0] = 'A' then
    Scanf.sscanf s "A %S %d" (fun k d -> W_add (k, d))
  else Scanf.sscanf s "S %S %S" (fun k v -> W_set (k, v))

let encode_tx b tx =
  Buffer.add_string b (string_of_int tx.txid);
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int (List.length tx.participants));
  List.iter
    (fun p ->
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int p))
    tx.participants;
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int (List.length tx.ops));
  List.iter
    (fun (shard, wops) ->
      Buffer.add_string b
        (Printf.sprintf " %d %d" shard (List.length wops));
      List.iter
        (fun w ->
          Buffer.add_char b ' ';
          Buffer.add_string b (wop_to_string w))
        wops)
    tx.ops

let to_string = function
  | Kv c -> "K " ^ Obj.Kv.op_to_string c
  | Decide { txid; commit } ->
      Printf.sprintf "D %d %d" txid (if commit then 1 else 0)
  | Outcome { txid; commit } ->
      Printf.sprintf "O %d %d" txid (if commit then 1 else 0)
  | Prepare tx ->
      let b = Buffer.create 64 in
      Buffer.add_string b "P ";
      encode_tx b tx;
      Buffer.contents b

let decode_tx ib =
  let int () = Scanf.bscanf ib " %d" Fun.id in
  let txid = int () in
  let np = int () in
  let participants = List.init np (fun _ -> int ()) in
  let nslices = int () in
  let ops =
    List.init nslices (fun _ ->
        let shard = int () in
        let nw = int () in
        let wops =
          List.init nw (fun _ ->
              Scanf.bscanf ib " %c" (fun tag ->
                  match tag with
                  | 'S' ->
                      Scanf.bscanf ib " %S %S" (fun k v -> W_set (k, v))
                  | 'A' -> Scanf.bscanf ib " %S %d" (fun k d -> W_add (k, d))
                  | c ->
                      invalid_arg
                        (Printf.sprintf "Cmd.of_string: bad wop tag %c" c)))
        in
        (shard, wops))
  in
  { txid; participants; ops }

let of_string s =
  if String.length s < 2 then invalid_arg ("Cmd.of_string: " ^ s)
  else
    let rest = String.sub s 2 (String.length s - 2) in
    match s.[0] with
    | 'K' -> Kv (Obj.Kv.op_of_string rest)
    | 'D' ->
        Scanf.sscanf rest "%d %d" (fun txid c ->
            Decide { txid; commit = c = 1 })
    | 'O' ->
        Scanf.sscanf rest "%d %d" (fun txid c ->
            Outcome { txid; commit = c = 1 })
    | 'P' -> Prepare (decode_tx (Scanf.Scanning.from_string rest))
    | _ -> invalid_arg ("Cmd.of_string: " ^ s)

let pp ppf = function
  | Kv c -> Format.fprintf ppf "Kv(%a)" Obj.Kv.pp_op c
  | Prepare tx ->
      Format.fprintf ppf "Prepare(tx=%d,[%s])" tx.txid
        (String.concat "," (List.map string_of_int tx.participants))
  | Decide { txid; commit } ->
      Format.fprintf ppf "Decide(tx=%d,%s)" txid
        (if commit then "commit" else "abort")
  | Outcome { txid; commit } ->
      Format.fprintf ppf "Outcome(tx=%d,%s)" txid
        (if commit then "commit" else "abort")
