(** The per-shard replicated state machine: a key-value store plus the
    transaction table 2PC needs.

    Deterministic by construction — votes are a pure function of the
    lock table, so every replica of a shard records the same vote for
    the same prepare, and the vote can be read off the log by anyone
    (which is what makes coordinator recovery possible).

    Rules enforced here (the commit protocol's participant side):
    - [Prepare tx]: if the transaction is already fenced
      (decided/aborted) or any of its keys is locked by another live
      prepare, vote {b no} (recording the transaction as aborted —
      no waiting, so there is no distributed deadlock); otherwise lock
      its keys, buffer its ops and vote {b yes}.
    - [Decide]/[Outcome] with a buffered prepare: apply the ops on
      commit, drop them on abort, release the locks either way.  The
      {e first} decision applied for a txid is canonical; later
      conflicting records are no-ops that report the canonical status.
    - [Decide]/[Outcome] with {e no} buffered prepare: fence the txid
      with the decision so a late prepare votes no.  Nothing is
      applied — which is exactly the atomicity breach the cross-shard
      checker flags if a commit ever takes this path. *)

type tx_status = Prepared | Committed | Aborted

type output =
  | O_kv of Obj.Kv.resp
  | O_vote of bool  (** this shard's vote on the prepare *)
  | O_decided of bool  (** canonical decision after this decide *)
  | O_outcome of bool  (** canonical per-shard outcome after this record *)

type t

val create : shard:int -> t
val shard : t -> int

val apply : t -> Cmd.t -> output
(** Deterministic; a [Prepare] applies only this shard's slice. *)

val lookup : t -> string -> string option
val tx_status : t -> int -> tx_status option
val locked_keys : t -> int

val digest : t -> string
(** Canonical (sorted) serialization; equal iff states equal. *)

val snapshot : t -> string
(** Single-line serialization of the full state (kv, transaction table,
    buffered ops, locks); [digest (restore (snapshot t)) = digest t]. *)

val restore : string -> t
val pp_output : Format.formatter -> output -> unit
