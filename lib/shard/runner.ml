type faults = {
  engine : Dsim.Engine.t;
  crash : shard:int -> replica:int -> unit;
  restart : shard:int -> replica:int -> unit;
  partition : shard:int -> int list list -> unit;
  heal : shard:int -> unit;
  set_policy :
    shard:int ->
    (Cmd.t Rsm.Tob.entry Netsim.Async_net.envelope ->
    Netsim.Async_net.policy_verdict) ->
    unit;
  set_store_policy : shard:int -> Store.Policy.t -> unit;
}

type client_op = Single of Obj.Kv.op | Tx of Cmd.wop list

type arrival =
  | Closed_loop of { think : int }
  | Open_loop of { mean_gap : float }

type crash_point = No_crash | After_prepare | After_decide

type config = {
  shards : int;
  replicas : int;
  backend : Rsm.Backend.t;
  batch : int;
  seed : int64;
  latency : Netsim.Latency.t;
  ops : client_op list array;
  arrival : arrival;
  ack_timeout : int;
  max_events : int;
  store : Rsm.Runner.store_config option;
  inject : (faults -> unit) option;
  trace_capacity : int option;
  quiet : bool;
  broken_2pc : bool;
  coordinator_crash : int -> crash_point;
  recovery_interval : int;
  recovery_timeout : int;
}

let default_config ~shards ~ops =
  {
    shards;
    replicas = 3;
    backend = Rsm.Backend.ben_or;
    batch = 16;
    seed = 1L;
    latency = Netsim.Latency.Uniform (1, 10);
    ops;
    arrival = Closed_loop { think = 10 };
    ack_timeout = 2_000;
    max_events = 20_000_000;
    store = None;
    inject = None;
    trace_capacity = None;
    quiet = true;
    broken_2pc = false;
    coordinator_crash = (fun _ -> No_crash);
    recovery_interval = 500;
    recovery_timeout = 1_500;
  }

type shard_report = {
  sr_shard : int;
  sr_violations : Rsm.Checker.violation list;
  sr_completeness : Rsm.Checker.violation list;
  sr_durability : Rsm.Checker.violation list;
  sr_digests_agree : bool;
  sr_digests : string array;
  sr_applied : int;
  sr_delivered : int array;
  sr_slots : int;
  sr_instances : int;
  sr_messages_sent : int;
  sr_messages_delivered : int;
  sr_crashed : int list;
  sr_restarted : int list;
  sr_store_stats : Store.Disk.stats array;
}

type report = {
  engine_outcome : Dsim.Engine.outcome;
  virtual_time : int;
  singles_submitted : int;
  singles_acked : int;
  txs_started : int;
  txs_committed : int;
  txs_aborted : int;
  atomicity : Checker.violation list;
  tx_completeness : Checker.violation list;
  shard_reports : shard_report array;
  single_latencies : float list;
  tx_latencies : float list;
  abort_rate : float;
  trace : Dsim.Trace.t;
  groups : Group.t array;
  router : Router.t;
}

let kv_key : Obj.Kv.op -> string = function
  | Get k -> k
  | Set (k, _) -> k
  | Cas { key; _ } -> key

(* Per-transaction runtime record.  Everything that matters for safety
   is re-derivable from the group logs (votes, decision, outcomes); the
   mutable fields below are driver bookkeeping, which is why an
   [abandoned] transaction — simulating a dead coordinator — can still
   be finished by the recovery daemon. *)
type tx_rt = {
  tx : Cmd.tx;
  coord : int;
  started_at : int;
  mutable votes : (int * bool) list;  (* shard -> recorded vote *)
  mutable decision : bool option;  (* canonical, from the coord log *)
  mutable ready : (int * int) list;  (* shard -> ready record cid *)
  mutable tdone : bool;
  mutable abandoned : bool;
  mutable last_activity : int;
  mutable attempt : int;
}

type single_rt = {
  s_shard : int;
  s_cmd : Cmd.t;
  s_started_at : int;
  mutable s_done : bool;
  mutable s_attempt : int;
}

let run cfg =
  if cfg.shards < 1 then invalid_arg "Shard.Runner.run: need at least one shard";
  let eng =
    Dsim.Engine.create ~seed:cfg.seed ?trace_capacity:cfg.trace_capacity
      ~tracing:(not cfg.quiet) ()
  in
  let router = Router.create ~shards:cfg.shards in
  let xchecker = Checker.create () in
  let txs : (int, tx_rt) Hashtbl.t = Hashtbl.create 256 in
  let unfinished : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let singles : (int, single_rt) Hashtbl.t = Hashtbl.create 1024 in
  let clients = Array.length cfg.ops in
  let total_ops = Array.fold_left (fun a l -> a + List.length l) 0 cfg.ops in
  let completed = ref 0 in
  let singles_acked = ref 0 in
  let txs_committed = ref 0 in
  let txs_aborted = ref 0 in
  let single_latencies = ref [] in
  let tx_latencies = ref [] in
  let groups_ref = ref [||] in
  let group s = !groups_ref.(s) in
  let now () = Dsim.Engine.now eng in
  (* closed-loop continuation, filled in by the client layer below *)
  let op_completed_hook = ref (fun (_client : int) -> ()) in

  (* {2 2PC driver} *)
  let submit_decide trt commit =
    let txid = trt.tx.Cmd.txid in
    trt.attempt <- trt.attempt + 1;
    ignore
      (Group.submit (group trt.coord) ~attempt:trt.attempt
         ~cid:(Cmd.decide_cid ~txid ~commit)
         (Cmd.Decide { txid; commit })
        : bool)
  in
  let submit_outcomes trt commit =
    let txid = trt.tx.Cmd.txid in
    List.iter
      (fun s ->
        if s <> trt.coord && not (List.mem_assoc s trt.ready) then begin
          trt.attempt <- trt.attempt + 1;
          ignore
            (Group.submit (group s) ~attempt:trt.attempt
               ~cid:(Cmd.outcome_cid ~txid ~commit)
               (Cmd.Outcome { txid; commit })
              : bool)
        end)
      trt.tx.Cmd.participants
  in
  let submit_prepare trt s =
    let txid = trt.tx.Cmd.txid in
    trt.attempt <- trt.attempt + 1;
    ignore
      (Group.submit (group s) ~attempt:trt.attempt ~cid:(Cmd.prepare_cid ~txid)
         (Cmd.Prepare trt.tx)
        : bool)
  in
  (* Re-derive the next protocol step from what the logs recorded so
     far.  Idempotent (cids de-duplicate), so the per-tx retry timer,
     the event handlers and the recovery daemon can all call it. *)
  let reconcile trt =
    if not trt.tdone then begin
      trt.last_activity <- now ();
      match trt.decision with
      | None ->
          let missing =
            List.filter
              (fun s -> not (List.mem_assoc s trt.votes))
              trt.tx.Cmd.participants
          in
          if missing = [] then
            submit_decide trt (List.for_all snd trt.votes)
          else List.iter (fun s -> submit_prepare trt s) missing
      | Some commit ->
          if not (List.mem_assoc trt.coord trt.ready) then
            submit_decide trt commit;
          submit_outcomes trt commit
    end
  in
  let finalize trt =
    if not trt.tdone then begin
      trt.tdone <- true;
      Hashtbl.remove unfinished trt.tx.Cmd.txid;
      let commit = Option.value trt.decision ~default:false in
      if commit then begin
        incr txs_committed;
        tx_latencies :=
          float_of_int (now () - trt.started_at) :: !tx_latencies
      end
      else incr txs_aborted;
      (* durability obligations: the records this ack relies on *)
      List.iter
        (fun s ->
          Group.record_acked (group s)
            ~cid:(Cmd.prepare_cid ~txid:trt.tx.Cmd.txid))
        trt.tx.Cmd.participants;
      List.iter (fun (s, cid) -> Group.record_acked (group s) ~cid) trt.ready;
      incr completed;
      let client = trt.tx.Cmd.txid lsr 20 in
      !op_completed_hook client
    end
  in
  let check_finalize trt =
    if
      (not trt.tdone)
      && trt.decision <> None
      && List.for_all
           (fun s -> List.mem_assoc s trt.ready)
           trt.tx.Cmd.participants
    then finalize trt
  in

  (* {2 Group event dispatch} *)
  let on_first_apply s ~cid op (out : Machine.output) =
    ignore cid;
    match (op, out) with
    | Cmd.Prepare tx, Machine.O_vote v -> (
        Checker.record_vote xchecker ~txid:tx.Cmd.txid ~shard:s ~vote:v;
        match Hashtbl.find_opt txs tx.Cmd.txid with
        | None -> ()
        | Some trt ->
            trt.last_activity <- now ();
            if not (List.mem_assoc s trt.votes) then
              trt.votes <- (s, v) :: trt.votes;
            if trt.decision = None && not trt.abandoned then
              if cfg.broken_2pc && v then
                (* the deliberate bug: commit on the first yes vote *)
                submit_decide trt true
              else if
                List.for_all
                  (fun p -> List.mem_assoc p trt.votes)
                  trt.tx.Cmd.participants
              then begin
                submit_decide trt (List.for_all snd trt.votes);
                if cfg.coordinator_crash tx.Cmd.txid = After_decide then
                  trt.abandoned <- true
              end)
    | Cmd.Decide { txid; _ }, Machine.O_decided canonical -> (
        Checker.record_outcome xchecker ~txid ~shard:s ~committed:canonical;
        match Hashtbl.find_opt txs txid with
        | None -> ()
        | Some trt ->
            trt.last_activity <- now ();
            if trt.decision = None then trt.decision <- Some canonical;
            if not trt.abandoned then submit_outcomes trt canonical)
    | Cmd.Outcome { txid; _ }, Machine.O_outcome c -> (
        Checker.record_outcome xchecker ~txid ~shard:s ~committed:c;
        match Hashtbl.find_opt txs txid with
        | None -> ()
        | Some trt ->
            trt.last_activity <- now ();
            if trt.decision = None then trt.decision <- Some c)
    | Cmd.Kv _, _ -> ()
    | _, _ -> ()
  in
  let on_ready s ~cid =
    match Cmd.kind_of_cid cid with
    | Cmd.K_kv -> (
        match Hashtbl.find_opt singles cid with
        | Some srt when not srt.s_done ->
            srt.s_done <- true;
            Group.record_acked (group srt.s_shard) ~cid;
            incr singles_acked;
            single_latencies :=
              float_of_int (now () - srt.s_started_at) :: !single_latencies;
            incr completed;
            !op_completed_hook ((cid / 8) lsr 20)
        | _ -> ())
    | Cmd.K_prepare _ -> ()
    | Cmd.K_decide (txid, _) | Cmd.K_outcome (txid, _) -> (
        match Hashtbl.find_opt txs txid with
        | None -> ()
        | Some trt ->
            trt.last_activity <- now ();
            if not (List.mem_assoc s trt.ready) then
              trt.ready <- (s, cid) :: trt.ready;
            check_finalize trt)
  in
  let seed_of_shard s =
    Int64.add cfg.seed (Int64.mul (Int64.of_int (s + 1)) 0x9E3779B97F4A7C15L)
  in
  groups_ref :=
    Array.init cfg.shards (fun s ->
        Group.create ~engine:eng ~shard:s ~replicas:cfg.replicas
          ~backend:cfg.backend ~seed:(seed_of_shard s) ~latency:cfg.latency
          ~batch:cfg.batch ?store:cfg.store
          ~on_first_apply:(fun ~cid op out -> on_first_apply s ~cid op out)
          ~on_ready:(fun ~cid -> on_ready s ~cid)
          ());

  (* {2 Launching operations} *)
  let start_single ~client ~seq (kc : Obj.Kv.op) =
    let cid = Cmd.kv_cid ~client ~seq in
    let s = Router.shard_of_key router (kv_key kc) in
    let srt =
      {
        s_shard = s;
        s_cmd = Cmd.Kv kc;
        s_started_at = now ();
        s_done = false;
        s_attempt = 0;
      }
    in
    Hashtbl.replace singles cid srt;
    ignore (Group.submit (group s) ~cid srt.s_cmd : bool);
    let rec retry () =
      if not srt.s_done then begin
        srt.s_attempt <- srt.s_attempt + 1;
        ignore (Group.submit (group s) ~attempt:srt.s_attempt ~cid srt.s_cmd : bool);
        Dsim.Engine.schedule eng ~delay:cfg.ack_timeout retry
      end
    in
    Dsim.Engine.schedule eng ~delay:cfg.ack_timeout retry
  in
  let start_tx ~client ~seq wops =
    let txid = Cmd.base ~client ~seq in
    let tx = Router.make_tx router ~txid wops in
    Checker.record_tx xchecker ~txid ~participants:tx.Cmd.participants;
    let trt =
      {
        tx;
        coord = Router.coordinator tx;
        started_at = now ();
        votes = [];
        decision = None;
        ready = [];
        tdone = false;
        abandoned = false;
        last_activity = now ();
        attempt = 0;
      }
    in
    Hashtbl.replace txs txid trt;
    Hashtbl.replace unfinished txid ();
    List.iter (fun s -> submit_prepare trt s) tx.Cmd.participants;
    (match cfg.coordinator_crash txid with
    | After_prepare -> trt.abandoned <- true
    | No_crash | After_decide -> ());
    let rec retry () =
      if (not trt.tdone) && not trt.abandoned then begin
        reconcile trt;
        Dsim.Engine.schedule eng ~delay:cfg.ack_timeout retry
      end
    in
    Dsim.Engine.schedule eng ~delay:cfg.ack_timeout retry
  in
  let launch ~client ~seq = function
    | Single kc -> start_single ~client ~seq kc
    | Tx wops -> start_tx ~client ~seq wops
  in

  (* {2 Clients} — callback state machines, no fibers. *)
  let queues = Array.map (fun l -> ref l) cfg.ops in
  let seqs = Array.make clients 0 in
  (match cfg.arrival with
  | Closed_loop { think } ->
      let issue_next c =
        match !(queues.(c)) with
        | [] -> ()
        | op :: rest ->
            queues.(c) <- ref rest;
            let seq = seqs.(c) in
            seqs.(c) <- seq + 1;
            launch ~client:c ~seq op
      in
      (op_completed_hook :=
         fun c ->
           if c >= 0 && c < clients then
             Dsim.Engine.schedule eng ~delay:(max 1 think) (fun () ->
                 issue_next c));
      Array.iteri
        (fun c _ ->
          (* stagger the initial herd deterministically *)
          Dsim.Engine.schedule eng ~delay:(c mod 16) (fun () -> issue_next c))
        queues
  | Open_loop { mean_gap } ->
      let master = Dsim.Rng.create cfg.seed in
      Array.iteri
        (fun c ops ->
          let rng = Dsim.Rng.split master in
          let t = ref (c mod 16) in
          List.iteri
            (fun seq op ->
              t :=
                !t
                + max 1
                    (int_of_float (Dsim.Rng.exponential rng ~mean:mean_gap));
              Dsim.Engine.schedule eng ~delay:!t (fun () ->
                  launch ~client:c ~seq op))
            !ops)
        queues);

  (* {2 Recovery daemon} — adopts transactions whose coordinator went
     quiet, finishing them from the recorded log state. *)
  let finished = ref false in
  let rec daemon () =
    if not !finished then begin
      let stale =
        Hashtbl.fold (fun txid () acc -> txid :: acc) unfinished []
        |> List.sort compare
      in
      List.iter
        (fun txid ->
          match Hashtbl.find_opt txs txid with
          | Some trt
            when (not trt.tdone)
                 && now () - trt.last_activity >= cfg.recovery_timeout ->
              Dsim.Engine.emitk eng ~tag:"2pc" (fun () ->
                  Printf.sprintf "recovery adopts tx %d" txid);
              reconcile trt
          | _ -> ())
        stale;
      Dsim.Engine.schedule eng ~delay:cfg.recovery_interval daemon
    end
  in
  Dsim.Engine.schedule eng ~delay:cfg.recovery_interval daemon;

  (* supervisor: once every operation completed, wind the groups down *)
  ignore
    (Dsim.Engine.spawn eng ~name:"supervisor" (fun _ctx ->
         Dsim.Engine.await_cond (fun () -> !completed = total_ops);
         finished := true;
         Array.iter Group.stop !groups_ref)
      : Dsim.Engine.pid);

  (* {2 Fault surface} *)
  let faults =
    {
      engine = eng;
      crash = (fun ~shard ~replica -> Group.crash (group shard) replica);
      restart = (fun ~shard ~replica -> Group.restart (group shard) replica);
      partition = (fun ~shard groups -> Group.partition (group shard) groups);
      heal = (fun ~shard -> Group.heal (group shard));
      set_policy = (fun ~shard p -> Group.set_policy (group shard) p);
      set_store_policy =
        (fun ~shard p -> Group.set_store_policy (group shard) p);
    }
  in
  Option.iter (fun f -> f faults) cfg.inject;

  let engine_outcome = Dsim.Engine.run ~max_events:cfg.max_events eng in
  let shard_reports =
    Array.map
      (fun g ->
        {
          sr_shard = Group.shard g;
          sr_violations = Group.violations g;
          sr_completeness = Group.completeness g;
          sr_durability = Group.durability g;
          sr_digests_agree = Group.digests_agree g;
          sr_digests = Group.digests g;
          sr_applied = Group.applied_unique g;
          sr_delivered = Group.delivered g;
          sr_slots = Group.slots g;
          sr_instances = Group.instances g;
          sr_messages_sent = Group.messages_sent g;
          sr_messages_delivered = Group.messages_delivered g;
          sr_crashed = Group.crashed_list g;
          sr_restarted = Group.restarted_list g;
          sr_store_stats = Group.store_stats g;
        })
      !groups_ref
  in
  let finished_txs = !txs_committed + !txs_aborted in
  {
    engine_outcome;
    virtual_time = Dsim.Engine.now eng;
    singles_submitted = Hashtbl.length singles;
    singles_acked = !singles_acked;
    txs_started = Checker.txs_started xchecker;
    txs_committed = !txs_committed;
    txs_aborted = !txs_aborted;
    atomicity = Checker.check xchecker;
    tx_completeness = Checker.check_complete xchecker;
    shard_reports;
    single_latencies = List.rev !single_latencies;
    tx_latencies = List.rev !tx_latencies;
    abort_rate =
      (if finished_txs = 0 then 0.
       else float_of_int !txs_aborted /. float_of_int finished_txs);
    trace = Dsim.Engine.trace eng;
    groups = !groups_ref;
    router;
  }
