(** One consensus group (a shard) living inside a {e shared}
    {!Dsim.Engine}.

    This is the multi-group refactor of {!Rsm.Runner}: the same stack —
    {!Netsim.Async_net} + {!Rsm.Log} + {!Rsm.Tob} + per-replica
    {!Machine} + {!Rsm.Checker}, with the same WAL record format,
    snapshotting and crash-recovery rules when a [store] is configured
    — but it does not own the engine or the client loop, so a
    {!Runner} can stand up N of these side by side and layer 2PC over
    them.

    Completion is push-based (built for tens of thousands of clients —
    no polling fibers): [on_first_apply] fires once per command id when
    the {e first} replica applies it, carrying the machine's output
    (the canonical result, by slot agreement); [on_ready] fires once
    per command id when it is both applied and — if a store is
    configured and honest acks are on — durable on some disk.  Both
    callbacks are deferred to a fresh engine event, so they may safely
    re-enter [submit]. *)

type t

val create :
  engine:Dsim.Engine.t ->
  shard:int ->
  replicas:int ->
  backend:Rsm.Backend.t ->
  seed:int64 ->
  ?latency:Netsim.Latency.t ->
  batch:int ->
  ?store:Rsm.Runner.store_config ->
  on_first_apply:(cid:int -> Cmd.t -> Machine.output -> unit) ->
  on_ready:(cid:int -> unit) ->
  unit ->
  t

val shard : t -> int
val replicas : t -> int

val submit : t -> ?attempt:int -> cid:int -> Cmd.t -> bool
(** Inject at a live replica chosen by [(cid + attempt)] rotation —
    pass a fresh [attempt] on each retry to spread re-submissions.
    False when every replica is down.  Re-submitting a cid is safe
    (TOB de-duplicates); the checker records the submission once. *)

(** {1 Fault surface} (the per-shard analogue of {!Rsm.Runner.faults}) *)

val crash : t -> int -> unit
val restart : t -> int -> unit
val partition : t -> int list list -> unit
val heal : t -> unit

val set_policy :
  t ->
  (Cmd.t Rsm.Tob.entry Netsim.Async_net.envelope ->
  Netsim.Async_net.policy_verdict) ->
  unit

val set_store_policy : t -> Store.Policy.t -> unit
val live : t -> int list
val is_crashed : t -> int -> bool

val record_acked : t -> cid:int -> unit
(** Feed the durability audit: the client/coordinator acked this cid. *)

val stop : t -> unit
(** Wind the TOB replica loops down once idle. *)

(** {1 Scorecard} *)

val violations : t -> Rsm.Checker.violation list
val completeness : t -> Rsm.Checker.violation list
val durability : t -> Rsm.Checker.violation list
val digests : t -> string array
val digests_agree : t -> bool
val delivered : t -> int array
val applied_unique : t -> int
(** Distinct command ids applied group-wide (per-shard throughput). *)

val slots : t -> int
val instances : t -> int
val messages_sent : t -> int
val messages_delivered : t -> int
val crashed_list : t -> int list
val restarted_list : t -> int list
val store_stats : t -> Store.Disk.stats array
val machine : t -> int -> Machine.t
