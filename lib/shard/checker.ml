type violation = {
  property : string;
  txid : int;
  shard : int option;
  message : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "[%s] tx %d%s: %s" v.property v.txid
    (match v.shard with Some s -> Printf.sprintf " shard %d" s | None -> "")
    v.message

type tx_rec = {
  participants : int list;
  votes : (int, bool list) Hashtbl.t;  (* shard -> recorded votes *)
  outcomes : (int, bool list) Hashtbl.t;  (* shard -> recorded outcomes *)
}

type t = { txs : (int, tx_rec) Hashtbl.t }

let create () = { txs = Hashtbl.create 64 }

let record_tx t ~txid ~participants =
  if not (Hashtbl.mem t.txs txid) then
    Hashtbl.replace t.txs txid
      {
        participants = List.sort_uniq compare participants;
        votes = Hashtbl.create 4;
        outcomes = Hashtbl.create 4;
      }

let get t txid =
  match Hashtbl.find_opt t.txs txid with
  | Some r -> r
  | None ->
      (* a vote/outcome for an undeclared tx: keep it, flag it in check *)
      let r =
        { participants = []; votes = Hashtbl.create 4; outcomes = Hashtbl.create 4 }
      in
      Hashtbl.replace t.txs txid r;
      r

let add tbl shard v =
  let prev = Option.value (Hashtbl.find_opt tbl shard) ~default:[] in
  if not (List.mem v prev) then Hashtbl.replace tbl shard (v :: prev)

let record_vote t ~txid ~shard ~vote = add (get t txid).votes shard vote
let record_outcome t ~txid ~shard ~committed =
  add (get t txid).outcomes shard committed

let txs_started t = Hashtbl.length t.txs

let sorted_txs t =
  Hashtbl.fold (fun id r acc -> (id, r) :: acc) t.txs [] |> List.sort compare

let tx_committed r =
  Hashtbl.fold (fun _ vs acc -> acc || List.mem true vs) r.outcomes false

let committed t =
  List.length (List.filter (fun (_, r) -> tx_committed r) (sorted_txs t))

let aborted t =
  List.length
    (List.filter
       (fun (_, r) ->
         (not (tx_committed r))
         && Hashtbl.fold (fun _ vs acc -> acc || List.mem false vs) r.outcomes false)
       (sorted_txs t))

let check t =
  let out = ref [] in
  let flag property txid shard message =
    out := { property; txid; shard; message } :: !out
  in
  List.iter
    (fun (txid, r) ->
      if r.participants = [] then
        flag "declared" txid None "vote/outcome recorded for undeclared tx";
      let member s = List.mem s r.participants in
      Hashtbl.iter
        (fun s vs ->
          if r.participants <> [] && not (member s) then
            flag "participants" txid (Some s) "vote from non-participant shard";
          if List.length vs > 1 then
            flag "vote-consistency" txid (Some s)
              "conflicting votes recorded at one shard")
        r.votes;
      Hashtbl.iter
        (fun s os ->
          if r.participants <> [] && not (member s) then
            flag "participants" txid (Some s) "outcome at non-participant shard";
          if List.length os > 1 then
            flag "outcome-agreement" txid (Some s)
              "conflicting outcomes recorded at one shard")
        r.outcomes;
      let outcomes =
        Hashtbl.fold (fun s os acc -> (s, os) :: acc) r.outcomes []
      in
      let some_commit = List.exists (fun (_, os) -> List.mem true os) outcomes in
      let some_abort = List.exists (fun (_, os) -> List.mem false os) outcomes in
      if some_commit && some_abort then
        flag "outcome-agreement" txid None
          "transaction committed at one shard and aborted at another";
      if some_commit then
        List.iter
          (fun s ->
            match Hashtbl.find_opt r.votes s with
            | Some vs when List.mem true vs && not (List.mem false vs) -> ()
            | Some _ ->
                flag "commit-quorum" txid (Some s)
                  "committed without a yes vote from this participant"
            | None ->
                flag "commit-quorum" txid (Some s)
                  "committed but this participant never voted")
          r.participants)
    (sorted_txs t);
  List.rev !out

let check_complete t =
  let out = ref [] in
  List.iter
    (fun (txid, r) ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem r.outcomes s) then
            out :=
              {
                property = "tx-completeness";
                txid;
                shard = Some s;
                message = "no outcome reached this participant";
              }
              :: !out)
        r.participants)
    (sorted_txs t);
  List.rev !out
