(** Keyspace partitioning: which consensus group owns a key.

    A deterministic string hash (FNV-1a, no [Hashtbl.hash] versioning
    risk) maps every key to one of [shards] groups.  Single-key
    commands route to their owner and never coordinate; a multi-key
    write set is sliced per owner and the sorted owner list becomes the
    transaction's participant set, its head the coordinator shard. *)

type t

val create : shards:int -> t
(** @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int
val shard_of_key : t -> string -> int

val slice : t -> Cmd.wop list -> (int * Cmd.wop list) list
(** Group write ops by owning shard, shard ids ascending, op order
    within a slice preserved. *)

val make_tx : t -> txid:int -> Cmd.wop list -> Cmd.tx
(** Slice the write set and fill in participants (sorted; the head is
    the coordinator shard).  @raise Invalid_argument on an empty op
    list. *)

val coordinator : Cmd.tx -> int
