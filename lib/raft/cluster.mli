(** A simulated Raft cluster with built-in invariant monitoring.

    Wraps [n] replicas on one asynchronous network and continuously checks
    the paper's three quoted Raft properties:

    - {b Election Safety} (at most one leader per term) — checked online
      from leadership events.
    - {b State Machine Safety} (no two replicas apply different commands
      at the same index) — checked online from apply events.
    - {b Log Matching} (same index & term ⇒ identical prefixes) — checked
      on demand over the current logs by {!check_log_matching}.

    Leader Completeness is not directly observable as a single event; it
    is implied by State Machine Safety holding across every run (a
    committed entry that later vanished from a leader's log would surface
    as an application mismatch or a lost commit). *)

type t

val create :
  ?seed:int64 ->
  ?config:Replica.config ->
  ?latency:Netsim.Latency.t ->
  ?policy:(Types.msg Netsim.Async_net.envelope -> Netsim.Async_net.policy_verdict) ->
  ?queue:Dsim.Equeue.backend ->
  n:int ->
  unit ->
  t
(** Build (but do not start) a cluster.  Default latency Uniform(5, 20);
    default replica config {!Replica.default_config}.  [queue] picks the
    engine's event-queue backend (heap by default; the timing wheel is
    the faster choice for timer-heavy clusters) without changing any
    outcome. *)

val engine : t -> Dsim.Engine.t
val net : t -> Types.msg Netsim.Async_net.t
val n : t -> int
val replica : t -> int -> Replica.t
val replicas : t -> Replica.t array

val start : t -> unit
(** Start every replica (handlers + election timers). *)

val run_for : t -> int -> unit
(** Advance virtual time by the given amount. *)

val run_until : t -> ?timeout:int -> (unit -> bool) -> bool
(** Advance time until the predicate holds; false on timeout
    (default 100_000) or quiescence without the predicate holding. *)

val current_leader : t -> int option
(** The unique live leader of the highest term, if any. *)

val crash : t -> int -> unit
val restart : t -> int -> unit
val partition : t -> int list list -> unit
val heal : t -> unit

val propose_via_leader : t -> Types.command -> bool
(** Submit a command to the current leader, if one exists. *)

val violations : t -> string list
(** Election-safety and state-machine-safety violations seen so far. *)

val check_log_matching : t -> string list
(** On-demand Log Matching check over all live replicas' current logs. *)

val leaders_by_term : t -> (Types.term * int) list
(** Who won each term, ascending by term. *)
