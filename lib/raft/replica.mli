(** A full Raft replica: leader election, log replication, commit-index
    advancement, log repair through NextIndex/MatchIndex back-off, crash
    and restart (paper Algorithms 7–9 and the rules of the original Raft
    paper).

    The replica is event-driven: it reacts to delivered messages (via
    {!Netsim.Async_net.set_handler}) and to its two timers.  Handlers never
    suspend, so no engine process is needed per replica.

    Persistence model: without a disk, [current_term], [voted_for] and
    the log survive a {!stop}/{!restart} pair wholesale (recoverable
    memory — the optimistic legacy model).  With [?disk], persistence is
    honest: each of those is written to the WAL and only what was
    {e fsynced} before the crash comes back at {!restart}; unsynced
    appends, vote grants and truncations are lost, and the replica
    refuses to accept entries, grant votes or acknowledge proposals
    while its disk reports IO errors.  In both models the commit index
    is {e volatile} — Raft's Figure 2 deliberately excludes it from
    stable storage — so a restarted replica always resumes at commit
    index 0 and re-derives it (from a leader's commit advertisement, or
    from quorum match indexes after winning an election); volatile state
    (role, applied index, leadership bookkeeping) is likewise reset, and
    committed entries are re-applied from index 1 — the [apply] callback
    must rebuild its state machine from scratch after
    {!Event.Restarted}. *)

type role = Follower | Candidate | Leader

type config = {
  election_timeout : int * int;
      (** randomized in [\[lo, hi\]]; must dominate broadcast time (the
          paper's timing property) *)
  heartbeat_interval : int;  (** leader's replication cadence *)
}

val default_config : config
(** election timeout 150–300, heartbeat 50 — the Raft paper's shape. *)

(** Observable protocol events, consumed by invariant monitors, the VAC
    view and the experiments. *)
module Event : sig
  type t =
    | Became_candidate of { term : Types.term }
    | Became_leader of { term : Types.term }
    | Stepped_down of { term : Types.term }
    | Election_timeout of { term : Types.term }
        (** fired before the candidacy it triggers *)
    | Accepted_entries of {
        term : Types.term;
        count : int;
        commit_advanced : bool;
      }  (** follower accepted an AppendEntries *)
    | Committed of { term : Types.term; index : int }
    | Applied of { index : int; cmd : Types.command }
    | Crashed
    | Restarted
    | Recovered of { term : Types.term; log : int }
        (** what the WAL reproduced on a disk-backed restart: the
            recovered term and log length (fired before [Restarted]) *)

  val pp : Format.formatter -> t -> unit
end

type t

val create :
  net:Types.msg Netsim.Async_net.t ->
  id:int ->
  ?config:config ->
  ?disk:Store.Disk.t ->
  apply:(int -> Types.command -> unit) ->
  rng:Dsim.Rng.t ->
  unit ->
  t
(** Create a replica for node [id] of the network.  [apply index cmd] is
    called exactly once per committed index while up (and again from 1
    after a restart).  [?disk] switches the replica from recoverable
    memory to honest WAL-backed persistence (see the module docs); the
    replica crashes the disk on {!stop} and replays it on {!restart}. *)

val start : t -> unit
(** Install the delivery handler and arm the election timer. *)

(** {1 Introspection} *)

val id : t -> int
val role : t -> role
val current_term : t -> Types.term
val voted_for : t -> int option
val log_length : t -> int
val log_entry : t -> int -> Types.entry
(** 1-based. @raise Invalid_argument out of range. *)

val log_term_at : t -> int -> Types.term
(** Term of the entry at a 1-based index; 0 for index 0. *)

val commit_index : t -> int
val last_applied : t -> int
val is_stopped : t -> bool

val subscribe : t -> (Event.t -> unit) -> unit
(** Register an event listener (called synchronously, in order). *)

val set_on_leadership : t -> (t -> unit) -> unit
(** Callback invoked right after this replica becomes leader, before the
    first replication wave — the consensus reduction uses it to inject its
    [D&S(v)] proposal into an empty log. *)

(** {1 Actions} *)

val propose : t -> Types.command -> bool
(** Append a client command if this replica currently believes it is the
    leader; returns false otherwise. *)

val stop : t -> unit
(** Crash: timers stop, the network stops delivering to this node. *)

val restart : t -> unit
(** Recover.  Persistent state comes back whole (no disk) or is replayed
    from the WAL's durable records (with a disk); volatile state is
    reset either way — in particular the commit index restarts at 0 and
    is re-derived from the protocol, never trusted from before the
    crash. *)
