module Types_c = Consensus.Types

let command_of_value v = Printf.sprintf "D&S:%d" v

let value_of_command cmd =
  match String.index_opt cmd ':' with
  | Some i -> int_of_string (String.sub cmd (i + 1) (String.length cmd - i - 1))
  | None -> invalid_arg (Printf.sprintf "not a D&S command: %S" cmd)

(* Vacillate is never stored — it is the absence of a record for a
   (processor, term) pair; see [vac_view]. *)
type confidence = Adopt | Commit

type t = {
  cl : Cluster.t;
  inputs : int array;
  decisions_tbl : (int, int) Hashtbl.t;
  (* (pid, term) -> strongest confidence seen, with its value *)
  view : (int * int, confidence * int) Hashtbl.t;
  mutable reconciliations : (int * int) list;
  mutable max_term : int;
  mutable adopt_upgrades : int;
      (* (pid, term) pairs that reached adopt before upgrading to commit —
         the paper's "first kind of AppendEntries" stage *)
}

let cluster t = t.cl

let rank = function Adopt -> 1 | Commit -> 2

let record t ~pid ~term conf value =
  if term > t.max_term then t.max_term <- term;
  match Hashtbl.find_opt t.view (pid, term) with
  | Some (old, _) when rank old >= rank conf -> ()
  | Some (Adopt, _) ->
      t.adopt_upgrades <- t.adopt_upgrades + 1;
      Hashtbl.replace t.view (pid, term) (conf, value)
  | Some (Commit, _) | None -> Hashtbl.replace t.view (pid, term) (conf, value)

(* The value a replica is currently carrying: its first log entry (the
   D&S command everything revolves around), or its input when the log is
   still empty. *)
let carried_value t i =
  let r = Cluster.replica t.cl i in
  if Replica.log_length r >= 1 then value_of_command (Replica.log_entry r 1).Types.cmd
  else t.inputs.(i)

let watch t i (ev : Replica.Event.t) =
  match ev with
  | Replica.Event.Became_leader { term } ->
      (* Paper Alg. 10: the leader reaches (Adopt, v) after its vote
         quorum. *)
      record t ~pid:i ~term Adopt (carried_value t i)
  | Replica.Event.Accepted_entries { term; count; commit_advanced } ->
      if commit_advanced then record t ~pid:i ~term Commit (carried_value t i)
      else if count > 0 then record t ~pid:i ~term Adopt (carried_value t i)
  | Replica.Event.Committed { term; index = _ } ->
      record t ~pid:i ~term Commit (carried_value t i)
  | Replica.Event.Election_timeout { term } ->
      t.reconciliations <- (i, term) :: t.reconciliations
  | Replica.Event.Applied { index; cmd } ->
      if index = 1 && not (Hashtbl.mem t.decisions_tbl i) then
        Hashtbl.replace t.decisions_tbl i (value_of_command cmd)
  | Replica.Event.Became_candidate _ | Replica.Event.Stepped_down _
  | Replica.Event.Crashed | Replica.Event.Restarted | Replica.Event.Recovered _
    ->
      ()

let create ~cluster:cl ~inputs =
  if Array.length inputs <> Cluster.n cl then
    invalid_arg "Consensus_raft.create: one input per replica required";
  let t =
    {
      cl;
      inputs;
      decisions_tbl = Hashtbl.create 8;
      view = Hashtbl.create 64;
      reconciliations = [];
      max_term = 0;
      adopt_upgrades = 0;
    }
  in
  Array.iteri
    (fun i r ->
      (* Paper Alg. 7: a fresh leader takes v from its last log entry (its
         own input when the log is empty) and broadcasts D&S of that v.
         The re-proposal doubles as Raft's no-op trick: it plants a
         current-term entry, without which the figure-8 guard would keep a
         previous term's D&S entry uncommittable forever. *)
      Replica.set_on_leadership r (fun r ->
          let v =
            if Replica.log_length r = 0 then inputs.(i)
            else
              value_of_command
                (Replica.log_entry r (Replica.log_length r)).Types.cmd
          in
          ignore (Replica.propose r (command_of_value v) : bool));
      Replica.subscribe r (fun ev -> watch t i ev))
    (Cluster.replicas cl);
  t

let decision t i = Hashtbl.find_opt t.decisions_tbl i

let decisions t =
  Hashtbl.fold (fun pid v acc -> (pid, v) :: acc) t.decisions_tbl []
  |> List.sort compare

let run_until_all_decided ?timeout t =
  Cluster.run_until t.cl ?timeout (fun () ->
      let all = ref true in
      Array.iteri
        (fun i r ->
          if (not (Replica.is_stopped r)) && not (Hashtbl.mem t.decisions_tbl i)
          then all := false)
        (Cluster.replicas t.cl);
      !all)

type observation = {
  obs_pid : int;
  obs_term : int;
  obs : int Types_c.vac_result;
}

let vac_view t =
  let out = ref [] in
  for term = t.max_term downto 1 do
    for pid = Cluster.n t.cl - 1 downto 0 do
      let obs =
        match Hashtbl.find_opt t.view (pid, term) with
        | Some (Commit, v) -> Types_c.Commit v
        | Some (Adopt, v) -> Types_c.Adopt v
        | None -> Types_c.Vacillate t.inputs.(pid)
      in
      out := { obs_pid = pid; obs_term = term; obs } :: !out
    done
  done;
  !out

let reconciliator_invocations t = List.rev t.reconciliations
let adopt_upgrades t = t.adopt_upgrades

let check_vac_view t =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let obs = vac_view t in
  (* Per-term value coherence over adopt & commit. *)
  for term = 1 to t.max_term do
    let strong =
      List.filter_map
        (fun o ->
          if o.obs_term <> term then None
          else
            match o.obs with
            | Types_c.Adopt v | Types_c.Commit v -> Some (o.obs_pid, v)
            | Types_c.Vacillate _ -> None)
        obs
    in
    match strong with
    | [] | [ _ ] -> ()
    | (p0, v0) :: rest ->
        List.iter
          (fun (p, v) ->
            if v <> v0 then
              add "term %d: p%d carries %d but p%d carries %d" term p0 v0 p v)
          rest
  done;
  (* Cross-term commit agreement. *)
  let commits =
    List.filter_map
      (fun o ->
        match o.obs with
        | Types_c.Commit v -> Some (o.obs_pid, o.obs_term, v)
        | Types_c.Adopt _ | Types_c.Vacillate _ -> None)
      obs
  in
  (match commits with
  | [] -> ()
  | (p0, t0, v0) :: rest ->
      List.iter
        (fun (p, term, v) ->
          if v <> v0 then
            add "commit disagreement: p%d@t%d committed %d, p%d@t%d committed %d"
              p0 t0 v0 p term v)
        rest);
  (* Decision agreement + validity. *)
  (match decisions t with
  | [] -> ()
  | (p0, v0) :: rest ->
      List.iter
        (fun (p, v) ->
          if v <> v0 then add "decision disagreement: p%d=%d vs p%d=%d" p0 v0 p v)
        rest;
      List.iter
        (fun (p, v) ->
          if not (Array.exists (fun i -> i = v) t.inputs) then
            add "decision validity: p%d decided %d, nobody's input" p v)
        ((p0, v0) :: rest));
  List.rev !problems
