module Net = Netsim.Async_net
module Timer = Dsim.Timer
module Vec = Dsim.Vec

type role = Follower | Candidate | Leader

type config = { election_timeout : int * int; heartbeat_interval : int }

let default_config = { election_timeout = (150, 300); heartbeat_interval = 50 }

module Event = struct
  type t =
    | Became_candidate of { term : Types.term }
    | Became_leader of { term : Types.term }
    | Stepped_down of { term : Types.term }
    | Election_timeout of { term : Types.term }
    | Accepted_entries of {
        term : Types.term;
        count : int;
        commit_advanced : bool;
      }
    | Committed of { term : Types.term; index : int }
    | Applied of { index : int; cmd : Types.command }
    | Crashed
    | Restarted
    | Recovered of { term : Types.term; log : int }

  let pp ppf = function
    | Became_candidate { term } -> Format.fprintf ppf "became-candidate(t%d)" term
    | Became_leader { term } -> Format.fprintf ppf "became-leader(t%d)" term
    | Stepped_down { term } -> Format.fprintf ppf "stepped-down(t%d)" term
    | Election_timeout { term } -> Format.fprintf ppf "election-timeout(t%d)" term
    | Accepted_entries { term; count; commit_advanced } ->
        Format.fprintf ppf "accepted-entries(t%d,%d,%b)" term count commit_advanced
    | Committed { term; index } -> Format.fprintf ppf "committed(t%d,i%d)" term index
    | Applied { index; cmd } -> Format.fprintf ppf "applied(i%d,%S)" index cmd
    | Crashed -> Format.fprintf ppf "crashed"
    | Restarted -> Format.fprintf ppf "restarted"
    | Recovered { term; log } ->
        Format.fprintf ppf "recovered(t%d,log=%d)" term log
end

type t = {
  net : Types.msg Net.t;
  me : int;
  n : int;
  config : config;
  rng : Dsim.Rng.t;
  apply : int -> Types.command -> unit;
  disk : Store.Disk.t option;
  (* Persistent state.  With a disk it survives stop/restart only to
     the extent it was fsynced; without one it survives by fiat (the
     idealized recoverable model). *)
  mutable current_term : Types.term;
  mutable voted_for : int option;
  log : Types.entry Vec.t;
  (* Volatile state. *)
  mutable role : role;
  mutable commit_index : int;
  mutable last_applied : int;
  mutable votes : bool array;
  next_index : int array;
  match_index : int array;
  mutable stopped : bool;
  election_timer : Timer.t;
  heartbeat_timer : Timer.t;
  mutable listeners : (Event.t -> unit) list;
  mutable on_leadership : (t -> unit) option;
}

let id t = t.me
let role t = t.role
let current_term t = t.current_term
let voted_for t = t.voted_for
let log_length t = Vec.length t.log

let log_entry t i =
  if i < 1 || i > Vec.length t.log then
    invalid_arg (Printf.sprintf "Raft.log_entry: index %d out of range" i);
  Vec.get t.log (i - 1)

let log_term_at t i = if i = 0 then 0 else (log_entry t i).Types.entry_term
let commit_index t = t.commit_index
let last_applied t = t.last_applied
let is_stopped t = t.stopped
let subscribe t f = t.listeners <- t.listeners @ [ f ]
let set_on_leadership t f = t.on_leadership <- Some f

let emit_event t ev = List.iter (fun f -> f ev) t.listeners

(* Thunked so a quiet engine never pays for the sprintf: per-message
   tracing is the Raft hot path. *)
let emit_trace t detail =
  Dsim.Engine.emitk (Net.engine t.net) ~pid:t.me ~tag:"raft" detail

let send t ~dst msg =
  emit_trace t (fun () -> Printf.sprintf "-> %d %s" dst (Types.msg_kind msg));
  Net.send t.net ~src:t.me ~dst msg

let quorum t votes = 2 * votes > t.n

let arm_election_timer t =
  let lo, hi = t.config.election_timeout in
  Timer.arm t.election_timer ~delay:(Dsim.Rng.int_in t.rng lo hi)

(* --- stable storage ------------------------------------------------------

   WAL records, one line each:
     M <term> <voted_for|-1>     term/vote metadata
     E <term> <command>          log append
     X <upto>                    log truncation (conflict repair)

   Raft's persistence rule: (term, vote) must be durable before a vote
   leaves the replica, and log entries durable before they are
   acknowledged — so recovery can never un-promise anything a peer may
   have acted on. *)

let disk_io_erroring t =
  match t.disk with Some d -> Store.Disk.io_erroring d | None -> false

let disk_append t s =
  match t.disk with
  | None -> true
  | Some d -> (
      match Store.Disk.append d s with Ok _ -> true | Error `Io_error -> false)

let entry_record (e : Types.entry) =
  Printf.sprintf "E %d %S" e.Types.entry_term e.Types.cmd

let meta_record t =
  Printf.sprintf "M %d %d" t.current_term
    (match t.voted_for with Some v -> v | None -> -1)

(* Run [k] once everything appended so far is durable.  Without a disk
   durability is free and [k] runs immediately; with one, [k] may run
   later (stall) or never (crash first).  On a visible IO error [k] is
   dropped: the protocol action it guards — a vote, a reply, an ack —
   simply does not happen, and the peer's retry/timeout path recovers
   once the fault window closes. *)
let disk_sync t ~k =
  match t.disk with
  | None -> k ()
  | Some d -> (
      match Store.Disk.fsync d ~k with Ok () -> () | Error `Io_error -> ())

let persist_meta t ~k = if disk_append t (meta_record t) then disk_sync t ~k

let apply_committed t =
  while t.last_applied < t.commit_index do
    t.last_applied <- t.last_applied + 1;
    let entry = log_entry t t.last_applied in
    t.apply t.last_applied entry.Types.cmd;
    emit_event t (Event.Applied { index = t.last_applied; cmd = entry.Types.cmd })
  done

let step_down t term =
  let was_leader = t.role = Leader in
  if term > t.current_term then begin
    t.current_term <- term;
    t.voted_for <- None;
    persist_meta t ~k:(fun () -> ())
  end;
  if t.role <> Follower then begin
    t.role <- Follower;
    emit_event t (Event.Stepped_down { term = t.current_term })
  end;
  if was_leader then Timer.cancel t.heartbeat_timer;
  arm_election_timer t

(* Replicate to one follower, starting from its next index. *)
let send_append t ~dst =
  let ni = t.next_index.(dst) in
  let prev = ni - 1 in
  let last = Vec.length t.log in
  let rec collect i acc =
    if i > last then List.rev acc else collect (i + 1) (log_entry t i :: acc)
  in
  let entries = collect ni [] in
  send t ~dst
    (Types.Append_entries
       {
         term = t.current_term;
         leader_id = t.me;
         prev_log_index = prev;
         prev_log_term = log_term_at t prev;
         entries;
         leader_commit = t.commit_index;
       })

let broadcast_append t =
  for dst = 0 to t.n - 1 do
    if dst <> t.me then send_append t ~dst
  done

(* Leader rule: commit index N when a majority's matchIndex reaches N and
   log[N] belongs to the current term (the Raft paper's figure-8 guard). *)
let advance_commit t =
  let last = Vec.length t.log in
  let n_matching target =
    let count = ref 0 in
    for j = 0 to t.n - 1 do
      if t.match_index.(j) >= target then incr count
    done;
    !count
  in
  let advanced = ref false in
  let candidate = ref (t.commit_index + 1) in
  let best = ref t.commit_index in
  while !candidate <= last do
    if log_term_at t !candidate = t.current_term && quorum t (n_matching !candidate)
    then best := !candidate;
    incr candidate
  done;
  if !best > t.commit_index then begin
    t.commit_index <- !best;
    advanced := true;
    emit_event t (Event.Committed { term = t.current_term; index = !best });
    apply_committed t
  end;
  !advanced

let become_leader t =
  t.role <- Leader;
  Timer.cancel t.election_timer;
  let last = Vec.length t.log in
  for j = 0 to t.n - 1 do
    t.next_index.(j) <- last + 1;
    t.match_index.(j) <- 0
  done;
  t.match_index.(t.me) <- last;
  emit_trace t (fun () -> Printf.sprintf "leader of term %d" t.current_term);
  emit_event t (Event.Became_leader { term = t.current_term });
  (match t.on_leadership with Some f -> f t | None -> ());
  (* First replication wave (doubles as the leadership announcement). *)
  broadcast_append t;
  ignore (advance_commit t : bool);
  Timer.arm t.heartbeat_timer ~delay:t.config.heartbeat_interval

let become_candidate t =
  t.role <- Candidate;
  t.current_term <- t.current_term + 1;
  t.voted_for <- Some t.me;
  Array.fill t.votes 0 t.n false;
  t.votes.(t.me) <- true;
  emit_event t (Event.Became_candidate { term = t.current_term });
  arm_election_timer t;
  (* The campaign only launches once the self-vote's (term, vote) is
     durable; if persistence fails, the armed timer retries the
     candidacy after the fault window. *)
  let term = t.current_term in
  persist_meta t ~k:(fun () ->
      if (not t.stopped) && t.role = Candidate && t.current_term = term then begin
        let last = Vec.length t.log in
        for dst = 0 to t.n - 1 do
          if dst <> t.me then
            send t ~dst
              (Types.Request_vote
                 {
                   term;
                   candidate_id = t.me;
                   last_log_index = last;
                   last_log_term = log_term_at t last;
                 })
        done;
        if quorum t 1 then become_leader t (* single-node cluster *)
      end)

let on_election_timeout t =
  if not t.stopped && t.role <> Leader then begin
    emit_event t (Event.Election_timeout { term = t.current_term });
    become_candidate t
  end

let on_heartbeat t =
  if (not t.stopped) && t.role = Leader then begin
    broadcast_append t;
    Timer.arm t.heartbeat_timer ~delay:t.config.heartbeat_interval
  end

(* --- message handlers --------------------------------------------------- *)

let handle_request_vote t ~src ~term ~candidate_id ~last_log_index ~last_log_term =
  if term > t.current_term then step_down t term;
  if term < t.current_term then
    send t ~dst:src
      (Types.Request_vote_reply { term = t.current_term; granted = false })
  else begin
    let my_last = Vec.length t.log in
    let my_last_term = log_term_at t my_last in
    let up_to_date =
      last_log_term > my_last_term
      || (last_log_term = my_last_term && last_log_index >= my_last)
    in
    let free_to_vote =
      match t.voted_for with None -> true | Some v -> v = candidate_id
    in
    if free_to_vote && up_to_date then begin
      t.voted_for <- Some candidate_id;
      arm_election_timer t;
      (* the grant must not leave before the vote is durable *)
      let term = t.current_term in
      persist_meta t ~k:(fun () ->
          if
            (not t.stopped) && t.current_term = term
            && t.voted_for = Some candidate_id
          then
            send t ~dst:src (Types.Request_vote_reply { term; granted = true }))
    end
    else
      send t ~dst:src
        (Types.Request_vote_reply { term = t.current_term; granted = false })
  end

let handle_request_vote_reply t ~src ~term ~granted =
  if term > t.current_term then step_down t term
  else if t.role = Candidate && term = t.current_term && granted then begin
    t.votes.(src) <- true;
    let total = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.votes in
    if quorum t total then become_leader t
  end

let handle_append_entries t ~src ~term ~leader_id:_ ~prev_log_index ~prev_log_term
    ~entries ~leader_commit =
  if term > t.current_term then step_down t term;
  if term < t.current_term then
    send t ~dst:src
      (Types.Append_entries_reply
         { term = t.current_term; success = false; match_index = 0 })
  else begin
    (* A current leader exists: candidates defer, everyone resets timers. *)
    if t.role <> Follower then step_down t term;
    arm_election_timer t;
    let my_last = Vec.length t.log in
    let consistent =
      prev_log_index <= my_last && log_term_at t prev_log_index = prev_log_term
    in
    if not consistent then
      send t ~dst:src
        (Types.Append_entries_reply
           { term = t.current_term; success = false; match_index = 0 })
    else if disk_io_erroring t then
      (* the disk would reject the WAL writes: refuse without mutating,
         so the leader backs off and retries after the fault window *)
      send t ~dst:src
        (Types.Append_entries_reply
           { term = t.current_term; success = false; match_index = 0 })
    else begin
      (* Append new entries; delete conflicting ones and all that follow. *)
      let count = List.length entries in
      let wrote = ref false in
      List.iteri
        (fun k entry ->
          let idx = prev_log_index + 1 + k in
          if idx <= Vec.length t.log then begin
            if (log_entry t idx).Types.entry_term <> entry.Types.entry_term then begin
              Vec.truncate t.log (idx - 1);
              ignore (disk_append t (Printf.sprintf "X %d" (idx - 1)) : bool);
              Vec.push t.log entry;
              ignore (disk_append t (entry_record entry) : bool);
              wrote := true
            end
          end
          else begin
            Vec.push t.log entry;
            ignore (disk_append t (entry_record entry) : bool);
            wrote := true
          end)
        entries;
      let old_commit = t.commit_index in
      let last_new = prev_log_index + count in
      if leader_commit > t.commit_index then
        t.commit_index <- min leader_commit (max last_new t.commit_index);
      let commit_advanced = t.commit_index > old_commit in
      if commit_advanced then
        emit_event t
          (Event.Committed { term = t.current_term; index = t.commit_index });
      apply_committed t;
      emit_event t
        (Event.Accepted_entries { term = t.current_term; count; commit_advanced });
      (* success is only claimed once the accepted entries are durable —
         the leader may count this replica toward commitment *)
      let term = t.current_term in
      let reply () =
        if not t.stopped then
          send t ~dst:src
            (Types.Append_entries_reply
               { term; success = true; match_index = last_new })
      in
      if !wrote then disk_sync t ~k:reply else reply ()
    end
  end

let handle_append_entries_reply t ~src ~term ~success ~match_index =
  if term > t.current_term then step_down t term
  else if t.role = Leader && term = t.current_term then
    if success then begin
      if match_index > t.match_index.(src) then t.match_index.(src) <- match_index;
      if t.next_index.(src) <= match_index then t.next_index.(src) <- match_index + 1;
      ignore (advance_commit t : bool)
    end
    else begin
      (* Log repair: back off and retry with an earlier prefix. *)
      if t.next_index.(src) > 1 then t.next_index.(src) <- t.next_index.(src) - 1;
      send_append t ~dst:src
    end

let handle t env =
  if not t.stopped then
    match env.Net.payload with
    | Types.Request_vote { term; candidate_id; last_log_index; last_log_term } ->
        handle_request_vote t ~src:env.Net.src ~term ~candidate_id ~last_log_index
          ~last_log_term
    | Types.Request_vote_reply { term; granted } ->
        handle_request_vote_reply t ~src:env.Net.src ~term ~granted
    | Types.Append_entries
        { term; leader_id; prev_log_index; prev_log_term; entries; leader_commit }
      ->
        handle_append_entries t ~src:env.Net.src ~term ~leader_id ~prev_log_index
          ~prev_log_term ~entries ~leader_commit
    | Types.Append_entries_reply { term; success; match_index } ->
        handle_append_entries_reply t ~src:env.Net.src ~term ~success ~match_index

(* --- lifecycle ---------------------------------------------------------- *)

let create ~net ~id ?(config = default_config) ?disk ~apply ~rng () =
  let eng = Net.engine net in
  let n = Net.n net in
  if id < 0 || id >= n then invalid_arg "Raft.Replica.create: bad id";
  let rec t =
    lazy
      {
        net;
        me = id;
        n;
        config;
        rng;
        apply;
        disk;
        current_term = 0;
        voted_for = None;
        log = Vec.create ();
        role = Follower;
        commit_index = 0;
        last_applied = 0;
        votes = Array.make n false;
        next_index = Array.make n 1;
        match_index = Array.make n 0;
        stopped = false;
        election_timer = Timer.create eng (fun () -> on_election_timeout (Lazy.force t));
        heartbeat_timer = Timer.create eng (fun () -> on_heartbeat (Lazy.force t));
        listeners = [];
        on_leadership = None;
      }
  in
  Lazy.force t

let start t =
  Net.set_handler t.net t.me (fun env -> handle t env);
  arm_election_timer t

let propose t cmd =
  if t.stopped || t.role <> Leader || disk_io_erroring t then false
  else begin
    let entry = { Types.entry_term = t.current_term; cmd } in
    Vec.push t.log entry;
    ignore (disk_append t (entry_record entry) : bool);
    let len = Vec.length t.log in
    let term = t.current_term in
    (* The leader only counts itself toward commitment — and starts the
       replication wave — once its own copy is durable. *)
    disk_sync t ~k:(fun () ->
        if (not t.stopped) && t.role = Leader && t.current_term = term then begin
          if t.match_index.(t.me) < len then t.match_index.(t.me) <- len;
          (* Single-node clusters commit immediately; otherwise the next
             replication wave carries the entry. *)
          ignore (advance_commit t : bool);
          broadcast_append t
        end);
    true
  end

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Timer.cancel t.election_timer;
    Timer.cancel t.heartbeat_timer;
    Net.crash t.net t.me;
    Option.iter Store.Disk.crash t.disk;
    emit_event t Event.Crashed
  end

(* Rebuild persistent state from the WAL: whatever was fsynced — and
   only that — comes back.  Unsynced appends, votes and truncations are
   gone, exactly as on a real machine. *)
let recover_from_disk t d =
  t.current_term <- 0;
  t.voted_for <- None;
  Vec.truncate t.log 0;
  List.iter
    (fun (r : Store.Disk.record) ->
      let s = r.Store.Disk.data in
      if String.length s > 0 then
        match s.[0] with
        | 'M' ->
            Scanf.sscanf s "M %d %d" (fun term vote ->
                t.current_term <- term;
                t.voted_for <- (if vote < 0 then None else Some vote))
        | 'E' ->
            Scanf.sscanf s "E %d %S" (fun entry_term cmd ->
                Vec.push t.log { Types.entry_term; cmd })
        | 'X' -> Scanf.sscanf s "X %d" (fun upto -> Vec.truncate t.log upto)
        | _ -> ())
    (Store.Disk.read_back d);
  emit_event t (Event.Recovered { term = t.current_term; log = Vec.length t.log })

let restart t =
  if t.stopped then begin
    t.stopped <- false;
    Option.iter (fun d -> recover_from_disk t d) t.disk;
    t.role <- Follower;
    (* The commit index is volatile in Raft (Figure 2): it is NOT
       restored here but re-derived — from AppendEntries leader_commit
       as a follower, or from quorum match indexes after winning an
       election.  Entries re-apply from index 1 as it re-advances. *)
    t.commit_index <- 0;
    t.last_applied <- 0;
    Array.fill t.votes 0 t.n false;
    Array.fill t.next_index 0 t.n 1;
    Array.fill t.match_index 0 t.n 0;
    Net.restart t.net t.me;
    emit_event t Event.Restarted;
    arm_election_timer t
  end
