module Engine = Dsim.Engine
module Net = Netsim.Async_net

type t = {
  eng : Engine.t;
  network : Types.msg Net.t;
  members : Replica.t array;
  leaders : (Types.term, int) Hashtbl.t;
  applied : (int, Types.command) Hashtbl.t;  (* index -> first applied cmd *)
  mutable violation_log : string list;
}

let engine t = t.eng
let net t = t.network
let n t = Array.length t.members
let replica t i = t.members.(i)
let replicas t = t.members

let add_violation t msg = t.violation_log <- msg :: t.violation_log

let watch t i (ev : Replica.Event.t) =
  match ev with
  | Replica.Event.Became_leader { term } -> (
      match Hashtbl.find_opt t.leaders term with
      | Some other when other <> i ->
          add_violation t
            (Printf.sprintf "election-safety: term %d has leaders %d and %d" term
               other i)
      | Some _ -> ()
      | None -> Hashtbl.replace t.leaders term i)
  | Replica.Event.Applied { index; cmd } -> (
      match Hashtbl.find_opt t.applied index with
      | Some first when not (String.equal first cmd) ->
          add_violation t
            (Printf.sprintf
               "state-machine-safety: index %d applied as %S by %d but %S earlier"
               index cmd i first)
      | Some _ -> ()
      | None -> Hashtbl.replace t.applied index cmd)
  | Replica.Event.Became_candidate _ | Replica.Event.Stepped_down _
  | Replica.Event.Election_timeout _ | Replica.Event.Accepted_entries _
  | Replica.Event.Committed _ | Replica.Event.Crashed | Replica.Event.Restarted
  | Replica.Event.Recovered _ ->
      ()

let create ?(seed = 1L) ?(config = Replica.default_config)
    ?(latency = Netsim.Latency.Uniform (5, 20)) ?policy ?queue ~n () =
  let eng = Engine.create ~seed ?queue () in
  let network = Net.create eng ~n ~latency ?policy () in
  let t_ref = ref None in
  let members =
    Array.init n (fun i ->
        let rng = Dsim.Rng.split (Engine.rng eng) in
        let replica =
          Replica.create ~net:network ~id:i ~config
            ~apply:(fun _index _cmd -> ())
            ~rng ()
        in
        Replica.subscribe replica (fun ev ->
            match !t_ref with Some t -> watch t i ev | None -> ());
        replica)
  in
  let t =
    {
      eng;
      network;
      members;
      leaders = Hashtbl.create 16;
      applied = Hashtbl.create 16;
      violation_log = [];
    }
  in
  t_ref := Some t;
  t

let start t = Array.iter Replica.start t.members

let run_for t duration =
  let (_ : Engine.outcome) = Engine.run ~until:(Engine.now t.eng + duration) t.eng in
  ()

let run_until t ?(timeout = 100_000) pred =
  let deadline = Engine.now t.eng + timeout in
  let step = 50 in
  let rec go () =
    if pred () then true
    else if Engine.now t.eng >= deadline then false
    else
      match Engine.run ~until:(min deadline (Engine.now t.eng + step)) t.eng with
      | Engine.Time_limit -> go ()
      | Engine.Quiescent | Engine.Deadlock _ | Engine.Event_limit -> pred ()
  in
  go ()

let current_leader t =
  let best = ref None in
  Array.iteri
    (fun i r ->
      if (not (Replica.is_stopped r)) && Replica.role r = Replica.Leader then
        match !best with
        | Some (_, term) when term >= Replica.current_term r -> ()
        | Some _ | None -> best := Some (i, Replica.current_term r))
    t.members;
  Option.map fst !best

let crash t i = Replica.stop t.members.(i)
let restart t i = Replica.restart t.members.(i)
let partition t groups = Net.set_partition t.network groups
let heal t = Net.heal t.network

let propose_via_leader t cmd =
  match current_leader t with
  | None -> false
  | Some i -> Replica.propose t.members.(i) cmd

let violations t = List.rev t.violation_log

let check_log_matching t =
  let out = ref [] in
  let n = Array.length t.members in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = t.members.(i) and b = t.members.(j) in
      let len = min (Replica.log_length a) (Replica.log_length b) in
      (* Find the highest common index with equal terms, then require
         identical prefixes up to it. *)
      let common = ref 0 in
      for k = len downto 1 do
        if !common = 0 && Replica.log_term_at a k = Replica.log_term_at b k then
          common := k
      done;
      for k = 1 to !common do
        let ea = Replica.log_entry a k and eb = Replica.log_entry b k in
        if
          ea.Types.entry_term <> eb.Types.entry_term
          || not (String.equal ea.Types.cmd eb.Types.cmd)
        then
          out :=
            Printf.sprintf
              "log-matching: replicas %d and %d agree at index %d but differ at %d" i
              j !common k
            :: !out
      done
    done
  done;
  List.rev !out

let leaders_by_term t =
  Hashtbl.fold (fun term leader acc -> (term, leader) :: acc) t.leaders []
  |> List.sort compare
