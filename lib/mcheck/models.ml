module Engine = Dsim.Engine
module Async_net = Netsim.Async_net
module Types = Consensus.Types
module Bool_monitor = Consensus.Monitor.Make (Consensus.Objects.Bool_value)

type fp_ctx = { drops_left : int }

type instance = {
  run : Engine.oracle -> unit;
  violations : unit -> string list;
  digest : unit -> string;
  fingerprint : (fp_ctx -> int) option;
}

type t = { name : string; describe : string; make : unit -> instance }

let fmt_violation v = Format.asprintf "%a" Consensus.Monitor.pp_violation v

let outcome_str = function
  | Engine.Quiescent -> "quiescent"
  | Engine.Deadlock pids ->
      "deadlock:" ^ String.concat "," (List.map string_of_int pids)
  | Engine.Time_limit -> "time-limit"
  | Engine.Event_limit -> "event-limit"

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* ---------------------------------------------------------------- Ben-Or *)

let benor ?(n = 3) ?inputs ~check_termination () =
  let inputs =
    match inputs with
    | Some a -> a
    | None -> Array.init n (fun i -> i mod 2 = 0)
  in
  let make () =
    let result = ref None in
    let run oracle =
      let config =
        {
          (Ben_or.Runner.default_config ~n ~inputs) with
          Ben_or.Runner.max_rounds = 30;
          oracle = Some oracle;
        }
      in
      result := Some (Ben_or.Runner.run config)
    in
    let report () =
      match !result with
      | Some r -> r
      | None -> failwith "Mcheck.Models: model queried before run"
    in
    let violations () =
      let r = report () in
      let vs = List.map fmt_violation r.Ben_or.Runner.violations in
      if check_termination then
        vs
        @ (match r.Ben_or.Runner.engine_outcome with
          | Engine.Quiescent -> []
          | o -> [ "termination: run ended " ^ outcome_str o ])
        @ List.map
            (fun (pid, exn) ->
              Printf.sprintf "termination: p%d failed: %s" pid
                (Printexc.to_string exn))
            r.Ben_or.Runner.process_failures
      else vs
    in
    let digest () =
      let r = report () in
      Printf.sprintf "decisions=[%s] outcome=%s time=%d msgs=%d/%d"
        (String.concat ";"
           (List.map
              (fun (p, v, rd) -> Printf.sprintf "p%d:%b@%d" p v rd)
              r.Ben_or.Runner.decisions))
        (outcome_str r.Ben_or.Runner.engine_outcome)
        r.Ben_or.Runner.virtual_time r.Ben_or.Runner.messages_sent
        r.Ben_or.Runner.messages_delivered
    in
    { run; violations; digest; fingerprint = None }
  in
  {
    name = "ben-or";
    describe =
      Printf.sprintf "Ben-Or VAC consensus, n=%d inputs=[%s]" n
        (String.concat ";"
           (List.map string_of_bool (Array.to_list inputs)));
    make;
  }

(* ------------------------------------------------------------ Phase-King *)

let phase_king ?(n = 4) ?inputs () =
  let inputs =
    match inputs with Some a -> a | None -> Array.init n (fun i -> i mod 2)
  in
  let make () =
    let result = ref None in
    let run oracle =
      let config =
        {
          (Phase_king.Runner.default_config ~n ~inputs) with
          Phase_king.Runner.oracle = Some oracle;
        }
      in
      result := Some (Phase_king.Runner.run config)
    in
    let report () =
      match !result with
      | Some r -> r
      | None -> failwith "Mcheck.Models: model queried before run"
    in
    let violations () =
      let r = report () in
      List.map fmt_violation r.Phase_king.Runner.violations
      @ (match r.Phase_king.Runner.engine_outcome with
        | Engine.Quiescent -> []
        | o -> [ "termination: run ended " ^ outcome_str o ])
      @ List.map
          (fun (pid, exn) ->
            Printf.sprintf "termination: p%d failed: %s" pid
              (Printexc.to_string exn))
          r.Phase_king.Runner.process_failures
    in
    let digest () =
      let r = report () in
      Printf.sprintf "finals=[%s] outcome=%s rounds=%d"
        (String.concat ";"
           (List.map
              (fun (p, v) -> Printf.sprintf "p%d:%d" p v)
              r.Phase_king.Runner.final_decisions))
        (outcome_str r.Phase_king.Runner.engine_outcome)
        r.Phase_king.Runner.sync_rounds
    in
    { run; violations; digest; fingerprint = None }
  in
  {
    name = "phase-king";
    describe =
      Printf.sprintf
        "Phase-King consensus, n=%d, one Byzantine camp-splitter" n;
    make;
  }

(* -------------------------------------------- shared-memory constructions *)

module SP = Sharedmem.Protocol.Make (Consensus.Objects.Bool_value)
module Ac_demoted = Consensus.Constructions.Ac_of_vac (SP.Vac)

(* One invocation of a Section-5 construction over the register world,
   every process taking exactly one register operation per tick
   ([Fixed_steps 1]): the explorer branches on the within-tick operation
   order, i.e. lock-step interleavings of the Gafni AC registers. *)
let sharedmem_model ~name ~describe ~use_ac ~n ~inputs () =
  let make () =
    let monitor = Bool_monitor.create () in
    let outputs = ref [] in
    let outcome = ref None in
    let run oracle =
      let eng = Engine.create ~seed:1L () in
      Engine.set_oracle eng (Some oracle);
      let world =
        Sharedmem.World.create eng ~steps:(Sharedmem.World.Fixed_steps 1) ()
      in
      let shared = ref None in
      Array.iteri (fun i v -> Bool_monitor.record_initial monitor ~pid:i v) inputs;
      for i = 0 to n - 1 do
        ignore
          (Engine.spawn eng ~name:(Printf.sprintf "sm-%d" i) (fun ectx ->
               let s =
                 match !shared with
                 | Some s -> s
                 | None ->
                     let s = SP.create_shared ~n world in
                     shared := Some s;
                     s
               in
               let ctx =
                 { SP.shared = s; proc = { Sharedmem.World.world; me = i; ectx } }
               in
               let out =
                 if use_ac then
                   Types.vac_of_ac (Ac_demoted.invoke ctx ~round:1 inputs.(i))
                 else SP.Vac.invoke ctx ~round:1 inputs.(i)
               in
               outputs := (i, out) :: !outputs;
               Bool_monitor.record_output monitor ~round:1 ~pid:i out)
            : Engine.pid)
      done;
      outcome := Some (Engine.run eng)
    in
    let violations () =
      let vs =
        if use_ac then Bool_monitor.check_ac monitor
        else Bool_monitor.check_vac monitor
      in
      List.map fmt_violation vs
      @
      match !outcome with
      | Some Engine.Quiescent -> []
      | Some o -> [ "termination: run ended " ^ outcome_str o ]
      | None -> [ "termination: model never ran" ]
    in
    let digest () =
      Printf.sprintf "outputs=[%s] outcome=%s"
        (String.concat ";"
           (List.map
              (fun (i, out) ->
                Printf.sprintf "p%d:%s(%b)" i
                  (Types.vac_confidence out)
                  (Types.vac_value out))
              (List.sort compare !outputs)))
        (match !outcome with Some o -> outcome_str o | None -> "unrun")
    in
    { run; violations; digest; fingerprint = None }
  in
  { name; describe; make }

let vac2ac ?(n = 2) ?inputs () =
  let inputs =
    match inputs with
    | Some a -> a
    | None -> Array.init n (fun i -> i mod 2 = 0)
  in
  sharedmem_model ~name:"vac2ac"
    ~describe:
      (Printf.sprintf
         "two-AC => VAC construction over registers (Section 5), n=%d" n)
    ~use_ac:false ~n ~inputs ()

let ac_of_vac ?(n = 2) ?inputs () =
  let inputs =
    match inputs with
    | Some a -> a
    | None -> Array.init n (fun i -> i mod 2 = 0)
  in
  sharedmem_model ~name:"ac-of-vac"
    ~describe:
      (Printf.sprintf
         "VAC => AC demotion over the two-AC construction (Section 5), n=%d" n)
    ~use_ac:true ~n ~inputs ()

(* ---------------------------------- universal construction (Herlihy) ----
   Herlihy's lock-free universal construction over registers and
   consensus cells, instantiated at a FIFO queue: n processes each
   enqueue a distinct value and then dequeue.  Every register operation
   takes one engine step ([Fixed_steps 1]), so the explorer branches
   over interleavings of the construction's register accesses.  The
   [broken] variant replaces the decideNext consensus with a plain
   last-write-wins register write — indistinguishable on sequential
   schedules, but a racing schedule silently drops the losing enqueue
   from the chain and both dequeues return the same value, which the
   Wing–Gong check convicts. *)

module Uc_queue = Obj.Smem.Make (Obj.Queue)

let uc_queue ?(broken = false) ?(n = 2) () =
  let make () =
    let uc_ref = ref None in
    let outcome = ref None in
    let run oracle =
      let eng = Engine.create ~seed:1L () in
      Engine.set_oracle eng (Some oracle);
      let world =
        Sharedmem.World.create eng ~steps:(Sharedmem.World.Fixed_steps 1) ()
      in
      let uc = Uc_queue.create ~n ~broken () in
      uc_ref := Some uc;
      for i = 0 to n - 1 do
        ignore
          (Engine.spawn eng ~name:(Printf.sprintf "uc-%d" i) (fun ectx ->
               let p = { Sharedmem.World.world; me = i; ectx } in
               List.iteri
                 (fun k op ->
                   ignore
                     (Uc_queue.exec uc p ~cid:((i lsl 20) lor k) op
                       : Obj.Queue.resp))
                 [ Obj.Queue.Enq (Printf.sprintf "v%d" i); Obj.Queue.Deq ])
            : Engine.pid)
      done;
      outcome := Some (Engine.run eng)
    in
    let violations () =
      match !uc_ref with
      | None -> [ "termination: model never ran" ]
      | Some uc ->
          Uc_queue.violations uc
          @ (match !outcome with
            | Some Engine.Quiescent -> []
            | Some o -> [ "termination: run ended " ^ outcome_str o ]
            | None -> [ "termination: model never ran" ])
    in
    let digest () =
      match !uc_ref with
      | None -> "unrun"
      | Some uc ->
          Printf.sprintf "chain=[%s] final=%s"
            (String.concat ";"
               (List.map
                  (fun (cid, o) ->
                    Printf.sprintf "%d:%s" cid (Obj.Queue.op_to_string o))
                  (Uc_queue.chain uc)))
            (Uc_queue.final_digest uc)
    in
    { run; violations; digest; fingerprint = None }
  in
  {
    name = (if broken then "uc-queue-broken" else "uc-queue");
    describe =
      Printf.sprintf
        "Herlihy universal construction at a FIFO queue, n=%d%s" n
        (if broken then " with consensus replaced by last-write-wins"
         else "");
    make;
  }

(* ------------------------------------------------------------- toy AC ----
   A two-phase message-passing adopt-commit for [2t < n], purpose-built as
   the mutant harness: every processor broadcasts its proposal, waits for
   the first [n - t] proposals, broadcasts a (saw-agreement?, value) flag,
   waits for the first [n - t] flags and outputs

     commit u   when every flag seen is (true, u)     -- correct detector
     adopt  u   when some flag seen is (true, u)
     adopt  own otherwise.

   Two true flags cannot disagree (their proposal quorums intersect), so
   the correct detector satisfies AC coherence on every schedule.  The
   [broken] variant commits on ANY true flag — sound on the default FIFO
   schedule (everyone sees the same quorum) but violating coherence under
   reordering, which is exactly what the explorer must catch. *)

type toy_msg = Propose of bool | Flag of bool * bool

let toy_ac ?(broken = false) ?(n = 3) ?inputs ~check_termination () =
  let t = (n - 1) / 2 in
  let quorum = n - t in
  let inputs =
    match inputs with Some a -> a | None -> Array.init n (fun i -> i < n - 1)
  in
  let make () =
    let monitor = Bool_monitor.create () in
    let outputs = Array.make n None in
    (* Protocol phase per process (0 = not started, 1 = proposed,
       2 = flagged, 3 = done).  Part of the fingerprint: two states with
       equal inboxes can still differ in who has already broadcast. *)
    let stages = Array.make n 0 in
    let outcome = ref None in
    let netref = ref None in
    let run oracle =
      let eng = Engine.create ~seed:1L () in
      Engine.set_oracle eng (Some oracle);
      let net = Async_net.create eng ~n () in
      netref := Some net;
      Array.iteri (fun i v -> Bool_monitor.record_initial monitor ~pid:i v) inputs;
      for i = 0 to n - 1 do
        ignore
          (Engine.spawn eng ~name:(Printf.sprintf "toy-%d" i) (fun _ectx ->
               Async_net.broadcast net ~src:i (Propose inputs.(i));
               stages.(i) <- 1;
               let props =
                 Engine.await (fun () ->
                     let got =
                       List.filter_map
                         (fun env ->
                           match env.Async_net.payload with
                           | Propose v -> Some v
                           | Flag _ -> None)
                         (Async_net.inbox net i)
                     in
                     if List.length got >= quorum then Some (take quorum got)
                     else None)
               in
               let flag =
                 match props with
                 | v :: rest when List.for_all (Bool.equal v) rest -> (true, v)
                 | _ -> (false, inputs.(i))
               in
               Async_net.broadcast net ~src:i (Flag (fst flag, snd flag));
               stages.(i) <- 2;
               let flags =
                 Engine.await (fun () ->
                     let got =
                       List.filter_map
                         (fun env ->
                           match env.Async_net.payload with
                           | Flag (ok, v) -> Some (ok, v)
                           | Propose _ -> None)
                         (Async_net.inbox net i)
                     in
                     if List.length got >= quorum then Some (take quorum got)
                     else None)
               in
               let out =
                 if broken then
                   match List.find_opt fst flags with
                   | Some (_, u) -> Types.AC_commit u (* BUG: one vote commits *)
                   | None -> Types.AC_adopt inputs.(i)
                 else if List.for_all fst flags then
                   Types.AC_commit (snd (List.hd flags))
                 else
                   match List.find_opt fst flags with
                   | Some (_, u) -> Types.AC_adopt u
                   | None -> Types.AC_adopt inputs.(i)
               in
               outputs.(i) <- Some out;
               stages.(i) <- 3;
               Bool_monitor.record_output monitor ~round:1 ~pid:i
                 (Types.vac_of_ac out))
            : Engine.pid)
      done;
      outcome := Some (Engine.run eng)
    in
    let violations () =
      List.map fmt_violation (Bool_monitor.check_ac monitor)
      @
      if check_termination then
        match !outcome with
        | Some Engine.Quiescent -> []
        | Some o -> [ "termination: run ended " ^ outcome_str o ]
        | None -> [ "termination: model never ran" ]
      else []
    in
    let digest () =
      Printf.sprintf "outputs=[%s] outcome=%s"
        (String.concat ";"
           (Array.to_list
              (Array.mapi
                 (fun i out ->
                   match out with
                   | None -> Printf.sprintf "p%d:-" i
                   | Some o ->
                       Printf.sprintf "p%d:%s(%b)" i (Types.ac_confidence o)
                         (Types.ac_value o))
                 outputs)))
        (match !outcome with Some o -> outcome_str o | None -> "unrun")
    in
    (* The fingerprint hashes what determines the protocol's future —
       at ANY fault budget, not just 0: per-node inbox views, phases,
       outputs so far, the envelopes still on the wire, and the drops
       the explorer may still inject ([ctx.drops_left]).  Two states
       that differ only in which in-flight message was dropped have
       different wire multisets, and two states reached by spending
       different fractions of the budget differ in [drops_left], so
       equal hashes really do mean equal reachable futures.

       Inbox views are canonicalized by phase, which is where DPOR's
       strict win over sleep-set reduction on this model comes from:
       - stage 3 (done): the inbox can never be read again — drop it.
       - stage 2 (flags awaited): the proposal prefix was consumed into
         the already-broadcast flag; only Flag envelopes, in arrival
         order, can still influence the process.
       - stages 0-1: the full inbox in arrival order (proposal order
         decides the flag about to be computed).
       Distinct within-class delivery permutations that sleep must
       enumerate converge on equal canonical states once the consumed
       prefix stops mattering, and the fingerprint cache cuts them. *)
    let fingerprint (ctx : fp_ctx) =
      match !netref with
      | None -> 0
      | Some net ->
          let snapshot =
            List.init n (fun i ->
                match stages.(i) with
                | 3 -> []
                | 2 ->
                    List.filter_map
                      (fun env ->
                        match env.Async_net.payload with
                        | Flag _ -> Some (env.Async_net.src, env.Async_net.payload)
                        | Propose _ -> None)
                      (Async_net.inbox net i)
                | _ ->
                    List.map
                      (fun env -> (env.Async_net.src, env.Async_net.payload))
                      (Async_net.inbox net i))
          in
          let wire =
            List.map
              (fun env ->
                (env.Async_net.src, env.Async_net.dst, env.Async_net.payload))
              (Async_net.in_flight net)
          in
          (* Not [Hashtbl.hash]: its default limits examine only ~10
             meaningful leaves, so two states differing deep in an inbox
             hash equal and the explorer would prune live subtrees. *)
          Hashtbl.hash_param 4096 4096
            ( snapshot,
              wire,
              ctx.drops_left,
              Array.to_list stages,
              Array.to_list outputs )
    in
    { run; violations; digest; fingerprint = Some fingerprint }
  in
  {
    name = (if broken then "toy-ac-broken" else "toy-ac");
    describe =
      Printf.sprintf "two-phase message-passing AC, n=%d%s" n
        (if broken then " with an intentionally broken commit detector"
         else "");
    make;
  }

(* ----------------------------------------------------------- omega AC ----
   The failure-detector suspicion race, boiled down to the smallest
   model the explorer can branch on: node 0 is the Ω-elected
   coordinator and broadcasts its input; every other node arms a
   suspicion deadline for it.  Under an oracle the proposal is
   delivered at t=1 and the deadline also fires at t=1, so the
   same-tick "sched" choice decides which a waiter observes first —
   exactly the timing uncertainty a real detector lives with.

   The correct (indulgent) rule ignores suspicion for the decision:
   suspecting the coordinator is just a note, the waiter still decides
   the proposed value when it arrives, so every schedule agrees on
   node 0's input.  The [broken] variant decides its OWN input the
   moment the deadline beats the delivery — trusting the detector for
   safety — and the schedule that fires the deadline first diverges
   from the coordinator, which the explorer must convict. *)

type omega_msg = OProp of bool

let omega_ac ?(broken = false) ?(n = 2) ?inputs () =
  if n < 2 then invalid_arg "Models.omega_ac: n >= 2 required";
  let inputs =
    match inputs with
    | Some a ->
        if Array.length a <> n then invalid_arg "Models.omega_ac: |inputs| <> n";
        a
    | None -> Array.init n (fun i -> i mod 2 = 0)
  in
  let make () =
    let decisions = Array.make n None in
    let suspected = Array.make n false in
    let outcome = ref None in
    let run oracle =
      let eng = Engine.create ~seed:1L () in
      Engine.set_oracle eng (Some oracle);
      let net = Async_net.create eng ~n () in
      ignore
        (Engine.spawn eng ~name:"omega-0" (fun _ectx ->
             Async_net.broadcast net ~src:0 (OProp inputs.(0));
             decisions.(0) <- Some inputs.(0))
          : Engine.pid);
      for i = 1 to n - 1 do
        ignore
          (Engine.spawn eng ~name:(Printf.sprintf "omega-%d" i) (fun _ectx ->
               (* deadline waker: same delay as the oracle's base message
                  latency, so it ties with the delivery tick *)
               Engine.schedule eng ~delay:1 (fun () ->
                   if decisions.(i) = None then suspected.(i) <- true);
               let res =
                 Engine.await (fun () ->
                     let prop =
                       List.find_map
                         (fun env ->
                           match env.Async_net.payload with OProp v -> Some v)
                         (Async_net.inbox net i)
                     in
                     match prop with
                     | Some v -> Some (`Proposed v)
                     | None ->
                         if broken && suspected.(i) then Some `Suspected
                         else None)
               in
               match res with
               | `Proposed v -> decisions.(i) <- Some v
               | `Suspected ->
                   (* BUG: the detector's word taken for safety *)
                   decisions.(i) <- Some inputs.(i))
            : Engine.pid)
      done;
      outcome := Some (Engine.run eng)
    in
    let violations () =
      let decided = Array.to_list decisions |> List.filter_map Fun.id in
      (match decided with
      | v :: rest when not (List.for_all (Bool.equal v) rest) ->
          [
            Printf.sprintf "agreement: decisions diverge [%s]"
              (String.concat ";" (List.map string_of_bool decided));
          ]
      | _ -> [])
      @ (if List.for_all (fun v -> Array.exists (Bool.equal v) inputs) decided
         then []
         else [ "validity: decision is nobody's input" ])
      @
      match !outcome with
      | Some Engine.Quiescent when Array.for_all (( <> ) None) decisions -> []
      | Some Engine.Quiescent -> [ "termination: a node never decided" ]
      | Some o -> [ "termination: run ended " ^ outcome_str o ]
      | None -> [ "termination: model never ran" ]
    in
    let digest () =
      Printf.sprintf "decisions=[%s] suspected=[%s] outcome=%s"
        (String.concat ";"
           (Array.to_list
              (Array.map
                 (function None -> "-" | Some v -> string_of_bool v)
                 decisions)))
        (String.concat ";"
           (Array.to_list (Array.map string_of_bool suspected)))
        (match !outcome with Some o -> outcome_str o | None -> "unrun")
    in
    { run; violations; digest; fingerprint = None }
  in
  {
    name = (if broken then "omega-ac-broken" else "omega-ac");
    describe =
      Printf.sprintf
        "Omega-coordinator decision vs suspicion-deadline race, n=%d%s" n
        (if broken then " deciding its own input on first suspicion"
         else " (indulgent: suspicion never decides)");
    make;
  }

(* ------------------------------------------------------------- registry *)

let names =
  [
    "ben-or";
    "phase-king";
    "vac2ac";
    "ac-of-vac";
    "toy-ac";
    "toy-ac-broken";
    "uc-queue";
    "uc-queue-broken";
    "omega-ac";
    "omega-ac-broken";
  ]

let of_name ?n name ~fault_budget =
  match name with
  | "ben-or" -> benor ?n ~check_termination:(fault_budget = 0) ()
  | "phase-king" -> phase_king ?n ()
  | "vac2ac" -> vac2ac ?n ()
  | "ac-of-vac" -> ac_of_vac ?n ()
  | "toy-ac" -> toy_ac ?n ~check_termination:(fault_budget <= 1) ()
  | "toy-ac-broken" ->
      toy_ac ~broken:true ?n ~check_termination:(fault_budget <= 1) ()
  | "uc-queue" -> uc_queue ?n ()
  | "uc-queue-broken" -> uc_queue ~broken:true ?n ()
  | "omega-ac" -> omega_ac ?n ()
  | "omega-ac-broken" -> omega_ac ~broken:true ?n ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Mcheck.Models.of_name: unknown model %S (known: %s)"
           name (String.concat ", " names))
