(** Replay files: a violating execution serialized as its choice trail.

    The format ([oocon-mcheck-replay/1]) is a plain text header (model,
    fault budget, depth) followed by one [<domain> <answer>] line per
    oracle consultation.  Replaying feeds the answers back verbatim and
    takes defaults once the file runs out — see {!Explorer.replay}. *)

val magic : string

type t = {
  model : string;
  fault_budget : int;
  depth : int;
  choices : (string * int) list;
}

val of_exec : model:string -> config:Explorer.config -> Explorer.exec -> t
val of_entries :
  model:string -> config:Explorer.config -> Explorer.entry list -> t

val entries : t -> Explorer.entry list
(** The pinned-prefix form {!Explorer.replay} consumes. *)

val to_string : t -> string
val of_string : string -> t
(** @raise Failure on malformed input. *)

val save : string -> t -> unit
val load : string -> t
