let magic = "oocon-mcheck-replay/1"

type t = {
  model : string;
  fault_budget : int;
  depth : int;
  choices : (string * int) list;
}

let of_exec ~model ~config (x : Explorer.exec) =
  {
    model;
    fault_budget = config.Explorer.fault_budget;
    depth = config.Explorer.depth;
    choices = Explorer.choices_of_entries x.Explorer.x_trail;
  }

let of_entries ~model ~config entries =
  {
    model;
    fault_budget = config.Explorer.fault_budget;
    depth = config.Explorer.depth;
    choices = Explorer.choices_of_entries entries;
  }

let entries t = Explorer.entries_of_choices t.choices

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "model %s\n" t.model);
  Buffer.add_string b (Printf.sprintf "fault-budget %d\n" t.fault_budget);
  Buffer.add_string b (Printf.sprintf "depth %d\n" t.depth);
  Buffer.add_string b (Printf.sprintf "choices %d\n" (List.length t.choices));
  List.iter
    (fun (domain, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" domain v))
    t.choices;
  Buffer.contents b

let parse_error line what =
  failwith (Printf.sprintf "Mcheck.Replay: %s (at %S)" what line)

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | m :: rest when m = magic ->
      let model = ref None in
      let fault_budget = ref 0 in
      let depth = ref 0 in
      let expected = ref None in
      let choices = ref [] in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | None -> parse_error line "malformed line"
          | Some i -> (
              let key = String.sub line 0 i in
              let v = String.sub line (i + 1) (String.length line - i - 1) in
              let int_v () =
                match int_of_string_opt v with
                | Some n -> n
                | None -> parse_error line "expected an integer"
              in
              match key with
              | "model" -> model := Some v
              | "fault-budget" -> fault_budget := int_v ()
              | "depth" -> depth := int_v ()
              | "choices" -> expected := Some (int_v ())
              | "sched" | "net.delay" | "net.fault" ->
                  choices := (key, int_v ()) :: !choices
              | _ ->
                  (* Future domains: keep them — replay answers verbatim. *)
                  choices := (key, int_v ()) :: !choices))
        rest;
      let choices = List.rev !choices in
      (match !expected with
      | Some n when n <> List.length choices ->
          failwith
            (Printf.sprintf
               "Mcheck.Replay: header says %d choices but file has %d" n
               (List.length choices))
      | _ -> ());
      let model =
        match !model with
        | Some m -> m
        | None -> failwith "Mcheck.Replay: missing model line"
      in
      { model; fault_budget = !fault_budget; depth = !depth; choices }
  | first :: _ ->
      failwith
        (Printf.sprintf "Mcheck.Replay: bad magic %S (expected %S)" first magic)
  | [] -> failwith "Mcheck.Replay: empty file"

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
