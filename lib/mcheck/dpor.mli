(** Dynamic partial-order reduction: the race analysis.

    Pure post-hoc analysis of one execution's ["sched"] consultations.
    The explorer records a {!meta} per consultation and calls
    {!backtracks} after the run; the result is the set of backtrack
    points — [(trail position, tie index)] pairs — that classic DPOR
    (Flanagan-Godefroid, POPL 2005) adds for the races found, which the
    explorer folds into its per-position todo sets.

    Two same-tick events are {e dependent} when they share an owner
    label or either is unowned; {e happens-before} is the transitive
    creation-chain order carried by [c_creators].  A pair that is
    dependent, co-located in time and unordered is a race: the
    reversal must be explored, so the later event is added to the
    earlier consultation's backtrack set (capped to the consultation's
    candidate universe [m_cands], keeping DPOR's execution tree a
    subtree of sleep-set reduction's). *)

type meta = {
  m_pos : int;  (** index of this consultation in the trail *)
  m_time : int;  (** virtual time of the tie *)
  m_owners : int option array;  (** tied events' owner labels *)
  m_seqs : int array;  (** tied events' queue insertion seqs *)
  m_creators : int array;  (** seq of each tied event's creator, -1 = setup *)
  m_cands : int array;
      (** candidate universe (sleep's owner-class indices): DPOR
          additions are capped to this set *)
  m_chosen : int;  (** tie index actually fired *)
}

val dependent : int option -> int option -> bool
(** Owner-label dependence: same owner, or either unowned. *)

val backtracks : meta list -> (int * int) list
(** [backtracks metas] analyses one execution's consultations (in
    execution order) and returns the backtrack points to add, each a
    [(m_pos, tie index)] pair with the index drawn from that
    consultation's [m_cands].  Deduplicated, in discovery order.
    Events cut off by pruning or the depth bound are treated as
    pseudo-fired so their races still seed reversals — required for
    soundness when DPOR runs with fingerprint pruning. *)
