(* Dynamic partial-order reduction: the race analysis.

   The explorer records one [meta] per "sched" consultation of an
   execution (prefix and fresh alike): the tie set's stable identities
   ([m_seqs], queue insertion seqs), owner labels, creation edges and
   the index chosen.  After the run, [backtracks] reconstructs the
   per-tick firing order, finds the genuinely racing pairs and returns
   the backtrack points classic DPOR (Flanagan-Godefroid, POPL 2005)
   would add: for each fired event j, the last event i fired before it
   in the same tick such that i and j are dependent and not ordered by
   happens-before gets j added to its backtrack set — or, when j was
   not co-enabled at i's consultation, i's whole candidate universe
   (the conservative "add all enabled" fallback).

   Dependence is the engine's owner discipline: two same-tick events
   conflict iff they touch the same process's state — same owner label,
   or either unowned (an unowned event may touch anything).  Events at
   different ticks never race: virtual time is not a scheduling choice,
   so only same-tick reorderings exist.

   Happens-before comes from creation chains: [m_creators] links every
   queued event to the event whose execution scheduled it.  If j's
   creation chain passes through an event fired at-or-after i, then j
   cannot fire before i in any reordering of this tick, so the pair is
   no race.

   Silently fired events need care: the engine only consults the oracle
   while two or more events are tied, so the last event of a tick (and
   any singleton tick) fires without a consultation.  The per-tick
   firing order is reconstructed from consecutive consultations — an
   event present in one tie set and absent from the next fired silently
   in between.  A silent event was the only enabled event when it
   fired, which is exactly the case where classic DPOR's backtrack set
   cannot be extended, so silent events act as race *sources* j but
   never as backtrack *targets* i.

   The tail of a tick that was cut short (pruned at a fingerprint hit,
   or truncated at the depth bound) is treated as pseudo-fired: those
   events would fire this tick in the cached/abandoned subtree, so the
   races they form with already-fired events must still seed backtrack
   points for the reversal to be explored from this trail.  This is
   what makes DPOR sound in combination with fingerprint pruning. *)

type meta = {
  m_pos : int;  (* index of this consultation in the trail *)
  m_time : int;  (* virtual time of the tie (c_time) *)
  m_owners : int option array;
  m_seqs : int array;
  m_creators : int array;
  m_cands : int array;
      (* the candidate universe at this consultation: the same
         owner-class indices sleep-set reduction would branch over.
         DPOR's additions are capped to this set, which is what makes
         its execution tree a subtree of sleep's. *)
  m_chosen : int;  (* tie index actually fired *)
}

let dependent o1 o2 =
  match (o1, o2) with
  | None, _ | _, None -> true
  | Some a, Some b -> a = b

(* A fired (or pseudo-fired) event in the reconstructed order: identity,
   owner, and the consultation that chose it ([None] = fired silently). *)
type fired = { f_seq : int; f_owner : int option; f_meta : meta option }

let array_index a v =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) = v then Some i else go (i + 1) in
  go 0

(* Reconstruct the firing order of one tick from its consultations.
   Between consultation m-1 and m, any event of the previous remainder
   absent from m's tie set fired silently; after the last consultation
   the remainder fires (or pseudo-fires) silently in queue order. *)
let tick_firings (group : meta list) =
  let fired = ref [] in
  let remaining = ref [] in
  List.iter
    (fun m ->
      let in_tie s = Array.exists (( = ) s) m.m_seqs in
      List.iter
        (fun (s, o) ->
          if not (in_tie s) then
            fired := { f_seq = s; f_owner = o; f_meta = None } :: !fired)
        !remaining;
      fired :=
        {
          f_seq = m.m_seqs.(m.m_chosen);
          f_owner = m.m_owners.(m.m_chosen);
          f_meta = Some m;
        }
        :: !fired;
      let rest = ref [] in
      Array.iteri
        (fun i s -> if i <> m.m_chosen then rest := (s, m.m_owners.(i)) :: !rest)
        m.m_seqs;
      remaining := List.rev !rest)
    group;
  List.iter
    (fun (s, o) -> fired := { f_seq = s; f_owner = o; f_meta = None } :: !fired)
    !remaining;
  List.rev !fired

(* Consultations arrive in execution order, so virtual time is
   nondecreasing: consecutive equal times form one tick. *)
let group_by_time metas =
  let acc =
    List.fold_left
      (fun groups m ->
        match groups with
        | (t, g) :: rest when t = m.m_time -> (t, m :: g) :: rest
        | _ -> (m.m_time, [ m ]) :: groups)
      [] metas
  in
  List.rev_map (fun (_, g) -> List.rev g) acc

let backtracks (metas : meta list) : (int * int) list =
  (* Creation edges, pooled across the whole run: an event's creator may
     have fired ticks earlier than the tie it finally appears in. *)
  let creator = Hashtbl.create 64 in
  List.iter
    (fun m ->
      Array.iteri
        (fun i s ->
          if not (Hashtbl.mem creator s) then Hashtbl.add creator s m.m_creators.(i))
        m.m_seqs)
    metas;
  let adds = ref [] in
  let seen = Hashtbl.create 16 in
  let add pos idx =
    if not (Hashtbl.mem seen (pos, idx)) then begin
      Hashtbl.add seen (pos, idx) ();
      adds := (pos, idx) :: !adds
    end
  in
  List.iter
    (fun group ->
      let fired = Array.of_list (tick_firings group) in
      let pos_of = Hashtbl.create 16 in
      Array.iteri (fun p f -> Hashtbl.replace pos_of f.f_seq p) fired;
      (* Does j's creation chain pass through an event fired at-or-after
         position [ip] of this tick?  Then i -> j is happens-before. *)
      let hb_after ip j =
        let rec walk s =
          s >= 0
          && (match Hashtbl.find_opt pos_of s with
             | Some p when p >= ip -> true
             | _ -> (
                 match Hashtbl.find_opt creator s with
                 | Some c -> walk c
                 | None -> false))
        in
        match Hashtbl.find_opt creator j.f_seq with Some c -> walk c | None -> false
      in
      Array.iteri
        (fun jp j ->
          (* Last-racer rule: scan backwards for the most recent event
             dependent with j; creation-ordered pairs are skipped (they
             are no race), silent racers end the scan (nothing to
             extend at a choice-free point). *)
          let rec scan ip =
            if ip >= 0 then
              let i = fired.(ip) in
              if not (dependent i.f_owner j.f_owner) then scan (ip - 1)
              else if hb_after ip j then scan (ip - 1)
              else
                match i.f_meta with
                | None -> ()
                | Some m -> (
                    match array_index m.m_seqs j.f_seq with
                    | Some k when Array.exists (( = ) k) m.m_cands ->
                        add m.m_pos k
                    | _ ->
                        (* j not co-enabled at i (scheduled mid-tick),
                           or outside the class cap: fall back to every
                           class candidate — sound, and still within
                           sleep's universe. *)
                        Array.iter (fun c -> add m.m_pos c) m.m_cands)
          in
          scan (jp - 1))
        fired)
    (group_by_time metas);
  List.rev !adds
