module Engine = Dsim.Engine
module Rng = Dsim.Rng

(* Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010):
   instead of enumerating schedules, sample them from a distribution
   with a proven lower bound on the probability of hitting any bug of
   depth d.  Each schedule assigns every scheduling unit (here: an
   event-owner label) a random high priority, always runs the
   highest-priority enabled event, and at d-1 pre-drawn steps demotes
   the currently chosen owner to a low band.  A bug needing k ordering
   constraints is then found with probability >= 1/(n * steps^(d-1))
   per schedule — so the sampler complements exhaustive exploration
   when the bounded space is too big to sweep.

   Scheduling units map to PCT threads through the creation edge: tied
   events scheduled by the same earlier event (all messages one process
   sent in one step) form one unit, the message-passing analog of a
   thread — the chain-based reading of PCT for distributed programs
   (Ozkan et al., OOPSLA 2018).  Owner labels alone would be too
   coarse: deliveries to one recipient all share an owner, so a
   per-owner priority could never reorder a recipient's inbox, which is
   exactly where ordering bugs live.  Setup-scheduled events (creator
   -1, e.g. process spawns) fall back to per-owner units.  The fault
   dimension rides along as a coin flip per "net.fault" consultation
   while the budget lasts.

   Every consultation is recorded as a (domain, answer) pair, so a
   violating schedule replays (and minimizes) through {!Explorer}
   exactly like an explorer trail — the sampler finds bugs, the
   stateless machinery shrinks and stores them. *)

type config = {
  schedules : int;  (* how many randomized schedules to sample *)
  d : int;  (* PCT bug depth: d-1 priority change points per schedule *)
  steps : int;  (* horizon the change points are drawn from *)
  seed : int;
  fault_budget : int;
}

let default_config =
  { schedules = 1000; d = 3; steps = 64; seed = 1; fault_budget = 0 }

type schedule_result = {
  s_violations : string list;
  s_digest : string;
  s_trail : (string * int) list;  (* kept only for violating schedules *)
}

let mix seed idx =
  let open Int64 in
  let z = add (mul (of_int (seed + 1)) 0x9E3779B97F4A7C15L) (of_int idx) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  logxor z (shift_right_logical z 27)

let run_schedule ~config (model : Models.t) idx =
  let inst = model.Models.make () in
  let rng = Rng.create (mix config.seed idx) in
  (* The k-th change point demotes the owner chosen at that sched step
     to low-band priority k: lower than every initial priority and than
     earlier demotions, per the PCT construction. *)
  let change =
    Array.init (max 0 (config.d - 1)) (fun _ -> 1 + Rng.int rng (max 1 config.steps))
  in
  let prio = Hashtbl.create 16 in
  let fresh = config.d + 1 in
  let priority owner =
    match Hashtbl.find_opt prio owner with
    | Some p -> p
    | None ->
        let p = fresh + Rng.int rng 1_000_000 in
        Hashtbl.add prio owner p;
        p
  in
  let step = ref 0 in
  let drops = ref 0 in
  let trail = ref [] in
  let choose (c : Engine.choice) =
    let v =
      match c.Engine.c_domain with
      | "sched" ->
          incr step;
          (* Creator seq when the event was scheduled by another event;
             owner-keyed negatives for setup-scheduled events (spawns),
             -1 for setup-scheduled unowned ones.  Seqs are
             non-negative, so the ranges cannot collide. *)
          let unit_key i =
            let cr =
              if i < Array.length c.Engine.c_creators then
                c.Engine.c_creators.(i)
              else -1
            in
            if cr >= 0 then cr
            else
              match c.Engine.c_owners.(i) with
              | Some o -> -(o + 2)
              | None -> -1
          in
          let best = ref 0 in
          let best_p = ref (priority (unit_key 0)) in
          for i = 1 to c.Engine.c_arity - 1 do
            let p = priority (unit_key i) in
            if p > !best_p then begin
              best := i;
              best_p := p
            end
          done;
          Array.iteri
            (fun k at -> if at = !step then Hashtbl.replace prio (unit_key !best) k)
            change;
          !best
      | "net.fault" ->
          if !drops < config.fault_budget && Rng.bool rng then begin
            incr drops;
            1
          end
          else 0
      | _ -> 0
    in
    trail := (c.Engine.c_domain, v) :: !trail;
    v
  in
  inst.Models.run { Engine.choose };
  let violations = inst.Models.violations () in
  {
    s_violations = violations;
    s_digest = inst.Models.digest ();
    s_trail = (if violations = [] then [] else List.rev !trail);
  }

type report = {
  pr_model : string;
  pr_config : config;
  pr_schedules : int;
  pr_violating : int;
  pr_first : int option;  (* lowest violating schedule index *)
  pr_violations : string list;  (* distinct, sorted *)
  pr_probability : float;  (* violating / schedules *)
  pr_counterexample : (string * int) list option;
  pr_wall : float;
}

let run ?(jobs = 1) ~config (model : Models.t) =
  let started = Unix.gettimeofday () in
  let n = max 0 config.schedules in
  let results =
    Exec.Pool.map ~jobs
      (fun idx -> run_schedule ~config model idx)
      (Array.init n Fun.id)
  in
  let violating = ref 0 in
  let first = ref None in
  let violations = ref [] in
  let ce = ref None in
  Array.iteri
    (fun idx r ->
      if r.s_violations <> [] then begin
        incr violating;
        if !first = None then first := Some idx;
        violations := List.rev_append r.s_violations !violations;
        if !ce = None then ce := Some r.s_trail
      end)
    results;
  {
    pr_model = model.Models.name;
    pr_config = config;
    pr_schedules = n;
    pr_violating = !violating;
    pr_first = !first;
    pr_violations = List.sort_uniq compare !violations;
    pr_probability = (if n = 0 then 0. else float_of_int !violating /. float_of_int n);
    pr_counterexample = !ce;
    pr_wall = Unix.gettimeofday () -. started;
  }

let pp_config ppf c =
  Format.fprintf ppf "schedules=%d d=%d steps=%d seed=%d fault-budget=%d"
    c.schedules c.d c.steps c.seed c.fault_budget

let pp_report_stable ppf r =
  Format.fprintf ppf "pct report: model=%s@." r.pr_model;
  Format.fprintf ppf "  config: %a@." pp_config r.pr_config;
  Format.fprintf ppf "  violating schedules: %d of %d (probability %.4f)@."
    r.pr_violating r.pr_schedules r.pr_probability;
  (match r.pr_first with
  | None -> ()
  | Some i -> Format.fprintf ppf "  first violating schedule: #%d@." i);
  if r.pr_violations <> [] then begin
    Format.fprintf ppf "  distinct violations:@.";
    List.iter (fun v -> Format.fprintf ppf "    - %s@." v) r.pr_violations
  end;
  match r.pr_counterexample with
  | None -> ()
  | Some trail ->
      Format.fprintf ppf "  first counterexample: %d choices@." (List.length trail)

let pp_report ppf r =
  pp_report_stable ppf r;
  Format.fprintf ppf "  wall: %.3fs (%.0f schedules/sec)@." r.pr_wall
    (if r.pr_wall > 0. then float_of_int r.pr_schedules /. r.pr_wall else 0.)
