(** Probabilistic concurrency testing — randomized schedule sampling
    with the PCT priority discipline (Burckhardt et al., ASPLOS 2010).

    Where {!Explorer} enumerates a bounded schedule space exhaustively,
    the PCT sampler draws [schedules] independent randomized schedules:
    every scheduling unit — tied events grouped by the event that
    created them, the message-passing analog of a thread — gets a
    random high priority, the highest-priority tied event always fires,
    and [d - 1] pre-drawn steps demote the just-chosen unit to a low
    band.  PCT's guarantee:
    a bug requiring [d] ordering constraints is hit with probability at
    least [1 / (n * steps^(d-1))] per schedule, independent of how
    large the full schedule space is — the regime where exhaustive
    sweeps are hopeless.

    Sampling is deterministic given [(seed, schedule index)] and
    schedules are independent, so the sampler parallelizes over
    {!Exec.Pool} with results merged in index order: reports are
    byte-identical at every job count.  A violating schedule's trail is
    a plain (domain, answer) list replayable — and minimizable —
    through {!Explorer.replay} / {!Explorer.minimize} via
    {!Explorer.entries_of_choices}. *)

type config = {
  schedules : int;  (** sample budget *)
  d : int;  (** PCT bug depth: [d - 1] priority change points *)
  steps : int;  (** horizon the change points are drawn from *)
  seed : int;
  fault_budget : int;  (** coin-flip message drops per schedule, capped *)
}

val default_config : config
(** 1000 schedules, d = 3, steps = 64, seed 1, no faults. *)

type report = {
  pr_model : string;
  pr_config : config;
  pr_schedules : int;
  pr_violating : int;  (** schedules with at least one violation *)
  pr_first : int option;  (** lowest violating schedule index *)
  pr_violations : string list;  (** distinct violation lines, sorted *)
  pr_probability : float;
      (** empirical bug-finding probability per schedule:
          [violating / schedules] — the number the bench tracks *)
  pr_counterexample : (string * int) list option;
      (** the first violating schedule's full choice trail *)
  pr_wall : float;
}

val run : ?jobs:int -> config:config -> Models.t -> report
(** Sample the configured number of schedules.  Deterministic for a
    given [config] at every [jobs] value. *)

val pp_report : Format.formatter -> report -> unit
(** Full report including wall time and schedules/sec. *)

val pp_report_stable : Format.formatter -> report -> unit
(** The report without timing — byte-identical across job counts. *)
