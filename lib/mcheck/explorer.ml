module Engine = Dsim.Engine

exception Pruned

type entry = { e_domain : string; e_cands : int array; e_pos : int }

let entry_value e = e.e_cands.(e.e_pos)

let entries_of_choices choices =
  List.map
    (fun (domain, v) -> { e_domain = domain; e_cands = [| v |]; e_pos = 0 })
    choices

let choices_of_entries entries =
  List.map (fun e -> (e.e_domain, entry_value e)) entries

type reduction = Rnone | Rsleep | Rdpor

let reduction_name = function
  | Rnone -> "none"
  | Rsleep -> "sleep"
  | Rdpor -> "dpor"

type config = {
  depth : int;
  fault_budget : int;
  reduction : reduction;
  prune : bool;
  audit : int;
  frontier : int;
  max_schedules : int;
  stop_at_first : bool;
}

let default_config =
  {
    depth = 12;
    fault_budget = 0;
    reduction = Rsleep;
    prune = false;
    audit = 0;
    frontier = 16;
    max_schedules = max_int;
    stop_at_first = false;
  }

type exec = {
  x_trail : entry list;
  x_branches : int;
  x_truncated : bool;
  x_pruned : bool;
  x_audited : bool;
  x_violations : string list;
  x_audit_violations : string list;
  x_digest : string;
}

let array_index a v =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) = v then Some i else go (i + 1) in
  go 0

(* ------------------------------------------------------------ one run ---

   Stateless exploration: every execution re-runs the model from scratch.
   The oracle serves the [prefix] verbatim (the choices that pin this
   execution into its subtree), then makes fresh default choices, logging
   every consultation into the trail.  Under [Rdpor] every "sched"
   consultation additionally records a {!Dpor.meta} so the caller can
   race-analyse the finished run; the emitted trail entries are then
   single-candidate (the DPOR loop owns branching), while branch
   accounting still goes by the owner-class universe so depth, truncation
   and prune bookkeeping line up exactly with sleep's.

   [memo], when present, enables fingerprint pruning: at each fresh
   "sched" consultation the model's state hash (fed the unspent fault
   budget, see {!Models.fp_ctx}) is looked up; a state already explored
   with at least as much remaining depth aborts the run via {!Pruned}.
   [actr] counts would-be prunes across a partition: with [config.audit]
   = N > 0, every Nth one is *audited* instead — the execution continues
   with schedule choices forced to defaults (no sched branching, no
   further pruning, no race metas) while fault consultations stay eager,
   and its violations are collected separately; a violation surfacing
   only in audited continuations convicts the fingerprint of pruning
   live subtrees. *)

let run_once ~config ~memo ~actr ~prefix (model : Models.t) =
  let inst = model.Models.make () in
  let trail = ref [] in
  let metas = ref [] in
  let len = ref 0 in
  let branches = ref 0 in
  let drops = ref 0 in
  let truncated = ref false in
  let forced = ref false in
  let audited = ref false in
  let prefix = Array.of_list prefix in
  let dpor = config.reduction = Rdpor in
  (* The owner-class universe of a "sched" tie: the candidate answers
     sleep-set-style reduction branches over.  Same-tick events owned by
     distinct processes commute (deliveries land strictly later than the
     tick that sends them), so only the orderings within the first
     event's owner class need exploring; any unowned tied event disables
     the reduction for this tick. *)
  let class_universe (c : Engine.choice) =
    let k = c.Engine.c_arity in
    let all = Array.init k Fun.id in
    match config.reduction with
    | Rnone -> all
    | Rsleep | Rdpor ->
        let owners = c.Engine.c_owners in
        if Array.exists Option.is_none owners then all
        else
          let o0 = owners.(0) in
          Array.of_list (List.filter (fun i -> owners.(i) = o0) (Array.to_list all))
  in
  let record_meta (c : Engine.choice) ~pos ~cands ~chosen =
    metas :=
      {
        Dpor.m_pos = pos;
        m_time = c.Engine.c_time;
        m_owners = c.Engine.c_owners;
        m_seqs = c.Engine.c_seqs;
        m_creators = c.Engine.c_creators;
        m_cands = cands;
        m_chosen = chosen;
      }
      :: !metas
  in
  (* DPOR-side accounting for one "sched" consultation answering [v]:
     count the branchable point by the class universe (the emitted entry
     is single-candidate), apply the depth bound, and record the meta —
     with the universe collapsed to the chosen value past the bound, so
     no backtrack point can ever target a truncated consultation. *)
  let dpor_sched (c : Engine.choice) ~pos v =
    let uni = class_universe c in
    if Array.length uni > 1 then
      if !branches >= config.depth then begin
        truncated := true;
        record_meta c ~pos ~cands:[| v |] ~chosen:v
      end
      else begin
        incr branches;
        record_meta c ~pos ~cands:uni ~chosen:v
      end
    else record_meta c ~pos ~cands:uni ~chosen:v
  in
  let fresh_cands (c : Engine.choice) =
    match c.Engine.c_domain with
    | "sched" -> class_universe c
    | "net.fault" -> if !drops < config.fault_budget then [| 0; 1 |] else [| 0 |]
    | _ -> [| 0 |] (* open-ended domains always take the default *)
  in
  let note e =
    if e.e_domain = "net.fault" && entry_value e = 1 then incr drops;
    if Array.length e.e_cands > 1 then incr branches;
    trail := e :: !trail;
    incr len
  in
  (* Audited continuation: schedule choices are forced to defaults — no
     sched branching, no race metas, no further pruning — but fault
     consultations keep their eager candidates.  Faults are input
     nondeterminism, not ordering: collapsing them here would also hide
     every drop-dependent subtree behind the collision from the
     backtracking loop, which is exactly the class of masked bug the
     audit exists to surface. *)
  let forced_answer (c : Engine.choice) =
    match c.Engine.c_domain with
    | "net.fault" ->
        let cands =
          if !drops < config.fault_budget then [| 0; 1 |] else [| 0 |]
        in
        let cands =
          if Array.length cands > 1 && !branches >= config.depth then begin
            truncated := true;
            [| cands.(0) |]
          end
          else cands
        in
        let e = { e_domain = c.Engine.c_domain; e_cands = cands; e_pos = 0 } in
        note e;
        entry_value e
    | _ ->
        note { e_domain = c.Engine.c_domain; e_cands = [| 0 |]; e_pos = 0 };
        0
  in
  let choose (c : Engine.choice) =
    let i = !len in
    if i < Array.length prefix then begin
      let e = prefix.(i) in
      (* Replays of minimized trails can drift (an earlier changed choice
         shrinks a later tied group): clamp rather than crash. *)
      let v = entry_value e in
      let v =
        if c.Engine.c_domain = "sched" && v >= c.Engine.c_arity then
          c.Engine.c_arity - 1
        else v
      in
      let e =
        if v = entry_value e then e else { e with e_cands = [| v |]; e_pos = 0 }
      in
      if dpor && c.Engine.c_domain = "sched" then dpor_sched c ~pos:i v;
      note e;
      v
    end
    else if !forced then forced_answer c
    else begin
      (if c.Engine.c_domain = "sched" then
         match (memo, inst.Models.fingerprint) with
         | Some tbl, Some fp ->
             let h = fp { Models.drops_left = config.fault_budget - !drops } in
             let remaining = config.depth - !branches in
             (match Hashtbl.find_opt tbl h with
             | Some r when r >= remaining ->
                 incr actr;
                 if config.audit > 0 && !actr mod config.audit = 0 then begin
                   forced := true;
                   audited := true
                 end
                 else raise_notrace Pruned
             | _ -> Hashtbl.replace tbl h remaining)
         | _ -> ());
      if !forced then forced_answer c
      else if dpor && c.Engine.c_domain = "sched" then begin
        let uni = class_universe c in
        let v = uni.(0) in
        dpor_sched c ~pos:i v;
        note { e_domain = "sched"; e_cands = [| v |]; e_pos = 0 };
        v
      end
      else begin
        let cands = fresh_cands c in
        let cands =
          if Array.length cands > 1 && !branches >= config.depth then begin
            truncated := true;
            [| cands.(0) |]
          end
          else cands
        in
        let e = { e_domain = c.Engine.c_domain; e_cands = cands; e_pos = 0 } in
        note e;
        entry_value e
      end
    end
  in
  let cut =
    try
      inst.Models.run { Engine.choose };
      false
    with Pruned -> true
  in
  let pruned = cut || !audited in
  ( {
      x_trail = List.rev !trail;
      x_branches = !branches;
      x_truncated = !truncated;
      x_pruned = pruned;
      x_audited = !audited;
      x_violations = (if pruned then [] else inst.Models.violations ());
      x_audit_violations = (if !audited then inst.Models.violations () else []);
      x_digest = (if pruned then "pruned" else inst.Models.digest ());
    },
    List.rev !metas )

(* Deepest entry at index >= [pin] with an untried candidate; the next
   prefix replays everything before it and takes that candidate. *)
let next_prefix ~pin trail =
  let arr = Array.of_list trail in
  let rec find i =
    if i < pin then None
    else
      let e = arr.(i) in
      if e.e_pos + 1 < Array.length e.e_cands then
        Some
          (Array.to_list (Array.sub arr 0 i) @ [ { e with e_pos = e.e_pos + 1 } ])
      else find (i - 1)
  in
  find (Array.length arr - 1)

(* ------------------------------------------------------------- report -- *)

type report = {
  r_model : string;
  r_config : config;
  r_partitions : int;
  r_executions : int;
  r_truncated : int;
  r_pruned : int;
  r_audited : int;
  r_capped : bool;
  r_max_branches : int;
  r_violating : int;
  r_violations : string list;
  r_audit_failures : string list;
  r_counterexample : exec option;
  r_wall : float;
}

type part = {
  p_execs : int;
  p_trunc : int;
  p_pruned : int;
  p_audited : int;
  p_capped : bool;
  p_max_branches : int;
  p_violating : int;
  p_violations : string list;
  p_audit_violations : string list;
  p_ce : exec option;
}

(* Shared per-partition counters + the fold both exploration loops use. *)
type counters = {
  mutable k_execs : int;
  mutable k_trunc : int;
  mutable k_pruned : int;
  mutable k_audited : int;
  mutable k_capped : bool;
  mutable k_max_branches : int;
  mutable k_violating : int;
  mutable k_violations : string list;
  mutable k_audit_violations : string list;
  mutable k_ce : exec option;
}

let fresh_counters () =
  {
    k_execs = 0;
    k_trunc = 0;
    k_pruned = 0;
    k_audited = 0;
    k_capped = false;
    k_max_branches = 0;
    k_violating = 0;
    k_violations = [];
    k_audit_violations = [];
    k_ce = None;
  }

let count_exec k (x : exec) =
  k.k_execs <- k.k_execs + 1;
  if x.x_truncated then k.k_trunc <- k.k_trunc + 1;
  if x.x_pruned then k.k_pruned <- k.k_pruned + 1;
  if x.x_audited then begin
    k.k_audited <- k.k_audited + 1;
    k.k_audit_violations <- List.rev_append x.x_audit_violations k.k_audit_violations
  end;
  if x.x_branches > k.k_max_branches then k.k_max_branches <- x.x_branches;
  if x.x_violations <> [] then begin
    k.k_violating <- k.k_violating + 1;
    k.k_violations <- List.rev_append x.x_violations k.k_violations;
    if k.k_ce = None then k.k_ce <- Some x
  end

let part_of_counters k =
  {
    p_execs = k.k_execs;
    p_trunc = k.k_trunc;
    p_pruned = k.k_pruned;
    p_audited = k.k_audited;
    p_capped = k.k_capped;
    p_max_branches = k.k_max_branches;
    p_violating = k.k_violating;
    p_violations = k.k_violations;
    p_audit_violations = k.k_audit_violations;
    p_ce = k.k_ce;
  }

let explore_partition ~config (model : Models.t) prefix0 =
  let memo = if config.prune then Some (Hashtbl.create 1024) else None in
  let actr = ref 0 in
  let k = fresh_counters () in
  (* Choices below [pin] belong to other partitions: never backtrack
     into them. *)
  let pin = List.length prefix0 in
  let next = ref (Some prefix0) in
  let continue = ref true in
  while !continue do
    match !next with
    | None -> continue := false
    | Some prefix ->
        if k.k_execs >= config.max_schedules then begin
          k.k_capped <- true;
          continue := false
        end
        else begin
          let x, _metas = run_once ~config ~memo ~actr ~prefix model in
          count_exec k x;
          if config.stop_at_first && k.k_ce <> None then continue := false
          else next := next_prefix ~pin x.x_trail
        end
  done;
  part_of_counters k

(* ------------------------------------------------- DPOR partition loop --

   Stateful DPOR: instead of enumerating every candidate at every choice
   point (the sleep loop's [next_prefix]), keep an explicit stack of
   choice points with done/todo sets.  "sched" points start with an
   empty todo — only the race analysis ({!Dpor.backtracks}) adds
   reversals, and only from within the consultation's class universe, so
   the DPOR tree is a subtree of sleep's.  Eager domains ("net.fault")
   still enumerate all candidates up front: drops are not schedule races
   and have no commutativity structure to exploit.

   Fingerprint caching is always on here (a memo table is created
   unconditionally; it is inert for models without a fingerprint): DPOR
   revisits states more bluntly than sleep when races abound, and the
   budget-sound fingerprint makes cutting those revisits safe.  The
   combination stays sound because pruned/truncated runs treat the
   unfired remainder of their last tick as pseudo-fired in the analysis
   (see {!Dpor}), so every reversal into the cached subtree is seeded
   before the run is abandoned. *)

type dnode = {
  dn_domain : string;
  dn_cands : int array;  (* trail entry's candidate array (eager domains) *)
  mutable dn_value : int;
  mutable dn_done : int list;
  mutable dn_todo : int list;
}

let entry_of_node nd =
  if nd.dn_domain = "sched" then
    { e_domain = "sched"; e_cands = [| nd.dn_value |]; e_pos = 0 }
  else
    match array_index nd.dn_cands nd.dn_value with
    | Some p -> { e_domain = nd.dn_domain; e_cands = nd.dn_cands; e_pos = p }
    | None -> { e_domain = nd.dn_domain; e_cands = [| nd.dn_value |]; e_pos = 0 }

let explore_partition_dpor ~config (model : Models.t) prefix0 =
  let memo = Some (Hashtbl.create 1024) in
  let actr = ref 0 in
  let k = fresh_counters () in
  let pin = List.length prefix0 in
  let stack = ref [] in
  let stack_len = ref 0 in
  let push nd =
    stack := !stack @ [ nd ];
    incr stack_len
  in
  List.iter
    (fun e ->
      push
        {
          dn_domain = e.e_domain;
          dn_cands = e.e_cands;
          dn_value = entry_value e;
          dn_done = [ entry_value e ];
          dn_todo = [];
        })
    prefix0;
  let next = ref (Some prefix0) in
  let continue = ref true in
  while !continue do
    match !next with
    | None -> continue := false
    | Some prefix ->
        if k.k_execs >= config.max_schedules then begin
          k.k_capped <- true;
          continue := false
        end
        else begin
          let x, metas = run_once ~config ~memo ~actr ~prefix model in
          count_exec k x;
          (* grow the stack with this run's fresh choice points *)
          List.iteri
            (fun pos e ->
              if pos >= !stack_len then begin
                let v = entry_value e in
                let todo =
                  if e.e_domain = "sched" then []
                  else List.filter (fun c -> c <> v) (Array.to_list e.e_cands)
                in
                push
                  {
                    dn_domain = e.e_domain;
                    dn_cands = e.e_cands;
                    dn_value = v;
                    dn_done = [ v ];
                    dn_todo = todo;
                  }
              end)
            x.x_trail;
          (* fold the race analysis into the todo sets *)
          List.iter
            (fun (pos, cand) ->
              if pos >= pin && pos < !stack_len then begin
                let nd = List.nth !stack pos in
                if
                  nd.dn_domain = "sched"
                  && (not (List.mem cand nd.dn_done))
                  && not (List.mem cand nd.dn_todo)
                then nd.dn_todo <- nd.dn_todo @ [ cand ]
              end)
            (Dpor.backtracks metas);
          if config.stop_at_first && k.k_ce <> None then continue := false
          else begin
            (* backtrack to the deepest pending reversal *)
            let rec deepest i best = function
              | [] -> best
              | nd :: rest ->
                  deepest (i + 1)
                    (if i >= pin && nd.dn_todo <> [] then Some i else best)
                    rest
            in
            match deepest 0 None !stack with
            | None -> next := None
            | Some pos ->
                let nd = List.nth !stack pos in
                let cand = List.hd nd.dn_todo in
                nd.dn_todo <- List.tl nd.dn_todo;
                nd.dn_done <- cand :: nd.dn_done;
                nd.dn_value <- cand;
                stack := List.filteri (fun i _ -> i <= pos) !stack;
                stack_len := pos + 1;
                next := Some (List.map entry_of_node !stack)
          end
        end
  done;
  part_of_counters k

let merge_parts ~model ~config ~started parts =
  let sum f = Array.fold_left (fun acc p -> acc + f p) 0 parts in
  let violations =
    List.sort_uniq compare
      (Array.fold_left (fun acc p -> List.rev_append p.p_violations acc) [] parts)
  in
  let audit_violations =
    List.sort_uniq compare
      (Array.fold_left
         (fun acc p -> List.rev_append p.p_audit_violations acc)
         [] parts)
  in
  let audit_failures =
    List.filter (fun v -> not (List.mem v violations)) audit_violations
  in
  let ce =
    Array.fold_left
      (fun acc p -> match acc with Some _ -> acc | None -> p.p_ce)
      None parts
  in
  {
    r_model = model;
    r_config = config;
    r_partitions = Array.length parts;
    r_executions = sum (fun p -> p.p_execs);
    r_truncated = sum (fun p -> p.p_trunc);
    r_pruned = sum (fun p -> p.p_pruned);
    r_audited = sum (fun p -> p.p_audited);
    r_capped = Array.exists (fun p -> p.p_capped) parts;
    r_max_branches =
      Array.fold_left (fun acc p -> max acc p.p_max_branches) 0 parts;
    r_violating = sum (fun p -> p.p_violating);
    r_violations = violations;
    r_audit_failures = audit_failures;
    r_counterexample = ce;
    r_wall = Unix.gettimeofday () -. started;
  }

(* --------------------------------------------------- frontier expansion --

   Parallelism needs more partitions than the root branch point alone
   provides (its arity caps the useful job count and its subtrees can be
   wildly unbalanced).  Discovery runs expand the frontier breadth-first:
   split the first position with more than one candidate (under DPOR,
   more than one class candidate — reversals at pinned positions are
   covered by splitting the full universe eagerly), replacing the prefix
   by one child per candidate, until [config.frontier] work items exist
   or nothing splits.  The target is a config constant — never derived
   from the job count — and the final list is sorted by choice values,
   so the partition list, and with it every count and the chosen
   counterexample, is identical at every [--jobs].  Discovery runs are
   not counted: each is re-run by exactly one partition. *)

let expand_frontier ~config (model : Models.t) =
  let target = max 1 config.frontier in
  let split prefix =
    let x, metas = run_once ~config ~memo:None ~actr:(ref 0) ~prefix model in
    let mcands = Hashtbl.create 16 in
    List.iter (fun m -> Hashtbl.replace mcands m.Dpor.m_pos m.Dpor.m_cands) metas;
    let trail = Array.of_list x.x_trail in
    let universe pos e =
      if config.reduction = Rdpor && e.e_domain = "sched" then
        match Hashtbl.find_opt mcands pos with
        | Some u -> u
        | None -> [| entry_value e |]
      else e.e_cands
    in
    let plen = List.length prefix in
    let rec find pos =
      if pos >= Array.length trail then None
      else
        let e = trail.(pos) in
        let u = universe pos e in
        if Array.length u > 1 then Some (pos, e, u) else find (pos + 1)
    in
    match find plen with
    | None -> None
    | Some (pos, e, u) ->
        let head = Array.to_list (Array.sub trail 0 pos) in
        Some
          (List.init (Array.length u) (fun j ->
               let child =
                 if config.reduction = Rdpor && e.e_domain = "sched" then
                   { e_domain = "sched"; e_cands = [| u.(j) |]; e_pos = 0 }
                 else { e with e_pos = j }
               in
               head @ [ child ]))
  in
  let leaves = ref [] in
  let queue = ref [ [] ] in
  let continue = ref true in
  while !continue do
    if List.length !leaves + List.length !queue >= target then continue := false
    else
      match !queue with
      | [] -> continue := false
      | p :: rest -> (
          match split p with
          | None ->
              queue := rest;
              leaves := p :: !leaves
          | Some children -> queue := rest @ children)
  done;
  List.sort
    (fun a b -> compare (choices_of_entries a) (choices_of_entries b))
    (!leaves @ !queue)

let explore ?(jobs = 1) ~config (model : Models.t) =
  let started = Unix.gettimeofday () in
  let partitions = Array.of_list (expand_frontier ~config model) in
  let run_partition =
    match config.reduction with
    | Rdpor -> explore_partition_dpor ~config model
    | Rnone | Rsleep -> explore_partition ~config model
  in
  let parts = Exec.Pool.map ~jobs run_partition partitions in
  merge_parts ~model:model.Models.name ~config ~started parts

(* ------------------------------------------------------------- replay -- *)

let replay ~config (model : Models.t) entries =
  fst
    (run_once
       ~config:{ config with prune = false; audit = 0; stop_at_first = false }
       ~memo:None ~actr:(ref 0) ~prefix:entries model)

(* --------------------------------------------------------- minimization --

   Nemesis.Shrink-style greedy reduction of a violating trail:
   1. truncation — the shortest prefix that still violates when everything
      after it takes default choices;
   2. zeroing — reset each non-default choice to its default, keeping the
      reset whenever the violation survives;
   then truncate once more (zeroing can make a tail redundant).  Each
   candidate costs one full re-execution, so the total is capped. *)

let minimize ~config ?(max_replays = 2000) (model : Models.t) entries =
  let replays = ref 0 in
  let violates prefix =
    if !replays >= max_replays then false
    else begin
      incr replays;
      let x = replay ~config model prefix in
      (not x.x_pruned) && x.x_violations <> []
    end
  in
  let truncate entries =
    let arr = Array.of_list entries in
    let n = Array.length arr in
    let rec shortest i =
      if i > n then entries
      else
        let prefix = Array.to_list (Array.sub arr 0 i) in
        if violates prefix then prefix else shortest (i + 1)
    in
    shortest 0
  in
  let zero entries =
    let arr = Array.of_list (List.map (fun e -> ref e) entries) in
    Array.iter
      (fun cell ->
        let e = !cell in
        if entry_value e <> e.e_cands.(0) then begin
          let saved = e in
          cell := { e with e_pos = 0 };
          let candidate = List.map (fun c -> !c) (Array.to_list arr) in
          if not (violates candidate) then cell := saved
        end)
      arr;
    List.map (fun c -> !c) (Array.to_list arr)
  in
  if not (violates entries) then None
  else
    let reduced = truncate (zero (truncate entries)) in
    Some reduced

let nondefault_count entries =
  List.length (List.filter (fun e -> entry_value e <> e.e_cands.(0)) entries)

(* ------------------------------------------------------------ printing -- *)

let pp_config ppf c =
  Format.fprintf ppf
    "depth=%d fault-budget=%d reduction=%s prune=%b frontier=%d%s%s%s" c.depth
    c.fault_budget (reduction_name c.reduction) c.prune c.frontier
    (if c.audit > 0 then Printf.sprintf " audit=%d" c.audit else "")
    (if c.max_schedules = max_int then ""
     else Printf.sprintf " max-schedules=%d" c.max_schedules)
    (if c.stop_at_first then " stop-at-first" else "")

let pp_report_stable ppf r =
  Format.fprintf ppf "mcheck report: model=%s@." r.r_model;
  Format.fprintf ppf "  config: %a@." pp_config r.r_config;
  Format.fprintf ppf "  partitions: %d@." r.r_partitions;
  Format.fprintf ppf "  executions: %d (truncated %d, pruned %d%s)@."
    r.r_executions r.r_truncated r.r_pruned
    (if r.r_capped then ", CAPPED" else "");
  if r.r_config.audit > 0 then begin
    Format.fprintf ppf "  collision audit: %d continuations, %d failures@."
      r.r_audited
      (List.length r.r_audit_failures);
    List.iter
      (fun v -> Format.fprintf ppf "    ! unreported pruned violation: %s@." v)
      r.r_audit_failures
  end;
  Format.fprintf ppf "  exhaustive within bounds: %b@."
    ((not r.r_capped) && (not r.r_config.stop_at_first) && r.r_truncated = 0);
  Format.fprintf ppf "  max branch points in one execution: %d@."
    r.r_max_branches;
  Format.fprintf ppf "  violating executions: %d@." r.r_violating;
  if r.r_violations <> [] then begin
    Format.fprintf ppf "  distinct violations:@.";
    List.iter (fun v -> Format.fprintf ppf "    - %s@." v) r.r_violations
  end;
  match r.r_counterexample with
  | None -> ()
  | Some x ->
      Format.fprintf ppf
        "  first counterexample: %d choices (%d non-default), digest %s@."
        (List.length x.x_trail) (nondefault_count x.x_trail) x.x_digest

let pp_report ppf r =
  pp_report_stable ppf r;
  Format.fprintf ppf "  wall: %.3fs (%.0f schedules/sec)@." r.r_wall
    (if r.r_wall > 0. then float_of_int r.r_executions /. r.r_wall else 0.)
