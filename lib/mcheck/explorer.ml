module Engine = Dsim.Engine

exception Pruned

type entry = { e_domain : string; e_cands : int array; e_pos : int }

let entry_value e = e.e_cands.(e.e_pos)

let entries_of_choices choices =
  List.map
    (fun (domain, v) -> { e_domain = domain; e_cands = [| v |]; e_pos = 0 })
    choices

let choices_of_entries entries =
  List.map (fun e -> (e.e_domain, entry_value e)) entries

type config = {
  depth : int;
  fault_budget : int;
  reduce : bool;
  prune : bool;
  max_schedules : int;
  stop_at_first : bool;
}

let default_config =
  {
    depth = 12;
    fault_budget = 0;
    reduce = true;
    prune = false;
    max_schedules = max_int;
    stop_at_first = false;
  }

type exec = {
  x_trail : entry list;
  x_branches : int;
  x_truncated : bool;
  x_pruned : bool;
  x_violations : string list;
  x_digest : string;
}

(* ------------------------------------------------------------ one run ---

   Stateless exploration: every execution re-runs the model from scratch.
   The oracle serves the [prefix] verbatim (the choices that pin this
   execution into its subtree), then makes fresh default choices, logging
   every consultation into the trail.  Backtracking picks the deepest
   fresh entry with an untried candidate and re-runs with a longer
   prefix. *)

let run_once ~config ~memo ~prefix (model : Models.t) =
  let inst = model.Models.make () in
  let trail = ref [] in
  let len = ref 0 in
  let branches = ref 0 in
  let drops = ref 0 in
  let truncated = ref false in
  let prefix = Array.of_list prefix in
  (* Candidate answers for a fresh consultation, default first. *)
  let fresh_cands (c : Engine.choice) =
    match c.Engine.c_domain with
    | "sched" ->
        let k = c.Engine.c_arity in
        let all = Array.init k Fun.id in
        if not config.reduce then all
        else begin
          (* Sleep-set-style reduction: same-tick events owned by
             distinct processes commute (deliveries land strictly later
             than the tick that sends them), so only the orderings
             within the first event's owner class need exploring.  Any
             unowned event disables the reduction for this tick. *)
          let owners = c.Engine.c_owners in
          if Array.exists Option.is_none owners then all
          else
            let o0 = owners.(0) in
            Array.of_list
              (List.filter
                 (fun i -> owners.(i) = o0)
                 (Array.to_list all))
        end
    | "net.fault" -> if !drops < config.fault_budget then [| 0; 1 |] else [| 0 |]
    | _ -> [| 0 |] (* open-ended domains always take the default *)
  in
  let note e =
    if e.e_domain = "net.fault" && entry_value e = 1 then incr drops;
    if Array.length e.e_cands > 1 then incr branches;
    trail := e :: !trail;
    incr len
  in
  let choose (c : Engine.choice) =
    let i = !len in
    if i < Array.length prefix then begin
      let e = prefix.(i) in
      (* Replays of minimized trails can drift (an earlier changed choice
         shrinks a later tied group): clamp rather than crash. *)
      let v = entry_value e in
      let v =
        if c.Engine.c_domain = "sched" && v >= c.Engine.c_arity then
          c.Engine.c_arity - 1
        else v
      in
      let e =
        if v = entry_value e then e
        else { e with e_cands = [| v |]; e_pos = 0 }
      in
      note e;
      v
    end
    else begin
      (if config.prune && c.Engine.c_domain = "sched" then
         match (memo, inst.Models.fingerprint) with
         | Some tbl, Some fp ->
             let h = fp () in
             let remaining = config.depth - !branches in
             (match Hashtbl.find_opt tbl h with
             | Some r when r >= remaining -> raise_notrace Pruned
             | _ -> Hashtbl.replace tbl h remaining)
         | _ -> ());
      let cands = fresh_cands c in
      let cands =
        if Array.length cands > 1 && !branches >= config.depth then begin
          truncated := true;
          [| cands.(0) |]
        end
        else cands
      in
      let e = { e_domain = c.Engine.c_domain; e_cands = cands; e_pos = 0 } in
      note e;
      entry_value e
    end
  in
  let pruned =
    try
      inst.Models.run { Engine.choose };
      false
    with Pruned -> true
  in
  {
    x_trail = List.rev !trail;
    x_branches = !branches;
    x_truncated = !truncated;
    x_pruned = pruned;
    x_violations = (if pruned then [] else inst.Models.violations ());
    x_digest = (if pruned then "pruned" else inst.Models.digest ());
  }

(* Deepest entry at index >= [pin] with an untried candidate; the next
   prefix replays everything before it and takes that candidate. *)
let next_prefix ~pin trail =
  let arr = Array.of_list trail in
  let rec find i =
    if i < pin then None
    else
      let e = arr.(i) in
      if e.e_pos + 1 < Array.length e.e_cands then
        Some
          (Array.to_list (Array.sub arr 0 i)
          @ [ { e with e_pos = e.e_pos + 1 } ])
      else find (i - 1)
  in
  find (Array.length arr - 1)

(* ------------------------------------------------------------- report -- *)

type report = {
  r_model : string;
  r_config : config;
  r_partitions : int;
  r_executions : int;
  r_truncated : int;
  r_pruned : int;
  r_capped : bool;
  r_max_branches : int;
  r_violating : int;
  r_violations : string list;
  r_counterexample : exec option;
  r_wall : float;
}

type part = {
  p_execs : int;
  p_trunc : int;
  p_pruned : int;
  p_capped : bool;
  p_max_branches : int;
  p_violating : int;
  p_violations : string list;
  p_ce : exec option;
}

let explore_partition ~config (model : Models.t) prefix0 =
  let memo = if config.prune then Some (Hashtbl.create 1024) else None in
  let execs = ref 0 in
  let trunc = ref 0 in
  let pruned = ref 0 in
  let capped = ref false in
  let max_branches = ref 0 in
  let violating = ref 0 in
  let violations = ref [] in
  let ce = ref None in
  (* Root choices below [pin] belong to other partitions: never backtrack
     into them. *)
  let pin = List.length prefix0 in
  let next = ref (Some prefix0) in
  let continue = ref true in
  while !continue do
    match !next with
    | None -> continue := false
    | Some prefix ->
        if !execs >= config.max_schedules then begin
          capped := true;
          continue := false
        end
        else begin
          let x = run_once ~config ~memo ~prefix model in
          incr execs;
          if x.x_truncated then incr trunc;
          if x.x_pruned then incr pruned;
          if x.x_branches > !max_branches then max_branches := x.x_branches;
          if x.x_violations <> [] then begin
            incr violating;
            violations := List.rev_append x.x_violations !violations;
            if !ce = None then ce := Some x
          end;
          if config.stop_at_first && !ce <> None then continue := false
          else next := next_prefix ~pin x.x_trail
        end
  done;
  {
    p_execs = !execs;
    p_trunc = !trunc;
    p_pruned = !pruned;
    p_capped = !capped;
    p_max_branches = !max_branches;
    p_violating = !violating;
    p_violations = !violations;
    p_ce = !ce;
  }

let merge_parts ~model ~config ~started parts =
  let sum f = Array.fold_left (fun acc p -> acc + f p) 0 parts in
  let violations =
    List.sort_uniq compare
      (Array.fold_left (fun acc p -> List.rev_append p.p_violations acc) [] parts)
  in
  let ce =
    Array.fold_left
      (fun acc p -> match acc with Some _ -> acc | None -> p.p_ce)
      None parts
  in
  {
    r_model = model;
    r_config = config;
    r_partitions = Array.length parts;
    r_executions = sum (fun p -> p.p_execs);
    r_truncated = sum (fun p -> p.p_trunc);
    r_pruned = sum (fun p -> p.p_pruned);
    r_capped = Array.exists (fun p -> p.p_capped) parts;
    r_max_branches =
      Array.fold_left (fun acc p -> max acc p.p_max_branches) 0 parts;
    r_violating = sum (fun p -> p.p_violating);
    r_violations = violations;
    r_counterexample = ce;
    r_wall = Unix.gettimeofday () -. started;
  }

let explore ?(jobs = 1) ~config (model : Models.t) =
  let started = Unix.gettimeofday () in
  (* Discovery: one default execution finds the root branch point.  Its
     results are not counted — partition 0 re-runs the same execution. *)
  let disco =
    run_once ~config:{ config with prune = false } ~memo:None ~prefix:[] model
  in
  let root_index =
    let rec find i = function
      | [] -> None
      | e :: rest ->
          if Array.length e.e_cands > 1 then Some i else find (i + 1) rest
    in
    find 0 disco.x_trail
  in
  match root_index with
  | None ->
      (* Branch-free space: the discovery run is the whole exploration. *)
      let part =
        {
          p_execs = 1;
          p_trunc = (if disco.x_truncated then 1 else 0);
          p_pruned = 0;
          p_capped = false;
          p_max_branches = disco.x_branches;
          p_violating = (if disco.x_violations <> [] then 1 else 0);
          p_violations = disco.x_violations;
          p_ce = (if disco.x_violations <> [] then Some disco else None);
        }
      in
      merge_parts ~model:model.Models.name ~config ~started [| part |]
  | Some root_index ->
      let head = Array.of_list disco.x_trail in
      let root = head.(root_index) in
      let prefixes =
        Array.init
          (Array.length root.e_cands)
          (fun j ->
            Array.to_list (Array.sub head 0 root_index)
            @ [ { root with e_pos = j } ])
      in
      let parts =
        Exec.Pool.map ~jobs
          (fun prefix -> explore_partition ~config model prefix)
          prefixes
      in
      merge_parts ~model:model.Models.name ~config ~started parts

(* ------------------------------------------------------------- replay -- *)

let replay ~config (model : Models.t) entries =
  run_once
    ~config:{ config with prune = false; stop_at_first = false }
    ~memo:None ~prefix:entries model

(* --------------------------------------------------------- minimization --

   Nemesis.Shrink-style greedy reduction of a violating trail:
   1. truncation — the shortest prefix that still violates when everything
      after it takes default choices;
   2. zeroing — reset each non-default choice to its default, keeping the
      reset whenever the violation survives;
   then truncate once more (zeroing can make a tail redundant).  Each
   candidate costs one full re-execution, so the total is capped. *)

let minimize ~config ?(max_replays = 2000) (model : Models.t) entries =
  let replays = ref 0 in
  let violates prefix =
    if !replays >= max_replays then false
    else begin
      incr replays;
      let x = replay ~config model prefix in
      (not x.x_pruned) && x.x_violations <> []
    end
  in
  let truncate entries =
    let arr = Array.of_list entries in
    let n = Array.length arr in
    let rec shortest i =
      if i > n then entries
      else
        let prefix = Array.to_list (Array.sub arr 0 i) in
        if violates prefix then prefix else shortest (i + 1)
    in
    shortest 0
  in
  let zero entries =
    let arr = Array.of_list (List.map (fun e -> ref e) entries) in
    Array.iter
      (fun cell ->
        let e = !cell in
        if entry_value e <> e.e_cands.(0) then begin
          let saved = e in
          cell := { e with e_pos = 0 };
          let candidate = List.map (fun c -> !c) (Array.to_list arr) in
          if not (violates candidate) then cell := saved
        end)
      arr;
    List.map (fun c -> !c) (Array.to_list arr)
  in
  if not (violates entries) then None
  else
    let reduced = truncate (zero (truncate entries)) in
    Some reduced

let nondefault_count entries =
  List.length (List.filter (fun e -> entry_value e <> e.e_cands.(0)) entries)

(* ------------------------------------------------------------ printing -- *)

let pp_config ppf c =
  Format.fprintf ppf
    "depth=%d fault-budget=%d reduce=%b prune=%b%s%s" c.depth c.fault_budget
    c.reduce c.prune
    (if c.max_schedules = max_int then ""
     else Printf.sprintf " max-schedules=%d" c.max_schedules)
    (if c.stop_at_first then " stop-at-first" else "")

let pp_report_stable ppf r =
  Format.fprintf ppf "mcheck report: model=%s@." r.r_model;
  Format.fprintf ppf "  config: %a@." pp_config r.r_config;
  Format.fprintf ppf "  root partitions: %d@." r.r_partitions;
  Format.fprintf ppf "  executions: %d (truncated %d, pruned %d%s)@."
    r.r_executions r.r_truncated r.r_pruned
    (if r.r_capped then ", CAPPED" else "");
  Format.fprintf ppf "  exhaustive within bounds: %b@."
    ((not r.r_capped) && (not r.r_config.stop_at_first) && r.r_truncated = 0);
  Format.fprintf ppf "  max branch points in one execution: %d@."
    r.r_max_branches;
  Format.fprintf ppf "  violating executions: %d@." r.r_violating;
  if r.r_violations <> [] then begin
    Format.fprintf ppf "  distinct violations:@.";
    List.iter (fun v -> Format.fprintf ppf "    - %s@." v) r.r_violations
  end;
  match r.r_counterexample with
  | None -> ()
  | Some x ->
      Format.fprintf ppf
        "  first counterexample: %d choices (%d non-default), digest %s@."
        (List.length x.x_trail) (nondefault_count x.x_trail) x.x_digest

let pp_report ppf r =
  pp_report_stable ppf r;
  Format.fprintf ppf "  wall: %.3fs (%.0f schedules/sec)@." r.r_wall
    (if r.r_wall > 0. then float_of_int r.r_executions /. r.r_wall else 0.)
