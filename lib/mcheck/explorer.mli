(** Bounded, stateless schedule exploration over {!Dsim.Engine}.

    The explorer enumerates executions of a {!Models.t} instead of
    sampling them: it installs a {!Dsim.Engine.oracle}, records every
    consultation (same-tick event order, per-message delay slack,
    drop-or-deliver) into a {e trail}, and performs a depth-first sweep
    by re-running the model from scratch with ever-longer pinned
    prefixes — the standard stateless-model-checking loop.

    Bounds and reductions (all per execution):
    - [depth] caps the number of {e branchable} choice points; once
      exhausted the run continues under default (FIFO, no-drop) choices
      and is counted as truncated, so "0 violations" claims read "on
      every schedule that differs from the default in at most [depth]
      choice points".
    - [fault_budget] caps oracle-injected message drops.
    - [reduce] collapses same-tick events owned by distinct processes
      (network deliveries to distinct recipients) to a single ordering —
      sleep-set-style partial-order reduction, sound under the
      recipient-locality of deliveries; any unowned tied event disables
      it for that tick.
    - [prune] memoizes model fingerprints with their remaining depth and
      abandons executions whose state was already explored at least as
      deeply.  Opt-in: it needs a model fingerprint that captures the
      {e complete} state (see {!Models.instance.fingerprint}).

    Parallelism splits the frontier at the root branch point: each root
    candidate becomes a partition explored independently (own memo
    table), and partitions run through {!Exec.Pool} — results merge in
    partition order, so reports are byte-identical at every job count. *)

exception Pruned
(** Raised by the oracle (outside any process fiber) to abandon a
    fingerprint-pruned execution. *)

type entry = {
  e_domain : string;  (** which choice domain was consulted *)
  e_cands : int array;  (** candidate answers, default first *)
  e_pos : int;  (** index into [e_cands] this execution took *)
}
(** One oracle consultation, as recorded in a trail. *)

val entry_value : entry -> int
(** The answer actually given: [e_cands.(e_pos)]. *)

val entries_of_choices : (string * int) list -> entry list
(** Pin verbatim (domain, answer) pairs — single-candidate entries, as a
    replay file provides. *)

val choices_of_entries : entry list -> (string * int) list

type config = {
  depth : int;  (** max branchable choice points per execution *)
  fault_budget : int;  (** max oracle-injected drops per execution *)
  reduce : bool;  (** commutative-delivery reduction *)
  prune : bool;  (** fingerprint pruning (needs a model fingerprint) *)
  max_schedules : int;  (** cap per root partition; [max_int] = none *)
  stop_at_first : bool;  (** stop each partition at its first violation *)
}

val default_config : config
(** depth 12, no faults, reduction on, pruning off, no caps. *)

type exec = {
  x_trail : entry list;  (** every consultation, in order *)
  x_branches : int;  (** how many had more than one candidate *)
  x_truncated : bool;  (** hit the depth bound *)
  x_pruned : bool;  (** abandoned by fingerprint pruning *)
  x_violations : string list;
  x_digest : string;  (** the model's outcome summary *)
}

type report = {
  r_model : string;
  r_config : config;
  r_partitions : int;
  r_executions : int;  (** executions run (discovery probe excluded) *)
  r_truncated : int;
  r_pruned : int;
  r_capped : bool;  (** some partition hit [max_schedules] *)
  r_max_branches : int;
  r_violating : int;  (** executions with at least one violation *)
  r_violations : string list;  (** distinct violation lines, sorted *)
  r_counterexample : exec option;
      (** first violating execution, in deterministic partition order *)
  r_wall : float;
}

val explore : ?jobs:int -> config:config -> Models.t -> report
(** Sweep the bounded schedule space.  [jobs <= 1] explores partitions
    sequentially; higher job counts run them on a {!Exec.Pool} — the
    report differs only in [r_wall]. *)

val replay : config:config -> Models.t -> entry list -> exec
(** Re-execute one trail: the entries answer the oracle verbatim (sched
    answers are clamped into the tied range if the trail drifted), every
    later consultation takes the default.  Pruning is disabled. *)

val minimize :
  config:config -> ?max_replays:int -> Models.t -> entry list -> entry list option
(** Greedy counterexample reduction (truncate, zero defaults, truncate),
    each probe a full {!replay}, capped at [max_replays] (default 2000).
    [None] when the input trail does not violate to begin with. *)

val nondefault_count : entry list -> int
(** How many entries differ from the default choice — the minimized
    counterexample's size. *)

val pp_report : Format.formatter -> report -> unit
(** Full report including wall time and schedules/sec. *)

val pp_report_stable : Format.formatter -> report -> unit
(** The same report without timing — byte-identical across job counts
    and machines; what [--report-out] writes and CI diffs. *)
