(** Bounded, stateless schedule exploration over {!Dsim.Engine}.

    The explorer enumerates executions of a {!Models.t} instead of
    sampling them: it installs a {!Dsim.Engine.oracle}, records every
    consultation (same-tick event order, per-message delay slack,
    drop-or-deliver) into a {e trail}, and performs a depth-first sweep
    by re-running the model from scratch with ever-longer pinned
    prefixes — the standard stateless-model-checking loop.

    Bounds and reductions (all per execution):
    - [depth] caps the number of {e branchable} choice points; once
      exhausted the run continues under default (FIFO, no-drop) choices
      and is counted as truncated, so "0 violations" claims read "on
      every schedule that differs from the default in at most [depth]
      choice points".
    - [fault_budget] caps oracle-injected message drops.
    - [reduction] picks the partial-order reduction:
      {ul
      {- [Rnone] — enumerate every ordering of every tie.}
      {- [Rsleep] — collapse same-tick events owned by distinct
         processes (network deliveries to distinct recipients) to a
         single ordering; sound under the recipient-locality of
         deliveries; any unowned tied event disables it for that tick.}
      {- [Rdpor] — dynamic partial-order reduction: explore only the
         default ordering plus the reversals the post-run race analysis
         ({!Dpor.backtracks}) demands, each capped to the sleep class
         universe, so the DPOR tree is always a subtree of sleep's.
         Fingerprint caching is enabled automatically when the model
         has a fingerprint — it is what lets DPOR revisit strictly
         fewer schedules than sleep on models whose canonical states
         converge across within-class permutations.}}
    - [prune] memoizes model fingerprints with their remaining depth and
      abandons executions whose state was already explored at least as
      deeply.  Sound at any fault budget {e provided} the fingerprint
      folds in the wire state and remaining budget (see
      {!Models.instance.fingerprint}).
    - [audit] (N > 0) re-checks the fingerprint: every Nth would-be
      prune continues instead, with schedule choices forced to defaults
      but fault consultations kept eager (faults are input
      nondeterminism — collapsing them would hide drop-dependent
      subtrees from the backtracking loop, exactly the masked bugs the
      audit hunts).  A violation found only by such a continuation is
      reported as an audit failure — evidence the fingerprint collides
      (or omits live state) and pruning lost a bug.  An audited run
      replaces a pruned one 1:1, though its eager fault entries can open
      subtrees a plain prune would have hidden; the Nth-counter is
      per-partition, so reports stay deterministic at every job count.

    Parallelism: discovery runs expand a breadth-first frontier of
    [frontier] prefix partitions (a config constant, never derived from
    the job count); partitions run through {!Exec.Pool} and merge in
    sorted prefix order, so reports are byte-identical at every job
    count. *)

exception Pruned
(** Raised by the oracle (outside any process fiber) to abandon a
    fingerprint-pruned execution. *)

type entry = {
  e_domain : string;  (** which choice domain was consulted *)
  e_cands : int array;  (** candidate answers, default first *)
  e_pos : int;  (** index into [e_cands] this execution took *)
}
(** One oracle consultation, as recorded in a trail. *)

val entry_value : entry -> int
(** The answer actually given: [e_cands.(e_pos)]. *)

val entries_of_choices : (string * int) list -> entry list
(** Pin verbatim (domain, answer) pairs — single-candidate entries, as a
    replay file provides. *)

val choices_of_entries : entry list -> (string * int) list

(** Which partial-order reduction the sweep applies. *)
type reduction = Rnone | Rsleep | Rdpor

val reduction_name : reduction -> string
(** ["none"], ["sleep"], ["dpor"] — the CLI spelling. *)

type config = {
  depth : int;  (** max branchable choice points per execution *)
  fault_budget : int;  (** max oracle-injected drops per execution *)
  reduction : reduction;  (** partial-order reduction mode *)
  prune : bool;  (** fingerprint pruning (needs a model fingerprint);
                     [Rdpor] enables it implicitly *)
  audit : int;  (** audit every Nth would-be prune; 0 = off *)
  frontier : int;  (** target number of parallel partitions *)
  max_schedules : int;  (** cap per partition; [max_int] = none *)
  stop_at_first : bool;  (** stop each partition at its first violation *)
}

val default_config : config
(** depth 12, no faults, sleep reduction, pruning off, audit off,
    frontier 16, no caps. *)

type exec = {
  x_trail : entry list;  (** every consultation, in order *)
  x_branches : int;  (** how many were branchable choice points *)
  x_truncated : bool;  (** hit the depth bound *)
  x_pruned : bool;  (** abandoned by fingerprint pruning (audited
                        continuations count here too) *)
  x_audited : bool;  (** a would-be prune that ran on under forced
                         defaults to audit the fingerprint *)
  x_violations : string list;
  x_audit_violations : string list;
      (** violations found by the audited continuation only — not part
          of the report's violation set; compared against it instead *)
  x_digest : string;  (** the model's outcome summary *)
}

type report = {
  r_model : string;
  r_config : config;
  r_partitions : int;
  r_executions : int;  (** executions run (discovery probes excluded) *)
  r_truncated : int;
  r_pruned : int;
  r_audited : int;  (** audited continuations among the pruned *)
  r_capped : bool;  (** some partition hit [max_schedules] *)
  r_max_branches : int;
  r_violating : int;  (** executions with at least one violation *)
  r_violations : string list;  (** distinct violation lines, sorted *)
  r_audit_failures : string list;
      (** violations audited continuations found that the sweep's
          violation set misses — each one convicts the fingerprint *)
  r_counterexample : exec option;
      (** first violating execution, in deterministic partition order *)
  r_wall : float;
}

val explore : ?jobs:int -> config:config -> Models.t -> report
(** Sweep the bounded schedule space.  [jobs <= 1] explores partitions
    sequentially; higher job counts run them on a {!Exec.Pool} — the
    report differs only in [r_wall]. *)

val replay : config:config -> Models.t -> entry list -> exec
(** Re-execute one trail: the entries answer the oracle verbatim (sched
    answers are clamped into the tied range if the trail drifted), every
    later consultation takes the default.  Pruning and auditing are
    disabled; works for trails from any reduction mode and from the PCT
    sampler, since all record plain (domain, answer) sequences. *)

val minimize :
  config:config -> ?max_replays:int -> Models.t -> entry list -> entry list option
(** Greedy counterexample reduction (truncate, zero defaults, truncate),
    each probe a full {!replay}, capped at [max_replays] (default 2000).
    [None] when the input trail does not violate to begin with. *)

val nondefault_count : entry list -> int
(** How many entries differ from the default choice — the minimized
    counterexample's size. *)

val pp_report : Format.formatter -> report -> unit
(** Full report including wall time and schedules/sec. *)

val pp_report_stable : Format.formatter -> report -> unit
(** The same report without timing — byte-identical across job counts
    and machines; what [--report-out] writes and CI diffs. *)
