(** Checkable systems for the schedule explorer.

    A model packages "one bounded execution of a protocol plus its
    property monitors" behind a uniform interface: the explorer creates a
    fresh {!instance} per execution, runs it under a
    {!Dsim.Engine.oracle} and reads back the violations.  Instances are
    single-use and must be deterministic given the oracle's answers —
    that is what makes executions replayable from a choice trail alone. *)

type fp_ctx = { drops_left : int }
(** Explorer-side context a fingerprint must fold in: [drops_left] is
    the unspent fault budget at the consultation point.  Two states
    with equal protocol state but different remaining budgets have
    different reachable futures (one can still lose a message), so a
    fingerprint that ignored it would prune live subtrees. *)

type instance = {
  run : Dsim.Engine.oracle -> unit;
      (** one full execution; must build its own engine, install the
          oracle before spawning anything and run to completion *)
  violations : unit -> string list;
      (** property violations of the completed run, formatted; empty
          means the execution satisfied every checked property *)
  digest : unit -> string;
      (** one-line summary of the observable outcome (decisions, final
          outputs, engine outcome) — what the determinism regression
          compares across replays *)
  fingerprint : (fp_ctx -> int) option;
      (** state hash usable {e mid-run} for pruning: equal fingerprints
          must imply equal reachable futures at any fault budget, which
          requires hashing in-flight messages and [fp_ctx.drops_left]
          alongside delivered state.  [None] when the model cannot
          capture its full state (pruning is then unavailable). *)
}

type t = {
  name : string;
  describe : string;
  make : unit -> instance;  (** a fresh, unrun instance *)
}

val benor :
  ?n:int -> ?inputs:bool array -> check_termination:bool -> unit -> t
(** Ben-Or VAC consensus (default n=3, alternating inputs), checked with
    the VAC + consensus monitors.  [check_termination] additionally
    treats non-quiescent outcomes and process failures as violations —
    enable it only when the explorer injects no message drops. *)

val phase_king : ?n:int -> ?inputs:int array -> unit -> t
(** Phase-King with [t = (n-1)/3] Byzantine camp-splitters (default n=4,
    so exactly one Byzantine processor), AC + agreement/validity
    monitors, termination always required (the network is synchronous). *)

val vac2ac : ?n:int -> ?inputs:bool array -> unit -> t
(** The Section-5 two-AC ⇒ VAC construction over shared registers, one
    register operation per process per tick; VAC monitors. *)

val ac_of_vac : ?n:int -> ?inputs:bool array -> unit -> t
(** The Section-5 VAC ⇒ AC demotion stacked on {!vac2ac}'s object; AC
    monitors. *)

val toy_ac :
  ?broken:bool ->
  ?n:int ->
  ?inputs:bool array ->
  check_termination:bool ->
  unit ->
  t
(** A two-phase message-passing adopt-commit ([2t < n]) whose [broken]
    variant commits on a single agreement flag — correct on the default
    FIFO schedule, incoherent under reordering.  The designated mutant
    for "the explorer must catch this".  The only built-in model with a
    {!instance.fingerprint}; the hash folds in the wire state and the
    remaining fault budget, so pruning is sound at any budget, and
    canonicalizes consumed inbox prefixes by phase, which is what lets
    DPOR + caching beat sleep-set reduction's execution count. *)

val uc_queue : ?broken:bool -> ?n:int -> unit -> t
(** Herlihy's universal construction over registers + consensus cells,
    instantiated at a FIFO queue: [n] (default 2) processes each
    enqueue a distinct value then dequeue, one register operation per
    engine step, Wing–Gong linearizability as the checked property.
    The [broken] variant replaces the decideNext consensus with a plain
    last-write-wins register write — sound on sequential schedules, but
    a racing schedule drops the losing enqueue from the chain (both
    dequeues answer the same value), which the explorer must catch. *)

val omega_ac : ?broken:bool -> ?n:int -> ?inputs:bool array -> unit -> t
(** The failure-detector suspicion race in miniature (default n=2,
    lock-step): node 0 is the Ω-elected coordinator broadcasting its
    input; every waiter arms a suspicion deadline that ties with the
    delivery tick, so the explorer's same-tick scheduling choice decides
    which fires first.  The correct variant is indulgent — suspicion is
    only a note, the waiter still decides the proposed value — and
    agrees on every schedule.  The [broken] variant decides its own
    input the moment suspicion beats delivery (trusting the detector
    for safety), and the explorer must convict that schedule. *)

val names : string list
(** Model names {!of_name} accepts. *)

val of_name : ?n:int -> string -> fault_budget:int -> t
(** Look a model up by name with per-model defaults; [fault_budget] is
    the explorer's drop budget, used to decide whether termination can be
    demanded.  @raise Invalid_argument on unknown names. *)
