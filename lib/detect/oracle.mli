(** Heartbeat failure-detector oracles: ◊P, ◊S and Ω.

    The concrete detector is eventually perfect (◊P): every node sends
    heartbeats each {!Timeout.params.period} ticks and suspects a peer
    whose heartbeat misses an adaptive per-peer deadline — timeouts
    grow by backoff on suspicion and shrink on a late heartbeat, so
    after finitely many mistakes no correct process is suspected.
    ◊S is the same suspicion sets read permissively ({!trusted}), and
    Ω is derived: {!leader} is the minimum unsuspected process in the
    querying node's view, so once ◊P converges all correct nodes
    elect the same leader (an explicit ["detect"]-tagged
    ["omega stable"] trace event marks the transition).

    The oracle never owns the network: heartbeats go out through the
    [send_heartbeat] callback and come back through
    {!deliver_heartbeat}, so nemesis partitions and crashes perturb
    detector traffic exactly as they do protocol traffic.

    Lying mutants wrap the query surface only; the machinery below
    stays honest.  Indulgent protocols must stay safe under them. *)

type mutant =
  | Honest
  | False_suspect of int  (** permanently claims this process is dead *)
  | Rotating  (** answers every Ω query with a fresh rotation *)

type stats = {
  mutable suspicions : int;
  mutable false_suspicions : int;  (** suspected peer was in fact live *)
  mutable unsuspicions : int;
  mutable omega_changes : int;  (** global leader-view transitions *)
  mutable omega_stable_at : int option;
      (** virtual time all live nodes last converged on one leader;
          [None] while their views disagree (always [None] under
          [Rotating]) *)
}

type t

val create :
  engine:Dsim.Engine.t ->
  n:int ->
  ?params:Timeout.params ->
  ?mutant:mutant ->
  send_heartbeat:(me:int -> unit) ->
  is_live:(int -> bool) ->
  unit ->
  t
(** A detector for nodes [0 .. n-1].  [send_heartbeat ~me] must
    broadcast a heartbeat from [me] (the caller owns message type and
    network); [is_live] reports network-level crash state and gates
    both heartbeat sending and the false-suspicion statistics.
    @raise Invalid_argument if [params] fails {!Timeout.valid}. *)

val start : t -> unit
(** Spawn the per-node heartbeat senders and arm all initial
    deadlines.  Call once, before running the engine. *)

val stop : t -> unit
(** Stop heartbeats and ignore outstanding deadline wakers, letting
    the engine go quiescent. *)

val deliver_heartbeat : t -> me:int -> from:int -> unit
(** Feed a received heartbeat into [me]'s view of [from]: unsuspects
    (shrinking the timeout) and re-arms the deadline. *)

val leader : t -> me:int -> int
(** Ω query from [me]'s view: minimum unsuspected process.  Under
    [Rotating] each query advances [me]'s private rotation. *)

val suspects : t -> me:int -> peer:int -> bool
(** ◊P query: does [me] currently suspect [peer]? *)

val trusted : t -> me:int -> int list
(** ◊S view: the complement of [me]'s suspect list. *)

val params : t -> Timeout.params
val stats : t -> stats
