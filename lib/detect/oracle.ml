(* Heartbeat failure detector over Dsim virtual time.

   Each node broadcasts heartbeats every [period] ticks (through a
   caller-supplied send callback, so the oracle never owns the
   network); each node keeps a per-peer deadline and suspects the peer
   when it passes without a heartbeat.  Timeouts adapt per
   [Timeout]: grow on suspicion, shrink on a late heartbeat — after
   finitely many mistakes every timeout exceeds the real message
   delay, which is exactly the eventually-perfect (◊P) guarantee.
   ◊S is the same suspicion sets read permissively, and Ω is derived:
   the minimum unsuspected process in a node's view.

   Lying mutants wrap the *query* surface only — the underlying
   machinery stays honest, the answers lie — because that is the
   adversary indulgent protocols must survive: [False_suspect v]
   permanently suspects the (correct) process [v]; [Rotating] answers
   every leader query with a fresh rotation so Ω never stabilises. *)

module Engine = Dsim.Engine

type mutant = Honest | False_suspect of int | Rotating

type stats = {
  mutable suspicions : int;
  mutable false_suspicions : int;  (* suspected peer was live *)
  mutable unsuspicions : int;
  mutable omega_changes : int;
  mutable omega_stable_at : int option;
}

type t = {
  engine : Engine.t;
  n : int;
  params : Timeout.params;
  mutant : mutant;
  send_heartbeat : me:int -> unit;
  is_live : int -> bool;
  suspected : bool array array;  (* suspected.(me).(peer) *)
  timeout : int array array;
  deadline : int array array;
  rotation : int array;  (* per-node Rotating query counter *)
  stats : stats;
  mutable last_view : int option;  (* agreed honest leader, if any *)
  mutable stopped : bool;
  mutable k_check : int;  (* flat deadline-waker kind; arg = me * n + from *)
}

let params t = t.params
let stats t = t.stats

(* Leader per [me]'s honest suspicion set; self is never suspected so
   the scan always lands on some p <= me. *)
let honest_leader t ~me =
  let rec go p =
    if p >= t.n then me else if not t.suspected.(me).(p) then p else go (p + 1)
  in
  go 0

(* The deterministic (counter-free) leader view used for stability
   tracking; for [Rotating] there is none — it never stabilises. *)
let stable_leader t ~me =
  match t.mutant with
  | Honest | Rotating -> honest_leader t ~me
  | False_suspect v ->
      let rec go p =
        if p >= t.n then if me <> v then me else (me + 1) mod t.n
        else if p <> v && not t.suspected.(me).(p) then p
        else go (p + 1)
      in
      go 0

let leader t ~me =
  match t.mutant with
  | Honest | False_suspect _ -> stable_leader t ~me
  | Rotating ->
      let k = t.rotation.(me) in
      t.rotation.(me) <- k + 1;
      k mod t.n

let suspects t ~me ~peer =
  match t.mutant with
  | Honest | Rotating -> t.suspected.(me).(peer)
  | False_suspect v -> peer = v || t.suspected.(me).(peer)

let trusted t ~me =
  List.filter (fun p -> not (suspects t ~me ~peer:p)) (List.init t.n Fun.id)

(* Ω-stability bookkeeping: whenever a suspicion set changes, recompute
   whether all live nodes agree on a leader.  [Rotating] is pinned
   unstable by construction. *)
let recheck_stability t =
  let view =
    match t.mutant with
    | Rotating -> None
    | _ -> (
        match List.filter t.is_live (List.init t.n Fun.id) with
        | [] -> None
        | l0 :: rest ->
            let v0 = stable_leader t ~me:l0 in
            if List.for_all (fun l -> stable_leader t ~me:l = v0) rest then
              Some v0
            else None)
  in
  if view <> t.last_view then begin
    t.last_view <- view;
    t.stats.omega_changes <- t.stats.omega_changes + 1;
    match view with
    | Some l ->
        t.stats.omega_stable_at <- Some (Engine.now t.engine);
        Engine.emitk t.engine ~tag:"detect" (fun () ->
            Printf.sprintf "omega stable: leader %d" l)
    | None ->
        t.stats.omega_stable_at <- None;
        Engine.emitk t.engine ~tag:"detect" (fun () -> "omega unstable")
  end

let suspect t ~me ~from =
  if not t.suspected.(me).(from) then begin
    t.suspected.(me).(from) <- true;
    t.timeout.(me).(from) <-
      Timeout.after_suspicion t.params t.timeout.(me).(from);
    if t.is_live me then begin
      t.stats.suspicions <- t.stats.suspicions + 1;
      if t.is_live from then
        t.stats.false_suspicions <- t.stats.false_suspicions + 1
    end;
    Engine.emitk t.engine ~tag:"detect" (fun () ->
        Printf.sprintf "suspect %d->%d timeout=%d" me from
          t.timeout.(me).(from));
    recheck_stability t
  end

let check t ~me ~from =
  if
    (not t.stopped)
    && Engine.now t.engine >= t.deadline.(me).(from)
    && not t.suspected.(me).(from)
  then suspect t ~me ~from

let create ~engine ~n ?(params = Timeout.default) ?(mutant = Honest)
    ~send_heartbeat ~is_live () =
  if not (Timeout.valid params) then invalid_arg "Detect.Oracle.create: invalid timeout parameters";
  let t =
  {
    engine;
    n;
    params;
    mutant;
    send_heartbeat;
    is_live;
    suspected = Array.init n (fun _ -> Array.make n false);
    timeout = Array.init n (fun _ -> Array.make n params.Timeout.initial);
    deadline = Array.init n (fun _ -> Array.make n 0);
    rotation = Array.make n 0;
    stats =
      {
        suspicions = 0;
        false_suspicions = 0;
        unsuspicions = 0;
        omega_changes = 0;
        (* everyone trusts 0 at birth — already stable; Rotating never is *)
        omega_stable_at = (if mutant = Rotating then None else Some 0);
      };
    last_view = (if mutant = Rotating then None else Some 0);
    stopped = false;
    k_check = -1;
  }
  in
  t.k_check <-
    Engine.register_kind engine (fun a -> check t ~me:(a / t.n) ~from:(a mod t.n));
  t

(* Arm (or re-arm) [me]'s deadline for [from] and schedule the waker
   that fires when it passes.  Wakers made stale by a fresh heartbeat
   see [now < deadline] and do nothing; once suspected, no waker is
   re-armed — the next transition can only come from a heartbeat,
   which re-arms on delivery. *)
let arm t ~me ~from =
  let tmo = t.timeout.(me).(from) in
  t.deadline.(me).(from) <- Engine.now t.engine + tmo;
  Engine.schedule_kind t.engine ~owner:(-1) ~delay:tmo ~kind:t.k_check
    ((me * t.n) + from)

let deliver_heartbeat t ~me ~from =
  if not t.stopped then begin
    if t.suspected.(me).(from) then begin
      t.suspected.(me).(from) <- false;
      t.timeout.(me).(from) <-
        Timeout.after_late_heartbeat t.params t.timeout.(me).(from);
      t.stats.unsuspicions <- t.stats.unsuspicions + 1;
      Engine.emitk t.engine ~tag:"detect" (fun () ->
          Printf.sprintf "trust %d->%d timeout=%d" me from
            t.timeout.(me).(from));
      recheck_stability t
    end;
    arm t ~me ~from
  end

let start t =
  for me = 0 to t.n - 1 do
    (* heartbeat sender: broadcasts every period while the run lasts *)
    ignore
      (Engine.spawn t.engine ~name:(Printf.sprintf "hb%d" me) (fun ctx ->
           while not t.stopped do
             if t.is_live me then t.send_heartbeat ~me;
             Engine.sleep ctx t.params.Timeout.period
           done));
    (* initial deadlines for every peer *)
    for from = 0 to t.n - 1 do
      if from <> me then arm t ~me ~from
    done
  done

let stop t = t.stopped <- true
