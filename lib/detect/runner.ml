(* Indulgent one-shot binary consensus driven by the Ω oracle.

   Classic single-decree Paxos with the coordinator elected by the
   failure detector: whoever the detector names leader runs
   prepare/accept rounds with round fencing (ballot = attempt * n +
   me, so ballots are globally unique and totally ordered), retry on
   timeout with exponential backoff, and adoption of the
   highest-ballot accepted value from the promise quorum.

   The split that makes it *indulgent* (safety never depends on the
   detector, only liveness):
   - acceptors never consult the detector — promised/accepted state
     and majority quorums alone fence rounds, so two ballots can
     never both decide different values even if the detector elects
     every process leader at once;
   - the detector is consulted only to decide *who bothers* running
     rounds, and again after the promise quorum (a coordinator that
     lost the lease abandons the round before sending accepts — this
     is the hook through which the Rotating mutant starves liveness
     without ever touching safety).

   Acceptor state ([promised]/[accepted]) is modelled as durable
   across crash–restart, as Paxos requires: a network-level crash
   silences a node (no sends, no receives) but does not erase what it
   promised.  Decisions spread by gossip piggybacked on heartbeats,
   so a decision reached on one side of a healed partition reaches
   everyone without extra machinery. *)

module Engine = Dsim.Engine
module Net = Netsim.Async_net

type msg =
  | Hb of bool option  (* heartbeat, carrying the sender's decision *)
  | Prepare of int
  | Promise of int * (int * bool) option
  | Accept of int * bool
  | Accepted of int
  | Nack of int

type faults = {
  engine : Engine.t;
  crash : int -> unit;
  restart : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
  set_policy : (msg Net.envelope -> Net.policy_verdict) -> unit;
}

type report = {
  n : int;
  outcome : Engine.outcome;
  decisions : bool option array;
  decided_at : int option array;
  agreement_ok : bool;
  validity_ok : bool;
  all_live_decided : bool;
  first_decision : int option;  (* virtual time of the earliest decision *)
  last_decision : int option;  (* ... and of the latest *)
  heartbeats_sent : int;
  suspicions : int;
  false_suspicions : int;
  unsuspicions : int;
  omega_changes : int;
  omega_stable_at : int option;
  messages_sent : int;
  virtual_time : int;
  engine : Engine.t;
}

(* Round state a coordinator shares with its message handler. *)
type round = {
  mutable ballot : int;  (* 0 = no round in flight *)
  mutable promises : (int * bool) option list;
  mutable acks : int;
  mutable nacked : bool;
}

let run ?(n = 4) ?(seed = 1L) ?(params = Timeout.default) ?(mutant = Oracle.Honest)
    ?inputs ?(horizon = 5000) ?(max_events = 2_000_000) ?(quiet = false)
    ?queue ?install () =
  let inputs =
    match inputs with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Detect.Runner.run: |inputs| <> n";
        a
    | None ->
        (* disagreeing defaults so the protocol has something to solve *)
        Array.init n (fun i -> i mod 2 = 0)
  in
  let engine = Engine.create ~seed ~tracing:(not quiet) ?queue () in
  let policy_ref = ref (fun _ -> Net.Deliver) in
  let net = Net.create engine ~n ~policy:(fun e -> !policy_ref e) ~retain_inbox:false () in
  let maj = (n / 2) + 1 in
  let stopped = ref false in
  let heartbeats_sent = ref 0 in
  (* acceptor + learner state; durable across crash-restart *)
  let promised = Array.make n 0 in
  let accepted = Array.make n None in
  let decisions = Array.make n None in
  let decided_at = Array.make n None in
  let rounds = Array.init n (fun _ -> { ballot = 0; promises = []; acks = 0; nacked = false }) in
  let is_live p = not (Net.is_crashed net p) in
  let decide me v =
    if decisions.(me) = None then begin
      decisions.(me) <- Some v;
      decided_at.(me) <- Some (Engine.now engine);
      Engine.emitk engine ~tag:"detect" (fun () ->
          Printf.sprintf "decide %d value=%b" me v)
    end
  in
  let send_heartbeat ~me =
    let dsts = List.filter (fun p -> p <> me) (List.init n Fun.id) in
    heartbeats_sent := !heartbeats_sent + List.length dsts;
    Net.broadcast_to net ~src:me ~dsts (Hb decisions.(me))
  in
  let oracle =
    Oracle.create ~engine ~n ~params ~mutant ~send_heartbeat ~is_live ()
  in
  (* acceptor / collector: runs at delivery time in scheduler context *)
  let handler me (env : msg Net.envelope) =
    let src = env.src in
    match env.payload with
    | Hb d ->
        if src <> me then Oracle.deliver_heartbeat oracle ~me ~from:src;
        (match d with Some v -> decide me v | None -> ())
    | Prepare b ->
        if b > promised.(me) then begin
          promised.(me) <- b;
          Net.send net ~src:me ~dst:(b mod n) (Promise (b, accepted.(me)))
        end
        else Net.send net ~src:me ~dst:(b mod n) (Nack b)
    | Accept (b, v) ->
        if b >= promised.(me) then begin
          promised.(me) <- b;
          accepted.(me) <- Some (b, v);
          Net.send net ~src:me ~dst:(b mod n) (Accepted b)
        end
        else Net.send net ~src:me ~dst:(b mod n) (Nack b)
    | Promise (b, acc) ->
        let r = rounds.(me) in
        if b = r.ballot then r.promises <- acc :: r.promises
    | Accepted b ->
        let r = rounds.(me) in
        if b = r.ballot then r.acks <- r.acks + 1
    | Nack b ->
        let r = rounds.(me) in
        if b = r.ballot then r.nacked <- true
  in
  for me = 0 to n - 1 do
    Net.set_handler net me (handler me)
  done;
  (* Coordinator: poll the detector; when it names us leader, run one
     fenced prepare/accept round against a deadline, doubling the
     round timeout (capped) on every failure. *)
  let poll_period = 11 in
  let coordinator me ctx =
    let attempt = ref 0 in
    let round_timeout = ref params.Timeout.initial in
    while (not !stopped) && decisions.(me) = None do
      if is_live me && Oracle.leader oracle ~me = me then begin
        incr attempt;
        let b = (!attempt * n) + me in
        let r = rounds.(me) in
        r.ballot <- b;
        r.promises <- [];
        r.acks <- 0;
        r.nacked <- false;
        Engine.emitk engine ~tag:"detect" (fun () ->
            Printf.sprintf "round %d ballot=%d timeout=%d" me b !round_timeout);
        let deadline = Engine.now engine + !round_timeout in
        Engine.schedule engine ~delay:!round_timeout ignore;
        Net.broadcast_to net ~src:me
          ~dsts:(List.init n Fun.id)
          (Prepare b);
        let phase1 =
          Engine.await (fun () ->
              if !stopped || decisions.(me) <> None then Some `Stop
              else if r.nacked then Some `Fail
              else if List.length r.promises >= maj then Some `Quorum
              else if Engine.now engine >= deadline then Some `Fail
              else None)
        in
        (match phase1 with
        | `Stop -> ()
        | `Fail ->
            r.ballot <- 0;
            round_timeout := min (2 * !round_timeout) params.Timeout.cap
        | `Quorum ->
            (* indulgence hook: re-confirm the lease before accepts *)
            if Oracle.leader oracle ~me <> me then begin
              r.ballot <- 0;
              Engine.emitk engine ~tag:"detect" (fun () ->
                  Printf.sprintf "round %d ballot=%d abandoned: lease lost" me b)
            end
            else begin
              let v =
                List.fold_left
                  (fun best acc ->
                    match (best, acc) with
                    | best, None -> best
                    | None, some -> some
                    | Some (b1, _), Some (b2, _) ->
                        if b2 > b1 then acc else best)
                  None r.promises
                |> function
                | Some (_, v) -> v
                | None -> inputs.(me)
              in
              Net.broadcast_to net ~src:me ~dsts:(List.init n Fun.id)
                (Accept (b, v));
              let phase2 =
                Engine.await (fun () ->
                    if !stopped || decisions.(me) <> None then Some `Stop
                    else if r.nacked then Some `Fail
                    else if r.acks >= maj then Some `Quorum
                    else if Engine.now engine >= deadline then Some `Fail
                    else None)
              in
              r.ballot <- 0;
              match phase2 with
              | `Stop -> ()
              | `Fail ->
                  round_timeout := min (2 * !round_timeout) params.Timeout.cap
              | `Quorum ->
                  decide me v;
                  (* eager decision broadcast; heartbeats re-gossip it *)
                  Net.broadcast_to net ~src:me
                    ~dsts:(List.filter (fun p -> p <> me) (List.init n Fun.id))
                    (Hb (Some v))
            end)
      end;
      if (not !stopped) && decisions.(me) = None then Engine.sleep ctx poll_period
    done
  in
  for me = 0 to n - 1 do
    ignore
      (Engine.spawn engine ~name:(Printf.sprintf "coord%d" me) (coordinator me))
  done;
  Oracle.start oracle;
  (* Supervisor: once every node knows the decision, stop the detector
     and coordinators so the engine can go quiescent.  It must be all
     [n] nodes, not just the currently-live ones: a node crashed now
     may restart later, and only live heartbeat gossip can hand it the
     decision — stopping early would strand it undecided forever.  A
     permanently-crashed node merely keeps the run going to the
     horizon. *)
  ignore
    (Engine.spawn engine ~name:"supervisor" (fun _ctx ->
         Engine.await_cond (fun () ->
             Array.for_all (fun d -> d <> None) decisions);
         stopped := true;
         Oracle.stop oracle));
  (match install with
  | Some f ->
      f
        {
          engine;
          crash = (fun p -> Net.crash net p);
          restart = (fun p -> Net.restart net p);
          partition = (fun gs -> Net.set_partition net gs);
          heal = (fun () -> Net.heal net);
          set_policy = (fun p -> policy_ref := p);
        }
  | None -> ());
  let outcome = Engine.run ~until:horizon ~max_events engine in
  stopped := true;
  Oracle.stop oracle;
  let decided_list =
    Array.to_list decisions |> List.filter_map Fun.id
  in
  let agreement_ok =
    match decided_list with
    | [] -> true
    | v :: rest -> List.for_all (( = ) v) rest
  in
  let validity_ok =
    (* binary validity: any decision must be some process's input *)
    List.for_all (fun v -> Array.exists (( = ) v) inputs) decided_list
  in
  let all_live_decided =
    decided_list <> []
    && List.for_all
         (fun p -> (not (is_live p)) || decisions.(p) <> None)
         (List.init n Fun.id)
  in
  let times = Array.to_list decided_at |> List.filter_map Fun.id in
  let st = Oracle.stats oracle in
  {
    n;
    outcome;
    decisions;
    decided_at;
    agreement_ok;
    validity_ok;
    all_live_decided;
    first_decision = (match times with [] -> None | l -> Some (List.fold_left min max_int l));
    last_decision = (match times with [] -> None | l -> Some (List.fold_left max min_int l));
    heartbeats_sent = !heartbeats_sent;
    suspicions = st.Oracle.suspicions;
    false_suspicions = st.Oracle.false_suspicions;
    unsuspicions = st.Oracle.unsuspicions;
    omega_changes = st.Oracle.omega_changes;
    omega_stable_at = st.Oracle.omega_stable_at;
    messages_sent = Net.messages_sent net;
    virtual_time = Engine.now engine;
    engine;
  }

(* Fault-free wrapper with the {!Rsm.Backend.S} contract: decide one
   binary value over [inputs] and charge the virtual time it took.
   Tight detector parameters keep the nested instance cheap — with
   nobody suspected, node 0 is leader immediately and decides in two
   round trips. *)
let decide ~seed ~inputs =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Detect.Runner.decide: empty inputs";
  if n = 1 then (inputs.(0), 0)
  else
    let r =
      run ~n ~seed ~inputs ~quiet:true
        ~params:{ Timeout.default with period = 40; initial = 120 }
        ~horizon:4000 ()
    in
    match Array.to_list r.decisions |> List.filter_map Fun.id with
    | v :: _ -> (v, Option.value r.last_decision ~default:r.virtual_time)
    | [] ->
        (* unreachable fault-free; fail loudly rather than invent a value *)
        failwith "Detect.Runner.decide: nested instance did not decide"
