(** Pure adaptive-timeout arithmetic for the ◊P heartbeat detector.

    Timeouts are per-peer and measured in virtual-time ticks.  The two
    adjustment rules implement the classic eventually-perfect recipe:
    every (possibly false) suspicion multiplies the timeout by
    [backoff_num/backoff_den] (strictly increasing, clamped at [cap]),
    and a heartbeat arriving from a currently-suspected peer — proof
    the suspicion was premature — shrinks it back additively, never
    below [initial]. *)

type params = {
  period : int;  (** heartbeat send period, virtual-time ticks *)
  initial : int;  (** starting timeout per peer *)
  backoff_num : int;  (** growth factor numerator *)
  backoff_den : int;  (** growth factor denominator *)
  cap : int;  (** timeouts never exceed this *)
  shrink : int;  (** additive shrink on a late heartbeat *)
}

val default : params
(** Sized so benign runs under the simulator's default Uniform(1,10)
    link latency produce zero false suspicions at every seed. *)

val valid : params -> bool
(** Well-formedness: positive period/initial, a genuinely growing
    backoff factor, [cap >= initial], non-negative shrink. *)

val after_suspicion : params -> int -> int
(** New timeout after a suspicion fires: grows by the backoff factor,
    strictly (at least +1) and at most to [cap]. *)

val after_late_heartbeat : params -> int -> int
(** New timeout after a heartbeat from a suspected peer: shrinks by
    [shrink], floored at [initial]. *)
