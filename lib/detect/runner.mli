(** Indulgent one-shot consensus: single-decree Paxos with the
    coordinator elected by the Ω oracle.

    Safety (agreement + validity) comes from ballot fencing and
    majority quorums alone — acceptors never consult the detector —
    so it holds in {e every} execution, including under the lying
    mutants.  Liveness is conditional: whenever the detector
    eventually stabilises on a live leader that can reach a majority,
    the run decides.  That split is the indulgence argument of
    DESIGN §14. *)

type msg =
  | Hb of bool option  (** heartbeat carrying the sender's decision *)
  | Prepare of int
  | Promise of int * (int * bool) option
  | Accept of int * bool
  | Accepted of int
  | Nack of int

(** Fault-injection surface handed to [install] — the hooks
    [Nemesis.Interp.install_detect] drives.  Crash/restart are
    network-level (a crashed node stops sending and receiving);
    acceptor state is modelled durable, as Paxos requires. *)
type faults = {
  engine : Dsim.Engine.t;
  crash : int -> unit;
  restart : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
  set_policy : (msg Netsim.Async_net.envelope -> Netsim.Async_net.policy_verdict) -> unit;
}

type report = {
  n : int;
  outcome : Dsim.Engine.outcome;
  decisions : bool option array;
  decided_at : int option array;
  agreement_ok : bool;
  validity_ok : bool;
  all_live_decided : bool;
      (** at least one decision, and every network-live node has it *)
  first_decision : int option;
  last_decision : int option;
  heartbeats_sent : int;
  suspicions : int;
  false_suspicions : int;
  unsuspicions : int;
  omega_changes : int;
  omega_stable_at : int option;
  messages_sent : int;
  virtual_time : int;
  engine : Dsim.Engine.t;
}

val run :
  ?n:int ->
  ?seed:int64 ->
  ?params:Timeout.params ->
  ?mutant:Oracle.mutant ->
  ?inputs:bool array ->
  ?horizon:int ->
  ?max_events:int ->
  ?quiet:bool ->
  ?queue:Dsim.Equeue.backend ->
  ?install:(faults -> unit) ->
  unit ->
  report
(** One simulated instance.  Defaults: [n = 4], disagreeing inputs,
    honest detector, [horizon = 5000].  [install] runs after setup and
    before the engine, so a nemesis plan can be scheduled against the
    run.  Deterministic in all arguments, including the [queue]
    backend choice. *)

val decide : seed:int64 -> inputs:bool array -> bool * int
(** The {!Rsm.Backend.S} contract: a fresh fault-free nested instance
    deciding one binary value, returning (decision, virtual time
    taken).  [inputs] must be non-empty. *)
