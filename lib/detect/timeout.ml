(* Adaptive timeout arithmetic for the eventually-perfect detector.
   Pure integer functions over virtual-time ticks so the adjustment
   rules are qcheck-able in isolation from the simulator: on every
   suspicion the timeout grows by a rational backoff factor (so a
   finite number of false suspicions pushes it past any fixed message
   delay — the ◊P convergence argument), on a late heartbeat from a
   suspected peer it shrinks additively (so over-conservative timeouts
   recover, but never below the floor that keeps benign runs
   suspicion-free). *)

type params = {
  period : int;  (** heartbeat send period, virtual-time ticks *)
  initial : int;  (** starting timeout per peer *)
  backoff_num : int;  (** growth factor numerator *)
  backoff_den : int;  (** growth factor denominator *)
  cap : int;  (** timeouts never exceed this *)
  shrink : int;  (** additive shrink on a late heartbeat *)
}

(* Under the simulator's default Uniform(1,10) link latency the gap
   between consecutive heartbeat arrivals is at most period + 10 - 1,
   so initial = 50 > 29 leaves benign runs with zero false
   suspicions at every seed (pinned by a qcheck property). *)
let default =
  {
    period = 20;
    initial = 50;
    backoff_num = 3;
    backoff_den = 2;
    cap = 800;
    shrink = 5;
  }

let valid p =
  p.period > 0 && p.initial > 0
  && p.backoff_num > p.backoff_den
  && p.backoff_den > 0
  && p.cap >= p.initial
  && p.shrink >= 0

(* Growth is strict (max (t+1)) even when the rational factor rounds
   down to identity, so repeated suspicions always make progress
   toward the cap. *)
let after_suspicion p t =
  min p.cap (max (t + 1) (t * p.backoff_num / p.backoff_den))

let after_late_heartbeat p t = max p.initial (t - p.shrink)
