type 'msg strategy = {
  strategy_name : string;
  act :
    round:int ->
    byz:int ->
    view:'msg option array ->
    dst:int ->
    rng:Dsim.Rng.t ->
    'msg option;
}

type 'msg t = {
  eng : Dsim.Engine.t;
  size : int;
  byz : bool array;
  strategy : 'msg strategy;
  rng : Dsim.Rng.t;
  mutable round : int;
  pending : 'msg option array;
  submitted : bool array;
  participating : bool array;
  (* round -> per-destination rows: results.(dst).(src) *)
  results : (int, 'msg option array array) Hashtbl.t;
}

let create eng ~n ~byzantine ~strategy =
  if n <= 0 then invalid_arg "Sync_net.create: n must be positive";
  let byz = Array.make n false in
  List.iter
    (fun id ->
      if id < 0 || id >= n then
        invalid_arg (Printf.sprintf "Sync_net.create: bad byzantine id %d" id);
      if byz.(id) then
        invalid_arg (Printf.sprintf "Sync_net.create: duplicate byzantine id %d" id);
      byz.(id) <- true)
    byzantine;
  let participating = Array.init n (fun i -> not byz.(i)) in
  {
    eng;
    size = n;
    byz;
    strategy;
    rng = Dsim.Rng.split (Dsim.Engine.rng eng);
    round = 0;
    pending = Array.make n None;
    submitted = Array.make n false;
    participating;
    results = Hashtbl.create 16;
  }

let n t = t.size
let engine t = t.eng

let check_id t id what =
  if id < 0 || id >= t.size then
    invalid_arg (Printf.sprintf "Sync_net.%s: bad id %d" what id)

let is_byzantine t id =
  check_id t id "is_byzantine";
  t.byz.(id)

let byzantine_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.byz

let current_round t = t.round

let all_submitted t =
  let ok = ref true in
  for i = 0 to t.size - 1 do
    if t.participating.(i) && not t.submitted.(i) then ok := false
  done;
  !ok

(* Build the delivery matrix once every participating correct processor has
   handed in its message for the round, then open the next round. *)
let try_complete t =
  if all_submitted t then begin
    let view = Array.copy t.pending in
    let round = t.round in
    let matrix =
      Array.init t.size (fun dst ->
          Array.init t.size (fun src ->
              if t.byz.(src) then
                t.strategy.act ~round ~byz:src ~view ~dst ~rng:t.rng
              else if t.participating.(src) then t.pending.(src)
              else None))
    in
    Hashtbl.replace t.results round matrix;
    Array.fill t.pending 0 t.size None;
    Array.fill t.submitted 0 t.size false;
    t.round <- round + 1;
    Dsim.Engine.emitk t.eng ~tag:"sync-round" (fun () ->
        Printf.sprintf "round %d complete" round)
  end

let exchange t ~me msg =
  check_id t me "exchange";
  if t.byz.(me) then invalid_arg "Sync_net.exchange: Byzantine ids run no code";
  if not t.participating.(me) then invalid_arg "Sync_net.exchange: crashed";
  if t.submitted.(me) then invalid_arg "Sync_net.exchange: double submission";
  let round = t.round in
  t.pending.(me) <- Some msg;
  t.submitted.(me) <- true;
  try_complete t;
  let row =
    Dsim.Engine.await (fun () ->
        match Hashtbl.find_opt t.results round with
        | Some matrix -> Some matrix.(me)
        | None -> None)
  in
  row

let crash t id =
  check_id t id "crash";
  if t.participating.(id) then begin
    t.participating.(id) <- false;
    t.submitted.(id) <- false;
    t.pending.(id) <- None;
    Dsim.Engine.emit t.eng ~pid:id ~tag:"crash-sync" "left the barrier";
    try_complete t
  end
