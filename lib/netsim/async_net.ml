type 'msg envelope = {
  env_id : int;
  src : int;
  dst : int;
  sent_at : int;
  payload : 'msg;
}

type policy_verdict = Deliver | Drop | Duplicate of int | Delay_extra of int

type 'msg node = {
  mutable delivered : 'msg envelope list;  (* newest first *)
  mutable crashed : bool;
  mutable handler : ('msg envelope -> unit) option;
}

type 'msg t = {
  eng : Dsim.Engine.t;
  size : int;
  latency : Latency.t;
  policy : 'msg envelope -> policy_verdict;
  rng : Dsim.Rng.t;
  retain_inbox : bool;
  nodes : 'msg node array;
  mutable partition : int array option;  (* node -> group id; -1 isolated *)
  mutable partition_groups : int list list option;  (* as installed *)
  mutable next_env : int;
  mutable sent : int;
  mutable deliveries : int;
  (* in-flight envelope arena: deliveries are flat engine events (one
     registered kind, arg = arena slot) instead of a closure each *)
  mutable k_deliver : int;
  mutable pend : 'msg envelope array;
  mutable pnext : int array;  (* freelist links, -1 terminates *)
  mutable pfree : int;
  mutable ptop : int;
}

let grow_pending t filler =
  let cap = Array.length t.pend in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let pend = Array.make ncap filler and pnext = Array.make ncap (-1) in
  Array.blit t.pend 0 pend 0 cap;
  Array.blit t.pnext 0 pnext 0 cap;
  t.pend <- pend;
  t.pnext <- pnext

let alloc_pending t env =
  let slot =
    if t.pfree >= 0 then begin
      let s = t.pfree in
      t.pfree <- t.pnext.(s);
      s
    end
    else begin
      if t.ptop = Array.length t.pend then grow_pending t env;
      let s = t.ptop in
      t.ptop <- s + 1;
      s
    end
  in
  t.pend.(slot) <- env;
  slot

(* The delivery event: free the slot first (the handler below may send,
   recycling it), then run what used to be the per-delivery closure. *)
let run_delivery t slot =
  let env = t.pend.(slot) in
  t.pnext.(slot) <- t.pfree;
  t.pfree <- slot;
  (* [t.pend.(slot)] keeps the envelope until the slot is reused — the
     same bounded retention a popped heap tail has. *)
  let node = t.nodes.(env.dst) in
  if not node.crashed then begin
    if t.retain_inbox then begin
      node.delivered <- env :: node.delivered;
      (* Per-message tracing is only affordable at inbox-retention
         scale; counter-based protocols run millions of messages.
         The thunk keeps quiet engines allocation-free here. *)
      Dsim.Engine.emitk t.eng ~pid:env.dst ~tag:"recv" (fun () ->
          Printf.sprintf "#%d from %d" env.env_id env.src)
    end;
    t.deliveries <- t.deliveries + 1;
    match node.handler with Some f -> f env | None -> ()
  end

let create eng ~n ?(latency = Latency.Uniform (1, 10)) ?(policy = fun _ -> Deliver)
    ?(retain_inbox = true) () =
  if n <= 0 then invalid_arg "Async_net.create: n must be positive";
  let t =
    {
      eng;
      size = n;
      latency;
      policy;
      rng = Dsim.Rng.split (Dsim.Engine.rng eng);
      retain_inbox;
      nodes = Array.init n (fun _ -> { delivered = []; crashed = false; handler = None });
      partition = None;
      partition_groups = None;
      next_env = 0;
      sent = 0;
      deliveries = 0;
      k_deliver = -1;
      pend = [||];
      pnext = [||];
      pfree = -1;
      ptop = 0;
    }
  in
  t.k_deliver <- Dsim.Engine.register_kind eng (fun slot -> run_delivery t slot);
  t

let n t = t.size
let engine t = t.eng

let check_id t id what =
  if id < 0 || id >= t.size then
    invalid_arg (Printf.sprintf "Async_net.%s: bad node id %d" what id)

let same_side t ~src ~dst =
  match t.partition with
  | None -> true
  | Some groups ->
      let gs = groups.(src) and gd = groups.(dst) in
      gs >= 0 && gs = gd

let deliver t env ~delay =
  (* The delivery only touches [env.dst]'s node state (inbox, handler),
     so label it with the recipient: same-tick deliveries to distinct
     recipients commute, which mcheck's reduction exploits. *)
  let slot = alloc_pending t env in
  Dsim.Engine.schedule_kind t.eng ~owner:env.dst ~delay ~kind:t.k_deliver slot

let send t ~src ~dst msg =
  check_id t src "send";
  check_id t dst "send";
  t.sent <- t.sent + 1;
  if t.nodes.(src).crashed then ()
  else if not (same_side t ~src ~dst) then
    Dsim.Engine.emitk t.eng ~pid:src ~tag:"drop-partition" (fun () ->
        Printf.sprintf "to %d" dst)
  else begin
    let env =
      {
        env_id = t.next_env;
        src;
        dst;
        sent_at = Dsim.Engine.now t.eng;
        payload = msg;
      }
    in
    t.next_env <- t.next_env + 1;
    let oracle = Dsim.Engine.oracle t.eng in
    let delay_once ?(extra = 0) () =
      match oracle with
      | Some o ->
          (* Exploration owns the latency: a base delay of 1 (never 0 —
             the recipient-commutativity argument needs deliveries to
             land strictly after the sending tick) plus whatever slack
             the oracle asks for.  The latency model and its RNG are not
             consulted at all under an oracle. *)
          1 + extra
          + o.Dsim.Engine.choose
              {
                Dsim.Engine.c_domain = "net.delay";
                c_arity = 0;
                c_owners = [||];
                c_time = 0;
                c_seqs = [||];
                c_creators = [||];
              }
      | None -> extra + Latency.draw t.latency ~src ~dst ~rng:t.rng
    in
    match t.policy env with
    | Drop ->
        Dsim.Engine.emitk t.eng ~pid:src ~tag:"drop-policy" (fun () ->
            Printf.sprintf "to %d" dst)
    | Deliver -> (
        (* Under an oracle, every policy-approved message is additionally
           a drop-or-deliver choice point (0 = deliver, 1 = drop), so the
           explorer can enumerate message-loss scenarios on top of
           delivery orders. *)
        let oracle_drop =
          match oracle with
          | Some o ->
              o.Dsim.Engine.choose
                {
                  Dsim.Engine.c_domain = "net.fault";
                  c_arity = 2;
                  c_owners = [||];
                  c_time = 0;
                  c_seqs = [||];
                  c_creators = [||];
                }
              = 1
          | None -> false
        in
        if oracle_drop then
          Dsim.Engine.emitk t.eng ~pid:src ~tag:"drop-explore" (fun () ->
              Printf.sprintf "to %d" dst)
        else deliver t env ~delay:(delay_once ()))
    | Delay_extra extra -> deliver t env ~delay:(delay_once ~extra ())
    | Duplicate copies ->
        for _ = 0 to copies do
          deliver t env ~delay:(delay_once ())
        done
  end

let broadcast t ~src msg =
  for dst = 0 to t.size - 1 do
    send t ~src ~dst msg
  done

let broadcast_to t ~src ~dsts msg = List.iter (fun dst -> send t ~src ~dst msg) dsts

let inbox t id =
  check_id t id "inbox";
  List.rev t.nodes.(id).delivered

(* Scheduled-but-undelivered envelopes, in env_id order.  Walks the
   pending arena minus its freelist — O(arena); meant for model-checker
   fingerprints, not hot paths. *)
let in_flight t =
  let free = Array.make t.ptop false in
  let f = ref t.pfree in
  while !f >= 0 do
    if !f < t.ptop then free.(!f) <- true;
    f := t.pnext.(!f)
  done;
  let acc = ref [] in
  for slot = t.ptop - 1 downto 0 do
    if not free.(slot) then acc := t.pend.(slot) :: !acc
  done;
  List.sort (fun a b -> compare a.env_id b.env_id) !acc

let inbox_count t id pred =
  check_id t id "inbox_count";
  List.fold_left
    (fun acc env -> if pred env then acc + 1 else acc)
    0 t.nodes.(id).delivered

let distinct_senders t id pred =
  check_id t id "distinct_senders";
  let seen = Array.make t.size false in
  let count = ref 0 in
  List.iter
    (fun env ->
      if pred env && not seen.(env.src) then begin
        seen.(env.src) <- true;
        incr count
      end)
    t.nodes.(id).delivered;
  !count

let set_handler t id f =
  check_id t id "set_handler";
  t.nodes.(id).handler <- Some f

let clear_handler t id =
  check_id t id "clear_handler";
  t.nodes.(id).handler <- None

let crash t id =
  check_id t id "crash";
  if not t.nodes.(id).crashed then begin
    t.nodes.(id).crashed <- true;
    Dsim.Engine.emit t.eng ~pid:id ~tag:"crash-net" "node crashed"
  end

let restart t id =
  check_id t id "restart";
  if t.nodes.(id).crashed then begin
    t.nodes.(id).crashed <- false;
    Dsim.Engine.emit t.eng ~pid:id ~tag:"restart-net" "node restarted"
  end

let is_crashed t id =
  check_id t id "is_crashed";
  t.nodes.(id).crashed

let crashed_count t =
  Array.fold_left (fun acc node -> if node.crashed then acc + 1 else acc) 0 t.nodes

let set_partition t groups =
  let map = Array.make t.size (-1) in
  List.iteri
    (fun gid members ->
      List.iter
        (fun id ->
          check_id t id "set_partition";
          map.(id) <- gid)
        members)
    groups;
  t.partition <- Some map;
  t.partition_groups <- Some groups;
  Dsim.Engine.emitk t.eng ~tag:"partition" (fun () ->
      String.concat " | "
        (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups))

let heal t =
  t.partition <- None;
  t.partition_groups <- None;
  Dsim.Engine.emit t.eng ~tag:"heal" "partition removed"

let partition_groups t = t.partition_groups

let messages_sent t = t.sent
let messages_delivered t = t.deliveries
