(** Asynchronous message-passing network with crash faults.

    Built on {!Dsim.Engine}: a send schedules a delivery event after a delay
    drawn from the {!Latency} model; delivered messages accumulate in
    per-node inboxes that protocol code scans with [Engine.await].

    Faults and adversity available:
    - {!crash}: a node stops receiving (its inbox freezes) — the standard
      crash-stop model.  In-flight messages from the node still arrive.
    - [partial] sends: crash a node part-way through a broadcast (the model
      used by Ben-Or's analysis).
    - per-message {!policy}: drop / duplicate / extra-delay decisions made
      by an adversary callback at send time.
    - {!set_partition}: cut the network into groups; messages crossing a
      cut at send time are dropped until {!heal}.

    When the engine has a {!Dsim.Engine.oracle} installed (schedule
    exploration), the network routes its own nondeterminism through it
    instead of the latency model and RNG: each policy-approved send asks
    the ["net.fault"] domain (0 = deliver, 1 = drop) and, if delivered,
    the ["net.delay"] domain for extra slack on top of a base latency of
    1.  Deliveries are scheduled with the recipient as the event owner,
    so the explorer can treat same-tick deliveries to distinct nodes as
    commutative.  Oracle-free runs are byte-identical to before. *)

type 'msg envelope = {
  env_id : int;  (** unique per network, in send order *)
  src : int;
  dst : int;
  sent_at : int;
  payload : 'msg;
}

(** An adversary's verdict on one message at send time. *)
type policy_verdict =
  | Deliver  (** normal delivery per the latency model *)
  | Drop  (** silently lost *)
  | Duplicate of int  (** deliver 1 + n copies (each with fresh delay) *)
  | Delay_extra of int  (** add this to the sampled latency *)

type 'msg t

val create :
  Dsim.Engine.t ->
  n:int ->
  ?latency:Latency.t ->
  ?policy:('msg envelope -> policy_verdict) ->
  ?retain_inbox:bool ->
  unit ->
  'msg t
(** A network of [n] nodes (ids [0 .. n-1]).  Default latency:
    [Uniform (1, 10)].  Default policy: deliver everything.
    [retain_inbox] (default true) keeps every delivered envelope for
    {!inbox}-style scans; protocols that consume messages through
    {!set_handler} should pass false — retained inboxes make long runs
    quadratic. *)

val n : 'msg t -> int
val engine : 'msg t -> Dsim.Engine.t

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Send one message.  No-op if [src] is crashed. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** Send to every node, including [src] itself (self-delivery also goes
    through the latency model, as in the standard model where a processor
    counts its own message). *)

val broadcast_to : 'msg t -> src:int -> dsts:int list -> 'msg -> unit
(** Send to an explicit subset — used to model a crash mid-broadcast. *)

val inbox : 'msg t -> int -> 'msg envelope list
(** All messages delivered to this node so far, in delivery order. *)

val in_flight : 'msg t -> 'msg envelope list
(** Every envelope scheduled for delivery but not yet delivered, in
    send ([env_id]) order.  Model-checker fingerprints fold this in so
    two states that look alike but differ in what is still on the wire
    (e.g. after an explored message drop) hash differently — the
    soundness requirement for pruning at a positive fault budget.
    O(in-flight arena); not a hot-path call. *)

val inbox_count : 'msg t -> int -> ('msg envelope -> bool) -> int
(** Number of delivered messages satisfying the predicate. *)

val distinct_senders : 'msg t -> int -> ('msg envelope -> bool) -> int
(** Number of {e distinct sources} that delivered at least one matching
    message — the count quorum protocols must use to stay correct under
    message duplication. *)

val set_handler : 'msg t -> int -> ('msg envelope -> unit) -> unit
(** Push-style delivery for event-driven protocols (Raft): the callback
    runs at delivery time, in scheduler context, after the inbox append.
    One handler per node; setting again replaces it. *)

val clear_handler : 'msg t -> int -> unit

val crash : 'msg t -> int -> unit
(** Crash-stop the node: it stops receiving from now on.  Does not touch
    the engine process running the node's protocol — kill that separately
    (or use the higher-level runners in [workload]). *)

val restart : 'msg t -> int -> unit
(** Bring a crashed node back: it receives messages sent from now on;
    messages that arrived while it was down are lost. *)

val is_crashed : 'msg t -> int -> bool
val crashed_count : 'msg t -> int

val set_partition : 'msg t -> int list list -> unit
(** Install a partition: each inner list is a group; messages whose
    endpoints are in different groups are dropped at send time.  Nodes
    absent from every group are isolated. *)

val heal : 'msg t -> unit
(** Remove any partition. *)

val partition_groups : 'msg t -> int list list option
(** The currently-installed partition, exactly as given to
    {!set_partition}; [None] when the network is whole.  Lets layers
    above (e.g. the RSM's quorum gate) reason about which side of a
    cut can make progress. *)

val messages_sent : 'msg t -> int
(** Total sends attempted (including dropped ones). *)

val messages_delivered : 'msg t -> int
(** Total deliveries completed. *)
