type step_policy =
  | Uniform_steps of int * int
  | Fixed_steps of int
  | Custom_steps of (me:int -> op:int -> rng:Dsim.Rng.t -> int)

type t = {
  eng : Dsim.Engine.t;
  steps : step_policy;
  mutable ops : int;
}

let create eng ?(steps = Uniform_steps (1, 10)) () = { eng; steps; ops = 0 }
let engine t = t.eng

type proc = { world : t; me : int; ectx : Dsim.Engine.ctx }

let step proc =
  let w = proc.world in
  let delay =
    match w.steps with
    | Fixed_steps d -> d
    | Uniform_steps (lo, hi) -> Dsim.Rng.int_in proc.ectx.Dsim.Engine.rng lo hi
    | Custom_steps f -> f ~me:proc.me ~op:w.ops ~rng:proc.ectx.Dsim.Engine.rng
  in
  w.ops <- w.ops + 1;
  Dsim.Engine.sleep proc.ectx delay

let ops_performed t = t.ops

module Reg = struct
  type 'a reg = { mutable contents : 'a }

  let make v = { contents = v }

  let read proc reg =
    step proc;
    reg.contents

  let write proc reg v =
    step proc;
    reg.contents <- v

  let peek reg = reg.contents

  type 'a cell = { mutable winner : 'a option }

  let cell () = { winner = None }

  let decide proc c v =
    step proc;
    match c.winner with
    | None ->
        c.winner <- Some v;
        v
    | Some w -> w

  let winner c = c.winner
end
