(** Exhaustive and randomized schedule exploration for shared-memory
    objects.

    Statistical testing samples the schedule space; for small
    configurations we can do better and run an object under {e every}
    interleaving of its register operations.  A schedule is a sequence of
    process ids — the global order in which the processes take their next
    operation — and is realized exactly through a
    {!World.Custom_steps} policy that stretches each process's pauses so
    its k-th operation lands at its scheduled slot.

    Straight-line protocols (the adopt-commit: one write, [n] reads, one
    write, [n] reads per process) have a fixed operation count, so the
    schedule space is the multiset permutations of
    [{0^ops, 1^ops, ...}] — 924 schedules for two processes, which
    {!check_ac_exhaustive} sweeps completely. *)

val interleavings : counts:int array -> limit:int -> int list list
(** All interleavings of [counts.(i)] operations per process [i], in
    lexicographic order, truncated to at most [limit]. *)

val count_interleavings : counts:int array -> int
(** The exact number of interleavings (multinomial coefficient). *)

val random_schedule : counts:int array -> rng:Dsim.Rng.t -> int list
(** One uniformly random interleaving. *)

val run_schedule :
  n:int ->
  schedule:int list ->
  body:(World.proc -> unit) ->
  Dsim.Engine.outcome
(** Run [n] processes (each executing [body] with its own process handle)
    under the exact operation order [schedule].

    Op-count discipline: a process attempting {e more} register
    operations than the schedule allots it dies inside the engine with
    [Invalid_argument] (fiber exceptions do not unwind the run); the run
    first drains, then [run_schedule] re-raises that exception — it never
    returns normally on an over-budget schedule.  A process performing
    {e fewer} operations leaves its remaining slots unused: the run still
    quiesces and the other processes' slots are unaffected, because each
    slot is realized as an absolute virtual time, not a turn handed to
    the next process.  The realized order is therefore the schedule
    restricted to the operations actually performed. *)

type report = {
  schedules_run : int;
  space_size : int;  (** total size of the schedule space *)
  exhaustive : bool;  (** true when every schedule was run *)
  violations : string list;  (** first few violations found, if any *)
}

val check_ac_exhaustive :
  inputs:bool array -> ?limit:int -> unit -> report
(** Run the register-based adopt-commit under every interleaving (up to
    [limit], default 100_000) and check coherence, convergence and
    validity on each.  [inputs] gives processor count and inputs. *)

val check_vac_sampled :
  inputs:bool array -> samples:int -> seed:int64 -> report
(** The two-AC VAC has too many interleavings to sweep ([C(24,12)] at two
    processes), so check a uniform sample of schedules instead. *)
