(** An asynchronous shared-memory world: atomic registers accessed by
    processes whose steps are interleaved by the simulation scheduler.

    Each register operation is atomic and instantaneous; {e between}
    operations a process pauses for a scheduler-chosen amount of virtual
    time, which is what produces (adversarially varied) interleavings.
    This is the standard asynchronous shared-memory model of Gafni's
    adopt-commit and Aspnes' conciliators, with the adversary's power
    expressed through the step-delay policy. *)

(** How long a process pauses before each register operation. *)
type step_policy =
  | Uniform_steps of int * int  (** delay uniform in [\[lo, hi\]] *)
  | Fixed_steps of int
  | Custom_steps of (me:int -> op:int -> rng:Dsim.Rng.t -> int)
      (** full adversarial control: [op] counts the process's operations *)

type t

val create : Dsim.Engine.t -> ?steps:step_policy -> unit -> t
(** Default policy: [Uniform_steps (1, 10)]. *)

val engine : t -> Dsim.Engine.t

(** A process handle; carries the identity and private randomness used for
    step delays. *)
type proc = { world : t; me : int; ectx : Dsim.Engine.ctx }

val step : proc -> unit
(** Pause before the next operation (called internally by {!Reg}). *)

val ops_performed : t -> int
(** Total register operations executed so far (a work measure). *)

(** Atomic read/write registers, plus a single-use consensus cell. *)
module Reg : sig
  type 'a reg

  val make : 'a -> 'a reg
  val read : proc -> 'a reg -> 'a
  val write : proc -> 'a reg -> 'a -> unit

  val peek : 'a reg -> 'a
  (** Raw, step-free read for {e post-run} inspection (digests,
      checkers).  Never call this from a running process: it bypasses
      the scheduler and would let a process observe shared state
      without taking a step. *)

  (** A single-use consensus cell — equivalently, a register supporting
      compare-and-swap from its initial empty state.  The first
      {!decide} installs its proposal in one atomic step; every later
      call returns the winner.  Consensus number [∞]: exactly the
      [decideNext] primitive Herlihy's universal construction needs. *)
  type 'a cell

  val cell : unit -> 'a cell
  val decide : proc -> 'a cell -> 'a -> 'a
  val winner : 'a cell -> 'a option
  (** Step-free post-run inspection of a cell (see {!peek}). *)
end
