module Engine = Dsim.Engine

let interleavings ~counts ~limit =
  let n = Array.length counts in
  let remaining = Array.copy counts in
  let out = ref [] in
  let produced = ref 0 in
  let rec go acc =
    if !produced >= limit then ()
    else begin
      let any = ref false in
      for i = 0 to n - 1 do
        if remaining.(i) > 0 then begin
          any := true;
          remaining.(i) <- remaining.(i) - 1;
          go (i :: acc);
          remaining.(i) <- remaining.(i) + 1
        end
      done;
      if not !any then begin
        out := List.rev acc :: !out;
        incr produced
      end
    end
  in
  go [];
  List.rev !out

let count_interleavings ~counts =
  (* multinomial (sum counts)! / prod counts.(i)! computed incrementally *)
  let total = Array.fold_left ( + ) 0 counts in
  let result = ref 1 in
  let k = ref 0 in
  Array.iter
    (fun c ->
      (* multiply by C(k + c, c) *)
      for j = 1 to c do
        incr k;
        result := !result * !k / j
      done)
    counts;
  ignore total;
  !result

let random_schedule ~counts ~rng =
  let remaining = Array.copy counts in
  let total = Array.fold_left ( + ) 0 counts in
  let out = ref [] in
  for _ = 1 to total do
    (* weighted pick proportional to remaining ops — uniform over
       interleavings *)
    let left = Array.fold_left ( + ) 0 remaining in
    let target = Dsim.Rng.int rng left in
    let acc = ref 0 and chosen = ref (-1) in
    Array.iteri
      (fun i c ->
        if !chosen < 0 then begin
          acc := !acc + c;
          if target < !acc then chosen := i
        end)
      remaining;
    remaining.(!chosen) <- remaining.(!chosen) - 1;
    out := !chosen :: !out
  done;
  List.rev !out

(* Realize an exact operation order: process i's k-th operation happens at
   virtual time (slot index + 1), where slots are the schedule positions
   assigned to i.  The step policy pops the next target and sleeps until
   it. *)
let run_schedule ~n ~schedule ~body =
  let targets = Array.make n [] in
  List.iteri
    (fun slot pid ->
      if pid < 0 || pid >= n then invalid_arg "Explore.run_schedule: bad pid";
      targets.(pid) <- (slot + 1) :: targets.(pid))
    schedule;
  let queues = Array.map (fun l -> ref (List.rev l)) targets in
  let eng = Engine.create ~seed:1L () in
  let steps =
    World.Custom_steps
      (fun ~me ~op:_ ~rng:_ ->
        match !(queues.(me)) with
        | [] -> invalid_arg "Explore.run_schedule: process exceeded its op budget"
        | target :: rest ->
            queues.(me) := rest;
            target - Engine.now eng)
  in
  let world = World.create eng ~steps () in
  let pids =
    Array.init n (fun i ->
        Engine.spawn eng (fun ectx -> body { World.world; me = i; ectx }))
  in
  let outcome = Engine.run eng in
  (* An uncaught exception kills only its fiber (the engine records it and
     keeps draining), so the budget violation raised inside the step
     policy would otherwise vanish into [process_failed].  Surface it:
     a schedule that under-allots a process is a caller bug, not a
     schedule-dependent protocol outcome. *)
  Array.iter
    (fun pid ->
      match Engine.process_failed eng pid with
      | Some (Invalid_argument _ as exn) -> raise exn
      | Some _ | None -> ())
    pids;
  outcome

type report = {
  schedules_run : int;
  space_size : int;
  exhaustive : bool;
  violations : string list;
}

module P = Protocol.Make (Consensus.Objects.Bool_value)
module M = Consensus.Monitor.Make (Consensus.Objects.Bool_value)

(* One AC run under one schedule; returns the violations found. *)
let ac_once ~inputs schedule =
  let n = Array.length inputs in
  let monitor = M.create () in
  Array.iteri (fun i v -> M.record_initial monitor ~pid:i v) inputs;
  (* [run_schedule] owns engine/world creation, so the shared state is
     built lazily by the first process to run. *)
  let shared = ref None in
  let body (proc : World.proc) =
    let s =
      match !shared with
      | Some s -> s
      | None ->
          let s = P.create_shared ~n proc.World.world in
          shared := Some s;
          s
    in
    let ctx = { P.shared = s; proc } in
    let out = P.Ac_a.invoke ctx ~round:1 inputs.(proc.World.me) in
    M.record_output monitor ~round:1 ~pid:proc.World.me
      (Consensus.Types.vac_of_ac out)
  in
  let outcome = run_schedule ~n ~schedule ~body in
  let viols = M.check_ac monitor in
  let viols =
    match outcome with
    | Engine.Quiescent -> viols
    | Engine.Deadlock _ | Engine.Time_limit | Engine.Event_limit ->
        { Consensus.Monitor.round = None; property = "termination"; message = "run did not quiesce" }
        :: viols
  in
  List.map (Format.asprintf "%a" Consensus.Monitor.pp_violation) viols

let ops_per_process_ac n = 2 + (2 * n)

let check_ac_exhaustive ~inputs ?(limit = 100_000) () =
  let n = Array.length inputs in
  let counts = Array.make n (ops_per_process_ac n) in
  let space_size = count_interleavings ~counts in
  let schedules = interleavings ~counts ~limit in
  let run = List.length schedules in
  let violations = ref [] in
  List.iter
    (fun schedule ->
      if List.length !violations < 5 then
        violations := !violations @ ac_once ~inputs schedule)
    schedules;
  {
    schedules_run = run;
    space_size;
    exhaustive = run = space_size;
    violations = !violations;
  }

let vac_once ~inputs schedule =
  let n = Array.length inputs in
  let monitor = M.create () in
  Array.iteri (fun i v -> M.record_initial monitor ~pid:i v) inputs;
  let shared = ref None in
  let body (proc : World.proc) =
    let s =
      match !shared with
      | Some s -> s
      | None ->
          let s = P.create_shared ~n proc.World.world in
          shared := Some s;
          s
    in
    let ctx = { P.shared = s; proc } in
    let out = P.Vac.invoke ctx ~round:1 inputs.(proc.World.me) in
    M.record_output monitor ~round:1 ~pid:proc.World.me out
  in
  let outcome = run_schedule ~n ~schedule ~body in
  let viols = M.check_vac monitor in
  let viols =
    match outcome with
    | Engine.Quiescent -> viols
    | Engine.Deadlock _ | Engine.Time_limit | Engine.Event_limit ->
        { Consensus.Monitor.round = None; property = "termination"; message = "run did not quiesce" }
        :: viols
  in
  List.map (Format.asprintf "%a" Consensus.Monitor.pp_violation) viols

let check_vac_sampled ~inputs ~samples ~seed =
  let n = Array.length inputs in
  let counts = Array.make n (2 * ops_per_process_ac n) in
  let space_size = count_interleavings ~counts in
  let rng = Dsim.Rng.create seed in
  let violations = ref [] in
  for _ = 1 to samples do
    if List.length !violations < 5 then begin
      let schedule = random_schedule ~counts ~rng in
      violations := !violations @ vac_once ~inputs schedule
    end
  done;
  {
    schedules_run = samples;
    space_size;
    exhaustive = false;
    violations = !violations;
  }
