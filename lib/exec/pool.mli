(** A fixed-size [Domain]-based worker pool for independent seeded runs.

    Campaigns, experiment tables and checker sweeps are all "a set of
    runs": every run owns its engine, clock and RNG streams, so runs
    never share mutable state and can execute on separate domains.  The
    pool preserves the {e determinism boundary}: work items are computed
    in any order, but results always come back in item order, so a
    parallel sweep aggregates to exactly the sequential report.

    Stdlib only ([Domain] + [Atomic]); no domainslib dependency.

    The single-domain contract of {!Dsim.Rng} (and of every simulation
    structure) still holds: [f] must build everything it touches from
    its argument alone.  Nothing is shared between two invocations of
    [f] beyond immutable inputs. *)

exception
  Worker_error of { seed : int; exn : exn; backtrace : string }
        (** A work item raised.  [seed] identifies the failing item (the
            seed for {!map_seeded}, the item index for {!map} unless
            [seed_of] says otherwise); [exn] is the original exception
            and [backtrace] its backtrace, captured on the worker. *)

val cores : unit -> int
(** [Domain.recommended_domain_count ()] — the job count [--jobs 0]
    resolves to. *)

val map : jobs:int -> ?seed_of:(int -> int) -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] computes [f] over every item on at most [jobs]
    domains (the caller counts as one) and returns the results {e in
    item order} regardless of completion order.  [jobs <= 1] runs
    sequentially in the calling domain, left to right — the bitwise
    reference schedule.  Work is handed out through one atomic cursor,
    so splitting is deterministic in {e which} items run, only their
    interleaving varies.

    If any item raises, the whole map fails with {!Worker_error} after
    every worker has drained; when several items fail, the lowest item
    index wins, so the reported failure is deterministic.  [seed_of]
    maps the failing item's index to the seed named in the error
    (default: the index itself). *)

val map_seeded : jobs:int -> seeds:int array -> (int -> 'a) -> 'a array
(** [map_seeded ~jobs ~seeds f] is [f] over every seed, results in seed
    order.  A failing run raises [Worker_error] carrying the seed. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List clothing over {!map}. *)
