exception Worker_error of { seed : int; exn : exn; backtrace : string }

let () =
  Printexc.register_printer (function
    | Worker_error { seed; exn; _ } ->
        Some
          (Printf.sprintf "Exec.Pool.Worker_error(seed %d: %s)" seed
             (Printexc.to_string exn))
    | _ -> None)

let cores () = Domain.recommended_domain_count ()

let map ~jobs ?(seed_of = Fun.id) f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let compute i =
      results.(i) <-
        Some
          (try Ok (f items.(i))
           with exn -> Error (exn, Printexc.get_backtrace ()))
    in
    let workers = min jobs n in
    if workers <= 1 then
      for i = 0 to n - 1 do
        compute i
      done
    else begin
      (* One atomic cursor hands out item indices; each slot of [results]
         is written by exactly one domain and read only after the joins,
         so the only synchronization needed is spawn/join itself. *)
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            compute i;
            loop ()
          end
        in
        loop ()
      in
      let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains
    end;
    Array.mapi
      (fun i r ->
        match r with
        | Some (Ok v) -> v
        | Some (Error (exn, backtrace)) ->
            raise (Worker_error { seed = seed_of i; exn; backtrace })
        | None -> assert false)
      results
  end

let map_seeded ~jobs ~seeds f = map ~jobs ~seed_of:(fun i -> seeds.(i)) f seeds

let map_list ~jobs f l = Array.to_list (map ~jobs f (Array.of_list l))
