(** Campaign runner: sweep seeded random fault plans x consensus
    backends over the RSM workload, auditing every run with
    {!Rsm.Checker} (total order, integrity, no-duplication,
    completeness) plus the state-digest comparison, and aggregate a
    coverage/violation report.

    The run set a campaign explores is named by [(profile, first_seed,
    plans)] alone — re-running the same campaign replays exactly the
    same runs, so a failure report is a reproduction recipe. *)

type config = {
  backends : Rsm.Backend.t list;
  plans : int;  (** seeded plans per backend *)
  first_seed : int;  (** plan seeds are [first_seed .. first_seed+plans-1] *)
  n : int;
  clients : int;
  commands : int;  (** per client *)
  batch : int;
  profile : Gen.profile;  (** plan-generation shape ([profile.n] is forced to [n]) *)
  ack_timeout : int;
  max_events : int;  (** per-run budget: bounds runs a hostile plan wedges *)
  trace_capacity : int;  (** bound per-run trace retention *)
  storage : bool;
      (** give every run a WAL-backed store ({!Rsm.Runner.default_store_config}),
          draw storage faults in generated plans, and audit durability *)
}

val default_config : ?n:int -> unit -> config
(** Ben-Or only, 50 plans from seed 1, n=5 (3 clients x 3 commands,
    batch 4), default minority-crash profile, no storage. *)

val safety_ok : 'op Rsm.Runner.report -> bool
(** No checker violations and live-replica digests agree. *)

val complete : 'op Rsm.Runner.report -> bool
(** Every submitted command acked and applied at every live replica. *)

val durable_ok : 'op Rsm.Runner.report -> bool
(** Empty durability audit: every acked command survives at some live
    replica (vacuously true for runs without a store). *)

type outcome = {
  backend_name : string;
  plan_seed : int;
  plan : Plan.t;
  safety : bool;  (** {!safety_ok} of the run *)
  live : bool;  (** {!complete} of the run *)
  durable : bool;  (** {!durable_ok} of the run *)
  acked : int;
  submitted : int;
  virtual_time : int;
  engine_outcome : Dsim.Engine.outcome;
}

type report = {
  runs : int;
  outcomes : outcome list;  (** in plan order (backend-major), at every job count *)
  safety_failures : outcome list;
  incomplete : outcome list;
  durability_failures : outcome list;
  faults_injected : int;  (** total plan actions across the campaign *)
  coverage : (string * int) list;  (** injected actions by kind *)
  cpu_seconds : float;
      (** process CPU, summed across worker domains under [jobs > 1] *)
  wall_seconds : float;  (** elapsed wall-clock time for the sweep *)
  runs_per_sec : float;  (** [runs / wall_seconds] *)
}

val plan_for : config -> seed:int -> Plan.t
(** The plan a given seed names under this campaign's profile. *)

val run_plan :
  ?quiet:bool ->
  config ->
  backend:Rsm.Backend.t ->
  seed:int ->
  Plan.t ->
  Obj.Kv.op Rsm.Runner.report
(** One deterministic run: the RSM workload for [seed] under the given
    plan.  This is also the shrinker's replay function.  [quiet]
    (default false) runs the engine without tracing — identical report
    fields, no trace. *)

val merge : report -> report -> report
(** Associative aggregation: counts add, outcome lists concatenate in
    argument order, coverage sums per kind; [wall_seconds] takes the
    max (parallel chunks overlap) and [cpu_seconds] the sum.  Folding
    per-run reports in plan order reproduces {!run}'s report. *)

val run : ?jobs:int -> ?on_outcome:(outcome -> unit) -> config -> report
(** The full sweep.  [jobs] (default 1) fans the runs over that many
    domains ({!Exec.Pool}); every run is an isolated simulation keyed
    only by its seed, so the report is identical — field for field,
    modulo timing — at every job count.  Sweep runs execute quiet (no
    trace retention).  [on_outcome] observes each run as it completes
    (progress reporting); under [jobs > 1] completion order is
    nondeterministic, though calls never interleave. *)

val pp_report : Format.formatter -> report -> unit

val pp_report_stable : Format.formatter -> report -> unit
(** [pp_report] minus the timing figures: deterministic for a given
    campaign, so reports from different job counts (or machines) can
    be diffed byte-for-byte. *)
