(** Nemesis campaigns over the universal construction: sweep
    objects x backends x plan seeds, Wing–Gong-checking every run.

    The per-run gates are {!Workload.Obj_load.summary.ok}: zero
    total-order/completeness/durability violations, agreeing
    live-replica digests, a quiescent engine, {e and} a linearizable
    history w.r.t. the object's sequential spec.  Deterministic: the
    same config yields the same outcomes at every job count. *)

type config = {
  backends : Rsm.Backend.t list;
  objects : string list;  (** names from {!Obj.Registry} *)
  plans : int;  (** fault plans (= seeds) per object x backend cell *)
  first_seed : int;
  n : int;
  clients : int;
  commands : int;  (** per client; [clients * commands <= 62] (WG cap) *)
  batch : int;
  profile : Gen.profile;
  storage : bool;  (** give replicas WAL-backed disks + storage faults *)
}

val default_config : ?n:int -> unit -> config
(** Ben-Or only, every registry object, 5 plans from seed 1, n=5,
    3 clients x 4 commands, batch 4, default profile, no storage. *)

type outcome = {
  summary : Workload.Obj_load.summary;
  plan_seed : int;
  plan : Plan.t;
}

type report = {
  runs : int;
  outcomes : outcome list;  (** object-major, then backend, then seed *)
  failures : outcome list;  (** any gate tripped: order, digest, or WG *)
  wg_failures : outcome list;  (** the WG gate specifically *)
  wall_seconds : float;
  runs_per_sec : float;
}

val plan_for : config -> seed:int -> Plan.t
(** The plan a given seed names under this campaign's profile. *)

val run_plan :
  ?quiet:bool ->
  config ->
  object_name:string ->
  backend:Rsm.Backend.t ->
  seed:int ->
  Plan.t ->
  Workload.Obj_load.summary
(** One deterministic run: the object's workload for [seed] under the
    given plan ([quiet] defaults to true here — campaigns don't read
    traces). *)

val run : ?jobs:int -> ?on_outcome:(outcome -> unit) -> config -> report
(** The sweep.  [jobs] fans cells over domains ({!Exec.Pool});
    [on_outcome] observes completions (mutex-serialized, order
    nondeterministic under [jobs > 1]).  The report is identical at
    every job count. *)

val pp_report : Format.formatter -> report -> unit
val pp_report_stable : Format.formatter -> report -> unit
(** [pp_report] with the timing header dropped, for byte-stable
    comparison across job counts. *)
