(** Seed-sweep fault campaigns against the sharded multi-group RSM —
    the {!Campaign} analogue for {!Shard.Runner}.

    Every campaign seed expands into {e one fault plan per shard}
    (derived seeds, installed via {!Interp.install_shard}), so
    partitions, crashes and storage faults hit shards independently
    while a mixed single/multi-shard workload runs over them.  Each run
    is scored on four properties: per-shard safety (total order +
    digest agreement), cross-shard {e atomicity} (the 2PC checker),
    liveness (every operation completes), and durability. *)

type config = {
  backends : Rsm.Backend.t list;
  plans : int;  (** campaign seeds per backend *)
  first_seed : int;
  shards : int;
  replicas : int;  (** per shard *)
  clients : int;
  ops_per_client : int;
  keys : int;
  tx_pct : int;  (** % multi-shard transactions in the workload *)
  batch : int;
  profile : Gen.profile;  (** per-shard plan profile ([n] = replicas) *)
  ack_timeout : int;
  max_events : int;
  storage : bool;  (** give every replica a WAL and draw storage faults *)
  broken_2pc : bool;  (** run the commit-without-quorum mutant *)
}

val default_config : ?shards:int -> ?replicas:int -> unit -> config
(** 4 shards x 3 replicas, 30 plans, 12 clients x 3 ops, 25% txs,
    benign profile (every disturbance heals before the horizon). *)

type outcome = {
  backend_name : string;
  plan_seed : int;
  plans : Plan.t array;  (** index = shard *)
  safety : bool;  (** per-shard order violations = 0, digests agree *)
  atomic : bool;  (** cross-shard atomicity violations = 0 *)
  live : bool;  (** every op completed; no completeness violations *)
  durable : bool;
  total_ops : int;
  completed : int;
  txs_committed : int;
  txs_aborted : int;
  virtual_time : int;
  engine_outcome : Dsim.Engine.outcome;
}

type report = {
  runs : int;
  outcomes : outcome list;
  safety_failures : outcome list;
  atomicity_failures : outcome list;
  incomplete : outcome list;
  durability_failures : outcome list;
  faults_injected : int;
  coverage : (string * int) list;  (** action-kind occurrence counts *)
  cpu_seconds : float;
  wall_seconds : float;
  runs_per_sec : float;
}

val plans_for : config -> seed:int -> Plan.t array
(** The per-shard plans a campaign seed expands into (deterministic). *)

val run_plans :
  ?quiet:bool ->
  config ->
  backend:Rsm.Backend.t ->
  seed:int ->
  Plan.t array ->
  Shard.Runner.report
(** Replay one campaign cell — e.g. to re-run a failure with tracing
    on ([quiet:false]). *)

val merge : report -> report -> report
(** Associative and order-preserving, like {!Campaign.merge}. *)

val run : ?jobs:int -> ?on_outcome:(outcome -> unit) -> config -> report
(** The sweep: every backend x seed cell, fanned over [jobs] domains
    ({!Exec.Pool}); the report is identical at every job count (only
    the timing fields differ — compare with {!pp_report_stable}). *)

val pp_report : Format.formatter -> report -> unit

val pp_report_stable : Format.formatter -> report -> unit
(** {!pp_report} minus the timing header line: byte-identical across
    job counts for the same campaign. *)
