type verdict_rule =
  | R_drop
  | R_duplicate of int
  | R_delay of int

type rule = { from_ : int; until_ : int; m : Plan.msg_match; rule : verdict_rule }

type handle = {
  crash : int -> unit;
  restart : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
}

let rules plan =
  List.filter_map
    (fun { Plan.at; action } ->
      match action with
      | Plan.Drop_matching (m, lasts) ->
          Some { from_ = at; until_ = at + lasts; m; rule = R_drop }
      | Plan.Duplicate_matching (m, copies, lasts) ->
          Some { from_ = at; until_ = at + lasts; m; rule = R_duplicate copies }
      | Plan.Delay_spike (m, extra, lasts) ->
          Some { from_ = at; until_ = at + lasts; m; rule = R_delay extra }
      | Plan.Crash _ | Plan.Restart _ | Plan.Partition _ | Plan.Heal
      | Plan.Torn_write _ | Plan.Sync_loss _ | Plan.Io_error _ | Plan.Disk_stall _
        ->
          None)
    plan

(* Storage windows compile the same way message windows do: into a pure
   policy keyed on the disk operation's time, with no activation state. *)
let store_policy plan =
  List.fold_left
    (fun acc { Plan.at; action } ->
      let window pids lasts =
        Store.Policy.rule ?pids ~from_:at ~until_:(at + lasts) ()
      in
      match action with
      | Plan.Torn_write (pids, lasts) ->
          { acc with Store.Policy.torn = window pids lasts :: acc.Store.Policy.torn }
      | Plan.Sync_loss (pids, lasts) ->
          {
            acc with
            Store.Policy.sync_loss = window pids lasts :: acc.Store.Policy.sync_loss;
          }
      | Plan.Io_error (pids, lasts) ->
          {
            acc with
            Store.Policy.io_error = window pids lasts :: acc.Store.Policy.io_error;
          }
      | Plan.Disk_stall (pids, extra, lasts) ->
          {
            acc with
            Store.Policy.stall = (window pids lasts, extra) :: acc.Store.Policy.stall;
          }
      | Plan.Crash _ | Plan.Restart _ | Plan.Partition _ | Plan.Heal
      | Plan.Drop_matching _ | Plan.Duplicate_matching _ | Plan.Delay_spike _ ->
          acc)
    Store.Policy.none plan

let verdict_of_rules rs (env : 'msg Netsim.Async_net.envelope) =
  (* The message's send time decides which windows are open; the first
     matching open window (in plan order) wins. *)
  let now = env.Netsim.Async_net.sent_at in
  let applies r =
    now >= r.from_ && now < r.until_
    && Plan.matches r.m ~src:env.Netsim.Async_net.src ~dst:env.Netsim.Async_net.dst
  in
  match List.find_opt applies rs with
  | None -> Netsim.Async_net.Deliver
  | Some { rule = R_drop; _ } -> Netsim.Async_net.Drop
  | Some { rule = R_duplicate copies; _ } -> Netsim.Async_net.Duplicate copies
  | Some { rule = R_delay extra; _ } -> Netsim.Async_net.Delay_extra extra

let policy plan =
  let rs = rules plan in
  fun env -> verdict_of_rules rs env

let schedule ~engine handle plan =
  let now = Dsim.Engine.now engine in
  List.iter
    (fun { Plan.at; action } ->
      let delay = max 0 (at - now) in
      let eff =
        match action with
        | Plan.Crash pid -> Some (fun () -> handle.crash pid)
        | Plan.Restart pid -> Some (fun () -> handle.restart pid)
        | Plan.Partition groups -> Some (fun () -> handle.partition groups)
        | Plan.Heal -> Some (fun () -> handle.heal ())
        | Plan.Drop_matching _ | Plan.Duplicate_matching _ | Plan.Delay_spike _
        | Plan.Torn_write _ | Plan.Sync_loss _ | Plan.Io_error _
        | Plan.Disk_stall _ ->
            None
      in
      Option.iter
        (fun run ->
          Dsim.Engine.schedule engine ~delay (fun () ->
              Dsim.Engine.emitk engine ~tag:"nemesis" (fun () ->
                  Plan.string_of_action action);
              run ()))
        eff)
    plan

let handle_of_net net =
  {
    crash = (fun pid -> Netsim.Async_net.crash net pid);
    restart = (fun pid -> Netsim.Async_net.restart net pid);
    partition = (fun groups -> Netsim.Async_net.set_partition net groups);
    heal = (fun () -> Netsim.Async_net.heal net);
  }

let handle_of_faults (f : _ Rsm.Runner.faults) =
  { crash = f.crash; restart = f.restart; partition = f.partition; heal = f.heal }

let install_rsm plan (f : _ Rsm.Runner.faults) =
  f.Rsm.Runner.set_policy (policy plan);
  f.Rsm.Runner.set_store_policy (store_policy plan);
  schedule ~engine:f.Rsm.Runner.engine (handle_of_faults f) plan

(* The detector runs have no disks, so a plan's storage windows are
   inert; everything else — including the detector's own heartbeat
   traffic — goes through the same policy and topology machinery. *)
let handle_of_detect_faults (f : Detect.Runner.faults) =
  {
    crash = f.Detect.Runner.crash;
    restart = f.Detect.Runner.restart;
    partition = f.Detect.Runner.partition;
    heal = f.Detect.Runner.heal;
  }

let install_detect plan (f : Detect.Runner.faults) =
  f.Detect.Runner.set_policy (policy plan);
  schedule ~engine:f.Detect.Runner.engine (handle_of_detect_faults f) plan

(* One sharded run has N independent fault surfaces — a plan per shard,
   each driven through the same machinery as a single-group run.
   Replica pids inside a plan are shard-local. *)
let handle_of_shard_faults (f : Shard.Runner.faults) ~shard =
  {
    crash = (fun pid -> f.Shard.Runner.crash ~shard ~replica:pid);
    restart = (fun pid -> f.Shard.Runner.restart ~shard ~replica:pid);
    partition = (fun groups -> f.Shard.Runner.partition ~shard groups);
    heal = (fun () -> f.Shard.Runner.heal ~shard);
  }

let install_shard plans (f : Shard.Runner.faults) =
  Array.iteri
    (fun shard plan ->
      f.Shard.Runner.set_policy ~shard (policy plan);
      f.Shard.Runner.set_store_policy ~shard (store_policy plan);
      schedule ~engine:f.Shard.Runner.engine
        (handle_of_shard_faults f ~shard)
        plan)
    plans
