type 'r oracle = { run : Plan.t -> 'r; failing : 'r -> bool }

type result = { plan : Plan.t; replays : int; reduced_from : int }

let weaker_steps { Plan.at; action } =
  let half x = x / 2 in
  let steps =
    match action with
    | Plan.Crash _ | Plan.Restart _ | Plan.Heal -> []
    | Plan.Partition groups ->
        (* merging the first two groups weakens the cut *)
        if List.length groups > 2 then
          [ Plan.Partition (List.concat [ [ List.concat [ List.nth groups 0; List.nth groups 1 ] ]; List.filteri (fun i _ -> i >= 2) groups ]) ]
        else []
    | Plan.Drop_matching (m, lasts) ->
        if lasts > 1 then [ Plan.Drop_matching (m, half lasts) ] else []
    | Plan.Duplicate_matching (m, copies, lasts) ->
        (if copies > 1 then [ Plan.Duplicate_matching (m, half copies, lasts) ] else [])
        @ (if lasts > 1 then [ Plan.Duplicate_matching (m, copies, half lasts) ] else [])
    | Plan.Delay_spike (m, extra, lasts) ->
        (if extra > 1 then [ Plan.Delay_spike (m, half extra, lasts) ] else [])
        @ (if lasts > 1 then [ Plan.Delay_spike (m, extra, half lasts) ] else [])
    | Plan.Torn_write (pids, lasts) ->
        if lasts > 1 then [ Plan.Torn_write (pids, half lasts) ] else []
    | Plan.Sync_loss (pids, lasts) ->
        if lasts > 1 then [ Plan.Sync_loss (pids, half lasts) ] else []
    | Plan.Io_error (pids, lasts) ->
        if lasts > 1 then [ Plan.Io_error (pids, half lasts) ] else []
    | Plan.Disk_stall (pids, extra, lasts) ->
        (if extra > 1 then [ Plan.Disk_stall (pids, half extra, lasts) ] else [])
        @
        if lasts > 1 then [ Plan.Disk_stall (pids, extra, half lasts) ] else []
  in
  List.map (fun action -> { Plan.at; action }) steps

let shrink ?(max_replays = 400) oracle plan0 =
  let replays = ref 0 in
  let fails p =
    if !replays >= max_replays then false
    else begin
      incr replays;
      oracle.failing (oracle.run p)
    end
  in
  if not (fails plan0) then
    invalid_arg "Shrink.shrink: the initial plan does not fail";
  (* Candidates must stay state-machine consistent (Plan.consistent):
     deleting a Crash must not orphan its Restart, deleting a
     Partition must not orphan its Heal — otherwise the shrinker would
     hand back plans [Plan.validate] now rejects. *)
  let fails_cand p = Plan.consistent p && fails p in
  (* Greedy delta debugging to a local minimum: first try dropping whole
     steps (restarting the scan after every success), then try weakening
     the survivors, going back to removal whenever a weakening lands. *)
  let without i plan = List.filteri (fun j _ -> j <> i) plan in
  let rec remove_pass plan =
    let len = List.length plan in
    let rec try_at i =
      if i >= len then None
      else
        let cand = without i plan in
        if fails_cand cand then Some cand else try_at (i + 1)
    in
    match try_at 0 with Some p -> remove_pass p | None -> plan
  in
  (* Paired removal: a Crash is only deletable together with its
     matching Restart (and a Partition with its Heal) — the single-step
     pass can never drop either alone without tripping the consistency
     filter, so without this pass crash–restart cycles would be stuck
     in every minimum. *)
  let pair_candidates plan =
    let arr = Array.of_list plan in
    let first_after i pred =
      let j = ref None in
      Array.iteri
        (fun k s -> if !j = None && k > i && pred s.Plan.action then j := Some k)
        arr;
      !j
    in
    let cands = ref [] in
    Array.iteri
      (fun i s ->
        match s.Plan.action with
        | Plan.Crash p -> (
            match first_after i (fun a -> a = Plan.Restart p) with
            | Some j -> cands := (i, j) :: !cands
            | None -> ())
        | Plan.Restart p -> (
            (* a restart plus its re-crash: deleting both keeps the
               node down across the whole interval *)
            match first_after i (fun a -> a = Plan.Crash p) with
            | Some j -> cands := (i, j) :: !cands
            | None -> ())
        | Plan.Partition _ -> (
            match first_after i (fun a -> a = Plan.Heal) with
            | Some j -> cands := (i, j) :: !cands
            | None -> ())
        | _ -> ())
      arr;
    List.rev !cands
  in
  let rec pair_pass plan =
    let rec try_pairs = function
      | [] -> plan
      | (i, j) :: rest ->
          let cand = List.filteri (fun k _ -> k <> i && k <> j) plan in
          if fails_cand cand then pair_pass (remove_pass cand)
          else try_pairs rest
    in
    try_pairs (pair_candidates plan)
  in
  let reduce plan = pair_pass (remove_pass plan) in
  let rec weaken_pass plan =
    let arr = Array.of_list plan in
    let rec try_at i =
      if i >= Array.length arr then None
      else
        let weakenings = weaker_steps arr.(i) in
        let rec try_w = function
          | [] -> try_at (i + 1)
          | w :: rest ->
              let cand =
                List.mapi (fun j s -> if j = i then w else s) plan
              in
              if fails_cand cand then Some cand else try_w rest
        in
        try_w weakenings
    in
    match try_at 0 with
    | Some p -> weaken_pass (reduce p)
    | None -> plan
  in
  let plan = weaken_pass (reduce plan0) in
  { plan; replays = !replays; reduced_from = List.length plan0 }
