type msg_match = { srcs : int list option; dsts : int list option }

let any = { srcs = None; dsts = None }

let matches m ~src ~dst =
  let mem set id = match set with None -> true | Some ids -> List.mem id ids in
  mem m.srcs src && mem m.dsts dst

type action =
  | Crash of int
  | Restart of int
  | Partition of int list list
  | Heal
  | Drop_matching of msg_match * int
  | Duplicate_matching of msg_match * int * int
  | Delay_spike of msg_match * int * int
  | Torn_write of int list option * int
  | Sync_loss of int list option * int
  | Io_error of int list option * int
  | Disk_stall of int list option * int * int

type step = { at : int; action : action }
type t = step list

let length = List.length
let normalize plan = List.stable_sort (fun a b -> compare a.at b.at) plan

let kind = function
  | Crash _ -> "crash"
  | Restart _ -> "restart"
  | Partition _ -> "partition"
  | Heal -> "heal"
  | Drop_matching _ -> "drop"
  | Duplicate_matching _ -> "dup"
  | Delay_spike _ -> "delay"
  | Torn_write _ -> "torn"
  | Sync_loss _ -> "sync-loss"
  | Io_error _ -> "io-err"
  | Disk_stall _ -> "stall"

let kinds =
  [
    "crash"; "restart"; "partition"; "heal"; "drop"; "dup"; "delay"; "torn";
    "sync-loss"; "io-err"; "stall";
  ]

let count_kinds plan =
  List.map
    (fun k ->
      (k, List.length (List.filter (fun s -> String.equal (kind s.action) k) plan)))
    kinds

(* --- well-formedness ---------------------------------------------------- *)

let check_pids ~n ~problems ~at pids =
  Option.iter
    (fun ids ->
      if ids = [] then
        problems := Printf.sprintf "@%d: empty pid set" at :: !problems;
      List.iter
        (fun id ->
          if id < 0 || id >= n then
            problems := Printf.sprintf "@%d: disk pid %d out of range" at id :: !problems)
        ids)
    pids

let check_match ~n ~problems ~at m =
  let ids set =
    Option.iter
      (fun ids ->
        if ids = [] then
          problems := Printf.sprintf "@%d: empty id set in match" at :: !problems;
        List.iter
          (fun id ->
            if id < 0 || id >= n then
              problems := Printf.sprintf "@%d: match id %d out of range" at id :: !problems)
          ids)
      set
  in
  ids m.srcs;
  ids m.dsts

let validate ~n plan =
  let problems = ref [] in
  let down = Hashtbl.create 8 in
  let ever_down = Hashtbl.create 8 in
  let cut = ref false in
  let ever_cut = ref false in
  let prev = ref min_int in
  List.iter
    (fun { at; action } ->
      if at < 0 then problems := Printf.sprintf "@%d: negative time" at :: !problems;
      if at < !prev then
        problems :=
          Printf.sprintf "@%d: out of order (after @%d)" at !prev :: !problems;
      prev := max !prev at;
      let pid_ok what pid =
        if pid < 0 || pid >= n then
          problems := Printf.sprintf "@%d: %s pid %d out of range" at what pid :: !problems
      in
      (match action with
      | Crash pid ->
          pid_ok "crash" pid;
          if Hashtbl.mem down pid then
            problems := Printf.sprintf "@%d: crash of already-down %d" at pid :: !problems
          else begin
            Hashtbl.replace down pid ();
            Hashtbl.replace ever_down pid ()
          end
      | Restart pid ->
          pid_ok "restart" pid;
          if not (Hashtbl.mem down pid) then
            problems :=
              (if Hashtbl.mem ever_down pid then
                 Printf.sprintf "@%d: restart of live %d" at pid
               else Printf.sprintf "@%d: restart of never-crashed %d" at pid)
              :: !problems
          else Hashtbl.remove down pid
      | Partition groups ->
          cut := true;
          ever_cut := true;
          let seen = Hashtbl.create 8 in
          if groups = [] then
            problems := Printf.sprintf "@%d: empty partition" at :: !problems;
          List.iter
            (fun g ->
              if g = [] then
                problems := Printf.sprintf "@%d: empty partition group" at :: !problems;
              List.iter
                (fun id ->
                  pid_ok "partition" id;
                  if Hashtbl.mem seen id then
                    problems :=
                      Printf.sprintf "@%d: pid %d in two partition groups" at id
                      :: !problems
                  else Hashtbl.replace seen id ())
                g)
            groups
      | Heal ->
          if not !cut then
            problems :=
              (if !ever_cut then
                 Printf.sprintf "@%d: heal with no active partition" at
               else Printf.sprintf "@%d: heal of never-partitioned network" at)
              :: !problems
          else cut := false
      | Drop_matching (m, lasts) ->
          check_match ~n ~problems ~at m;
          if lasts < 1 then
            problems := Printf.sprintf "@%d: drop window must last >= 1" at :: !problems
      | Duplicate_matching (m, copies, lasts) ->
          check_match ~n ~problems ~at m;
          if copies < 1 then
            problems := Printf.sprintf "@%d: dup needs copies >= 1" at :: !problems;
          if lasts < 1 then
            problems := Printf.sprintf "@%d: dup window must last >= 1" at :: !problems
      | Delay_spike (m, extra, lasts) ->
          check_match ~n ~problems ~at m;
          if extra < 1 then
            problems := Printf.sprintf "@%d: delay spike needs extra >= 1" at :: !problems;
          if lasts < 1 then
            problems := Printf.sprintf "@%d: delay window must last >= 1" at :: !problems
      | Torn_write (pids, lasts) | Sync_loss (pids, lasts) | Io_error (pids, lasts)
        ->
          check_pids ~n ~problems ~at pids;
          if lasts < 1 then
            problems :=
              Printf.sprintf "@%d: storage window must last >= 1" at :: !problems
      | Disk_stall (pids, extra, lasts) ->
          check_pids ~n ~problems ~at pids;
          if extra < 1 then
            problems := Printf.sprintf "@%d: stall needs extra >= 1" at :: !problems;
          if lasts < 1 then
            problems :=
              Printf.sprintf "@%d: stall window must last >= 1" at :: !problems))
    plan;
  List.rev !problems

(* State-machine consistency alone (no pid-range checks, so no [n]):
   the fragment of [validate] a shrinker can re-check cheaply when it
   deletes steps — dropping a [Crash] must not orphan its [Restart],
   dropping a [Partition] must not orphan its [Heal]. *)
let consistent plan =
  let down = Hashtbl.create 8 in
  let cut = ref false in
  List.for_all
    (fun { action; _ } ->
      match action with
      | Crash pid ->
          if Hashtbl.mem down pid then false
          else begin
            Hashtbl.replace down pid ();
            true
          end
      | Restart pid ->
          if Hashtbl.mem down pid then begin
            Hashtbl.remove down pid;
            true
          end
          else false
      | Partition _ ->
          cut := true;
          true
      | Heal ->
          if !cut then begin
            cut := false;
            true
          end
          else false
      | _ -> true)
    plan

let quiet_after plan =
  (* The earliest time by which every scripted disturbance has ended:
     crashes all restarted, partitions healed, message windows expired.
     None when some crash is never restarted or a partition never heals. *)
  let horizon = ref 0 in
  let down = Hashtbl.create 8 in
  let cut = ref false in
  List.iter
    (fun { at; action } ->
      (match action with
      | Crash pid -> Hashtbl.replace down pid ()
      | Restart pid -> Hashtbl.remove down pid
      | Partition _ -> cut := true
      | Heal -> cut := false
      | Drop_matching (_, lasts)
      | Duplicate_matching (_, _, lasts)
      | Delay_spike (_, _, lasts)
      | Torn_write (_, lasts)
      | Sync_loss (_, lasts)
      | Io_error (_, lasts)
      | Disk_stall (_, _, lasts) ->
          horizon := max !horizon (at + lasts));
      horizon := max !horizon at)
    plan;
  if Hashtbl.length down > 0 || !cut then None else Some !horizon

(* --- rendering ---------------------------------------------------------- *)

let string_of_ids = function
  | None -> "*"
  | Some ids -> String.concat "," (List.map string_of_int ids)

let string_of_match m =
  Printf.sprintf "src=%s dst=%s" (string_of_ids m.srcs) (string_of_ids m.dsts)

let string_of_action = function
  | Crash pid -> Printf.sprintf "crash %d" pid
  | Restart pid -> Printf.sprintf "restart %d" pid
  | Partition groups ->
      Printf.sprintf "partition %s"
        (String.concat "|"
           (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups))
  | Heal -> "heal"
  | Drop_matching (m, lasts) ->
      Printf.sprintf "drop %s for %d" (string_of_match m) lasts
  | Duplicate_matching (m, copies, lasts) ->
      Printf.sprintf "dup %s copies=%d for %d" (string_of_match m) copies lasts
  | Delay_spike (m, extra, lasts) ->
      Printf.sprintf "delay %s extra=%d for %d" (string_of_match m) extra lasts
  | Torn_write (pids, lasts) ->
      Printf.sprintf "torn pid=%s for %d" (string_of_ids pids) lasts
  | Sync_loss (pids, lasts) ->
      Printf.sprintf "sync-loss pid=%s for %d" (string_of_ids pids) lasts
  | Io_error (pids, lasts) ->
      Printf.sprintf "io-err pid=%s for %d" (string_of_ids pids) lasts
  | Disk_stall (pids, extra, lasts) ->
      Printf.sprintf "stall pid=%s extra=%d for %d" (string_of_ids pids) extra lasts

let pp_step ppf { at; action } =
  Format.fprintf ppf "@%-6d %s" at (string_of_action action)

let pp ppf plan =
  if plan = [] then Format.fprintf ppf "(empty plan)@."
  else List.iter (fun s -> Format.fprintf ppf "%a@." pp_step s) plan

let to_string plan =
  String.concat ""
    (List.map
       (fun { at; action } -> Printf.sprintf "@%d %s\n" at (string_of_action action))
       plan)

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_ids what s =
  if String.equal s "*" then None
  else
    Some
      (List.map
         (fun tok ->
           match int_of_string_opt tok with
           | Some id -> id
           | None -> fail "bad %s id %S" what tok)
         (String.split_on_char ',' s))

let parse_match ~what tokens =
  let get prefix tok =
    let plen = String.length prefix in
    if String.length tok > plen && String.sub tok 0 plen = prefix then
      Some (String.sub tok plen (String.length tok - plen))
    else None
  in
  match tokens with
  | src :: dst :: rest -> (
      match (get "src=" src, get "dst=" dst) with
      | Some s, Some d -> ({ srcs = parse_ids "src" s; dsts = parse_ids "dst" d }, rest)
      | _ -> fail "%s: expected src=... dst=..." what)
  | _ -> fail "%s: expected src=... dst=..." what

let parse_pids ~what = function
  | tok :: rest
    when String.length tok > 4 && String.sub tok 0 4 = "pid=" ->
      (parse_ids "pid" (String.sub tok 4 (String.length tok - 4)), rest)
  | _ -> fail "%s: expected pid=<ids|*>" what

let parse_keyed ~what key tok =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  if String.length tok > plen && String.sub tok 0 plen = prefix then
    match int_of_string_opt (String.sub tok plen (String.length tok - plen)) with
    | Some v -> v
    | None -> fail "%s: bad %s value %S" what key tok
  else fail "%s: expected %s=<int>, got %S" what key tok

let parse_lasts ~what = function
  | [ "for"; d ] -> (
      match int_of_string_opt d with
      | Some v -> v
      | None -> fail "%s: bad duration %S" what d)
  | _ -> fail "%s: expected 'for <duration>'" what

let parse_action = function
  | [ "crash"; pid ] -> Crash (int_of_string pid)
  | [ "restart"; pid ] -> Restart (int_of_string pid)
  | [ "heal" ] -> Heal
  | [ "partition"; groups ] ->
      Partition
        (List.map
           (fun g -> List.map int_of_string (String.split_on_char ',' g))
           (String.split_on_char '|' groups))
  | "drop" :: rest ->
      let m, rest = parse_match ~what:"drop" rest in
      Drop_matching (m, parse_lasts ~what:"drop" rest)
  | "dup" :: rest -> (
      let m, rest = parse_match ~what:"dup" rest in
      match rest with
      | copies :: rest ->
          Duplicate_matching
            (m, parse_keyed ~what:"dup" "copies" copies, parse_lasts ~what:"dup" rest)
      | [] -> fail "dup: expected copies=<k>")
  | "delay" :: rest -> (
      let m, rest = parse_match ~what:"delay" rest in
      match rest with
      | extra :: rest ->
          Delay_spike
            (m, parse_keyed ~what:"delay" "extra" extra, parse_lasts ~what:"delay" rest)
      | [] -> fail "delay: expected extra=<d>")
  | (("torn" | "sync-loss" | "io-err") as what) :: rest -> (
      let pids, rest = parse_pids ~what rest in
      let lasts = parse_lasts ~what rest in
      match what with
      | "torn" -> Torn_write (pids, lasts)
      | "sync-loss" -> Sync_loss (pids, lasts)
      | _ -> Io_error (pids, lasts))
  | "stall" :: rest -> (
      let pids, rest = parse_pids ~what:"stall" rest in
      match rest with
      | extra :: rest ->
          Disk_stall
            (pids, parse_keyed ~what:"stall" "extra" extra,
             parse_lasts ~what:"stall" rest)
      | [] -> fail "stall: expected extra=<d>")
  | tokens -> fail "unrecognized action %S" (String.concat " " tokens)

let of_string text =
  let parse_line i line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | at :: rest when String.length at > 1 && at.[0] = '@' -> (
          match int_of_string_opt (String.sub at 1 (String.length at - 1)) with
          | Some t -> (
              try Some { at = t; action = parse_action rest }
              with Parse_error m | Failure m ->
                fail "line %d: %s" (i + 1) m)
          | None -> fail "line %d: bad time %S" (i + 1) at)
      | _ -> fail "line %d: expected '@<time> <action>'" (i + 1)
  in
  String.split_on_char '\n' text |> List.mapi parse_line |> List.filter_map Fun.id
