(** Plan interpreter: gives a {!Plan.t} effect against a live run.

    Two composable halves, matching the two fault surfaces of
    {!Netsim.Async_net}:

    - {b node/topology actions} (crash, restart, partition, heal) become
      timer events scheduled in {!Dsim.Engine} that call back into a
      {!handle} of effectful operations;
    - {b message windows} (drop / duplicate / delay) compile into a pure
      per-message {!policy} keyed on each envelope's send time, suitable
      for {!Netsim.Async_net.create}'s [?policy] hook — no mutable
      activation state, so the same plan yields the same verdicts in
      every replay. *)

type handle = {
  crash : int -> unit;
  restart : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
}
(** The effectful operations a plan's node/topology actions drive. *)

val policy :
  Plan.t -> 'msg Netsim.Async_net.envelope -> Netsim.Async_net.policy_verdict
(** The per-message adversary the plan's windows describe: the first
    window (in plan order) open at the envelope's send time and matching
    its endpoints decides the verdict; otherwise deliver. *)

val store_policy : Plan.t -> Store.Policy.t
(** The storage fault policy the plan's torn / sync-loss / io-err /
    stall windows describe, for {!Store.Disk}'s policy hook — pure and
    time-keyed like {!policy}, so replays see identical disk faults. *)

val schedule : engine:Dsim.Engine.t -> handle -> Plan.t -> unit
(** Schedule every node/topology action of the plan as an engine timer
    event (times in the past fire immediately); each firing also emits a
    ["nemesis"] trace event. *)

val handle_of_net : 'msg Netsim.Async_net.t -> handle
(** Drive a bare network: crash/restart/partition/heal map directly to
    the net's own primitives (no protocol processes are touched). *)

val handle_of_faults : 'op Rsm.Runner.faults -> handle

val install_rsm : Plan.t -> 'op Rsm.Runner.faults -> unit
(** The {!Rsm.Runner.config.inject} hook for a plan: installs the
    message policy and the storage fault policy, and schedules all
    node/topology actions against the run's fault controller (which
    kills/respawns TOB replica processes alongside the network-level
    crash/restart).  Storage windows only bite when the run has a
    [store] configured. *)

val handle_of_detect_faults : Detect.Runner.faults -> handle

val install_detect : Plan.t -> Detect.Runner.faults -> unit
(** The [install] hook of {!Detect.Runner.run} for a plan: partitions,
    crashes and message windows now perturb the failure detector's
    heartbeat traffic and the indulgent backend's protocol messages
    alike (storage windows are inert — detector runs own no disks). *)

val handle_of_shard_faults : Shard.Runner.faults -> shard:int -> handle
(** One shard's slice of a sharded run's fault controller: partitions
    and crashes are {e shard-local} (replica pids in the plan are
    indices within that shard's group). *)

val install_shard : Plan.t array -> Shard.Runner.faults -> unit
(** The {!Shard.Runner.config.inject} hook for a plan {e per shard}
    (index = shard id): each shard gets its own message policy, storage
    policy and scheduled topology actions, so partitions and disk
    faults hit shards independently — the cross-shard 2PC layer is what
    has to cope. *)
