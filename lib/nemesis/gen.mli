(** Seeded random fault-plan generation.

    Deterministic in [(profile, seed)]: the same pair always yields the
    same plan, which is what lets a campaign name a failing run by its
    seed alone and lets the shrinker replay candidates exactly. *)

type profile = {
  n : int;  (** cluster size the plans target *)
  horizon : int;
      (** virtual-time window actions are placed in; benign plans
          guarantee every disturbance has ended strictly before it *)
  max_actions : int;  (** upper bound on scripted actions per plan *)
  max_down : int;
      (** max simultaneously crashed nodes — set below a quorum for
          safety campaigns, or to [n] to deliberately under-provision *)
  benign : bool;
      (** when set, every crash is eventually restarted and every
          partition healed before [horizon] (the quiet-horizon plans the
          liveness property quantifies over) *)
  storage : bool;
      (** when set, also draw storage faults (torn writes, lying fsyncs,
          IO-error windows, disk stalls) — only meaningful against runs
          with a configured store *)
}

val default : n:int -> profile
(** Horizon 800, at most 10 actions, minority crashes ([(n-1)/2]), not
    benign, no storage faults. *)

val generate : profile -> seed:int -> Plan.t
(** A well-formed plan ({!Plan.validate} returns [] against [n]).  May
    be empty for unlucky seeds — an empty plan is just a fault-free
    run. *)
