(** Declarative fault plans: a virtual-time-stamped script of fault
    actions against one simulated cluster run.

    A plan is data — generated, validated, pretty-printed, serialized,
    shrunk — and only {!Interp} gives it effect.  Crash/restart act on
    nodes (the recoverable crash–restart model), partition/heal act on
    the whole net, and the three [*_matching] actions open timed windows
    during which an adversary verdict (drop / duplicate / delay) applies
    to every message whose endpoints match. *)

type msg_match = {
  srcs : int list option;  (** sources the rule applies to; [None] = any *)
  dsts : int list option;  (** destinations; [None] = any *)
}

val any : msg_match
val matches : msg_match -> src:int -> dst:int -> bool

type action =
  | Crash of int  (** crash-stop the node (kills its protocol process) *)
  | Restart of int  (** crash–recovery: bring a crashed node back *)
  | Partition of int list list  (** install these groups (others isolated) *)
  | Heal  (** remove any partition *)
  | Drop_matching of msg_match * int
      (** drop matching messages for the given duration *)
  | Duplicate_matching of msg_match * int * int
      (** deliver [copies] extra copies of matching messages, for the
          given duration *)
  | Delay_spike of msg_match * int * int
      (** add [extra] latency to matching messages, for the duration *)
  | Torn_write of int list option * int
      (** storage: records appended by the matching disks ([None] = all)
          during the window are silently torn — invisible at write time,
          they truncate [read_back] at recovery *)
  | Sync_loss of int list option * int
      (** storage: fsyncs during the window lie — they acknowledge but
          the batch never reaches the durable region *)
  | Io_error of int list option * int
      (** storage: appends and fsyncs fail visibly during the window
          (callers see [Error] and retry) *)
  | Disk_stall of int list option * int * int
      (** storage: fsyncs during the window take [extra] additional
          virtual time to reach durability *)

type step = { at : int; action : action }
type t = step list
(** Steps in non-decreasing [at] order (see {!validate} / {!normalize}). *)

val length : t -> int
val normalize : t -> t
(** Stable-sort by time. *)

val kind : action -> string
(** Short tag: crash / restart / partition / heal / drop / dup / delay /
    torn / sync-loss / io-err / stall. *)

val kinds : string list
val count_kinds : t -> (string * int) list
(** Occurrences of every action kind (coverage accounting). *)

val validate : n:int -> t -> string list
(** Well-formedness problems, empty when the plan is well-formed: times
    non-negative and sorted; pids and match ids in [0, n); no crash of a
    down node, restart of a live or never-crashed one, or heal of a
    never-partitioned (or already-healed) network; partition groups
    disjoint and non-empty; window durations and intensities
    positive.  Ill-formed plans are rejected with these messages, never
    silently reinterpreted. *)

val consistent : t -> bool
(** The crash/restart/partition/heal state-machine fragment of
    {!validate} alone (no [n] needed): false iff some step double-
    crashes, restarts a non-down node or heals a non-cut network.  The
    shrinker filters its deletion candidates through this so shrunk
    plans stay valid. *)

val quiet_after : t -> int option
(** The earliest virtual time by which every scripted disturbance has
    ended — crashes restarted, partitions healed, message windows
    expired.  [None] when some crash is never restarted or a partition
    is never healed (the plan never goes quiet). *)

val string_of_action : action -> string
val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** One action per line: [@<time> <action>].  Inverse of {!of_string}. *)

exception Parse_error of string

val of_string : string -> t
(** Parse the {!to_string} format ([#] comments and blank lines are
    ignored).  @raise Parse_error on malformed input. *)
