type config = {
  backends : Rsm.Backend.t list;
  plans : int;
  first_seed : int;
  n : int;
  clients : int;
  commands : int;
  batch : int;
  profile : Gen.profile;
  ack_timeout : int;
  max_events : int;
  trace_capacity : int;
  storage : bool;
}

let default_config ?(n = 5) () =
  {
    backends = [ Rsm.Backend.ben_or ];
    plans = 50;
    first_seed = 1;
    n;
    clients = 3;
    commands = 3;
    batch = 4;
    profile = Gen.default ~n;
    ack_timeout = 400;
    max_events = 400_000;
    trace_capacity = 2_000;
    storage = false;
  }

let safety_ok (r : Rsm.Runner.report) =
  r.Rsm.Runner.violations = [] && r.Rsm.Runner.digests_agree

let complete (r : Rsm.Runner.report) =
  r.Rsm.Runner.completeness = []
  && r.Rsm.Runner.acked = r.Rsm.Runner.submitted

let durable_ok (r : Rsm.Runner.report) = r.Rsm.Runner.durability = []

type outcome = {
  backend_name : string;
  plan_seed : int;
  plan : Plan.t;
  safety : bool;
  live : bool;
  durable : bool;
  acked : int;
  submitted : int;
  virtual_time : int;
  engine_outcome : Dsim.Engine.outcome;
}

type report = {
  runs : int;
  outcomes : outcome list;
  safety_failures : outcome list;
  incomplete : outcome list;
  durability_failures : outcome list;
  faults_injected : int;
  coverage : (string * int) list;
  cpu_seconds : float;
  runs_per_sec : float;
}

let run_plan cfg ~backend ~seed plan =
  fst
    (Workload.Rsm_load.run_one ~n:cfg.n ~clients:cfg.clients
       ~commands:cfg.commands ~batch:cfg.batch ~seed
       ~trace_capacity:cfg.trace_capacity ~ack_timeout:cfg.ack_timeout
       ~max_events:cfg.max_events
       ~inject:(Interp.install_rsm plan)
       ?store:
         (if cfg.storage then Some Rsm.Runner.default_store_config else None)
       ~backend ())

let plan_for cfg ~seed =
  Gen.generate
    { cfg.profile with n = cfg.n; storage = cfg.profile.storage || cfg.storage }
    ~seed

let run ?on_outcome cfg =
  let t0 = Sys.time () in
  let outcomes = ref [] in
  List.iter
    (fun backend ->
      for k = 0 to cfg.plans - 1 do
        let seed = cfg.first_seed + k in
        let plan = plan_for cfg ~seed in
        let r = run_plan cfg ~backend ~seed plan in
        let o =
          {
            backend_name = Rsm.Backend.name backend;
            plan_seed = seed;
            plan;
            safety = safety_ok r;
            live = complete r;
            durable = durable_ok r;
            acked = r.Rsm.Runner.acked;
            submitted = r.Rsm.Runner.submitted;
            virtual_time = r.Rsm.Runner.virtual_time;
            engine_outcome = r.Rsm.Runner.engine_outcome;
          }
        in
        Option.iter (fun f -> f o) on_outcome;
        outcomes := o :: !outcomes
      done)
    cfg.backends;
  let cpu_seconds = Sys.time () -. t0 in
  let outcomes = List.rev !outcomes in
  let runs = List.length outcomes in
  let faults_injected =
    List.fold_left (fun a o -> a + Plan.length o.plan) 0 outcomes
  in
  let coverage =
    List.map
      (fun k ->
        ( k,
          List.fold_left
            (fun a o -> a + (List.assoc k (Plan.count_kinds o.plan)))
            0 outcomes ))
      Plan.kinds
  in
  {
    runs;
    outcomes;
    safety_failures = List.filter (fun o -> not o.safety) outcomes;
    incomplete = List.filter (fun o -> not o.live) outcomes;
    durability_failures = List.filter (fun o -> not o.durable) outcomes;
    faults_injected;
    coverage;
    cpu_seconds;
    runs_per_sec =
      (if cpu_seconds <= 0. then 0. else float_of_int runs /. cpu_seconds);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "nemesis campaign: %d runs, %d faults injected, %.1f runs/sec (%.2fs cpu)@."
    r.runs r.faults_injected r.runs_per_sec r.cpu_seconds;
  Format.fprintf ppf "  coverage: %s@."
    (String.concat ", "
       (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) r.coverage));
  Format.fprintf ppf
    "  safety failures: %d, incomplete runs: %d, durability failures: %d@."
    (List.length r.safety_failures)
    (List.length r.incomplete)
    (List.length r.durability_failures);
  List.iter
    (fun o ->
      Format.fprintf ppf "  SAFETY %s seed=%d (%d actions, %d/%d acked)@."
        o.backend_name o.plan_seed (Plan.length o.plan) o.acked o.submitted)
    r.safety_failures;
  List.iter
    (fun o ->
      Format.fprintf ppf "  DURABILITY %s seed=%d (%d actions, %d/%d acked)@."
        o.backend_name o.plan_seed (Plan.length o.plan) o.acked o.submitted)
    r.durability_failures
