type config = {
  backends : Rsm.Backend.t list;
  plans : int;
  first_seed : int;
  n : int;
  clients : int;
  commands : int;
  batch : int;
  profile : Gen.profile;
  ack_timeout : int;
  max_events : int;
  trace_capacity : int;
  storage : bool;
}

let default_config ?(n = 5) () =
  {
    backends = [ Rsm.Backend.ben_or ];
    plans = 50;
    first_seed = 1;
    n;
    clients = 3;
    commands = 3;
    batch = 4;
    profile = Gen.default ~n;
    ack_timeout = 400;
    max_events = 400_000;
    trace_capacity = 2_000;
    storage = false;
  }

let safety_ok (r : _ Rsm.Runner.report) =
  r.Rsm.Runner.violations = [] && r.Rsm.Runner.digests_agree

let complete (r : _ Rsm.Runner.report) =
  r.Rsm.Runner.completeness = []
  && r.Rsm.Runner.acked = r.Rsm.Runner.submitted

let durable_ok (r : _ Rsm.Runner.report) = r.Rsm.Runner.durability = []

type outcome = {
  backend_name : string;
  plan_seed : int;
  plan : Plan.t;
  safety : bool;
  live : bool;
  durable : bool;
  acked : int;
  submitted : int;
  virtual_time : int;
  engine_outcome : Dsim.Engine.outcome;
}

type report = {
  runs : int;
  outcomes : outcome list;
  safety_failures : outcome list;
  incomplete : outcome list;
  durability_failures : outcome list;
  faults_injected : int;
  coverage : (string * int) list;
  cpu_seconds : float;
  wall_seconds : float;
  runs_per_sec : float;
}

let run_plan ?(quiet = false) cfg ~backend ~seed plan =
  fst
    (Workload.Rsm_load.run_one ~n:cfg.n ~clients:cfg.clients
       ~commands:cfg.commands ~batch:cfg.batch ~seed
       ~trace_capacity:cfg.trace_capacity ~quiet ~ack_timeout:cfg.ack_timeout
       ~max_events:cfg.max_events
       ~inject:(Interp.install_rsm plan)
       ?store:
         (if cfg.storage then Some Rsm.Runner.default_store_config else None)
       ~backend ())

let plan_for cfg ~seed =
  Gen.generate
    { cfg.profile with n = cfg.n; storage = cfg.profile.storage || cfg.storage }
    ~seed

let empty_report =
  {
    runs = 0;
    outcomes = [];
    safety_failures = [];
    incomplete = [];
    durability_failures = [];
    faults_injected = 0;
    coverage = List.map (fun k -> (k, 0)) Plan.kinds;
    cpu_seconds = 0.;
    wall_seconds = 0.;
    runs_per_sec = 0.;
  }

let report_of_outcome o =
  {
    empty_report with
    runs = 1;
    outcomes = [ o ];
    safety_failures = (if o.safety then [] else [ o ]);
    incomplete = (if o.live then [] else [ o ]);
    durability_failures = (if o.durable then [] else [ o ]);
    faults_injected = Plan.length o.plan;
    coverage = Plan.count_kinds o.plan;
  }

(* Associative, order-preserving: counts add, outcome lists
   concatenate, timing takes the envelope (max wall / summed cpu).
   Folding singleton reports in work order rebuilds exactly the report
   a sequential sweep produces, which is what lets parallel chunks be
   aggregated without caring when they finished. *)
let merge a b =
  let wall = Float.max a.wall_seconds b.wall_seconds in
  let runs = a.runs + b.runs in
  {
    runs;
    outcomes = a.outcomes @ b.outcomes;
    safety_failures = a.safety_failures @ b.safety_failures;
    incomplete = a.incomplete @ b.incomplete;
    durability_failures = a.durability_failures @ b.durability_failures;
    faults_injected = a.faults_injected + b.faults_injected;
    coverage =
      List.map2 (fun (k, x) (k', y) -> assert (k = k'); (k, x + y))
        a.coverage b.coverage;
    cpu_seconds = a.cpu_seconds +. b.cpu_seconds;
    wall_seconds = wall;
    runs_per_sec = (if wall <= 0. then 0. else float_of_int runs /. wall);
  }

let run ?(jobs = 1) ?on_outcome cfg =
  let t0_cpu = Sys.time () in
  let t0 = Unix.gettimeofday () in
  let work =
    Array.of_list
      (List.concat_map
         (fun backend ->
           List.init cfg.plans (fun k -> (backend, cfg.first_seed + k)))
         cfg.backends)
  in
  let progress = Mutex.create () in
  let one (backend, seed) =
    let plan = plan_for cfg ~seed in
    (* Sweep runs are quiet: nothing reads their traces, and skipping
       trace-string construction is most of the campaign's allocation.
       Replaying a single plan through [run_plan] still traces. *)
    let r = run_plan ~quiet:true cfg ~backend ~seed plan in
    let o =
      {
        backend_name = Rsm.Backend.name backend;
        plan_seed = seed;
        plan;
        safety = safety_ok r;
        live = complete r;
        durable = durable_ok r;
        acked = r.Rsm.Runner.acked;
        submitted = r.Rsm.Runner.submitted;
        virtual_time = r.Rsm.Runner.virtual_time;
        engine_outcome = r.Rsm.Runner.engine_outcome;
      }
    in
    (* Completion order under jobs > 1 is nondeterministic; the mutex
       only keeps concurrent observers from interleaving output. *)
    Option.iter (fun f -> Mutex.protect progress (fun () -> f o)) on_outcome;
    o
  in
  let outcomes =
    Exec.Pool.map ~jobs ~seed_of:(fun i -> snd work.(i)) one work
  in
  let r =
    Array.fold_left
      (fun acc o -> merge acc (report_of_outcome o))
      empty_report outcomes
  in
  let wall = Unix.gettimeofday () -. t0 in
  {
    r with
    cpu_seconds = Sys.time () -. t0_cpu;
    wall_seconds = wall;
    runs_per_sec = (if wall <= 0. then 0. else float_of_int r.runs /. wall);
  }

(* Everything below the first line is deterministic for a given
   campaign; only that header line carries timing.  [pp_report_stable]
   drops it so reports can be byte-compared across job counts. *)
let pp_report_body ppf r =
  Format.fprintf ppf "  coverage: %s@."
    (String.concat ", "
       (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) r.coverage));
  Format.fprintf ppf
    "  safety failures: %d, incomplete runs: %d, durability failures: %d@."
    (List.length r.safety_failures)
    (List.length r.incomplete)
    (List.length r.durability_failures);
  List.iter
    (fun o ->
      Format.fprintf ppf "  SAFETY %s seed=%d (%d actions, %d/%d acked)@."
        o.backend_name o.plan_seed (Plan.length o.plan) o.acked o.submitted)
    r.safety_failures;
  List.iter
    (fun o ->
      Format.fprintf ppf "  DURABILITY %s seed=%d (%d actions, %d/%d acked)@."
        o.backend_name o.plan_seed (Plan.length o.plan) o.acked o.submitted)
    r.durability_failures

let pp_report ppf r =
  Format.fprintf ppf
    "nemesis campaign: %d runs, %d faults injected, %.1f runs/sec (%.2fs wall, \
     %.2fs cpu)@."
    r.runs r.faults_injected r.runs_per_sec r.wall_seconds r.cpu_seconds;
  pp_report_body ppf r

let pp_report_stable ppf r =
  Format.fprintf ppf "nemesis campaign: %d runs, %d faults injected@." r.runs
    r.faults_injected;
  pp_report_body ppf r
