(* Nemesis sweeps for the universal construction: every object in the
   registry, over every requested backend, under [plans] generated
   fault plans each — with the Wing–Gong linearizability gate on every
   run, on top of the order/digest/durability gates the KV campaign
   already applies. *)

type config = {
  backends : Rsm.Backend.t list;
  objects : string list;
  plans : int;
  first_seed : int;
  n : int;
  clients : int;
  commands : int;
  batch : int;
  profile : Gen.profile;
  storage : bool;
}

let default_config ?(n = 5) () =
  {
    backends = [ Rsm.Backend.ben_or ];
    objects = Obj.Registry.names;
    plans = 5;
    first_seed = 1;
    n;
    clients = 3;
    commands = 4;
    batch = 4;
    profile = Gen.default ~n;
    storage = false;
  }

type outcome = {
  summary : Workload.Obj_load.summary;
  plan_seed : int;
  plan : Plan.t;
}

type report = {
  runs : int;
  outcomes : outcome list;  (** object-major, then backend, then seed *)
  failures : outcome list;  (** any gate tripped: order, digest, or WG *)
  wg_failures : outcome list;  (** the WG gate specifically *)
  wall_seconds : float;
  runs_per_sec : float;
}

let plan_for cfg ~seed =
  Gen.generate
    { cfg.profile with n = cfg.n; storage = cfg.profile.storage || cfg.storage }
    ~seed

let run_plan ?(quiet = true) cfg ~object_name ~backend ~seed plan =
  Workload.Obj_load.run ~n:cfg.n ~clients:cfg.clients ~commands:cfg.commands
    ~batch:cfg.batch ~seed ~quiet ~trace_capacity:2_000 ~ack_timeout:400
    ~max_events:400_000
    ~inject:
      { Workload.Obj_load.inject = (fun f -> Interp.install_rsm plan f) }
    ?store:(if cfg.storage then Some Rsm.Runner.default_store_config else None)
    ~backend ~object_name ()

let run ?(jobs = 1) ?on_outcome cfg =
  let t0 = Unix.gettimeofday () in
  let work =
    Array.of_list
      (List.concat_map
         (fun object_name ->
           List.concat_map
             (fun backend ->
               List.init cfg.plans (fun k ->
                   (object_name, backend, cfg.first_seed + k)))
             cfg.backends)
         cfg.objects)
  in
  let progress = Mutex.create () in
  let one (object_name, backend, seed) =
    let plan = plan_for cfg ~seed in
    let summary = run_plan cfg ~object_name ~backend ~seed plan in
    let o = { summary; plan_seed = seed; plan } in
    Option.iter (fun f -> Mutex.protect progress (fun () -> f o)) on_outcome;
    o
  in
  let outcomes =
    Exec.Pool.map ~jobs ~seed_of:(fun i -> let _, _, s = work.(i) in s) one work
  in
  let outcomes = Array.to_list outcomes in
  let failures = List.filter (fun o -> not o.summary.Workload.Obj_load.ok) outcomes in
  let wg_failures =
    List.filter
      (fun o -> o.summary.Workload.Obj_load.wg_violations <> [])
      outcomes
  in
  let wall = Unix.gettimeofday () -. t0 in
  let runs = List.length outcomes in
  {
    runs;
    outcomes;
    failures;
    wg_failures;
    wall_seconds = wall;
    runs_per_sec = (if wall <= 0. then 0. else float_of_int runs /. wall);
  }

let pp_report_body ppf r =
  let by_object =
    List.sort_uniq compare
      (List.map (fun o -> o.summary.Workload.Obj_load.object_name) r.outcomes)
  in
  List.iter
    (fun name ->
      let mine =
        List.filter
          (fun o -> o.summary.Workload.Obj_load.object_name = name)
          r.outcomes
      in
      let bad = List.filter (fun o -> not o.summary.Workload.Obj_load.ok) mine in
      Format.fprintf ppf "  %-8s %d runs, %d failures@." name
        (List.length mine) (List.length bad))
    by_object;
  List.iter
    (fun o ->
      Format.fprintf ppf "  FAIL %s/%s seed=%d (%d actions): %s@."
        o.summary.Workload.Obj_load.object_name
        o.summary.Workload.Obj_load.backend_name o.plan_seed (Plan.length o.plan)
        (match o.summary.Workload.Obj_load.wg_violations with
        | v :: _ -> v
        | [] -> "order/digest gate"))
    r.failures

let pp_report ppf r =
  Format.fprintf ppf
    "object campaign: %d runs, %d failures (%d linearizability), %.1f \
     runs/sec@."
    r.runs
    (List.length r.failures)
    (List.length r.wg_failures)
    r.runs_per_sec;
  pp_report_body ppf r

let pp_report_stable ppf r =
  Format.fprintf ppf "object campaign: %d runs, %d failures (%d linearizability)@."
    r.runs
    (List.length r.failures)
    (List.length r.wg_failures);
  pp_report_body ppf r
