(* Detector-accuracy campaigns: sweep detector parameter sets x seeded
   fault plans through the indulgent consensus runner and audit every
   run for the indulgence contract — agreement and validity must hold
   unconditionally, and every run whose plan is eventually stable
   (majority live at the end, no unhealed cut) must decide.  A run
   that is stable yet undecided is a livelock: with an honest detector
   the campaign must count zero of them, while the lying mutants are
   expected to produce them (liveness lost, safety intact). *)

type config = {
  plans : int;
  first_seed : int;
  n : int;
  params : Detect.Timeout.params list;  (** detector parameter grid *)
  mutant : Detect.Oracle.mutant;
  profile : Gen.profile;
  horizon_slack : int;
      (** virtual time granted past the plan horizon for recovery —
          capped timeouts and round backoff need room after a heal *)
  max_events : int;
}

let default_config ?(n = 4) () =
  {
    plans = 50;
    first_seed = 1;
    n;
    params = [ Detect.Timeout.default ];
    mutant = Detect.Oracle.Honest;
    profile = Gen.default ~n;
    horizon_slack = 3000;
    max_events = 400_000;
  }

(* Does the plan leave the network in a state where the detector can
   stabilise and a quorum can form?  No unhealed cut, and a strict
   majority of nodes up at the end.  (quiet_after is too strong: a
   permanently-crashed minority still stabilises.) *)
let eventually_stable ~n plan =
  let down = Hashtbl.create 8 in
  let cut = ref false in
  List.iter
    (fun { Plan.action; _ } ->
      match action with
      | Plan.Crash p -> Hashtbl.replace down p ()
      | Plan.Restart p -> Hashtbl.remove down p
      | Plan.Partition _ -> cut := true
      | Plan.Heal -> cut := false
      | _ -> ())
    plan;
  (not !cut) && 2 * (n - Hashtbl.length down) > n

type outcome = {
  plan_seed : int;
  params_ix : int;  (** index into the config's parameter grid *)
  plan : Plan.t;
  stable : bool;  (** {!eventually_stable} of the plan *)
  decided : bool;  (** every live node learned the decision *)
  agreement : bool;
  validity : bool;
  livelock : bool;  (** [stable && not decided] — must not happen honest *)
  decision_latency : int option;  (** virtual time of the first decision *)
  suspicions : int;
  false_suspicions : int;
  omega_stable_at : int option;
  heartbeats : int;
  virtual_time : int;
  engine_outcome : Dsim.Engine.outcome;
}

type report = {
  runs : int;
  outcomes : outcome list;  (** params-major, then plan order *)
  agreement_failures : outcome list;
  validity_failures : outcome list;
  livelocks : outcome list;
  stable_runs : int;
  decided_runs : int;
  latency_sum : int;  (** summed decision latencies over decided runs *)
  latency_runs : int;
  suspicions : int;
  false_suspicions : int;
  stability_sum : int;  (** summed omega_stable_at over stabilised runs *)
  stability_runs : int;
  heartbeats : int;
  faults_injected : int;
  coverage : (string * int) list;
  cpu_seconds : float;
  wall_seconds : float;
  runs_per_sec : float;
}

let empty_report =
  {
    runs = 0;
    outcomes = [];
    agreement_failures = [];
    validity_failures = [];
    livelocks = [];
    stable_runs = 0;
    decided_runs = 0;
    latency_sum = 0;
    latency_runs = 0;
    suspicions = 0;
    false_suspicions = 0;
    stability_sum = 0;
    stability_runs = 0;
    heartbeats = 0;
    faults_injected = 0;
    coverage = List.map (fun k -> (k, 0)) Plan.kinds;
    cpu_seconds = 0.;
    wall_seconds = 0.;
    runs_per_sec = 0.;
  }

let report_of_outcome o =
  {
    empty_report with
    runs = 1;
    outcomes = [ o ];
    agreement_failures = (if o.agreement then [] else [ o ]);
    validity_failures = (if o.validity then [] else [ o ]);
    livelocks = (if o.livelock then [ o ] else []);
    stable_runs = (if o.stable then 1 else 0);
    decided_runs = (if o.decided then 1 else 0);
    latency_sum = Option.value o.decision_latency ~default:0;
    latency_runs = (if o.decision_latency <> None then 1 else 0);
    suspicions = o.suspicions;
    false_suspicions = o.false_suspicions;
    stability_sum = Option.value o.omega_stable_at ~default:0;
    stability_runs = (if o.omega_stable_at <> None then 1 else 0);
    heartbeats = o.heartbeats;
    faults_injected = Plan.length o.plan;
    coverage = Plan.count_kinds o.plan;
  }

let merge a b =
  {
    runs = a.runs + b.runs;
    outcomes = a.outcomes @ b.outcomes;
    agreement_failures = a.agreement_failures @ b.agreement_failures;
    validity_failures = a.validity_failures @ b.validity_failures;
    livelocks = a.livelocks @ b.livelocks;
    stable_runs = a.stable_runs + b.stable_runs;
    decided_runs = a.decided_runs + b.decided_runs;
    latency_sum = a.latency_sum + b.latency_sum;
    latency_runs = a.latency_runs + b.latency_runs;
    suspicions = a.suspicions + b.suspicions;
    false_suspicions = a.false_suspicions + b.false_suspicions;
    stability_sum = a.stability_sum + b.stability_sum;
    stability_runs = a.stability_runs + b.stability_runs;
    heartbeats = a.heartbeats + b.heartbeats;
    faults_injected = a.faults_injected + b.faults_injected;
    coverage =
      List.map2
        (fun (k1, c1) (k2, c2) ->
          assert (String.equal k1 k2);
          (k1, c1 + c2))
        a.coverage b.coverage;
    cpu_seconds = a.cpu_seconds +. b.cpu_seconds;
    wall_seconds = Float.max a.wall_seconds b.wall_seconds;
    runs_per_sec = 0.;
  }

let plan_for cfg ~seed = Gen.generate { cfg.profile with Gen.n = cfg.n } ~seed

let run_plan ?(quiet = true) cfg ~params ~seed plan =
  Detect.Runner.run ~n:cfg.n
    ~seed:(Int64.of_int seed)
    ~params ~mutant:cfg.mutant
    ~horizon:(cfg.profile.Gen.horizon + cfg.horizon_slack)
    ~max_events:cfg.max_events ~quiet
    ~install:(fun f -> Interp.install_detect plan f)
    ()

let outcome_of_run cfg ~params_ix ~seed plan (r : Detect.Runner.report) =
  let stable = eventually_stable ~n:cfg.n plan in
  {
    plan_seed = seed;
    params_ix;
    plan;
    stable;
    decided = r.Detect.Runner.all_live_decided;
    agreement = r.Detect.Runner.agreement_ok;
    validity = r.Detect.Runner.validity_ok;
    livelock = stable && not r.Detect.Runner.all_live_decided;
    decision_latency = r.Detect.Runner.first_decision;
    suspicions = r.Detect.Runner.suspicions;
    false_suspicions = r.Detect.Runner.false_suspicions;
    omega_stable_at = r.Detect.Runner.omega_stable_at;
    heartbeats = r.Detect.Runner.heartbeats_sent;
    virtual_time = r.Detect.Runner.virtual_time;
    engine_outcome = r.Detect.Runner.outcome;
  }

let run ?(jobs = 1) ?on_outcome cfg =
  let t0_cpu = Sys.time () in
  let t0 = Unix.gettimeofday () in
  let n_params = List.length cfg.params in
  if n_params = 0 then invalid_arg "Detect_campaign.run: empty parameter grid";
  let params = Array.of_list cfg.params in
  let work =
    Array.init (n_params * cfg.plans) (fun i ->
        (i / cfg.plans, cfg.first_seed + (i mod cfg.plans)))
  in
  let progress = Mutex.create () in
  let one (params_ix, seed) =
    let plan = plan_for cfg ~seed in
    let r = run_plan cfg ~params:params.(params_ix) ~seed plan in
    let o = outcome_of_run cfg ~params_ix ~seed plan r in
    Option.iter (fun f -> Mutex.protect progress (fun () -> f o)) on_outcome;
    o
  in
  let outcomes =
    Exec.Pool.map ~jobs ~seed_of:(fun i -> snd work.(i)) one work
  in
  let r =
    Array.fold_left
      (fun acc o -> merge acc (report_of_outcome o))
      empty_report outcomes
  in
  let wall = Unix.gettimeofday () -. t0 in
  {
    r with
    cpu_seconds = Sys.time () -. t0_cpu;
    wall_seconds = wall;
    runs_per_sec = (if wall <= 0. then 0. else float_of_int r.runs /. wall);
  }

(* Only the header line carries timing; everything below it is
   deterministic for a given campaign. *)
let pp_report_body ppf r =
  Format.fprintf ppf "  coverage: %s@."
    (String.concat ", "
       (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) r.coverage));
  Format.fprintf ppf
    "  stable plans: %d/%d, decided runs: %d, livelocked stable runs: %d@."
    r.stable_runs r.runs r.decided_runs (List.length r.livelocks);
  Format.fprintf ppf "  agreement failures: %d, validity failures: %d@."
    (List.length r.agreement_failures)
    (List.length r.validity_failures);
  Format.fprintf ppf
    "  suspicions: %d (false: %d, rate %.3f), heartbeats: %d@." r.suspicions
    r.false_suspicions
    (if r.suspicions = 0 then 0.
     else float_of_int r.false_suspicions /. float_of_int r.suspicions)
    r.heartbeats;
  Format.fprintf ppf
    "  mean decision latency: %s, mean time-to-omega-stability: %s@."
    (if r.latency_runs = 0 then "-"
     else Printf.sprintf "%.1f" (float_of_int r.latency_sum /. float_of_int r.latency_runs))
    (if r.stability_runs = 0 then "-"
     else
       Printf.sprintf "%.1f"
         (float_of_int r.stability_sum /. float_of_int r.stability_runs));
  List.iter
    (fun o ->
      Format.fprintf ppf "  AGREEMENT VIOLATION: params %d seed %d@."
        o.params_ix o.plan_seed)
    r.agreement_failures;
  List.iter
    (fun o ->
      Format.fprintf ppf "  VALIDITY VIOLATION: params %d seed %d@."
        o.params_ix o.plan_seed)
    r.validity_failures;
  List.iter
    (fun o ->
      Format.fprintf ppf "  LIVELOCK: params %d seed %d (stable plan, undecided)@."
        o.params_ix o.plan_seed)
    r.livelocks

let pp_report ppf r =
  Format.fprintf ppf
    "detect campaign: %d runs, %d faults injected (%.1f runs/s, %.2fs wall, %.2fs cpu)@."
    r.runs r.faults_injected r.runs_per_sec r.wall_seconds r.cpu_seconds;
  pp_report_body ppf r

let pp_report_stable ppf r =
  Format.fprintf ppf "detect campaign: %d runs, %d faults injected@." r.runs
    r.faults_injected;
  pp_report_body ppf r
