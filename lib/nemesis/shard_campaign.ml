type config = {
  backends : Rsm.Backend.t list;
  plans : int;
  first_seed : int;
  shards : int;
  replicas : int;
  clients : int;
  ops_per_client : int;
  keys : int;
  tx_pct : int;
  batch : int;
  profile : Gen.profile;
  ack_timeout : int;
  max_events : int;
  storage : bool;
  broken_2pc : bool;
}

let default_config ?(shards = 4) ?(replicas = 3) () =
  {
    backends = [ Rsm.Backend.ben_or ];
    plans = 30;
    first_seed = 1;
    shards;
    replicas;
    clients = 12;
    ops_per_client = 3;
    keys = 64;
    tx_pct = 25;
    batch = 8;
    (* benign by default: every shard-local disturbance heals before the
       horizon, so clean backends should also stay live *)
    profile = { (Gen.default ~n:replicas) with Gen.benign = true };
    ack_timeout = 2_000;
    max_events = 4_000_000;
    storage = false;
    broken_2pc = false;
  }

type outcome = {
  backend_name : string;
  plan_seed : int;
  plans : Plan.t array;  (** index = shard *)
  safety : bool;
  atomic : bool;
  live : bool;
  durable : bool;
  total_ops : int;
  completed : int;
  txs_committed : int;
  txs_aborted : int;
  virtual_time : int;
  engine_outcome : Dsim.Engine.outcome;
}

type report = {
  runs : int;
  outcomes : outcome list;
  safety_failures : outcome list;
  atomicity_failures : outcome list;
  incomplete : outcome list;
  durability_failures : outcome list;
  faults_injected : int;
  coverage : (string * int) list;
  cpu_seconds : float;
  wall_seconds : float;
  runs_per_sec : float;
}

(* One plan per shard, all derived from the campaign seed; the prime
   stride keeps per-shard streams disjoint across neighbouring seeds. *)
let plans_for cfg ~seed =
  let profile =
    {
      cfg.profile with
      Gen.n = cfg.replicas;
      storage = cfg.profile.Gen.storage || cfg.storage;
    }
  in
  Array.init cfg.shards (fun shard ->
      Gen.generate profile ~seed:((seed * 1009) + shard))

let run_plans ?(quiet = true) cfg ~backend ~seed plans =
  let load =
    {
      Workload.Load.default with
      Workload.Load.clients = cfg.clients;
      ops_per_client = cfg.ops_per_client;
      keys = cfg.keys;
      tx_pct = cfg.tx_pct;
    }
  in
  fst
    (Workload.Shard_load.run_one ~shards:cfg.shards ~replicas:cfg.replicas
       ~batch:cfg.batch ~seed ~load ~quiet ~ack_timeout:cfg.ack_timeout
       ~max_events:cfg.max_events ~broken_2pc:cfg.broken_2pc
       ~inject:(Interp.install_shard plans)
       ?store:
         (if cfg.storage then Some Rsm.Runner.default_store_config else None)
       ~backend ())

let outcome_of_report ~backend ~seed plans (r : Shard.Runner.report) =
  let all f = Array.for_all f r.Shard.Runner.shard_reports in
  let total_ops =
    r.Shard.Runner.singles_submitted + r.Shard.Runner.txs_started
  in
  let completed =
    r.Shard.Runner.singles_acked + r.Shard.Runner.txs_committed
    + r.Shard.Runner.txs_aborted
  in
  {
    backend_name = Rsm.Backend.name backend;
    plan_seed = seed;
    plans;
    safety =
      all (fun sr ->
          sr.Shard.Runner.sr_violations = [] && sr.Shard.Runner.sr_digests_agree);
    atomic = r.Shard.Runner.atomicity = [];
    live =
      completed = total_ops
      && r.Shard.Runner.tx_completeness = []
      && all (fun sr -> sr.Shard.Runner.sr_completeness = []);
    durable = all (fun sr -> sr.Shard.Runner.sr_durability = []);
    total_ops;
    completed;
    txs_committed = r.Shard.Runner.txs_committed;
    txs_aborted = r.Shard.Runner.txs_aborted;
    virtual_time = r.Shard.Runner.virtual_time;
    engine_outcome = r.Shard.Runner.engine_outcome;
  }

let empty_report =
  {
    runs = 0;
    outcomes = [];
    safety_failures = [];
    atomicity_failures = [];
    incomplete = [];
    durability_failures = [];
    faults_injected = 0;
    coverage = List.map (fun k -> (k, 0)) Plan.kinds;
    cpu_seconds = 0.;
    wall_seconds = 0.;
    runs_per_sec = 0.;
  }

let count_kinds_all plans =
  Array.fold_left
    (fun acc plan ->
      List.map2
        (fun (k, x) (k', y) ->
          assert (k = k');
          (k, x + y))
        acc (Plan.count_kinds plan))
    (List.map (fun k -> (k, 0)) Plan.kinds)
    plans

let report_of_outcome o =
  {
    empty_report with
    runs = 1;
    outcomes = [ o ];
    safety_failures = (if o.safety then [] else [ o ]);
    atomicity_failures = (if o.atomic then [] else [ o ]);
    incomplete = (if o.live then [] else [ o ]);
    durability_failures = (if o.durable then [] else [ o ]);
    faults_injected =
      Array.fold_left (fun a p -> a + Plan.length p) 0 o.plans;
    coverage = count_kinds_all o.plans;
  }

(* Same associativity argument as {!Campaign.merge}: folding singleton
   reports in work order rebuilds the sequential report exactly. *)
let merge a b =
  let wall = Float.max a.wall_seconds b.wall_seconds in
  let runs = a.runs + b.runs in
  {
    runs;
    outcomes = a.outcomes @ b.outcomes;
    safety_failures = a.safety_failures @ b.safety_failures;
    atomicity_failures = a.atomicity_failures @ b.atomicity_failures;
    incomplete = a.incomplete @ b.incomplete;
    durability_failures = a.durability_failures @ b.durability_failures;
    faults_injected = a.faults_injected + b.faults_injected;
    coverage =
      List.map2
        (fun (k, x) (k', y) ->
          assert (k = k');
          (k, x + y))
        a.coverage b.coverage;
    cpu_seconds = a.cpu_seconds +. b.cpu_seconds;
    wall_seconds = wall;
    runs_per_sec = (if wall <= 0. then 0. else float_of_int runs /. wall);
  }

let run ?(jobs = 1) ?on_outcome (cfg : config) =
  let t0_cpu = Sys.time () in
  let t0 = Unix.gettimeofday () in
  let work =
    Array.of_list
      (List.concat_map
         (fun backend ->
           List.init cfg.plans (fun k -> (backend, cfg.first_seed + k)))
         cfg.backends)
  in
  let progress = Mutex.create () in
  let one (backend, seed) =
    let plans = plans_for cfg ~seed in
    let r = run_plans ~quiet:true cfg ~backend ~seed plans in
    let o = outcome_of_report ~backend ~seed plans r in
    Option.iter (fun f -> Mutex.protect progress (fun () -> f o)) on_outcome;
    o
  in
  let outcomes =
    Exec.Pool.map ~jobs ~seed_of:(fun i -> snd work.(i)) one work
  in
  let r =
    Array.fold_left
      (fun acc o -> merge acc (report_of_outcome o))
      empty_report outcomes
  in
  let wall = Unix.gettimeofday () -. t0 in
  {
    r with
    cpu_seconds = Sys.time () -. t0_cpu;
    wall_seconds = wall;
    runs_per_sec = (if wall <= 0. then 0. else float_of_int r.runs /. wall);
  }

let pp_report_body ppf r =
  Format.fprintf ppf "  coverage: %s@."
    (String.concat ", "
       (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) r.coverage));
  Format.fprintf ppf
    "  safety: %d, atomicity: %d, incomplete: %d, durability: %d@."
    (List.length r.safety_failures)
    (List.length r.atomicity_failures)
    (List.length r.incomplete)
    (List.length r.durability_failures);
  let dump tag os =
    List.iter
      (fun o ->
        Format.fprintf ppf "  %s %s seed=%d (%d/%d done, %d/%d tx ok/ab)@." tag
          o.backend_name o.plan_seed o.completed o.total_ops o.txs_committed
          o.txs_aborted)
      os
  in
  dump "SAFETY" r.safety_failures;
  dump "ATOMICITY" r.atomicity_failures;
  dump "DURABILITY" r.durability_failures

let pp_report ppf r =
  Format.fprintf ppf
    "shard campaign: %d runs, %d faults injected, %.1f runs/sec (%.2fs wall, \
     %.2fs cpu)@."
    r.runs r.faults_injected r.runs_per_sec r.wall_seconds r.cpu_seconds;
  pp_report_body ppf r

let pp_report_stable ppf r =
  Format.fprintf ppf "shard campaign: %d runs, %d faults injected@." r.runs
    r.faults_injected;
  pp_report_body ppf r
