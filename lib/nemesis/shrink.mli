(** Counterexample shrinking for failing fault plans.

    Given a plan whose (deterministic) replay fails some predicate,
    greedily delta-debug it to a {e 1-minimal} counterexample: no single
    step can be removed, and no surviving step weakened (shorter window,
    fewer duplicate copies, smaller delay, coarser partition), without
    the failure disappearing.  Because replays are deterministic in the
    plan, the minimized plan is a standalone reproduction recipe. *)

type 'r oracle = {
  run : Plan.t -> 'r;  (** deterministic replay (e.g. {!Campaign.run_plan}) *)
  failing : 'r -> bool;  (** does this replay exhibit the failure? *)
}

type result = {
  plan : Plan.t;  (** the local-minimum failing plan *)
  replays : int;  (** replays spent (including the initial check) *)
  reduced_from : int;  (** action count of the original plan *)
}

val shrink : ?max_replays:int -> 'r oracle -> Plan.t -> result
(** Shrink to a local minimum within [max_replays] (default 400)
    replays; if the budget trips, the best plan found so far is
    returned (still failing — every adopted candidate was verified).
    @raise Invalid_argument if the initial plan does not fail. *)
