type profile = {
  n : int;
  horizon : int;
  max_actions : int;
  max_down : int;
  benign : bool;
  storage : bool;
}

let default ~n =
  {
    n;
    horizon = 800;
    max_actions = 10;
    max_down = (if n <= 1 then 0 else (n - 1) / 2);
    benign = false;
    storage = false;
  }

let generate p ~seed =
  if p.n < 1 then invalid_arg "Gen.generate: n must be >= 1";
  if p.horizon < 10 then invalid_arg "Gen.generate: horizon must be >= 10";
  if p.max_actions < 1 then invalid_arg "Gen.generate: max_actions must be >= 1";
  let rng = Dsim.Rng.create (Int64.of_int seed) in
  let steps = 1 + Dsim.Rng.int rng p.max_actions in
  (* Benign plans keep scripted actions in an early window so the
     appended restores still fit strictly before the horizon. *)
  let budget = if p.benign then max 1 (p.horizon * 3 / 5) else p.horizon in
  let down = ref [] in
  let live () =
    List.filter (fun i -> not (List.mem i !down)) (List.init p.n Fun.id)
  in
  let partitioned = ref false in
  let t = ref 0 in
  let rev_plan = ref [] in
  let push at action = rev_plan := { Plan.at; action } :: !rev_plan in
  let some_ids () =
    if Dsim.Rng.bool rng then None
    else begin
      let k = 1 + Dsim.Rng.int rng (max 1 (p.n / 2)) in
      let arr = Array.init p.n Fun.id in
      Dsim.Rng.shuffle rng arr;
      Some (List.sort compare (Array.to_list (Array.sub arr 0 k)))
    end
  in
  let some_match () = { Plan.srcs = some_ids (); dsts = some_ids () } in
  let window at =
    let cap =
      if p.benign then max 1 (p.horizon - at - 1) else max 1 (p.horizon / 3)
    in
    1 + Dsim.Rng.int rng cap
  in
  let random_partition () =
    let arr = Array.init p.n Fun.id in
    Dsim.Rng.shuffle rng arr;
    let cut = 1 + Dsim.Rng.int rng (p.n - 1) in
    let g1 = List.sort compare (Array.to_list (Array.sub arr 0 cut)) in
    let g2 = List.sort compare (Array.to_list (Array.sub arr cut (p.n - cut))) in
    [ g1; g2 ]
  in
  for _ = 1 to steps do
    t := !t + 1 + Dsim.Rng.int rng (max 1 (budget / p.max_actions));
    if !t < budget then begin
      let at = !t in
      let candidates =
        List.concat
          [
            (if List.length !down < p.max_down && live () <> [] then
               (* twice: crashes are the interesting faults *)
               [ `Crash; `Crash ]
             else []);
            (if !down <> [] then [ `Restart ] else []);
            (if p.n >= 2 then [ `Partition ] else []);
            (if !partitioned then [ `Heal ] else []);
            [ `Drop; `Dup; `Delay ];
            (if p.storage then [ `Torn; `Sync_loss; `Io_error; `Stall ] else []);
          ]
      in
      match Dsim.Rng.pick_list rng candidates with
      | `Crash ->
          let victim = Dsim.Rng.pick_list rng (live ()) in
          down := victim :: !down;
          push at (Plan.Crash victim)
      | `Restart ->
          let back = Dsim.Rng.pick_list rng !down in
          down := List.filter (fun i -> i <> back) !down;
          push at (Plan.Restart back)
      | `Partition ->
          partitioned := true;
          push at (Plan.Partition (random_partition ()))
      | `Heal ->
          partitioned := false;
          push at Plan.Heal
      | `Drop -> push at (Plan.Drop_matching (some_match (), window at))
      | `Dup ->
          push at
            (Plan.Duplicate_matching (some_match (), 1 + Dsim.Rng.int rng 3, window at))
      | `Delay ->
          push at
            (Plan.Delay_spike (some_match (), 5 + Dsim.Rng.int rng 50, window at))
      | `Torn -> push at (Plan.Torn_write (some_ids (), window at))
      | `Sync_loss -> push at (Plan.Sync_loss (some_ids (), window at))
      | `Io_error -> push at (Plan.Io_error (some_ids (), window at))
      | `Stall ->
          push at
            (Plan.Disk_stall (some_ids (), 10 + Dsim.Rng.int rng 90, window at))
    end
  done;
  (* A cut that never heals stalls every quorum-gated slot to the
     horizon by design (the DESIGN §12 fix in Rsm.Log.majority_view),
     which would turn whole campaigns into liveness noise: generated
     plans therefore always heal — partitions are windows, only
     crashes may persist (in non-benign mode). *)
  if !partitioned && not p.benign then begin
    push (min (p.horizon - 1) (max (!t + 1) (p.horizon * 4 / 5))) Plan.Heal;
    partitioned := false
  end;
  if p.benign then begin
    (* Undo every lingering disturbance strictly before the horizon. *)
    let pending = List.length !down + if !partitioned then 1 else 0 in
    if pending > 0 then begin
      let start = max (!t + 1) budget in
      let gap = max 1 ((p.horizon - start) / (pending + 1)) in
      let rt = ref start in
      List.iter
        (fun pid ->
          push (min !rt (p.horizon - 1)) (Plan.Restart pid);
          rt := !rt + gap)
        (List.rev !down);
      down := [];
      if !partitioned then begin
        push (min !rt (p.horizon - 1)) Plan.Heal;
        partitioned := false
      end
    end
  end;
  Plan.normalize (List.rev !rev_plan)
