(** Detector-accuracy campaigns over the indulgent consensus runner.

    Sweeps a detector parameter grid x seeded fault plans, auditing
    every run for the indulgence contract: agreement/validity must
    hold in {e every} run (detector-free safety), and every run whose
    plan is {!eventually_stable} must decide — a stable-but-undecided
    run is a {e livelock}, of which an honest campaign must count
    zero, while the lying mutants are expected to produce them
    (liveness lost, safety intact: exactly what the gate checks).

    Like {!Campaign}, the run set is named by [(profile, params,
    first_seed, plans)] alone, runs are isolated simulations keyed by
    seed, and reports are byte-identical at every job count. *)

type config = {
  plans : int;
  first_seed : int;
  n : int;
  params : Detect.Timeout.params list;  (** detector parameter grid *)
  mutant : Detect.Oracle.mutant;
  profile : Gen.profile;
  horizon_slack : int;
      (** extra virtual time past the plan horizon for post-heal
          recovery (capped timeouts and round backoff need room) *)
  max_events : int;
}

val default_config : ?n:int -> unit -> config
(** 50 plans from seed 1 at n=4, default timeout parameters, honest
    detector, default minority-crash profile. *)

val eventually_stable : n:int -> Plan.t -> bool
(** Whether the plan's final state lets the detector stabilise and a
    quorum form: no unhealed cut and a strict majority of nodes up.
    (Weaker than [Plan.quiet_after <> None]: a permanently-crashed
    minority still stabilises.) *)

type outcome = {
  plan_seed : int;
  params_ix : int;  (** index into the config's parameter grid *)
  plan : Plan.t;
  stable : bool;
  decided : bool;  (** every live node learned the decision *)
  agreement : bool;
  validity : bool;
  livelock : bool;  (** [stable && not decided] *)
  decision_latency : int option;
  suspicions : int;
  false_suspicions : int;
  omega_stable_at : int option;
  heartbeats : int;
  virtual_time : int;
  engine_outcome : Dsim.Engine.outcome;
}

type report = {
  runs : int;
  outcomes : outcome list;  (** params-major, then plan order *)
  agreement_failures : outcome list;
  validity_failures : outcome list;
  livelocks : outcome list;
  stable_runs : int;
  decided_runs : int;
  latency_sum : int;
  latency_runs : int;
  suspicions : int;
  false_suspicions : int;
  stability_sum : int;
  stability_runs : int;
  heartbeats : int;
  faults_injected : int;
  coverage : (string * int) list;
  cpu_seconds : float;
  wall_seconds : float;
  runs_per_sec : float;
}

val empty_report : report

val plan_for : config -> seed:int -> Plan.t

val run_plan :
  ?quiet:bool ->
  config ->
  params:Detect.Timeout.params ->
  seed:int ->
  Plan.t ->
  Detect.Runner.report
(** One deterministic run (the shrinker's replay function).  [quiet]
    defaults to true — pass false to retain the trace. *)

val merge : report -> report -> report
(** Associative aggregation (see {!Campaign.merge}). *)

val run : ?jobs:int -> ?on_outcome:(outcome -> unit) -> config -> report
(** The full sweep.  [jobs] (default 1) fans runs over that many
    domains; the report is identical — field for field, modulo timing
    — at every job count. *)

val pp_report : Format.formatter -> report -> unit

val pp_report_stable : Format.formatter -> report -> unit
(** {!pp_report} minus the timing header — byte-identical across job
    counts. *)
