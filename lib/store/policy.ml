type rule = { pids : int list option; from_ : int; until_ : int }

type t = {
  torn : rule list;
  sync_loss : rule list;
  io_error : rule list;
  stall : (rule * int) list;
}

let none = { torn = []; sync_loss = []; io_error = []; stall = [] }

let rule ?pids ~from_ ~until_ () =
  if until_ < from_ then invalid_arg "Store.Policy.rule: until_ < from_";
  { pids; from_; until_ }

let applies r ~pid ~now =
  now >= r.from_ && now < r.until_
  && (match r.pids with None -> true | Some ids -> List.mem pid ids)

let any_applies rs ~pid ~now = List.exists (fun r -> applies r ~pid ~now) rs

let torn_write t = any_applies t.torn
let sync_lost t = any_applies t.sync_loss
let io_erroring t = any_applies t.io_error

let stall_of t ~pid ~now =
  List.fold_left
    (fun acc (r, extra) -> if applies r ~pid ~now then acc + extra else acc)
    0 t.stall

let is_none t =
  t.torn = [] && t.sync_loss = [] && t.io_error = [] && t.stall = []
