(** A simulated per-replica disk with write-ahead-log semantics.

    The model separates three regions:
    - the {b unsynced buffer}: records appended but not yet fsynced;
    - the {b syncing region}: records handed to an in-flight (stalled)
      fsync that has not completed yet;
    - the {b durable region}: records a completed fsync has hardened.

    {!crash} drops the first two — lose-unsynced-tail — and invalidates
    in-flight fsyncs.  {!read_back} returns the durable records in
    append order, stopping at the first torn record.  All fault
    behaviour (torn writes, lying fsyncs, IO errors, stalls) comes from
    the {!Policy.t} thunk consulted at operation time, so behaviour is a
    pure function of [(pid, virtual time)] and runs replay
    deterministically.

    fsync durability is signalled through a continuation [k] rather
    than by blocking, because disk users (network and timer handlers)
    cannot suspend: [k] runs when the batch is actually durable —
    immediately if there is no stall window, [extra] virtual time later
    if there is one, and never if the disk crashes first. *)

type record = {
  seq : int;  (** monotonically increasing append sequence number *)
  appended_at : int;  (** virtual time of the append *)
  data : string;
  torn : bool;  (** written inside a torn-write window *)
}

type snapshot = { upto : int; taken_at : int; payload : string }

type stats = {
  appends : int;
  fsyncs : int;
  io_errors : int;
  torn_records : int;
  lost_records : int;  (** dropped by crashes (unsynced tail) *)
  sync_lost_records : int;  (** dropped by lying fsyncs *)
  snapshots_taken : int;
  compacted_records : int;
  bytes_appended : int;
  stalled_time : int;  (** total extra virtual time spent in stalls *)
}

type t

val create :
  engine:Dsim.Engine.t -> pid:int -> ?policy:(unit -> Policy.t) -> unit -> t
(** [policy] is a thunk so the active fault policy can be swapped
    mid-run (the nemesis interpreter does exactly that). Default: the
    honest disk, {!Policy.none}. *)

val pid : t -> int

val epoch : t -> int
(** Crash counter. An operation scheduled before a crash can detect the
    crash by comparing epochs. *)

val io_erroring : t -> bool
(** True while an io-error window is open for this disk: appends and
    fsyncs will fail. Lets callers avoid mutating in-memory state they
    cannot persist. *)

val append : t -> string -> (int, [ `Io_error ]) result
(** Buffered append; returns the record's [seq]. Not durable until a
    subsequent {!fsync} completes. *)

val fsync : t -> k:(unit -> unit) -> (unit, [ `Io_error ]) result
(** Harden everything appended so far. [Ok ()] means the fsync was
    {e accepted}; [k] fires when the data is durable (possibly later,
    under a stall; never, if the disk crashes first or a sync-loss
    window silently dropped the batch — in the latter case [k] still
    fires, because the disk lies). *)

val crash : t -> unit
(** Lose the unsynced tail and any batches still in-flight; bump
    {!epoch} so stale fsync completions are discarded. Durable records
    and installed snapshots survive. *)

val read_back : t -> record list
(** Durable records in append order, stopping before the first torn
    record (a torn write corrupts the log from that point on). *)

val records : t -> record list
(** All durable records in append order, torn ones included — for
    inspection/dump, not for recovery. *)

val unsynced_count : t -> int

val save_snapshot :
  t -> upto:int -> string -> k:(unit -> unit) -> (unit, [ `Io_error ]) result
(** Write a snapshot covering state up to slot/index [upto]. Modeled as
    write-to-side-file + atomic rename: immune to torn writes and sync
    lies, but a crash before the (possibly stalled) install drops it.
    [k] fires once the snapshot is installed. *)

val snapshots : t -> snapshot list
(** Installed snapshots, oldest first. *)

val latest_snapshot : t -> snapshot option

val compact : t -> upto_seq:int -> unit
(** Drop durable records with [seq <= upto_seq]. Callers must only
    compact records covered by an installed snapshot. *)

val stats : t -> stats
val pp_record : Format.formatter -> record -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
val pp_stats : Format.formatter -> stats -> unit
