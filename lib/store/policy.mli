(** Storage fault policies: a pure, virtual-time-keyed description of
    what a replica's disk does wrong, and when.

    A policy is data, in the same spirit as the nemesis message windows:
    each fault class is a list of [(pids, from, until)] windows, and the
    disk consults the policy with its own id and the current virtual
    time at every operation.  Because verdicts depend only on
    [(pid, now)], a replayed run sees identical storage behaviour —
    which is what makes storage-fault campaigns shrinkable.

    Fault classes:
    - {b torn}: a record appended inside the window is torn — the write
      "succeeds", but {!Disk.read_back} stops at the corrupt record, so
      it and everything after it are lost to recovery (silent
      corruption, detected only at read time).
    - {b sync_loss}: an fsync inside the window {e lies} — it reports
      success but the records it was asked to harden are dropped.  The
      firmware-lies model; only detectable after a crash.
    - {b io_error}: appends and fsyncs inside the window fail visibly
      (the disk returns [Error `Io_error]); callers are expected to
      retry after the window.
    - {b stall}: fsyncs inside the window take [extra] additional
      virtual time before the data is actually durable; a crash inside
      the stall loses the batch even though fsync was called. *)

type rule = {
  pids : int list option;  (** disks the rule applies to; [None] = all *)
  from_ : int;  (** window start (inclusive), virtual time *)
  until_ : int;  (** window end (exclusive) *)
}

type t = {
  torn : rule list;
  sync_loss : rule list;
  io_error : rule list;
  stall : (rule * int) list;  (** window, extra virtual time per fsync *)
}

val none : t
(** The honest disk: no faults (unsynced data is still lost on crash —
    that is the storage model, not a fault). *)

val rule : ?pids:int list -> from_:int -> until_:int -> unit -> rule
(** @raise Invalid_argument if [until_ < from_]. *)

val applies : rule -> pid:int -> now:int -> bool

val torn_write : t -> pid:int -> now:int -> bool
val sync_lost : t -> pid:int -> now:int -> bool
val io_erroring : t -> pid:int -> now:int -> bool

val stall_of : t -> pid:int -> now:int -> int
(** Total extra virtual time an fsync started now must wait (0 when no
    stall window is open). *)

val is_none : t -> bool
