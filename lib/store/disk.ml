type record = { seq : int; appended_at : int; data : string; torn : bool }
type snapshot = { upto : int; taken_at : int; payload : string }

type stats = {
  appends : int;
  fsyncs : int;
  io_errors : int;
  torn_records : int;
  lost_records : int;
  sync_lost_records : int;
  snapshots_taken : int;
  compacted_records : int;
  bytes_appended : int;
  stalled_time : int;
}

type t = {
  engine : Dsim.Engine.t;
  pid : int;
  policy : unit -> Policy.t;
  mutable next_seq : int;
  mutable durable : record list; (* newest first *)
  mutable unsynced : record list; (* newest first; buffered, not yet fsynced *)
  mutable syncing : record list; (* handed to an in-flight (stalled) fsync *)
  mutable snaps : snapshot list; (* newest first *)
  mutable epoch : int; (* bumped on crash; invalidates in-flight fsyncs *)
  mutable s_appends : int;
  mutable s_fsyncs : int;
  mutable s_io_errors : int;
  mutable s_torn : int;
  mutable s_lost : int;
  mutable s_sync_lost : int;
  mutable s_snaps : int;
  mutable s_compacted : int;
  mutable s_bytes : int;
  mutable s_stalled : int;
}

let create ~engine ~pid ?(policy = fun () -> Policy.none) () =
  {
    engine;
    pid;
    policy;
    next_seq = 0;
    durable = [];
    unsynced = [];
    syncing = [];
    snaps = [];
    epoch = 0;
    s_appends = 0;
    s_fsyncs = 0;
    s_io_errors = 0;
    s_torn = 0;
    s_lost = 0;
    s_sync_lost = 0;
    s_snaps = 0;
    s_compacted = 0;
    s_bytes = 0;
    s_stalled = 0;
  }

let pid t = t.pid
let epoch t = t.epoch
let now t = Dsim.Engine.now t.engine

let io_erroring t = Policy.io_erroring (t.policy ()) ~pid:t.pid ~now:(now t)

let append t data =
  if io_erroring t then begin
    t.s_io_errors <- t.s_io_errors + 1;
    Error `Io_error
  end
  else begin
    let torn = Policy.torn_write (t.policy ()) ~pid:t.pid ~now:(now t) in
    let r = { seq = t.next_seq; appended_at = now t; data; torn } in
    t.next_seq <- t.next_seq + 1;
    t.unsynced <- r :: t.unsynced;
    t.s_appends <- t.s_appends + 1;
    t.s_bytes <- t.s_bytes + String.length data;
    if torn then t.s_torn <- t.s_torn + 1;
    Ok r.seq
  end

(* Commit [batch] to the durable region, unless the disk crashed since
   the fsync was issued (epoch mismatch). *)
let commit_batch t ~epoch batch k =
  if t.epoch = epoch then begin
    t.syncing <- List.filter (fun r -> not (List.memq r batch)) t.syncing;
    t.durable <- batch @ t.durable;
    k ()
  end

let fsync t ~k =
  if io_erroring t then begin
    t.s_io_errors <- t.s_io_errors + 1;
    Error `Io_error
  end
  else begin
    t.s_fsyncs <- t.s_fsyncs + 1;
    let batch = t.unsynced in
    t.unsynced <- [];
    let pol = t.policy () in
    if Policy.sync_lost pol ~pid:t.pid ~now:(now t) then begin
      (* The firmware lies: report success, drop the batch. *)
      t.s_sync_lost <- t.s_sync_lost + List.length batch;
      k ();
      Ok ()
    end
    else begin
      let extra = Policy.stall_of pol ~pid:t.pid ~now:(now t) in
      if extra = 0 then begin
        t.durable <- batch @ t.durable;
        k ();
        Ok ()
      end
      else begin
        t.s_stalled <- t.s_stalled + extra;
        t.syncing <- batch @ t.syncing;
        let epoch = t.epoch in
        Dsim.Engine.schedule t.engine ~delay:extra (fun () ->
            commit_batch t ~epoch batch k);
        Ok ()
      end
    end
  end

let crash t =
  let lost = List.length t.unsynced + List.length t.syncing in
  t.s_lost <- t.s_lost + lost;
  t.unsynced <- [];
  t.syncing <- [];
  t.epoch <- t.epoch + 1

let records t = List.sort (fun a b -> compare a.seq b.seq) t.durable

(* Replay stops at the first torn record: a torn write corrupts the WAL
   from that point on, so everything at or after it is unreadable. *)
let read_back t =
  let rec take = function
    | r :: rest when not r.torn -> r :: take rest
    | _ -> []
  in
  take (records t)

let unsynced_count t = List.length t.unsynced + List.length t.syncing

let save_snapshot t ~upto payload ~k =
  if io_erroring t then begin
    t.s_io_errors <- t.s_io_errors + 1;
    Error `Io_error
  end
  else begin
    let snap = { upto; taken_at = now t; payload } in
    let install () =
      t.snaps <- snap :: t.snaps;
      t.s_snaps <- t.s_snaps + 1;
      k ()
    in
    (* Snapshots are written to a side file and atomically renamed into
       place, so they are not subject to torn writes or sync-lies; a
       crash before the rename simply drops the snapshot. *)
    let extra = Policy.stall_of (t.policy ()) ~pid:t.pid ~now:(now t) in
    if extra = 0 then install ()
    else begin
      t.s_stalled <- t.s_stalled + extra;
      let epoch = t.epoch in
      Dsim.Engine.schedule t.engine ~delay:extra (fun () ->
          if t.epoch = epoch then install ());
    end;
    Ok ()
  end

let snapshots t = List.rev t.snaps
let latest_snapshot t = match t.snaps with [] -> None | s :: _ -> Some s

let compact t ~upto_seq =
  let keep, drop = List.partition (fun r -> r.seq > upto_seq) t.durable in
  t.durable <- keep;
  t.s_compacted <- t.s_compacted + List.length drop

let stats t =
  {
    appends = t.s_appends;
    fsyncs = t.s_fsyncs;
    io_errors = t.s_io_errors;
    torn_records = t.s_torn;
    lost_records = t.s_lost;
    sync_lost_records = t.s_sync_lost;
    snapshots_taken = t.s_snaps;
    compacted_records = t.s_compacted;
    bytes_appended = t.s_bytes;
    stalled_time = t.s_stalled;
  }

let pp_record ppf r =
  Fmt.pf ppf "#%d @%d %s%s" r.seq r.appended_at
    (if r.torn then "[torn] " else "")
    r.data

let pp_snapshot ppf s =
  Fmt.pf ppf "snapshot upto=%d @%d (%d bytes)" s.upto s.taken_at
    (String.length s.payload)

let pp_stats ppf s =
  Fmt.pf ppf
    "appends=%d fsyncs=%d io-errors=%d torn=%d lost=%d sync-lost=%d \
     snapshots=%d compacted=%d bytes=%d stalled=%d"
    s.appends s.fsyncs s.io_errors s.torn_records s.lost_records
    s.sync_lost_records s.snapshots_taken s.compacted_records s.bytes_appended
    s.stalled_time
