(* A set of strings.  Add/Remove report whether they changed the set
   (was-absent / was-present), Mem reports membership — all three
   responses depend on the whole prior history, so reordered or lost
   operations are visible. *)

module S = Set.Make (String)

type state = S.t
type op = Add of string | Remove of string | Mem of string
type resp = Flag of bool

let name = "set"
let init = S.empty

let apply st = function
  | Add k -> (S.add k st, Flag (not (S.mem k st)))
  | Remove k -> (S.remove k st, Flag (S.mem k st))
  | Mem k -> (st, Flag (S.mem k st))

let pp_op ppf = function
  | Add k -> Format.fprintf ppf "ADD %s" k
  | Remove k -> Format.fprintf ppf "REMOVE %s" k
  | Mem k -> Format.fprintf ppf "MEM %s" k

let op_to_string = function
  | Add k -> Printf.sprintf "A %S" k
  | Remove k -> Printf.sprintf "R %S" k
  | Mem k -> Printf.sprintf "M %S" k

let op_of_string s =
  if String.length s < 2 then invalid_arg ("Sset.op_of_string: " ^ s)
  else
    let rest = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'A' -> Scanf.sscanf rest " %S" (fun k -> Add k)
    | 'R' -> Scanf.sscanf rest " %S" (fun k -> Remove k)
    | 'M' -> Scanf.sscanf rest " %S" (fun k -> Mem k)
    | _ -> invalid_arg ("Sset.op_of_string: " ^ s)

let resp_to_string (Flag b) = string_of_bool b

let state_to_string st =
  let xs = S.elements st in
  String.concat " "
    (string_of_int (List.length xs) :: List.map (Printf.sprintf "%S") xs)

let state_of_string s =
  let ib = Scanf.Scanning.from_string s in
  let n = Scanf.bscanf ib " %d" Fun.id in
  List.init n (fun _ -> Scanf.bscanf ib " %S" Fun.id) |> S.of_list

let digest = state_to_string

let gen_op ~rng ~key ~tag:_ =
  let roll = Dsim.Rng.int rng 100 in
  if roll < 45 then Add key else if roll < 70 then Remove key else Mem key
