(* Name -> sequential object lookup, for CLI flags and sweep drivers. *)

let all : (string * Spec.packed) list =
  [
    ("queue", (module Queue : Spec.S));
    ("stack", (module Stack : Spec.S));
    ("counter", (module Counter : Spec.S));
    ("set", (module Sset : Spec.S));
    ("index", (module Index : Spec.S));
    ("kv", (module Kv : Spec.S));
  ]

let names = List.map fst all

let find name =
  match List.assoc_opt name all with
  | Some o -> o
  | None ->
      invalid_arg
        (Printf.sprintf "Obj.Registry.find: unknown object %S (have: %s)" name
           (String.concat ", " names))
