(* The shared-memory side of the universal construction: Herlihy's
   lock-free log over atomic registers and single-use consensus cells
   (SNIPPETS Snippet 2, the textbook construction).

   Operations live in nodes; the log is the chain of [next] pointers
   from a sentinel root.  To append, a process finds the chain's
   current maximum-sequence node among the per-process head pointers,
   runs consensus on that node's [dec] cell to decide its successor,
   then — win or lose — publishes the outcome (sets the successor's
   sequence number and its own head pointer).  That helping step is
   what makes the loop lock-free: losing an iteration means some other
   operation was appended, so my k-th attempt competes on a node of
   sequence >= k and the loop runs at most [total_ops + 2] iterations.

   The [broken] variant replaces the consensus step with a plain
   register write of the [next] pointer: last-write-wins.  On
   sequential schedules it is indistinguishable from the honest
   construction; under a racing schedule the loser's node silently
   falls out of the chain even though its caller got a response — the
   canonical lost-update, and exactly what the Wing–Gong checker (and
   the model checker's explorer) must convict. *)

module SW = Sharedmem.World
module R = Sharedmem.World.Reg

module Make (O : Spec.S) = struct
  module Wgc = Wg.Make (O)

  type node = {
    n_cid : int;
    n_op : O.op option;  (* None only for the sentinel root *)
    n_seq : int R.reg;  (* 0 until the node is appended *)
    n_next : node option R.reg;
    n_dec : node R.cell;  (* consensus on this node's successor *)
  }

  type t = {
    n : int;
    broken : bool;
    root : node;
    head : node R.reg array;
    clock : int ref;  (* simulation-level event counter (not a register) *)
    mutable events : Wgc.event list;
  }

  let create ~n ?(broken = false) () =
    let root =
      {
        n_cid = -1;
        n_op = None;
        n_seq = R.make 1;
        n_next = R.make None;
        n_dec = R.cell ();
      }
    in
    {
      n;
      broken;
      root;
      head = Array.init n (fun _ -> R.make root);
      clock = ref 0;
      events = [];
    }

  let tick t =
    incr t.clock;
    !(t.clock)

  (* Execute one operation to completion: append [op]'s node to the
     chain, then compute its response by replaying the chain from the
     root.  Every register access takes a scheduler step, so the
     interleaving adversary (Explore schedules, the Mcheck oracle) can
     pause this process between any two accesses. *)
  let exec t (p : SW.proc) ~cid op =
    let invoked = tick t in
    let mine =
      {
        n_cid = cid;
        n_op = Some op;
        n_seq = R.make 0;
        n_next = R.make None;
        n_dec = R.cell ();
      }
    in
    while R.read p mine.n_seq = 0 do
      (* the chain's tail: maximum sequence among the published heads *)
      let before = ref t.root in
      let best = ref 0 in
      for j = 0 to t.n - 1 do
        let h = R.read p t.head.(j) in
        let s = R.read p h.n_seq in
        if s > !best then begin
          before := h;
          best := s
        end
      done;
      let after =
        if t.broken then begin
          (* BUG: plain write instead of consensus — concurrent
             appenders both "win" and the last write erases the other *)
          R.write p !before.n_next (Some mine);
          mine
        end
        else R.decide p !before.n_dec mine
      in
      R.write p !before.n_next (Some after);
      let bseq = R.read p !before.n_seq in
      R.write p after.n_seq (bseq + 1);
      R.write p t.head.(p.SW.me) after
    done;
    (* replay from the root for the response; my node's position in the
       chain is fixed once decided, so this traversal is stable *)
    let rec replay st node =
      if node == mine then snd (O.apply st op)
      else
        let st =
          match node.n_op with None -> st | Some o -> fst (O.apply st o)
        in
        match R.read p node.n_next with
        | Some nxt -> replay st nxt
        | None ->
            (* chain ends without my node (only possible when broken):
               answer as if appended here *)
            snd (O.apply st op)
    in
    let resp = replay O.init t.root in
    let returned = tick t in
    t.events <-
      {
        Wgc.cid;
        op;
        resp = Some (O.resp_to_string resp);
        invoked;
        returned = Some returned;
      }
      :: t.events;
    resp

  let events t = List.rev t.events

  (* Post-run, step-free inspection. *)
  let chain t =
    let rec go acc node =
      let acc =
        match node.n_op with None -> acc | Some o -> (node.n_cid, o) :: acc
      in
      match R.peek node.n_next with None -> List.rev acc | Some nx -> go acc nx
    in
    go [] t.root

  let final_digest t =
    O.digest
      (List.fold_left (fun st (_, o) -> fst (O.apply st o)) O.init (chain t))

  let check ?max_states t = Wgc.check ?max_states (events t)
  let violations ?max_states t = Wgc.violations ?max_states (events t)

  (* A worst-case step budget per process, for {!Explore} schedules
     (over-budget schedules raise; unused slots are harmless).  Per
     append iteration: 1 loop guard + 2n scan + 1 decide + 3
     publication accesses; iterations <= total + 2 by lock-freedom;
     plus the response replay (<= total + 2 pointer reads). *)
  let budget ~n ~per_proc ~total =
    per_proc * (((total + 2) * ((2 * n) + 7)) + total + 8)

  type report = { samples : int; violations : string list }

  (* Run [ops.(i)] on process [i] under [samples] uniformly random
     interleavings and Wing–Gong-check every run. *)
  let check_sampled ?(broken = false) ?max_states ~ops ~samples ~seed () =
    let n = Array.length ops in
    let total = Array.fold_left (fun a l -> a + List.length l) 0 ops in
    let counts =
      Array.map (fun l -> budget ~n ~per_proc:(List.length l) ~total) ops
    in
    let rng = Dsim.Rng.create seed in
    let bad = ref [] in
    for s = 0 to samples - 1 do
      let t = create ~n ~broken () in
      let schedule = Sharedmem.Explore.random_schedule ~counts ~rng in
      ignore
        (Sharedmem.Explore.run_schedule ~n ~schedule ~body:(fun p ->
             List.iteri
               (fun k o ->
                 ignore (exec t p ~cid:((p.SW.me lsl 20) lor k) o : O.resp))
               ops.(p.SW.me))
          : Dsim.Engine.outcome);
      if List.length !bad < 5 then
        List.iter
          (fun v -> bad := Printf.sprintf "sample %d: %s" s v :: !bad)
          (violations ?max_states t)
    done;
    { samples; violations = List.rev !bad }
end
