(* FIFO queue of strings.  The batched two-list representation keeps
   [apply] O(1) amortized; every externally visible string (digest,
   snapshot) is computed from the canonical element order, so two
   states holding the same queue differently batched are
   indistinguishable. *)

type state = { front : string list; back : string list }
type op = Enq of string | Deq
type resp = Enq_ok | Deq_got of string option

let name = "queue"
let init = { front = []; back = [] }
let to_list st = st.front @ List.rev st.back

let apply st = function
  | Enq v -> ({ st with back = v :: st.back }, Enq_ok)
  | Deq -> (
      match st.front with
      | x :: f -> ({ st with front = f }, Deq_got (Some x))
      | [] -> (
          match List.rev st.back with
          | [] -> (st, Deq_got None)
          | x :: f -> ({ front = f; back = [] }, Deq_got (Some x))))

let pp_op ppf = function
  | Enq v -> Format.fprintf ppf "ENQ %s" v
  | Deq -> Format.fprintf ppf "DEQ"

let op_to_string = function Enq v -> Printf.sprintf "E %S" v | Deq -> "D"

let op_of_string s =
  if s = "D" then Deq
  else if String.length s > 1 && s.[0] = 'E' then
    Scanf.sscanf s "E %S" (fun v -> Enq v)
  else invalid_arg ("Queue.op_of_string: " ^ s)

let resp_to_string = function
  | Enq_ok -> "ok"
  | Deq_got None -> "deq -"
  | Deq_got (Some v) -> Printf.sprintf "deq %S" v

let state_to_string st =
  let xs = to_list st in
  String.concat " "
    (string_of_int (List.length xs) :: List.map (Printf.sprintf "%S") xs)

let state_of_string s =
  let ib = Scanf.Scanning.from_string s in
  let n = Scanf.bscanf ib " %d" Fun.id in
  { front = List.init n (fun _ -> Scanf.bscanf ib " %S" Fun.id); back = [] }

let digest = state_to_string

let gen_op ~rng ~key:_ ~tag =
  if Dsim.Rng.int rng 100 < 60 then Enq tag else Deq
