(* LIFO stack of strings; state is the stack top-first. *)

type state = string list
type op = Push of string | Pop
type resp = Push_ok | Pop_got of string option

let name = "stack"
let init = []

let apply st = function
  | Push v -> (v :: st, Push_ok)
  | Pop -> (
      match st with [] -> ([], Pop_got None) | x :: rest -> (rest, Pop_got (Some x)))

let pp_op ppf = function
  | Push v -> Format.fprintf ppf "PUSH %s" v
  | Pop -> Format.fprintf ppf "POP"

let op_to_string = function Push v -> Printf.sprintf "U %S" v | Pop -> "P"

let op_of_string s =
  if s = "P" then Pop
  else if String.length s > 1 && s.[0] = 'U' then
    Scanf.sscanf s "U %S" (fun v -> Push v)
  else invalid_arg ("Stack.op_of_string: " ^ s)

let resp_to_string = function
  | Push_ok -> "ok"
  | Pop_got None -> "pop -"
  | Pop_got (Some v) -> Printf.sprintf "pop %S" v

let state_to_string st =
  String.concat " "
    (string_of_int (List.length st) :: List.map (Printf.sprintf "%S") st)

let state_of_string s =
  let ib = Scanf.Scanning.from_string s in
  let n = Scanf.bscanf ib " %d" Fun.id in
  List.init n (fun _ -> Scanf.bscanf ib " %S" Fun.id)

let digest = state_to_string

let gen_op ~rng ~key:_ ~tag =
  if Dsim.Rng.int rng 100 < 60 then Push tag else Pop
