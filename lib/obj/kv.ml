(* The replicated key-value store, re-homed from [Rsm.App] as just
   another sequential object.  The wire codec (G/S/C0/C1 tags, [%S]
   quoting) and the digest/snapshot formats are unchanged from the old
   App module, so WALs and traces read the same. *)

module M = Map.Make (String)

type state = string M.t

type op =
  | Get of string
  | Set of string * string
  | Cas of { key : string; expect : string option; update : string }

type resp = Got of string option | Done | Cas_result of bool

let name = "kv"
let init = M.empty

let apply st = function
  | Get k -> (st, Got (M.find_opt k st))
  | Set (k, v) -> (M.add k v st, Done)
  | Cas { key; expect; update } ->
      if M.find_opt key st = expect then (M.add key update st, Cas_result true)
      else (st, Cas_result false)

let pp_op ppf = function
  | Get k -> Format.fprintf ppf "GET %s" k
  | Set (k, v) -> Format.fprintf ppf "SET %s=%s" k v
  | Cas { key; expect; update } ->
      Format.fprintf ppf "CAS %s %s->%s" key
        (Option.value expect ~default:"\xe2\x88\x85")
        update

(* [%S] quoting makes the encoding total: any key/value roundtrips,
   including spaces and newlines. *)
let op_to_string = function
  | Get k -> Printf.sprintf "G %S" k
  | Set (k, v) -> Printf.sprintf "S %S %S" k v
  | Cas { key; expect = None; update } -> Printf.sprintf "C0 %S %S" key update
  | Cas { key; expect = Some e; update } ->
      Printf.sprintf "C1 %S %S %S" key e update

let op_of_string s =
  match String.index_opt s ' ' with
  | None -> invalid_arg ("Kv.op_of_string: " ^ s)
  | Some i -> (
      let tag = String.sub s 0 i in
      let rest = String.sub s i (String.length s - i) in
      match tag with
      | "G" -> Scanf.sscanf rest " %S" (fun k -> Get k)
      | "S" -> Scanf.sscanf rest " %S %S" (fun k v -> Set (k, v))
      | "C0" ->
          Scanf.sscanf rest " %S %S" (fun key update ->
              Cas { key; expect = None; update })
      | "C1" ->
          Scanf.sscanf rest " %S %S %S" (fun key e update ->
              Cas { key; expect = Some e; update })
      | _ -> invalid_arg ("Kv.op_of_string: " ^ s))

let resp_to_string = function
  | Got None -> "got -"
  | Got (Some v) -> Printf.sprintf "got %S" v
  | Done -> "done"
  | Cas_result b -> Printf.sprintf "cas %b" b

let digest st =
  M.bindings st |> List.map (fun (k, v) -> k ^ "=" ^ v) |> String.concat ";"

let state_to_string st =
  M.bindings st
  |> List.map (fun (k, v) -> Printf.sprintf "%S %S" k v)
  |> String.concat ";"

let state_of_string s =
  if s = "" then M.empty
  else
    String.split_on_char ';' s
    |> List.fold_left
         (fun acc pair -> Scanf.sscanf pair " %S %S" (fun k v -> M.add k v acc))
         M.empty

let gen_op ~rng ~key ~tag =
  let roll = Dsim.Rng.int rng 100 in
  if roll < 60 then Set (key, tag)
  else if roll < 85 then Get key
  else Cas { key; expect = None; update = "cas-" ^ tag }
