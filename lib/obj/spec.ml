(** The sequential-object signature of the universal construction.

    Anything implementing {!S} can be lifted, unchanged, onto the
    replicated consensus log ({!Replicated}) or onto the shared-memory
    lock-free log ({!Smem}), and checked for linearizability by the
    generic Wing–Gong checker ({!Wg}).

    Two disciplines the constructions rely on:

    - {b purity}: [apply] must be a pure function of [(state, op)] —
      states are persistent values, never mutated in place.  The
      replicated runner snapshots and replays them, and the checker
      branches over many alternative futures of the same state.
    - {b single-line codecs}: every [*_to_string] must emit a string
      with no raw newline (use [%S] quoting for embedded data), because
      encodings travel inside one-record-per-line WALs and snapshot
      payloads.  [digest] must be {e canonical}: two states that are
      equal as abstract objects must produce equal digests, whatever
      internal representation they carry. *)

module type S = sig
  type state
  type op
  type resp

  val name : string
  (** Short lowercase identifier, used by registries and CLIs. *)

  val init : state
  val apply : state -> op -> state * resp
  (** The entire sequential specification. *)

  val op_to_string : op -> string
  val op_of_string : string -> op
  (** Total codec: [op_of_string (op_to_string o)] must equal [o]. *)

  val resp_to_string : resp -> string
  (** Canonical response encoding — the Wing–Gong checker compares
      observed responses to specification responses by this string. *)

  val state_to_string : state -> string
  val state_of_string : string -> state
  (** Snapshot codec; [state_of_string ""] need not be supported, the
      constructions always snapshot through [state_to_string]. *)

  val digest : state -> string
  (** Canonical state fingerprint (replica-divergence checks and
      checker memoization). *)

  val pp_op : Format.formatter -> op -> unit

  val gen_op : rng:Dsim.Rng.t -> key:string -> tag:string -> op
  (** One operation of this object's characteristic mix, for workload
      generators: [key] is a (Zipf-skewed) contention point chosen by
      the caller, [tag] a run-unique string for fresh values.  Objects
      without a keyed interface (queue, stack, counter) may ignore
      [key]. *)
end

type packed = (module S)

let name (module O : S) = O.name
