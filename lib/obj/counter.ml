(* A fetch-and-add counter.  [Add] returns the post-increment value, so
   every mutation is observable — lost updates show up directly in
   responses, which makes this the sharpest instance for catching a
   construction that drops log entries. *)

type state = int
type op = Add of int | Read
type resp = Count of int

let name = "counter"
let init = 0

let apply st = function
  | Add d -> (st + d, Count (st + d))
  | Read -> (st, Count st)

let pp_op ppf = function
  | Add d -> Format.fprintf ppf "ADD %d" d
  | Read -> Format.fprintf ppf "READ"

let op_to_string = function Add d -> Printf.sprintf "A %d" d | Read -> "R"

let op_of_string s =
  if s = "R" then Read
  else if String.length s > 1 && s.[0] = 'A' then
    Scanf.sscanf s "A %d" (fun d -> Add d)
  else invalid_arg ("Counter.op_of_string: " ^ s)

let resp_to_string (Count n) = Printf.sprintf "= %d" n
let state_to_string = string_of_int
let state_of_string = int_of_string
let digest = state_to_string

let gen_op ~rng ~key:_ ~tag:_ =
  if Dsim.Rng.int rng 100 < 70 then Add (1 + Dsim.Rng.int rng 9) else Read
