(* Lift a sequential object onto the replicated consensus log: the
   universal construction over [Rsm].  The runner totally orders the
   object's operations and applies them at every replica; this module
   supplies the [Rsm.Runner.app] record and turns the runner's recorded
   history into a Wing–Gong verdict.

   The app state carries the object's state plus a count of applied
   {e state-changing} operations.  The count exists for the [drop_nth]
   mutant: a broken universal construction that computes the n-th
   mutating operation's response but discards its state change — i.e.
   it loses a log entry after acking it.  (Counting mutations rather
   than raw log positions keeps the mutant observable: dropping a
   read's "state change" would be a no-op.)  Every replica applies the
   same ordered log, so every replica drops the same entry: digests
   still agree, the total-order checker stays silent, and only the
   linearizability checker (which compares responses against the
   sequential spec) convicts it. *)

module Make (O : Spec.S) = struct
  module W = Wg.Make (O)

  type state = { inner : O.state; seen : int }

  let app ?drop_nth () : (O.op, state) Rsm.Runner.app =
    let apply =
      match drop_nth with
      | None ->
          fun st op ->
            let inner', resp = O.apply st.inner op in
            ({ inner = inner'; seen = st.seen + 1 }, O.resp_to_string resp)
      | Some n ->
          (* [seen] counts mutations here, not log entries, so the digest
             comparison below is what keeps the drop observable. *)
          fun st op ->
            let inner', resp = O.apply st.inner op in
            let effectful =
              not (String.equal (O.digest inner') (O.digest st.inner))
            in
            let inner' = if effectful && n = st.seen then st.inner else inner' in
            ( {
                inner = inner';
                seen = (if effectful then st.seen + 1 else st.seen);
              },
              O.resp_to_string resp )
    in
    let state_to_string st =
      string_of_int st.seen ^ " " ^ O.state_to_string st.inner
    in
    let state_of_string s =
      match String.index_opt s ' ' with
      | None -> invalid_arg ("Replicated: malformed snapshot: " ^ s)
      | Some i ->
          {
            seen = int_of_string (String.sub s 0 i);
            inner =
              O.state_of_string
                (String.sub s (i + 1) (String.length s - i - 1));
          }
    in
    {
      Rsm.Runner.name = O.name;
      init = { inner = O.init; seen = 0 };
      apply;
      op_to_string = O.op_to_string;
      op_of_string = O.op_of_string;
      state_to_string;
      state_of_string;
      digest = (fun st -> O.digest st.inner);
    }

  let events_of_history (hist : O.op Rsm.Runner.hist list) : W.event list =
    List.map
      (fun (h : O.op Rsm.Runner.hist) ->
        {
          W.cid = h.Rsm.Runner.h_cid;
          op = h.h_op;
          resp = h.h_resp;
          invoked = h.h_invoked;
          returned = h.h_returned;
        })
      hist

  let check ?max_states hist = W.check ?max_states (events_of_history hist)

  let violations ?max_states hist =
    W.violations ?max_states (events_of_history hist)
end
