(* A small secondary-index store: a primary map key -> value plus an
   inverted index value -> key set, kept consistent by every mutation.
   [Find] queries by value through the index; the digest covers both
   maps, so a construction that lets them drift is caught by replica
   divergence even before the linearizability checker looks at
   responses. *)

module M = Map.Make (String)
module S = Set.Make (String)

type state = { fwd : string M.t; inv : S.t M.t }

type op = Put of string * string | Del of string | Get of string | Find of string
type resp = Put_done | Deleted of bool | Got of string option | Keys of string list

let name = "index"
let init = { fwd = M.empty; inv = M.empty }

let inv_remove inv v k =
  match M.find_opt v inv with
  | None -> inv
  | Some ks ->
      let ks = S.remove k ks in
      if S.is_empty ks then M.remove v inv else M.add v ks inv

let inv_add inv v k =
  M.update v
    (function None -> Some (S.singleton k) | Some ks -> Some (S.add k ks))
    inv

let apply st = function
  | Put (k, v) ->
      let inv =
        match M.find_opt k st.fwd with
        | Some old -> inv_remove st.inv old k
        | None -> st.inv
      in
      ({ fwd = M.add k v st.fwd; inv = inv_add inv v k }, Put_done)
  | Del k -> (
      match M.find_opt k st.fwd with
      | None -> (st, Deleted false)
      | Some old ->
          ({ fwd = M.remove k st.fwd; inv = inv_remove st.inv old k }, Deleted true))
  | Get k -> (st, Got (M.find_opt k st.fwd))
  | Find v ->
      let ks =
        match M.find_opt v st.inv with None -> [] | Some ks -> S.elements ks
      in
      (st, Keys ks)

let pp_op ppf = function
  | Put (k, v) -> Format.fprintf ppf "PUT %s=%s" k v
  | Del k -> Format.fprintf ppf "DEL %s" k
  | Get k -> Format.fprintf ppf "GET %s" k
  | Find v -> Format.fprintf ppf "FIND %s" v

let op_to_string = function
  | Put (k, v) -> Printf.sprintf "P %S %S" k v
  | Del k -> Printf.sprintf "D %S" k
  | Get k -> Printf.sprintf "G %S" k
  | Find v -> Printf.sprintf "F %S" v

let op_of_string s =
  if String.length s < 2 then invalid_arg ("Index.op_of_string: " ^ s)
  else
    let rest = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'P' -> Scanf.sscanf rest " %S %S" (fun k v -> Put (k, v))
    | 'D' -> Scanf.sscanf rest " %S" (fun k -> Del k)
    | 'G' -> Scanf.sscanf rest " %S" (fun k -> Get k)
    | 'F' -> Scanf.sscanf rest " %S" (fun v -> Find v)
    | _ -> invalid_arg ("Index.op_of_string: " ^ s)

let resp_to_string = function
  | Put_done -> "put"
  | Deleted b -> Printf.sprintf "del %b" b
  | Got None -> "got -"
  | Got (Some v) -> Printf.sprintf "got %S" v
  | Keys ks -> String.concat " " ("keys" :: List.map (Printf.sprintf "%S") ks)

let state_to_string st =
  (* the index is derived: serializing the primary map is canonical and
     complete, [state_of_string] rebuilds the inverse *)
  let kvs = M.bindings st.fwd in
  String.concat " "
    (string_of_int (List.length kvs)
    :: List.map (fun (k, v) -> Printf.sprintf "%S %S" k v) kvs)

let state_of_string s =
  let ib = Scanf.Scanning.from_string s in
  let n = Scanf.bscanf ib " %d" Fun.id in
  let pairs =
    List.init n (fun _ -> Scanf.bscanf ib " %S %S" (fun k v -> (k, v)))
  in
  List.fold_left (fun st (k, v) -> fst (apply st (Put (k, v)))) init pairs

let digest st =
  let fwd =
    M.bindings st.fwd
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
    |> String.concat ";"
  in
  let inv =
    M.bindings st.inv
    |> List.map (fun (v, ks) -> v ^ "<-" ^ String.concat "," (S.elements ks))
    |> String.concat ";"
  in
  fwd ^ "#" ^ inv

let gen_op ~rng ~key ~tag:_ =
  let group () = Printf.sprintf "g%d" (Dsim.Rng.int rng 3) in
  let roll = Dsim.Rng.int rng 100 in
  if roll < 45 then Put (key, group ())
  else if roll < 60 then Del key
  else if roll < 85 then Get key
  else Find (group ())
