(* The generic Wing–Gong linearizability checker.

   Input: one event per operation of a concurrent history — what was
   invoked when, what (encoded) response the client observed, and when
   it returned.  Question: is there a total order of the operations
   that (a) respects real time (if a returned before b was invoked, a
   precedes b), (b) is legal for the sequential specification, and
   (c) reproduces every completed operation's observed response?

   The search is the classic Wing–Gong recursion: repeatedly pick one
   of the minimal-in-real-time pending-or-completed operations, apply
   it to the specification state, and recurse, memoizing on
   (set-of-linearized-ops, canonical state digest) so equivalent
   interleavings are explored once.  Completed operations must be
   linearized with their observed response; operations that never
   returned (the client never saw an ack) may be linearized with any
   response or omitted entirely — their effect may or may not have
   taken place.

   Complexity: O(distinct (subset, state) pairs x history length) —
   worst case exponential in the number of concurrent operations, in
   practice tamed by the state digest (commuting prefixes collapse).
   Histories are capped at 62 events so the linearized set fits one
   immediate int. *)

module Make (O : Spec.S) = struct
  type event = {
    cid : int;
    op : O.op;
    resp : string option;
        (* the response the system produced (encoded with
           [O.resp_to_string]), if any was observed *)
    invoked : int;
    returned : int option;  (* None: pending — invoked but never acked *)
  }

  type verdict =
    | Linearizable of O.op list  (* a witness order *)
    | Illegal of int list
        (* completed cids that could not be linearized at the deepest
           point the search reached *)
    | Inconclusive  (* state budget exhausted before an answer *)

  type result = { verdict : verdict; states : int }

  exception Found of int list
  exception Budget

  let check ?(max_states = 2_000_000) (events : event list) =
    let evs = Array.of_list events in
    let n = Array.length evs in
    if n > 62 then invalid_arg "Wg.check: history larger than 62 events";
    let completed_mask = ref 0 in
    for i = 0 to n - 1 do
      if evs.(i).returned <> None then
        completed_mask := !completed_mask lor (1 lsl i)
    done;
    let completed_mask = !completed_mask in
    let states = ref 0 in
    let visited : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
    (* deepest stuck point, for the failure report *)
    let best_done = ref (-1) in
    let best_stuck = ref [] in
    let rec go mask st acc =
      if mask land completed_mask = completed_mask then raise (Found acc);
      incr states;
      if !states > max_states then raise Budget;
      let key = O.digest st ^ "|" ^ string_of_int mask in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        (* an op may go next iff no other still-unlinearized completed
           op returned strictly before it was invoked *)
        let min_ret = ref max_int in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 then
            match evs.(i).returned with
            | Some r when r < !min_ret -> min_ret := r
            | _ -> ()
        done;
        let progressed = ref false in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 && evs.(i).invoked <= !min_ret then begin
            let st', resp = O.apply st evs.(i).op in
            let legal =
              match evs.(i).returned with
              | None -> true  (* pending: any response is permissible *)
              | Some _ -> (
                  match evs.(i).resp with
                  | Some obs -> String.equal (O.resp_to_string resp) obs
                  | None -> false (* acked yet never applied: impossible *))
            in
            if legal then begin
              progressed := true;
              go (mask lor (1 lsl i)) st' (i :: acc)
            end
          end
        done;
        if not !progressed then begin
          let depth = List.length acc in
          if depth > !best_done then begin
            best_done := depth;
            best_stuck :=
              List.filter_map
                (fun i ->
                  if mask land (1 lsl i) = 0 && evs.(i).returned <> None then
                    Some evs.(i).cid
                  else None)
                (List.init n Fun.id)
          end
        end
      end
    in
    match go 0 O.init [] with
    | () -> { verdict = Illegal !best_stuck; states = !states }
    | exception Found acc ->
        {
          verdict =
            Linearizable (List.rev_map (fun i -> evs.(i).op) acc);
          states = !states;
        }
    | exception Budget -> { verdict = Inconclusive; states = !states }

  let violations ?max_states events =
    match (check ?max_states events).verdict with
    | Linearizable _ -> []
    | Illegal stuck ->
        [
          Printf.sprintf
            "wg: %s history not linearizable (stuck completed cids: %s)" O.name
            (String.concat "," (List.map string_of_int stuck));
        ]
    | Inconclusive ->
        [ Printf.sprintf "wg: %s check inconclusive (state budget hit)" O.name ]
end
