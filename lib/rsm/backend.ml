(* One-shot binary consensus as a service: each backend wraps one of the
   repository's algorithms in a fresh nested sub-simulation.  The nested
   run is fault-free — RSM-level crashes are expressed by shrinking the
   input array, not by crashing nested processors — and reports how much
   virtual time it consumed, which the log charges to the slot. *)

module type S = sig
  val name : string
  val decide : seed:int64 -> inputs:bool array -> bool * int
end

type t = (module S)

let majority inputs =
  let ones = Array.fold_left (fun a b -> if b then a + 1 else a) 0 inputs in
  2 * ones > Array.length inputs

module Ben_or_backend = struct
  let name = "ben-or"

  let decide ~seed ~inputs =
    let n = Array.length inputs in
    if n = 1 then (inputs.(0), 0)
    else
      let cfg = { (Ben_or.Runner.default_config ~n ~inputs) with seed } in
      let r = Ben_or.Runner.run cfg in
      let v =
        match r.Ben_or.Runner.decisions with
        | (_, v, _) :: _ -> v
        | [] ->
            (* 500-round cap hit without a decision — astronomically
               unlikely at these sizes; any deterministic rule is safe
               because the slot decision is computed once and shared. *)
            majority inputs
      in
      (v, r.Ben_or.Runner.virtual_time)
end

module Phase_king_backend = struct
  let name = "phase-king"

  (* The synchronous protocol has no virtual clock of its own; charge a
     full latency bound (10, the default Uniform upper bound elsewhere)
     per lock-step round. *)
  let round_duration = 10

  let decide ~seed ~inputs =
    let n = Array.length inputs in
    if n = 1 then (inputs.(0), 0)
    else
      let int_inputs = Array.map (fun b -> if b then 1 else 0) inputs in
      let cfg =
        {
          (Phase_king.Runner.default_config ~n ~inputs:int_inputs) with
          seed;
          byzantine = [];
          strategy = Netsim.Byzantine.silent;
        }
      in
      let r = Phase_king.Runner.run cfg in
      let v =
        match r.Phase_king.Runner.final_decisions with
        | (_, v) :: _ -> v = 1
        | [] -> majority inputs
      in
      (v, r.Phase_king.Runner.sync_rounds * round_duration)
end

module Raft_backend = struct
  let name = "raft"

  let decide ~seed ~inputs =
    let n = Array.length inputs in
    if n = 1 then (inputs.(0), 0)
    else begin
      let eng = Dsim.Engine.create ~seed ~trace_capacity:256 () in
      let net = Netsim.Async_net.create eng ~n ~retain_inbox:false () in
      let faults = (n - 1) / 2 in
      let decision = ref None in
      for i = 0 to n - 1 do
        ignore
          (Dsim.Engine.spawn eng (fun _ectx ->
               let input = if inputs.(i) then 1 else 0 in
               let ctx = Raft.Decentralized.make_ctx ~net ~me:i ~faults ~input in
               let v, _round =
                 Raft.Decentralized.Consensus_decentralized.consensus
                   ~max_rounds:500 ctx input
               in
               if !decision = None then decision := Some v)
            : Dsim.Engine.pid)
      done;
      ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
      let v = match !decision with Some v -> v = 1 | None -> majority inputs in
      (v, Dsim.Engine.now eng)
    end
end

module Omega_backend = struct
  let name = "omega"

  (* Indulgent Paxos driven by the Ω failure detector (lib/detect):
     the nested instance runs fault-free with an honest detector, so
     node 0 is leader from the first poll and decides in two round
     trips.  Positioned as the paper's fourth decomposition — the
     reconciliator as a failure detector (ROADMAP 5a). *)
  let decide ~seed ~inputs = Detect.Runner.decide ~seed ~inputs
end

let ben_or : t = (module Ben_or_backend)
let phase_king : t = (module Phase_king_backend)
let raft : t = (module Raft_backend)
let omega : t = (module Omega_backend)
let all = [ ben_or; phase_king; raft; omega ]
let name (module B : S) = B.name
let of_string s = List.find_opt (fun (module B : S) -> B.name = s) all
