(** Replicated state machines for the RSM layer.

    A {!MACHINE} is a deterministic sequential object; {!Make} wraps one
    replica's copy with the bookkeeping the harness needs (apply count,
    history, divergence digest).  Because every replica applies the same
    command sequence — the total-order layer's guarantee, verified by
    {!Checker} — all live copies stay in the same state. *)

module type MACHINE = sig
  type t
  type cmd
  type output

  val create : unit -> t

  val apply : t -> cmd -> output
  (** Must be deterministic: same state and command, same result. *)

  val digest : t -> string
  (** A canonical serialization of the state; equal digests iff equal
      states (the divergence check compares these across replicas). *)

  val snapshot : t -> string
  (** Serialize the full state for stable storage. Must satisfy
      [digest (restore (snapshot t)) = digest t]. *)

  val restore : string -> t
  val pp_cmd : Format.formatter -> cmd -> unit
end

(** One replica's wrapped state-machine instance. *)
module type INSTANCE = sig
  type cmd
  type output
  type t

  val create : unit -> t
  val apply : t -> cmd -> output
  val applied : t -> int
  val history : t -> cmd list
  (** Applied commands, oldest first. *)

  val digest : t -> string

  val snapshot : t -> string
  (** Serialize the machine state (not the apply count/history). *)

  val restore : string -> t
  (** An instance holding the snapshotted machine state, with fresh
      bookkeeping ([applied = 0], empty history). *)

  val pp_cmd : Format.formatter -> cmd -> unit
end

module Make (M : MACHINE) :
  INSTANCE with type cmd = M.cmd and type output = M.output

(** {1 The replicated key-value store} *)

type kv_cmd =
  | Get of string
  | Set of string * string
  | Cas of { key : string; expect : string option; update : string }
      (** compare-and-swap: store [update] iff the key currently maps to
          [expect] ([None] = absent). *)

type kv_output = Got of string option | Done | Cas_result of bool

val pp_kv_cmd : Format.formatter -> kv_cmd -> unit

module Kv_machine : MACHINE with type cmd = kv_cmd and type output = kv_output
module Kv : INSTANCE with type cmd = kv_cmd and type output = kv_output

val kv_cmd_to_string : kv_cmd -> string
(** Total one-line encoding for WAL records and dumps; inverse of
    {!kv_cmd_of_string}. *)

val kv_cmd_of_string : string -> kv_cmd
(** @raise Invalid_argument on malformed input. *)
