(** Executable total-order monitor for the RSM layer, in the style of
    {!Consensus.Monitor}: record what happened, then ask for violations.
    An empty violation list over many adversarial runs is the
    experimental analogue of the TO-broadcast correctness lemmas.

    Checked properties over the recorded applications:

    - {b TO integrity}: every applied command was submitted by a client.
    - {b TO no-duplication}: no replica applies a command twice.
    - {b Slot agreement}: every replica that fills slot [s] applies the
      same command sequence in it (the per-instance consensus guarantee).
    - {b Prefix agreement (total order)}: any two replicas' full applied
      sequences are prefix-related — a crashed replica holds a prefix of
      the survivors' common sequence.

    {!check_complete} separately checks the closed-loop liveness claim —
    every submitted command reached every live replica — which only
    holds after a run that was allowed to drain. *)

type violation = {
  property : string;
  replica : int option;
  slot : int option;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

type t

val create : unit -> t

val record_submitted : t -> cid:int -> unit
(** Declare a client-submitted command id (re-submissions are idempotent). *)

val record_applied : t -> replica:int -> slot:int -> cid:int -> unit
(** Record that [replica] applied command [cid] as part of slot [slot];
    calls must arrive in the replica's apply order. *)

val record_acked : t -> cid:int -> unit
(** The client observed an acknowledgement for [cid]. Acked commands
    are the durability audit's obligation set: once acked, a command
    must survive any sequence of crash–recoveries. *)

val record_crashed : t -> replica:int -> survived:int -> unit
(** [replica] crashed with only its first [survived] applications
    durable; the volatile tail of its recorded sequence is discarded so
    every property is judged against what recovery reproduces. *)

val record_installed : t -> replica:int -> from_replica:int -> upto_slot:int -> unit
(** [replica] installed [from_replica]'s snapshot covering slots
    [<= upto_slot]: its recorded history is replaced by the donor's
    prefix (state transfer adopts the donor's logical history). *)

val submitted_count : t -> int
val acked_count : t -> int
val applied_count : t -> replica:int -> int

val applied_seq : t -> replica:int -> (int * int) list
(** [(slot, cid)] in apply order. *)

val check : t -> violation list
(** Integrity, no-duplication, slot agreement and prefix agreement. *)

val check_complete : t -> live:int list -> violation list
(** Every submitted command applied at every replica in [live]. *)

val check_durable : t -> live:int list -> violation list
(** The durability audit: every {e acknowledged} command is present in
    at least one replica in [live]. Vacuously empty when [live] is
    empty (nobody is left to ask). Strictly weaker
    than {!check_complete} (some live replica vs. every live replica,
    acked vs. submitted), so it isolates ack-durability bugs such as
    acking before fsync. *)
