type 'cmd entry = { cid : int; op : 'cmd }

type 'cmd replica = {
  pending : (int, 'cmd entry) Hashtbl.t;  (* cid -> entry, not yet ordered *)
  delivered : (int, unit) Hashtbl.t;
  mutable next_slot : int;
  mutable delivered_count : int;
}

type 'cmd t = {
  engine : Dsim.Engine.t;
  net : 'cmd entry Netsim.Async_net.t;
  log : 'cmd entry Log.t;
  batch : int;
  deliver : pid:int -> slot:int -> 'cmd entry -> unit;
  replicas : 'cmd replica array;
  processes : Dsim.Engine.pid array;
  delivered_any : (int, unit) Hashtbl.t;
  mutable stopped : bool;
}

let receive t pid e =
  let r = t.replicas.(pid) in
  if not (Hashtbl.mem r.delivered e.cid) then Hashtbl.replace r.pending e.cid e

let take_batch t r =
  let ids = Hashtbl.fold (fun cid _ acc -> cid :: acc) r.pending [] in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | cid :: rest -> Hashtbl.find r.pending cid :: take (k - 1) rest
  in
  take t.batch (List.sort compare ids)

let replica_loop t pid _ctx =
  let r = t.replicas.(pid) in
  let rec loop () =
    let verdict =
      Dsim.Engine.await (fun () ->
          if Hashtbl.length r.pending > 0 || Log.opened t.log ~slot:r.next_slot
          then Some `Go
          else if t.stopped then Some `Exit
          else None)
    in
    match verdict with
    | `Exit -> ()
    | `Go ->
        let slot = r.next_slot in
        Log.propose t.log ~slot ~pid ~batch:(take_batch t r);
        let d = Dsim.Engine.await (fun () -> Log.decided t.log ~slot) in
        List.iter
          (fun (e : _ entry) ->
            Hashtbl.remove r.pending e.cid;
            if not (Hashtbl.mem r.delivered e.cid) then begin
              Hashtbl.replace r.delivered e.cid ();
              r.delivered_count <- r.delivered_count + 1;
              Hashtbl.replace t.delivered_any e.cid ();
              t.deliver ~pid ~slot e
            end)
          d.Log.batch;
        r.next_slot <- slot + 1;
        loop ()
  in
  loop ()

let create ~engine ~net ~log ~batch ~deliver () =
  if batch < 1 then invalid_arg "Tob.create: batch must be >= 1";
  let n = Netsim.Async_net.n net in
  let t =
    {
      engine;
      net;
      log;
      batch;
      deliver;
      replicas =
        Array.init n (fun _ ->
            {
              pending = Hashtbl.create 32;
              delivered = Hashtbl.create 64;
              next_slot = 0;
              delivered_count = 0;
            });
      processes = Array.make n (-1);
      delivered_any = Hashtbl.create 64;
      stopped = false;
    }
  in
  for pid = 0 to n - 1 do
    Netsim.Async_net.set_handler net pid (fun env ->
        receive t pid env.Netsim.Async_net.payload);
    t.processes.(pid) <-
      Dsim.Engine.spawn engine
        ~name:(Printf.sprintf "rsm-replica-%d" pid)
        (replica_loop t pid)
  done;
  t

let submit t ~replica e =
  if Netsim.Async_net.is_crashed t.net replica then false
  else begin
    receive t replica e;
    Netsim.Async_net.broadcast t.net ~src:replica e;
    true
  end

let process t pid = t.processes.(pid)

let restart t pid =
  if not (Dsim.Engine.alive t.engine t.processes.(pid)) then
    t.processes.(pid) <-
      Dsim.Engine.spawn t.engine
        ~name:(Printf.sprintf "rsm-replica-%d" pid)
        (replica_loop t pid)
let delivered_count t ~pid = t.replicas.(pid).delivered_count
let is_delivered t ~cid = Hashtbl.mem t.delivered_any cid
let pending_count t ~pid = Hashtbl.length t.replicas.(pid).pending
let stop t = t.stopped <- true
