type 'cmd entry = { cid : int; op : 'cmd }

type 'cmd replica = {
  pending : (int, 'cmd entry) Hashtbl.t;  (* cid -> entry, not yet ordered *)
  delivered : (int, unit) Hashtbl.t;
  mutable next_slot : int;
  mutable delivered_count : int;
}

type recovery = { next_slot : int; delivered_cids : int list }

type 'cmd t = {
  engine : Dsim.Engine.t;
  net : 'cmd entry Netsim.Async_net.t;
  log : 'cmd entry Log.t;
  batch : int;
  deliver : pid:int -> slot:int -> 'cmd entry -> unit;
  on_slot_applied : pid:int -> slot:int -> fresh:'cmd entry list -> unit;
  on_install :
    pid:int -> owner:int -> upto:int -> state:string -> cids:int list -> unit;
  replicas : 'cmd replica array;
  processes : Dsim.Engine.pid array;
  delivered_any : (int, unit) Hashtbl.t;
  mutable stopped : bool;
}

let receive t pid e =
  let r = t.replicas.(pid) in
  if not (Hashtbl.mem r.delivered e.cid) then Hashtbl.replace r.pending e.cid e

let take_batch t r =
  let ids = Hashtbl.fold (fun cid _ acc -> cid :: acc) r.pending [] in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | cid :: rest -> Hashtbl.find r.pending cid :: take (k - 1) rest
  in
  take t.batch (List.sort compare ids)

let floor_ready t (r : _ replica) =
  match Log.floor t.log with
  | Some f when f.Log.upto >= r.next_slot -> Some f
  | _ -> None

(* State transfer: the replica is behind the advertised snapshot floor
   (the donor may have compacted the slots it would need to replay), so
   it adopts the donor's state wholesale instead of going slot by slot. *)
let install_floor t pid (r : _ replica) (f : Log.floor) =
  Hashtbl.reset r.delivered;
  List.iter
    (fun cid ->
      Hashtbl.replace r.delivered cid ();
      Hashtbl.replace t.delivered_any cid ();
      Hashtbl.remove r.pending cid)
    f.Log.cids;
  r.delivered_count <- List.length f.Log.cids;
  r.next_slot <- f.Log.upto + 1;
  t.on_install ~pid ~owner:f.Log.owner ~upto:f.Log.upto ~state:f.Log.state
    ~cids:f.Log.cids

let replica_loop t pid _ctx =
  let r = t.replicas.(pid) in
  let rec loop () =
    match floor_ready t r with
    | Some f ->
        install_floor t pid r f;
        loop ()
    | None -> (
        let verdict =
          Dsim.Engine.await (fun () ->
              if floor_ready t r <> None then Some `Go
              else if
                Hashtbl.length r.pending > 0 || Log.opened t.log ~slot:r.next_slot
              then Some `Go
              else if t.stopped then Some `Exit
              else None)
        in
        match verdict with
        | `Exit -> ()
        | `Go when floor_ready t r <> None -> loop ()
        | `Go ->
            let slot = r.next_slot in
            Log.propose t.log ~slot ~pid ~batch:(take_batch t r);
            let d = Dsim.Engine.await (fun () -> Log.decided t.log ~slot) in
            let fresh =
              List.filter
                (fun (e : _ entry) -> not (Hashtbl.mem r.delivered e.cid))
                d.Log.batch
            in
            List.iter
              (fun (e : _ entry) -> Hashtbl.remove r.pending e.cid)
              d.Log.batch;
            List.iter
              (fun (e : _ entry) ->
                Hashtbl.replace r.delivered e.cid ();
                r.delivered_count <- r.delivered_count + 1;
                Hashtbl.replace t.delivered_any e.cid ();
                t.deliver ~pid ~slot e)
              fresh;
            r.next_slot <- slot + 1;
            t.on_slot_applied ~pid ~slot ~fresh;
            loop ())
  in
  loop ()

let create ~engine ~net ~log ~batch ~deliver
    ?(on_slot_applied = fun ~pid:_ ~slot:_ ~fresh:_ -> ())
    ?(on_install = fun ~pid:_ ~owner:_ ~upto:_ ~state:_ ~cids:_ -> ()) () =
  if batch < 1 then invalid_arg "Tob.create: batch must be >= 1";
  let n = Netsim.Async_net.n net in
  let t =
    {
      engine;
      net;
      log;
      batch;
      deliver;
      on_slot_applied;
      on_install;
      replicas =
        Array.init n (fun _ ->
            {
              pending = Hashtbl.create 32;
              delivered = Hashtbl.create 64;
              next_slot = 0;
              delivered_count = 0;
            });
      processes = Array.make n (-1);
      delivered_any = Hashtbl.create 64;
      stopped = false;
    }
  in
  for pid = 0 to n - 1 do
    Netsim.Async_net.set_handler net pid (fun env ->
        receive t pid env.Netsim.Async_net.payload);
    t.processes.(pid) <-
      Dsim.Engine.spawn engine
        ~name:(Printf.sprintf "rsm-replica-%d" pid)
        (replica_loop t pid)
  done;
  t

let submit t ~replica e =
  if Netsim.Async_net.is_crashed t.net replica then false
  else begin
    receive t replica e;
    Netsim.Async_net.broadcast t.net ~src:replica e;
    true
  end

let process t pid = t.processes.(pid)

(* Under the in-memory (recoverable) model a crash leaves replica state
   intact; under the durable model the Runner calls this to lose what a
   real crash loses at the TOB layer: the undelivered pending set. *)
let crash t pid = Hashtbl.reset t.replicas.(pid).pending

let restart t ?recovery pid =
  if not (Dsim.Engine.alive t.engine t.processes.(pid)) then begin
    (match recovery with
    | None -> ()
    | Some rc ->
        let r = t.replicas.(pid) in
        Hashtbl.reset r.delivered;
        Hashtbl.reset r.pending;
        List.iter
          (fun cid ->
            Hashtbl.replace r.delivered cid ();
            Hashtbl.replace t.delivered_any cid ())
          rc.delivered_cids;
        r.delivered_count <- List.length rc.delivered_cids;
        r.next_slot <- rc.next_slot);
    t.processes.(pid) <-
      Dsim.Engine.spawn t.engine
        ~name:(Printf.sprintf "rsm-replica-%d" pid)
        (replica_loop t pid)
  end

let delivered_count t ~pid = t.replicas.(pid).delivered_count

let delivered_cids t ~pid =
  Hashtbl.fold (fun cid _ acc -> cid :: acc) t.replicas.(pid).delivered []
  |> List.sort compare

let next_slot t ~pid = t.replicas.(pid).next_slot
let is_delivered t ~cid = Hashtbl.mem t.delivered_any cid
let pending_count t ~pid = Hashtbl.length t.replicas.(pid).pending
let stop t = t.stopped <- true
