(** End-to-end RSM harness: K closed-loop clients drive a replicated
    object through the total-order-broadcast layer over a simulated
    asynchronous network, under a fault schedule, with the total-order
    checker watching every application.

    The harness is a universal construction: it is parameterized by an
    {!app} — any pure sequential object with single-line codecs — and
    replicates it by totally ordering its operations.  The KV store of
    earlier versions is now just one instance ([Obj.Kv] lifted via
    [Obj.Replicated]).

    Clients are closed-loop with retry: each submits its next command to
    a live replica, waits for the ack (the command to-delivered
    somewhere), and re-submits through another replica on timeout — so a
    command whose entry replica crashed mid-broadcast is still
    eventually ordered, and the duplicate-suppression path is exercised
    whenever the first copy survives after all.

    Faults come in three layers: the static [crash_schedule] /
    [restart_schedule] pairs (crash–stop and crash–recovery), and the
    generic [inject] hook handing a {!faults} controller to an external
    fault injector (the [Nemesis] subsystem) that can also partition the
    network and rewrite the per-message adversary policy mid-run. *)

type 'op faults = {
  engine : Dsim.Engine.t;
  crash : int -> unit;
      (** crash-stop the replica: freeze its inbox and kill its TOB
          process (idempotent) *)
  restart : int -> unit;
      (** crash–recovery: resume reception and respawn the TOB loop; the
          replica catches up from the log's cached decisions (no-op on a
          live replica) *)
  partition : int list list -> unit;  (** install a network partition *)
  heal : unit -> unit;  (** remove any partition *)
  set_policy :
    ('op Tob.entry Netsim.Async_net.envelope ->
    Netsim.Async_net.policy_verdict) ->
    unit;
      (** replace the per-message adversary policy (drop / duplicate /
          delay verdicts at send time) *)
  set_store_policy : Store.Policy.t -> unit;
      (** replace the storage fault policy consulted by every replica's
          disk (no effect when the run has no [store] configured) *)
}
(** Live controller over one run's fault surface, handed to [inject]
    after the cluster is wired and before the simulation starts.  All
    functions may also be called later from scheduled engine events. *)

type ('op, 'st) app = {
  name : string;
  init : 'st;  (** initial sequential state *)
  apply : 'st -> 'op -> 'st * string;
      (** one deterministic sequential step; the [string] is the
          operation's response, already encoded (the runner records it
          verbatim into the {!hist}, only a spec-aware checker decodes
          it).  Must be pure — every replica applies the same log. *)
  op_to_string : 'op -> string;  (** WAL codec; must be newline-free *)
  op_of_string : string -> 'op;
  state_to_string : 'st -> string;  (** snapshot codec; newline-free *)
  state_of_string : string -> 'st;
  digest : 'st -> string;
      (** canonical fingerprint — equal states must yield equal digests,
          used for the cross-replica agreement gate *)
}
(** What the runner needs to know about the replicated object.  Build
    instances from any [Obj.Spec.S] via [Obj.Replicated.app]. *)

type store_config = {
  policy : Store.Policy.t;  (** initial storage fault policy *)
  snapshot_every : int;
      (** take a snapshot + compact every this many non-empty slots per
          replica (0 = never snapshot) *)
  ack_before_fsync : bool;
      (** deliberately broken mode: ack a command as soon as it is
          delivered, without waiting for its WAL records to be durable.
          Exists so the durability audit has a bug to catch; keep
          [false] for honest runs. *)
}

val default_store_config : store_config
(** Honest disks ({!Store.Policy.none}), snapshot every 4 non-empty
    slots, ack after fsync. *)

type 'op config = {
  backend : Backend.t;
  n : int;  (** replicas *)
  batch : int;  (** max commands per slot proposal *)
  seed : int64;
  latency : Netsim.Latency.t;
  crash_schedule : (int * int) list;
      (** [(virtual_time, pid)]: crash-stop that replica at that time *)
  restart_schedule : (int * int) list;
      (** [(virtual_time, pid)]: restart that replica at that time
          (no-op unless it crashed earlier) *)
  inject : ('op faults -> unit) option;
      (** fault-injection hook, run once at virtual time 0 *)
  trace_capacity : int option;
      (** bound retained trace events (None = unbounded); long campaigns
          should bound this so traces don't retain the whole run *)
  quiet : bool;
      (** run the engine with tracing disabled: no trace strings are
          built or retained.  Scheduling, RNG draws and outcomes are
          unaffected — the checker never reads the trace — so quiet
          runs produce the same results as traced runs. *)
  queue : Dsim.Equeue.backend;
      (** event-queue backend for the engine (default [Heap]); purely a
          performance knob — runs are byte-identical either way *)
  batching : bool;
      (** same-tick batch draining in the engine (default [true]);
          also behaviour-neutral *)
  ops : 'op list array;  (** one command list per client *)
  ack_timeout : int;  (** virtual time before a client re-submits *)
  max_events : int;  (** engine event budget (runaway guard) *)
  store : store_config option;
      (** [Some _] gives every replica a simulated disk: slots are
          written to a per-replica WAL (entries + commit marker, then
          fsync), clients are acked only once durable, snapshots
          compact the WAL, and crash–restart goes through real recovery
          — a restarted replica resumes from exactly what its disk
          reproduces, catching up (or installing a peer snapshot) for
          the rest.  [None] keeps the legacy recoverable model where
          memory survives crashes. *)
}

val default_config : n:int -> ops:'op list array -> 'op config
(** Ben-Or backend, batch 8, seed 1, uniform 1-10 latency, no faults,
    unbounded trace, ack timeout 2000, 5M event budget, no store. *)

type 'op hist = {
  h_cid : int;
  h_client : int;
  h_op : 'op;
  h_invoked : int;  (** virtual time the client submitted *)
  h_resp : string option;
      (** the encoded response the cluster computed at the command's
          first application, if it was applied anywhere *)
  h_returned : int option;
      (** virtual time the client saw the ack; [None] = still pending
          when the run ended (its effect may or may not have taken
          place) *)
}
(** One operation of the run's concurrent history, as a spec-agnostic
    record — feed these to the Wing–Gong checker ([Obj.Replicated])
    for a per-object linearizability verdict. *)

type 'op report = {
  engine_outcome : Dsim.Engine.outcome;
  virtual_time : int;  (** time of the last processed event *)
  submitted : int;  (** distinct client commands *)
  acked : int;  (** commands whose clients saw delivery *)
  delivered : int array;  (** per-replica to-delivered counts *)
  slots : int;  (** consensus slots decided *)
  instances : int;  (** binary backend instances consumed *)
  messages_sent : int;
  messages_delivered : int;
  crashed : int list;  (** crash events during the run, in order *)
  restarted : int list;  (** restart events during the run, in order *)
  violations : Checker.violation list;
      (** order, integrity and duplication violations — the safety gate *)
  completeness : Checker.violation list;
      (** submitted commands missing at live replicas — the liveness gate *)
  durability : Checker.violation list;
      (** acked commands surviving at no live replica — the durability
          audit (empty for honest stores; non-empty flags acking
          non-durable commands, e.g. [ack_before_fsync]) *)
  digests_agree : bool;
      (** all live replicas' final object states are identical *)
  digests : string array;  (** per-replica final state digest *)
  history : 'op hist list;
      (** the full concurrent history, sorted by invocation time *)
  latencies : float list;
      (** per-command submit-to-ack virtual times, acked commands only *)
  trace : Dsim.Trace.t;
      (** the run's structured trace (slot decisions, crashes, ...);
          read with {!Dsim.Trace.events} / {!Dsim.Trace.last} *)
  store_stats : Store.Disk.stats array;
      (** per-replica disk counters ([[||]] when no store) *)
  disks : Store.Disk.t array;
      (** the replicas' disks, for post-run inspection — WAL records and
          snapshot chains ([[||]] when no store) *)
}

val run : ('op, 'st) app -> 'op config -> 'op report
(** Execute one simulation until the workload drains (or the event
    budget trips — reported, never raised). *)
