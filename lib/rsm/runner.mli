(** End-to-end RSM harness: K closed-loop clients drive a replicated KV
    store through the total-order-broadcast layer over a simulated
    asynchronous network, under a crash schedule, with the total-order
    checker watching every application.

    Clients are closed-loop with retry: each submits its next command to
    a live replica, waits for the ack (the command to-delivered
    somewhere), and re-submits through another replica on timeout — so a
    command whose entry replica crashed mid-broadcast is still
    eventually ordered, and the duplicate-suppression path is exercised
    whenever the first copy survives after all. *)

type config = {
  backend : Backend.t;
  n : int;  (** replicas *)
  batch : int;  (** max commands per slot proposal *)
  seed : int64;
  latency : Netsim.Latency.t;
  crash_schedule : (int * int) list;
      (** [(virtual_time, pid)]: crash-stop that replica at that time;
          keep at least one replica alive *)
  ops : App.kv_cmd list array;  (** one command list per client *)
  ack_timeout : int;  (** virtual time before a client re-submits *)
  max_events : int;  (** engine event budget (runaway guard) *)
}

val default_config : n:int -> ops:App.kv_cmd list array -> config
(** Ben-Or backend, batch 8, seed 1, uniform 1-10 latency, no crashes,
    ack timeout 2000, 5M event budget. *)

type report = {
  engine_outcome : Dsim.Engine.outcome;
  virtual_time : int;  (** time of the last processed event *)
  submitted : int;  (** distinct client commands *)
  acked : int;  (** commands whose clients saw delivery *)
  delivered : int array;  (** per-replica to-delivered counts *)
  slots : int;  (** consensus slots decided *)
  instances : int;  (** binary backend instances consumed *)
  messages_sent : int;
  messages_delivered : int;
  crashed : int list;  (** pids crashed during the run *)
  violations : Checker.violation list;
      (** order, integrity and duplication violations — the safety gate *)
  completeness : Checker.violation list;
      (** submitted commands missing at live replicas — the liveness gate *)
  digests_agree : bool;
      (** all live replicas' final KV states are identical *)
  digests : string array;  (** per-replica final KV digest *)
  latencies : float list;
      (** per-command submit-to-ack virtual times, acked commands only *)
  trace : Dsim.Trace.event list;
      (** the run's structured trace (slot decisions, crashes, ...) *)
}

val run : config -> report
(** Execute one simulation until the workload drains (or the event
    budget trips — reported, never raised). *)
