type violation = {
  property : string;
  replica : int option;
  slot : int option;
  message : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "[%s]%s%s %s" v.property
    (match v.replica with Some r -> Printf.sprintf " replica %d" r | None -> "")
    (match v.slot with Some s -> Printf.sprintf " slot %d" s | None -> "")
    v.message

type t = {
  submitted : (int, unit) Hashtbl.t;
  acked : (int, unit) Hashtbl.t;
  applied : (int, (int * int) list ref) Hashtbl.t;
      (* replica -> (slot, cid) newest first *)
}

let create () =
  {
    submitted = Hashtbl.create 64;
    acked = Hashtbl.create 64;
    applied = Hashtbl.create 8;
  }

let record_submitted t ~cid = Hashtbl.replace t.submitted cid ()
let record_acked t ~cid = Hashtbl.replace t.acked cid ()
let acked_count t = Hashtbl.length t.acked

let record_applied t ~replica ~slot ~cid =
  let seq =
    match Hashtbl.find_opt t.applied replica with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.applied replica r;
        r
  in
  seq := (slot, cid) :: !seq

let submitted_count t = Hashtbl.length t.submitted

(* The replica crashed having durably persisted only its first
   [survived] applications: discard the volatile tail of its record so
   all order/agreement properties are judged against what recovery can
   actually reproduce. *)
let record_crashed t ~replica ~survived =
  match Hashtbl.find_opt t.applied replica with
  | None -> ()
  | Some seq ->
      let n = List.length !seq in
      if n > survived then
        seq := List.filteri (fun i _ -> i >= n - survived) !seq

(* [replica] installed [from_replica]'s snapshot covering slots up to
   [upto_slot]: its logical history becomes the donor's prefix. *)
let record_installed t ~replica ~from_replica ~upto_slot =
  let donor =
    match Hashtbl.find_opt t.applied from_replica with
    | Some seq -> List.filter (fun (slot, _) -> slot <= upto_slot) !seq
    | None -> []
  in
  match Hashtbl.find_opt t.applied replica with
  | Some seq -> seq := donor
  | None -> Hashtbl.replace t.applied replica (ref donor)

let applied_seq t ~replica =
  match Hashtbl.find_opt t.applied replica with
  | Some r -> List.rev !r
  | None -> []

let applied_count t ~replica = List.length (applied_seq t ~replica)

let replicas t =
  Hashtbl.fold (fun r _ acc -> r :: acc) t.applied [] |> List.sort compare

let check_integrity t =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun (slot, cid) ->
          if Hashtbl.mem t.submitted cid then None
          else
            Some
              {
                property = "to-integrity";
                replica = Some r;
                slot = Some slot;
                message = Printf.sprintf "applied command %d was never submitted" cid;
              })
        (applied_seq t ~replica:r))
    (replicas t)

let check_no_duplication t =
  List.concat_map
    (fun r ->
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun (slot, cid) ->
          if Hashtbl.mem seen cid then
            Some
              {
                property = "to-no-duplication";
                replica = Some r;
                slot = Some slot;
                message = Printf.sprintf "command %d applied more than once" cid;
              }
          else begin
            Hashtbl.replace seen cid ();
            None
          end)
        (applied_seq t ~replica:r))
    (replicas t)

let check_slot_agreement t =
  (* slot -> first recorded (replica, cid sequence); later replicas must
     match it exactly. *)
  let reference : (int, int * int list) Hashtbl.t = Hashtbl.create 64 in
  let per_slot r =
    (* group the replica's (slot, cid) records by slot, preserving order *)
    let acc : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (slot, cid) ->
        match Hashtbl.find_opt acc slot with
        | Some l -> l := cid :: !l
        | None ->
            Hashtbl.replace acc slot (ref [ cid ]);
            order := slot :: !order)
      (applied_seq t ~replica:r);
    List.rev_map (fun s -> (s, List.rev !(Hashtbl.find acc s))) !order
  in
  List.concat_map
    (fun r ->
      List.filter_map
        (fun (slot, cids) ->
          match Hashtbl.find_opt reference slot with
          | None ->
              Hashtbl.replace reference slot (r, cids);
              None
          | Some (_, ref_cids) when ref_cids = cids -> None
          | Some (r0, _) ->
              Some
                {
                  property = "slot-agreement";
                  replica = Some r;
                  slot = Some slot;
                  message =
                    Printf.sprintf "slot contents differ from replica %d's" r0;
                })
        (per_slot r))
    (replicas t)

let is_prefix shorter longer =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (shorter, longer)

let check_prefix_agreement t =
  let seqs =
    List.map (fun r -> (r, List.map snd (applied_seq t ~replica:r))) (replicas t)
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.filter_map
    (fun ((r1, s1), (r2, s2)) ->
      let shorter, longer = if List.length s1 <= List.length s2 then (s1, s2) else (s2, s1) in
      if is_prefix shorter longer then None
      else
        Some
          {
            property = "to-prefix-agreement";
            replica = Some r1;
            slot = None;
            message =
              Printf.sprintf "applied sequences of replicas %d and %d diverge" r1 r2;
          })
    (pairs seqs)

let check t =
  check_integrity t @ check_no_duplication t @ check_slot_agreement t
  @ check_prefix_agreement t

let check_complete t ~live =
  let submitted = Hashtbl.fold (fun cid _ acc -> cid :: acc) t.submitted [] in
  List.concat_map
    (fun r ->
      let applied = Hashtbl.create 64 in
      List.iter
        (fun (_, cid) -> Hashtbl.replace applied cid ())
        (applied_seq t ~replica:r);
      List.filter_map
        (fun cid ->
          if Hashtbl.mem applied cid then None
          else
            Some
              {
                property = "to-completeness";
                replica = Some r;
                slot = None;
                message =
                  Printf.sprintf "live replica never applied submitted command %d" cid;
              })
        submitted)
    live

let check_durable t ~live =
  let acked = Hashtbl.fold (fun cid _ acc -> cid :: acc) t.acked [] in
  let held = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun (_, cid) -> Hashtbl.replace held cid ())
        (applied_seq t ~replica:r))
    live;
  if live = [] then []
  else
    List.filter_map
      (fun cid ->
        if Hashtbl.mem held cid then None
        else
          Some
            {
              property = "durability";
              replica = None;
              slot = None;
              message =
                Printf.sprintf
                  "acknowledged command %d survives at no live replica" cid;
            })
      (List.sort compare acked)
