(** Total-order broadcast over the slot log — the reduction of
    SNIPPETS.md snippet 3 (TO-broadcast from a sequence of consensus
    instances), with batching.

    Each replica keeps the reduction's three pieces of state: the set of
    commands it knows but has not yet ordered ([urb_delivered \
    to_deliverable] — here the {e pending} set), the growing decided
    sequence (realised through the [deliver] callback), and its slot
    counter.  When a replica has pending commands it opens the next slot
    with a batch of up to [batch] of them; every other live replica
    joins the slot (with its own pending batch, possibly empty), the
    {!Log} decides a winner, and all replicas append the winning batch —
    skipping commands they already delivered, so a command that rides in
    several proposals is still applied exactly once.

    Command dissemination is a plain best-effort broadcast; the
    consensus object restores uniformity (a decided batch reaches every
    live replica through the log even when the original broadcast was
    cut short by the sender's crash). *)

type 'cmd entry = { cid : int; op : 'cmd }
(** A uniquely identified command ([cid] de-duplicates re-submissions). *)

type recovery = {
  next_slot : int;  (** first slot not covered by the durable state *)
  delivered_cids : int list;  (** commands the durable state contains *)
}
(** What a replica's stable storage reproduced after a crash; see
    {!restart}. *)

type 'cmd t

val create :
  engine:Dsim.Engine.t ->
  net:'cmd entry Netsim.Async_net.t ->
  log:'cmd entry Log.t ->
  batch:int ->
  deliver:(pid:int -> slot:int -> 'cmd entry -> unit) ->
  ?on_slot_applied:(pid:int -> slot:int -> fresh:'cmd entry list -> unit) ->
  ?on_install:
    (pid:int -> owner:int -> upto:int -> state:string -> cids:int list -> unit) ->
  unit ->
  'cmd t
(** Install delivery handlers and spawn one replica process per network
    node.  [batch] caps entries per proposal (>= 1).  [deliver] runs in
    simulation context each time a replica to-delivers an entry — in
    identical order across replicas, which {!Checker} verifies.

    [on_slot_applied] fires after a replica finishes a slot (even an
    empty one), with the entries it freshly applied there — the hook the
    durable runner uses to write and fsync WAL records at slot
    granularity.  [on_install] fires when a replica adopts a snapshot
    from the log's state-transfer floor (see {!Log.set_floor}) instead
    of replaying slots; the receiver must restore the app state from
    [state]. *)

val submit : 'cmd t -> replica:int -> 'cmd entry -> bool
(** Inject a command at [replica] (the client RPC): [false] if that
    replica has crashed, otherwise the entry joins its pending set and
    is broadcast to the others.  Safe to re-submit the same [cid]
    through any replica; duplicates are suppressed at delivery. *)

val process : 'cmd t -> int -> Dsim.Engine.pid
(** The engine process driving the given replica (kill it on crash). *)

val crash : 'cmd t -> int -> unit
(** Drop the replica's pending (undelivered) command set — what a real
    crash loses at the TOB layer.  The durable runner calls this when it
    crashes a replica; the legacy in-memory model does not. *)

val restart : 'cmd t -> ?recovery:recovery -> int -> unit
(** Respawn the replica loop after its process was killed.  Without
    [recovery] this is the recoverable (intact-memory) model: the
    replica resumes at its pre-crash slot counter and catches up from
    the log's cached decisions.  With [recovery] the replica's delivered
    set, count and slot counter are reset to exactly what stable storage
    reproduced — the honest model — before the loop resumes and catches
    up.  No-op while the process is alive. *)

val delivered_count : 'cmd t -> pid:int -> int

val delivered_cids : 'cmd t -> pid:int -> int list
(** Sorted command ids the replica has applied — the delivered-set part
    of a snapshot payload. *)

val next_slot : 'cmd t -> pid:int -> int
val is_delivered : 'cmd t -> cid:int -> bool
(** Has {e some} replica to-delivered this command? (the client's ack) *)

val pending_count : 'cmd t -> pid:int -> int

val stop : 'cmd t -> unit
(** Ask replica loops to exit once idle, so a drained run ends in
    engine quiescence rather than a parked-forever await. *)
