type 'cmd slot_decision = {
  winner : int;
  batch : 'cmd list;
  instances : int;
  duration : int;
}

type 'cmd slot = {
  opener : int;
  mutable proposals : (int * 'cmd list) list;  (* registration order *)
  mutable decision : 'cmd slot_decision option;
}

type floor = { owner : int; upto : int; state : string; cids : int list }

type 'cmd t = {
  engine : Dsim.Engine.t;
  backend : Backend.t;
  seed : int64;
  live : unit -> int list;
  view : unit -> int list option;
  slots : (int, 'cmd slot) Hashtbl.t;
  mutable floor : floor option;
  mutable decided_count : int;
  mutable instances_total : int;
}

let create ~engine ~backend ~seed ~live ?view () =
  let view = match view with Some v -> v | None -> fun () -> Some (live ()) in
  {
    engine;
    backend;
    seed;
    live;
    view;
    slots = Hashtbl.create 64;
    floor = None;
    decided_count = 0;
    instances_total = 0;
  }

(* Partition-aware quorum view over an [Async_net]: with the network
   whole every live replica counts (crash-only behaviour unchanged);
   under a cut only the side holding a strict majority of the live
   replicas may decide, and with no such side every slot stalls until
   heal. *)
let majority_view ~net ~live () =
  match Netsim.Async_net.partition_groups net with
  | None -> Some (live ())
  | Some groups ->
      let lv = live () in
      let best =
        List.fold_left
          (fun best g ->
            let lg = List.filter (fun p -> List.mem p g) lv in
            match best with
            | Some b when List.length b >= List.length lg -> best
            | _ -> Some lg)
          None groups
      in
      (match best with
      | Some b when 2 * List.length b > List.length lv -> Some b
      | _ -> None)

let mix seed ~slot ~attempt =
  Int64.add (Int64.mul seed 1_000_003L) (Int64.of_int ((slot * 7919) + attempt + 1))

let compute t slot_no s =
  let module B = (val t.backend : Backend.S) in
  let proposers = List.sort compare (List.map fst s.proposals) in
  let batch_of p = List.assoc p s.proposals in
  (* A replica that brought commands prefers itself; an empty-handed
     joiner backs whoever opened the slot. *)
  let prefs =
    List.map (fun p -> (p, if batch_of p <> [] then p else s.opener)) proposers
  in
  let candidates = List.sort_uniq compare (List.map snd prefs) in
  let attempt = ref 0 in
  let duration = ref 0 in
  let run_instance k ~unanimous =
    let inputs =
      Array.of_list (List.map (fun (_, pref) -> unanimous || pref = k) prefs)
    in
    let b, d =
      B.decide ~seed:(mix t.seed ~slot:slot_no ~attempt:!attempt) ~inputs
    in
    incr attempt;
    duration := !duration + d;
    b
  in
  let winner =
    match List.find_opt (fun k -> run_instance k ~unanimous:false) candidates with
    | Some k -> k
    | None -> (
        (* every candidate instance decided false: retry pass with
           unanimous support for the first non-empty proposer, which the
           backend must ratify by validity *)
        match List.find_opt (fun p -> batch_of p <> []) proposers with
        | Some fb ->
            ignore (run_instance fb ~unanimous:true : bool);
            fb
        | None -> s.opener (* all batches empty: nothing to order *))
  in
  {
    winner;
    batch = batch_of winner;
    instances = !attempt;
    duration = !duration;
  }

let publish t slot_no s d =
  let module B = (val t.backend : Backend.S) in
  s.decision <- Some d;
  t.decided_count <- t.decided_count + 1;
  t.instances_total <- t.instances_total + d.instances;
  Dsim.Engine.emitk t.engine ~tag:"rsm" (fun () ->
      Printf.sprintf "slot %d <- proposer %d (%d cmds, %d %s instances, %d vt)"
        slot_no d.winner
        (List.length d.batch)
        d.instances B.name d.duration)

let propose t ~slot ~pid ~batch =
  let s =
    match Hashtbl.find_opt t.slots slot with
    | Some s -> s
    | None ->
        let s = { opener = pid; proposals = []; decision = None } in
        Hashtbl.replace t.slots slot s;
        ignore
          (Dsim.Engine.spawn t.engine
             ~name:(Printf.sprintf "rsm-slot-%d" slot)
             (fun ctx ->
               (* Quorum gate: a slot advances only when [view] grants
                  a decision-capable member set — under a majority-less
                  partition it returns None and the slot stalls until
                  heal (DESIGN §12/§14 fix: cuts now block consensus-
                  internal progress, not just client traffic). *)
               ignore
                 (Dsim.Engine.await (fun () ->
                      match t.view () with
                      | Some members
                        when List.for_all
                               (fun p -> List.mem_assoc p s.proposals)
                               members ->
                          Some members
                      | _ -> None)
                   : int list);
               let d = compute t slot s in
               if d.duration > 0 then Dsim.Engine.sleep ctx d.duration;
               publish t slot s d)
            : Dsim.Engine.pid);
        s
  in
  if not (List.mem_assoc pid s.proposals) then
    s.proposals <- s.proposals @ [ (pid, batch) ]

let opened t ~slot = Hashtbl.mem t.slots slot

let opener t ~slot =
  Option.map (fun s -> s.opener) (Hashtbl.find_opt t.slots slot)

let decided t ~slot =
  match Hashtbl.find_opt t.slots slot with Some s -> s.decision | None -> None

let decided_count t = t.decided_count
let instances_total t = t.instances_total

(* The shared slot cache models what live peers remember.  When the
   whole cluster is down there is nobody left to remember anything, so
   an honest recovery must start from the disks alone. *)
let forget_volatile t =
  Hashtbl.reset t.slots;
  t.floor <- None

let reseed t ~slot ~winner ~batch =
  if not (Hashtbl.mem t.slots slot) then begin
    Hashtbl.replace t.slots slot
      {
        opener = winner;
        proposals = [ (winner, batch) ];
        decision = Some { winner; batch; instances = 0; duration = 0 };
      };
    Dsim.Engine.emitk t.engine ~tag:"rsm" (fun () ->
        Printf.sprintf "slot %d reseeded from replica %d's WAL (%d cmds)" slot
          winner (List.length batch))
  end

let set_floor t ~owner ~upto ~state ~cids =
  match t.floor with
  | Some f when f.upto >= upto -> ()
  | _ -> t.floor <- Some { owner; upto; state; cids }

let floor t = t.floor
