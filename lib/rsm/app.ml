module type MACHINE = sig
  type t
  type cmd
  type output

  val create : unit -> t
  val apply : t -> cmd -> output
  val digest : t -> string
  val snapshot : t -> string
  val restore : string -> t
  val pp_cmd : Format.formatter -> cmd -> unit
end

module type INSTANCE = sig
  type cmd
  type output
  type t

  val create : unit -> t
  val apply : t -> cmd -> output
  val applied : t -> int
  val history : t -> cmd list
  val digest : t -> string
  val snapshot : t -> string
  val restore : string -> t
  val pp_cmd : Format.formatter -> cmd -> unit
end

module Make (M : MACHINE) = struct
  type cmd = M.cmd
  type output = M.output

  type t = {
    machine : M.t;
    mutable applied : int;
    mutable history : M.cmd list;  (* newest first *)
  }

  let create () = { machine = M.create (); applied = 0; history = [] }

  let apply t cmd =
    let out = M.apply t.machine cmd in
    t.applied <- t.applied + 1;
    t.history <- cmd :: t.history;
    out

  let applied t = t.applied
  let history t = List.rev t.history
  let digest t = M.digest t.machine
  let snapshot t = M.snapshot t.machine

  (* A restored instance starts with fresh bookkeeping: the snapshot
     captures machine state, not the harness's apply count/history. *)
  let restore s = { machine = M.restore s; applied = 0; history = [] }
  let pp_cmd = M.pp_cmd
end

type kv_cmd =
  | Get of string
  | Set of string * string
  | Cas of { key : string; expect : string option; update : string }

type kv_output = Got of string option | Done | Cas_result of bool

let pp_kv_cmd ppf = function
  | Get k -> Format.fprintf ppf "GET %s" k
  | Set (k, v) -> Format.fprintf ppf "SET %s=%s" k v
  | Cas { key; expect; update } ->
      Format.fprintf ppf "CAS %s %s->%s" key
        (Option.value expect ~default:"\xe2\x88\x85")
        update

module Kv_machine = struct
  type t = (string, string) Hashtbl.t
  type cmd = kv_cmd
  type output = kv_output

  let create () = Hashtbl.create 32

  let apply t = function
    | Get k -> Got (Hashtbl.find_opt t k)
    | Set (k, v) ->
        Hashtbl.replace t k v;
        Done
    | Cas { key; expect; update } ->
        if Hashtbl.find_opt t key = expect then begin
          Hashtbl.replace t key update;
          Cas_result true
        end
        else Cas_result false

  let digest t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort compare
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
    |> String.concat ";"

  (* Snapshots quote keys and values, so arbitrary strings roundtrip
     (the digest format above is for divergence checks only and assumes
     ';'/'='-free data). *)
  let snapshot t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort compare
    |> List.map (fun (k, v) -> Printf.sprintf "%S %S" k v)
    |> String.concat ";"

  let restore s =
    let t = create () in
    if s <> "" then
      String.split_on_char ';' s
      |> List.iter (fun pair ->
             Scanf.sscanf pair " %S %S" (fun k v -> Hashtbl.replace t k v));
    t

  let pp_cmd = pp_kv_cmd
end

module Kv = Make (Kv_machine)

(* A wire/WAL codec for KV commands. [%S] quoting makes the encoding
   total: any key/value roundtrips, including spaces and newlines. *)
let kv_cmd_to_string = function
  | Get k -> Printf.sprintf "G %S" k
  | Set (k, v) -> Printf.sprintf "S %S %S" k v
  | Cas { key; expect = None; update } -> Printf.sprintf "C0 %S %S" key update
  | Cas { key; expect = Some e; update } ->
      Printf.sprintf "C1 %S %S %S" key e update

let kv_cmd_of_string s =
  match String.index_opt s ' ' with
  | None -> invalid_arg ("App.kv_cmd_of_string: " ^ s)
  | Some i -> (
      let tag = String.sub s 0 i in
      let rest = String.sub s i (String.length s - i) in
      match tag with
      | "G" -> Scanf.sscanf rest " %S" (fun k -> Get k)
      | "S" -> Scanf.sscanf rest " %S %S" (fun k v -> Set (k, v))
      | "C0" ->
          Scanf.sscanf rest " %S %S" (fun key update ->
              Cas { key; expect = None; update })
      | "C1" ->
          Scanf.sscanf rest " %S %S %S" (fun key e update ->
              Cas { key; expect = Some e; update })
      | _ -> invalid_arg ("App.kv_cmd_of_string: " ^ s))
