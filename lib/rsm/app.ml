module type MACHINE = sig
  type t
  type cmd
  type output

  val create : unit -> t
  val apply : t -> cmd -> output
  val digest : t -> string
  val pp_cmd : Format.formatter -> cmd -> unit
end

module type INSTANCE = sig
  type cmd
  type output
  type t

  val create : unit -> t
  val apply : t -> cmd -> output
  val applied : t -> int
  val history : t -> cmd list
  val digest : t -> string
  val pp_cmd : Format.formatter -> cmd -> unit
end

module Make (M : MACHINE) = struct
  type cmd = M.cmd
  type output = M.output

  type t = {
    machine : M.t;
    mutable applied : int;
    mutable history : M.cmd list;  (* newest first *)
  }

  let create () = { machine = M.create (); applied = 0; history = [] }

  let apply t cmd =
    let out = M.apply t.machine cmd in
    t.applied <- t.applied + 1;
    t.history <- cmd :: t.history;
    out

  let applied t = t.applied
  let history t = List.rev t.history
  let digest t = M.digest t.machine
  let pp_cmd = M.pp_cmd
end

type kv_cmd =
  | Get of string
  | Set of string * string
  | Cas of { key : string; expect : string option; update : string }

type kv_output = Got of string option | Done | Cas_result of bool

let pp_kv_cmd ppf = function
  | Get k -> Format.fprintf ppf "GET %s" k
  | Set (k, v) -> Format.fprintf ppf "SET %s=%s" k v
  | Cas { key; expect; update } ->
      Format.fprintf ppf "CAS %s %s->%s" key
        (Option.value expect ~default:"\xe2\x88\x85")
        update

module Kv_machine = struct
  type t = (string, string) Hashtbl.t
  type cmd = kv_cmd
  type output = kv_output

  let create () = Hashtbl.create 32

  let apply t = function
    | Get k -> Got (Hashtbl.find_opt t k)
    | Set (k, v) ->
        Hashtbl.replace t k v;
        Done
    | Cas { key; expect; update } ->
        if Hashtbl.find_opt t key = expect then begin
          Hashtbl.replace t key update;
          Cas_result true
        end
        else Cas_result false

  let digest t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort compare
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
    |> String.concat ";"

  let pp_cmd = pp_kv_cmd
end

module Kv = Make (Kv_machine)
