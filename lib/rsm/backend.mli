(** Pluggable one-shot binary consensus backends for the RSM log.

    The replicated-state-machine layer consumes consensus as a black box:
    [CS[sn].propose] in the total-order-broadcast reduction.  A backend
    packages one of the repository's consensus algorithms as exactly that
    box — a function that runs a fresh, deterministic, {e nested}
    sub-simulation deciding a single binary value among [Array.length
    inputs] processors and returns the common decision.

    Faults are modelled at the RSM layer (a crashed replica stops
    proposing and drops out of the participant set), so the nested
    instances themselves run fault-free; their role is to resolve genuine
    input disagreement, which the log's candidate reduction feeds them
    whenever replicas race proposals for the same slot. *)

module type S = sig
  val name : string

  val decide : seed:int64 -> inputs:bool array -> bool * int
  (** Run one one-shot binary consensus instance over the given inputs
      (one per processor) and return the decision together with the
      virtual time the instance took.  The RSM log charges that duration
      to the slot in the {e outer} simulation, so consensus latency is
      what batching amortizes.  Deterministic in [(seed, inputs)].
      [inputs] must be non-empty. *)
end

type t = (module S)

val ben_or : t
(** Ben-Or's randomized consensus, decomposed (VAC + reconciliator). *)

val phase_king : t
(** Phase-King, decomposed (AC + king conciliator), no Byzantine ids. *)

val raft : t
(** The decentralized Raft variant of paper Section 4.3 (VAC + the
    timing reconciliator) — the paper's own template decomposition. *)

val omega : t
(** Indulgent Paxos with the coordinator elected by the Ω failure
    detector ([lib/detect]) — the fourth decomposition: the
    reconciliator as a failure detector. *)

val all : t list
val name : t -> string
val of_string : string -> t option
