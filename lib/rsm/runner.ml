type faults = {
  engine : Dsim.Engine.t;
  crash : int -> unit;
  restart : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
  set_policy :
    (App.kv_cmd Tob.entry Netsim.Async_net.envelope ->
    Netsim.Async_net.policy_verdict) ->
    unit;
}

type config = {
  backend : Backend.t;
  n : int;
  batch : int;
  seed : int64;
  latency : Netsim.Latency.t;
  crash_schedule : (int * int) list;
  restart_schedule : (int * int) list;
  inject : (faults -> unit) option;
  trace_capacity : int option;
  ops : App.kv_cmd list array;
  ack_timeout : int;
  max_events : int;
}

let default_config ~n ~ops =
  {
    backend = Backend.ben_or;
    n;
    batch = 8;
    seed = 1L;
    latency = Netsim.Latency.Uniform (1, 10);
    crash_schedule = [];
    restart_schedule = [];
    inject = None;
    trace_capacity = None;
    ops;
    ack_timeout = 2_000;
    max_events = 5_000_000;
  }

type report = {
  engine_outcome : Dsim.Engine.outcome;
  virtual_time : int;
  submitted : int;
  acked : int;
  delivered : int array;
  slots : int;
  instances : int;
  messages_sent : int;
  messages_delivered : int;
  crashed : int list;
  restarted : int list;
  violations : Checker.violation list;
  completeness : Checker.violation list;
  digests_agree : bool;
  digests : string array;
  latencies : float list;
  trace : Dsim.Trace.t;
}

(* Globally unique command ids: client in the high bits, sequence low. *)
let cid ~client ~k = (client lsl 20) lor k

let run cfg =
  if cfg.n < 1 then invalid_arg "Runner.run: need at least one replica";
  let eng =
    Dsim.Engine.create ~seed:cfg.seed ?trace_capacity:cfg.trace_capacity ()
  in
  let policy_ref = ref (fun _ -> Netsim.Async_net.Deliver) in
  let net =
    Netsim.Async_net.create eng ~n:cfg.n ~latency:cfg.latency
      ~policy:(fun env -> !policy_ref env)
      ~retain_inbox:false ()
  in
  let live () =
    List.filter
      (fun p -> not (Netsim.Async_net.is_crashed net p))
      (List.init cfg.n Fun.id)
  in
  let log =
    Log.create ~engine:eng ~backend:cfg.backend ~seed:cfg.seed ~live ()
  in
  let apps = Array.init cfg.n (fun _ -> App.Kv.create ()) in
  let checker = Checker.create () in
  let deliver ~pid ~slot (e : App.kv_cmd Tob.entry) =
    ignore (App.Kv.apply apps.(pid) e.Tob.op : App.kv_output);
    Checker.record_applied checker ~replica:pid ~slot ~cid:e.Tob.cid
  in
  let tob = Tob.create ~engine:eng ~net ~log ~batch:cfg.batch ~deliver () in
  let clients = Array.length cfg.ops in
  let done_clients = ref 0 in
  let acked = ref 0 in
  let latencies = ref [] in
  let client_body c ctx =
    List.iteri
      (fun k op ->
        let cid = cid ~client:c ~k in
        Checker.record_submitted checker ~cid;
        let t0 = Dsim.Engine.now eng in
        let attempt = ref 0 in
        let rec submit_round () =
          (* rotate over live replicas, starting at a client-specific one *)
          let rec pick j =
            if j >= cfg.n then None
            else
              let r = (c + !attempt + j) mod cfg.n in
              if Netsim.Async_net.is_crashed net r then pick (j + 1) else Some r
          in
          Option.iter
            (fun r -> ignore (Tob.submit tob ~replica:r { Tob.cid; op } : bool))
            (pick 0);
          incr attempt;
          let deadline = Dsim.Engine.now eng + cfg.ack_timeout in
          let rec wait_ack () =
            if Tob.is_delivered tob ~cid then true
            else if Dsim.Engine.now eng >= deadline then false
            else begin
              Dsim.Engine.sleep ctx 10;
              wait_ack ()
            end
          in
          if not (wait_ack ()) then submit_round ()
        in
        submit_round ();
        incr acked;
        latencies := float_of_int (Dsim.Engine.now eng - t0) :: !latencies)
      cfg.ops.(c);
    incr done_clients
  in
  for c = 0 to clients - 1 do
    ignore
      (Dsim.Engine.spawn eng ~name:(Printf.sprintf "client-%d" c) (client_body c)
        : Dsim.Engine.pid)
  done;
  (* Once every client's last command is acked, no new pending can appear
     (late duplicate copies are filtered at receipt), so ask the replica
     loops to wind down and let the run reach quiescence. *)
  ignore
    (Dsim.Engine.spawn eng ~name:"supervisor" (fun _ctx ->
         Dsim.Engine.await_cond (fun () -> !done_clients = clients);
         Tob.stop tob)
      : Dsim.Engine.pid);
  let crashed = ref [] in
  let restarted = ref [] in
  let crash_replica victim =
    if not (Netsim.Async_net.is_crashed net victim) then begin
      Netsim.Async_net.crash net victim;
      Dsim.Engine.kill eng (Tob.process tob victim);
      crashed := victim :: !crashed;
      Dsim.Engine.emit eng ~tag:"rsm" (Printf.sprintf "crashed replica %d" victim)
    end
  in
  let restart_replica victim =
    if Netsim.Async_net.is_crashed net victim then begin
      Netsim.Async_net.restart net victim;
      Tob.restart tob victim;
      restarted := victim :: !restarted;
      Dsim.Engine.emit eng ~tag:"rsm"
        (Printf.sprintf "restarted replica %d" victim)
    end
  in
  let faults =
    {
      engine = eng;
      crash = crash_replica;
      restart = restart_replica;
      partition = (fun groups -> Netsim.Async_net.set_partition net groups);
      heal = (fun () -> Netsim.Async_net.heal net);
      set_policy = (fun p -> policy_ref := p);
    }
  in
  List.iter
    (fun (time, victim) ->
      Dsim.Engine.schedule eng ~delay:time (fun () -> crash_replica victim))
    cfg.crash_schedule;
  List.iter
    (fun (time, victim) ->
      Dsim.Engine.schedule eng ~delay:time (fun () -> restart_replica victim))
    cfg.restart_schedule;
  Option.iter (fun f -> f faults) cfg.inject;
  let engine_outcome = Dsim.Engine.run ~max_events:cfg.max_events eng in
  let live_now = live () in
  let digests = Array.map App.Kv.digest apps in
  let live_digests = List.map (fun p -> digests.(p)) live_now in
  let digests_agree =
    match live_digests with [] -> true | d :: rest -> List.for_all (( = ) d) rest
  in
  {
    engine_outcome;
    virtual_time = Dsim.Engine.now eng;
    submitted = Checker.submitted_count checker;
    acked = !acked;
    delivered = Array.init cfg.n (fun pid -> Tob.delivered_count tob ~pid);
    slots = Log.decided_count log;
    instances = Log.instances_total log;
    messages_sent = Netsim.Async_net.messages_sent net;
    messages_delivered = Netsim.Async_net.messages_delivered net;
    crashed = List.rev !crashed;
    restarted = List.rev !restarted;
    violations = Checker.check checker;
    completeness = Checker.check_complete checker ~live:live_now;
    digests_agree;
    digests;
    latencies = List.rev !latencies;
    trace = Dsim.Engine.trace eng;
  }
