type 'op faults = {
  engine : Dsim.Engine.t;
  crash : int -> unit;
  restart : int -> unit;
  partition : int list list -> unit;
  heal : unit -> unit;
  set_policy :
    ('op Tob.entry Netsim.Async_net.envelope ->
    Netsim.Async_net.policy_verdict) ->
    unit;
  set_store_policy : Store.Policy.t -> unit;
}

(* Everything the runner needs to know about the replicated object: a
   pure sequential step function plus single-line codecs for the WAL
   and snapshots.  Responses cross the interface already encoded — the
   runner stores and reports them, only a spec-aware checker interprets
   them. *)
type ('op, 'st) app = {
  name : string;
  init : 'st;
  apply : 'st -> 'op -> 'st * string;
  op_to_string : 'op -> string;
  op_of_string : string -> 'op;
  state_to_string : 'st -> string;
  state_of_string : string -> 'st;
  digest : 'st -> string;
}

type store_config = {
  policy : Store.Policy.t;
  snapshot_every : int;
  ack_before_fsync : bool;
}

let default_store_config =
  { policy = Store.Policy.none; snapshot_every = 4; ack_before_fsync = false }

type 'op config = {
  backend : Backend.t;
  n : int;
  batch : int;
  seed : int64;
  latency : Netsim.Latency.t;
  crash_schedule : (int * int) list;
  restart_schedule : (int * int) list;
  inject : ('op faults -> unit) option;
  trace_capacity : int option;
  quiet : bool;
  queue : Dsim.Equeue.backend;
  batching : bool;
  ops : 'op list array;
  ack_timeout : int;
  max_events : int;
  store : store_config option;
}

let default_config ~n ~ops =
  {
    backend = Backend.ben_or;
    n;
    batch = 8;
    seed = 1L;
    latency = Netsim.Latency.Uniform (1, 10);
    crash_schedule = [];
    restart_schedule = [];
    inject = None;
    trace_capacity = None;
    quiet = false;
    queue = Dsim.Equeue.Heap;
    batching = true;
    ops;
    ack_timeout = 2_000;
    max_events = 5_000_000;
    store = None;
  }

type 'op hist = {
  h_cid : int;
  h_client : int;
  h_op : 'op;
  h_invoked : int;
  h_resp : string option;
  h_returned : int option;
}

type 'op report = {
  engine_outcome : Dsim.Engine.outcome;
  virtual_time : int;
  submitted : int;
  acked : int;
  delivered : int array;
  slots : int;
  instances : int;
  messages_sent : int;
  messages_delivered : int;
  crashed : int list;
  restarted : int list;
  violations : Checker.violation list;
  completeness : Checker.violation list;
  durability : Checker.violation list;
  digests_agree : bool;
  digests : string array;
  history : 'op hist list;
  latencies : float list;
  trace : Dsim.Trace.t;
  store_stats : Store.Disk.stats array;
  disks : Store.Disk.t array;
}

(* Globally unique command ids: client in the high bits, sequence low. *)
let cid ~client ~k = (client lsl 20) lor k

(* {2 WAL record format}

   One line per record.  A slot is written as its freshly applied
   entries followed by a commit marker; recovery only trusts slots whose
   marker made it to disk, so a batch is committed atomically.

     E <slot> <cid> <encoded command>
     C <slot> <winner>

   A snapshot payload is three lines: covered slot, serialized app
   state, comma-separated delivered cids (the encodings contain no raw
   newlines). *)

type 'op wal_item =
  | W_entry of int * int * 'op
  | W_commit of int * int

let encode_entry ~op_to_string slot (e : _ Tob.entry) =
  Printf.sprintf "E %d %d %s" slot e.Tob.cid (op_to_string e.Tob.op)

let encode_commit slot winner = Printf.sprintf "C %d %d" slot winner

let decode_record ~op_of_string s =
  if String.length s > 0 && s.[0] = 'C' then
    Scanf.sscanf s "C %d %d" (fun slot w -> W_commit (slot, w))
  else
    Scanf.sscanf s "E %d %d %[^\n]" (fun slot cid rest ->
        W_entry (slot, cid, op_of_string rest))

let encode_snapshot ~upto ~state ~cids =
  Printf.sprintf "%d\n%s\n%s" upto state
    (String.concat "," (List.map string_of_int cids))

let decode_snapshot payload =
  match String.split_on_char '\n' payload with
  | upto :: state :: cids :: _ ->
      ( int_of_string upto,
        state,
        if cids = "" then []
        else List.map int_of_string (String.split_on_char ',' cids) )
  | _ -> invalid_arg "Runner: malformed snapshot payload"

type 'op recovered_disk = {
  r_snap : (int * string * int list) option;  (* upto, app state, cids *)
  r_slots : (int * int * 'op Tob.entry list) list;
      (* every committed slot on disk (slot, winner, entries), ascending *)
  r_next_slot : int;  (* end of the contiguous committed prefix *)
  r_cids : int list;  (* delivered set recovery reproduces *)
}

(* Read a disk back the way recovery would: latest snapshot, then the
   WAL, trusting only slots whose commit marker survived, and only up to
   the first gap in slot numbers (a gap means that slot's batch was
   still volatile at the crash, so everything logically after it must be
   re-delivered). *)
let recover_disk ~op_of_string disk =
  let r_snap =
    Option.map
      (fun s -> decode_snapshot s.Store.Disk.payload)
      (Store.Disk.latest_snapshot disk)
  in
  let base_slot = match r_snap with Some (upto, _, _) -> upto | None -> -1 in
  let entries : (int, _ Tob.entry list ref) Hashtbl.t = Hashtbl.create 32 in
  let committed : (int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (r : Store.Disk.record) ->
      match decode_record ~op_of_string r.Store.Disk.data with
      | W_entry (slot, cid, op) when slot > base_slot ->
          let l =
            match Hashtbl.find_opt entries slot with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace entries slot l;
                l
          in
          (* retries may append a slot's records twice; replay is
             idempotent per (slot, cid) *)
          if not (List.exists (fun (e : _ Tob.entry) -> e.Tob.cid = cid) !l)
          then l := !l @ [ { Tob.cid; op } ]
      | W_commit (slot, w) when slot > base_slot ->
          if not (Hashtbl.mem committed slot) then Hashtbl.replace committed slot w
      | W_entry _ | W_commit _ -> ())
    (Store.Disk.read_back disk);
  let entries_of slot =
    match Hashtbl.find_opt entries slot with Some l -> !l | None -> []
  in
  let r_slots =
    Hashtbl.fold (fun slot w acc -> (slot, w, entries_of slot) :: acc) committed []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let rec prefix_end s = if Hashtbl.mem committed s then prefix_end (s + 1) else s in
  let r_next_slot = prefix_end (base_slot + 1) in
  let cid_set = Hashtbl.create 64 in
  (match r_snap with
  | Some (_, _, cids) -> List.iter (fun c -> Hashtbl.replace cid_set c ()) cids
  | None -> ());
  List.iter
    (fun (slot, _, es) ->
      if slot < r_next_slot then
        List.iter
          (fun (e : _ Tob.entry) -> Hashtbl.replace cid_set e.Tob.cid ())
          es)
    r_slots;
  let r_cids =
    Hashtbl.fold (fun c _ acc -> c :: acc) cid_set [] |> List.sort compare
  in
  { r_snap; r_slots; r_next_slot; r_cids }

(* Internal per-command history record; frozen into ['op hist] for the
   report.  The response is recorded at the {e first} application
   anywhere in the cluster — the log is totally ordered and [apply]
   deterministic, so every replica computes the same one. *)
type 'op hrec = {
  hr_client : int;
  hr_op : 'op;
  hr_invoked : int;
  mutable hr_resp : string option;
  mutable hr_returned : int option;
}

let run (type op st) (app : (op, st) app) (cfg : op config) : op report =
  if cfg.n < 1 then invalid_arg "Runner.run: need at least one replica";
  let eng =
    Dsim.Engine.create ~seed:cfg.seed ?trace_capacity:cfg.trace_capacity
      ~tracing:(not cfg.quiet) ~queue:cfg.queue ~batching:cfg.batching ()
  in
  let policy_ref = ref (fun _ -> Netsim.Async_net.Deliver) in
  let net =
    Netsim.Async_net.create eng ~n:cfg.n ~latency:cfg.latency
      ~policy:(fun env -> !policy_ref env)
      ~retain_inbox:false ()
  in
  let live () =
    List.filter
      (fun p -> not (Netsim.Async_net.is_crashed net p))
      (List.init cfg.n Fun.id)
  in
  let log =
    Log.create ~engine:eng ~backend:cfg.backend ~seed:cfg.seed ~live
      ~view:(Log.majority_view ~net ~live) ()
  in
  let apps = Array.make cfg.n app.init in
  let checker = Checker.create () in
  let hists : (int, op hrec) Hashtbl.t = Hashtbl.create 64 in
  let deliver ~pid ~slot (e : op Tob.entry) =
    let st, resp = app.apply apps.(pid) e.Tob.op in
    apps.(pid) <- st;
    (match Hashtbl.find_opt hists e.Tob.cid with
    | Some h when h.hr_resp = None -> h.hr_resp <- Some resp
    | Some _ | None -> ());
    Checker.record_applied checker ~replica:pid ~slot ~cid:e.Tob.cid
  in
  (* --- stable storage --- *)
  let store_on = cfg.store <> None in
  let scfg = Option.value cfg.store ~default:default_store_config in
  let store_policy_ref = ref scfg.policy in
  let disks =
    if store_on then
      Array.init cfg.n (fun pid ->
          Store.Disk.create ~engine:eng ~pid
            ~policy:(fun () -> !store_policy_ref)
            ())
    else [||]
  in
  let durable_cids : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let mark_durable cids =
    List.iter (fun c -> Hashtbl.replace durable_cids c ()) cids
  in
  (* per-replica cids committed to the WAL but not yet known durable *)
  let awaiting = Array.make cfg.n [] in
  let last_seq = Array.make cfg.n (-1) in
  let nonempty_slots = Array.make cfg.n 0 in
  let tob_ref = ref None in
  let the_tob () = Option.get !tob_ref in
  let retry_delay = 17 in
  (* Try to fsync everything unsynced on [pid]'s disk; on a visible IO
     error, keep retrying after the window — a real WAL would not drop a
     committed batch on EIO either. *)
  let rec flush pid epoch0 () =
    let disk = disks.(pid) in
    if Store.Disk.epoch disk = epoch0 && not (Netsim.Async_net.is_crashed net pid)
    then begin
      let batch = awaiting.(pid) in
      match Store.Disk.fsync disk ~k:(fun () -> mark_durable batch) with
      | Ok () -> awaiting.(pid) <- []
      | Error `Io_error ->
          Dsim.Engine.schedule eng ~delay:retry_delay (flush pid epoch0)
    end
  in
  (* Write one finished slot to the WAL: fresh entries, then the commit
     marker, then fsync.  All appends in one attempt happen at the same
     virtual instant, so an IO-error window fails the attempt atomically
     and the whole slot is retried later. *)
  let rec log_slot pid slot fresh epoch0 () =
    let disk = disks.(pid) in
    if Store.Disk.epoch disk = epoch0 && not (Netsim.Async_net.is_crashed net pid)
    then begin
      let append s =
        match Store.Disk.append disk s with
        | Ok seq ->
            last_seq.(pid) <- seq;
            true
        | Error `Io_error -> false
      in
      let winner =
        match Log.decided log ~slot with Some d -> d.Log.winner | None -> pid
      in
      if
        List.for_all
          (fun e -> append (encode_entry ~op_to_string:app.op_to_string slot e))
          fresh
        && append (encode_commit slot winner)
      then begin
        awaiting.(pid) <-
          awaiting.(pid) @ List.map (fun (e : _ Tob.entry) -> e.Tob.cid) fresh;
        if fresh <> [] then flush pid epoch0 ()
      end
      else
        Dsim.Engine.schedule eng ~delay:retry_delay (log_slot pid slot fresh epoch0)
    end
  in
  let take_snapshot pid ~upto =
    let disk = disks.(pid) in
    let state = app.state_to_string apps.(pid) in
    let cids = Tob.delivered_cids (the_tob ()) ~pid in
    let payload = encode_snapshot ~upto ~state ~cids in
    let watermark = last_seq.(pid) in
    let flying = awaiting.(pid) in
    awaiting.(pid) <- [];
    match
      Store.Disk.save_snapshot disk ~upto payload ~k:(fun () ->
          (* compact only once the snapshot is durable, and advertise it
             for state transfer *)
          Store.Disk.compact disk ~upto_seq:watermark;
          mark_durable flying;
          Log.set_floor log ~owner:pid ~upto ~state ~cids)
    with
    | Ok () -> ()
    | Error `Io_error -> awaiting.(pid) <- flying
  in
  let on_slot_applied ~pid ~slot ~fresh =
    if store_on && not (Netsim.Async_net.is_crashed net pid) then begin
      log_slot pid slot fresh (Store.Disk.epoch disks.(pid)) ();
      if fresh <> [] then begin
        nonempty_slots.(pid) <- nonempty_slots.(pid) + 1;
        if
          scfg.snapshot_every > 0
          && nonempty_slots.(pid) mod scfg.snapshot_every = 0
        then take_snapshot pid ~upto:slot
      end
    end
  in
  let on_install ~pid ~owner ~upto ~state ~cids =
    apps.(pid) <- app.state_of_string state;
    Checker.record_installed checker ~replica:pid ~from_replica:owner
      ~upto_slot:upto;
    Dsim.Engine.emitk eng ~tag:"rsm" (fun () ->
        Printf.sprintf "replica %d installed snapshot upto slot %d from %d" pid
          upto owner);
    if store_on then begin
      (* persist the received snapshot so this replica's own next
         recovery starts from it, and drop the WAL it supersedes *)
      let payload = encode_snapshot ~upto ~state ~cids in
      let watermark = last_seq.(pid) in
      match
        Store.Disk.save_snapshot disks.(pid) ~upto payload ~k:(fun () ->
            Store.Disk.compact disks.(pid) ~upto_seq:watermark)
      with
      | Ok () | Error `Io_error -> ()
    end
  in
  let tob =
    Tob.create ~engine:eng ~net ~log ~batch:cfg.batch ~deliver ~on_slot_applied
      ~on_install ()
  in
  tob_ref := Some tob;
  let clients = Array.length cfg.ops in
  let done_clients = ref 0 in
  let acked = ref 0 in
  let latencies = ref [] in
  (* An honest server acks only after the command is durable somewhere;
     [ack_before_fsync] is the deliberately broken mode the durability
     audit exists to catch. *)
  let ack_ready cid =
    Tob.is_delivered tob ~cid
    && ((not store_on) || scfg.ack_before_fsync || Hashtbl.mem durable_cids cid)
  in
  let client_body c ctx =
    List.iteri
      (fun k op ->
        let cid = cid ~client:c ~k in
        Checker.record_submitted checker ~cid;
        let t0 = Dsim.Engine.now eng in
        Hashtbl.replace hists cid
          {
            hr_client = c;
            hr_op = op;
            hr_invoked = t0;
            hr_resp = None;
            hr_returned = None;
          };
        let attempt = ref 0 in
        let rec submit_round () =
          (* rotate over live replicas, starting at a client-specific one *)
          let rec pick j =
            if j >= cfg.n then None
            else
              let r = (c + !attempt + j) mod cfg.n in
              if Netsim.Async_net.is_crashed net r then pick (j + 1) else Some r
          in
          Option.iter
            (fun r -> ignore (Tob.submit tob ~replica:r { Tob.cid; op } : bool))
            (pick 0);
          incr attempt;
          let deadline = Dsim.Engine.now eng + cfg.ack_timeout in
          let rec wait_ack () =
            if ack_ready cid then true
            else if Dsim.Engine.now eng >= deadline then false
            else begin
              Dsim.Engine.sleep ctx 10;
              wait_ack ()
            end
          in
          if not (wait_ack ()) then submit_round ()
        in
        submit_round ();
        Checker.record_acked checker ~cid;
        (Hashtbl.find hists cid).hr_returned <- Some (Dsim.Engine.now eng);
        incr acked;
        latencies := float_of_int (Dsim.Engine.now eng - t0) :: !latencies)
      cfg.ops.(c);
    incr done_clients
  in
  for c = 0 to clients - 1 do
    ignore
      (Dsim.Engine.spawn eng ~name:(Printf.sprintf "client-%d" c) (client_body c)
        : Dsim.Engine.pid)
  done;
  (* Once every client's last command is acked, no new pending can appear
     (late duplicate copies are filtered at receipt), so ask the replica
     loops to wind down and let the run reach quiescence. *)
  ignore
    (Dsim.Engine.spawn eng ~name:"supervisor" (fun _ctx ->
         Dsim.Engine.await_cond (fun () -> !done_clients = clients);
         Tob.stop tob)
      : Dsim.Engine.pid);
  let crashed = ref [] in
  let restarted = ref [] in
  let crash_replica victim =
    if not (Netsim.Async_net.is_crashed net victim) then begin
      Netsim.Async_net.crash net victim;
      Dsim.Engine.kill eng (Tob.process tob victim);
      if store_on then begin
        Tob.crash tob victim;
        Store.Disk.crash disks.(victim);
        awaiting.(victim) <- [];
        (* judge this replica's history by what its disk can reproduce *)
        let rd = recover_disk ~op_of_string:app.op_of_string disks.(victim) in
        Checker.record_crashed checker ~replica:victim
          ~survived:(List.length rd.r_cids);
        if live () = [] then Log.forget_volatile log
      end;
      crashed := victim :: !crashed;
      Dsim.Engine.emitk eng ~tag:"rsm" (fun () ->
          Printf.sprintf "crashed replica %d" victim)
    end
  in
  let restart_replica victim =
    if Netsim.Async_net.is_crashed net victim then begin
      Netsim.Async_net.restart net victim;
      if store_on then begin
        let rd = recover_disk ~op_of_string:app.op_of_string disks.(victim) in
        (match rd.r_snap with
        | Some (upto, state, cids) ->
            apps.(victim) <- app.state_of_string state;
            Log.set_floor log ~owner:victim ~upto ~state ~cids
        | None -> apps.(victim) <- app.init);
        List.iter
          (fun (slot, _w, entries) ->
            if slot < rd.r_next_slot then
              List.iter
                (fun (e : _ Tob.entry) ->
                  apps.(victim) <- fst (app.apply apps.(victim) e.Tob.op))
                entries)
          rd.r_slots;
        (* re-feed the cluster's slot cache with every decision this
           disk committed — after a total outage this is the only place
           decisions can come from *)
        List.iter
          (fun (slot, w, entries) -> Log.reseed log ~slot ~winner:w ~batch:entries)
          rd.r_slots;
        Tob.restart tob
          ~recovery:{ Tob.next_slot = rd.r_next_slot; delivered_cids = rd.r_cids }
          victim;
        Dsim.Engine.emitk eng ~tag:"rsm" (fun () ->
            Printf.sprintf "replica %d recovered %d commands, next slot %d"
              victim (List.length rd.r_cids) rd.r_next_slot)
      end
      else Tob.restart tob victim;
      restarted := victim :: !restarted;
      Dsim.Engine.emitk eng ~tag:"rsm" (fun () ->
          Printf.sprintf "restarted replica %d" victim)
    end
  in
  let faults =
    {
      engine = eng;
      crash = crash_replica;
      restart = restart_replica;
      partition = (fun groups -> Netsim.Async_net.set_partition net groups);
      heal = (fun () -> Netsim.Async_net.heal net);
      set_policy = (fun p -> policy_ref := p);
      set_store_policy = (fun p -> store_policy_ref := p);
    }
  in
  List.iter
    (fun (time, victim) ->
      Dsim.Engine.schedule eng ~delay:time (fun () -> crash_replica victim))
    cfg.crash_schedule;
  List.iter
    (fun (time, victim) ->
      Dsim.Engine.schedule eng ~delay:time (fun () -> restart_replica victim))
    cfg.restart_schedule;
  Option.iter (fun f -> f faults) cfg.inject;
  let engine_outcome = Dsim.Engine.run ~max_events:cfg.max_events eng in
  let live_now = live () in
  let digests = Array.map app.digest apps in
  let live_digests = List.map (fun p -> digests.(p)) live_now in
  let digests_agree =
    match live_digests with [] -> true | d :: rest -> List.for_all (( = ) d) rest
  in
  let history =
    Hashtbl.fold
      (fun cid (h : op hrec) acc ->
        {
          h_cid = cid;
          h_client = h.hr_client;
          h_op = h.hr_op;
          h_invoked = h.hr_invoked;
          h_resp = h.hr_resp;
          h_returned = h.hr_returned;
        }
        :: acc)
      hists []
    |> List.sort (fun a b -> compare (a.h_invoked, a.h_cid) (b.h_invoked, b.h_cid))
  in
  {
    engine_outcome;
    virtual_time = Dsim.Engine.now eng;
    submitted = Checker.submitted_count checker;
    acked = !acked;
    delivered = Array.init cfg.n (fun pid -> Tob.delivered_count tob ~pid);
    slots = Log.decided_count log;
    instances = Log.instances_total log;
    messages_sent = Netsim.Async_net.messages_sent net;
    messages_delivered = Netsim.Async_net.messages_delivered net;
    crashed = List.rev !crashed;
    restarted = List.rev !restarted;
    violations = Checker.check checker;
    completeness = Checker.check_complete checker ~live:live_now;
    durability = Checker.check_durable checker ~live:live_now;
    digests_agree;
    digests;
    history;
    latencies = List.rev !latencies;
    trace = Dsim.Engine.trace eng;
    store_stats = Array.map Store.Disk.stats disks;
    disks;
  }
