(** The replicated log: a sequence of numbered consensus slots.

    Each slot is one multivalued consensus instance — {e which replica's
    batch fills this slot?} — reduced to a series of binary instances of
    the pluggable {!Backend} by the classic candidate loop: candidates
    are scanned in ascending proposer order and the first whose binary
    instance decides [true] wins.  Replica [i]'s input to candidate
    [k]'s instance is "does [i] prefer [k]?"; a replica prefers its own
    batch when it brought one and the slot opener's otherwise, so the
    backends see genuinely split inputs whenever proposals race.  If
    every candidate's instance decides [false] — which validity permits
    on split inputs — a second, unanimous pass over the first non-empty
    proposer decides by the backends' convergence property, mirroring
    the retry round of binary-to-multivalued reductions.

    A slot plays the role of [CS[sn]] in the TO-broadcast reduction
    (SNIPPETS.md, snippet 3): {!propose} registers a replica's batch, a
    per-slot decider process computes the outcome once every live
    replica has proposed (crashed replicas drop out of the expected
    set), and {!decided} exposes the cached result to everyone —
    restoring uniform delivery even when the original command broadcast
    was cut short by a crash. *)

type 'cmd slot_decision = {
  winner : int;  (** proposer whose batch fills the slot *)
  batch : 'cmd list;  (** the winning batch *)
  instances : int;  (** binary backend instances this slot consumed *)
  duration : int;
      (** virtual time the instances took; the decider holds the slot
          that long, so consensus latency is visible to the outer run *)
}

type 'cmd t

val create :
  engine:Dsim.Engine.t ->
  backend:Backend.t ->
  seed:int64 ->
  live:(unit -> int list) ->
  ?view:(unit -> int list option) ->
  unit ->
  'cmd t
(** [live] names the replicas a slot must still wait for; it is polled
    while a slot gathers proposals, so crashes release waiting slots.

    [view] is the quorum gate: a slot's decider only advances when it
    returns [Some members] (then waits for those members' proposals);
    [None] stalls the slot — how a majority-less network partition
    blocks consensus-internal progress until heal.  Default:
    [fun () -> Some (live ())], the pre-partition-aware behaviour. *)

val majority_view :
  net:'msg Netsim.Async_net.t -> live:(unit -> int list) -> unit -> int list option
(** The standard [view] implementation: [Some (live ())] while the
    network is whole; under a partition, the cut side holding a strict
    majority of the live replicas (or [None], stalling every slot,
    when no side does). *)

val propose : 'cmd t -> slot:int -> pid:int -> batch:'cmd list -> unit
(** Register [pid]'s proposal.  The first proposal opens the slot (its
    sender becomes the opener) and spawns the slot's decider process.  A
    replica proposes at most once per slot; repeats are ignored. *)

val opened : 'cmd t -> slot:int -> bool
val opener : 'cmd t -> slot:int -> int option
val decided : 'cmd t -> slot:int -> 'cmd slot_decision option
val decided_count : 'cmd t -> int

val instances_total : 'cmd t -> int
(** Binary consensus instances run so far — the log's cost metric
    (batching amortizes it across commands). *)

(** {1 Stable-storage hooks}

    The slot cache models what live peers collectively remember, which
    is why a recovering replica can normally catch up by replaying
    decisions.  Honest crash–recovery needs two corrections: the cache
    must be wiped when {e nobody} is left alive (total outage), and
    recovering replicas must be able to re-feed it from their durable
    WALs and offer snapshot-based state transfer to peers that fell
    behind a compaction point. *)

val forget_volatile : 'cmd t -> unit
(** Drop every cached slot (and the snapshot floor).  Call when the
    last live replica crashes; decisions must then be reseeded from
    stable storage as replicas recover. *)

val reseed : 'cmd t -> slot:int -> winner:int -> batch:'cmd list -> unit
(** Re-install a decision recovered from a replica's WAL.  No-op if the
    slot is already cached (first recovery wins; all WALs agree by slot
    agreement).  Reseeded decisions cost no backend instances. *)

type floor = {
  owner : int;  (** replica offering the snapshot (the state donor) *)
  upto : int;  (** highest slot the snapshot covers *)
  state : string;  (** opaque app snapshot payload *)
  cids : int list;  (** every command id delivered up to [upto] *)
}

val set_floor :
  'cmd t -> owner:int -> upto:int -> state:string -> cids:int list -> unit
(** Advertise a durable snapshot for state transfer.  Kept only if it
    covers more than the current floor.  A replica whose next slot is at
    or below the floor cannot replay slot-by-slot (the donor may have
    compacted those slots away) and installs the snapshot instead. *)

val floor : 'cmd t -> floor option
