module Engine = Dsim.Engine
module Sync_net = Netsim.Sync_net
module Int_monitor = Consensus.Monitor.Make (Consensus.Objects.Int_value)

type mode = Decomposed | Monolithic
type algorithm = King | Queen

type config = {
  n : int;
  faults : int;
  byzantine : int list;
  strategy : int Sync_net.strategy;
  seed : int64;
  inputs : int array;
  mode : mode;
  algorithm : algorithm;
  oracle : Dsim.Engine.oracle option;
}

let default_config ~n ~inputs =
  let faults = (n - 1) / 3 in
  {
    n;
    faults;
    byzantine = List.init faults Fun.id;
    strategy = Strategies.camp_splitter;
    seed = 1L;
    inputs;
    mode = Decomposed;
    algorithm = King;
    oracle = None;
  }

let default_queen_config ~n ~inputs =
  let faults = (n - 1) / 4 in
  {
    (default_config ~n ~inputs) with
    faults;
    byzantine = List.init faults Fun.id;
    algorithm = Queen;
  }

type report = {
  final_decisions : (int * int) list;
  first_commits : (int * int * int) list;
  template_rounds : int;
  sync_rounds : int;
  messages : int;
  engine_outcome : Engine.outcome;
  process_failures : (int * exn) list;
  violations : Consensus.Monitor.violation list;
  first_commit_agreement_broken : bool;
}

let run config =
  if Array.length config.inputs <> config.n then
    invalid_arg "Phase_king.Runner.run: inputs length must equal n";
  (match config.algorithm with
  | King ->
      if 3 * config.faults >= config.n then
        invalid_arg "Phase_king.Runner.run: requires 3t < n"
  | Queen ->
      if 4 * config.faults >= config.n then
        invalid_arg "Phase_king.Runner.run: requires 4t < n");
  if List.length config.byzantine > config.faults then
    invalid_arg "Phase_king.Runner.run: more Byzantine ids than t";
  let eng = Engine.create ~seed:config.seed () in
  Engine.set_oracle eng config.oracle;
  let net =
    Sync_net.create eng ~n:config.n ~byzantine:config.byzantine
      ~strategy:config.strategy
  in
  let monitor = Int_monitor.create () in
  let finals = ref [] in
  let commits = ref [] in
  let correct =
    List.filter (fun i -> not (Sync_net.is_byzantine net i))
      (List.init config.n Fun.id)
  in
  let pids = Hashtbl.create 8 in
  List.iter
    (fun i ->
      let input = config.inputs.(i) in
      if input <> 0 && input <> 1 then
        invalid_arg "Phase_king.Runner.run: inputs must be binary";
      Int_monitor.record_initial monitor ~pid:i input;
      let body _ectx =
        let pctx =
          match config.algorithm with
          | King -> Protocol.make_ctx ~net ~me:i ~faults:config.faults
          | Queen -> Queen.make_ctx ~net ~me:i ~faults:config.faults
        in
        let observer = Int_monitor.observer monitor ~pid:i in
        let result =
          match (config.algorithm, config.mode) with
          | King, Decomposed -> Protocol.Consensus_decomposed.run ~observer pctx input
          | King, Monolithic -> Protocol.monolithic_run ~observer pctx input
          | Queen, Decomposed -> Queen.Consensus_decomposed.run ~observer pctx input
          | Queen, Monolithic -> Queen.monolithic_run ~observer pctx input
        in
        finals := (i, result.Consensus.Template.final_preference) :: !finals;
        match result.Consensus.Template.first_commit with
        | Some (v, m) -> commits := (i, v, m) :: !commits
        | None -> ()
      in
      Hashtbl.replace pids i
        (Engine.spawn eng ~name:(Printf.sprintf "pk-%d" i) body))
    correct;
  let engine_outcome = Engine.run eng in
  let process_failures =
    List.filter_map
      (fun i ->
        match Engine.process_failed eng (Hashtbl.find pids i) with
        | Some exn -> Some (i, exn)
        | None -> None)
      correct
  in
  let violations =
    Int_monitor.check_ac ~validity:false monitor
    @
    (* Agreement + validity over the final decisions. *)
    let final_list = !finals in
    let agreement =
      match final_list with
      | [] -> []
      | (p0, v0) :: rest ->
          List.filter_map
            (fun (p, v) ->
              if v = v0 then None
              else
                Some
                  {
                    Consensus.Monitor.round = None;
                    property = "agreement";
                    message =
                      Printf.sprintf "p%d decided %d but p%d decided %d" p0 v0 p v;
                  })
            rest
    in
    let validity =
      let inputs = List.map (fun i -> config.inputs.(i)) correct in
      List.filter_map
        (fun (p, v) ->
          if List.mem v inputs then None
          else
            Some
              {
                Consensus.Monitor.round = None;
                property = "consensus-validity";
                message =
                  Printf.sprintf "p%d decided %d, not a correct processor's input"
                    p v;
              })
        final_list
    in
    agreement @ validity
  in
  let first_commit_agreement_broken =
    match !commits with
    | [] -> false
    | (_, v0, _) :: rest -> List.exists (fun (_, v, _) -> v <> v0) rest
  in
  let template_rounds = config.faults + 1 in
  let correct_count = List.length correct in
  {
    final_decisions = List.rev !finals;
    first_commits = List.rev !commits;
    template_rounds;
    sync_rounds = Sync_net.current_round net;
    messages =
      (template_rounds
      *
      match config.algorithm with
      | King -> Protocol.messages_per_template_round ~n:config.n ~correct:correct_count
      | Queen -> Queen.messages_per_template_round ~n:config.n ~correct:correct_count);
    engine_outcome;
    process_failures;
    violations;
    first_commit_agreement_broken;
  }
