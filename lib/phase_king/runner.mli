(** Whole-system simulation harness for Phase-King runs. *)

type mode = Decomposed | Monolithic

(** Which royal algorithm to run: King needs [3t < n] and three lock-step
    rounds per phase; Queen needs [4t < n] and two. *)
type algorithm = King | Queen

type config = {
  n : int;
  faults : int;  (** the resilience parameter t *)
  byzantine : int list;  (** ids controlled by the strategy, at most t *)
  strategy : int Netsim.Sync_net.strategy;
  seed : int64;
  inputs : int array;
      (** length [n]; only the correct processors' slots are read and they
          must be binary *)
  mode : mode;
  algorithm : algorithm;
  oracle : Dsim.Engine.oracle option;
      (** installed on the engine before any process spawns; [Some _]
          hands same-tick event order to a schedule explorer (see
          [lib/mcheck]).  [None] (the default) keeps the seeded
          behaviour. *)
}

val default_config : n:int -> inputs:int array -> config
(** King with [t = (n-1)/3], Byzantine ids [0 .. t-1] running
    {!Strategies.camp_splitter}, seed 1, decomposed mode. *)

val default_queen_config : n:int -> inputs:int array -> config
(** Queen with [t = (n-1)/4], otherwise as {!default_config}. *)

type report = {
  final_decisions : (int * int) list;
      (** (correct pid, preference after t+1 rounds) — BGP's decisions *)
  first_commits : (int * int * int) list;
      (** (correct pid, value, round) — the paper-template rule *)
  template_rounds : int;  (** always [faults + 1] *)
  sync_rounds : int;  (** lock-step rounds consumed *)
  messages : int;  (** analytic count, see {!Protocol.messages_per_template_round} *)
  engine_outcome : Dsim.Engine.outcome;
  process_failures : (int * exn) list;
  violations : Consensus.Monitor.violation list;
      (** AC-object properties (coherence, convergence; validity is off —
          the [2] sentinel is a legal AC output here) + agreement/validity
          over the final decisions *)
  first_commit_agreement_broken : bool;
      (** true when the first-commit rule would have produced disagreement
          — the counterexample signal *)
}

val run : config -> report
