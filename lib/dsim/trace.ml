type event = { time : int; pid : int option; tag : string; detail : string }

type t = {
  mutable rev_events : event list;
  mutable length : int;
  capacity : int option;
}

let create ?capacity () = { rev_events = []; length = 0; capacity }

let emit t ~time ?pid ~tag detail =
  let ev = { time; pid; tag; detail } in
  t.rev_events <- ev :: t.rev_events;
  t.length <- t.length + 1;
  match t.capacity with
  | Some cap when t.length > 2 * cap ->
      (* Amortized truncation: keep only the newest [cap] events. *)
      let rec take n acc = function
        | [] -> acc
        | _ when n = 0 -> acc
        | ev :: rest -> take (n - 1) (ev :: acc) rest
      in
      t.rev_events <- List.rev (take cap [] t.rev_events);
      t.length <- cap
  | Some _ | None -> ()

let events t = List.rev t.rev_events

let with_tag t tag =
  List.rev (List.filter (fun ev -> String.equal ev.tag tag) t.rev_events)

let count t tag =
  List.fold_left
    (fun acc ev -> if String.equal ev.tag tag then acc + 1 else acc)
    0 t.rev_events

let length t = t.length

let last t k =
  let rec take n acc = function
    | [] -> acc
    | _ when n <= 0 -> acc
    | ev :: rest -> take (n - 1) (ev :: acc) rest
  in
  take k [] t.rev_events

let pp_event ppf ev =
  let pid = match ev.pid with None -> "-" | Some p -> string_of_int p in
  Format.fprintf ppf "t=%-8d pid=%-4s %-12s %s" ev.time pid ev.tag ev.detail

let dump ppf t =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) (events t)
