(** An array-backed binary min-heap, specialized for the event queue.

    Elements are ordered by an integer key (the virtual timestamp) with a
    monotonically increasing sequence number as a tiebreaker, so two events
    scheduled for the same instant fire in insertion order — a requirement
    for deterministic simulation.

    The storage is struct-of-arrays (parallel [keys]/[seqs]/[vals]
    arrays); [add] and [pop_value] allocate nothing once the arrays are
    warm.  The sift order is bit-identical to the classic boxed-entry
    implementation, so the tie sets {!fold_min_indices} enumerates (and
    the choice oracle observes) are unchanged. *)

type t

val create : unit -> t
(** An empty heap. *)

val length : t -> int
(** Number of queued elements. *)

val is_empty : t -> bool

val add : t -> key:int -> int -> unit
(** [add t ~key v] inserts [v] with priority [key]. Insertion order breaks
    ties. *)

val pop : t -> (int * int) option
(** Remove and return the minimum-key element, or [None] when empty. *)

val pop_value : t -> int
(** Zero-allocation {!pop}: remove and return just the minimum element's
    payload.  The caller must know the heap is non-empty (check
    {!is_empty}) and can read the key beforehand with {!peek_key_fast}. *)

val peek_key : t -> int option
(** The smallest key currently queued, without removing it. *)

val peek_key_fast : t -> int
(** Unchecked {!peek_key}: the smallest key, assuming the heap is
    non-empty.  Undefined (may raise [Invalid_argument]) when empty. *)

val pop_run : t -> buf:int array ref -> dummy:int -> int
(** Pop {e every} element tied at the minimum key into [buf] (grown with
    [dummy] padding as needed), in insertion (seq) order — exactly what
    repeated {!pop}s would produce.  Returns how many were popped
    (0 when empty).  This is the same-tick batching primitive: one call
    drains a whole tick. *)

val min_key_count : t -> int
(** How many queued elements are tied for the smallest key (0 when
    empty).  O(ties), not O(size). *)

val min_key_values : t -> int list
(** The elements tied for the smallest key, in insertion (seq) order —
    the order {!pop} would surface them.  Does not remove anything. *)

val min_key_seqs : t -> int list
(** The insertion sequence numbers of the elements tied for the smallest
    key, in insertion order — positionally parallel to
    {!min_key_values}.  Seqs are assigned densely from 0 by {!add}
    (reset by {!clear}), so they give each queued element a stable
    identity a schedule explorer can track across consultations. *)

val last_seq : t -> int
(** The sequence number assigned by the most recent {!add} (-1 before
    the first add or after {!clear}). *)

val pop_min_nth : t -> int -> (int * int) option
(** [pop_min_nth t i] removes and returns the [i]-th element (insertion
    order, 0-based) among those tied for the smallest key.
    [pop_min_nth t 0] is {!pop}.  [None] when the heap is empty.
    @raise Invalid_argument when [i] is outside the tied range. *)

val fold_min_indices : t -> 'b -> ('b -> int -> 'b) -> 'b
(** Fold over the array indices of the elements tied for the smallest
    key, in heap-array order (not seq order).  Exposed for the
    equivalence tests; ordinary callers want {!min_key_values}. *)

val clear : t -> unit
(** Drop all elements and reset the tiebreak sequence, keeping the
    backing storage for reuse — a cleared heap is observationally a
    fresh one, without the regrowth ramp. *)
