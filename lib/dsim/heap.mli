(** A classic array-backed binary min-heap, specialized for the event queue.

    Elements are ordered by an integer key (the virtual timestamp) with a
    monotonically increasing sequence number as a tiebreaker, so two events
    scheduled for the same instant fire in insertion order — a requirement
    for deterministic simulation. *)

type 'a t

val create : unit -> 'a t
(** An empty heap. *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> unit
(** [add t ~key v] inserts [v] with priority [key]. Insertion order breaks
    ties. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-key element, or [None] when empty. *)

val peek_key : 'a t -> int option
(** The smallest key currently queued, without removing it. *)

val min_key_count : 'a t -> int
(** How many queued elements are tied for the smallest key (0 when
    empty).  O(ties), not O(size). *)

val min_key_values : 'a t -> 'a list
(** The elements tied for the smallest key, in insertion (seq) order —
    the order {!pop} would surface them.  Does not remove anything. *)

val pop_min_nth : 'a t -> int -> (int * 'a) option
(** [pop_min_nth t i] removes and returns the [i]-th element (insertion
    order, 0-based) among those tied for the smallest key.
    [pop_min_nth t 0] is {!pop}.  [None] when the heap is empty.
    @raise Invalid_argument when [i] is outside the tied range. *)

val clear : 'a t -> unit
(** Drop all elements and reset the tiebreak sequence, keeping the
    backing storage for reuse — a cleared heap is observationally a
    fresh one, without the regrowth ramp. *)
