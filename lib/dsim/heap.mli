(** A classic array-backed binary min-heap, specialized for the event queue.

    Elements are ordered by an integer key (the virtual timestamp) with a
    monotonically increasing sequence number as a tiebreaker, so two events
    scheduled for the same instant fire in insertion order — a requirement
    for deterministic simulation. *)

type 'a t

val create : unit -> 'a t
(** An empty heap. *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> 'a -> unit
(** [add t ~key v] inserts [v] with priority [key]. Insertion order breaks
    ties. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-key element, or [None] when empty. *)

val peek_key : 'a t -> int option
(** The smallest key currently queued, without removing it. *)

val clear : 'a t -> unit
(** Drop all elements and reset the tiebreak sequence, keeping the
    backing storage for reuse — a cleared heap is observationally a
    fresh one, without the regrowth ramp. *)
