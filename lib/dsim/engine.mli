(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  Simulated
    processes are written in direct style as ordinary OCaml functions; they
    suspend through effects ({!await}, {!sleep}, {!yield}) and the engine
    resumes them when their wake-up condition is met.  All scheduling is
    deterministic: same seed, same program — same trace.

    A process body receives a {!ctx} carrying its pid and a private
    random-number stream split off the engine seed.  {!await}, {!sleep} and
    {!yield} may only be called from inside a process body; calling them
    elsewhere raises [Not_in_process]. *)

type t
type pid = int

type ctx = {
  engine : t;
  pid : pid;
  rng : Rng.t;  (** process-private deterministic stream *)
}

exception Killed
(** Raised inside a process when it is killed while suspended.  Protocol
    code must not catch it (or must re-raise). *)

exception Not_in_process
(** Raised when a suspension primitive is used outside a process body. *)

(** Why {!run} returned. *)
type outcome =
  | Quiescent  (** no events left and no process blocked *)
  | Deadlock of pid list  (** no events left but these pids still blocked *)
  | Time_limit  (** virtual [until] reached *)
  | Event_limit  (** [max_events] executed *)

val create : ?seed:int64 -> ?trace_capacity:int -> ?tracing:bool -> unit -> t
(** A fresh engine at time 0.  Default seed is 1.  [tracing:false]
    creates a {e quiet} engine: every {!emit}/{!emitk} is a no-op, so
    the message hot path allocates no trace strings at all.  Tracing
    only affects what the trace retains — never scheduling, RNG streams
    or outcomes — so a quiet run is bit-identical to a traced one. *)

val now : t -> int
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine-level stream (used to split process streams). *)

val trace : t -> Trace.t
(** The engine's trace; emit protocol events through {!emit}. *)

val emit : t -> ?pid:pid -> tag:string -> string -> unit
(** Append a trace event stamped with the current virtual time.  Dropped
    without retaining anything when tracing is disabled; prefer {!emitk}
    whenever building the detail string allocates. *)

val emitk : t -> ?pid:pid -> tag:string -> (unit -> string) -> unit
(** Lazy {!emit}: the detail thunk is forced only when tracing is
    enabled, so disabled traces cost zero allocations on hot paths.
    The thunk must be pure — it is never forced on quiet engines. *)

val tracing : t -> bool
(** Whether {!emit}/{!emitk} currently append to the trace. *)

val set_tracing : t -> bool -> unit
(** Flip trace emission; already-retained events are kept either way. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run a callback [delay] time units from now (same tick if [delay = 0]).
    @raise Invalid_argument if [delay < 0]. *)

val spawn : t -> ?name:string -> (ctx -> unit) -> pid
(** Register a new process; its body starts at the current time (the spawn
    event is queued, not run inline). *)

val kill : t -> pid -> unit
(** Terminate a process.  If it is suspended, its continuation is
    discontinued with {!Killed}; it will never run again. *)

val alive : t -> pid -> bool
(** True while the process has neither finished nor been killed. *)

val name : t -> pid -> string
(** Diagnostic name given at spawn time (defaults to ["p<pid>"]). *)

val process_failed : t -> pid -> exn option
(** The exception that terminated the process abnormally, if any ([Killed]
    does not count as a failure). *)

val run : ?until:int -> ?max_events:int -> t -> outcome
(** Drive the simulation until quiescence, deadlock, the virtual-time limit
    or the event budget.  Can be called repeatedly (e.g. after scheduling
    more events). *)

val run_quiet : ?until:int -> ?max_events:int -> t -> outcome
(** {!run} with tracing disabled for the duration of the call (the
    previous flag is restored afterwards) — the profile campaigns and
    benches use when nobody will read the trace. *)

(** {1 Suspension primitives — call only inside a process body} *)

val await : (unit -> 'a option) -> 'a
(** [await poll] suspends until [poll ()] returns [Some v], then evaluates
    to [v].  [poll] must be side-effect-free; it may be called many times.
    If the condition already holds the process continues immediately
    without yielding. *)

val await_cond : (unit -> bool) -> unit
(** [await_cond p] is [await (fun () -> if p () then Some () else None)]. *)

val sleep : ctx -> int -> unit
(** Suspend for a fixed amount of virtual time. *)

val yield : ctx -> unit
(** Suspend until the current tick's already-queued events have run. *)
