(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  Simulated
    processes are written in direct style as ordinary OCaml functions; they
    suspend through effects ({!await}, {!sleep}, {!yield}) and the engine
    resumes them when their wake-up condition is met.  All scheduling is
    deterministic: same seed, same program — same trace.

    A process body receives a {!ctx} carrying its pid and a private
    random-number stream split off the engine seed.  {!await}, {!sleep} and
    {!yield} may only be called from inside a process body; calling them
    elsewhere raises [Not_in_process]. *)

type t
type pid = int

type ctx = {
  engine : t;
  pid : pid;
  rng : Rng.t;  (** process-private deterministic stream *)
}

exception Killed
(** Raised inside a process when it is killed while suspended.  Protocol
    code must not catch it (or must re-raise). *)

exception Not_in_process
(** Raised when a suspension primitive is used outside a process body. *)

(** Why {!run} returned. *)
type outcome =
  | Quiescent  (** no events left and no process blocked *)
  | Deadlock of pid list  (** no events left but these pids still blocked *)
  | Time_limit  (** virtual [until] reached *)
  | Event_limit  (** [max_events] executed *)

val create :
  ?seed:int64 ->
  ?trace_capacity:int ->
  ?tracing:bool ->
  ?queue:Equeue.backend ->
  ?batching:bool ->
  unit ->
  t
(** A fresh engine at time 0.  Default seed is 1.  [tracing:false]
    creates a {e quiet} engine: every {!emit}/{!emitk} is a no-op, so
    the message hot path allocates no trace strings at all.  Tracing
    only affects what the trace retains — never scheduling, RNG streams
    or outcomes — so a quiet run is bit-identical to a traced one.

    [queue] picks the event-queue backend (default [Equeue.Heap]; the
    timing wheel wins on heavy-timer workloads).  [batching] (default
    on) lets {!run} drain a whole same-tick tie set in one queue
    operation when no oracle is installed.  Neither knob changes
    behaviour: seeded runs are byte-identical across all four
    combinations, and an installed oracle always sees per-event
    granularity regardless of [batching]. *)

val queue_backend : t -> Equeue.backend
(** Which event-queue backend this engine was created with. *)

val batching : t -> bool
(** Whether same-tick batch draining is enabled (see {!create}). *)

val set_batching : t -> bool -> unit
(** Flip batch draining.  Flipping it mid-[run] while a drained tick is
    still executing is not supported; flip between runs. *)

val now : t -> int
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine-level stream (used to split process streams). *)

val trace : t -> Trace.t
(** The engine's trace; emit protocol events through {!emit}. *)

val emit : t -> ?pid:pid -> tag:string -> string -> unit
(** Append a trace event stamped with the current virtual time.  Dropped
    without retaining anything when tracing is disabled; prefer {!emitk}
    whenever building the detail string allocates. *)

val emitk : t -> ?pid:pid -> tag:string -> (unit -> string) -> unit
(** Lazy {!emit}: the detail thunk is forced only when tracing is
    enabled, so disabled traces cost zero allocations on hot paths.
    The thunk must be pure — it is never forced on quiet engines. *)

val tracing : t -> bool
(** Whether {!emit}/{!emitk} currently append to the trace. *)

val set_tracing : t -> bool -> unit
(** Flip trace emission; already-retained events are kept either way. *)

val schedule : t -> ?owner:pid -> delay:int -> (unit -> unit) -> unit
(** Run a callback [delay] time units from now (same tick if [delay = 0]).
    [owner] is a commutativity label for schedule exploration: pass
    [Some pid] only when the callback mutates state local to [pid] alone
    (a message delivery into [pid]'s inbox/handler).  Events without an
    owner are never treated as commutative.  It has no effect on normal
    (oracle-free) runs.
    @raise Invalid_argument if [delay < 0]. *)

(** {1 Flat events — allocation-free scheduling for hot paths}

    Internally every queued event is a packed int, not a boxed closure:
    a {e kind} (dispatch-table index), an owner pid and a 30-bit
    argument.  {!schedule} is the generic path — it parks its thunk in
    an arena slot and packs the slot index.  Layers with a hot event
    shape (network delivery, timer fire, heartbeat probe) register a
    kind once and then schedule pure ints, so steady-state event traffic
    allocates nothing at all. *)

val register_kind : t -> (int -> unit) -> int
(** [register_kind t handler] allocates a new event kind on [t] and
    returns its id; when a matching event fires, [handler arg] runs with
    the 30-bit argument given at {!schedule_kind} time.  Kinds are
    per-engine and never freed (at most 1024 per engine).
    @raise Invalid_argument when the kind space is exhausted. *)

val schedule_kind : t -> owner:pid -> delay:int -> kind:int -> int -> unit
(** [schedule_kind t ~owner ~delay ~kind arg] queues a flat event:
    [kind]'s registered handler runs with [arg], [delay] units from now.
    [owner] carries the same commutativity label as {!schedule}'s
    [?owner], with [-1] meaning {e no owner} (avoiding the option
    allocation on hot paths); pids must fit 23 bits and [arg] must fit
    30 bits (unchecked).  Allocates nothing.
    @raise Invalid_argument if [delay < 0]. *)

(** {1 Choice oracle — systematic schedule exploration}

    By default every nondeterministic-looking decision in the engine is
    resolved deterministically (FIFO within a tick, seeded RNG).  A choice
    oracle takes those decisions over: each time more than one event is
    enabled at the current tick, the engine asks the oracle which fires
    first.  Layers above (e.g. {!Netsim}'s network) route their own
    decisions — per-message delay, drop-or-deliver — through the same
    oracle under different domains.  [lib/mcheck] drives this to enumerate
    executions instead of sampling them. *)

type choice = {
  c_domain : string;
      (** what is being decided: ["sched"] = which tied event fires first;
          other layers add their own (["net.delay"], ["net.fault"]) *)
  c_arity : int;
      (** number of alternatives; 0 means open-ended (any [int >= 0]) *)
  c_owners : int option array;
      (** for ["sched"]: the tied events' owner labels, in the order
          {!pop_min_nth} indexes them; empty for other domains *)
  c_time : int;
      (** for ["sched"]: the virtual time the tied events fire at — two
          consultations race-analyse against each other only when their
          times are equal; 0 for other domains *)
  c_seqs : int array;
      (** for ["sched"]: the tied events' queue insertion seqs, parallel
          to [c_owners].  Seqs are dense per run and deterministic given
          the oracle's answers, so they identify an event across the
          consultations of one execution; empty for other domains *)
  c_creators : int array;
      (** for ["sched"]: [c_creators.(i)] is the seq of the event whose
          execution scheduled tied event [i], or [-1] when it was
          scheduled during setup (spawns, initial sends).  Following
          these edges transitively yields the creation-chain
          happens-before relation DPOR needs; empty for other domains *)
}

type oracle = { choose : choice -> int }
(** [choose c] returns the selected alternative: for ["sched"] an index
    into the tied group ([0 <= i < c_arity]); for other domains whatever
    the consulting layer documents.  [choose] for ["sched"] runs {e
    outside} any process fiber, so it may raise to abort the run; other
    domains are consulted from inside fibers, where an exception is
    recorded as that process's failure instead of propagating. *)

val set_oracle : t -> oracle option -> unit
(** Install (or remove) the choice oracle.  [None] — the default —
    restores the engine's native FIFO-within-tick behaviour exactly. *)

val oracle : t -> oracle option
(** The installed oracle, for layers that route their own choices. *)

val spawn : t -> ?name:string -> (ctx -> unit) -> pid
(** Register a new process; its body starts at the current time (the spawn
    event is queued, not run inline). *)

val kill : t -> pid -> unit
(** Terminate a process.  If it is suspended, its continuation is
    discontinued with {!Killed}; it will never run again. *)

val alive : t -> pid -> bool
(** True while the process has neither finished nor been killed. *)

val name : t -> pid -> string
(** Diagnostic name given at spawn time (defaults to ["p<pid>"]). *)

val process_failed : t -> pid -> exn option
(** The exception that terminated the process abnormally, if any ([Killed]
    does not count as a failure). *)

val run : ?until:int -> ?max_events:int -> t -> outcome
(** Drive the simulation until quiescence, deadlock, the virtual-time limit
    or the event budget.  Can be called repeatedly (e.g. after scheduling
    more events). *)

val run_quiet : ?until:int -> ?max_events:int -> t -> outcome
(** {!run} with tracing disabled for the duration of the call (the
    previous flag is restored afterwards) — the profile campaigns and
    benches use when nobody will read the trace. *)

(** {1 Suspension primitives — call only inside a process body} *)

val await : (unit -> 'a option) -> 'a
(** [await poll] suspends until [poll ()] returns [Some v], then evaluates
    to [v].  [poll] must be side-effect-free; it may be called many times.
    If the condition already holds the process continues immediately
    without yielding. *)

val await_cond : (unit -> bool) -> unit
(** [await_cond p] is [await (fun () -> if p () then Some () else None)]. *)

val sleep : ctx -> int -> unit
(** Suspend for a fixed amount of virtual time. *)

val yield : ctx -> unit
(** Suspend until the current tick's already-queued events have run. *)
