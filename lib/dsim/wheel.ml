(* Hierarchical timing wheel (calendar queue) — drop-in alternative to
   {!Heap} for the engine's event queue.

   Eight levels of 256 slots each cover the full 63-bit key space: an
   entry whose key first differs from the wheel's current time [cur] in
   byte [l] lives at level [l], slot [(key lsr (8*l)) land 255].  Adds
   and pops are O(1) amortized: popping advances [cur] through level-0
   slots (each level-0 slot holds exactly one key, so the slot's list is
   the whole same-key tie set) and, when a 256-key window is exhausted,
   cascades the next occupied higher-level slot down one level.

   Determinism contract: entries are appended at slot tails, and a slot
   only ever receives entries while it is the unique destination for its
   key range (a key's placement never changes until the slot is opened
   by a cascade, and cascades splice lists in order), so every slot list
   is in ascending seq order.  The minimum slot's list is therefore the
   same-key tie set in insertion order — exactly what {!Heap}'s
   [min_key_values]/[pop_min_nth] produce, so a choice oracle sees
   identical tie sets on either backend.

   Unlike the heap, the wheel is monotone: adding a key below the
   current minimum floor ([time] below) is a programming error.  The
   engine never does this — events are scheduled with non-negative
   delays — and {!add} raises [Invalid_argument] if violated. *)

let levels = 8
let slots = 256 (* per level; 8 levels x 8 bits cover the 63-bit key space *)
let words = 8 (* 32-bit occupancy words per level: 256 / 32 *)

type t = {
  (* entry pool, struct-of-arrays; [nxt] threads slot lists and the
     freelist (-1 terminates) *)
  mutable key : int array;
  mutable seq : int array;
  mutable vl : int array;
  mutable nxt : int array;
  mutable free_head : int;
  mutable pool_top : int;  (* high-water mark of ever-used pool slots *)
  head : int array;  (* levels * slots, entry index or -1 *)
  tail : int array;
  occ : int array;  (* levels * words bitmap of non-empty slots *)
  mutable cur : int;  (* wheel time: key of the current minimum floor *)
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  {
    key = [||];
    seq = [||];
    vl = [||];
    nxt = [||];
    free_head = -1;
    pool_top = 0;
    head = Array.make (levels * slots) (-1);
    tail = Array.make (levels * slots) (-1);
    occ = Array.make (levels * words) 0;
    cur = 0;
    size = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let time t = t.cur

(* --------------------------------------------------------- bit tricks -- *)

let ntz32 x =
  let x = x land (-x) in
  let n = ref 0 in
  let x = ref x in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then n := !n + 1;
  !n

(* First occupied slot index >= [from] at [level], or -1. *)
let next_occupied t ~level ~from =
  if from >= slots then -1
  else begin
    let base = level * words in
    let w0 = from lsr 5 in
    let rec go w mask =
      if w >= words then -1
      else begin
        let x = t.occ.(base + w) land mask in
        if x = 0 then go (w + 1) 0xFFFFFFFF
        else (w lsl 5) + ntz32 x
      end
    in
    go w0 (0xFFFFFFFF lxor ((1 lsl (from land 31)) - 1))
  end

let set_occ t ~level ~slot =
  let w = (level * words) + (slot lsr 5) in
  t.occ.(w) <- t.occ.(w) lor (1 lsl (slot land 31))

let clear_occ t ~level ~slot =
  let w = (level * words) + (slot lsr 5) in
  t.occ.(w) <- t.occ.(w) land lnot (1 lsl (slot land 31))

(* ------------------------------------------------------------ placing -- *)

(* Level of [key] relative to [cur]: index of the highest byte in which
   they differ (0 when equal). *)
let level_of t k =
  let x = k lxor t.cur in
  let rec go x l = if x < 256 then l else go (x lsr 8) (l + 1) in
  go x 0

(* Append entry [e] (with key [k]) at the tail of its slot. *)
let place t e k =
  let l = level_of t k in
  let s = (l * slots) + ((k lsr (8 * l)) land 255) in
  t.nxt.(e) <- -1;
  let tl = t.tail.(s) in
  if tl < 0 then begin
    t.head.(s) <- e;
    t.tail.(s) <- e;
    set_occ t ~level:l ~slot:(s land 255)
  end
  else begin
    t.nxt.(tl) <- e;
    t.tail.(s) <- e
  end

let grow_pool t filler =
  let cap = Array.length t.key in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let key = Array.make ncap 0
  and seq = Array.make ncap 0
  and nxt = Array.make ncap (-1)
  and vl = Array.make ncap filler in
  Array.blit t.key 0 key 0 cap;
  Array.blit t.seq 0 seq 0 cap;
  Array.blit t.nxt 0 nxt 0 cap;
  Array.blit t.vl 0 vl 0 cap;
  t.key <- key;
  t.seq <- seq;
  t.nxt <- nxt;
  t.vl <- vl

let alloc_entry t ~k ~s value =
  let e =
    if t.free_head >= 0 then begin
      let e = t.free_head in
      t.free_head <- t.nxt.(e);
      e
    end
    else begin
      if t.pool_top = Array.length t.key then grow_pool t value;
      let e = t.pool_top in
      t.pool_top <- e + 1;
      e
    end
  in
  t.key.(e) <- k;
  t.seq.(e) <- s;
  t.vl.(e) <- value;
  e

let free_entry t e =
  t.nxt.(e) <- t.free_head;
  t.free_head <- e
  (* t.vl.(e) keeps its last payload until the slot is reused — same
     bounded retention the heap's over-allocated tail has. *)

let add t ~key value =
  if key < t.cur then
    invalid_arg "Wheel.add: key below the current time (wheel is monotone)";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e = alloc_entry t ~k:key ~s:seq value in
  place t e key;
  t.size <- t.size + 1

(* ---------------------------------------------------------- the front -- *)

(* Advance [cur] to the minimum key and return its (level-0) slot index:
   scan level 0 from [cur]'s low byte; when the window is exhausted,
   cascade the next occupied higher-level slot down and rescan.
   Precondition: size > 0.  Pure position-finding — the entries
   themselves are only relinked (in list order), never reordered, so
   this mutation is invisible to the pop sequence. *)
let rec settle t =
  let s0 = next_occupied t ~level:0 ~from:(t.cur land 255) in
  if s0 >= 0 then begin
    t.cur <- (t.cur land lnot 255) lor s0;
    s0
  end
  else cascade t 1

and cascade t l =
  if l >= levels then
    (* size > 0 guarantees some level is occupied *)
    invalid_arg "Wheel: internal invariant broken (no occupied slot)"
  else begin
    let from = ((t.cur lsr (8 * l)) land 255) + 1 in
    let s = next_occupied t ~level:l ~from in
    if s < 0 then cascade t (l + 1)
    else begin
      (* Rebase the window: byte l becomes s, all lower bytes zero. *)
      let mask = if l >= 7 then 0 else lnot ((1 lsl (8 * (l + 1))) - 1) in
      t.cur <- (t.cur land mask) lor (s lsl (8 * l));
      (* Splice the slot's list out and re-place each entry (it lands at
         a level < l); walking in list order preserves seq order. *)
      let idx = (l * slots) + s in
      let e = ref t.head.(idx) in
      t.head.(idx) <- -1;
      t.tail.(idx) <- -1;
      clear_occ t ~level:l ~slot:s;
      while !e >= 0 do
        let next = t.nxt.(!e) in
        place t !e t.key.(!e);
        e := next
      done;
      settle t
    end
  end

let peek_key t =
  if t.size = 0 then None
  else begin
    ignore (settle t : int);
    Some t.cur
  end

let peek_key_fast t =
  ignore (settle t : int);
  t.cur

(* Unlink and free the head entry of level-0 slot [s0]; returns value. *)
let take_head t s0 =
  let e = t.head.(s0) in
  let v = t.vl.(e) in
  let n = t.nxt.(e) in
  t.head.(s0) <- n;
  if n < 0 then begin
    t.tail.(s0) <- -1;
    clear_occ t ~level:0 ~slot:s0
  end;
  free_entry t e;
  t.size <- t.size - 1;
  v

let pop_value t =
  let s0 = settle t in
  take_head t s0

let pop t =
  if t.size = 0 then None
  else begin
    let s0 = settle t in
    Some (t.cur, take_head t s0)
  end

let pop_run t ~buf ~dummy =
  if t.size = 0 then 0
  else begin
    let s0 = settle t in
    (* The level-0 slot list is exactly the minimum-key tie set, already
       in seq order: splice the whole list out in one pass. *)
    let n = ref 0 in
    let e = ref t.head.(s0) in
    while !e >= 0 do
      if !n >= Array.length !buf then begin
        let bigger = Array.make (max 16 (2 * Array.length !buf)) dummy in
        Array.blit !buf 0 bigger 0 !n;
        buf := bigger
      end;
      !buf.(!n) <- t.vl.(!e);
      incr n;
      let next = t.nxt.(!e) in
      free_entry t !e;
      e := next
    done;
    t.head.(s0) <- -1;
    t.tail.(s0) <- -1;
    clear_occ t ~level:0 ~slot:s0;
    t.size <- t.size - !n;
    !n
  end

(* ------------------------------------------------- tie-set operations -- *)

let min_key_count t =
  if t.size = 0 then 0
  else begin
    let s0 = settle t in
    let n = ref 0 in
    let e = ref t.head.(s0) in
    while !e >= 0 do
      incr n;
      e := t.nxt.(!e)
    done;
    !n
  end

let min_key_values t =
  if t.size = 0 then []
  else begin
    let s0 = settle t in
    let acc = ref [] in
    let e = ref t.head.(s0) in
    while !e >= 0 do
      acc := t.vl.(!e) :: !acc;
      e := t.nxt.(!e)
    done;
    List.rev !acc
  end

let min_key_seqs t =
  if t.size = 0 then []
  else begin
    let s0 = settle t in
    let acc = ref [] in
    let e = ref t.head.(s0) in
    while !e >= 0 do
      acc := t.seq.(!e) :: !acc;
      e := t.nxt.(!e)
    done;
    List.rev !acc
  end

let last_seq t = t.next_seq - 1

let pop_min_nth t n =
  if t.size = 0 then None
  else begin
    let s0 = settle t in
    let key = t.cur in
    (* Walk to the nth entry, keeping the predecessor for the unlink. *)
    let rec go prev e i =
      if e < 0 then invalid_arg "Wheel.pop_min_nth: index out of tied range"
      else if i < n then go e t.nxt.(e) (i + 1)
      else begin
        let v = t.vl.(e) in
        let next = t.nxt.(e) in
        if prev < 0 then t.head.(s0) <- next else t.nxt.(prev) <- next;
        if next < 0 then begin
          t.tail.(s0) <- (if prev < 0 then -1 else prev);
          if t.head.(s0) < 0 then clear_occ t ~level:0 ~slot:s0
        end;
        free_entry t e;
        t.size <- t.size - 1;
        Some (key, v)
      end
    in
    go (-1) t.head.(s0) 0
  end

let clear t =
  Array.fill t.head 0 (Array.length t.head) (-1);
  Array.fill t.tail 0 (Array.length t.tail) (-1);
  Array.fill t.occ 0 (Array.length t.occ) 0;
  t.free_head <- -1;
  t.pool_top <- 0;
  t.cur <- 0;
  t.size <- 0;
  t.next_seq <- 0
