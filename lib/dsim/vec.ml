type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let check t i what =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (size %d)" what i t.size)

let get t i =
  check t i "get";
  t.data.(i)

let set t i v =
  check t i "set";
  t.data.(i) <- v

let push t v =
  if t.size = Array.length t.data then begin
    let cap = if t.size = 0 then 8 else t.size * 2 in
    let data = Array.make cap v in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let truncate t len =
  if len < 0 || len > t.size then invalid_arg "Vec.truncate: bad length";
  t.size <- len

let clear t = t.size <- 0

let to_list t = Array.to_list (Array.sub t.data 0 t.size)

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let copy t = { data = Array.copy t.data; size = t.size }
