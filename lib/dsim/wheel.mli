(** A hierarchical timing wheel — the calendar-queue alternative to
    {!Heap} for the engine's event queue.

    Same ordering contract as {!Heap}: elements sort by integer key with
    insertion order breaking ties, and the tie-set operations
    ({!min_key_count}, {!min_key_values}, {!pop_min_nth}) surface the
    same-key group in the same insertion order — a choice oracle sees
    identical tie sets on either backend.

    Unlike the heap, the wheel is {e monotone}: keys may not go below
    the largest key already popped (the wheel's current {!time}).  The
    simulation engine satisfies this by construction (delays are
    non-negative); {!add} raises [Invalid_argument] otherwise.

    Complexity: O(1) amortized add/pop versus the heap's O(log n), which
    is what makes it interesting for heavy-timer workloads (Raft
    election/heartbeat timers, failure-detector deadlines) with large
    in-flight event counts. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val time : t -> int
(** The wheel's current time: the floor below which no key may be added.
    Starts at 0 and advances to each popped key. *)

val add : t -> key:int -> int -> unit
(** [add t ~key v] inserts [v] with priority [key]; insertion order
    breaks ties.
    @raise Invalid_argument when [key < time t]. *)

val pop : t -> (int * int) option
val pop_value : t -> int
(** Zero-allocation pop of just the payload; the wheel must be
    non-empty. *)

val peek_key : t -> int option
val peek_key_fast : t -> int
(** The minimum key, assuming non-empty (undefined when empty). *)

val pop_run : t -> buf:int array ref -> dummy:int -> int
(** Splice the {e entire} minimum-key tie set into [buf] in insertion
    order — the wheel's same-tick batch pop, O(ties) with no re-sifting.
    Returns the count (0 when empty). *)

val min_key_count : t -> int
val min_key_values : t -> int list
val pop_min_nth : t -> int -> (int * int) option
(** Tie-set operations with {!Heap}-identical semantics.
    @raise Invalid_argument when the index is outside the tied range. *)

val min_key_seqs : t -> int list
(** The insertion sequence numbers of the minimum-key tie set, in
    insertion order — parallel to {!min_key_values} and identical to
    what {!Heap.min_key_seqs} reports for the same add history. *)

val last_seq : t -> int
(** The sequence number assigned by the most recent {!add} (-1 before
    the first add or after {!clear}). *)

val clear : t -> unit
(** Reset to empty at time 0, keeping backing storage for reuse. *)
