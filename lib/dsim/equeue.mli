(** The engine's event-queue, behind a backend switch.

    Both backends — the struct-of-arrays binary {!Heap} and the
    hierarchical timing {!Wheel} — implement the same contract: minimum
    integer key first, insertion order breaking ties, and tie-set
    operations that surface the same-key group identically.  Seeded
    simulations are byte-identical on either backend; pick by workload
    (the wheel's O(1) add/pop wins on heavy-timer runs with large
    in-flight event counts). *)

type backend = Heap | Wheel

type t = H of Heap.t | W of Wheel.t
(** The representation is exposed so the engine can hoist the backend
    dispatch out of its per-event hot loop (one match per run, not per
    queue operation).  Ordinary callers should treat it as abstract and
    go through the functions below. *)

val create : backend -> t
val backend : t -> backend
val length : t -> int
val is_empty : t -> bool

val add : t -> key:int -> int -> unit
(** Wheel backend only: @raise Invalid_argument when [key] is below the
    largest key already popped. *)

val pop : t -> (int * int) option
val pop_value : t -> int
val peek_key : t -> int option
val peek_key_fast : t -> int
val pop_run : t -> buf:int array ref -> dummy:int -> int
val min_key_count : t -> int
val min_key_values : t -> int list

val min_key_seqs : t -> int list
(** Insertion sequence numbers of the minimum-key tie set, in insertion
    order (parallel to {!min_key_values}).  Identical on both backends
    for the same add history; seqs are dense from 0 and reset by
    {!clear}, giving queued events a stable per-run identity. *)

val last_seq : t -> int
(** The seq assigned by the most recent {!add} (-1 when none yet). *)

val pop_min_nth : t -> int -> (int * int) option
val clear : t -> unit
