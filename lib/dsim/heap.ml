type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let precedes a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* A dummy entry fills the tail; it is never read past [size]. *)
  let dummy = t.data.(0) in
  let data = Array.make new_cap dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && precedes t.data.(left) t.data.(!smallest) then
    smallest := left;
  if right < t.size && precedes t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 entry
  else if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key

(* Every entry tied with the minimum key sits in a subtree hanging off the
   root: a node's ancestors have keys <= its own, so an entry equal to the
   minimum has only minimum-key ancestors.  Walking that subtree (pruning
   at the first strictly larger key) visits exactly the tied entries, in
   O(ties) rather than O(size). *)
let fold_min_indices t init f =
  if t.size = 0 then init
  else begin
    let min_key = t.data.(0).key in
    let rec go acc i =
      if i >= t.size || t.data.(i).key <> min_key then acc
      else
        let acc = f acc i in
        let acc = go acc ((2 * i) + 1) in
        go acc ((2 * i) + 2)
    in
    go init 0
  end

let min_key_count t = fold_min_indices t 0 (fun n _ -> n + 1)

let min_entries_by_seq t =
  let idxs = fold_min_indices t [] (fun acc i -> i :: acc) in
  List.sort
    (fun a b -> compare t.data.(a).seq t.data.(b).seq)
    (List.rev idxs)

let min_key_values t =
  List.map (fun i -> t.data.(i).value) (min_entries_by_seq t)

let remove_at t i =
  let entry = t.data.(i) in
  t.size <- t.size - 1;
  if i < t.size then begin
    t.data.(i) <- t.data.(t.size);
    sift_down t i;
    sift_up t i
  end;
  entry

let pop_min_nth t n =
  if t.size = 0 then None
  else begin
    let by_seq = min_entries_by_seq t in
    match List.nth_opt by_seq n with
    | None -> invalid_arg "Heap.pop_min_nth: index out of tied range"
    | Some i ->
        let e = remove_at t i in
        Some (e.key, e.value)
  end

(* Keep the backing array: a cleared-and-reused heap (campaign runs,
   engine pools) skips the regrowth ramp.  Resetting [next_seq] restores
   the insertion-order tiebreak from zero, so a reused heap behaves
   exactly like a fresh one. *)
let clear t =
  t.size <- 0;
  t.next_seq <- 0
