(* Struct-of-arrays binary min-heap.

   Entries live in three parallel arrays (key / tiebreak seq / payload)
   instead of one boxed record per insertion, so [add] allocates nothing
   once the arrays are warm and the sift loops touch flat int arrays.
   The sifts move a hole instead of swapping pairs; because (key, seq)
   is a strict total order (seqs are unique) the hole walk makes exactly
   the comparisons the classic swap walk makes and lands every element
   in the same slot — the array layout, and therefore the
   [fold_min_indices] tie enumeration the choice oracle observes, is
   bit-identical to the old boxed implementation. *)

type t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : int array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t filler =
  let cap = Array.length t.keys in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let keys = Array.make new_cap 0 in
  let seqs = Array.make new_cap 0 in
  (* The filler pads the tail; it is never read past [size]. *)
  let vals = Array.make new_cap filler in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.seqs <- seqs;
  t.vals <- vals

let add t ~key value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.size = Array.length t.keys then grow t value;
  let keys = t.keys and seqs = t.seqs and vals = t.vals in
  (* Hole-based sift-up: shift larger ancestors down into the hole. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pk = keys.(parent) in
    if pk > key || (pk = key && seqs.(parent) > seq) then begin
      keys.(!i) <- pk;
      seqs.(!i) <- seqs.(parent);
      vals.(!i) <- vals.(parent);
      i := parent
    end
    else stop := true
  done;
  keys.(!i) <- key;
  seqs.(!i) <- seq;
  vals.(!i) <- value

(* Hole-based sift-down of the detached element (k, s, v) starting at the
   root: follow the smaller-child path while the child precedes the
   element.  Zero allocation. *)
let sift_down_root t k s v =
  let keys = t.keys and seqs = t.seqs and vals = t.vals in
  let n = t.size in
  let i = ref 0 in
  let stop = ref false in
  while not !stop do
    let l = (2 * !i) + 1 in
    if l >= n then stop := true
    else begin
      let r = l + 1 in
      let c =
        if
          r < n
          && (keys.(r) < keys.(l) || (keys.(r) = keys.(l) && seqs.(r) < seqs.(l)))
        then r
        else l
      in
      if keys.(c) < k || (keys.(c) = k && seqs.(c) < s) then begin
        keys.(!i) <- keys.(c);
        seqs.(!i) <- seqs.(c);
        vals.(!i) <- vals.(c);
        i := c
      end
      else stop := true
    end
  done;
  keys.(!i) <- k;
  seqs.(!i) <- s;
  vals.(!i) <- v

let pop_value t =
  (* Precondition: size > 0 (the engine hot loop checks once). *)
  let top = t.vals.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then sift_down_root t t.keys.(n) t.seqs.(n) t.vals.(n);
  top

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    Some (key, pop_value t)
  end

let peek_key_fast t = t.keys.(0)
let peek_key t = if t.size = 0 then None else Some t.keys.(0)

(* Every entry tied with the minimum key sits in a subtree hanging off the
   root: a node's ancestors have keys <= its own, so an entry equal to the
   minimum has only minimum-key ancestors.  Walking that subtree (pruning
   at the first strictly larger key) visits exactly the tied entries, in
   O(ties) rather than O(size). *)
let fold_min_indices t init f =
  if t.size = 0 then init
  else begin
    let min_key = t.keys.(0) in
    let rec go acc i =
      if i >= t.size || t.keys.(i) <> min_key then acc
      else
        let acc = f acc i in
        let acc = go acc ((2 * i) + 1) in
        go acc ((2 * i) + 2)
    in
    go init 0
  end

let min_key_count t = fold_min_indices t 0 (fun n _ -> n + 1)

let min_entries_by_seq t =
  let idxs = fold_min_indices t [] (fun acc i -> i :: acc) in
  List.sort (fun a b -> compare t.seqs.(a) t.seqs.(b)) (List.rev idxs)

let min_key_values t =
  List.map (fun i -> t.vals.(i)) (min_entries_by_seq t)

let min_key_seqs t =
  List.map (fun i -> t.seqs.(i)) (min_entries_by_seq t)

let last_seq t = t.next_seq - 1

(* Swap-based sifts for interior removal (oracle mode only — cold). *)
let precedes_ix t a b =
  t.keys.(a) < t.keys.(b) || (t.keys.(a) = t.keys.(b) && t.seqs.(a) < t.seqs.(b))

let swap_ix t a b =
  let k = t.keys.(a) and s = t.seqs.(a) and v = t.vals.(a) in
  t.keys.(a) <- t.keys.(b);
  t.seqs.(a) <- t.seqs.(b);
  t.vals.(a) <- t.vals.(b);
  t.keys.(b) <- k;
  t.seqs.(b) <- s;
  t.vals.(b) <- v

let rec sift_up_ix t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes_ix t i parent then begin
      swap_ix t i parent;
      sift_up_ix t parent
    end
  end

let rec sift_down_ix t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && precedes_ix t left !smallest then smallest := left;
  if right < t.size && precedes_ix t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap_ix t i !smallest;
    sift_down_ix t !smallest
  end

let remove_at t i =
  let key = t.keys.(i) and value = t.vals.(i) in
  t.size <- t.size - 1;
  if i < t.size then begin
    let n = t.size in
    t.keys.(i) <- t.keys.(n);
    t.seqs.(i) <- t.seqs.(n);
    t.vals.(i) <- t.vals.(n);
    sift_down_ix t i;
    sift_up_ix t i
  end;
  (key, value)

let pop_min_nth t n =
  if t.size = 0 then None
  else begin
    let by_seq = min_entries_by_seq t in
    match List.nth_opt by_seq n with
    | None -> invalid_arg "Heap.pop_min_nth: index out of tied range"
    | Some i -> Some (remove_at t i)
  end

(* Pop every entry tied at the minimum key into [buf] (growing it as
   needed), in seq order — exactly the order repeated [pop]s would
   surface them.  Returns the count. *)
let pop_run t ~buf ~dummy =
  if t.size = 0 then 0
  else begin
    let key = t.keys.(0) in
    let n = ref 0 in
    while t.size > 0 && t.keys.(0) = key do
      if !n >= Array.length !buf then begin
        let bigger = Array.make (max 16 (2 * Array.length !buf)) dummy in
        Array.blit !buf 0 bigger 0 !n;
        buf := bigger
      end;
      !buf.(!n) <- pop_value t;
      incr n
    done;
    !n
  end

(* Keep the backing arrays: a cleared-and-reused heap (campaign runs,
   engine pools) skips the regrowth ramp.  Resetting [next_seq] restores
   the insertion-order tiebreak from zero, so a reused heap behaves
   exactly like a fresh one. *)
let clear t =
  t.size <- 0;
  t.next_seq <- 0
