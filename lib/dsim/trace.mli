(** Structured execution traces.

    Every simulation carries a trace: a time-ordered sequence of tagged
    events.  Protocol implementations emit events; property monitors and
    tests read them back.  The trace is append-only during a run. *)

type event = {
  time : int;  (** virtual time at which the event was emitted *)
  pid : int option;  (** emitting process, when applicable *)
  tag : string;  (** machine-matchable category, e.g. ["send"].  Tags are
                     free-form per subsystem; e.g. the failure-detector
                     layer emits under ["detect"] ([suspect]/[trust]
                     transitions, [omega stable]/[omega unstable] view
                     changes, [round]/[decide] protocol steps) and the
                     fault injector under ["nemesis"]. *)
  detail : string;  (** human-readable payload *)
}

type t

val create : ?capacity:int -> unit -> t
(** A fresh empty trace.  [capacity] bounds retained events; beyond it the
    oldest events are discarded (default: unbounded). *)

val emit : t -> time:int -> ?pid:int -> tag:string -> string -> unit
(** Append one event. *)

val events : t -> event list
(** All retained events, oldest first. *)

val with_tag : t -> string -> event list
(** Retained events carrying the given tag, oldest first. *)

val count : t -> string -> int
(** Number of retained events with the given tag. *)

val length : t -> int
(** Total number of retained events. *)

val last : t -> int -> event list
(** [last t k] is the newest [min k (length t)] retained events, oldest
    first — the tail a trace dump wants.  [last t k = events t] whenever
    [k >= length t]; [k <= 0] gives []. *)

val pp_event : Format.formatter -> event -> unit
(** Render one event as [t=... pid=... tag detail]. *)

val dump : Format.formatter -> t -> unit
(** Render the whole trace, one event per line. *)
