(** A growable array (OCaml 5.1 predates [Dynarray]).

    Used for logs and sample buffers.  Indices are 0-based; {!truncate}
    supports Raft-style conflict deletion. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val push : 'a t -> 'a -> unit
val last : 'a t -> 'a option

val truncate : 'a t -> int -> unit
(** [truncate t len] drops elements so that exactly [len] remain.
    Capacity is kept, so pushes after a truncate reuse the storage.
    @raise Invalid_argument if [len] is negative or exceeds the length. *)

val clear : 'a t -> unit
(** [truncate t 0]: drop everything, keep the backing storage for
    reuse across growth cycles. *)

val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val copy : 'a t -> 'a t
