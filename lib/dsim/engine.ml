type pid = int

exception Killed
exception Not_in_process

type proc_state = Running | Finished | Dead

(* A blocked-on-[await] process sits in a doubly-linked list threaded
   through [bnode]s (sentinel at the engine).  The polymorphic poll and
   continuation are captured in the [try_]/[kill_] closures, so no GADT
   is needed, and the node pointer stored on the process record makes
   [kill] O(1) instead of O(all blocked). *)
type bnode = {
  mutable prev : bnode;
  mutable next : bnode;
  mutable try_ : unit -> bool;
      (* poll; on ready: unlink self, resume, return true (restart scan) *)
  mutable kill_ : unit -> unit;  (* discontinue the continuation with Killed *)
  mutable bn_pid : pid;
}

type proc = {
  p_pid : pid;
  p_name : string;
  mutable p_state : proc_state;
  mutable p_failure : exn option;
  mutable p_k : (unit, unit) Effect.Deep.continuation option;
      (* pending sleep/yield resume — a fiber has one suspension point *)
  mutable p_block : bnode option;  (* await node, for O(1) kill *)
}

type choice = {
  c_domain : string;
  c_arity : int;
  c_owners : int option array;
  c_time : int;  (* virtual time of the tied events ("sched" only) *)
  c_seqs : int array;  (* queue insertion seqs: stable per-run identity *)
  c_creators : int array;
      (* c_creators.(i) = seq of the event whose execution scheduled
         tied event i, or -1 when scheduled during setup — the
         creation-chain edges a DPOR happens-before analysis needs *)
}

type oracle = { choose : choice -> int }

(* Events are packed ints, not boxed records: bits 0..9 hold the kind
   (an index into the dispatch table), bits 10..32 the owner pid plus
   one (0 = no owner), bits 33..62 the kind-specific argument.  Kind 0
   runs a closure from the arena below; kind 1 resumes a sleeping or
   yielded process (arg = pid); layers register further kinds so their
   hot paths never allocate a closure per event. *)
let k_closure = 0
let k_resume = 1
let kind_bits = 10
let owner_bits = 23
let max_kinds = 1 lsl kind_bits
let kind_mask = max_kinds - 1
let owner_mask = (1 lsl owner_bits) - 1
let arg_shift = kind_bits + owner_bits

let pack ~kind ~owner ~arg =
  (arg lsl arg_shift) lor ((owner + 1) lsl kind_bits) lor kind

let ev_owner ev = ((ev lsr kind_bits) land owner_mask) - 1

type t = {
  mutable now : int;
  events : Equeue.t;
  tr : Trace.t;
  mutable tracing : bool;
  engine_rng : Rng.t;
  mutable parr : proc array;  (* indexed by pid; pids are sequential *)
  mutable next_pid : int;
  bsent : bnode;  (* sentinel of the blocked list, newest first *)
  mutable oracle : oracle option;
  mutable batching : bool;
  (* Event lineage, tracked only while an oracle is installed (the
     DPOR analysis reads it through [c_creators]; the quiet hot path
     pays one predictable branch in [schedule_kind]). *)
  mutable lineage : bool;
  mutable creators : int array;  (* seq -> creating event's seq, or -1 *)
  mutable cur_seq : int;  (* seq of the event currently executing, -1 at setup *)
  mutable dispatch : (int -> unit) array;  (* kind -> handler of arg *)
  mutable kind_count : int;
  (* closure arena: pending [schedule]d thunks, freelist-threaded *)
  mutable cfns : (unit -> unit) array;
  mutable cnext : int array;
  mutable cfree : int;
  mutable ctop : int;
  (* same-tick batch buffer; [buf_pos < buf_len] only while a drained
     tick is mid-execution (an [Event_limit] can stop inside one) *)
  ebuf : int array ref;
  mutable buf_pos : int;
  mutable buf_len : int;
}

type ctx = { engine : t; pid : pid; rng : Rng.t }

type outcome = Quiescent | Deadlock of pid list | Time_limit | Event_limit

type _ Effect.t +=
  | Await : (unit -> 'a option) -> 'a Effect.t
  | Sleep : int -> unit Effect.t
  | Yield : unit Effect.t

(* ------------------------------------------------------- blocked list -- *)

let no_try () = false
let no_kill () = ()

let make_sentinel () =
  let rec s = { prev = s; next = s; try_ = no_try; kill_ = no_kill; bn_pid = -1 } in
  s

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front t n =
  let s = t.bsent in
  n.next <- s.next;
  n.prev <- s;
  s.next.prev <- n;
  s.next <- n

let blocked_empty t = t.bsent.next == t.bsent

let blocked_pids t =
  let rec go acc n = if n == t.bsent then acc else go (n.bn_pid :: acc) n.next in
  List.sort_uniq compare (go [] t.bsent.next)

(* ------------------------------------------------------------- arenas -- *)

let dummy_fn () = ()

let dummy_proc =
  {
    p_pid = -1;
    p_name = "?";
    p_state = Dead;
    p_failure = None;
    p_k = None;
    p_block = None;
  }

let grow_closures t =
  let cap = Array.length t.cfns in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let fns = Array.make ncap dummy_fn and nxt = Array.make ncap (-1) in
  Array.blit t.cfns 0 fns 0 cap;
  Array.blit t.cnext 0 nxt 0 cap;
  t.cfns <- fns;
  t.cnext <- nxt

let alloc_closure t f =
  let slot =
    if t.cfree >= 0 then begin
      let s = t.cfree in
      t.cfree <- t.cnext.(s);
      s
    end
    else begin
      if t.ctop = Array.length t.cfns then grow_closures t;
      let s = t.ctop in
      t.ctop <- s + 1;
      s
    end
  in
  t.cfns.(slot) <- f;
  slot

(* Free before running, so the thunk can schedule into a recycled slot. *)
let run_closure t slot =
  let f = t.cfns.(slot) in
  t.cfns.(slot) <- dummy_fn;
  t.cnext.(slot) <- t.cfree;
  t.cfree <- slot;
  f ()

let resume_proc t pid =
  let p = t.parr.(pid) in
  match p.p_k with
  | None -> ()
  | Some k ->
      p.p_k <- None;
      if p.p_state = Running then Effect.Deep.continue k ()
      else Effect.Deep.discontinue k Killed

(* -------------------------------------------------------- kinds & API -- *)

let invalid_kind (_ : int) = invalid_arg "Engine: event kind not registered"

let register_kind t handler =
  let k = t.kind_count in
  if k >= max_kinds then invalid_arg "Engine.register_kind: kind space exhausted";
  if k = Array.length t.dispatch then begin
    let nd = Array.make (min max_kinds (2 * Array.length t.dispatch)) invalid_kind in
    Array.blit t.dispatch 0 nd 0 k;
    t.dispatch <- nd
  end;
  t.dispatch.(k) <- handler;
  t.kind_count <- k + 1;
  k

let create ?(seed = 1L) ?trace_capacity ?(tracing = true) ?(queue = Equeue.Heap)
    ?(batching = true) () =
  let t =
    {
      now = 0;
      events = Equeue.create queue;
      tr = Trace.create ?capacity:trace_capacity ();
      tracing;
      engine_rng = Rng.create seed;
      parr = Array.make 16 dummy_proc;
      next_pid = 0;
      bsent = make_sentinel ();
      oracle = None;
      batching;
      lineage = false;
      creators = [||];
      cur_seq = -1;
      dispatch = Array.make 4 invalid_kind;
      kind_count = 0;
      cfns = [||];
      cnext = [||];
      cfree = -1;
      ctop = 0;
      ebuf = ref [||];
      buf_pos = 0;
      buf_len = 0;
    }
  in
  let kc = register_kind t (fun slot -> run_closure t slot) in
  let kr = register_kind t (fun pid -> resume_proc t pid) in
  assert (kc = k_closure && kr = k_resume);
  t

let now t = t.now
let rng t = t.engine_rng
let trace t = t.tr
let tracing t = t.tracing
let set_tracing t on = t.tracing <- on
let batching t = t.batching
let set_batching t on = t.batching <- on
let queue_backend t = Equeue.backend t.events

let emit t ?pid ~tag detail =
  if t.tracing then Trace.emit t.tr ~time:t.now ?pid ~tag detail

let emitk t ?pid ~tag detail =
  if t.tracing then Trace.emit t.tr ~time:t.now ?pid ~tag (detail ())

(* Record who scheduled the event the last [Equeue.add] enqueued.  Seqs
   are dense from 0, so a flat array indexed by seq suffices. *)
let note_created t =
  let s = Equeue.last_seq t.events in
  let cap = Array.length t.creators in
  if s >= cap then begin
    let ncap = max 64 (max (s + 1) (2 * cap)) in
    let nc = Array.make ncap (-1) in
    Array.blit t.creators 0 nc 0 cap;
    t.creators <- nc
  end;
  t.creators.(s) <- t.cur_seq

let schedule_kind t ~owner ~delay ~kind arg =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  Equeue.add t.events ~key:(t.now + delay) (pack ~kind ~owner ~arg);
  if t.lineage then note_created t

let schedule t ?owner ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let ow = match owner with None -> -1 | Some p -> p in
  let slot = alloc_closure t f in
  Equeue.add t.events ~key:(t.now + delay) (pack ~kind:k_closure ~owner:ow ~arg:slot);
  if t.lineage then note_created t

let set_oracle t o =
  t.oracle <- o;
  t.lineage <- (match o with Some _ -> true | None -> false)

let oracle t = t.oracle

let proc t pid =
  if pid >= 0 && pid < t.next_pid then t.parr.(pid)
  else invalid_arg (Printf.sprintf "Engine: unknown pid %d" pid)

let alive t pid = pid >= 0 && pid < t.next_pid && t.parr.(pid).p_state = Running
let name t pid = (proc t pid).p_name
let process_failed t pid = (proc t pid).p_failure

(* Suspension primitives: plain effect performers.  They raise
   [Unhandled] as [Not_in_process] when no engine handler is installed. *)

let await poll =
  match poll () with
  | Some v -> v
  | None -> (
      try Effect.perform (Await poll)
      with Effect.Unhandled _ -> raise Not_in_process)

let await_cond p = await (fun () -> if p () then Some () else None)

let sleep _ctx d =
  try Effect.perform (Sleep d) with Effect.Unhandled _ -> raise Not_in_process

let yield _ctx =
  try Effect.perform Yield with Effect.Unhandled _ -> raise Not_in_process

(* Fiber plumbing -------------------------------------------------------- *)

let run_fiber t (p : proc) body =
  let handler : type b. b Effect.t -> ((b, unit) Effect.Deep.continuation -> unit) option
      = function
    | Await poll ->
        Some
          (fun k ->
            match poll () with
            | Some v -> Effect.Deep.continue k v
            | None ->
                let rec node =
                  { prev = node; next = node; try_ = no_try; kill_ = no_kill;
                    bn_pid = p.p_pid }
                in
                node.try_ <-
                  (fun () ->
                    if p.p_state <> Running then begin
                      (* unreachable in practice: [kill] unlinks eagerly *)
                      unlink node;
                      p.p_block <- None;
                      false
                    end
                    else
                      match poll () with
                      | Some v ->
                          unlink node;
                          p.p_block <- None;
                          Effect.Deep.continue k v;
                          true
                      | None -> false);
                node.kill_ <- (fun () -> Effect.Deep.discontinue k Killed);
                p.p_block <- Some node;
                push_front t node)
    | Sleep d ->
        Some
          (fun k ->
            let d = if d < 0 then 0 else d in
            p.p_k <- Some k;
            schedule_kind t ~owner:(-1) ~delay:d ~kind:k_resume p.p_pid)
    | Yield ->
        Some
          (fun k ->
            p.p_k <- Some k;
            schedule_kind t ~owner:(-1) ~delay:0 ~kind:k_resume p.p_pid)
    | _ -> None
  in
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> if p.p_state = Running then p.p_state <- Finished);
      exnc =
        (fun exn ->
          match exn with
          | Killed -> p.p_state <- Dead
          | exn ->
              p.p_state <- Dead;
              p.p_failure <- Some exn;
              emitk t ~pid:p.p_pid ~tag:"crash" (fun () ->
                  Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn)));
      effc = handler;
    }

let grow_parr t =
  let cap = Array.length t.parr in
  let np = Array.make (2 * cap) dummy_proc in
  Array.blit t.parr 0 np 0 cap;
  t.parr <- np

let spawn t ?name body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  if pid = Array.length t.parr then grow_parr t;
  let p_name = match name with Some n -> n | None -> Printf.sprintf "p%d" pid in
  let p =
    { p_pid = pid; p_name; p_state = Running; p_failure = None; p_k = None;
      p_block = None }
  in
  t.parr.(pid) <- p;
  let proc_rng = Rng.split t.engine_rng in
  let ctx = { engine = t; pid; rng = proc_rng } in
  schedule t ~owner:pid ~delay:0 (fun () ->
      if p.p_state = Running then run_fiber t p (fun () -> body ctx));
  pid

let kill t pid =
  if pid >= 0 && pid < t.next_pid then begin
    let p = t.parr.(pid) in
    if p.p_state = Running then begin
      p.p_state <- Dead;
      emit t ~pid ~tag:"kill" p.p_name;
      (* Discontinue a blocked continuation now so the fiber unwinds;
         sleeping continuations notice at wake-up. *)
      match p.p_block with
      | None -> ()
      | Some node ->
          p.p_block <- None;
          unlink node;
          node.kill_ ()
    end
  end

(* Resume every blocked process whose poll condition now holds, newest
   blocker first, restarting the scan after each resumption (it may
   change the world) until a full pass resumes nobody. *)
let drain_ready_loop t =
  let s = t.bsent in
  let n = ref s.next in
  while !n != s do
    let node = !n in
    let nxt = node.next in
    if node.try_ () then n := s.next else n := nxt
  done

(* The wrapper keeps the common nobody-blocked case a two-load inline
   check; the loop body above is never inlined (it contains a loop). *)
let drain_ready t = if t.bsent.next != t.bsent then drain_ready_loop t

(* [lsr], not [asr]: the arg field reaches bit 62 (the sign bit of a
   63-bit int), so an arithmetic shift would sign-extend args with the
   top bit set. *)
let exec t ev = t.dispatch.(ev land kind_mask) (ev lsr arg_shift)

let finish t =
  if blocked_empty t then Quiescent else Deadlock (blocked_pids t)

(* With an oracle installed every tick where more than one event is
   enabled becomes an explicit choice point: the oracle sees the tied
   events' owners and picks which fires first. *)
let creator_of t s =
  if s >= 0 && s < Array.length t.creators then t.creators.(s) else -1

let pop_next_oracle t o =
  match Equeue.min_key_count t.events with
  | 0 -> None
  | 1 ->
      (* No choice to make, but the event still becomes the creator of
         whatever its execution schedules. *)
      (match Equeue.min_key_seqs t.events with
      | [ s ] -> t.cur_seq <- s
      | _ -> ());
      Equeue.pop t.events
  | arity ->
      let owners =
        Array.of_list
          (List.map
             (fun ev ->
               let ow = ev_owner ev in
               if ow < 0 then None else Some ow)
             (Equeue.min_key_values t.events))
      in
      let seqs = Array.of_list (Equeue.min_key_seqs t.events) in
      let creators = Array.map (fun s -> creator_of t s) seqs in
      let idx =
        o.choose
          {
            c_domain = "sched";
            c_arity = arity;
            c_owners = owners;
            c_time = Equeue.peek_key_fast t.events;
            c_seqs = seqs;
            c_creators = creators;
          }
      in
      t.cur_seq <- seqs.(idx);
      Equeue.pop_min_nth t.events idx

let run ?until ?max_events t =
  let limit = match until with Some l -> l | None -> max_int in
  let budget = match max_events with Some m -> m | None -> max_int in
  let executed = ref 0 in
  (* A bool stop flag, not an [outcome option]: [= None] is polymorphic
     equality and this test sits on the per-event hot path. *)
  let stop = ref false in
  let result = ref Quiescent in
  let finish_with o =
    result := o;
    stop := true
  in
  drain_ready t;
  (* First finish any same-tick batch a previous [Event_limit] stopped
     inside; [t.now] is already the batch's tick. *)
  while (not !stop) && t.buf_pos < t.buf_len do
    exec t (!(t.ebuf)).(t.buf_pos);
    t.buf_pos <- t.buf_pos + 1;
    drain_ready t;
    incr executed;
    if !executed >= budget then finish_with Event_limit
  done;
  (* Both the oracle and the queue backend are fixed before [run] (all
     [set_oracle] callers install theirs during setup), so both matches
     hoist out of the per-event loop — the backend dispatch in
     particular is measurable at tens of millions of events/sec. *)
  (match t.oracle with
  | Some o ->
      (* Oracle mode: strictly per-event granularity, and the limit
         putback happens after the pop — the oracle's choice is
         consumed either way, exactly like the classic engine. *)
      while not !stop do
        match pop_next_oracle t o with
        | None -> finish_with (finish t)
        | Some (time, ev) ->
            if time > limit then begin
              Equeue.add t.events ~key:time ev;
              t.now <- limit;
              finish_with Time_limit
            end
            else begin
              t.now <- time;
              exec t ev;
              drain_ready t;
              incr executed;
              if !executed >= budget then finish_with Event_limit
            end
      done
  | None -> (
      (* The two branches below are textually identical modulo the
         queue module; keep them in sync. *)
      match t.events with
      | Equeue.H h ->
          while not !stop do
            if Heap.is_empty h then finish_with (finish t)
            else begin
              let time = Heap.peek_key_fast h in
              if time > limit then begin
                (* Pop-and-re-add, preserving the classic engine's
                   tiebreak bump for events deferred past the limit. *)
                let ev = Heap.pop_value h in
                Heap.add h ~key:time ev;
                t.now <- limit;
                finish_with Time_limit
              end
              else begin
                t.now <- time;
                exec t (Heap.pop_value h);
                drain_ready t;
                incr executed;
                if !executed >= budget then finish_with Event_limit
                else if
                  t.batching
                  && (not (Heap.is_empty h))
                  && Heap.peek_key_fast h = time
                then begin
                  (* Drain the rest of the tick in one queue operation.
                     The buffer is the tie set in seq order, and anything
                     the drained events schedule gets a later global seq,
                     so the execution order is exactly what per-event
                     pops produce. *)
                  let n = Heap.pop_run h ~buf:t.ebuf ~dummy:0 in
                  t.buf_pos <- 0;
                  t.buf_len <- n;
                  let buf = !(t.ebuf) in
                  while (not !stop) && t.buf_pos < t.buf_len do
                    exec t buf.(t.buf_pos);
                    t.buf_pos <- t.buf_pos + 1;
                    drain_ready t;
                    incr executed;
                    if !executed >= budget then finish_with Event_limit
                  done
                end
              end
            end
          done
      | Equeue.W w ->
          while not !stop do
            if Wheel.is_empty w then finish_with (finish t)
            else begin
              let time = Wheel.peek_key_fast w in
              if time > limit then begin
                let ev = Wheel.pop_value w in
                Wheel.add w ~key:time ev;
                t.now <- limit;
                finish_with Time_limit
              end
              else begin
                t.now <- time;
                exec t (Wheel.pop_value w);
                drain_ready t;
                incr executed;
                if !executed >= budget then finish_with Event_limit
                else if
                  t.batching
                  && (not (Wheel.is_empty w))
                  && Wheel.peek_key_fast w = time
                then begin
                  let n = Wheel.pop_run w ~buf:t.ebuf ~dummy:0 in
                  t.buf_pos <- 0;
                  t.buf_len <- n;
                  let buf = !(t.ebuf) in
                  while (not !stop) && t.buf_pos < t.buf_len do
                    exec t buf.(t.buf_pos);
                    t.buf_pos <- t.buf_pos + 1;
                    drain_ready t;
                    incr executed;
                    if !executed >= budget then finish_with Event_limit
                  done
                end
              end
            end
          done));
  !result

let run_quiet ?until ?max_events t =
  let prev = t.tracing in
  t.tracing <- false;
  Fun.protect
    ~finally:(fun () -> t.tracing <- prev)
    (fun () -> run ?until ?max_events t)
