type pid = int

exception Killed
exception Not_in_process

type proc_state = Running | Finished | Dead

type proc = {
  p_pid : pid;
  p_name : string;
  mutable p_state : proc_state;
  mutable p_failure : exn option;
}

type blocked =
  | Blocked : {
      b_pid : pid;
      b_poll : unit -> 'a option;
      b_k : ('a, unit) Effect.Deep.continuation;
    }
      -> blocked

(* An owner labels the event for schedule-exploration purposes: [Some pid]
   marks "this event only mutates state local to [pid]" (a network
   delivery, a spawn body); [None] means "no commutativity claim" (timers,
   sleep/yield wake-ups — which may run arbitrary shared-state code). *)
type ev = { ev_owner : int option; ev_fn : unit -> unit }

type choice = {
  c_domain : string;
  c_arity : int;
  c_owners : int option array;
}

type oracle = { choose : choice -> int }

type t = {
  mutable now : int;
  events : ev Heap.t;
  tr : Trace.t;
  mutable tracing : bool;
  engine_rng : Rng.t;
  procs : (pid, proc) Hashtbl.t;
  mutable blocked : blocked list;
  mutable next_pid : int;
  mutable oracle : oracle option;
}

type ctx = { engine : t; pid : pid; rng : Rng.t }

type outcome = Quiescent | Deadlock of pid list | Time_limit | Event_limit

type _ Effect.t +=
  | Await : (unit -> 'a option) -> 'a Effect.t
  | Sleep : int -> unit Effect.t
  | Yield : unit Effect.t

let create ?(seed = 1L) ?trace_capacity ?(tracing = true) () =
  {
    now = 0;
    events = Heap.create ();
    tr = Trace.create ?capacity:trace_capacity ();
    tracing;
    engine_rng = Rng.create seed;
    procs = Hashtbl.create 64;
    blocked = [];
    next_pid = 0;
    oracle = None;
  }

let now t = t.now
let rng t = t.engine_rng
let trace t = t.tr
let tracing t = t.tracing
let set_tracing t on = t.tracing <- on

let emit t ?pid ~tag detail =
  if t.tracing then Trace.emit t.tr ~time:t.now ?pid ~tag detail

let emitk t ?pid ~tag detail =
  if t.tracing then Trace.emit t.tr ~time:t.now ?pid ~tag (detail ())

let schedule t ?owner ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  Heap.add t.events ~key:(t.now + delay) { ev_owner = owner; ev_fn = f }

let set_oracle t o = t.oracle <- o
let oracle t = t.oracle

let proc t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Engine: unknown pid %d" pid)

let alive t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p.p_state = Running
  | None -> false

let name t pid = (proc t pid).p_name
let process_failed t pid = (proc t pid).p_failure

(* Suspension primitives: plain effect performers.  They raise
   [Unhandled] as [Not_in_process] when no engine handler is installed. *)

let await poll =
  match poll () with
  | Some v -> v
  | None -> ( try Effect.perform (Await poll) with Effect.Unhandled _ -> raise Not_in_process)

let await_cond p = await (fun () -> if p () then Some () else None)

let sleep _ctx d =
  try Effect.perform (Sleep d) with Effect.Unhandled _ -> raise Not_in_process

let yield _ctx =
  try Effect.perform Yield with Effect.Unhandled _ -> raise Not_in_process

(* Fiber plumbing -------------------------------------------------------- *)

let run_fiber t (p : proc) body =
  let handler : type b. b Effect.t -> ((b, unit) Effect.Deep.continuation -> unit) option
      = function
    | Await poll ->
        Some
          (fun k ->
            match poll () with
            | Some v -> Effect.Deep.continue k v
            | None ->
                t.blocked <-
                  Blocked { b_pid = p.p_pid; b_poll = poll; b_k = k } :: t.blocked)
    | Sleep d ->
        Some
          (fun k ->
            let d = if d < 0 then 0 else d in
            schedule t ~delay:d (fun () ->
                if p.p_state = Running then Effect.Deep.continue k ()
                else Effect.Deep.discontinue k Killed))
    | Yield ->
        Some
          (fun k ->
            schedule t ~delay:0 (fun () ->
                if p.p_state = Running then Effect.Deep.continue k ()
                else Effect.Deep.discontinue k Killed))
    | _ -> None
  in
  Effect.Deep.match_with body ()
    {
      retc =
        (fun () ->
          if p.p_state = Running then p.p_state <- Finished);
      exnc =
        (fun exn ->
          match exn with
          | Killed -> p.p_state <- Dead
          | exn ->
              p.p_state <- Dead;
              p.p_failure <- Some exn;
              emitk t ~pid:p.p_pid ~tag:"crash" (fun () ->
                  Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn)));
      effc = handler;
    }

let spawn t ?name body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let p_name = match name with Some n -> n | None -> Printf.sprintf "p%d" pid in
  let p = { p_pid = pid; p_name; p_state = Running; p_failure = None } in
  Hashtbl.replace t.procs pid p;
  let proc_rng = Rng.split t.engine_rng in
  let ctx = { engine = t; pid; rng = proc_rng } in
  schedule t ~owner:pid ~delay:0 (fun () ->
      if p.p_state = Running then run_fiber t p (fun () -> body ctx));
  pid

let kill t pid =
  match Hashtbl.find_opt t.procs pid with
  | None -> ()
  | Some p ->
      if p.p_state = Running then begin
        p.p_state <- Dead;
        emit t ~pid ~tag:"kill" p.p_name;
        (* Discontinue any blocked continuation belonging to this pid so the
           fiber unwinds now; sleeping continuations notice at wake-up. *)
        let mine, others =
          List.partition (fun (Blocked b) -> b.b_pid = pid) t.blocked
        in
        t.blocked <- others;
        List.iter (fun (Blocked b) -> Effect.Deep.discontinue b.b_k Killed) mine
      end

(* Resume every blocked process whose poll condition now holds.  Each
   resumption may change the world, so we restart the scan after each one
   until a full pass makes no progress. *)
let drain_ready t =
  let progress = ref true in
  while !progress do
    progress := false;
    let rec scan acc = function
      | [] -> t.blocked <- List.rev acc
      | (Blocked b as entry) :: rest -> (
          if not (alive t b.b_pid) then begin
            (* Killed while blocked and already removed in [kill]; this
               entry can only appear if the process died without [kill]
               (impossible), so keep the invariant cheaply. *)
            scan acc rest
          end
          else
            match b.b_poll () with
            | Some v ->
                t.blocked <- List.rev_append acc rest;
                progress := true;
                Effect.Deep.continue b.b_k v;
                raise_notrace Exit
            | None -> scan (entry :: acc) rest)
    in
    try scan [] t.blocked with Exit -> ()
  done

(* Pop the next event.  Without an oracle this is plain FIFO-within-tick
   [Heap.pop].  With one installed, every tick where more than one event is
   enabled becomes an explicit choice point: the oracle sees the tied
   events' owners and picks which fires first. *)
let pop_next t =
  match t.oracle with
  | None -> Heap.pop t.events
  | Some o -> (
      match Heap.min_key_count t.events with
      | 0 -> None
      | 1 -> Heap.pop t.events
      | k ->
          let owners =
            Array.of_list
              (List.map (fun e -> e.ev_owner) (Heap.min_key_values t.events))
          in
          let idx =
            o.choose { c_domain = "sched"; c_arity = k; c_owners = owners }
          in
          Heap.pop_min_nth t.events idx)

let run ?until ?max_events t =
  let executed = ref 0 in
  let outcome = ref None in
  drain_ready t;
  while !outcome = None do
    match pop_next t with
    | None ->
        outcome :=
          Some
            (if t.blocked = [] then Quiescent
             else
               Deadlock
                 (List.sort_uniq compare
                    (List.map (fun (Blocked b) -> b.b_pid) t.blocked)))
    | Some (time, ev) -> (
        match until with
        | Some limit when time > limit ->
            (* Put the event back: a later [run] may still want it. *)
            Heap.add t.events ~key:time ev;
            t.now <- limit;
            outcome := Some Time_limit
        | Some _ | None ->
            t.now <- time;
            ev.ev_fn ();
            drain_ready t;
            incr executed;
            (match max_events with
            | Some m when !executed >= m -> outcome := Some Event_limit
            | Some _ | None -> ()))
  done;
  match !outcome with Some o -> o | None -> assert false

let run_quiet ?until ?max_events t =
  let prev = t.tracing in
  t.tracing <- false;
  Fun.protect
    ~finally:(fun () -> t.tracing <- prev)
    (fun () -> run ?until ?max_events t)
