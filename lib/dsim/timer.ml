type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable generation : int;
  mutable armed : bool;
  mutable kind : int;  (* this timer's registered flat-event kind *)
}

(* The scheduled event carries the arming generation in its 30-bit
   argument, so re-arming and cancelling never allocate: stale firings
   fall through on the generation compare.  (The compare is modulo 2^30;
   a collision would need a billion re-arms while one firing is still in
   flight.) *)
let gen_mask = (1 lsl 30) - 1

let create engine callback =
  let t = { engine; callback; generation = 0; armed = false; kind = -1 } in
  t.kind <-
    Engine.register_kind engine (fun gen ->
        if t.armed && t.generation land gen_mask = gen then begin
          t.armed <- false;
          t.callback ()
        end);
  t

let arm t ~delay =
  t.generation <- t.generation + 1;
  t.armed <- true;
  Engine.schedule_kind t.engine ~owner:(-1) ~delay ~kind:t.kind
    (t.generation land gen_mask)

let cancel t =
  t.generation <- t.generation + 1;
  t.armed <- false

let is_armed t = t.armed
