(* Event-queue backend dispatcher: the engine talks to one of the two
   priority-queue implementations through this thin variant.  Both
   backends share the (key, insertion-seq) ordering contract and
   identical tie-set semantics, so the choice is purely a performance
   knob — seeded runs are byte-identical on either. *)

type backend = Heap | Wheel

type t = H of Heap.t | W of Wheel.t

let create = function Heap -> H (Heap.create ()) | Wheel -> W (Wheel.create ())
let backend = function H _ -> Heap | W _ -> Wheel
let length = function H h -> Heap.length h | W w -> Wheel.length w
let is_empty = function H h -> Heap.is_empty h | W w -> Wheel.is_empty w

let add t ~key v =
  match t with H h -> Heap.add h ~key v | W w -> Wheel.add w ~key v

let pop = function H h -> Heap.pop h | W w -> Wheel.pop w
let pop_value = function H h -> Heap.pop_value h | W w -> Wheel.pop_value w
let peek_key = function H h -> Heap.peek_key h | W w -> Wheel.peek_key w

let peek_key_fast = function
  | H h -> Heap.peek_key_fast h
  | W w -> Wheel.peek_key_fast w

let pop_run t ~buf ~dummy =
  match t with
  | H h -> Heap.pop_run h ~buf ~dummy
  | W w -> Wheel.pop_run w ~buf ~dummy

let min_key_count = function
  | H h -> Heap.min_key_count h
  | W w -> Wheel.min_key_count w

let min_key_values = function
  | H h -> Heap.min_key_values h
  | W w -> Wheel.min_key_values w

let min_key_seqs = function
  | H h -> Heap.min_key_seqs h
  | W w -> Wheel.min_key_seqs w

let last_seq = function H h -> Heap.last_seq h | W w -> Wheel.last_seq w

let pop_min_nth t n =
  match t with H h -> Heap.pop_min_nth h n | W w -> Wheel.pop_min_nth w n

let clear = function H h -> Heap.clear h | W w -> Wheel.clear w
