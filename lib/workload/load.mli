(** The shared heavy-traffic workload generator.

    One configuration describes a client population (count, per-client
    operation budget), a keyspace with Zipfian/hot-key skew, an
    SET/GET/CAS mix, and — for sharded deployments — a multi-shard
    transaction mix.  Both the single-group {!Rsm_load} harness and the
    sharded {!Shard_load} harness draw from here, so their per-run stats
    plumbing ({!throughput}, {!latency_opt}) and key distributions are
    one implementation.

    Shard-awareness: keys are partitioned into per-shard pools using
    the {e same} router hash the sharded runner uses, and skew is
    applied inside each pool — every shard has its own hot keys, the
    planet-scale traffic shape.  [shards = 1] degenerates to plain
    Zipf over the whole keyspace. *)

type mix = { set_pct : int; get_pct : int; cas_pct : int }

val default_mix : mix
(** 60% SET, 25% GET, 15% CAS. *)

type t = {
  clients : int;
  ops_per_client : int;
  keys : int;
  mix : mix;
  zipf_s : float;  (** skew exponent; 0 = uniform *)
  tx_pct : int;  (** % of operations that are multi-key transactions *)
  tx_span : int;  (** shards a transaction touches (capped at [shards]) *)
  shards : int;
  seed : int;
}

val default : t

(** {1 Zipf sampling} *)

val make_cdf : keys:int -> s:float -> float array
(** Cumulative distribution of [i^-s] weights over ranks [1..keys]. *)

val zipf_pick : Dsim.Rng.t -> float array -> int
(** Index into the cdf by inverse-transform sampling. *)

val key_name : int -> string

(** {1 Generators} *)

val gen_kv_ops :
  ?shards:int ->
  ?keys:int ->
  ?mix:mix ->
  ?zipf_s:float ->
  seed:int64 ->
  clients:int ->
  commands:int ->
  unit ->
  Obj.Kv.op list array
(** Plain key-value command lists (no transactions) — the single-group
    generator, now shard-aware: with [shards > 1], traffic is balanced
    across the per-shard key pools. *)

val gen_obj_ops :
  (module Obj.Spec.S with type op = 'a) ->
  ?keys:int ->
  ?zipf_s:float ->
  seed:int64 ->
  clients:int ->
  commands:int ->
  unit ->
  'a list array
(** Per-object workloads: each command is drawn from the object's own
    characteristic mix ([Obj.Spec.S.gen_op]) at a Zipf-skewed key, so
    every instance sees contention shaped the same way the KV harness
    does.  Deterministic in [seed]. *)

val gen_shard_ops : t -> Shard.Runner.client_op list array
(** The sharded workload: singles plus [tx_pct]% multi-key
    transactions, each spanning [tx_span] distinct shards (when the
    deployment has them).  Deterministic in [t.seed]. *)

(** {1 Shared per-run stats} *)

val throughput : acked:int -> virtual_time:int -> float
(** Acked commands per 1000 virtual time units. *)

val latency_opt : float list -> Stats.summary option
