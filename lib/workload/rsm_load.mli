(** Closed-loop client workloads for the RSM subsystem, and the
    throughput sweeps built on them (the multi-shot analogue of
    {!Experiments}).

    A workload is K closed-loop clients, each issuing M key-value
    commands drawn deterministically from a seed: a configurable mix of
    [SET] / [GET] / [CAS] over a bounded, Zipf-skewed key space, so CAS
    contention and read-your-writes patterns actually occur.
    Generation and per-run stats now live in {!Load}, shared with the
    sharded harness ({!Shard_load}). *)

type op_mix = Load.mix = {
  set_pct : int;
  get_pct : int;
  cas_pct : int;  (** the three must sum to 100 *)
}

val default_mix : op_mix
(** 60% SET, 25% GET, 15% CAS. *)

module Kv_rep : sig
  type state

  val app : ?drop_nth:int -> unit -> (Obj.Kv.op, state) Rsm.Runner.app
end
(** The KV object lifted onto the consensus log
    ([Obj.Replicated.Make (Obj.Kv)]), re-exported so RSM callers can run
    workloads without instantiating the functor themselves. *)

val kv_app : (Obj.Kv.op, Kv_rep.state) Rsm.Runner.app
(** [Kv_rep.app ()] — the honest replicated KV application. *)

val gen_ops :
  ?shards:int ->
  ?keys:int ->
  ?mix:op_mix ->
  ?zipf_s:float ->
  seed:int64 ->
  clients:int ->
  commands:int ->
  unit ->
  Obj.Kv.op list array
(** One command list per client ([commands] each) over [keys] distinct
    keys (default 8 — small on purpose, to create contention), Zipf
    skew [zipf_s] (default 1.1).  Delegates to {!Load.gen_kv_ops};
    [shards > 1] makes the traffic shard-aware: keys are drawn from
    per-shard pools (the same router hash {!Shard.Runner} uses), skew
    applied inside each pool. *)

val crash_plan : n:int -> crashes:int -> (int * int) list
(** A staggered schedule crashing [crashes] distinct replicas early in
    the run.  @raise Invalid_argument unless [0 <= crashes < n]. *)

val crash_restart_plan :
  n:int -> crashes:int -> ?down_for:int -> unit -> (int * int) list * (int * int) list
(** The crash–{e recovery} variant: the same staggered crash schedule
    paired with a restart schedule bringing each victim back [down_for]
    (default 150) virtual-time units after its crash — the recoverable
    crash–restart model.  Feed the pair to
    {!Rsm.Runner.config.crash_schedule} / [restart_schedule]. *)

(** One run's scorecard, ready for tables. *)
type summary = {
  backend_name : string;
  batch : int;
  n : int;
  clients : int;
  commands : int;  (** distinct commands submitted *)
  acked : int;
  crashes : int;
  restarts : int;
  virtual_time : int;
  slots : int;
  instances : int;  (** nested binary consensus instances *)
  messages : int;
  throughput : float;  (** acked commands per 1000 virtual time units *)
  latency : Stats.summary option;  (** submit-to-ack virtual times *)
  violations : int;
      (** order + completeness + durability violations (want 0) *)
  ok : bool;  (** zero violations and identical live-replica digests *)
}

val summarize :
  Obj.Kv.op Rsm.Runner.config -> Obj.Kv.op Rsm.Runner.report -> summary

val run_one :
  ?n:int ->
  ?clients:int ->
  ?commands:int ->
  ?batch:int ->
  ?crashes:int ->
  ?restart_after:int ->
  ?seed:int ->
  ?trace_capacity:int ->
  ?quiet:bool ->
  ?ack_timeout:int ->
  ?max_events:int ->
  ?inject:(Obj.Kv.op Rsm.Runner.faults -> unit) ->
  ?store:Rsm.Runner.store_config ->
  backend:Rsm.Backend.t ->
  unit ->
  Obj.Kv.op Rsm.Runner.report * summary
(** Defaults: 5 replicas, 4 clients x 8 commands, batch 8, no crashes,
    seed 1.  [restart_after] turns the crash schedule into the
    crash–restart plan (each victim recovers that long after its crash).
    [trace_capacity] bounds retained trace events, [quiet] (default
    false) disables tracing entirely — no trace strings are built, and
    outcomes are unchanged ({!Rsm.Runner.config.quiet}) —, [inject]
    hands the run's fault controller to an external injector (see
    {!Rsm.Runner}),
    [store] gives every replica a simulated WAL-backed disk (durable
    crash–recovery model; durability-audit violations count into
    [summary.violations]). *)

val sweep_batches :
  ?n:int ->
  ?clients:int ->
  ?commands:int ->
  ?seeds:int ->
  ?batches:int list ->
  ?backends:Rsm.Backend.t list ->
  ?jobs:int ->
  Format.formatter ->
  summary list
(** The batching-throughput table: every backend at every batch size
    (defaults {1, 8, 32}), averaged over [seeds] (default 3) seeds —
    the experimental check that batching amortizes consensus latency.
    Returns one (mean-throughput) summary per backend x batch cell.
    [jobs] (default 1) fans the backend x batch cells over that many
    domains ({!Exec.Pool}); cell results and the printed table are
    identical at every job count. *)
