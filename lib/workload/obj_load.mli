(** Per-object workloads over the replicated universal construction.

    One run lifts a sequential object ({!Obj.Spec.S}) onto the
    consensus log via [Obj.Replicated], drives it with closed-loop
    clients drawing from the object's own operation mix under Zipf
    contention ({!Load.gen_obj_ops}), and gates the result three ways:
    the total-order checker (order/completeness/durability), the
    cross-replica digest comparison, and the generic Wing–Gong
    linearizability check over the recorded concurrent history. *)

type injector = { inject : 'op. 'op Rsm.Runner.faults -> unit }
(** An op-type-agnostic fault injector.  The field is polymorphic so
    one injector (e.g. [Nemesis.Interp.install_rsm plan]) can be handed
    to runs over any object's op type. *)

type summary = {
  object_name : string;
  backend_name : string;
  n : int;
  clients : int;
  commands : int;  (** distinct commands submitted *)
  acked : int;
  crashes : int;
  restarts : int;
  virtual_time : int;
  slots : int;
  throughput : float;
  order_violations : int;
      (** total-order + completeness + durability violations *)
  wg_violations : string list;
      (** non-empty iff the history is not linearizable w.r.t. the
          sequential spec (or the checker's state budget tripped) *)
  wg_states : int;  (** states the Wing–Gong search visited *)
  digests_agree : bool;
  ok : bool;
}

val max_history : int
(** Event cap of the Wing–Gong checker (62); [run_packed] rejects
    workloads with more than this many commands. *)

val run_packed :
  ?n:int ->
  ?clients:int ->
  ?commands:int ->
  ?batch:int ->
  ?crashes:int ->
  ?restart_after:int ->
  ?seed:int ->
  ?keys:int ->
  ?zipf_s:float ->
  ?quiet:bool ->
  ?trace_capacity:int ->
  ?ack_timeout:int ->
  ?max_events:int ->
  ?inject:injector ->
  ?store:Rsm.Runner.store_config ->
  ?drop_nth:int ->
  ?max_states:int ->
  backend:Rsm.Backend.t ->
  Obj.Spec.packed ->
  summary
(** One replicated run of the given object.  Defaults: 5 replicas, 3
    clients x 6 commands, batch 8, seed 1, 8 keys at skew 1.1.
    [crashes] / [restart_after] behave as in {!Rsm_load.run_one};
    [drop_nth] builds the {e broken} universal construction that
    discards the n-th state-changing log entry's effect (the Wing–Gong
    check convicts it while order and digest gates stay silent). *)

val run :
  ?n:int ->
  ?clients:int ->
  ?commands:int ->
  ?batch:int ->
  ?crashes:int ->
  ?restart_after:int ->
  ?seed:int ->
  ?keys:int ->
  ?zipf_s:float ->
  ?quiet:bool ->
  ?trace_capacity:int ->
  ?ack_timeout:int ->
  ?max_events:int ->
  ?inject:injector ->
  ?store:Rsm.Runner.store_config ->
  ?drop_nth:int ->
  ?max_states:int ->
  backend:Rsm.Backend.t ->
  object_name:string ->
  unit ->
  summary
(** [run_packed] through the object registry.
    @raise Invalid_argument on an unknown object name. *)

val table : ?ppf:Format.formatter -> summary list -> unit
(** Print a fixed-width scorecard table of runs (byte-stable given equal
    summaries). *)
