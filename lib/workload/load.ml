type mix = { set_pct : int; get_pct : int; cas_pct : int }

let default_mix = { set_pct = 60; get_pct = 25; cas_pct = 15 }

type t = {
  clients : int;
  ops_per_client : int;
  keys : int;
  mix : mix;
  zipf_s : float;
  tx_pct : int;
  tx_span : int;
  shards : int;
  seed : int;
}

let default =
  {
    clients = 16;
    ops_per_client = 4;
    keys = 64;
    mix = default_mix;
    zipf_s = 1.1;
    tx_pct = 10;
    tx_span = 2;
    shards = 1;
    seed = 1;
  }

let validate l =
  if l.mix.set_pct + l.mix.get_pct + l.mix.cas_pct <> 100 then
    invalid_arg "Load: op mix must sum to 100";
  if l.clients < 1 || l.ops_per_client < 0 then
    invalid_arg "Load: need clients >= 1 and ops >= 0";
  if l.keys < 1 then invalid_arg "Load: need at least one key";
  if l.tx_pct < 0 || l.tx_pct > 100 then invalid_arg "Load: tx_pct in [0,100]";
  if l.tx_span < 1 then invalid_arg "Load: tx_span >= 1";
  if l.shards < 1 then invalid_arg "Load: shards >= 1"

let key_name i = Printf.sprintf "k%d" i

let make_cdf ~keys ~s =
  if keys < 1 then invalid_arg "Load.make_cdf: need at least one key";
  let w = Array.init keys (fun i -> (1. /. float_of_int (i + 1)) ** s) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_pick rng cdf =
  let u = Dsim.Rng.float rng 1.0 in
  let n = Array.length cdf in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then bs (mid + 1) hi else bs lo mid
  in
  min (n - 1) (bs 0 (n - 1))

(* The shard-aware key pools: key i belongs to the shard the sharded
   runner's router would place it on, so a generator targeting S shards
   can draw balanced per-shard traffic with Zipfian skew *inside* each
   shard's pool (the hot-key model: every shard has its own hot keys).
   With shards = 1 this degenerates to plain Zipf over all keys. *)
let pools ~shards ~keys =
  let router = Shard.Router.create ~shards in
  let pools = Array.make shards [] in
  for i = keys - 1 downto 0 do
    let s = Shard.Router.shard_of_key router (key_name i) in
    pools.(s) <- i :: pools.(s)
  done;
  (* a pool can be empty for tiny keyspaces; give it a fallback key *)
  Array.map (fun p -> Array.of_list (if p = [] then [ 0 ] else p)) pools

type sampler = { pools : int array array; cdfs : float array array }

let sampler ~shards ~keys ~zipf_s =
  let pools = pools ~shards ~keys in
  { pools; cdfs = Array.map (fun p -> make_cdf ~keys:(Array.length p) ~s:zipf_s) pools }

let sample_key sampler rng ~shard =
  sampler.pools.(shard).(zipf_pick rng sampler.cdfs.(shard))

let kv_cmd_of_roll ~mix rng key tag =
  let roll = Dsim.Rng.int rng 100 in
  if roll < mix.set_pct then Obj.Kv.Set (key, tag)
  else if roll < mix.set_pct + mix.get_pct then Obj.Kv.Get key
  else Obj.Kv.Cas { key; expect = None; update = "cas-" ^ tag }

let gen_kv_ops ?(shards = 1) ?(keys = 8) ?(mix = default_mix) ?(zipf_s = 0.)
    ~seed ~clients ~commands () =
  if mix.set_pct + mix.get_pct + mix.cas_pct <> 100 then
    invalid_arg "Load.gen_kv_ops: op mix must sum to 100";
  let rng = Dsim.Rng.create seed in
  let sm = sampler ~shards ~keys ~zipf_s in
  Array.init clients (fun c ->
      List.init commands (fun k ->
          let shard = Dsim.Rng.int rng shards in
          let key = key_name (sample_key sm rng ~shard) in
          kv_cmd_of_roll ~mix rng key (Printf.sprintf "c%d.%d" c k)))

let gen_obj_ops (type a) (module O : Obj.Spec.S with type op = a) ?(keys = 8)
    ?(zipf_s = 0.) ~seed ~clients ~commands () : a list array =
  let rng = Dsim.Rng.create seed in
  let sm = sampler ~shards:1 ~keys ~zipf_s in
  Array.init clients (fun c ->
      List.init commands (fun k ->
          let key = key_name (sample_key sm rng ~shard:0) in
          O.gen_op ~rng ~key ~tag:(Printf.sprintf "c%d.%d" c k)))

let gen_shard_ops l =
  validate l;
  let rng = Dsim.Rng.create (Int64.of_int l.seed) in
  let sm = sampler ~shards:l.shards ~keys:l.keys ~zipf_s:l.zipf_s in
  Array.init l.clients (fun c ->
      List.init l.ops_per_client (fun k ->
          if Dsim.Rng.int rng 100 < l.tx_pct then begin
            (* a multi-key transaction spanning distinct shards when the
               deployment has them: one key from each of [tx_span]
               consecutive shards starting at a random one *)
            let span = min l.tx_span l.shards in
            let start = Dsim.Rng.int rng l.shards in
            let wops =
              List.init span (fun j ->
                  let shard = (start + j) mod l.shards in
                  Shard.Cmd.W_add (key_name (sample_key sm rng ~shard), 1))
            in
            Shard.Runner.Tx wops
          end
          else
            let shard = Dsim.Rng.int rng l.shards in
            let key = key_name (sample_key sm rng ~shard) in
            Shard.Runner.Single
              (kv_cmd_of_roll ~mix:l.mix rng key (Printf.sprintf "c%d.%d" c k))))

let throughput ~acked ~virtual_time =
  if virtual_time = 0 then 0.
  else 1000. *. float_of_int acked /. float_of_int virtual_time

let latency_opt = function [] -> None | ls -> Some (Stats.summarize ls)
