(* Detector-parameter sweeps over the indulgent consensus runner.

   Two bench-facing tables:

   - decision latency vs the stability window: crash the stable leader
     (node 0) early, so reaching a decision requires the survivors to
     actually suspect it — the decision lands roughly one suspicion
     timeout plus two round trips after the crash, making the
     window/latency trade-off visible;

   - heartbeat overhead vs the period: crash one follower permanently
     so the supervisor never stops the run early, and count heartbeats
     over the full fixed horizon.

   Campaign-grade sweeps (parameter grid x random fault plans) live in
   [Nemesis.Detect_campaign]; these are the deterministic single-run
   cells the benchmark baseline records. *)

module Runner = Detect.Runner
module Timeout = Detect.Timeout

type summary = {
  period : int;
  window : int;  (* initial suspicion timeout *)
  seeds : int;
  decided : int;  (* runs where every surviving node decided *)
  mean_latency : float option;  (* virtual time of the first decision *)
  mean_stability : float option;  (* time to a stable omega *)
  suspicions : int;
  false_suspicions : int;
  heartbeats : int;
  heartbeats_per_kvt : float;
  virtual_time : int;  (* summed over the cell's runs *)
  ok : bool;  (* all decided, agreement + validity everywhere *)
}

let crash_at ~victim ~at (f : Runner.faults) =
  Dsim.Engine.schedule f.Runner.engine ~delay:at (fun () ->
      f.Runner.crash victim)

let mean = function
  | [] -> None
  | l ->
      Some (List.fold_left ( +. ) 0. l /. float_of_int (List.length l))

let cell ~n ~seeds ~horizon ~params ~victim ~crash_time =
  let runs =
    List.init seeds (fun s ->
        Runner.run ~n
          ~seed:(Int64.of_int (s + 1))
          ~params ~horizon ~quiet:true
          ~install:(crash_at ~victim ~at:crash_time)
          ())
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 runs in
  let vt = sum (fun r -> r.Runner.virtual_time) in
  let hb = sum (fun r -> r.Runner.heartbeats_sent) in
  {
    period = params.Timeout.period;
    window = params.Timeout.initial;
    seeds;
    decided =
      List.length (List.filter (fun r -> r.Runner.all_live_decided) runs);
    mean_latency =
      mean
        (List.filter_map
           (fun r -> Option.map float_of_int r.Runner.first_decision)
           runs);
    mean_stability =
      mean
        (List.filter_map
           (fun r -> Option.map float_of_int r.Runner.omega_stable_at)
           runs);
    suspicions = sum (fun r -> r.Runner.suspicions);
    false_suspicions = sum (fun r -> r.Runner.false_suspicions);
    heartbeats = hb;
    heartbeats_per_kvt =
      (if vt = 0 then 0. else 1000. *. float_of_int hb /. float_of_int vt);
    virtual_time = vt;
    ok =
      List.for_all
        (fun r ->
          r.Runner.all_live_decided && r.Runner.agreement_ok
          && r.Runner.validity_ok)
        runs;
  }

let fmt_mean = function None -> "-" | Some m -> Printf.sprintf "%.1f" m

let sweep_windows ?(n = 4) ?(seeds = 3) ?(windows = [ 50; 100; 200; 400 ])
    ?(horizon = 2000) ppf =
  let cells =
    List.map
      (fun w ->
        let params =
          {
            Timeout.default with
            Timeout.initial = w;
            cap = max Timeout.default.Timeout.cap (4 * w);
          }
        in
        (* killing the stable leader makes the window the price of
           progress: nobody else coordinates until 0 is suspected *)
        cell ~n ~seeds ~horizon ~params ~victim:0 ~crash_time:10)
      windows
  in
  Table.print ~ppf
    ~title:
      (Printf.sprintf
         "decision latency vs detector stability window (n=%d, leader \
          crash at t=10, %d seeds)"
         n seeds)
    ~headers:
      [ "window"; "latency"; "omega-stable"; "suspicions"; "false"; "ok" ]
    (List.map
       (fun c ->
         [
           string_of_int c.window;
           fmt_mean c.mean_latency;
           fmt_mean c.mean_stability;
           string_of_int c.suspicions;
           string_of_int c.false_suspicions;
           (if c.ok then "yes" else "NO");
         ])
       cells);
  cells

let sweep_periods ?(n = 4) ?(seeds = 3) ?(periods = [ 10; 20; 40; 80 ])
    ?(horizon = 2000) ppf =
  let cells =
    List.map
      (fun p ->
        let params =
          {
            Timeout.default with
            Timeout.period = p;
            (* keep accuracy: the window must clear the worst benign
               heartbeat gap (period + max latency jitter) at every
               period in the sweep *)
            initial = max Timeout.default.Timeout.initial ((2 * p) + 12);
          }
        in
        (* a permanently-crashed follower keeps the run alive to the
           horizon, so overhead is measured over fixed virtual time *)
        cell ~n ~seeds ~horizon ~params ~victim:(n - 1) ~crash_time:5)
      periods
  in
  Table.print ~ppf
    ~title:
      (Printf.sprintf
         "heartbeat overhead vs period (n=%d, horizon %d, %d seeds)" n horizon
         seeds)
    ~headers:[ "period"; "hb"; "hb/kvt"; "suspicions"; "false"; "ok" ]
    (List.map
       (fun c ->
         [
           string_of_int c.period;
           string_of_int c.heartbeats;
           Printf.sprintf "%.1f" c.heartbeats_per_kvt;
           string_of_int c.suspicions;
           string_of_int c.false_suspicions;
           (if c.ok then "yes" else "NO");
         ])
       cells);
  cells
