(** The designed evaluation suite (see DESIGN.md Section 4 — the paper is
    a brief announcement with no tables or figures, so these experiments
    operationalize its claims; EXPERIMENTS.md records the outcomes).

    Every experiment prints one or more tables and returns a machine-
    readable summary used by the test suite and by EXPERIMENTS.md. *)

type scale = Quick | Full

val seeds_for : scale -> int
(** Seeds per configuration: 10 (Quick) or 40 (Full). *)

(** E1 — Ben-Or: decomposed (VAC + reconciliator) vs monolithic. *)
module E1 : sig
  type row = {
    n : int;
    seeds : int;
    identical_runs : int;  (** seed-for-seed identical decisions & rounds *)
    all_correct : bool;  (** every run decided, agreed, zero violations *)
    mean_rounds_decomposed : float;
    mean_rounds_monolithic : float;
    mean_messages : float;
  }

  val run : ?scale:scale -> Format.formatter -> row list
end

(** E2 — Ben-Or rounds-to-decide across input splits and crash loads. *)
module E2 : sig
  type row = {
    n : int;
    split : string;
    crashes : int;
    rounds : Stats.summary;
    messages : Stats.summary;
    all_correct : bool;
  }

  val run : ?scale:scale -> Format.formatter -> row list

  type coin_row = {
    coin : string;
    coin_n : int;
    coin_rounds : Stats.summary;
    coin_correct : bool;
  }

  val run_coins : ?scale:scale -> Format.formatter -> coin_row list
  (** E2b: the paper's private-coin reconciliator vs a weak common coin —
      expected rounds collapse from heavy-tailed to O(1). *)
end

(** E3 — Phase-King (and Phase-Queen) resilience across Byzantine
    strategies, plus the first-commit counterexample. *)
module E3 : sig
  type row = {
    n : int;
    t : int;
    strategy : string;
    agreement : bool;  (** final decisions agreed in every run *)
    object_violations : int;
    mean_first_commit_round : float;  (** 0 when nobody ever committed *)
  }

  val run :
    ?scale:scale -> ?algorithm:Phase_king.Runner.algorithm -> Format.formatter -> row list

  val counterexample : Format.formatter -> bool
  (** Runs the commit-then-steal scenario; true iff the final-preference
      rule agreed while the first-commit rule disagreed (the expected
      separation). *)
end

(** E4 — King vs Queen message complexity (both quadratic in n; Queen
    spends two lock-step rounds per phase against King's three, at the
    price of tolerating only [t < n/4]). *)
module E4 : sig
  type row = {
    algorithm : string;
    n : int;
    t : int;
    template_rounds : int;
    sync_rounds : int;
    messages : int;
    messages_over_n2 : float;
  }

  val run : ?scale:scale -> Format.formatter -> row list
end

(** E5 — Raft consensus: election and decision latency, fault recovery. *)
module E5 : sig
  type row = {
    n : int;
    fault : string;
    election_time : Stats.summary;  (** virtual time to first leader *)
    decide_time : Stats.summary;  (** virtual time to all-live-decided *)
    terms_used : Stats.summary;
    all_correct : bool;
  }

  val run : ?scale:scale -> Format.formatter -> row list
end

(** E6 — Raft's VAC view: per-term confidence census across timeout
    spreads, and the timer reconciliator's activity. *)
module E6 : sig
  type row = {
    spread : string;
    vacillate : int;
    adopt : int;
    commit : int;
    reconciliations : Stats.summary;
    view_violations : int;
    decide_time : Stats.summary;
  }

  val run : ?scale:scale -> Format.formatter -> row list
end

(** E7 — the Section-5 separation, executable. *)
module E7 : sig
  type row = { case : string; runs : int; witnesses : int; clean : bool }
  (** [witnesses] counts runs exhibiting the phenomenon the case is about
      (property violations for the constructions — expected 0; separation
      scenarios for the counterexamples — expected > 0). *)

  val run : ?scale:scale -> Format.formatter -> row list
end

(** E8 — the cost of modularity: host-time per simulated run,
    decomposed vs monolithic (the statistical version lives in
    [bench/main.ml]). *)
module E8 : sig
  type row = { algorithm : string; variant : string; ms_per_run : float }

  val run : ?scale:scale -> Format.formatter -> row list
end

val all_ids : string list
(** ["e1"; ...; "e8"]. *)

val run_all :
  ?scale:scale ->
  ?only:string list ->
  ?csv_dir:string ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** Run the listed experiments (default: all) and print their tables.
    With [csv_dir], also write one machine-readable [eN.csv] per table
    into that (existing) directory.  [jobs] (default 1) fans whole
    experiments over that many domains ({!Exec.Pool}); tables and CSVs
    come out in experiment order either way, and every figure except
    E8's wall-clock timings is deterministic. *)
