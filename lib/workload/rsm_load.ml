type op_mix = Load.mix = { set_pct : int; get_pct : int; cas_pct : int }

let default_mix = Load.default_mix

let gen_ops ?(shards = 1) ?(keys = 8) ?(mix = default_mix) ?(zipf_s = 1.1) ~seed
    ~clients ~commands () =
  Load.gen_kv_ops ~shards ~keys ~mix ~zipf_s ~seed ~clients ~commands ()

let crash_plan ~n ~crashes =
  if crashes < 0 || crashes >= n then
    invalid_arg "Rsm_load.crash_plan: need 0 <= crashes < n";
  List.init crashes (fun k -> (40 + (60 * k), k))

let crash_restart_plan ~n ~crashes ?(down_for = 150) () =
  if down_for < 1 then
    invalid_arg "Rsm_load.crash_restart_plan: down_for must be >= 1";
  let cs = crash_plan ~n ~crashes in
  (cs, List.map (fun (t, p) -> (t + down_for, p)) cs)

type summary = {
  backend_name : string;
  batch : int;
  n : int;
  clients : int;
  commands : int;
  acked : int;
  crashes : int;
  restarts : int;
  virtual_time : int;
  slots : int;
  instances : int;
  messages : int;
  throughput : float;
  latency : Stats.summary option;
  violations : int;
  ok : bool;
}

(* The KV store lifted onto the consensus log — the app every KV
   workload run replicates. *)
module Kv_rep = Obj.Replicated.Make (Obj.Kv)

let kv_app = Kv_rep.app ()

let summarize (cfg : _ Rsm.Runner.config) (r : _ Rsm.Runner.report) =
  let violations =
    List.length r.violations + List.length r.completeness
    + List.length r.durability
  in
  {
    backend_name = Rsm.Backend.name cfg.backend;
    batch = cfg.batch;
    n = cfg.n;
    clients = Array.length cfg.ops;
    commands = r.submitted;
    acked = r.acked;
    crashes = List.length r.crashed;
    restarts = List.length r.restarted;
    virtual_time = r.virtual_time;
    slots = r.slots;
    instances = r.instances;
    messages = r.messages_sent;
    throughput = Load.throughput ~acked:r.acked ~virtual_time:r.virtual_time;
    latency = Load.latency_opt r.latencies;
    violations;
    ok = (violations = 0 && r.digests_agree);
  }

let run_one ?(n = 5) ?(clients = 4) ?(commands = 8) ?(batch = 8) ?(crashes = 0)
    ?restart_after ?(seed = 1) ?trace_capacity ?(quiet = false) ?ack_timeout
    ?max_events ?inject ?store ~backend () =
  let ops = gen_ops ~seed:(Int64.of_int seed) ~clients ~commands () in
  let crash_schedule, restart_schedule =
    match restart_after with
    | None -> (crash_plan ~n ~crashes, [])
    | Some down_for -> crash_restart_plan ~n ~crashes ~down_for ()
  in
  let base = Rsm.Runner.default_config ~n ~ops in
  let cfg =
    {
      base with
      backend;
      batch;
      seed = Int64.of_int seed;
      crash_schedule;
      restart_schedule;
      trace_capacity;
      quiet;
      inject;
      ack_timeout = Option.value ack_timeout ~default:base.Rsm.Runner.ack_timeout;
      max_events = Option.value max_events ~default:base.Rsm.Runner.max_events;
      store;
    }
  in
  let r = Rsm.Runner.run kv_app cfg in
  (r, summarize cfg r)

let sweep_batches ?(n = 5) ?(clients = 24) ?(commands = 4) ?(seeds = 3)
    ?(batches = [ 1; 8; 32 ]) ?(backends = Rsm.Backend.all) ?(jobs = 1) ppf =
  (* One pool item per (backend, batch) cell; each cell still runs its
     seeds sequentially.  Cells are independent simulations, and the
     result list keeps cell order, so jobs > 1 changes wall time only. *)
  let cell (backend, batch) =
    let runs =
      List.init seeds (fun s ->
          snd
            (run_one ~n ~clients ~commands ~batch ~seed:(s + 1) ~quiet:true
               ~backend ()))
    in
    let fmean f = Stats.mean (List.map f runs) in
    let imean f = int_of_float (Float.round (fmean (fun r -> float_of_int (f r)))) in
    {
      (List.hd runs) with
      commands = imean (fun r -> r.commands);
      acked = imean (fun r -> r.acked);
      virtual_time = imean (fun r -> r.virtual_time);
      slots = imean (fun r -> r.slots);
      instances = imean (fun r -> r.instances);
      messages = imean (fun r -> r.messages);
      throughput = fmean (fun r -> r.throughput);
      latency = None;
      violations = List.fold_left (fun a r -> a + r.violations) 0 runs;
      ok = List.for_all (fun r -> r.ok) runs;
    }
  in
  let cells =
    Exec.Pool.map_list ~jobs cell
      (List.concat_map
         (fun backend -> List.map (fun batch -> (backend, batch)) batches)
         backends)
  in
  Table.print ~ppf
    ~title:
      (Printf.sprintf
         "RSM throughput vs batch size (n=%d, %d clients x %d cmds, %d seeds)" n
         clients commands seeds)
    ~headers:
      [ "backend"; "batch"; "slots"; "instances"; "vtime"; "cmds/kvt"; "ok" ]
    (List.map
       (fun c ->
         [
           c.backend_name;
           string_of_int c.batch;
           string_of_int c.slots;
           string_of_int c.instances;
           string_of_int c.virtual_time;
           Printf.sprintf "%.1f" c.throughput;
           (if c.ok then "yes" else "NO");
         ])
       cells);
  cells
