type summary = {
  backend_name : string;
  shards : int;
  replicas : int;
  clients : int;
  total_ops : int;
  singles_acked : int;
  txs_committed : int;
  txs_aborted : int;
  abort_rate : float;
  virtual_time : int;
  throughput : float;
  per_shard_applied : int array;
  single_latency : Stats.summary option;
  tx_latency : Stats.summary option;
  violations : int;
  ok : bool;
}

let summarize (cfg : Shard.Runner.config) (r : Shard.Runner.report) =
  let per_shard =
    Array.fold_left
      (fun acc (sr : Shard.Runner.shard_report) ->
        acc
        + List.length sr.Shard.Runner.sr_violations
        + List.length sr.Shard.Runner.sr_completeness
        + List.length sr.Shard.Runner.sr_durability)
      0 r.Shard.Runner.shard_reports
  in
  let violations =
    per_shard
    + List.length r.Shard.Runner.atomicity
    + List.length r.Shard.Runner.tx_completeness
  in
  let digests_agree =
    Array.for_all
      (fun (sr : Shard.Runner.shard_report) -> sr.Shard.Runner.sr_digests_agree)
      r.Shard.Runner.shard_reports
  in
  let done_ops = r.Shard.Runner.singles_acked + r.Shard.Runner.txs_committed in
  {
    backend_name = Rsm.Backend.name cfg.Shard.Runner.backend;
    shards = cfg.Shard.Runner.shards;
    replicas = cfg.Shard.Runner.replicas;
    clients = Array.length cfg.Shard.Runner.ops;
    total_ops =
      Array.fold_left (fun a l -> a + List.length l) 0 cfg.Shard.Runner.ops;
    singles_acked = r.Shard.Runner.singles_acked;
    txs_committed = r.Shard.Runner.txs_committed;
    txs_aborted = r.Shard.Runner.txs_aborted;
    abort_rate = r.Shard.Runner.abort_rate;
    virtual_time = r.Shard.Runner.virtual_time;
    throughput =
      Load.throughput ~acked:done_ops ~virtual_time:r.Shard.Runner.virtual_time;
    per_shard_applied =
      Array.map
        (fun (sr : Shard.Runner.shard_report) -> sr.Shard.Runner.sr_applied)
        r.Shard.Runner.shard_reports;
    single_latency = Load.latency_opt r.Shard.Runner.single_latencies;
    tx_latency = Load.latency_opt r.Shard.Runner.tx_latencies;
    violations;
    ok = (violations = 0 && digests_agree);
  }

let config ?(shards = 4) ?(replicas = 3) ?(batch = 16) ?(seed = 1) ?load
    ?arrival ?store ?inject ?(broken_2pc = false)
    ?(coordinator_crash = fun _ -> Shard.Runner.No_crash) ?ack_timeout
    ?max_events ?trace_capacity ?(quiet = true) ~backend () =
  let l =
    match load with
    | Some l -> { l with Load.shards; seed }
    | None -> { Load.default with shards; seed }
  in
  let ops = Load.gen_shard_ops l in
  let base = Shard.Runner.default_config ~shards ~ops in
  {
    base with
    Shard.Runner.replicas;
    backend;
    batch;
    seed = Int64.of_int seed;
    arrival = Option.value arrival ~default:base.Shard.Runner.arrival;
    store;
    inject;
    broken_2pc;
    coordinator_crash;
    ack_timeout = Option.value ack_timeout ~default:base.Shard.Runner.ack_timeout;
    max_events = Option.value max_events ~default:base.Shard.Runner.max_events;
    trace_capacity;
    quiet;
  }

let run_one ?shards ?replicas ?batch ?seed ?load ?arrival ?store ?inject
    ?broken_2pc ?coordinator_crash ?ack_timeout ?max_events ?trace_capacity
    ?quiet ~backend () =
  let cfg =
    config ?shards ?replicas ?batch ?seed ?load ?arrival ?store ?inject
      ?broken_2pc ?coordinator_crash ?ack_timeout ?max_events ?trace_capacity
      ?quiet ~backend ()
  in
  let r = Shard.Runner.run cfg in
  (r, summarize cfg r)

let sweep_shards ?(shard_counts = [ 1; 2; 4 ]) ?load ?(seeds = 2)
    ?(backends = [ Rsm.Backend.ben_or ]) ?(jobs = 1) ppf =
  (* One pool cell per (backend, shard count); seeds run sequentially
     inside the cell.  The workload (clients x ops) is held fixed while
     the shard count varies, so the table shows how the same traffic
     scales when the keyspace is split. *)
  let cell (backend, shards) =
    let runs =
      List.init seeds (fun s ->
          snd (run_one ~shards ~seed:(s + 1) ?load ~backend ()))
    in
    let fmean f = Stats.mean (List.map f runs) in
    let imean f =
      int_of_float (Float.round (fmean (fun r -> float_of_int (f r))))
    in
    {
      (List.hd runs) with
      singles_acked = imean (fun r -> r.singles_acked);
      txs_committed = imean (fun r -> r.txs_committed);
      txs_aborted = imean (fun r -> r.txs_aborted);
      abort_rate = fmean (fun r -> r.abort_rate);
      virtual_time = imean (fun r -> r.virtual_time);
      throughput = fmean (fun r -> r.throughput);
      single_latency = None;
      tx_latency = None;
      violations = List.fold_left (fun a r -> a + r.violations) 0 runs;
      ok = List.for_all (fun r -> r.ok) runs;
    }
  in
  let cells =
    Exec.Pool.map_list ~jobs cell
      (List.concat_map
         (fun backend -> List.map (fun s -> (backend, s)) shard_counts)
         backends)
  in
  let l = Option.value load ~default:Load.default in
  Table.print ~ppf
    ~title:
      (Printf.sprintf
         "Sharded throughput vs shard count (%d clients x %d ops, %d%% tx, %d \
          seeds)"
         l.Load.clients l.Load.ops_per_client l.Load.tx_pct seeds)
    ~headers:
      [ "backend"; "shards"; "acked"; "tx ok/ab"; "abort%"; "vtime"; "ops/kvt"; "ok" ]
    (List.map
       (fun c ->
         [
           c.backend_name;
           string_of_int c.shards;
           string_of_int c.singles_acked;
           Printf.sprintf "%d/%d" c.txs_committed c.txs_aborted;
           Printf.sprintf "%.0f" (100. *. c.abort_rate);
           string_of_int c.virtual_time;
           Printf.sprintf "%.1f" c.throughput;
           (if c.ok then "yes" else "NO");
         ])
       cells);
  cells
