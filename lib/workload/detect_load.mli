(** Deterministic detector-parameter sweeps over the indulgent
    consensus runner ({!Detect.Runner}) — the single-run bench cells
    behind two trade-off tables:

    - {b decision latency vs stability window}: the stable leader is
      crashed early, so the survivors pay one suspicion timeout before
      anyone else coordinates — latency tracks the window;
    - {b heartbeat overhead vs period}: a follower is crashed
      permanently so the run lasts the full horizon, and heartbeats
      are counted over fixed virtual time.

    Campaign-grade sweeps over random fault plans live in
    [Nemesis.Detect_campaign] (which sits above this library). *)

type summary = {
  period : int;
  window : int;  (** initial suspicion timeout *)
  seeds : int;
  decided : int;  (** runs where every surviving node decided *)
  mean_latency : float option;  (** virtual time of the first decision *)
  mean_stability : float option;  (** time to a stable omega *)
  suspicions : int;
  false_suspicions : int;
  heartbeats : int;
  heartbeats_per_kvt : float;  (** heartbeats per 1000 virtual time units *)
  virtual_time : int;  (** summed over the cell's runs *)
  ok : bool;  (** all decided, agreement + validity everywhere *)
}

val sweep_windows :
  ?n:int ->
  ?seeds:int ->
  ?windows:int list ->
  ?horizon:int ->
  Format.formatter ->
  summary list
(** One cell per stability window (default [{50; 100; 200; 400}]),
    [seeds] (default 3) runs each, leader crash at t=10; prints the
    latency table and returns the cells in window order. *)

val sweep_periods :
  ?n:int ->
  ?seeds:int ->
  ?periods:int list ->
  ?horizon:int ->
  Format.formatter ->
  summary list
(** One cell per heartbeat period (default [{10; 20; 40; 80}]), with
    the window scaled to stay accurate at every period; prints the
    overhead table and returns the cells in period order. *)
