type injector = { inject : 'op. 'op Rsm.Runner.faults -> unit }

type summary = {
  object_name : string;
  backend_name : string;
  n : int;
  clients : int;
  commands : int;
  acked : int;
  crashes : int;
  restarts : int;
  virtual_time : int;
  slots : int;
  throughput : float;
  order_violations : int;
  wg_violations : string list;
  wg_states : int;
  digests_agree : bool;
  ok : bool;
}

(* Upper bound the Wing–Gong checker accepts (the linearized set lives
   in one immediate int). *)
let max_history = 62

let run_packed ?(n = 5) ?(clients = 3) ?(commands = 6) ?(batch = 8)
    ?(crashes = 0) ?restart_after ?(seed = 1) ?(keys = 8) ?(zipf_s = 1.1)
    ?(quiet = false) ?trace_capacity ?ack_timeout ?max_events ?inject ?store
    ?drop_nth ?max_states ~backend (module O : Obj.Spec.S) : summary =
  if clients * commands > max_history then
    invalid_arg
      (Printf.sprintf
         "Obj_load.run_packed: %d clients x %d commands exceeds the %d-event \
          Wing–Gong cap"
         clients commands max_history);
  let module Rep = Obj.Replicated.Make (O) in
  let ops =
    Load.gen_obj_ops
      (module O)
      ~keys ~zipf_s ~seed:(Int64.of_int seed) ~clients ~commands ()
  in
  let crash_schedule, restart_schedule =
    match restart_after with
    | None -> (Rsm_load.crash_plan ~n ~crashes, [])
    | Some down_for -> Rsm_load.crash_restart_plan ~n ~crashes ~down_for ()
  in
  let base = Rsm.Runner.default_config ~n ~ops in
  let cfg =
    {
      base with
      Rsm.Runner.backend;
      batch;
      seed = Int64.of_int seed;
      crash_schedule;
      restart_schedule;
      quiet;
      trace_capacity;
      inject = Option.map (fun i -> i.inject) inject;
      ack_timeout = Option.value ack_timeout ~default:base.Rsm.Runner.ack_timeout;
      max_events = Option.value max_events ~default:base.Rsm.Runner.max_events;
      store;
    }
  in
  let r = Rsm.Runner.run (Rep.app ?drop_nth ()) cfg in
  let wg = Rep.check ?max_states r.Rsm.Runner.history in
  let wg_violations =
    match wg.Rep.W.verdict with
    | Rep.W.Linearizable _ -> []
    | _ -> Rep.violations ?max_states r.Rsm.Runner.history
  in
  let order_violations =
    List.length r.violations + List.length r.completeness
    + List.length r.durability
  in
  {
    object_name = O.name;
    backend_name = Rsm.Backend.name backend;
    n;
    clients;
    commands = r.submitted;
    acked = r.acked;
    crashes = List.length r.crashed;
    restarts = List.length r.restarted;
    virtual_time = r.virtual_time;
    slots = r.slots;
    throughput = Load.throughput ~acked:r.acked ~virtual_time:r.virtual_time;
    order_violations;
    wg_violations;
    wg_states = wg.Rep.W.states;
    digests_agree = r.digests_agree;
    ok =
      order_violations = 0 && r.digests_agree && wg_violations = []
      && r.engine_outcome = Dsim.Engine.Quiescent;
  }

let run ?n ?clients ?commands ?batch ?crashes ?restart_after ?seed ?keys
    ?zipf_s ?quiet ?trace_capacity ?ack_timeout ?max_events ?inject ?store
    ?drop_nth ?max_states ~backend ~object_name () =
  run_packed ?n ?clients ?commands ?batch ?crashes ?restart_after ?seed ?keys
    ?zipf_s ?quiet ?trace_capacity ?ack_timeout ?max_events ?inject ?store
    ?drop_nth ?max_states ~backend
    (Obj.Registry.find object_name)

let table ?ppf summaries =
  let ppf = Option.value ppf ~default:Format.std_formatter in
  Table.print ~ppf ~title:"universal construction: per-object runs"
    ~headers:
      [ "object"; "backend"; "acked"; "slots"; "vtime"; "wg-states"; "ok" ]
    (List.map
       (fun s ->
         [
           s.object_name;
           s.backend_name;
           Printf.sprintf "%d/%d" s.acked s.commands;
           string_of_int s.slots;
           string_of_int s.virtual_time;
           string_of_int s.wg_states;
           (if s.ok then "yes" else "NO");
         ])
       summaries)
