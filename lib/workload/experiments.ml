type scale = Quick | Full

let seeds_for = function Quick -> 10 | Full -> 40

let f2 x = Printf.sprintf "%.2f" x
let summ s = Format.asprintf "%a" Stats.pp_summary s

let split_inputs n = Array.init n (fun i -> i mod 2 = 0)

let staggered_crashes count = List.init count (fun k -> (10 + (13 * k), 2 * k))

(* ----------------------------------------------------------------- E1 -- *)

module E1 = struct
  type row = {
    n : int;
    seeds : int;
    identical_runs : int;
    all_correct : bool;
    mean_rounds_decomposed : float;
    mean_rounds_monolithic : float;
    mean_messages : float;
  }

  let run ?(scale = Quick) ppf =
    let seeds = seeds_for scale in
    let rows =
      List.map
        (fun n ->
          let identical = ref 0 in
          let correct = ref true in
          let rounds_d = ref [] and rounds_m = ref [] and msgs = ref [] in
          for seed = 1 to seeds do
            let base = Ben_or.Runner.default_config ~n ~inputs:(split_inputs n) in
            let base = { base with seed = Int64.of_int seed; max_rounds = 3000 } in
            let rd = Ben_or.Runner.run { base with mode = Ben_or.Runner.Decomposed } in
            let rm = Ben_or.Runner.run { base with mode = Ben_or.Runner.Monolithic } in
            let good r =
              r.Ben_or.Runner.violations = []
              && r.Ben_or.Runner.process_failures = []
              && Ben_or.Runner.all_decided_same r ~expected_live:n
            in
            if not (good rd && good rm) then correct := false;
            if
              rd.Ben_or.Runner.decisions = rm.Ben_or.Runner.decisions
              && rd.Ben_or.Runner.messages_sent = rm.Ben_or.Runner.messages_sent
            then incr identical;
            rounds_d := float_of_int rd.Ben_or.Runner.max_decision_round :: !rounds_d;
            rounds_m := float_of_int rm.Ben_or.Runner.max_decision_round :: !rounds_m;
            msgs := float_of_int rd.Ben_or.Runner.messages_sent :: !msgs
          done;
          {
            n;
            seeds;
            identical_runs = !identical;
            all_correct = !correct;
            mean_rounds_decomposed = Stats.mean !rounds_d;
            mean_rounds_monolithic = Stats.mean !rounds_m;
            mean_messages = Stats.mean !msgs;
          })
        [ 4; 8; 16 ]
    in
    Table.print ~ppf
      ~title:"E1: Ben-Or — decomposed (VAC+reconciliator) vs monolithic"
      ~headers:[ "n"; "seeds"; "identical"; "correct"; "rounds(dec)"; "rounds(mono)"; "msgs" ]
      (List.map
         (fun r ->
           [
             string_of_int r.n;
             string_of_int r.seeds;
             Printf.sprintf "%d/%d" r.identical_runs r.seeds;
             string_of_bool r.all_correct;
             f2 r.mean_rounds_decomposed;
             f2 r.mean_rounds_monolithic;
             f2 r.mean_messages;
           ])
         rows);
    rows
end

(* ----------------------------------------------------------------- E2 -- *)

module E2 = struct
  type row = {
    n : int;
    split : string;
    crashes : int;
    rounds : Stats.summary;
    messages : Stats.summary;
    all_correct : bool;
  }

  let input_splits n =
    [
      ("unanimous", Array.make n true);
      ("one-off", Array.init n (fun i -> i <> 0));
      ("even-split", split_inputs n);
    ]

  let run ?(scale = Quick) ppf =
    let seeds = seeds_for scale in
    let rows = ref [] in
    let figure_cell = ref [] in
    List.iter
      (fun n ->
        List.iter
          (fun (split, inputs) ->
            List.iter
              (fun crashes ->
                let rounds = ref [] and msgs = ref [] and ok = ref true in
                for seed = 1 to seeds do
                  let cfg =
                    {
                      (Ben_or.Runner.default_config ~n ~inputs) with
                      seed = Int64.of_int seed;
                      crash_schedule = staggered_crashes crashes;
                      max_rounds = 3000;
                    }
                  in
                  let r = Ben_or.Runner.run cfg in
                  let live = n - List.length r.Ben_or.Runner.crashed in
                  if
                    not
                      (r.Ben_or.Runner.violations = []
                      && Ben_or.Runner.all_decided_same r ~expected_live:live)
                  then ok := false;
                  rounds := float_of_int r.Ben_or.Runner.max_decision_round :: !rounds;
                  msgs := float_of_int r.Ben_or.Runner.messages_sent :: !msgs
                done;
                if n = 16 && String.equal split "even-split" && crashes = 0 then
                  figure_cell := !rounds;
                rows :=
                  {
                    n;
                    split;
                    crashes;
                    rounds = Stats.summarize !rounds;
                    messages = Stats.summarize !msgs;
                    all_correct = !ok;
                  }
                  :: !rows)
              (if n <= 4 then [ 0; 1 ] else [ 0; (n - 1) / 2 ]))
          (input_splits n))
      [ 4; 8; 16 ];
    let rows = List.rev !rows in
    Table.print ~ppf ~title:"E2: Ben-Or — rounds to decide"
      ~headers:[ "n"; "inputs"; "crashes"; "rounds"; "messages"; "correct" ]
      (List.map
         (fun r ->
           [
             string_of_int r.n;
             r.split;
             string_of_int r.crashes;
             summ r.rounds;
             f2 r.messages.Stats.mean;
             string_of_bool r.all_correct;
           ])
         rows);
    (* The "figure": the heavy-tailed rounds distribution of the hardest
       cell, as a terminal histogram. *)
    if !figure_cell <> [] then begin
      Format.fprintf ppf
        "F2: rounds-to-decide distribution, n=16 even-split (local coins)@.";
      Stats.pp_histogram ppf (Stats.ascii_histogram !figure_cell);
      Format.fprintf ppf "@."
    end;
    rows

  type coin_row = {
    coin : string;
    coin_n : int;
    coin_rounds : Stats.summary;
    coin_correct : bool;
  }

  (* E2b: the reconciliator-quality ablation — the paper's coin-flip
     reconciliator vs a weak common coin. *)
  let run_coins ?(scale = Quick) ppf =
    let seeds = seeds_for scale in
    let rows = ref [] in
    List.iter
      (fun n ->
        List.iter
          (fun (label, coin) ->
            let rounds = ref [] and ok = ref true in
            for seed = 1 to seeds do
              let cfg =
                {
                  (Ben_or.Runner.default_config ~n ~inputs:(split_inputs n)) with
                  seed = Int64.of_int seed;
                  common_coin = coin;
                  max_rounds = 3000;
                }
              in
              let r = Ben_or.Runner.run cfg in
              if
                not
                  (r.Ben_or.Runner.violations = []
                  && Ben_or.Runner.all_decided_same r ~expected_live:n)
              then ok := false;
              rounds := float_of_int r.Ben_or.Runner.max_decision_round :: !rounds
            done;
            rows :=
              {
                coin = label;
                coin_n = n;
                coin_rounds = Stats.summarize !rounds;
                coin_correct = !ok;
              }
              :: !rows)
          [
            ("local (paper Alg.6)", None);
            ("common, delta=0.5", Some 0.5);
            ("common, delta=1.0", Some 1.0);
          ])
      [ 8; 16 ];
    let rows = List.rev !rows in
    Table.print ~ppf
      ~title:"E2b: Ben-Or — reconciliator ablation (even-split inputs)"
      ~headers:[ "n"; "reconciliator"; "rounds"; "correct" ]
      (List.map
         (fun r ->
           [
             string_of_int r.coin_n;
             r.coin;
             summ r.coin_rounds;
             string_of_bool r.coin_correct;
           ])
         rows);
    rows
end

(* ----------------------------------------------------------------- E3 -- *)

module E3 = struct
  type row = {
    n : int;
    t : int;
    strategy : string;
    agreement : bool;
    object_violations : int;
    mean_first_commit_round : float;
  }

  let strategies =
    [
      ("silent", fun () -> Netsim.Byzantine.silent);
      ("random", fun () -> Netsim.Byzantine.random_of [| 0; 1; 2 |]);
      ("split-world", fun () -> Netsim.Byzantine.split_world 0 1);
      ("camp-splitter", fun () -> Phase_king.Strategies.camp_splitter);
      ("vote-inflater", fun () -> Phase_king.Strategies.vote_inflater 1);
    ]

  let run ?(scale = Quick) ?(algorithm = Phase_king.Runner.King) ppf =
    let seeds = seeds_for scale in
    let rows = ref [] in
    List.iter
      (fun n ->
        let t =
          match algorithm with
          | Phase_king.Runner.King -> (n - 1) / 3
          | Phase_king.Runner.Queen -> (n - 1) / 4
        in
        List.iter
          (fun (sname, strat) ->
            let agreement = ref true in
            let viols = ref 0 in
            let commit_rounds = ref [] in
            for seed = 1 to seeds do
              let base =
                match algorithm with
                | Phase_king.Runner.King ->
                    Phase_king.Runner.default_config ~n
                      ~inputs:(Array.init n (fun i -> i mod 2))
                | Phase_king.Runner.Queen ->
                    Phase_king.Runner.default_queen_config ~n
                      ~inputs:(Array.init n (fun i -> i mod 2))
              in
              let cfg =
                {
                  base with
                  Phase_king.Runner.byzantine = List.init t Fun.id;
                  strategy = strat ();
                  seed = Int64.of_int seed;
                }
              in
              let r = Phase_king.Runner.run cfg in
              let finals = List.map snd r.Phase_king.Runner.final_decisions in
              (match finals with
              | [] -> agreement := false
              | v0 :: rest -> if List.exists (fun v -> v <> v0) rest then agreement := false);
              viols := !viols + List.length r.Phase_king.Runner.violations;
              List.iter
                (fun (_, _, m) -> commit_rounds := float_of_int m :: !commit_rounds)
                r.Phase_king.Runner.first_commits
            done;
            rows :=
              {
                n;
                t;
                strategy = sname;
                agreement = !agreement;
                object_violations = !viols;
                mean_first_commit_round = Stats.mean !commit_rounds;
              }
              :: !rows)
          strategies)
      (match algorithm with
      | Phase_king.Runner.King -> [ 4; 7; 10; 13 ]
      | Phase_king.Runner.Queen -> [ 5; 9; 13; 17 ]);
    let rows = List.rev !rows in
    Table.print ~ppf
      ~title:
        (match algorithm with
        | Phase_king.Runner.King ->
            "E3: Phase-King — resilience under Byzantine strategies (t = (n-1)/3)"
        | Phase_king.Runner.Queen ->
            "E3b: Phase-Queen — resilience under Byzantine strategies (t = (n-1)/4)")
      ~headers:[ "n"; "t"; "strategy"; "agreement"; "violations"; "commit-round" ]
      (List.map
         (fun r ->
           [
             string_of_int r.n;
             string_of_int r.t;
             r.strategy;
             string_of_bool r.agreement;
             string_of_int r.object_violations;
             f2 r.mean_first_commit_round;
           ])
         rows);
    rows

  let counterexample ppf =
    let cfg =
      {
        (Phase_king.Runner.default_config ~n:4 ~inputs:[| 0; 1; 1; 0 |]) with
        byzantine = [ 0 ];
        strategy = Phase_king.Strategies.commit_then_steal;
      }
    in
    let r = Phase_king.Runner.run cfg in
    let finals_agree =
      match r.Phase_king.Runner.final_decisions with
      | [] -> false
      | (_, v0) :: rest -> List.for_all (fun (_, v) -> v = v0) rest
    in
    let separated = finals_agree && r.Phase_king.Runner.first_commit_agreement_broken in
    Table.print ~ppf
      ~title:"E3c: Phase-King — first-commit decision rule counterexample"
      ~headers:[ "decision rule"; "decisions"; "agreement" ]
      [
        [
          "final preference (BGP)";
          String.concat " "
            (List.map
               (fun (p, v) -> Printf.sprintf "p%d=%d" p v)
               r.Phase_king.Runner.final_decisions);
          string_of_bool finals_agree;
        ];
        [
          "first commit (paper Alg.2)";
          String.concat " "
            (List.map
               (fun (p, v, m) -> Printf.sprintf "p%d=%d@r%d" p v m)
               r.Phase_king.Runner.first_commits);
          string_of_bool (not r.Phase_king.Runner.first_commit_agreement_broken);
        ];
      ];
    separated
end

(* ----------------------------------------------------------------- E4 -- *)

module E4 = struct
  type row = {
    algorithm : string;
    n : int;
    t : int;
    template_rounds : int;
    sync_rounds : int;
    messages : int;
    messages_over_n2 : float;
  }

  let one algorithm n =
    let inputs = Array.init n (fun i -> i mod 2) in
    let cfg =
      match algorithm with
      | Phase_king.Runner.King -> Phase_king.Runner.default_config ~n ~inputs
      | Phase_king.Runner.Queen -> Phase_king.Runner.default_queen_config ~n ~inputs
    in
    let r = Phase_king.Runner.run cfg in
    {
      algorithm =
        (match algorithm with
        | Phase_king.Runner.King -> "king"
        | Phase_king.Runner.Queen -> "queen");
      n;
      t = cfg.Phase_king.Runner.faults;
      template_rounds = r.Phase_king.Runner.template_rounds;
      sync_rounds = r.Phase_king.Runner.sync_rounds;
      messages = r.Phase_king.Runner.messages;
      messages_over_n2 =
        float_of_int r.Phase_king.Runner.messages /. float_of_int (n * n);
    }

  let run ?scale:_ ppf =
    let sizes = [ 4; 7; 10; 13; 16; 19 ] in
    let rows =
      List.map (one Phase_king.Runner.King) sizes
      @ List.map (one Phase_king.Runner.Queen) (List.filter (fun n -> n >= 5) sizes)
    in
    Table.print ~ppf
      ~title:
        "E4: King vs Queen — message complexity (both quadratic; queen pays fewer \
         rounds for less resilience)"
      ~headers:[ "algorithm"; "n"; "t"; "rounds"; "sync-rounds"; "messages"; "msgs/n^2" ]
      (List.map
         (fun r ->
           [
             r.algorithm;
             string_of_int r.n;
             string_of_int r.t;
             string_of_int r.template_rounds;
             string_of_int r.sync_rounds;
             string_of_int r.messages;
             f2 r.messages_over_n2;
           ])
         rows);
    rows
end

(* ----------------------------------------------------------------- E5 -- *)

module E5 = struct
  type row = {
    n : int;
    fault : string;
    election_time : Stats.summary;
    decide_time : Stats.summary;
    terms_used : Stats.summary;
    all_correct : bool;
  }

  type fault_plan =
    | No_fault
    | Crash_first_leader
    | Crash_and_restart
    | Partition_leader  (** isolate the first leader, heal later *)
    | Lossy of int  (** drop 1 in k messages *)

  let fault_name = function
    | No_fault -> "none"
    | Crash_first_leader -> "crash leader"
    | Crash_and_restart -> "crash+restart"
    | Partition_leader -> "partition+heal"
    | Lossy k -> Printf.sprintf "drop 1/%d msgs" k

  let one_run ~n ~seed ~plan =
    let policy =
      match plan with
      | Lossy k ->
          Some
            (fun env ->
              if env.Netsim.Async_net.env_id mod k = 0 then Netsim.Async_net.Drop
              else Netsim.Async_net.Deliver)
      | No_fault | Crash_first_leader | Crash_and_restart | Partition_leader ->
          None
    in
    let cl = Raft.Cluster.create ~seed:(Int64.of_int seed) ?policy ~n () in
    let inputs = Array.init n (fun i -> 100 + i) in
    let cons = Raft.Consensus_raft.create ~cluster:cl ~inputs in
    Raft.Cluster.start cl;
    let elected =
      Raft.Cluster.run_until cl (fun () -> Raft.Cluster.current_leader cl <> None)
    in
    let election_time = Dsim.Engine.now (Raft.Cluster.engine cl) in
    (match (plan, Raft.Cluster.current_leader cl) with
    | (Crash_first_leader | Crash_and_restart), Some l ->
        Raft.Cluster.crash cl l;
        if plan = Crash_and_restart then
          Dsim.Engine.schedule (Raft.Cluster.engine cl) ~delay:2000 (fun () ->
              Raft.Cluster.restart cl l)
    | Partition_leader, Some l ->
        let others = List.filter (fun i -> i <> l) (List.init n Fun.id) in
        Raft.Cluster.partition cl [ [ l ]; others ];
        Dsim.Engine.schedule (Raft.Cluster.engine cl) ~delay:3000 (fun () ->
            Raft.Cluster.heal cl)
    | (No_fault | Lossy _), _
    | (Crash_first_leader | Crash_and_restart | Partition_leader), None ->
        ());
    let decided = Raft.Consensus_raft.run_until_all_decided ~timeout:300_000 cons in
    let decide_time = Dsim.Engine.now (Raft.Cluster.engine cl) in
    let max_term =
      Array.fold_left
        (fun acc r -> max acc (Raft.Replica.current_term r))
        0 (Raft.Cluster.replicas cl)
    in
    let correct =
      elected && decided
      && Raft.Consensus_raft.check_vac_view cons = []
      && Raft.Cluster.violations cl = []
      && Raft.Cluster.check_log_matching cl = []
    in
    (election_time, decide_time, max_term, correct)

  let run ?(scale = Quick) ppf =
    let seeds = seeds_for scale in
    let rows = ref [] in
    List.iter
      (fun n ->
        List.iter
          (fun plan ->
            let et = ref [] and dt = ref [] and terms = ref [] in
            let ok = ref true in
            for seed = 1 to seeds do
              let e, d, term, correct = one_run ~n ~seed ~plan in
              if not correct then ok := false;
              et := float_of_int e :: !et;
              dt := float_of_int d :: !dt;
              terms := float_of_int term :: !terms
            done;
            rows :=
              {
                n;
                fault = fault_name plan;
                election_time = Stats.summarize !et;
                decide_time = Stats.summarize !dt;
                terms_used = Stats.summarize !terms;
                all_correct = !ok;
              }
              :: !rows)
          [
            No_fault;
            Crash_first_leader;
            Crash_and_restart;
            Partition_leader;
            Lossy 5;
            Lossy 3;
          ])
      [ 3; 5; 7 ];
    let rows = List.rev !rows in
    Table.print ~ppf ~title:"E5: Raft consensus — latency and fault recovery"
      ~headers:[ "n"; "fault"; "election t"; "decide t"; "terms"; "correct" ]
      (List.map
         (fun r ->
           [
             string_of_int r.n;
             r.fault;
             f2 r.election_time.Stats.mean;
             f2 r.decide_time.Stats.mean;
             f2 r.terms_used.Stats.mean;
             string_of_bool r.all_correct;
           ])
         rows);
    rows
end

(* ----------------------------------------------------------------- E6 -- *)

module E6 = struct
  type row = {
    spread : string;
    vacillate : int;
    adopt : int;  (** adopt-stage observations, including those that later
                      upgraded to commit *)
    commit : int;
    reconciliations : Stats.summary;
    view_violations : int;
    decide_time : Stats.summary;
  }

  let run ?(scale = Quick) ppf =
    let seeds = seeds_for scale in
    let rows =
      List.map
        (fun (lo, hi) ->
          let vac = ref 0 and ad = ref 0 and com = ref 0 in
          let recon = ref [] and viols = ref 0 and dt = ref [] in
          for seed = 1 to seeds do
            let config =
              { Raft.Replica.default_config with election_timeout = (lo, hi) }
            in
            let cl =
              Raft.Cluster.create ~seed:(Int64.of_int seed) ~config ~n:5 ()
            in
            let inputs = Array.init 5 (fun i -> 100 + i) in
            let cons = Raft.Consensus_raft.create ~cluster:cl ~inputs in
            Raft.Cluster.start cl;
            ignore (Raft.Consensus_raft.run_until_all_decided ~timeout:300_000 cons : bool);
            dt := float_of_int (Dsim.Engine.now (Raft.Cluster.engine cl)) :: !dt;
            List.iter
              (fun o ->
                match o.Raft.Consensus_raft.obs with
                | Consensus.Types.Vacillate _ -> incr vac
                | Consensus.Types.Adopt _ -> incr ad
                | Consensus.Types.Commit _ -> incr com)
              (Raft.Consensus_raft.vac_view cons);
            ad := !ad + Raft.Consensus_raft.adopt_upgrades cons;
            recon :=
              float_of_int
                (List.length (Raft.Consensus_raft.reconciliator_invocations cons))
              :: !recon;
            viols := !viols + List.length (Raft.Consensus_raft.check_vac_view cons)
          done;
          {
            spread = Printf.sprintf "%d-%d" lo hi;
            vacillate = !vac;
            adopt = !ad;
            commit = !com;
            reconciliations = Stats.summarize !recon;
            view_violations = !viols;
            decide_time = Stats.summarize !dt;
          })
        [ (150, 300); (150, 160); (300, 600) ]
    in
    Table.print ~ppf
      ~title:"E6: Raft VAC view — per-term confidence census (n=5)"
      ~headers:
        [ "timeout"; "vacillate"; "adopt"; "commit"; "reconciliations"; "violations"; "decide t" ]
      (List.map
         (fun r ->
           [
             r.spread;
             string_of_int r.vacillate;
             string_of_int r.adopt;
             string_of_int r.commit;
             f2 r.reconciliations.Stats.mean;
             string_of_int r.view_violations;
             f2 r.decide_time.Stats.mean;
           ])
         rows);
    rows
end

(* ----------------------------------------------------------------- E7 -- *)

module E7 = struct
  type row = { case : string; runs : int; witnesses : int; clean : bool }

  type machinery_row = {
    template : string;
    broadcasts_per_round : int;
    m_rounds : Stats.summary;
    m_messages : Stats.summary;
    m_correct : bool;
  }

  module Sm = Sharedmem.Protocol.Make (Consensus.Objects.Bool_value)
  module Bool_monitor = Consensus.Monitor.Make (Consensus.Objects.Bool_value)

  (* One AC-template Ben-Or run (paper Algorithm 2 with the async AC and
     the validity-machinery conciliator). *)
  let ac_variant_run ~n ~seed =
    let eng =
      Dsim.Engine.create ~seed:(Int64.of_int seed) ~trace_capacity:1_000 ()
    in
    let net = Netsim.Async_net.create eng ~n ~retain_inbox:false () in
    let t = (n - 1) / 2 in
    let monitor = Bool_monitor.create () in
    let decisions = ref [] in
    for i = 0 to n - 1 do
      let input = i mod 2 = 0 in
      Bool_monitor.record_initial monitor ~pid:i input;
      ignore
        (Dsim.Engine.spawn eng (fun ectx ->
             let ctx =
               Ben_or.Ac_variant.make_ctx ~net ~me:i ~faults:t
                 ~rng:ectx.Dsim.Engine.rng ()
             in
             let observer = Bool_monitor.observer monitor ~pid:i in
             let v, m =
               Ben_or.Ac_variant.Consensus_ac.consensus ~max_rounds:3000 ~observer
                 ctx input
             in
             decisions := (i, v, m) :: !decisions)
        : Dsim.Engine.pid)
    done;
    let outcome = Dsim.Engine.run eng in
    let agree =
      match !decisions with
      | [] -> false
      | (_, v0, _) :: rest -> List.for_all (fun (_, v, _) -> Bool.equal v v0) rest
    in
    let ok =
      outcome = Dsim.Engine.Quiescent && agree
      && List.length !decisions = n
      && Bool_monitor.check_ac monitor = []
      && Bool_monitor.check_consensus monitor = []
    in
    let max_round = List.fold_left (fun acc (_, _, m) -> max acc m) 0 !decisions in
    (ok, max_round, Netsim.Async_net.messages_sent net)

  (* The paper's conclusion, measured: the VAC template's reconciliator is
     a bare coin; the AC template's conciliator needs a validity exchange.
     Same algorithm family, same network, same seeds. *)
  let machinery_cost ~scale ppf =
    let seeds = seeds_for scale in
    let n = 8 in
    let vac_rounds = ref [] and vac_msgs = ref [] and vac_ok = ref true in
    for seed = 1 to seeds do
      let cfg =
        {
          (Ben_or.Runner.default_config ~n ~inputs:(split_inputs n)) with
          seed = Int64.of_int seed;
          max_rounds = 3000;
        }
      in
      let r = Ben_or.Runner.run cfg in
      if not (r.Ben_or.Runner.violations = [] && Ben_or.Runner.all_decided_same r ~expected_live:n)
      then vac_ok := false;
      vac_rounds := float_of_int r.Ben_or.Runner.max_decision_round :: !vac_rounds;
      vac_msgs := float_of_int r.Ben_or.Runner.messages_sent :: !vac_msgs
    done;
    let ac_rounds = ref [] and ac_msgs = ref [] and ac_ok = ref true in
    for seed = 1 to seeds do
      let ok, rounds, msgs = ac_variant_run ~n ~seed in
      if not ok then ac_ok := false;
      ac_rounds := float_of_int rounds :: !ac_rounds;
      ac_msgs := float_of_int msgs :: !ac_msgs
    done;
    let rows =
      [
        {
          template = "VAC + coin reconciliator (Alg.1)";
          broadcasts_per_round = 2;
          m_rounds = Stats.summarize !vac_rounds;
          m_messages = Stats.summarize !vac_msgs;
          m_correct = !vac_ok;
        };
        {
          template = "AC + validity conciliator (Alg.2)";
          broadcasts_per_round = Ben_or.Ac_variant.broadcasts_per_round;
          m_rounds = Stats.summarize !ac_rounds;
          m_messages = Stats.summarize !ac_msgs;
          m_correct = !ac_ok;
        };
      ]
    in
    Table.print ~ppf
      ~title:
        "E7b: conciliator validity machinery — Ben-Or via both templates (n=8, \
         even split)"
      ~headers:[ "template"; "bcasts/round"; "rounds"; "messages"; "correct" ]
      (List.map
         (fun r ->
           [
             r.template;
             string_of_int r.broadcasts_per_round;
             summ r.m_rounds;
             f2 r.m_messages.Stats.mean;
             string_of_bool r.m_correct;
           ])
         rows);
    rows

  (* One round of the two-AC VAC under a random schedule; returns monitor
     violations. *)
  let vac_construction_run ~n ~seed =
    let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
    let world = Sharedmem.World.create eng () in
    let shared = Sm.create_shared ~n world in
    let monitor = Bool_monitor.create () in
    for i = 0 to n - 1 do
      let input = Dsim.Rng.bool (Dsim.Engine.rng eng) in
      Bool_monitor.record_initial monitor ~pid:i input;
      ignore
        (Dsim.Engine.spawn eng (fun ectx ->
             let ctx =
               { Sm.shared; proc = { Sharedmem.World.world; me = i; ectx } }
             in
             let out = Sm.Vac.invoke ctx ~round:1 input in
             Bool_monitor.record_output monitor ~round:1 ~pid:i out)
        : Dsim.Engine.pid)
    done;
    ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
    Bool_monitor.check_vac monitor

  let run ?(scale = Quick) ppf =
    let seeds = seeds_for scale * 5 in
    (* (a) VAC-from-two-AC: property violations expected 0. *)
    let construction_bad = ref 0 in
    for seed = 1 to seeds do
      if vac_construction_run ~n:5 ~seed <> [] then incr construction_bad
    done;
    (* (b) Ben-Or adopt-overruled: witnesses expected > 0 across seeds. *)
    let overruled = ref 0 in
    let benor_runs = seeds in
    for seed = 1 to benor_runs do
      let n = 8 in
      let cfg =
        {
          (Ben_or.Runner.default_config ~n ~inputs:(split_inputs n)) with
          seed = Int64.of_int seed;
        }
      in
      let r = Ben_or.Runner.run cfg in
      if r.Ben_or.Runner.adopt_overruled then incr overruled
    done;
    (* (c) Phase-King first-commit counterexample: deterministic. *)
    let cfg =
      {
        (Phase_king.Runner.default_config ~n:4 ~inputs:[| 0; 1; 1; 0 |]) with
        byzantine = [ 0 ];
        strategy = Phase_king.Strategies.commit_then_steal;
      }
    in
    let pk = Phase_king.Runner.run cfg in
    (* (d) exhaustive schedule sweep of the register AC at n = 2 and a
       uniform sample of the two-AC VAC's schedule space. *)
    let exhaustive = Sharedmem.Explore.check_ac_exhaustive ~inputs:[| true; false |] () in
    let sampled =
      Sharedmem.Explore.check_vac_sampled ~inputs:[| true; false |]
        ~samples:(seeds * 20) ~seed:17L
    in
    let rows =
      [
        {
          case = "VAC from two ACs: guarantee violations";
          runs = seeds;
          witnesses = !construction_bad;
          clean = !construction_bad = 0;
        };
        {
          case =
            Printf.sprintf "register AC, ALL %d interleavings (n=2)"
              exhaustive.Sharedmem.Explore.space_size;
          runs = exhaustive.Sharedmem.Explore.schedules_run;
          witnesses = List.length exhaustive.Sharedmem.Explore.violations;
          clean =
            exhaustive.Sharedmem.Explore.exhaustive
            && exhaustive.Sharedmem.Explore.violations = [];
        };
        {
          case = "two-AC VAC, sampled interleavings (n=2)";
          runs = sampled.Sharedmem.Explore.schedules_run;
          witnesses = List.length sampled.Sharedmem.Explore.violations;
          clean = sampled.Sharedmem.Explore.violations = [];
        };
        {
          case = "Ben-Or: (adopt,u) later overruled";
          runs = benor_runs;
          witnesses = !overruled;
          clean = !overruled > 0;
        };
        {
          case = "Phase-King: first-commit disagrees";
          runs = 1;
          witnesses = (if pk.Phase_king.Runner.first_commit_agreement_broken then 1 else 0);
          clean = pk.Phase_king.Runner.first_commit_agreement_broken;
        };
      ]
    in
    Table.print ~ppf ~title:"E7: Section-5 separation, executable"
      ~headers:[ "case"; "runs"; "witnesses"; "as expected" ]
      (List.map
         (fun r ->
           [ r.case; string_of_int r.runs; string_of_int r.witnesses; string_of_bool r.clean ])
         rows);
    ignore (machinery_cost ~scale ppf : machinery_row list);
    rows
end

(* ----------------------------------------------------------------- E8 -- *)

module E8 = struct
  type row = { algorithm : string; variant : string; ms_per_run : float }

  (* Wall clock, not [Sys.time]: process CPU time sums across domains,
     so under [run_all ~jobs] it would charge this experiment for work
     other experiments did concurrently. *)
  let time_runs label variant reps f =
    let t0 = Unix.gettimeofday () in
    for seed = 1 to reps do
      f seed
    done;
    let elapsed = (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int reps in
    { algorithm = label; variant; ms_per_run = elapsed }

  let run ?(scale = Quick) ppf =
    let reps = seeds_for scale in
    let n = 8 in
    let benor mode seed =
      let cfg =
        {
          (Ben_or.Runner.default_config ~n ~inputs:(split_inputs n)) with
          seed = Int64.of_int seed;
          mode;
        }
      in
      ignore (Ben_or.Runner.run cfg : Ben_or.Runner.report)
    in
    let pk mode seed =
      let cfg =
        {
          (Phase_king.Runner.default_config ~n:7
             ~inputs:(Array.init 7 (fun i -> i mod 2)))
          with
          seed = Int64.of_int seed;
          mode;
        }
      in
      ignore (Phase_king.Runner.run cfg : Phase_king.Runner.report)
    in
    let rows =
      [
        time_runs "ben-or" "decomposed" reps (benor Ben_or.Runner.Decomposed);
        time_runs "ben-or" "monolithic" reps (benor Ben_or.Runner.Monolithic);
        time_runs "phase-king" "decomposed" reps (pk Phase_king.Runner.Decomposed);
        time_runs "phase-king" "monolithic" reps (pk Phase_king.Runner.Monolithic);
      ]
    in
    Table.print ~ppf
      ~title:"E8: cost of modularity — host ms per simulated run (see bench/)"
      ~headers:[ "algorithm"; "variant"; "ms/run" ]
      (List.map (fun r -> [ r.algorithm; r.variant; f2 r.ms_per_run ]) rows);
    rows
end

let all_ids = [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8" ]

(* --- CSV serializers ---------------------------------------------------- *)

let e1_csv rows =
  Table.csv
    ~headers:[ "n"; "seeds"; "identical"; "correct"; "rounds_dec"; "rounds_mono"; "msgs" ]
    (List.map
       (fun (r : E1.row) ->
         [
           string_of_int r.n;
           string_of_int r.seeds;
           string_of_int r.identical_runs;
           string_of_bool r.all_correct;
           f2 r.mean_rounds_decomposed;
           f2 r.mean_rounds_monolithic;
           f2 r.mean_messages;
         ])
       rows)

let e2_csv rows =
  Table.csv
    ~headers:
      [ "n"; "inputs"; "crashes"; "rounds_mean"; "rounds_p99"; "messages_mean"; "correct" ]
    (List.map
       (fun (r : E2.row) ->
         [
           string_of_int r.n;
           r.split;
           string_of_int r.crashes;
           f2 r.rounds.Stats.mean;
           f2 r.rounds.Stats.p99;
           f2 r.messages.Stats.mean;
           string_of_bool r.all_correct;
         ])
       rows)

let e2b_csv rows =
  Table.csv
    ~headers:[ "n"; "reconciliator"; "rounds_mean"; "rounds_p99"; "correct" ]
    (List.map
       (fun (r : E2.coin_row) ->
         [
           string_of_int r.coin_n;
           r.coin;
           f2 r.coin_rounds.Stats.mean;
           f2 r.coin_rounds.Stats.p99;
           string_of_bool r.coin_correct;
         ])
       rows)

let e3_csv rows =
  Table.csv
    ~headers:[ "n"; "t"; "strategy"; "agreement"; "violations"; "commit_round_mean" ]
    (List.map
       (fun (r : E3.row) ->
         [
           string_of_int r.n;
           string_of_int r.t;
           r.strategy;
           string_of_bool r.agreement;
           string_of_int r.object_violations;
           f2 r.mean_first_commit_round;
         ])
       rows)

let e4_csv rows =
  Table.csv
    ~headers:[ "algorithm"; "n"; "t"; "rounds"; "sync_rounds"; "messages"; "msgs_over_n2" ]
    (List.map
       (fun (r : E4.row) ->
         [
           r.algorithm;
           string_of_int r.n;
           string_of_int r.t;
           string_of_int r.template_rounds;
           string_of_int r.sync_rounds;
           string_of_int r.messages;
           f2 r.messages_over_n2;
         ])
       rows)

let e5_csv rows =
  Table.csv
    ~headers:[ "n"; "fault"; "election_t_mean"; "decide_t_mean"; "terms_mean"; "correct" ]
    (List.map
       (fun (r : E5.row) ->
         [
           string_of_int r.n;
           r.fault;
           f2 r.election_time.Stats.mean;
           f2 r.decide_time.Stats.mean;
           f2 r.terms_used.Stats.mean;
           string_of_bool r.all_correct;
         ])
       rows)

let e6_csv rows =
  Table.csv
    ~headers:
      [ "timeout"; "vacillate"; "adopt"; "commit"; "reconciliations_mean"; "violations"; "decide_t_mean" ]
    (List.map
       (fun (r : E6.row) ->
         [
           r.spread;
           string_of_int r.vacillate;
           string_of_int r.adopt;
           string_of_int r.commit;
           f2 r.reconciliations.Stats.mean;
           string_of_int r.view_violations;
           f2 r.decide_time.Stats.mean;
         ])
       rows)

let e7_csv rows =
  Table.csv
    ~headers:[ "case"; "runs"; "witnesses"; "as_expected" ]
    (List.map
       (fun (r : E7.row) ->
         [ r.case; string_of_int r.runs; string_of_int r.witnesses; string_of_bool r.clean ])
       rows)

let e8_csv rows =
  Table.csv
    ~headers:[ "algorithm"; "variant"; "ms_per_run" ]
    (List.map
       (fun (r : E8.row) -> [ r.algorithm; r.variant; f2 r.ms_per_run ])
       rows)

let write_file dir name contents =
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc contents;
      output_char oc '\n')

let run_all ?(scale = Quick) ?only ?csv_dir ?(jobs = 1) ppf =
  let wanted id = match only with None -> true | Some ids -> List.mem id ids in
  let save name contents =
    match csv_dir with
    | None -> ()
    | Some dir -> write_file dir name contents
  in
  (* Each section renders into its own buffer and returns its CSVs, so
     sections can run on separate domains; printing and CSV writes then
     happen in id order from the caller, making the output independent
     of [jobs].  Every experiment is seeded simulation — only E8's
     wall-clock figures pick up noise from concurrent sections. *)
  let sections =
    [
      ("e1", fun ppf -> [ ("e1.csv", e1_csv (E1.run ~scale ppf)) ]);
      ( "e2",
        fun ppf ->
          [
            ("e2.csv", e2_csv (E2.run ~scale ppf));
            ("e2b.csv", e2b_csv (E2.run_coins ~scale ppf));
          ] );
      ( "e3",
        fun ppf ->
          let king = ("e3.csv", e3_csv (E3.run ~scale ppf)) in
          let queen =
            ( "e3b.csv",
              e3_csv (E3.run ~scale ~algorithm:Phase_king.Runner.Queen ppf) )
          in
          ignore (E3.counterexample ppf : bool);
          [ king; queen ] );
      ("e4", fun ppf -> [ ("e4.csv", e4_csv (E4.run ~scale ppf)) ]);
      ("e5", fun ppf -> [ ("e5.csv", e5_csv (E5.run ~scale ppf)) ]);
      ("e6", fun ppf -> [ ("e6.csv", e6_csv (E6.run ~scale ppf)) ]);
      ("e7", fun ppf -> [ ("e7.csv", e7_csv (E7.run ~scale ppf)) ]);
      ("e8", fun ppf -> [ ("e8.csv", e8_csv (E8.run ~scale ppf)) ]);
    ]
  in
  let rendered =
    Exec.Pool.map_list ~jobs
      (fun (_, job) ->
        let buf = Buffer.create 4096 in
        let bppf = Format.formatter_of_buffer buf in
        let csvs = job bppf in
        Format.pp_print_flush bppf ();
        (Buffer.contents buf, csvs))
      (List.filter (fun (id, _) -> wanted id) sections)
  in
  List.iter
    (fun (text, csvs) ->
      Format.pp_print_string ppf text;
      Format.pp_print_flush ppf ();
      List.iter (fun (name, contents) -> save name contents) csvs)
    rendered
