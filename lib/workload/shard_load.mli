(** Heavy-traffic workloads for the sharded multi-group RSM — the
    {!Rsm_load} analogue for {!Shard.Runner}, sharing its generator and
    stats plumbing with {!Load}.

    A run is [clients] callback clients issuing a Zipf-skewed
    SET/GET/CAS mix plus [tx_pct]% multi-shard write transactions over
    [shards] independent consensus groups, scored against every
    per-shard checker and the cross-shard atomicity checker. *)

(** One sharded run's scorecard, ready for tables and bench rows. *)
type summary = {
  backend_name : string;
  shards : int;
  replicas : int;  (** per shard *)
  clients : int;
  total_ops : int;  (** client operations generated (singles + txs) *)
  singles_acked : int;
  txs_committed : int;
  txs_aborted : int;
  abort_rate : float;
  virtual_time : int;
  throughput : float;
      (** completed operations (singles acked + txs committed) per 1000
          virtual time units, aggregated across shards *)
  per_shard_applied : int array;  (** distinct commands applied, by shard *)
  single_latency : Stats.summary option;  (** submit-to-durable-ack *)
  tx_latency : Stats.summary option;  (** committed txs, start-to-ack *)
  violations : int;
      (** per-shard order/completeness/durability + cross-shard
          atomicity/tx-completeness (want 0) *)
  ok : bool;  (** zero violations and per-shard digests agree *)
}

val summarize : Shard.Runner.config -> Shard.Runner.report -> summary

val config :
  ?shards:int ->
  ?replicas:int ->
  ?batch:int ->
  ?seed:int ->
  ?load:Load.t ->
  ?arrival:Shard.Runner.arrival ->
  ?store:Rsm.Runner.store_config ->
  ?inject:(Shard.Runner.faults -> unit) ->
  ?broken_2pc:bool ->
  ?coordinator_crash:(int -> Shard.Runner.crash_point) ->
  ?ack_timeout:int ->
  ?max_events:int ->
  ?trace_capacity:int ->
  ?quiet:bool ->
  backend:Rsm.Backend.t ->
  unit ->
  Shard.Runner.config
(** Build a full runner config from a {!Load} shape (default
    {!Load.default}); [shards] and [seed] override the corresponding
    [load] fields so the generator and the router always agree.
    Exposed separately from {!run_one} so campaign drivers can inject
    faults into an otherwise identical config. *)

val run_one :
  ?shards:int ->
  ?replicas:int ->
  ?batch:int ->
  ?seed:int ->
  ?load:Load.t ->
  ?arrival:Shard.Runner.arrival ->
  ?store:Rsm.Runner.store_config ->
  ?inject:(Shard.Runner.faults -> unit) ->
  ?broken_2pc:bool ->
  ?coordinator_crash:(int -> Shard.Runner.crash_point) ->
  ?ack_timeout:int ->
  ?max_events:int ->
  ?trace_capacity:int ->
  ?quiet:bool ->
  backend:Rsm.Backend.t ->
  unit ->
  Shard.Runner.report * summary
(** Defaults: 4 shards x 3 replicas, batch 16, {!Load.default} traffic,
    closed-loop arrivals, no store, no faults, honest 2PC. *)

val sweep_shards :
  ?shard_counts:int list ->
  ?load:Load.t ->
  ?seeds:int ->
  ?backends:Rsm.Backend.t list ->
  ?jobs:int ->
  Format.formatter ->
  summary list
(** The scaling table: the {e same} client traffic (fixed [load]) run
    at every shard count (default {1, 2, 4}) for every backend,
    averaged over [seeds] (default 2) — the experimental check that
    single-shard operations scale with shard count while cross-shard
    transactions pay for coordination.  [jobs] fans the backend x
    shard-count cells over that many domains ({!Exec.Pool}); results
    and the printed table are identical at every job count. *)
