(* Tests for lib/obj: the sequential specifications and their codecs,
   the generic Wing–Gong linearizability checker, the replicated
   universal construction (honest and with the dropped-entry mutant),
   the shared-memory lock-free log (honest and broken), the nemesis
   campaign sweep, and the model-checked queue. *)

module Backend = Rsm.Backend
module Q = Obj.Queue
module Wgq = Obj.Wg.Make (Obj.Queue)
module Smq = Obj.Smem.Make (Obj.Queue)
module E = Mcheck.Explorer

let check = Alcotest.check

(* --- sequential specifications ----------------------------------------- *)

let queue_spec () =
  let st, r = Q.apply Q.init (Q.Enq "a") in
  check Alcotest.string "enq acks" "ok" (Q.resp_to_string r);
  let st, _ = Q.apply st (Q.Enq "b") in
  let st, r = Q.apply st Q.Deq in
  check Alcotest.string "fifo head" "deq \"a\"" (Q.resp_to_string r);
  let st, r = Q.apply st Q.Deq in
  check Alcotest.string "fifo second" "deq \"b\"" (Q.resp_to_string r);
  let _, r = Q.apply st Q.Deq in
  check Alcotest.string "empty deq" "deq -" (Q.resp_to_string r)

let stack_spec () =
  let module S = Obj.Stack in
  let st, _ = S.apply S.init (S.Push "a") in
  let st, _ = S.apply st (S.Push "b") in
  let st, r = S.apply st S.Pop in
  check Alcotest.string "lifo top" "pop \"b\"" (S.resp_to_string r);
  let st, r = S.apply st S.Pop in
  check Alcotest.string "lifo bottom" "pop \"a\"" (S.resp_to_string r);
  let _, r = S.apply st S.Pop in
  check Alcotest.string "empty pop" "pop -" (S.resp_to_string r)

let counter_spec () =
  let module C = Obj.Counter in
  let st, r = C.apply C.init (C.Add 3) in
  check Alcotest.string "add returns the new total" "= 3" (C.resp_to_string r);
  let st, r = C.apply st (C.Add 4) in
  check Alcotest.string "accumulates" "= 7" (C.resp_to_string r);
  let _, r = C.apply st C.Read in
  check Alcotest.string "read is stable" "= 7" (C.resp_to_string r)

let set_spec () =
  let module S = Obj.Sset in
  let st, r = S.apply S.init (S.Add "x") in
  check Alcotest.string "first add was absent" "true" (S.resp_to_string r);
  let st, r = S.apply st (S.Add "x") in
  check Alcotest.string "second add was present" "false" (S.resp_to_string r);
  let st, r = S.apply st (S.Mem "x") in
  check Alcotest.string "member" "true" (S.resp_to_string r);
  let st, r = S.apply st (S.Remove "x") in
  check Alcotest.string "remove was present" "true" (S.resp_to_string r);
  let _, r = S.apply st (S.Mem "x") in
  check Alcotest.string "gone" "false" (S.resp_to_string r)

let index_spec () =
  let module I = Obj.Index in
  let st, _ = I.apply I.init (I.Put ("k1", "red")) in
  let st, _ = I.apply st (I.Put ("k2", "red")) in
  let st, _ = I.apply st (I.Put ("k3", "blue")) in
  let _, r = I.apply st (I.Find "red") in
  check Alcotest.string "inverted index finds both keys" "keys \"k1\" \"k2\""
    (I.resp_to_string r);
  (* overwriting k1 must also migrate it in the inverted index *)
  let st, _ = I.apply st (I.Put ("k1", "blue")) in
  let _, r = I.apply st (I.Find "red") in
  check Alcotest.string "overwrite migrates the index" "keys \"k2\""
    (I.resp_to_string r);
  let _, r = I.apply st (I.Find "blue") in
  check Alcotest.string "new value gains the key" "keys \"k1\" \"k3\""
    (I.resp_to_string r);
  let st, r = I.apply st (I.Del "k2") in
  check Alcotest.string "delete reports presence" "del true"
    (I.resp_to_string r);
  let _, r = I.apply st (I.Find "red") in
  check Alcotest.string "delete empties the posting" "keys"
    (I.resp_to_string r)

let kv_spec () =
  let module K = Obj.Kv in
  let st, _ = K.apply K.init (K.Set ("k", "v1")) in
  let _, r = K.apply st (K.Get "k") in
  check Alcotest.string "get after set" "got \"v1\"" (K.resp_to_string r);
  let st, r =
    K.apply st (K.Cas { key = "k"; expect = Some "v1"; update = "v2" })
  in
  check Alcotest.string "cas hit" "cas true" (K.resp_to_string r);
  let st, r =
    K.apply st (K.Cas { key = "k"; expect = Some "v1"; update = "v3" })
  in
  check Alcotest.string "cas miss" "cas false" (K.resp_to_string r);
  let _, r = K.apply st (K.Get "k") in
  check Alcotest.string "miss left the value alone" "got \"v2\""
    (K.resp_to_string r)

(* Every registry object: op and state codecs must round-trip over the
   object's own generated mix, and the digest must survive a snapshot
   round-trip (canonicity across re-decode). *)
let codec_roundtrip (module O : Obj.Spec.S) () =
  let rng = Dsim.Rng.create 3L in
  let st = ref O.init in
  for k = 0 to 199 do
    let op =
      O.gen_op ~rng
        ~key:(Printf.sprintf "k%d" (k mod 5))
        ~tag:(Printf.sprintf "t%d" k)
    in
    let enc = O.op_to_string op in
    check Alcotest.string "op codec round-trips" enc
      (O.op_to_string (O.op_of_string enc));
    check Alcotest.bool "single-line op encoding" false
      (String.contains enc '\n');
    st := fst (O.apply !st op);
    let snap = O.state_to_string !st in
    check Alcotest.bool "single-line snapshot" false (String.contains snap '\n');
    check Alcotest.string "snapshot preserves the digest" (O.digest !st)
      (O.digest (O.state_of_string snap))
  done

let queue_digest_canonical () =
  (* Two representations of the abstract queue ["b"]: one reached via an
     internal front/back rotation, one enqueued directly. *)
  let st1 =
    let st, _ = Q.apply Q.init (Q.Enq "a") in
    let st, _ = Q.apply st (Q.Enq "b") in
    fst (Q.apply st Q.Deq)
  in
  let st2 = fst (Q.apply Q.init (Q.Enq "b")) in
  check Alcotest.string "digest ignores representation" (Q.digest st2)
    (Q.digest st1)

(* --- the Wing–Gong checker --------------------------------------------- *)

let ev ?resp ?returned ~cid ~invoked op =
  { Wgq.cid; op; resp; invoked; returned }

let verdict_linearizable = function
  | Wgq.Linearizable _ -> true
  | Wgq.Illegal _ | Wgq.Inconclusive -> false

let wg_sequential_legal () =
  let h =
    [
      ev ~cid:0 ~invoked:0 ~returned:1 ~resp:"ok" (Q.Enq "a");
      ev ~cid:1 ~invoked:2 ~returned:3 ~resp:"deq \"a\"" Q.Deq;
    ]
  in
  check Alcotest.bool "legal sequential history" true
    (verdict_linearizable (Wgq.check h).Wgq.verdict)

let wg_concurrent_reorder () =
  (* Two overlapping enqueues; the dequeue sees "b" first, so only the
     order b-then-a linearizes — the checker must find it. *)
  let h =
    [
      ev ~cid:0 ~invoked:0 ~returned:10 ~resp:"ok" (Q.Enq "a");
      ev ~cid:1 ~invoked:0 ~returned:10 ~resp:"ok" (Q.Enq "b");
      ev ~cid:2 ~invoked:20 ~returned:30 ~resp:"deq \"b\"" Q.Deq;
    ]
  in
  check Alcotest.bool "concurrent enqueues reorder" true
    (verdict_linearizable (Wgq.check h).Wgq.verdict)

let wg_real_time_respected () =
  (* The same dequeue response is illegal once the enqueues are
     real-time ordered: a returned before b was invoked. *)
  let h =
    [
      ev ~cid:0 ~invoked:0 ~returned:5 ~resp:"ok" (Q.Enq "a");
      ev ~cid:1 ~invoked:10 ~returned:15 ~resp:"ok" (Q.Enq "b");
      ev ~cid:2 ~invoked:20 ~returned:30 ~resp:"deq \"b\"" Q.Deq;
    ]
  in
  check Alcotest.bool "real-time order binds" false
    (verdict_linearizable (Wgq.check h).Wgq.verdict)

let wg_duplicate_deq_illegal () =
  let h =
    [
      ev ~cid:0 ~invoked:0 ~returned:1 ~resp:"ok" (Q.Enq "a");
      ev ~cid:1 ~invoked:2 ~returned:3 ~resp:"deq \"a\"" Q.Deq;
      ev ~cid:2 ~invoked:4 ~returned:5 ~resp:"deq \"a\"" Q.Deq;
    ]
  in
  (match (Wgq.check h).Wgq.verdict with
  | Wgq.Illegal stuck ->
      check Alcotest.bool "the duplicate dequeue is stuck" true
        (List.mem 2 stuck)
  | Wgq.Linearizable _ | Wgq.Inconclusive ->
      Alcotest.fail "lost update not convicted");
  check Alcotest.int "violations reported" 1 (List.length (Wgq.violations h))

let wg_pending_may_be_dropped () =
  (* cid 0's enqueue never acked: the history linearizes by omitting it
     entirely, so the empty dequeue is legal. *)
  let h =
    [
      ev ~cid:0 ~invoked:0 ~resp:"ok" (Q.Enq "a");
      ev ~cid:1 ~invoked:10 ~returned:20 ~resp:"deq -" Q.Deq;
    ]
  in
  check Alcotest.bool "pending op omitted" true
    (verdict_linearizable (Wgq.check h).Wgq.verdict)

let wg_pending_may_have_taken_effect () =
  (* ...and the same pending enqueue may equally have landed before the
     dequeue that observed its value. *)
  let h =
    [
      ev ~cid:0 ~invoked:0 (Q.Enq "a");
      ev ~cid:1 ~invoked:10 ~returned:20 ~resp:"deq \"a\"" Q.Deq;
    ]
  in
  check Alcotest.bool "pending op included" true
    (verdict_linearizable (Wgq.check h).Wgq.verdict)

let wg_budget_inconclusive () =
  let h =
    List.init 8 (fun i ->
        ev ~cid:i ~invoked:0 ~returned:100 ~resp:"ok"
          (Q.Enq (Printf.sprintf "v%d" i)))
  in
  match (Wgq.check ~max_states:3 h).Wgq.verdict with
  | Wgq.Inconclusive -> ()
  | Wgq.Linearizable _ | Wgq.Illegal _ ->
      Alcotest.fail "tiny budget must be inconclusive"

(* --- the replicated universal construction ----------------------------- *)

let run_obj ?drop_nth ?(seed = 1) ?(crashes = 0) ?restart_after ~backend name =
  Workload.Obj_load.run ~n:5 ~clients:3 ~commands:6 ~batch:8 ~crashes
    ?restart_after ~seed ~quiet:true ?drop_nth ~backend ~object_name:name ()

let replicated_clean name backend () =
  let s = run_obj ~backend name in
  check Alcotest.int "all commands acked" 18 s.Workload.Obj_load.acked;
  check (Alcotest.list Alcotest.string) "linearizable" []
    s.Workload.Obj_load.wg_violations;
  check Alcotest.bool "all gates pass" true s.Workload.Obj_load.ok

let replicated_crash_restart name backend () =
  let s = run_obj ~crashes:2 ~restart_after:400 ~backend name in
  check Alcotest.int "all commands acked" 18 s.Workload.Obj_load.acked;
  check Alcotest.bool "ok under crash/restart" true s.Workload.Obj_load.ok

(* The broken universal construction drops one state-changing log
   entry's effect after acking it.  Every replica drops the same entry,
   so the order and digest gates stay silent — only the Wing–Gong check
   convicts.  The (seed, k) pairs are pinned per object: which dropped
   mutation is observable depends on the object's semantics (a FIFO
   queue exposes a lost early enqueue at the first dequeue; a LIFO
   stack hides a lost push until the stack drains past it). *)
let mutant_combos =
  [
    ("queue", 1, 1);
    ("stack", 1, 8);
    ("counter", 1, 1);
    ("set", 1, 1);
    ("index", 1, 0);
    ("kv", 3, 1);
  ]

let replicated_mutant_convicted (name, seed, k) () =
  let s = run_obj ~seed ~drop_nth:k ~backend:Backend.ben_or name in
  check Alcotest.int "order gate silent" 0 s.Workload.Obj_load.order_violations;
  check Alcotest.bool "digest gate silent" true
    s.Workload.Obj_load.digests_agree;
  check Alcotest.bool "wing-gong convicts" true
    (s.Workload.Obj_load.wg_violations <> []);
  check Alcotest.bool "run fails overall" false s.Workload.Obj_load.ok

(* --- the nemesis campaign sweep ---------------------------------------- *)

let campaign_config =
  {
    (Nemesis.Obj_campaign.default_config ~n:5 ()) with
    Nemesis.Obj_campaign.backends = [ Backend.ben_or ];
    objects = [ "queue"; "counter" ];
    plans = 2;
  }

let campaign_all_gates_pass () =
  let r = Nemesis.Obj_campaign.run ~jobs:1 campaign_config in
  check Alcotest.int "runs" 4 r.Nemesis.Obj_campaign.runs;
  check Alcotest.int "no failures" 0
    (List.length r.Nemesis.Obj_campaign.failures)

let campaign_deterministic_across_jobs () =
  let render r =
    Format.asprintf "%a" Nemesis.Obj_campaign.pp_report_stable r
  in
  let r1 = Nemesis.Obj_campaign.run ~jobs:1 campaign_config in
  let r2 = Nemesis.Obj_campaign.run ~jobs:2 campaign_config in
  check Alcotest.string "stable report equal at jobs 1 and 2" (render r1)
    (render r2)

let campaign_storage_faults_pass () =
  let cfg =
    {
      campaign_config with
      Nemesis.Obj_campaign.objects = [ "kv" ];
      storage = true;
    }
  in
  let r = Nemesis.Obj_campaign.run ~jobs:1 cfg in
  check Alcotest.int "durable runs" 2 r.Nemesis.Obj_campaign.runs;
  check Alcotest.int "no failures under storage faults" 0
    (List.length r.Nemesis.Obj_campaign.failures)

(* --- the shared-memory universal construction -------------------------- *)

let smem_ops =
  [| [ Q.Enq "a"; Q.Deq ]; [ Q.Enq "b"; Q.Deq ] |]

let smem_sequential_schedule () =
  (* Proc 0 runs to completion, then proc 1: the chain must carry all
     four operations in that order and the history is trivially legal. *)
  let total = 4 in
  let counts =
    Array.map (fun l -> Smq.budget ~n:2 ~per_proc:(List.length l) ~total)
      smem_ops
  in
  let schedule =
    List.concat
      [
        List.init counts.(0) (fun _ -> 0); List.init counts.(1) (fun _ -> 1);
      ]
  in
  let t = Smq.create ~n:2 () in
  ignore
    (Sharedmem.Explore.run_schedule ~n:2 ~schedule ~body:(fun p ->
         List.iteri
           (fun k o ->
             ignore (Smq.exec t p ~cid:((p.Sharedmem.World.me lsl 20) lor k) o
               : Q.resp))
           smem_ops.(p.Sharedmem.World.me))
      : Dsim.Engine.outcome);
  check Alcotest.int "chain carries every op" 4 (List.length (Smq.chain t));
  check Alcotest.int "one event per op" 4 (List.length (Smq.events t));
  check (Alcotest.list Alcotest.string) "sequential run legal" []
    (Smq.violations t);
  check Alcotest.string "chain replay drains the queue"
    (Q.digest Q.init) (Smq.final_digest t)

let smem_honest_sampled () =
  let r = Smq.check_sampled ~ops:smem_ops ~samples:50 ~seed:9L () in
  check Alcotest.int "all samples ran" 50 r.Smq.samples;
  check (Alcotest.list Alcotest.string) "honest construction linearizable" []
    r.Smq.violations

let smem_broken_sampled () =
  let r =
    Smq.check_sampled ~broken:true ~ops:smem_ops ~samples:50 ~seed:9L ()
  in
  check Alcotest.bool "last-write-wins append convicted" true
    (r.Smq.violations <> [])

(* --- the model-checked queue ------------------------------------------- *)

let mcheck_config = { E.default_config with E.depth = 10 }
let explore_model model = E.explore ~jobs:1 ~config:mcheck_config model

let mcheck_uc_queue_clean () =
  let r = explore_model (Mcheck.Models.uc_queue ()) in
  check Alcotest.bool "explored a real space" true (r.E.r_executions > 100);
  check Alcotest.int "no violating schedule" 0 r.E.r_violating

let mcheck_uc_queue_broken_caught () =
  let r = explore_model (Mcheck.Models.uc_queue ~broken:true ()) in
  check Alcotest.bool "violating schedules found" true (r.E.r_violating > 0);
  check Alcotest.bool "wing-gong violation named" true
    (List.exists
       (fun v ->
         String.length v >= 3 && String.equal (String.sub v 0 3) "wg:")
       r.E.r_violations)

(* --- suite -------------------------------------------------------------- *)

let suite =
  List.concat
    [
      [
        Alcotest.test_case "queue spec" `Quick queue_spec;
        Alcotest.test_case "stack spec" `Quick stack_spec;
        Alcotest.test_case "counter spec" `Quick counter_spec;
        Alcotest.test_case "set spec" `Quick set_spec;
        Alcotest.test_case "index spec" `Quick index_spec;
        Alcotest.test_case "kv spec" `Quick kv_spec;
        Alcotest.test_case "queue digest canonical" `Quick
          queue_digest_canonical;
      ];
      List.map
        (fun (name, m) ->
          Alcotest.test_case
            (Printf.sprintf "codec round-trip (%s)" name)
            `Quick (codec_roundtrip m))
        Obj.Registry.all;
      [
        Alcotest.test_case "wg sequential legal" `Quick wg_sequential_legal;
        Alcotest.test_case "wg concurrent reorder" `Quick wg_concurrent_reorder;
        Alcotest.test_case "wg real-time respected" `Quick
          wg_real_time_respected;
        Alcotest.test_case "wg duplicate deq illegal" `Quick
          wg_duplicate_deq_illegal;
        Alcotest.test_case "wg pending may be dropped" `Quick
          wg_pending_may_be_dropped;
        Alcotest.test_case "wg pending may have taken effect" `Quick
          wg_pending_may_have_taken_effect;
        Alcotest.test_case "wg budget inconclusive" `Quick
          wg_budget_inconclusive;
      ];
      List.concat_map
        (fun b ->
          List.map
            (fun name ->
              Alcotest.test_case
                (Printf.sprintf "replicated %s clean (%s)" name
                   (Backend.name b))
                `Quick (replicated_clean name b))
            Obj.Registry.names)
        Backend.all;
      List.map
        (fun name ->
          Alcotest.test_case
            (Printf.sprintf "replicated %s crash-restart" name)
            `Quick (replicated_crash_restart name Backend.ben_or))
        Obj.Registry.names;
      List.map
        (fun ((name, _, _) as combo) ->
          Alcotest.test_case
            (Printf.sprintf "broken construction convicted (%s)" name)
            `Quick (replicated_mutant_convicted combo))
        mutant_combos;
      [
        Alcotest.test_case "campaign gates pass" `Quick campaign_all_gates_pass;
        Alcotest.test_case "campaign deterministic across jobs" `Quick
          campaign_deterministic_across_jobs;
        Alcotest.test_case "campaign with storage faults" `Quick
          campaign_storage_faults_pass;
        Alcotest.test_case "smem sequential schedule" `Quick
          smem_sequential_schedule;
        Alcotest.test_case "smem honest sampled" `Quick smem_honest_sampled;
        Alcotest.test_case "smem broken sampled" `Quick smem_broken_sampled;
        Alcotest.test_case "mcheck uc-queue clean" `Quick mcheck_uc_queue_clean;
        Alcotest.test_case "mcheck uc-queue broken caught" `Quick
          mcheck_uc_queue_broken_caught;
      ];
    ]
