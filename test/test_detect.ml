(* Tests for the failure-detector subsystem: adaptive timeout algebra,
   benign-run accuracy, the indulgence contract of the Omega-driven
   backend (safety unconditional, liveness once the detector
   stabilises), detector-accuracy campaigns and their determinism
   across job counts, the §12 partition-stall regression, plan
   validation of orphan heals/restarts, shrinker validity, and the
   omega-ac explorer models. *)

module Timeout = Detect.Timeout
module Oracle = Detect.Oracle
module Runner = Detect.Runner
module Plan = Nemesis.Plan
module Gen = Nemesis.Gen
module Campaign = Nemesis.Campaign
module Detect_campaign = Nemesis.Detect_campaign

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- timeout algebra ---------------------------------------------------- *)

let params_gen =
  QCheck.Gen.(
    let* period = int_range 1 100 in
    let* initial = int_range 1 500 in
    let* den = int_range 1 8 in
    let* num = int_range (den + 1) 16 in
    let* cap = int_range initial (initial + 2000) in
    let* shrink = int_range 0 50 in
    return
      { Timeout.period; initial; backoff_num = num; backoff_den = den; cap; shrink })

let params_arb = QCheck.make ~print:(fun _ -> "<params>") params_gen

(* Consecutive suspicions grow the timeout monotonically and saturate at
   the cap: the adaptive schedule never shrinks while a peer keeps
   getting suspected, and never exceeds the configured bound. *)
let prop_timeout_monotone =
  QCheck.Test.make ~name:"suspicion timeouts are monotone and cap-bounded"
    ~count:300 params_arb (fun p ->
      assert (Timeout.valid p);
      let t = ref p.Timeout.initial in
      let ok = ref true in
      for _ = 1 to 60 do
        let t' = Timeout.after_suspicion p !t in
        if t' < !t || t' > p.Timeout.cap then ok := false;
        t := t'
      done;
      (* sixty consecutive suspicions saturate any cap within 2000 *)
      !ok && !t = p.Timeout.cap)

let prop_late_heartbeat_floor =
  QCheck.Test.make ~name:"late heartbeats never shrink below the initial"
    ~count:300
    QCheck.(pair params_arb (int_range 1 3000))
    (fun (p, t) ->
      let t' = Timeout.after_late_heartbeat p t in
      t' >= p.Timeout.initial && t' <= max p.Timeout.initial t)

let invalid_params_rejected () =
  check Alcotest.bool "zero period invalid" false
    (Timeout.valid { Timeout.default with Timeout.period = 0 });
  check Alcotest.bool "non-growing backoff invalid" false
    (Timeout.valid
       { Timeout.default with Timeout.backoff_num = 2; backoff_den = 2 });
  check Alcotest.bool "cap below initial invalid" false
    (Timeout.valid { Timeout.default with Timeout.cap = 1 });
  Alcotest.check_raises "runner rejects invalid params"
    (Invalid_argument "Detect.Oracle.create: invalid timeout parameters")
    (fun () ->
      ignore
        (Runner.run ~n:3 ~quiet:true
           ~params:{ Timeout.default with Timeout.period = 0 }
           ()))

(* --- accuracy on benign runs -------------------------------------------- *)

(* With no faults at all, the default parameters leave headroom over the
   worst heartbeat gap (period + max latency jitter), so the detector
   must never suspect anyone — at every seed.  This is the eventual
   accuracy of ◊P made exact on fault-free executions. *)
let prop_fault_free_no_suspicions =
  QCheck.Test.make ~name:"fault-free runs never suspect anyone (any seed)"
    ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let r = Runner.run ~n:4 ~seed:(Int64.of_int seed) ~quiet:true () in
      r.Runner.suspicions = 0
      && r.Runner.false_suspicions = 0
      && r.Runner.all_live_decided && r.Runner.agreement_ok)

(* --- single runs: the indulgence contract ------------------------------- *)

let crash_triggers_suspicion () =
  let plan = [ { Plan.at = 5; action = Plan.Crash 3 } ] in
  let r =
    Runner.run ~n:4 ~seed:7L ~quiet:true
      ~install:(fun f -> Nemesis.Interp.install_detect plan f)
      ()
  in
  check Alcotest.bool "suspicions recorded" true (r.Runner.suspicions > 0);
  check Alcotest.int "no false suspicions (victim was dead)" 0
    r.Runner.false_suspicions;
  check Alcotest.bool "live majority still decides" true
    r.Runner.all_live_decided;
  check Alcotest.bool "agreement" true r.Runner.agreement_ok;
  check Alcotest.bool "omega stabilised" true (r.Runner.omega_stable_at <> None)

let rotating_starves_liveness_not_safety () =
  let r =
    Runner.run ~n:4 ~seed:3L ~quiet:true ~mutant:Oracle.Rotating ~horizon:1500
      ()
  in
  check Alcotest.bool "no decision under a forever-rotating omega" false
    r.Runner.all_live_decided;
  check Alcotest.bool "agreement survives the lying detector" true
    r.Runner.agreement_ok;
  check Alcotest.bool "validity survives the lying detector" true
    r.Runner.validity_ok

let false_suspect_is_routed_around () =
  (* permanently suspecting a correct process costs nothing but that
     process's coordinatorship: the backend elects someone else *)
  let r =
    Runner.run ~n:4 ~seed:3L ~quiet:true ~mutant:(Oracle.False_suspect 0) ()
  in
  check Alcotest.bool "still decides" true r.Runner.all_live_decided;
  check Alcotest.bool "agreement" true r.Runner.agreement_ok

let decide_meets_backend_contract () =
  let inputs = [| true; false; true |] in
  let v, vt = Runner.decide ~seed:5L ~inputs in
  check Alcotest.bool "decision is someone's input" true
    (Array.exists (Bool.equal v) inputs);
  check Alcotest.bool "positive virtual time charged" true (vt > 0);
  let v1, vt1 = Runner.decide ~seed:5L ~inputs:[| false |] in
  check Alcotest.bool "n=1 short-circuits" true (v1 = false && vt1 = 0)

(* --- campaigns ----------------------------------------------------------- *)

let honest_campaign_has_no_livelocks () =
  let cfg =
    { (Detect_campaign.default_config ~n:4 ()) with Detect_campaign.plans = 25 }
  in
  let r = Detect_campaign.run ~jobs:2 cfg in
  check Alcotest.int "all runs executed" 25 r.Detect_campaign.runs;
  check Alcotest.int "no agreement failures" 0
    (List.length r.Detect_campaign.agreement_failures);
  check Alcotest.int "no validity failures" 0
    (List.length r.Detect_campaign.validity_failures);
  check Alcotest.int "every stable plan decides (no livelock)" 0
    (List.length r.Detect_campaign.livelocks)

let rotating_campaign_flags_liveness_loss () =
  let cfg =
    {
      (Detect_campaign.default_config ~n:4 ()) with
      Detect_campaign.plans = 5;
      mutant = Oracle.Rotating;
    }
  in
  let r = Detect_campaign.run cfg in
  check Alcotest.bool "livelocks flagged" true
    (List.length r.Detect_campaign.livelocks > 0);
  check Alcotest.int "decided runs" 0 r.Detect_campaign.decided_runs;
  check Alcotest.int "agreement intact under the lying detector" 0
    (List.length r.Detect_campaign.agreement_failures)

let campaign_report_stable_across_jobs () =
  let cfg =
    { (Detect_campaign.default_config ~n:4 ()) with Detect_campaign.plans = 12 }
  in
  let render r =
    Format.asprintf "%a" Detect_campaign.pp_report_stable r
  in
  let r1 = render (Detect_campaign.run ~jobs:1 cfg) in
  let r2 = render (Detect_campaign.run ~jobs:2 cfg) in
  check Alcotest.string "stable reports byte-identical at jobs 1 and 2" r1 r2

(* --- §12 regression: partitions stall the RSM until heal ----------------- *)

(* DESIGN §12 once noted that partitions did not perturb the RSM's
   consensus-internal decision traffic: a minority side would happily
   keep deciding slots from its shared proposal cache.  With the
   majority-view gate, a 2|2 split has no majority side, so every slot
   stalls until the heal — the run must still complete, but only after
   virtual time passes the heal. *)
let partition_stalls_rsm_until_heal () =
  let n = 4 in
  let cfg = { (Campaign.default_config ~n ()) with Campaign.max_events = 500_000 } in
  let plan =
    [
      { Plan.at = 5; action = Plan.Partition [ [ 0; 1 ]; [ 2; 3 ] ] };
      { Plan.at = 600; action = Plan.Heal };
    ]
  in
  check (Alcotest.list Alcotest.string) "plan well-formed" []
    (Plan.validate ~n plan);
  let r = Campaign.run_plan cfg ~backend:Rsm.Backend.ben_or ~seed:1 plan in
  check Alcotest.bool "completes after the heal" true (Campaign.complete r);
  check Alcotest.bool "safety holds" true (Campaign.safety_ok r);
  check Alcotest.bool "no slot decided during the quorumless split" true
    (r.Rsm.Runner.virtual_time >= 600)

(* --- plan validation: orphan restarts and heals -------------------------- *)

let validate_rejects_orphans () =
  let contains needle problems =
    List.exists
      (fun s ->
        let n = String.length needle and l = String.length s in
        let rec scan i =
          i + n <= l && (String.sub s i n = needle || scan (i + 1))
        in
        scan 0)
      problems
  in
  let restart_orphan = [ { Plan.at = 10; action = Plan.Restart 2 } ] in
  check Alcotest.bool "restart of never-crashed rejected" true
    (contains "never-crashed" (Plan.validate ~n:4 restart_orphan));
  let heal_orphan = [ { Plan.at = 10; action = Plan.Heal } ] in
  check Alcotest.bool "heal of never-partitioned rejected" true
    (contains "never-partitioned" (Plan.validate ~n:4 heal_orphan));
  let restart_live =
    [
      { Plan.at = 5; action = Plan.Crash 1 };
      { Plan.at = 10; action = Plan.Restart 1 };
      { Plan.at = 15; action = Plan.Restart 1 };
    ]
  in
  check Alcotest.bool "second restart rejected as restart-of-live" true
    (contains "restart of live" (Plan.validate ~n:4 restart_live));
  let double_heal =
    [
      { Plan.at = 5; action = Plan.Partition [ [ 0; 1 ]; [ 2; 3 ] ] };
      { Plan.at = 10; action = Plan.Heal };
      { Plan.at = 15; action = Plan.Heal };
    ]
  in
  check Alcotest.bool "second heal rejected (no active partition)" true
    (contains "no active partition" (Plan.validate ~n:4 double_heal))

(* --- shrinking preserves validity ---------------------------------------- *)

(* Whatever the oracle, every plan the shrinker hands back must still be
   state-machine consistent and well-formed: no orphaned restarts or
   heals introduced by deleting their partners. *)
let prop_shrunk_plans_stay_valid =
  QCheck.Test.make ~name:"shrunk plans remain consistent and well-formed"
    ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let n = 4 in
      let plan = Gen.generate (Gen.default ~n) ~seed in
      let crashes p =
        List.exists
          (fun s -> match s.Plan.action with Plan.Crash _ -> true | _ -> false)
          p
      in
      QCheck.assume (crashes plan);
      (* a cheap deterministic oracle: "fails" iff any crash survives *)
      let oracle = { Nemesis.Shrink.run = Fun.id; failing = crashes } in
      let s = Nemesis.Shrink.shrink oracle plan in
      Plan.consistent s.Nemesis.Shrink.plan
      && Plan.validate ~n s.Nemesis.Shrink.plan = [])

(* --- omega-ac explorer models -------------------------------------------- *)

let omega_ac_clean_explores_clean () =
  let m = Mcheck.Models.omega_ac () in
  let r =
    Mcheck.Explorer.explore ~config:Mcheck.Explorer.default_config m
  in
  check Alcotest.bool "some executions explored" true
    (r.Mcheck.Explorer.r_executions > 1);
  check Alcotest.int "no violations in the indulgent model" 0
    r.Mcheck.Explorer.r_violating

let omega_ac_broken_is_convicted () =
  let m = Mcheck.Models.omega_ac ~broken:true () in
  let r =
    Mcheck.Explorer.explore ~config:Mcheck.Explorer.default_config m
  in
  check Alcotest.bool "suspicion-decides mutant convicted" true
    (r.Mcheck.Explorer.r_violating > 0);
  match r.Mcheck.Explorer.r_counterexample with
  | None -> Alcotest.fail "no counterexample retained"
  | Some x ->
      check Alcotest.bool "agreement violation named" true
        (List.exists
           (fun v ->
             String.length v >= 9 && String.sub v 0 9 = "agreement")
           x.Mcheck.Explorer.x_violations)

let suite =
  [
    qtest prop_timeout_monotone;
    qtest prop_late_heartbeat_floor;
    Alcotest.test_case "invalid detector parameters rejected" `Quick
      invalid_params_rejected;
    qtest prop_fault_free_no_suspicions;
    Alcotest.test_case "crash triggers suspicion, majority decides" `Quick
      crash_triggers_suspicion;
    Alcotest.test_case "rotating mutant starves liveness, not safety" `Quick
      rotating_starves_liveness_not_safety;
    Alcotest.test_case "false-suspect mutant is routed around" `Quick
      false_suspect_is_routed_around;
    Alcotest.test_case "decide meets the Backend.S contract" `Quick
      decide_meets_backend_contract;
    Alcotest.test_case "honest campaign: no livelocks, no violations" `Slow
      honest_campaign_has_no_livelocks;
    Alcotest.test_case "rotating campaign flags liveness loss" `Quick
      rotating_campaign_flags_liveness_loss;
    Alcotest.test_case "campaign report stable across job counts" `Slow
      campaign_report_stable_across_jobs;
    Alcotest.test_case "partition stalls RSM slots until heal (§12)" `Quick
      partition_stalls_rsm_until_heal;
    Alcotest.test_case "validate rejects orphan restarts and heals" `Quick
      validate_rejects_orphans;
    qtest prop_shrunk_plans_stay_valid;
    Alcotest.test_case "omega-ac explores clean" `Quick
      omega_ac_clean_explores_clean;
    Alcotest.test_case "omega-ac-broken is convicted" `Quick
      omega_ac_broken_is_convicted;
  ]
