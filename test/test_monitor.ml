(* Tests for the property monitors: every check must catch its violation
   and stay silent on clean executions. *)

module M = Consensus.Monitor.Make (Consensus.Objects.Int_value)
open Consensus.Types

let check = Alcotest.check

let properties violations = List.map (fun v -> v.Consensus.Monitor.property) violations

let clean_round_passes () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 1;
  M.record_initial m ~pid:2 1;
  List.iter (fun pid -> M.record_output m ~round:1 ~pid (Commit 1)) [ 0; 1; 2 ];
  check (Alcotest.list Alcotest.string) "no violations" [] (properties (M.check_vac m))

let coherence_ac_catches_vacillate_next_to_commit () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Vacillate 0);
  check Alcotest.bool "flagged" true
    (List.mem "coherence(adopt&commit)" (properties (M.check_vac m)))

let coherence_ac_catches_wrong_value () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 0);
  check Alcotest.bool "flagged" true
    (List.mem "coherence(adopt&commit)" (properties (M.check_vac m)))

let coherence_ac_allows_matching_adopt () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 1);
  check
    (Alcotest.list Alcotest.string)
    "clean" []
    (properties (M.check_vac ~validity:false m))

let coherence_va_catches_mixed_adopts () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Adopt 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 0);
  check Alcotest.bool "flagged" true
    (List.mem "coherence(vacillate&adopt)" (properties (M.check_vac ~validity:false m)))

let coherence_va_allows_vacillate_anything () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Adopt 1);
  M.record_output m ~round:1 ~pid:1 (Vacillate 0);
  check
    (Alcotest.list Alcotest.string)
    "clean" []
    (properties (M.check_vac ~validity:false m))

let coherence_va_only_without_commit () =
  (* Mixed adopt values next to a commit are already an A&C violation; the
     V&A rule itself only applies in commit-free rounds. *)
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 1);
  M.record_output m ~round:1 ~pid:2 (Adopt 1);
  check
    (Alcotest.list Alcotest.string)
    "clean" []
    (properties (M.check_vac ~validity:false m))

let convergence_catches_non_commit () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 1;
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 1);
  check Alcotest.bool "flagged" true
    (List.mem "convergence" (properties (M.check_vac m)))

let convergence_ignores_mixed_inputs () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 0;
  M.record_output m ~round:1 ~pid:0 (Adopt 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 1);
  check (Alcotest.list Alcotest.string) "clean" [] (properties (M.check_vac m))

let validity_catches_invented_value () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 1;
  M.record_output m ~round:1 ~pid:0 (Vacillate 9);
  check Alcotest.bool "flagged" true
    (List.mem "validity" (properties (M.check_vac m)))

let validity_can_be_disabled () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_output m ~round:1 ~pid:0 (Vacillate 9);
  check Alcotest.bool "vacillate 9 is the only problem" true
    (List.for_all
       (fun p -> p <> "validity")
       (properties (M.check_vac ~validity:false m)))

let ac_shape_rejects_vacillate () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Vacillate 1);
  check Alcotest.bool "flagged" true
    (List.mem "ac-shape" (properties (M.check_ac ~validity:false m)))

let consensus_agreement () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 2;
  M.record_decision m ~round:1 ~pid:0 1;
  M.record_decision m ~round:2 ~pid:1 2;
  check Alcotest.bool "disagreement flagged" true
    (List.mem "agreement" (properties (M.check_consensus m)))

let consensus_validity () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_decision m ~round:1 ~pid:0 5;
  check Alcotest.bool "invalid decision flagged" true
    (List.mem "consensus-validity" (properties (M.check_consensus m)))

let consensus_clean () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 2;
  M.record_decision m ~round:3 ~pid:0 2;
  M.record_decision m ~round:3 ~pid:1 2;
  check (Alcotest.list Alcotest.string) "clean" [] (properties (M.check_consensus m))

let observer_plumbs_into_rounds () =
  (* Two processors with split inputs (a unanimous round would trip the
     convergence check on anything but a commit). *)
  let m = M.create () in
  let obs4 = M.observer m ~pid:4 and obs5 = M.observer m ~pid:5 in
  M.record_initial m ~pid:4 1;
  M.record_initial m ~pid:5 2;
  obs4.Consensus.Template.on_detect ~round:1 (Adopt 1);
  obs4.Consensus.Template.on_new_preference ~round:1 1;
  obs5.Consensus.Template.on_detect ~round:1 (Vacillate 2);
  obs5.Consensus.Template.on_new_preference ~round:1 1;
  obs4.Consensus.Template.on_detect ~round:2 (Commit 1);
  obs4.Consensus.Template.on_decide ~round:2 1;
  obs5.Consensus.Template.on_detect ~round:2 (Commit 1);
  obs5.Consensus.Template.on_decide ~round:2 1;
  check (Alcotest.list Alcotest.int) "two rounds recorded" [ 1; 2 ] (M.rounds m);
  check Alcotest.int "decisions recorded" 2 (List.length (M.decisions m));
  check (Alcotest.list Alcotest.string) "clean run" []
    (properties (M.check_vac m @ M.check_consensus m))

(* ----------------------------------------------------- property tests --
   Each generator synthesizes an observation sequence that violates one
   property {e by construction}; the monitor must name exactly that
   property.  A last generator builds clean executions and expects
   silence — together they pin the checks from both sides. *)

let qtest = QCheck_alcotest.to_alcotest

(* A fresh monitor with [n] processors whose initial inputs are drawn
   from the small value universe 0..3. *)
let monitor_with_inputs inputs =
  let m = M.create () in
  List.iteri (fun pid v -> M.record_initial m ~pid v) inputs;
  m

let gen_inputs = QCheck.Gen.(list_size (int_range 2 5) (int_range 0 3))

let shuffled_pids n st =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = QCheck.Gen.int_bound i st in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let qc_coherence_ac =
  (* Someone commits [u]; someone else holds a value other than [u] (or
     vacillates).  A&C coherence must fire regardless of who/when. *)
  let gen =
    QCheck.Gen.(
      pair gen_inputs (pair (int_range 0 3) (int_range 1 3)) >|= fun (inputs, (u, delta)) ->
      (inputs, u, (u + delta) mod 4))
  in
  QCheck.Test.make ~count:200
    ~name:"A&C coherence fires on any commit next to a differing value"
    (QCheck.make gen) (fun (inputs, u, w) ->
      QCheck.assume (u <> w);
      let m = monitor_with_inputs inputs in
      M.record_output m ~round:1 ~pid:0 (Commit u);
      M.record_output m ~round:1 ~pid:1 (Adopt w);
      List.mem "coherence(adopt&commit)"
        (properties (M.check_vac ~validity:false m)))

let qc_coherence_va =
  (* Commit-free round, two distinct adopted values: V&A coherence. *)
  let gen = QCheck.Gen.(pair gen_inputs (pair (int_range 0 3) (int_range 1 3))) in
  QCheck.Test.make ~count:200
    ~name:"V&A coherence fires on mixed adopts without a commit"
    (QCheck.make gen) (fun (inputs, (u, delta)) ->
      let w = (u + delta) mod 4 in
      QCheck.assume (u <> w);
      let m = monitor_with_inputs inputs in
      M.record_output m ~round:1 ~pid:0 (Adopt u);
      M.record_output m ~round:1 ~pid:1 (Adopt w);
      M.record_output m ~round:1 ~pid:2 (Vacillate u);
      List.mem "coherence(vacillate&adopt)"
        (properties (M.check_vac ~validity:false m)))

let qc_ac_shape =
  (* Any execution containing a vacillate is not an AC execution. *)
  QCheck.Test.make ~count:200 ~name:"AC shape rejects any vacillate output"
    (QCheck.make
       QCheck.Gen.(pair gen_inputs (pair (int_range 1 4) (int_range 0 3))))
    (fun (inputs, (round, v)) ->
      let m = monitor_with_inputs inputs in
      M.record_output m ~round ~pid:0 (Commit v);
      M.record_output m ~round ~pid:1 (Vacillate v);
      List.mem "ac-shape" (properties (M.check_ac ~validity:false m)))

let qc_convergence =
  (* Unanimous inputs but someone fails to commit the common value. *)
  QCheck.Test.make ~count:200
    ~name:"convergence fires when unanimity does not commit"
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 3) (pair (int_range 2 5) (int_range 0 2))))
    (fun (v, (n, bad_kind)) ->
      let m = monitor_with_inputs (List.init n (fun _ -> v)) in
      for pid = 0 to n - 2 do
        M.record_output m ~round:1 ~pid (Commit v)
      done;
      let bad =
        match bad_kind with
        | 0 -> Adopt v
        | 1 -> Vacillate v
        | _ -> Commit ((v + 1) mod 4)
      in
      M.record_output m ~round:1 ~pid:(n - 1) bad;
      List.mem "convergence" (properties (M.check_vac ~validity:false m)))

let qc_validity =
  (* An output value nobody proposed. *)
  QCheck.Test.make ~count:200 ~name:"validity fires on invented values"
    (QCheck.make QCheck.Gen.(pair gen_inputs (int_range 0 2)))
    (fun (inputs, kind) ->
      let invented = 1 + List.fold_left max 0 inputs in
      let m = monitor_with_inputs inputs in
      let out =
        match kind with
        | 0 -> Adopt invented
        | 1 -> Vacillate invented
        | _ -> Commit invented
      in
      M.record_output m ~round:1 ~pid:0 out;
      List.mem "validity" (properties (M.check_vac m)))

let qc_agreement =
  (* Two decisions with different values, any rounds, any pids. *)
  QCheck.Test.make ~count:200 ~name:"agreement fires on split decisions"
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 3) (pair (int_range 1 3) (pair (int_range 1 5) (int_range 1 5)))))
    (fun (u, (delta, (r1, r2))) ->
      let w = (u + delta) mod 4 in
      QCheck.assume (u <> w);
      let m = monitor_with_inputs [ u; w ] in
      M.record_decision m ~round:r1 ~pid:0 u;
      M.record_decision m ~round:r2 ~pid:1 w;
      List.mem "agreement" (properties (M.check_consensus m)))

let qc_consensus_validity =
  (* A unanimous decision on a value outside the initial inputs. *)
  QCheck.Test.make ~count:200
    ~name:"consensus validity fires on uninput decisions"
    (QCheck.make QCheck.Gen.(pair gen_inputs (int_range 1 5)))
    (fun (inputs, round) ->
      let invented = 1 + List.fold_left max 0 inputs in
      let m = monitor_with_inputs inputs in
      M.record_decision m ~round ~pid:0 invented;
      List.mem "consensus-validity" (properties (M.check_consensus m)))

let qc_clean_runs_stay_clean =
  (* Well-formed VAC rounds — a committed value with matching adopts, or
     a commit-free round of one adopted value amid vacillates — recorded
     in any processor order must produce no violations. *)
  let gen =
    QCheck.Gen.(
      pair (int_range 2 5) (pair (int_range 0 3) (pair bool (int_range 0 1000)))
      >|= fun (n, (u, (committed, salt))) -> (n, u, committed, salt))
  in
  QCheck.Test.make ~count:300 ~name:"clean VAC rounds produce no violations"
    (QCheck.make gen) (fun (n, u, committed, salt) ->
      let m = monitor_with_inputs (List.init n (fun i -> if i = 0 then u else (u + (i mod 2)) mod 4)) in
      let st = Random.State.make [| salt |] in
      let order = shuffled_pids n st in
      List.iteri
        (fun k pid ->
          let out =
            if committed then if k = 0 then Commit u else Adopt u
            else if k = 0 then Adopt u
            else Vacillate ((u + k) mod 4)
          in
          M.record_output m ~round:1 ~pid out)
        order;
      (* Mixed inputs by construction when n > 1, so convergence does not
         apply; validity is off because vacillate values are arbitrary. *)
      properties (M.check_vac ~validity:false m) = [])

let suite =
  [
    Alcotest.test_case "clean round passes" `Quick clean_round_passes;
    Alcotest.test_case "A&C: vacillate next to commit" `Quick
      coherence_ac_catches_vacillate_next_to_commit;
    Alcotest.test_case "A&C: wrong value" `Quick coherence_ac_catches_wrong_value;
    Alcotest.test_case "A&C: matching adopt ok" `Quick coherence_ac_allows_matching_adopt;
    Alcotest.test_case "V&A: mixed adopts" `Quick coherence_va_catches_mixed_adopts;
    Alcotest.test_case "V&A: vacillate is free" `Quick coherence_va_allows_vacillate_anything;
    Alcotest.test_case "V&A scoped to commit-free rounds" `Quick
      coherence_va_only_without_commit;
    Alcotest.test_case "convergence violation" `Quick convergence_catches_non_commit;
    Alcotest.test_case "convergence scope" `Quick convergence_ignores_mixed_inputs;
    Alcotest.test_case "validity violation" `Quick validity_catches_invented_value;
    Alcotest.test_case "validity opt-out" `Quick validity_can_be_disabled;
    Alcotest.test_case "AC shape" `Quick ac_shape_rejects_vacillate;
    Alcotest.test_case "consensus agreement" `Quick consensus_agreement;
    Alcotest.test_case "consensus validity" `Quick consensus_validity;
    Alcotest.test_case "consensus clean" `Quick consensus_clean;
    Alcotest.test_case "observer plumbing" `Quick observer_plumbs_into_rounds;
    qtest qc_coherence_ac;
    qtest qc_coherence_va;
    qtest qc_ac_shape;
    qtest qc_convergence;
    qtest qc_validity;
    qtest qc_agreement;
    qtest qc_consensus_validity;
    qtest qc_clean_runs_stay_clean;
  ]
