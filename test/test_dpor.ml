(* Differential and regression tests for the reduction stack: DPOR
   vs sleep-set vs unreduced sweeps must agree on what is buggy while
   only shrinking how much work it takes to know; fingerprint pruning at
   a positive fault budget must stay sound (and the collision audit must
   convict a fingerprint that is not); DPOR and PCT trails must survive
   the replay file format; and the work-stealing frontier must keep
   reports byte-identical at every job count. *)

module E = Mcheck.Explorer
module M = Mcheck.Models
module P = Mcheck.Pct
module Engine = Dsim.Engine
module Net = Netsim.Async_net

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let explore ?(jobs = 1) ~config model = E.explore ~jobs ~config model
let render_stable r = Format.asprintf "%a" E.pp_report_stable r

(* ------------------------------------------------ random token race ----

   A family of tiny order-sensitive systems for differential testing:
   three processes each fire a few messages, observe a prefix of their
   inbox, and optionally relay one more message after observing (the
   relay rides a creation edge, so the DPOR happens-before analysis has
   real chains to walk).  The "violations" compare observations
   pairwise — not a correctness property, an *observation* of delivery
   order — so the distinct-violation set of a sweep is a fingerprint of
   exactly which orderings it explored.  A reduction is sound iff it
   preserves that set while running fewer executions. *)

type plan = {
  sends : (int * int) list array;  (* per process: initial (dst, tag) sends *)
  waits : int array;  (* inbox prefix length each process observes *)
  relay : (int * int * int) option;  (* (proc, dst, tag) second-wave send *)
}

let plan_to_string p =
  let sends =
    String.concat " | "
      (Array.to_list
         (Array.map
            (fun l ->
              String.concat ","
                (List.map (fun (d, t) -> Printf.sprintf "%d!%d" d t) l))
            p.sends))
  in
  Printf.sprintf "sends=[%s] waits=[%s] relay=%s" sends
    (String.concat ","
       (Array.to_list (Array.map string_of_int p.waits)))
    (match p.relay with
    | None -> "-"
    | Some (w, d, t) -> Printf.sprintf "p%d:%d!%d" w d t)

let model_of_plan (p : plan) : M.t =
  let make () =
    let obs = Array.make 3 None in
    let run (oracle : Engine.oracle) =
      let eng = Engine.create ~seed:1L () in
      Engine.set_oracle eng (Some oracle);
      let net = Net.create eng ~n:3 () in
      for i = 0 to 2 do
        ignore
          (Engine.spawn eng
             ~name:(Printf.sprintf "tok%d" i)
             (fun _ ->
               List.iter
                 (fun (dst, tag) -> Net.send net ~src:i ~dst tag)
                 p.sends.(i);
               let seen =
                 Engine.await (fun () ->
                     let ib = Net.inbox net i in
                     if List.length ib >= p.waits.(i) then
                       Some (List.filteri (fun k _ -> k < p.waits.(i)) ib)
                     else None)
               in
               obs.(i) <-
                 Some
                   (String.concat ","
                      (List.map
                         (fun e ->
                           Printf.sprintf "%d:%d" e.Net.src e.Net.payload)
                         seen));
               match p.relay with
               | Some (who, dst, tag) when who = i ->
                   Net.send net ~src:i ~dst tag
               | _ -> ()))
      done;
      ignore (Engine.run eng)
    in
    let violations () =
      let acc = ref [] in
      for i = 0 to 2 do
        for j = i + 1 to 2 do
          match (obs.(i), obs.(j)) with
          | Some a, Some b when a <> b ->
              acc := Printf.sprintf "obs p%d=[%s] p%d=[%s]" i a j b :: !acc
          | _ -> ()
        done
      done;
      List.sort compare !acc
    in
    let digest () =
      String.concat ";"
        (Array.to_list
           (Array.map (function None -> "-" | Some s -> s) obs))
    in
    { M.run; violations; digest; fingerprint = None }
  in
  { M.name = "token-race"; describe = "random differential token race"; make }

let gen_plan =
  QCheck.Gen.(
    let send = pair (int_bound 2) (int_bound 2) in
    let sends = list_size (int_bound 2) send in
    map
      (fun ((s0, s1, s2), (waits, relay)) ->
        (* Cap the total at four initial sends: the unreduced sweep
           explores every within-tick permutation, and four tied
           deliveries plus a relay wave stay exhaustive at depth 10. *)
        let rec cap k = function
          | [] -> []
          | x :: tl -> if k <= 0 then [] else x :: cap (k - 1) tl
        in
        let s0 = cap 2 s0 in
        let s1 = cap (4 - List.length s0) s1 in
        let s2 = cap (4 - List.length s0 - List.length s1) s2 in
        {
          sends = [| s0; s1; s2 |];
          waits = Array.of_list waits;
          relay;
        })
      (pair
         (triple sends sends sends)
         (pair
            (list_repeat 3 (int_range 1 2))
            (opt (triple (int_bound 2) (int_bound 2) (int_bound 2))))))

let differential_reductions =
  QCheck.Test.make ~count:30
    ~name:"dpor, sleep and unreduced sweeps agree on the violation set"
    (QCheck.make gen_plan ~print:plan_to_string)
    (fun plan ->
      let run r =
        explore
          ~config:{ E.default_config with depth = 10; reduction = r }
          (model_of_plan plan)
      in
      let rn = run E.Rnone in
      let rs = run E.Rsleep in
      let rd = run E.Rdpor in
      if rn.E.r_truncated > 0 || rs.E.r_truncated > 0 || rd.E.r_truncated > 0
      then QCheck.Test.fail_report "plan not exhaustive at depth 10";
      if rn.E.r_violations <> rs.E.r_violations then
        QCheck.Test.fail_reportf "sleep lost orderings:@ none=%s@ sleep=%s"
          (String.concat " ; " rn.E.r_violations)
          (String.concat " ; " rs.E.r_violations);
      if rn.E.r_violations <> rd.E.r_violations then
        QCheck.Test.fail_reportf "dpor lost orderings:@ none=%s@ dpor=%s"
          (String.concat " ; " rn.E.r_violations)
          (String.concat " ; " rd.E.r_violations);
      if
        not
          (rd.E.r_executions <= rs.E.r_executions
          && rs.E.r_executions <= rn.E.r_executions)
      then
        QCheck.Test.fail_reportf "reduction grew the tree: none=%d sleep=%d dpor=%d"
          rn.E.r_executions rs.E.r_executions rd.E.r_executions;
      true)

(* ----------------------------------------------------- pinned counts --- *)

let dpor_beats_sleep_on_toy_ac () =
  let config r = { E.default_config with depth = 12; reduction = r } in
  let sleep =
    explore ~config:(config E.Rsleep) (M.toy_ac ~check_termination:true ())
  in
  let dpor =
    explore ~config:(config E.Rdpor) (M.toy_ac ~check_termination:true ())
  in
  check Alcotest.int "sleep schedule count pinned" 46656 sleep.E.r_executions;
  check Alcotest.int "dpor schedule count pinned" 11374 dpor.E.r_executions;
  check Alcotest.bool "dpor is strictly cheaper" true
    (dpor.E.r_executions < sleep.E.r_executions);
  check Alcotest.bool "dpor sweep exhaustive" true
    ((not dpor.E.r_capped) && dpor.E.r_truncated = 0);
  check Alcotest.int "both sweeps clean" 0
    (sleep.E.r_violating + dpor.E.r_violating)

let dpor_agrees_on_the_mutant () =
  let config r = { E.default_config with depth = 12; reduction = r } in
  let sleep =
    explore ~config:(config E.Rsleep)
      (M.toy_ac ~broken:true ~check_termination:true ())
  in
  let dpor =
    explore ~config:(config E.Rdpor)
      (M.toy_ac ~broken:true ~check_termination:true ())
  in
  check Alcotest.int "sleep violating schedules pinned" 6144
    sleep.E.r_violating;
  check Alcotest.int "dpor violating schedules pinned" 363 dpor.E.r_violating;
  check
    (Alcotest.list Alcotest.string)
    "identical distinct-violation sets" sleep.E.r_violations
    dpor.E.r_violations;
  check Alcotest.bool "dpor kept a counterexample" true
    (dpor.E.r_counterexample <> None)

(* -------------------------------------------- budget-sound pruning ----

   A bug only reachable after a message drop: p2 burns two aux sends so
   the protocol-critical Commit is the last fault consultation; p0
   sends Ping then Commit to p1 and decides true; p1 arms a deadline
   two ticks out and decides false if Commit never arrives.  A
   fingerprint that ignores the wire and the unspent budget hashes the
   dropped-Commit state into the already-explored deliver-all state and
   prunes the only violating subtree — the unsoundness the explorer's
   [fp_ctx] plumbing exists to prevent, and the one the collision audit
   must convict. *)

type fmsg = Aux | Ping | Commit

let fault_mask_model ~fp () : M.t =
  let make () =
    let p0_out = ref None and p1_out = ref None in
    let netref = ref None and engref = ref None in
    let run (oracle : Engine.oracle) =
      let eng = Engine.create ~seed:1L () in
      Engine.set_oracle eng (Some oracle);
      let net = Net.create eng ~n:3 () in
      netref := Some net;
      engref := Some eng;
      ignore
        (Engine.spawn eng ~name:"aux" (fun _ ->
             Net.send net ~src:2 ~dst:2 Aux;
             Net.send net ~src:2 ~dst:2 Aux));
      ignore
        (Engine.spawn eng ~name:"sender" (fun _ ->
             Net.send net ~src:0 ~dst:1 Ping;
             Net.send net ~src:0 ~dst:1 Commit;
             p0_out := Some true));
      ignore
        (Engine.spawn eng ~name:"receiver" (fun _ ->
             Engine.schedule eng ~owner:1 ~delay:2 (fun () ->
                 if !p1_out = None then p1_out := Some false);
             Engine.await (fun () ->
                 if
                   List.exists
                     (fun e -> e.Net.payload = Commit)
                     (Net.inbox net 1)
                 then Some ()
                 else None);
             if !p1_out = None then p1_out := Some true));
      ignore (Engine.run eng)
    in
    let violations () =
      match (!p0_out, !p1_out) with
      | Some a, Some b when a <> b ->
          [ Printf.sprintf "agreement: p0=%b p1=%b" a b ]
      | _ -> []
    in
    let digest () =
      let s = function None -> "-" | Some b -> string_of_bool b in
      Printf.sprintf "p0=%s p1=%s" (s !p0_out) (s !p1_out)
    in
    let fingerprint =
      match fp with
      | `Blind ->
          (* the canonical unsound fingerprint: every state collides *)
          Some (fun (_ : M.fp_ctx) -> 0)
      | `Sound ->
          Some
            (fun (ctx : M.fp_ctx) ->
              match (!netref, !engref) with
              | Some net, Some eng ->
                  let wire =
                    List.map
                      (fun e -> (e.Net.src, e.Net.dst, e.Net.payload))
                      (Net.in_flight net)
                  in
                  let boxes =
                    List.init 3 (fun i ->
                        List.map
                          (fun e -> (e.Net.src, e.Net.payload))
                          (Net.inbox net i))
                  in
                  Hashtbl.hash_param 256 256
                    ( wire,
                      boxes,
                      ctx.M.drops_left,
                      !p0_out,
                      !p1_out,
                      Engine.now eng )
              | _ -> 0)
    in
    { M.run; violations; digest; fingerprint }
  in
  {
    M.name = "fault-mask";
    describe = "drop-gated disagreement for fingerprint soundness tests";
    make;
  }

let budget_pruning_soundness () =
  (* frontier 1: with more partitions each gets its own memo table and
     prefix-served consultations skip the prune check, so partitioning
     dilutes (without fixing) an unsound fingerprint — the soundness
     question needs the single-partition sweep where the memo sees
     everything *)
  let config =
    { E.default_config with depth = 12; fault_budget = 1; frontier = 1 }
  in
  let base = explore ~config (fault_mask_model ~fp:`Sound ()) in
  check Alcotest.bool "the drop-gated bug is reachable unpruned" true
    (base.E.r_violating > 0);
  let blind =
    explore
      ~config:{ config with prune = true }
      (fault_mask_model ~fp:`Blind ())
  in
  check Alcotest.int "a blind fingerprint masks the bug" 0 blind.E.r_violating;
  check Alcotest.bool "by pruning live subtrees" true (blind.E.r_pruned > 0);
  let sound =
    explore
      ~config:{ config with prune = true }
      (fault_mask_model ~fp:`Sound ())
  in
  check Alcotest.bool "the budget-aware fingerprint keeps it" true
    (sound.E.r_violating > 0);
  check
    (Alcotest.list Alcotest.string)
    "same violation set as the unpruned sweep" base.E.r_violations
    sound.E.r_violations

let audit_convicts_blind_fingerprint () =
  let config =
    {
      E.default_config with
      depth = 12;
      fault_budget = 1;
      prune = true;
      audit = 1;
      frontier = 1;
    }
  in
  let blind = explore ~config (fault_mask_model ~fp:`Blind ()) in
  check Alcotest.bool "audited continuations ran" true (blind.E.r_audited > 0);
  check Alcotest.bool "the audit convicts the blind fingerprint" true
    (blind.E.r_audit_failures <> []);
  check Alcotest.int "the sweep verdict itself was still masked" 0
    blind.E.r_violating;
  let sound = explore ~config (fault_mask_model ~fp:`Sound ()) in
  check
    (Alcotest.list Alcotest.string)
    "the sound fingerprint passes the audit" [] sound.E.r_audit_failures;
  (* auditing a clean model with a sound fingerprint is silent too *)
  let clean =
    explore
      ~config:{ config with fault_budget = 0 }
      (M.toy_ac ~check_termination:true ())
  in
  check Alcotest.bool "clean-model prunes were audited" true
    (clean.E.r_audited > 0);
  check
    (Alcotest.list Alcotest.string)
    "clean-model audit is silent" [] clean.E.r_audit_failures

(* ------------------------------------------------------- replay -------- *)

let dpor_counterexample_replays () =
  let config = { E.default_config with depth = 12; reduction = E.Rdpor } in
  let model () = M.toy_ac ~broken:true ~check_termination:true () in
  let r = explore ~config (model ()) in
  let ce = Option.get r.E.r_counterexample in
  let t = Mcheck.Replay.of_exec ~model:"toy-ac-broken" ~config ce in
  let t' = Mcheck.Replay.of_string (Mcheck.Replay.to_string t) in
  let x = E.replay ~config (model ()) (Mcheck.Replay.entries t') in
  check Alcotest.string "dpor trail digest survives the file format"
    ce.E.x_digest x.E.x_digest;
  check
    (Alcotest.list Alcotest.string)
    "dpor trail violations survive" ce.E.x_violations x.E.x_violations

let pct_convicts_and_replays () =
  let pc = { P.default_config with P.schedules = 2000 } in
  let model () = M.toy_ac ~broken:true ~check_termination:true () in
  let r = P.run ~jobs:2 ~config:pc (model ()) in
  check Alcotest.bool "PCT convicts the mutant within budget" true
    (r.P.pr_violating > 0);
  check Alcotest.int "first violating schedule pinned" 1040
    (Option.get r.P.pr_first);
  let trail = Option.get r.P.pr_counterexample in
  let config = { E.default_config with depth = 12 } in
  let t =
    Mcheck.Replay.of_entries ~model:"toy-ac-broken" ~config
      (E.entries_of_choices trail)
  in
  let t' = Mcheck.Replay.of_string (Mcheck.Replay.to_string t) in
  let x = E.replay ~config (model ()) (Mcheck.Replay.entries t') in
  let y = E.replay ~config (model ()) (Mcheck.Replay.entries t') in
  check Alcotest.bool "the sampled schedule still violates after the file"
    true
    (x.E.x_violations <> []);
  check Alcotest.string "and replays deterministically" x.E.x_digest
    y.E.x_digest

(* ----------------------------------------------------- determinism ----- *)

let dpor_report_stable_across_jobs () =
  let config = { E.default_config with depth = 12; reduction = E.Rdpor } in
  let model () = M.toy_ac ~broken:true ~check_termination:true () in
  let r1 = explore ~jobs:1 ~config (model ()) in
  let r4 = explore ~jobs:4 ~config (model ()) in
  check Alcotest.string "dpor frontier report byte-identical at jobs 1 vs 4"
    (render_stable r1) (render_stable r4)

let pct_report_stable_across_jobs () =
  let pc = { P.default_config with P.schedules = 500 } in
  let model () = M.toy_ac ~broken:true ~check_termination:true () in
  let r1 = P.run ~jobs:1 ~config:pc (model ()) in
  let r4 = P.run ~jobs:4 ~config:pc (model ()) in
  check Alcotest.string "pct report byte-identical at jobs 1 vs 4"
    (Format.asprintf "%a" P.pp_report_stable r1)
    (Format.asprintf "%a" P.pp_report_stable r4)

let suite =
  [
    qtest differential_reductions;
    Alcotest.test_case "dpor strictly beats sleep on toy AC" `Quick
      dpor_beats_sleep_on_toy_ac;
    Alcotest.test_case "dpor agrees with sleep on the mutant" `Quick
      dpor_agrees_on_the_mutant;
    Alcotest.test_case "pruning at a positive budget is sound" `Quick
      budget_pruning_soundness;
    Alcotest.test_case "collision audit convicts a blind fingerprint" `Quick
      audit_convicts_blind_fingerprint;
    Alcotest.test_case "dpor counterexample replays through the file" `Quick
      dpor_counterexample_replays;
    Alcotest.test_case "PCT convicts the mutant and replays" `Quick
      pct_convicts_and_replays;
    Alcotest.test_case "dpor report stable across jobs" `Quick
      dpor_report_stable_across_jobs;
    Alcotest.test_case "PCT report stable across jobs" `Quick
      pct_report_stable_across_jobs;
  ]
