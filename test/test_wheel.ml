(* Tests for the hierarchical timing wheel, centred on its contract
   with {!Dsim.Heap}: same (key, insertion-seq) order, same tie sets.
   The engine's determinism across queue backends rests on exactly the
   equivalences checked here. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let pop_all w =
  let rec go acc =
    match Dsim.Wheel.pop w with
    | None -> List.rev acc
    | Some (key, v) -> go ((key, v) :: acc)
  in
  go []

let kv_list = Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)

let empty_wheel () =
  let w = Dsim.Wheel.create () in
  check Alcotest.bool "is_empty" true (Dsim.Wheel.is_empty w);
  check Alcotest.int "length" 0 (Dsim.Wheel.length w);
  check Alcotest.bool "pop None" true (Dsim.Wheel.pop w = None);
  check Alcotest.bool "peek None" true (Dsim.Wheel.peek_key w = None);
  check Alcotest.int "time starts at 0" 0 (Dsim.Wheel.time w)

let ordering_across_levels () =
  (* Keys chosen to straddle level boundaries: same level-0 window,
     next 256-window (level 1), a level-2 key, and a far level-3 key.
     Popping must cascade through all of them in sorted order. *)
  let keys = [ 3; 255; 256; 257; 65_535; 65_536; 16_777_216; 5; 70_000 ] in
  let w = Dsim.Wheel.create () in
  List.iteri (fun i k -> Dsim.Wheel.add w ~key:k i) keys;
  let expected =
    List.stable_sort
      (fun (k1, _) (k2, _) -> compare k1 k2)
      (List.mapi (fun i k -> (k, i)) keys)
  in
  check kv_list "sorted across cascade boundaries" expected (pop_all w)

let fifo_on_ties () =
  let w = Dsim.Wheel.create () in
  List.iteri
    (fun i label -> Dsim.Wheel.add w ~key:(if i mod 2 = 0 then 7 else 9) label)
    [ 10; 11; 12; 13; 14 ];
  check kv_list "insertion order within equal keys"
    [ (7, 10); (7, 12); (7, 14); (9, 11); (9, 13) ]
    (pop_all w)

let monotone_violation () =
  let w = Dsim.Wheel.create () in
  Dsim.Wheel.add w ~key:100 1;
  check Alcotest.bool "pop" true (Dsim.Wheel.pop w = Some (100, 1));
  check Alcotest.int "time advanced" 100 (Dsim.Wheel.time w);
  Alcotest.check_raises "key below time rejected"
    (Invalid_argument "Wheel.add: key below the current time (wheel is monotone)")
    (fun () -> Dsim.Wheel.add w ~key:99 2);
  (* at the floor is fine *)
  Dsim.Wheel.add w ~key:100 3;
  check Alcotest.bool "re-add at floor" true (Dsim.Wheel.pop w = Some (100, 3))

let clear_then_reuse () =
  let inserts = [ (300, 20); (1, 21); (300, 22); (0, 23); (70_000, 24) ] in
  let fresh = Dsim.Wheel.create () in
  List.iter (fun (k, v) -> Dsim.Wheel.add fresh ~key:k v) inserts;
  let reused = Dsim.Wheel.create () in
  for i = 1 to 64 do
    Dsim.Wheel.add reused ~key:(i * 17) i
  done;
  for _ = 1 to 10 do
    ignore (Dsim.Wheel.pop reused : (int * int) option)
  done;
  Dsim.Wheel.clear reused;
  check Alcotest.int "time reset by clear" 0 (Dsim.Wheel.time reused);
  List.iter (fun (k, v) -> Dsim.Wheel.add reused ~key:k v) inserts;
  check kv_list "reused wheel pops like a fresh one" (pop_all fresh)
    (pop_all reused)

let tie_set_operations () =
  let w = Dsim.Wheel.create () in
  List.iteri
    (fun i k -> Dsim.Wheel.add w ~key:k i)
    [ 5; 9; 5; 5; 12 ];
  check Alcotest.int "min_key_count" 3 (Dsim.Wheel.min_key_count w);
  check (Alcotest.list Alcotest.int) "min_key_values in seq order" [ 0; 2; 3 ]
    (Dsim.Wheel.min_key_values w);
  (* remove the middle of the tie set; the rest keeps its order *)
  check Alcotest.bool "pop_min_nth 1" true
    (Dsim.Wheel.pop_min_nth w 1 = Some (5, 2));
  check (Alcotest.list Alcotest.int) "tie set after interior removal" [ 0; 3 ]
    (Dsim.Wheel.min_key_values w);
  Alcotest.check_raises "nth outside tied range"
    (Invalid_argument "Wheel.pop_min_nth: index out of tied range") (fun () ->
      ignore (Dsim.Wheel.pop_min_nth w 2 : (int * int) option))

(* --- randomized heap/wheel equivalence (S3) --------------------------- *)

(* One weighted random op per int drawn from the generator.  Keys are
   monotone (the wheel's contract): adds land at or above the current
   minimum, exactly like the engine's now+delay scheduling.  Deltas mix
   small same-window steps with jumps that cross level-1/2/3 cascade
   boundaries. *)
type equiv_op = Add of int * int | Pop | TieQuery | PopNth of int | Clear

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 120)
      (int_range 0 99 >>= fun sel ->
       if sel < 45 then
         oneofl [ 2; 250; 68_000; 17_000_000 ] >>= fun span ->
         int_bound span >>= fun delta ->
         small_nat >>= fun v -> return (Add (delta, v))
       else if sel < 75 then return Pop
       else if sel < 85 then return TieQuery
       else if sel < 95 then small_nat >>= fun n -> return (PopNth n)
       else return Clear))

let arb_ops = QCheck.make ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l)) gen_ops

let prop_heap_wheel_equivalent =
  QCheck.Test.make ~name:"heap and wheel pop identically (incl. tie sets)"
    ~count:500 arb_ops (fun ops ->
      let h = Dsim.Heap.create () and w = Dsim.Wheel.create () in
      (* The wheel floor: tie-set queries settle it to the current
         minimum, so adds must stay at or above the min key — the
         engine guarantees this via now+delay. *)
      let floor_key = ref 0 in
      let ok = ref true in
      let agree a b = if a <> b then ok := false in
      List.iter
        (fun op ->
          match op with
          | Add (delta, v) ->
              let base =
                match Dsim.Heap.peek_key h with
                | Some mk -> max !floor_key mk
                | None -> !floor_key
              in
              let k = base + delta in
              Dsim.Heap.add h ~key:k v;
              Dsim.Wheel.add w ~key:k v
          | Pop ->
              let a = Dsim.Heap.pop h and b = Dsim.Wheel.pop w in
              agree a b;
              (match a with
              | Some (k, _) -> floor_key := max !floor_key k
              | None -> ())
          | TieQuery ->
              agree
                (Some (Dsim.Heap.min_key_count h, Dsim.Heap.min_key_values h))
                (Some (Dsim.Wheel.min_key_count w, Dsim.Wheel.min_key_values w));
              (* the query settled the wheel to the current min *)
              (match Dsim.Heap.peek_key h with
              | Some k -> floor_key := max !floor_key k
              | None -> ())
          | PopNth n ->
              let c = Dsim.Heap.min_key_count h in
              if c > 0 then begin
                let n = n mod c in
                let a = Dsim.Heap.pop_min_nth h n in
                agree a (Dsim.Wheel.pop_min_nth w n);
                (* the wheel settled to the tie key even when this was the
                   last element, so take the floor from the popped key *)
                match a with
                | Some (k, _) -> floor_key := max !floor_key k
                | None -> ()
              end
          | Clear ->
              Dsim.Heap.clear h;
              Dsim.Wheel.clear w;
              floor_key := 0)
        ops;
      (* drain both and compare the full (key, value) pop sequence *)
      let rec drain () =
        let a = Dsim.Heap.pop h and b = Dsim.Wheel.pop w in
        agree a b;
        if a <> None then drain ()
      in
      drain ();
      !ok)

let prop_equeue_backends_agree =
  QCheck.Test.make ~name:"Equeue dispatch agrees across backends" ~count:200
    QCheck.(list (pair (int_bound 1000) small_nat))
    (fun adds ->
      let qh = Dsim.Equeue.create Dsim.Equeue.Heap
      and qw = Dsim.Equeue.create Dsim.Equeue.Wheel in
      (* one monotone pass: sort keys so the wheel accepts them *)
      let adds = List.sort compare adds in
      List.iter
        (fun (k, v) ->
          Dsim.Equeue.add qh ~key:k v;
          Dsim.Equeue.add qw ~key:k v)
        adds;
      let rec drain acc q =
        match Dsim.Equeue.pop q with
        | None -> List.rev acc
        | Some kv -> drain (kv :: acc) q
      in
      drain [] qh = drain [] qw)

let suite =
  [
    Alcotest.test_case "empty wheel" `Quick empty_wheel;
    Alcotest.test_case "ordering across levels" `Quick ordering_across_levels;
    Alcotest.test_case "FIFO on ties" `Quick fifo_on_ties;
    Alcotest.test_case "monotone violation" `Quick monotone_violation;
    Alcotest.test_case "clear then reuse" `Quick clear_then_reuse;
    Alcotest.test_case "tie-set operations" `Quick tie_set_operations;
    qtest prop_heap_wheel_equivalent;
    qtest prop_equeue_backends_agree;
  ]
