(* Test entry point: one alcotest run covering every library. *)

let () =
  Alcotest.run "object-oriented-consensus"
    [
      ("rng", Test_rng.suite);
      ("heap", Test_heap.suite);
      ("wheel", Test_wheel.suite);
      ("vec", Test_vec.suite);
      ("trace", Test_trace.suite);
      ("engine", Test_engine.suite);
      ("timer", Test_timer.suite);
      ("async-net", Test_async_net.suite);
      ("sync-net", Test_sync_net.suite);
      ("types", Test_types.suite);
      ("monitor", Test_monitor.suite);
      ("template", Test_template.suite);
      ("constructions", Test_constructions.suite);
      ("tally", Test_tally.suite);
      ("ben-or", Test_ben_or.suite);
      ("ben-or-ac-template", Test_ac_variant.suite);
      ("common-coin", Test_common_coin.suite);
      ("phase-king", Test_phase_king.suite);
      ("phase-queen", Test_queen.suite);
      ("raft", Test_raft.suite);
      ("raft-consensus", Test_raft_consensus.suite);
      ("decentralized", Test_decentralized.suite);
      ("sharedmem", Test_sharedmem.suite);
      ("explore", Test_explore.suite);
      ("store", Test_store.suite);
      ("rsm", Test_rsm.suite);
      ("obj", Test_obj.suite);
      ("shard", Test_shard.suite);
      ("workload", Test_workload.suite);
      ("nemesis", Test_nemesis.suite);
      ("detect", Test_detect.suite);
      ("mcheck", Test_mcheck.suite);
      ("dpor", Test_dpor.suite);
      ("exec", Test_exec.suite);
    ]
