(* Tests for the Exec.Pool domain worker pool: result ordering, error
   propagation, and the determinism boundary — the same seeds produce
   the same results at every job count, including when two domains run
   simulations concurrently. *)

let check = Alcotest.check

let ordering jobs () =
  let items = Array.init 25 Fun.id in
  let out = Exec.Pool.map ~jobs (fun x -> x * x) items in
  check
    (Alcotest.list Alcotest.int)
    "results in item order"
    (List.init 25 (fun i -> i * i))
    (Array.to_list out)

let ordering_at_cores () = ordering (Exec.Pool.cores ()) ()

let map_seeded_order () =
  let seeds = [| 7; 3; 11; 5 |] in
  let out = Exec.Pool.map_seeded ~jobs:3 ~seeds (fun s -> s * 10) in
  check
    (Alcotest.list Alcotest.int)
    "seed order regardless of completion order" [ 70; 30; 110; 50 ]
    (Array.to_list out)

let map_list_order () =
  let out = Exec.Pool.map_list ~jobs:3 (fun x -> -x) [ 1; 2; 3; 4; 5 ] in
  check (Alcotest.list Alcotest.int) "list order" [ -1; -2; -3; -4; -5 ] out

let exception_carries_seed () =
  let seeds = Array.init 8 (fun i -> 100 + i) in
  match
    Exec.Pool.map_seeded ~jobs:3 ~seeds (fun s ->
        if s = 103 then failwith "boom" else s)
  with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Exec.Pool.Worker_error { seed; exn; _ } ->
      check Alcotest.int "failing seed attached" 103 seed;
      check Alcotest.bool "original exception preserved" true
        (match exn with Failure m -> String.equal m "boom" | _ -> false)

let lowest_failing_index_wins () =
  (* Several items fail; the reported seed must be the lowest failing
     index, not whichever worker crashed first. *)
  let seeds = Array.init 12 Fun.id in
  match
    Exec.Pool.map_seeded ~jobs:4 ~seeds (fun s ->
        if s mod 3 = 2 then failwith "boom" else s)
  with
  | _ -> Alcotest.fail "expected Worker_error"
  | exception Exec.Pool.Worker_error { seed; _ } ->
      check Alcotest.int "deterministic failure choice" 2 seed

(* The RNG single-domain contract: each run owns its engine and RNG, so
   two domains running the same seed concurrently must produce
   identical results. *)
let same_seed_on_two_domains () =
  let run _ =
    snd
      (Workload.Rsm_load.run_one ~n:5 ~clients:3 ~commands:3 ~batch:4 ~seed:42
         ~backend:Rsm.Backend.ben_or ())
  in
  match Exec.Pool.map ~jobs:2 run [| 0; 1 |] with
  | [| a; b |] ->
      check Alcotest.bool "identical summaries from concurrent domains" true
        (a = b)
  | _ -> assert false

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let campaign_report_independent_of_jobs () =
  let cfg =
    {
      (Nemesis.Campaign.default_config ~n:5 ()) with
      Nemesis.Campaign.backends = [ Rsm.Backend.ben_or; Rsm.Backend.phase_king ];
      plans = 6;
      storage = true;
    }
  in
  let r1 = Nemesis.Campaign.run ~jobs:1 cfg in
  let r4 = Nemesis.Campaign.run ~jobs:4 cfg in
  check Alcotest.int "runs" r1.Nemesis.Campaign.runs r4.Nemesis.Campaign.runs;
  check Alcotest.int "faults injected" r1.Nemesis.Campaign.faults_injected
    r4.Nemesis.Campaign.faults_injected;
  check Alcotest.bool "outcomes field-for-field" true
    (r1.Nemesis.Campaign.outcomes = r4.Nemesis.Campaign.outcomes);
  check Alcotest.bool "coverage" true
    (r1.Nemesis.Campaign.coverage = r4.Nemesis.Campaign.coverage);
  check Alcotest.bool "failure lists" true
    (r1.Nemesis.Campaign.safety_failures = r4.Nemesis.Campaign.safety_failures
    && r1.Nemesis.Campaign.incomplete = r4.Nemesis.Campaign.incomplete
    && r1.Nemesis.Campaign.durability_failures
       = r4.Nemesis.Campaign.durability_failures);
  (* The stable printer is the CI diff contract: byte-identical. *)
  let stable r = Format.asprintf "%a" Nemesis.Campaign.pp_report_stable r in
  check Alcotest.string "stable report byte-identical" (stable r1) (stable r4)

let sweep_cells_independent_of_jobs () =
  let sweep jobs =
    Workload.Rsm_load.sweep_batches ~n:5 ~clients:4 ~commands:2 ~seeds:1
      ~batches:[ 1; 4 ]
      ~backends:[ Rsm.Backend.ben_or ]
      ~jobs null_ppf
  in
  check Alcotest.bool "identical cells" true (sweep 1 = sweep 3)

let merge_matches_sequential_aggregation () =
  let cfg =
    {
      (Nemesis.Campaign.default_config ~n:5 ()) with
      Nemesis.Campaign.plans = 6;
    }
  in
  let full = Nemesis.Campaign.run cfg in
  let a =
    Nemesis.Campaign.run { cfg with Nemesis.Campaign.plans = 3 }
  in
  let b =
    Nemesis.Campaign.run
      { cfg with Nemesis.Campaign.plans = 3; first_seed = cfg.first_seed + 3 }
  in
  let m = Nemesis.Campaign.merge a b in
  check Alcotest.int "merged runs" full.Nemesis.Campaign.runs
    m.Nemesis.Campaign.runs;
  check Alcotest.bool "merged outcomes" true
    (m.Nemesis.Campaign.outcomes = full.Nemesis.Campaign.outcomes);
  check Alcotest.bool "merged coverage" true
    (m.Nemesis.Campaign.coverage = full.Nemesis.Campaign.coverage);
  check Alcotest.int "merged faults" full.Nemesis.Campaign.faults_injected
    m.Nemesis.Campaign.faults_injected

let suite =
  [
    Alcotest.test_case "ordering, jobs=1" `Quick (ordering 1);
    Alcotest.test_case "ordering, jobs=3" `Quick (ordering 3);
    Alcotest.test_case "ordering, jobs=cores" `Quick ordering_at_cores;
    Alcotest.test_case "map_seeded keeps seed order" `Quick map_seeded_order;
    Alcotest.test_case "map_list keeps list order" `Quick map_list_order;
    Alcotest.test_case "exception carries seed" `Quick exception_carries_seed;
    Alcotest.test_case "lowest failing index wins" `Quick
      lowest_failing_index_wins;
    Alcotest.test_case "same seed on two domains" `Quick
      same_seed_on_two_domains;
    Alcotest.test_case "campaign report independent of jobs" `Quick
      campaign_report_independent_of_jobs;
    Alcotest.test_case "sweep cells independent of jobs" `Quick
      sweep_cells_independent_of_jobs;
    Alcotest.test_case "merge matches sequential aggregation" `Quick
      merge_matches_sequential_aggregation;
  ]
