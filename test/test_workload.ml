(* Tests for the statistics, table rendering and experiment plumbing. *)

let check = Alcotest.check
let fcheck name = check (Alcotest.float 1e-9) name

let summarize_known_values () =
  let s = Workload.Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  fcheck "mean" 3.0 s.Workload.Stats.mean;
  fcheck "median" 3.0 s.Workload.Stats.median;
  fcheck "min" 1.0 s.Workload.Stats.min;
  fcheck "max" 5.0 s.Workload.Stats.max;
  check Alcotest.int "count" 5 s.Workload.Stats.count;
  fcheck "stddev" (sqrt 2.0) s.Workload.Stats.stddev

let summarize_single () =
  let s = Workload.Stats.summarize [ 7.0 ] in
  fcheck "mean" 7.0 s.Workload.Stats.mean;
  fcheck "stddev" 0.0 s.Workload.Stats.stddev;
  fcheck "p99" 7.0 s.Workload.Stats.p99

let summarize_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Workload.Stats.summarize [] : Workload.Stats.summary))

let percentiles () =
  let sorted = Array.init 100 (fun i -> float_of_int (i + 1)) in
  fcheck "p50" 50.0 (Workload.Stats.percentile sorted 0.5);
  fcheck "p90" 90.0 (Workload.Stats.percentile sorted 0.9);
  fcheck "p99" 99.0 (Workload.Stats.percentile sorted 0.99);
  fcheck "p100" 100.0 (Workload.Stats.percentile sorted 1.0)

let of_ints_matches () =
  let a = Workload.Stats.of_ints [ 1; 2; 3 ] in
  let b = Workload.Stats.summarize [ 1.0; 2.0; 3.0 ] in
  fcheck "same mean" b.Workload.Stats.mean a.Workload.Stats.mean

let fraction_behaviour () =
  fcheck "empty" 0.0 (Workload.Stats.fraction []);
  fcheck "half" 0.5 (Workload.Stats.fraction [ true; false ]);
  fcheck "all" 1.0 (Workload.Stats.fraction [ true; true ])

let table_renders_aligned () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Workload.Table.print ~ppf ~title:"T" ~headers:[ "a"; "bb" ]
    [ [ "1"; "2" ]; [ "333"; "4" ] ];
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check Alcotest.bool "has title" true (Astring_like.contains out "T");
  check Alcotest.bool "has row" true (Astring_like.contains out "333");
  check Alcotest.bool "has header" true (Astring_like.contains out "bb")

let csv_quotes_properly () =
  let out =
    Workload.Table.csv ~headers:[ "x"; "y" ]
      [ [ "plain"; "with,comma" ]; [ "with\"quote"; "ok" ] ]
  in
  check Alcotest.bool "comma quoted" true (Astring_like.contains out "\"with,comma\"");
  check Alcotest.bool "quote doubled" true (Astring_like.contains out "\"with\"\"quote\"");
  check Alcotest.bool "header line" true (Astring_like.contains out "x,y")

let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let e4_shape_is_quadratic () =
  let rows = Workload.Experiments.E4.run null_formatter in
  let kings =
    List.filter (fun r -> r.Workload.Experiments.E4.algorithm = "king") rows
  in
  let queens =
    List.filter (fun r -> r.Workload.Experiments.E4.algorithm = "queen") rows
  in
  check Alcotest.bool "several sizes per algorithm" true
    (List.length kings >= 4 && List.length queens >= 4);
  List.iter
    (fun r ->
      check Alcotest.bool "ratio positive" true
        (r.Workload.Experiments.E4.messages_over_n2 > 0.0))
    rows;
  (* msgs/n^2 grows with n for a fixed algorithm (more phases as t grows). *)
  let grows rows =
    let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
    last.Workload.Experiments.E4.messages_over_n2
    > first.Workload.Experiments.E4.messages_over_n2
  in
  check Alcotest.bool "king ratio grows" true (grows kings);
  check Alcotest.bool "queen ratio grows" true (grows queens);
  (* Queen uses 2 sync rounds per phase, King 3. *)
  List.iter
    (fun r ->
      check Alcotest.int "king 3 rounds/phase"
        (3 * r.Workload.Experiments.E4.template_rounds)
        r.Workload.Experiments.E4.sync_rounds)
    kings;
  List.iter
    (fun r ->
      check Alcotest.int "queen 2 rounds/phase"
        (2 * r.Workload.Experiments.E4.template_rounds)
        r.Workload.Experiments.E4.sync_rounds)
    queens

let e3_counterexample_separates () =
  check Alcotest.bool "separation holds" true
    (Workload.Experiments.E3.counterexample null_formatter)

let e7_separation_cases () =
  let rows = Workload.Experiments.E7.run ~scale:Workload.Experiments.Quick null_formatter in
  check Alcotest.int "five cases" 5 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool r.Workload.Experiments.E7.case true
        r.Workload.Experiments.E7.clean)
    rows

let histogram_bins () =
  let rows = Workload.Stats.ascii_histogram ~bins:4 ~width:8 [ 0.; 1.; 2.; 3.; 3.9 ] in
  check Alcotest.int "four bins" 4 (List.length rows);
  let total = List.fold_left (fun acc (_, c, _) -> acc + c) 0 rows in
  check Alcotest.int "all values binned" 5 total;
  let _, _, longest_bar =
    List.fold_left
      (fun ((_, bc, _) as best) ((_, c, _) as row) -> if c > bc then row else best)
      (List.hd rows) rows
  in
  check Alcotest.int "peak bar at full width" 8 (String.length longest_bar)

let histogram_degenerate () =
  check Alcotest.int "empty input, no rows" 0
    (List.length (Workload.Stats.ascii_histogram []));
  let rows = Workload.Stats.ascii_histogram ~bins:5 [ 2.0; 2.0; 2.0 ] in
  let total = List.fold_left (fun acc (_, c, _) -> acc + c) 0 rows in
  check Alcotest.int "constant input all in one bin" 3 total

(* --- the shared Load generator ------------------------------------- *)

let load_cdf_monotone () =
  let cdf = Workload.Load.make_cdf ~keys:16 ~s:1.1 in
  check Alcotest.int "16 entries" 16 (Array.length cdf);
  Array.iteri
    (fun i x ->
      if i > 0 then
        check Alcotest.bool "monotone" true (x >= cdf.(i - 1)))
    cdf;
  fcheck "sums to one" 1.0 cdf.(15);
  (* skew: the hottest key carries more mass than a uniform share *)
  check Alcotest.bool "head is hot" true (cdf.(0) > 1.0 /. 16.0)

let load_gen_ops_deterministic () =
  let gen () =
    Workload.Load.gen_kv_ops ~shards:4 ~keys:64 ~zipf_s:1.1 ~seed:9L
      ~clients:6 ~commands:5 ()
  in
  check Alcotest.bool "same seed, same ops" true (gen () = gen ());
  let other =
    Workload.Load.gen_kv_ops ~shards:4 ~keys:64 ~zipf_s:1.1 ~seed:10L
      ~clients:6 ~commands:5 ()
  in
  check Alcotest.bool "different seed differs" true (gen () <> other)

let rsm_gen_ops_shard_aware () =
  let shards = 4 in
  let ops =
    Workload.Rsm_load.gen_ops ~shards ~keys:64 ~seed:3L ~clients:16
      ~commands:8 ()
  in
  let router = Shard.Router.create ~shards in
  let hit = Array.make shards false in
  Array.iter
    (List.iter (fun cmd ->
         hit.(Shard.Router.shard_of_key router (Shard.Runner.kv_key cmd)) <-
           true))
    ops;
  Array.iteri
    (fun s h ->
      check Alcotest.bool (Printf.sprintf "shard %d gets traffic" s) true h)
    hit

let load_gen_shard_ops_shape () =
  let l =
    {
      Workload.Load.default with
      Workload.Load.clients = 8;
      ops_per_client = 6;
      keys = 64;
      tx_pct = 50;
      tx_span = 2;
      shards = 4;
      seed = 7;
    }
  in
  let ops = Workload.Load.gen_shard_ops l in
  check Alcotest.int "one list per client" 8 (Array.length ops);
  Array.iter
    (fun l -> check Alcotest.int "ops per client" 6 (List.length l))
    ops;
  let router = Shard.Router.create ~shards:4 in
  let txs = ref 0 and singles = ref 0 in
  Array.iter
    (List.iter (function
      | Shard.Runner.Single _ -> incr singles
      | Shard.Runner.Tx wops ->
          incr txs;
          let shards_touched =
            List.sort_uniq compare
              (List.map
                 (fun w ->
                   Shard.Router.shard_of_key router (Shard.Cmd.wop_key w))
                 wops)
          in
          check Alcotest.int "tx spans tx_span distinct shards" 2
            (List.length shards_touched)))
    ops;
  check Alcotest.bool "mix has both kinds" true (!txs > 0 && !singles > 0)

let shard_load_run_one () =
  let load =
    {
      Workload.Load.default with
      Workload.Load.clients = 8;
      ops_per_client = 3;
      keys = 32;
      tx_pct = 20;
      shards = 2;
    }
  in
  let _r, s =
    Workload.Shard_load.run_one ~shards:2 ~seed:5 ~load
      ~backend:Rsm.Backend.ben_or ()
  in
  check Alcotest.bool "clean run" true s.Workload.Shard_load.ok;
  check Alcotest.int "total ops" 24 s.Workload.Shard_load.total_ops;
  check Alcotest.int "all ops completed" 24
    (s.Workload.Shard_load.singles_acked + s.Workload.Shard_load.txs_committed
   + s.Workload.Shard_load.txs_aborted);
  check Alcotest.int "one applied count per shard" 2
    (Array.length s.Workload.Shard_load.per_shard_applied)

let seeds_scale () =
  check Alcotest.bool "full > quick" true
    (Workload.Experiments.seeds_for Workload.Experiments.Full
    > Workload.Experiments.seeds_for Workload.Experiments.Quick)

let suite =
  [
    Alcotest.test_case "summarize known values" `Quick summarize_known_values;
    Alcotest.test_case "summarize single" `Quick summarize_single;
    Alcotest.test_case "summarize empty rejected" `Quick summarize_empty_rejected;
    Alcotest.test_case "percentiles" `Quick percentiles;
    Alcotest.test_case "of_ints" `Quick of_ints_matches;
    Alcotest.test_case "fraction" `Quick fraction_behaviour;
    Alcotest.test_case "table rendering" `Quick table_renders_aligned;
    Alcotest.test_case "csv quoting" `Quick csv_quotes_properly;
    Alcotest.test_case "E4 quadratic shape" `Quick e4_shape_is_quadratic;
    Alcotest.test_case "E3 counterexample" `Quick e3_counterexample_separates;
    Alcotest.test_case "E7 separation" `Slow e7_separation_cases;
    Alcotest.test_case "histogram bins" `Quick histogram_bins;
    Alcotest.test_case "histogram degenerate" `Quick histogram_degenerate;
    Alcotest.test_case "load cdf monotone" `Quick load_cdf_monotone;
    Alcotest.test_case "load gen deterministic" `Quick load_gen_ops_deterministic;
    Alcotest.test_case "rsm gen_ops shard-aware" `Quick rsm_gen_ops_shard_aware;
    Alcotest.test_case "gen_shard_ops shape" `Quick load_gen_shard_ops_shape;
    Alcotest.test_case "shard_load run_one" `Quick shard_load_run_one;
    Alcotest.test_case "seed scaling" `Quick seeds_scale;
  ]
