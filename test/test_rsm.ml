(* Tests for the multi-shot RSM subsystem: log slot decisions, batching,
   duplicate suppression, and the total-order checker across backends,
   seeds and crash schedules. *)

module Backend = Rsm.Backend
module Log = Rsm.Log
module Tob = Rsm.Tob
module App = Obj.Kv
module Checker = Rsm.Checker
module Runner = Rsm.Runner

let kv_app = Workload.Rsm_load.kv_app

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let backend_name b = Backend.name b

(* --- helpers ----------------------------------------------------------- *)

let set k v = App.Set (k, v)

let ops_of_n ~client n =
  List.init n (fun k -> set (Printf.sprintf "k%d-%d" client k) (string_of_int k))

let run ?(backend = Backend.ben_or) ?(n = 4) ?(batch = 4) ?(seed = 1)
    ?(crash_schedule = []) ops =
  Runner.run kv_app
    {
      (Runner.default_config ~n ~ops) with
      backend;
      batch;
      seed = Int64.of_int seed;
      crash_schedule;
    }

let no_violations ?(msg = "no violations") (r : _ Runner.report) =
  let show vs = Fmt.str "%a" (Fmt.list Checker.pp_violation) vs in
  check Alcotest.string (msg ^ " (order)") "" (show r.violations);
  check Alcotest.string (msg ^ " (completeness)") "" (show r.completeness);
  check Alcotest.bool (msg ^ " (digests)") true r.digests_agree

(* --- log: slot decision ------------------------------------------------ *)

(* Three replicas race proposals for slot 0 (one empty-handed): the
   decided batch must be one of the non-empty proposals and the same
   answer must be observable by everyone. *)
let log_slot_decision backend () =
  let eng = Dsim.Engine.create ~seed:7L () in
  let log =
    Log.create ~engine:eng ~backend ~seed:7L ~live:(fun () -> [ 0; 1; 2 ]) ()
  in
  Log.propose log ~slot:0 ~pid:0 ~batch:[ "a" ];
  Log.propose log ~slot:0 ~pid:1 ~batch:[ "b"; "c" ];
  Log.propose log ~slot:0 ~pid:2 ~batch:[];
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  match Log.decided log ~slot:0 with
  | None -> Alcotest.fail "slot 0 undecided"
  | Some d ->
      check Alcotest.bool "winner proposed non-empty" true
        (List.mem d.Log.winner [ 0; 1 ]);
      let expected = if d.Log.winner = 0 then [ "a" ] else [ "b"; "c" ] in
      check Alcotest.(list string) "batch is the winner's" expected d.Log.batch;
      check Alcotest.bool "consumed >= 1 backend instance" true (d.Log.instances >= 1);
      check Alcotest.int "one slot decided" 1 (Log.decided_count log)

(* A lone live proposer gets its own batch back. *)
let log_single_proposer () =
  let eng = Dsim.Engine.create ~seed:3L () in
  let log =
    Log.create ~engine:eng ~backend:Backend.ben_or ~seed:3L
      ~live:(fun () -> [ 2 ]) ()
  in
  Log.propose log ~slot:5 ~pid:2 ~batch:[ "solo" ];
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  match Log.decided log ~slot:5 with
  | Some { Log.winner = 2; batch = [ "solo" ]; _ } -> ()
  | _ -> Alcotest.fail "lone proposer must win its own slot"

(* A slot must wait for every live replica, and release when one of the
   awaited replicas crashes instead of proposing. *)
let log_waits_then_releases_on_crash () =
  let eng = Dsim.Engine.create ~seed:9L () in
  let crashed = ref false in
  let live () = if !crashed then [ 0 ] else [ 0; 1 ] in
  let log = Log.create ~engine:eng ~backend:Backend.ben_or ~seed:9L ~live () in
  Log.propose log ~slot:0 ~pid:0 ~batch:[ "x" ];
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  check Alcotest.bool "undecided while replica 1 is awaited" true
    (Log.decided log ~slot:0 = None);
  Dsim.Engine.schedule eng ~delay:5 (fun () -> crashed := true);
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  match Log.decided log ~slot:0 with
  | Some { Log.winner = 0; _ } -> ()
  | _ -> Alcotest.fail "slot must decide once the laggard crashes"

(* --- tob: duplicate suppression ---------------------------------------- *)

(* The same command id injected at two different replicas must be applied
   exactly once per replica, and the checker must stay clean. *)
let duplicate_suppression () =
  let eng = Dsim.Engine.create ~seed:5L () in
  let net = Netsim.Async_net.create eng ~n:3 ~retain_inbox:false () in
  let live () =
    List.filter (fun p -> not (Netsim.Async_net.is_crashed net p)) [ 0; 1; 2 ]
  in
  let log = Log.create ~engine:eng ~backend:Backend.ben_or ~seed:5L ~live () in
  let checker = Checker.create () in
  Checker.record_submitted checker ~cid:7;
  Checker.record_submitted checker ~cid:8;
  let deliver ~pid ~slot (e : _ Tob.entry) =
    Checker.record_applied checker ~replica:pid ~slot ~cid:e.Tob.cid
  in
  let tob = Tob.create ~engine:eng ~net ~log ~batch:4 ~deliver () in
  Dsim.Engine.schedule eng ~delay:0 (fun () ->
      ignore (Tob.submit tob ~replica:0 { Tob.cid = 7; op = "dup" } : bool);
      ignore (Tob.submit tob ~replica:1 { Tob.cid = 7; op = "dup" } : bool);
      ignore (Tob.submit tob ~replica:2 { Tob.cid = 8; op = "solo" } : bool));
  Dsim.Engine.schedule eng ~delay:2_000 (fun () -> Tob.stop tob);
  let outcome = Dsim.Engine.run eng in
  check Alcotest.bool "quiescent" true (outcome = Dsim.Engine.Quiescent);
  for pid = 0 to 2 do
    check Alcotest.int
      (Printf.sprintf "replica %d applied both commands exactly once" pid)
      2
      (Tob.delivered_count tob ~pid)
  done;
  check Alcotest.string "checker clean" ""
    (Fmt.str "%a" (Fmt.list Checker.pp_violation) (Checker.check checker))

(* --- runner: batching -------------------------------------------------- *)

(* Fewer slots (and so fewer backend instances) with a larger batch, same
   commands delivered either way.  Batching only pays off under
   concurrency — closed-loop clients keep at most one command in flight
   each, so several of them must race. *)
let batching_amortizes () =
  let ops = Array.init 6 (fun c -> ops_of_n ~client:c 4) in
  let small = run ~batch:1 ops in
  let large = run ~batch:8 ops in
  no_violations ~msg:"batch=1" small;
  no_violations ~msg:"batch=8" large;
  check Alcotest.int "batch=1 acks all" 24 small.acked;
  check Alcotest.int "batch=8 acks all" 24 large.acked;
  check Alcotest.bool
    (Printf.sprintf "batch=8 uses fewer slots (%d < %d)" large.slots small.slots)
    true (large.slots < small.slots);
  check Alcotest.bool "batch=8 uses fewer backend instances" true
    (large.instances < small.instances)

(* --- runner: every backend, clean and crashy --------------------------- *)

let backend_clean_run backend () =
  let ops = Array.init 2 (fun c -> ops_of_n ~client:c 5) in
  let r = run ~backend ~n:4 ops in
  check Alcotest.bool "quiescent" true (r.engine_outcome = Dsim.Engine.Quiescent);
  check Alcotest.int "all acked" 10 r.acked;
  no_violations r

let backend_crash_run backend () =
  for seed = 1 to 5 do
    let ops = Array.init 2 (fun c -> ops_of_n ~client:c 4) in
    let r =
      run ~backend ~n:5 ~seed ~crash_schedule:[ (30, 1); (90, 3) ] ops
    in
    check Alcotest.int
      (Printf.sprintf "seed %d: all acked despite crashes" seed)
      8 r.acked;
    no_violations ~msg:(Printf.sprintf "seed %d" seed) r
  done

(* Crash–restart (the recoverable model): replicas that crash and come
   back must catch up from the log's cached decisions — all commands
   acked, every replica (all live at the end) applies every command, and
   all digests agree. *)
let backend_crash_restart_run backend () =
  for seed = 1 to 3 do
    let ops = Array.init 2 (fun c -> ops_of_n ~client:c 4) in
    let crash_schedule, restart_schedule =
      Workload.Rsm_load.crash_restart_plan ~n:4 ~crashes:2 ~down_for:120 ()
    in
    let r =
      Runner.run kv_app
        {
          (Runner.default_config ~n:4 ~ops) with
          backend;
          batch = 4;
          seed = Int64.of_int seed;
          crash_schedule;
          restart_schedule;
        }
    in
    check Alcotest.int
      (Printf.sprintf "seed %d: crash events" seed)
      2
      (List.length r.crashed);
    check Alcotest.int
      (Printf.sprintf "seed %d: restart events" seed)
      2
      (List.length r.restarted);
    check Alcotest.int
      (Printf.sprintf "seed %d: all acked across restarts" seed)
      8 r.acked;
    no_violations ~msg:(Printf.sprintf "seed %d" seed) r;
    (* Everyone is live at the end, so completeness + digests above cover
       the restarted replicas too; delivered counts must all match. *)
    Array.iter
      (fun d ->
        check Alcotest.int
          (Printf.sprintf "seed %d: every replica applied everything" seed)
          r.delivered.(0) d)
      r.delivered
  done

(* CAS commands must resolve identically everywhere: total order makes the
   winner deterministic per run, and digests already catch divergence. *)
let cas_replicated_consistently () =
  let contended c =
    [
      App.Cas { key = "lock"; expect = None; update = Printf.sprintf "c%d" c };
      set (Printf.sprintf "after%d" c) "1";
    ]
  in
  let r = run ~n:3 [| contended 0; contended 1; contended 2 |] in
  no_violations r;
  check Alcotest.int "all acked" 6 r.acked

(* --- property: total order across seeds, crashes and backends ---------- *)

let prop_total_order =
  QCheck.Test.make ~name:"rsm total order across seeds/crashes/backends" ~count:24
    QCheck.(
      quad (int_range 1 1_000_000) (int_range 0 2) (int_range 1 4) (int_range 0 1))
    (fun (seed, backend_ix, batch, crashes) ->
      let backend = List.nth Backend.all backend_ix in
      let n = 4 in
      let ops = Array.init 2 (fun c -> ops_of_n ~client:c 3) in
      let crash_schedule = List.init crashes (fun k -> (25 + (40 * k), k)) in
      let r = run ~backend ~n ~batch ~seed ~crash_schedule ops in
      r.violations = [] && r.completeness = [] && r.digests_agree
      && r.acked = 6)

(* --- runner: queue backend and same-tick batching are pure mechanism --- *)

(* The engine's raw-speed knobs — event-queue backend and same-tick batch
   draining — must be invisible at the protocol level: a seeded run gives
   a byte-identical structured trace and the same checker verdicts across
   all four combinations. *)
let queue_and_batching_invariance () =
  let run_with ~label ~queue ~batching =
    let ops = Array.init 3 (fun c -> ops_of_n ~client:c 4) in
    let r =
      Runner.run kv_app
        {
          (Runner.default_config ~n:4 ~ops) with
          seed = 11L;
          queue;
          batching;
        }
    in
    no_violations ~msg:label r;
    check Alcotest.int (label ^ " acks all") 12 r.acked;
    ( Digest.to_hex (Digest.string (Fmt.str "%a" Dsim.Trace.dump r.trace)),
      r.slots,
      r.messages_delivered )
  in
  let fingerprint =
    Alcotest.triple Alcotest.string Alcotest.int Alcotest.int
  in
  let base = run_with ~label:"heap+batch" ~queue:Dsim.Equeue.Heap ~batching:true in
  List.iter
    (fun (label, queue, batching) ->
      check fingerprint label base (run_with ~label ~queue ~batching))
    [
      ("heap, batching off", Dsim.Equeue.Heap, false);
      ("wheel, batching on", Dsim.Equeue.Wheel, true);
      ("wheel, batching off", Dsim.Equeue.Wheel, false);
    ]

let suite =
  List.concat
    [
      List.map
        (fun b ->
          Alcotest.test_case
            (Printf.sprintf "log slot decision (%s)" (backend_name b))
            `Quick (log_slot_decision b))
        Backend.all;
      [
        Alcotest.test_case "log single proposer" `Quick log_single_proposer;
        Alcotest.test_case "log releases on crash" `Quick
          log_waits_then_releases_on_crash;
        Alcotest.test_case "duplicate suppression" `Quick duplicate_suppression;
        Alcotest.test_case "batching amortizes consensus" `Quick batching_amortizes;
        Alcotest.test_case "queue/batching invariance" `Quick
          queue_and_batching_invariance;
        Alcotest.test_case "cas replicated consistently" `Quick
          cas_replicated_consistently;
      ];
      List.map
        (fun b ->
          Alcotest.test_case
            (Printf.sprintf "clean run (%s)" (backend_name b))
            `Quick (backend_clean_run b))
        Backend.all;
      List.map
        (fun b ->
          Alcotest.test_case
            (Printf.sprintf "crash tolerance (%s)" (backend_name b))
            `Quick (backend_crash_run b))
        Backend.all;
      List.map
        (fun b ->
          Alcotest.test_case
            (Printf.sprintf "crash-restart recovery (%s)" (backend_name b))
            `Quick (backend_crash_restart_run b))
        Backend.all;
      [ qtest prop_total_order ];
    ]
