(* Tests for the bounded model checker: exhaustive exploration of the
   toy adopt-commit (correct and mutant), the paper's constructions at
   small n, replay determinism, parallel-frontier stability, pruning
   equivalence, and the replay file format. *)

module E = Mcheck.Explorer
module M = Mcheck.Models

let check = Alcotest.check

let explore ?(jobs = 1) ?(config = E.default_config) model =
  E.explore ~jobs ~config model

let render_stable r = Format.asprintf "%a" E.pp_report_stable r

(* --------------------------------------------------------- toy AC ----- *)

let toy_ac_exhaustive_clean () =
  let model = M.toy_ac ~check_termination:true () in
  let r = explore model ~config:{ E.default_config with depth = 12 } in
  check Alcotest.bool "exhaustive" true
    ((not r.E.r_capped) && r.E.r_truncated = 0);
  check Alcotest.int "schedule count" 46656 r.E.r_executions;
  check Alcotest.int "no violations" 0 r.E.r_violating

let toy_ac_broken_caught () =
  let model = M.toy_ac ~broken:true ~check_termination:true () in
  let r = explore model ~config:{ E.default_config with depth = 12 } in
  check Alcotest.int "same schedule space as the correct protocol" 46656
    r.E.r_executions;
  check Alcotest.int "violating schedules" 6144 r.E.r_violating;
  check Alcotest.bool "coherence violation named" true
    (List.exists
       (fun v -> Astring_like.contains v "coherence(adopt&commit)")
       r.E.r_violations);
  check Alcotest.bool "counterexample captured" true
    (r.E.r_counterexample <> None)

let toy_ac_broken_depth_bound_truncates () =
  (* A depth bound below the branching need must flag the run as
     non-exhaustive instead of silently under-exploring. *)
  let model = M.toy_ac ~broken:true ~check_termination:true () in
  let r = explore model ~config:{ E.default_config with depth = 3 } in
  check Alcotest.bool "truncated executions flagged" true (r.E.r_truncated > 0)

(* ------------------------------------------------- counterexamples ----- *)

let minimized_ce_replays_identically () =
  let model = M.toy_ac ~broken:true ~check_termination:true () in
  let config = { E.default_config with depth = 12 } in
  let r = explore model ~config in
  let ce = Option.get r.E.r_counterexample in
  let minimized = Option.get (E.minimize ~config model ce.E.x_trail) in
  check Alcotest.bool "minimization does not grow the trail" true
    (List.length minimized <= List.length ce.E.x_trail);
  (* Round-trip through the replay file, then replay twice: digests and
     violations must match exactly. *)
  let file = E.replay ~config model minimized in
  let again = E.replay ~config model minimized in
  check Alcotest.bool "still violating" true (file.E.x_violations <> []);
  check (Alcotest.list Alcotest.string) "violations deterministic"
    file.E.x_violations again.E.x_violations;
  check Alcotest.string "digest deterministic" file.E.x_digest again.E.x_digest;
  check Alcotest.string "digest matches the original execution" ce.E.x_digest
    file.E.x_digest

let replay_file_round_trip () =
  let model = M.toy_ac ~broken:true ~check_termination:true () in
  let config = { E.default_config with depth = 12 } in
  let r = explore model ~config in
  let ce = Option.get r.E.r_counterexample in
  let t = Mcheck.Replay.of_exec ~model:"toy-ac-broken" ~config ce in
  let t' = Mcheck.Replay.of_string (Mcheck.Replay.to_string t) in
  check Alcotest.string "model survives" t.Mcheck.Replay.model
    t'.Mcheck.Replay.model;
  check Alcotest.int "depth survives" t.Mcheck.Replay.depth
    t'.Mcheck.Replay.depth;
  check Alcotest.bool "choices survive" true
    (t.Mcheck.Replay.choices = t'.Mcheck.Replay.choices);
  (* Entries rebuilt from the file pin every consultation. *)
  let x = E.replay ~config model (Mcheck.Replay.entries t') in
  check Alcotest.string "replayed digest matches" ce.E.x_digest x.E.x_digest

(* ------------------------------------------------------ stability ------ *)

let report_stable_across_jobs () =
  let config = { E.default_config with depth = 12 } in
  let model () = M.toy_ac ~broken:true ~check_termination:true () in
  let r1 = explore (model ()) ~jobs:1 ~config in
  let r2 = explore (model ()) ~jobs:2 ~config in
  check Alcotest.string "stable report byte-identical" (render_stable r1)
    (render_stable r2)

let pruning_agrees_with_full_search () =
  (* At fault budget 0 the fingerprint captures complete state, so the
     pruned search must reach the same verdict and the same distinct
     violation set as the unpruned one. *)
  let config = { E.default_config with depth = 12 } in
  let pruned_config = { config with prune = true } in
  let full = explore (M.toy_ac ~broken:true ~check_termination:true ()) ~config in
  let pruned =
    explore
      (M.toy_ac ~broken:true ~check_termination:true ())
      ~config:pruned_config
  in
  check Alcotest.bool "pruned run still finds violations" true
    (pruned.E.r_violating > 0);
  check (Alcotest.list Alcotest.string) "same distinct violations"
    full.E.r_violations pruned.E.r_violations;
  let clean_full = explore (M.toy_ac ~check_termination:true ()) ~config in
  let clean_pruned =
    explore (M.toy_ac ~check_termination:true ()) ~config:pruned_config
  in
  check Alcotest.int "clean protocol: full search is clean" 0
    clean_full.E.r_violating;
  check Alcotest.int "clean protocol: pruned search is clean" 0
    clean_pruned.E.r_violating;
  check Alcotest.bool "pruning removed at least one execution" true
    (clean_pruned.E.r_executions <= clean_full.E.r_executions)

let reduction_preserves_the_bug () =
  (* Sleep-set-style reduction only collapses commuting deliveries, so
     the mutant is caught with reduction both on and off.  The full
     unreduced space is intractable (9! orderings per tick) and the
     bounded violation sets aren't comparable — at equal depth the
     unreduced search burns its branch budget on early permutations the
     reduction proves irrelevant — so compare executions-to-first-catch
     instead, which also demonstrates why the reduction pays off. *)
  let config = { E.default_config with depth = 12; stop_at_first = true } in
  let on = explore (M.toy_ac ~broken:true ~check_termination:false ()) ~config in
  let off =
    explore
      (M.toy_ac ~broken:true ~check_termination:false ())
      ~config:{ config with reduction = E.Rnone }
  in
  check Alcotest.bool "caught with reduction" true (on.E.r_violating > 0);
  check Alcotest.bool "caught without reduction" true (off.E.r_violating > 0);
  check Alcotest.bool "reduction reaches the bug in fewer executions" true
    (on.E.r_executions < off.E.r_executions);
  check Alcotest.bool "same violation class" true
    (List.exists
       (fun v -> Astring_like.contains v "coherence(adopt&commit)")
       on.E.r_violations
    && List.exists
         (fun v -> Astring_like.contains v "coherence(adopt&commit)")
         off.E.r_violations)

(* --------------------------------------------- protocols under test ---- *)

let ben_or_small_depth_clean () =
  let model = M.benor ~check_termination:false () in
  let r = explore model ~config:{ E.default_config with depth = 5 } in
  check Alcotest.bool "ran a real frontier" true (r.E.r_executions > 1);
  check Alcotest.int "no violations" 0 r.E.r_violating

let constructions_clean_under_exploration () =
  (* Satellite: the Section 5 constructions, explored exhaustively at
     n=2 in lock-step — every within-tick ordering of register ops. *)
  let config = { E.default_config with depth = 24 } in
  List.iter
    (fun (name, model) ->
      let r = explore model ~config in
      check Alcotest.bool (name ^ " exhaustive") true
        ((not r.E.r_capped) && r.E.r_truncated = 0);
      check Alcotest.bool (name ^ " nontrivial space") true
        (r.E.r_executions > 1000);
      check Alcotest.int (name ^ " no violations") 0 r.E.r_violating)
    [ ("vac2ac", M.vac2ac ()); ("ac-of-vac", M.ac_of_vac ()) ]

let registry_resolves_all_models () =
  List.iter
    (fun name ->
      let m = M.of_name name ~fault_budget:0 in
      check Alcotest.string "name round-trips" name m.M.name)
    M.names;
  check Alcotest.bool "unknown name rejected" true
    (match M.of_name "no-such-model" ~fault_budget:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "toy AC exhaustive and clean" `Quick
      toy_ac_exhaustive_clean;
    Alcotest.test_case "toy AC mutant caught" `Quick toy_ac_broken_caught;
    Alcotest.test_case "depth bound flags truncation" `Quick
      toy_ac_broken_depth_bound_truncates;
    Alcotest.test_case "minimized counterexample replays" `Quick
      minimized_ce_replays_identically;
    Alcotest.test_case "replay file round-trip" `Quick replay_file_round_trip;
    Alcotest.test_case "report stable across jobs" `Quick
      report_stable_across_jobs;
    Alcotest.test_case "pruning agrees with full search" `Quick
      pruning_agrees_with_full_search;
    Alcotest.test_case "reduction preserves the bug" `Quick
      reduction_preserves_the_bug;
    Alcotest.test_case "Ben-Or clean at small depth" `Quick
      ben_or_small_depth_clean;
    Alcotest.test_case "constructions clean under exploration" `Quick
      constructions_clean_under_exploration;
    Alcotest.test_case "registry resolves all models" `Quick
      registry_resolves_all_models;
  ]
