(* Tests for the asynchronous network model. *)

module Engine = Dsim.Engine
module Net = Netsim.Async_net

let check = Alcotest.check

let make ?latency ?policy ?retain_inbox ?(n = 4) () =
  let e = Engine.create ~seed:5L () in
  let net = Net.create e ~n ?latency ?policy ?retain_inbox () in
  (e, net)

let payloads net id = List.map (fun env -> env.Net.payload) (Net.inbox net id)

let basic_delivery () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 3) () in
  Net.send net ~src:0 ~dst:1 "hello";
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "delivered" [ "hello" ] (payloads net 1);
  check Alcotest.int "delivery time respects latency" 3 (Engine.now e);
  check Alcotest.int "sent" 1 (Net.messages_sent net);
  check Alcotest.int "delivered count" 1 (Net.messages_delivered net)

let broadcast_includes_self () =
  let e, net = make () in
  Net.broadcast net ~src:2 "x";
  ignore (Engine.run e : Engine.outcome);
  for i = 0 to 3 do
    check Alcotest.int (Printf.sprintf "node %d got it" i) 1
      (List.length (payloads net i))
  done

let latency_bounds () =
  let e, net = make ~latency:(Netsim.Latency.Uniform (5, 9)) () in
  for _ = 1 to 50 do
    Net.send net ~src:0 ~dst:1 ()
  done;
  ignore (Engine.run e : Engine.outcome);
  List.iter
    (fun env ->
      let d = Engine.now e in
      ignore d;
      ignore env)
    (Net.inbox net 1);
  check Alcotest.int "all arrived" 50 (List.length (Net.inbox net 1))

let crash_stops_delivery () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 10) () in
  Net.send net ~src:0 ~dst:1 "pre-crash";
  Engine.schedule e ~delay:5 (fun () -> Net.crash net 1);
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.bool "crashed flag" true (Net.is_crashed net 1);
  check Alcotest.int "crashed count" 1 (Net.crashed_count net);
  (* The message was in flight but delivery happens after the crash. *)
  check (Alcotest.list Alcotest.string) "nothing delivered" [] (payloads net 1)

let crashed_node_cannot_send () =
  let e, net = make () in
  Net.crash net 0;
  Net.send net ~src:0 ~dst:1 "ghost";
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "no ghost delivery" [] (payloads net 1)

let restart_resumes_delivery () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) () in
  Net.crash net 1;
  Net.send net ~src:0 ~dst:1 "lost";
  Engine.schedule e ~delay:10 (fun () ->
      Net.restart net 1;
      Net.send net ~src:0 ~dst:1 "found");
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "only post-restart message" [ "found" ]
    (payloads net 1)

(* Restart semantics are about *arrival* time: a message still in flight
   when the node comes back is delivered; one arriving during the outage
   is lost for good. *)
let restart_keeps_in_flight_messages () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 10) () in
  Net.crash net 1;
  Net.send net ~src:0 ~dst:1 "in-flight";
  (* arrives at t=10 *)
  Engine.schedule e ~delay:5 (fun () -> Net.restart net 1);
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "in-flight message survives the outage"
    [ "in-flight" ] (payloads net 1)

let restart_loses_messages_arriving_while_down () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 2) () in
  Net.crash net 1;
  Net.send net ~src:0 ~dst:1 "lost";
  (* arrives at t=2, node down until t=5 *)
  Engine.schedule e ~delay:5 (fun () -> Net.restart net 1);
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "down-time arrival is gone" []
    (payloads net 1);
  check Alcotest.bool "node is back up" false (Net.is_crashed net 1);
  check Alcotest.int "crashed count back to zero" 0 (Net.crashed_count net)

let restart_resumes_sending_and_handler () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) ~retain_inbox:false () in
  let seen = ref [] in
  Net.set_handler net 0 (fun env -> seen := env.Net.payload :: !seen);
  Net.crash net 1;
  Net.send net ~src:1 ~dst:0 "while-down";
  Engine.schedule e ~delay:3 (fun () ->
      Net.restart net 1;
      Net.send net ~src:1 ~dst:0 "after-restart");
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string)
    "handler sees only the post-restart send" [ "after-restart" ] !seen

let restart_of_live_node_is_noop () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) () in
  Net.restart net 2;
  check Alcotest.bool "still up" false (Net.is_crashed net 2);
  Net.send net ~src:0 ~dst:2 "fine";
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "delivery unaffected" [ "fine" ]
    (payloads net 2)

let partition_drops_cross_cut () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) () in
  Net.set_partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Net.send net ~src:0 ~dst:1 "same-side";
  Net.send net ~src:0 ~dst:2 "cross";
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "same side arrives" [ "same-side" ]
    (payloads net 1);
  check (Alcotest.list Alcotest.string) "cross cut dropped" [] (payloads net 2);
  Net.heal net;
  Net.send net ~src:0 ~dst:2 "healed";
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "after heal" [ "healed" ] (payloads net 2)

let isolated_node_in_partition () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) () in
  (* Node 3 appears in no group: fully isolated. *)
  Net.set_partition net [ [ 0; 1; 2 ] ];
  Net.send net ~src:0 ~dst:3 "to-isolated";
  Net.send net ~src:3 ~dst:0 "from-isolated";
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "isolated receives nothing" []
    (payloads net 3);
  check (Alcotest.list Alcotest.string) "isolated sends nothing" [] (payloads net 0)

let policy_drop_and_duplicate () =
  let policy env =
    match env.Net.payload with
    | "drop-me" -> Net.Drop
    | "dup-me" -> Net.Duplicate 2
    | _ -> Net.Deliver
  in
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) ~policy () in
  Net.send net ~src:0 ~dst:1 "drop-me";
  Net.send net ~src:0 ~dst:1 "dup-me";
  Net.send net ~src:0 ~dst:1 "normal";
  ignore (Engine.run e : Engine.outcome);
  let got = payloads net 1 in
  check Alcotest.int "3 copies of dup + 1 normal" 4 (List.length got);
  check Alcotest.bool "no dropped message" false (List.mem "drop-me" got)

let policy_delay_extra () =
  let policy _ = Net.Delay_extra 100 in
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) ~policy () in
  Net.send net ~src:0 ~dst:1 "slow";
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "delayed beyond base latency" 101 (Engine.now e)

let distinct_senders_under_duplication () =
  let policy _ = Net.Duplicate 3 in
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) ~policy () in
  Net.send net ~src:0 ~dst:1 "m";
  Net.send net ~src:2 ~dst:1 "m";
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "inbox counts copies" 8 (Net.inbox_count net 1 (fun _ -> true));
  check Alcotest.int "distinct senders ignores copies" 2
    (Net.distinct_senders net 1 (fun _ -> true))

let push_handler_runs_at_delivery () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 2) ~retain_inbox:false () in
  let seen = ref [] in
  Net.set_handler net 1 (fun env -> seen := (Engine.now e, env.Net.payload) :: !seen);
  Net.send net ~src:0 ~dst:1 "pushed";
  ignore (Engine.run e : Engine.outcome);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "handler saw the delivery" [ (2, "pushed") ] !seen;
  check (Alcotest.list Alcotest.string) "inbox not retained" []
    (List.map (fun env -> env.Net.payload) (Net.inbox net 1))

let bad_ids_rejected () =
  let _, net = make () in
  Alcotest.check_raises "send bad src" (Invalid_argument "Async_net.send: bad node id 9")
    (fun () -> Net.send net ~src:9 ~dst:0 "x");
  Alcotest.check_raises "crash bad id" (Invalid_argument "Async_net.crash: bad node id -1")
    (fun () -> Net.crash net (-1))

let envelope_metadata () =
  let e, net = make ~latency:(Netsim.Latency.Fixed 1) () in
  Engine.schedule e ~delay:7 (fun () -> Net.send net ~src:2 ~dst:0 "meta");
  ignore (Engine.run e : Engine.outcome);
  match Net.inbox net 0 with
  | [ env ] ->
      check Alcotest.int "src" 2 env.Net.src;
      check Alcotest.int "dst" 0 env.Net.dst;
      check Alcotest.int "sent_at" 7 env.Net.sent_at
  | other -> Alcotest.failf "expected 1 envelope, got %d" (List.length other)

let suite =
  [
    Alcotest.test_case "basic delivery" `Quick basic_delivery;
    Alcotest.test_case "broadcast includes self" `Quick broadcast_includes_self;
    Alcotest.test_case "latency bounds" `Quick latency_bounds;
    Alcotest.test_case "crash stops delivery" `Quick crash_stops_delivery;
    Alcotest.test_case "crashed node cannot send" `Quick crashed_node_cannot_send;
    Alcotest.test_case "restart resumes delivery" `Quick restart_resumes_delivery;
    Alcotest.test_case "restart keeps in-flight messages" `Quick
      restart_keeps_in_flight_messages;
    Alcotest.test_case "restart loses down-time arrivals" `Quick
      restart_loses_messages_arriving_while_down;
    Alcotest.test_case "restart resumes sending and handler" `Quick
      restart_resumes_sending_and_handler;
    Alcotest.test_case "restart of live node is noop" `Quick
      restart_of_live_node_is_noop;
    Alcotest.test_case "partition drops cross-cut" `Quick partition_drops_cross_cut;
    Alcotest.test_case "isolated node" `Quick isolated_node_in_partition;
    Alcotest.test_case "policy drop and duplicate" `Quick policy_drop_and_duplicate;
    Alcotest.test_case "policy delay extra" `Quick policy_delay_extra;
    Alcotest.test_case "distinct senders under duplication" `Quick
      distinct_senders_under_duplication;
    Alcotest.test_case "push handler" `Quick push_handler_runs_at_delivery;
    Alcotest.test_case "bad ids rejected" `Quick bad_ids_rejected;
    Alcotest.test_case "envelope metadata" `Quick envelope_metadata;
  ]
