(* Tests for the schedule explorer: enumeration combinatorics, exact
   schedule realization, and the exhaustive AC sweep. *)

let check = Alcotest.check

let count_small_cases () =
  check Alcotest.int "C(2,1)" 2 (Sharedmem.Explore.count_interleavings ~counts:[| 1; 1 |]);
  check Alcotest.int "C(4,2)" 6 (Sharedmem.Explore.count_interleavings ~counts:[| 2; 2 |]);
  check Alcotest.int "multinomial 3!/(1!1!1!)" 6
    (Sharedmem.Explore.count_interleavings ~counts:[| 1; 1; 1 |]);
  check Alcotest.int "C(12,6)" 924
    (Sharedmem.Explore.count_interleavings ~counts:[| 6; 6 |]);
  check Alcotest.int "single process" 1
    (Sharedmem.Explore.count_interleavings ~counts:[| 5 |])

let enumeration_matches_count () =
  let counts = [| 3; 2 |] in
  let all = Sharedmem.Explore.interleavings ~counts ~limit:1000 in
  check Alcotest.int "C(5,2) = 10" 10 (List.length all);
  check Alcotest.int "count agrees" 10
    (Sharedmem.Explore.count_interleavings ~counts);
  (* no duplicates, all have the right multiset *)
  let sorted = List.sort_uniq compare all in
  check Alcotest.int "all distinct" 10 (List.length sorted);
  List.iter
    (fun s ->
      check Alcotest.int "three 0s" 3 (List.length (List.filter (fun p -> p = 0) s));
      check Alcotest.int "two 1s" 2 (List.length (List.filter (fun p -> p = 1) s)))
    all

let limit_truncates () =
  let all = Sharedmem.Explore.interleavings ~counts:[| 4; 4 |] ~limit:10 in
  check Alcotest.int "truncated" 10 (List.length all)

let random_schedule_valid () =
  let rng = Dsim.Rng.create 3L in
  for _ = 1 to 50 do
    let s = Sharedmem.Explore.random_schedule ~counts:[| 4; 3; 2 |] ~rng in
    check Alcotest.int "length" 9 (List.length s);
    check Alcotest.int "four 0s" 4 (List.length (List.filter (fun p -> p = 0) s))
  done

let schedule_realized_exactly () =
  (* Two processes, two ops each; record the order in which ops execute
     and compare with the requested schedule. *)
  let schedules = [ [ 0; 0; 1; 1 ]; [ 1; 0; 1; 0 ]; [ 0; 1; 1; 0 ] ] in
  List.iter
    (fun schedule ->
      let log = ref [] in
      let reg = Sharedmem.World.Reg.make 0 in
      let body (proc : Sharedmem.World.proc) =
        for _ = 1 to 2 do
          ignore (Sharedmem.World.Reg.read proc reg : int);
          log := proc.Sharedmem.World.me :: !log
        done
      in
      let outcome = Sharedmem.Explore.run_schedule ~n:2 ~schedule ~body in
      check Alcotest.bool "quiescent" true (outcome = Dsim.Engine.Quiescent);
      check (Alcotest.list Alcotest.int)
        (String.concat "" (List.map string_of_int schedule))
        schedule (List.rev !log))
    schedules

let over_budget_process_fails () =
  let reg = Sharedmem.World.Reg.make 0 in
  let body (proc : Sharedmem.World.proc) =
    (* Schedule allots one op but the process takes two. *)
    ignore (Sharedmem.World.Reg.read proc reg : int);
    ignore (Sharedmem.World.Reg.read proc reg : int)
  in
  (* The Invalid_argument fires inside the fiber (fiber failures don't
     unwind the engine), but run_schedule re-raises it after the run
     drains — the caller must see the budget violation. *)
  check Alcotest.bool "over-budget raises" true
    (match Sharedmem.Explore.run_schedule ~n:1 ~schedule:[ 0 ] ~body with
    | _ -> false
    | exception Invalid_argument _ -> true)

let under_budget_slots_unused () =
  (* Schedule allots three ops per process; each performs only two.  The
     run must quiesce, and the realized order must be the schedule
     restricted to the performed operations (slots are absolute times,
     so p1's ops don't shift into p0's unused slots). *)
  let log = ref [] in
  let reg = Sharedmem.World.Reg.make 0 in
  let body (proc : Sharedmem.World.proc) =
    for _ = 1 to 2 do
      ignore (Sharedmem.World.Reg.read proc reg : int);
      log := proc.Sharedmem.World.me :: !log
    done
  in
  let schedule = [ 0; 1; 0; 1; 0; 1 ] in
  let outcome = Sharedmem.Explore.run_schedule ~n:2 ~schedule ~body in
  check Alcotest.bool "quiescent" true (outcome = Dsim.Engine.Quiescent);
  check (Alcotest.list Alcotest.int) "prefix of the schedule per process"
    [ 0; 1; 0; 1 ] (List.rev !log)

let count_agrees_with_enumeration () =
  (* count_interleavings must equal the length of the full enumeration
     for a spread of shapes, including empty and zero-count entries. *)
  List.iter
    (fun counts ->
      let counted = Sharedmem.Explore.count_interleavings ~counts in
      let listed =
        List.length (Sharedmem.Explore.interleavings ~counts ~limit:max_int)
      in
      check Alcotest.int
        (Printf.sprintf "counts [%s]"
           (String.concat ";" (Array.to_list (Array.map string_of_int counts))))
        counted listed)
    [
      [||];
      [| 0 |];
      [| 3 |];
      [| 0; 4 |];
      [| 1; 1; 1; 1 |];
      [| 2; 3 |];
      [| 2; 2; 2 |];
      [| 4; 4 |];
      [| 1; 2; 3 |];
    ]

let exhaustive_ac_n2_mixed () =
  let r = Sharedmem.Explore.check_ac_exhaustive ~inputs:[| true; false |] () in
  check Alcotest.int "space" 924 r.Sharedmem.Explore.space_size;
  check Alcotest.bool "exhaustive" true r.Sharedmem.Explore.exhaustive;
  check (Alcotest.list Alcotest.string) "no violations" []
    r.Sharedmem.Explore.violations

let exhaustive_ac_n2_unanimous () =
  let r = Sharedmem.Explore.check_ac_exhaustive ~inputs:[| true; true |] () in
  check Alcotest.bool "exhaustive" true r.Sharedmem.Explore.exhaustive;
  check (Alcotest.list Alcotest.string) "no violations" []
    r.Sharedmem.Explore.violations

let sampled_vac_n2 () =
  let r =
    Sharedmem.Explore.check_vac_sampled ~inputs:[| true; false |] ~samples:500
      ~seed:11L
  in
  check Alcotest.int "ran the sample" 500 r.Sharedmem.Explore.schedules_run;
  check Alcotest.bool "space much larger" true (r.Sharedmem.Explore.space_size > 1_000_000);
  check (Alcotest.list Alcotest.string) "no violations" []
    r.Sharedmem.Explore.violations

let suite =
  [
    Alcotest.test_case "interleaving counts" `Quick count_small_cases;
    Alcotest.test_case "enumeration matches count" `Quick enumeration_matches_count;
    Alcotest.test_case "limit truncates" `Quick limit_truncates;
    Alcotest.test_case "random schedule valid" `Quick random_schedule_valid;
    Alcotest.test_case "schedule realized exactly" `Quick schedule_realized_exactly;
    Alcotest.test_case "over-budget process fails" `Quick over_budget_process_fails;
    Alcotest.test_case "under-budget slots unused" `Quick under_budget_slots_unused;
    Alcotest.test_case "count agrees with enumeration" `Quick
      count_agrees_with_enumeration;
    Alcotest.test_case "exhaustive AC n=2 mixed" `Quick exhaustive_ac_n2_mixed;
    Alcotest.test_case "exhaustive AC n=2 unanimous" `Quick exhaustive_ac_n2_unanimous;
    Alcotest.test_case "sampled VAC n=2" `Quick sampled_vac_n2;
  ]
