(* Tests for the nemesis fault-injection subsystem: plan well-formedness
   and serialization, the generator's invariants, the interpreter against
   a bare network, safety-audited campaigns over the RSM, the
   quiet-horizon liveness property, and counterexample shrinking. *)

module Plan = Nemesis.Plan
module Gen = Nemesis.Gen
module Interp = Nemesis.Interp
module Campaign = Nemesis.Campaign
module Shard_campaign = Nemesis.Shard_campaign
module Shrink = Nemesis.Shrink

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- plan: validation --------------------------------------------------- *)

let sample_plan : Plan.t =
  [
    { Plan.at = 10; action = Plan.Crash 1 };
    { Plan.at = 25; action = Plan.Partition [ [ 0; 2 ]; [ 3 ] ] };
    {
      Plan.at = 30;
      action = Plan.Drop_matching ({ Plan.srcs = Some [ 0 ]; dsts = None }, 40);
    };
    { Plan.at = 42; action = Plan.Duplicate_matching (Plan.any, 2, 15) };
    {
      Plan.at = 50;
      action = Plan.Delay_spike ({ Plan.srcs = None; dsts = Some [ 2; 3 ] }, 25, 30);
    };
    { Plan.at = 60; action = Plan.Heal };
    { Plan.at = 75; action = Plan.Restart 1 };
  ]

let storage_plan : Plan.t =
  [
    { Plan.at = 5; action = Plan.Torn_write (Some [ 0; 2 ], 30) };
    { Plan.at = 12; action = Plan.Sync_loss (None, 25) };
    { Plan.at = 20; action = Plan.Io_error (Some [ 1 ], 40) };
    { Plan.at = 33; action = Plan.Disk_stall (None, 50, 60) };
  ]

let validate_accepts_well_formed () =
  check (Alcotest.list Alcotest.string) "no problems" []
    (Plan.validate ~n:4 sample_plan);
  check (Alcotest.list Alcotest.string) "storage plan ok" []
    (Plan.validate ~n:4 storage_plan)

let validate_rejects_ill_formed () =
  let bad (plan : Plan.t) what =
    check Alcotest.bool what true (Plan.validate ~n:4 plan <> [])
  in
  bad [ { Plan.at = -1; action = Plan.Heal } ] "negative time";
  bad
    [
      { Plan.at = 9; action = Plan.Heal }; { Plan.at = 3; action = Plan.Heal };
    ]
    "out of order";
  bad [ { Plan.at = 0; action = Plan.Crash 7 } ] "pid out of range";
  bad
    [
      { Plan.at = 0; action = Plan.Crash 1 };
      { Plan.at = 5; action = Plan.Crash 1 };
    ]
    "double crash";
  bad [ { Plan.at = 0; action = Plan.Restart 2 } ] "restart of live node";
  bad
    [ { Plan.at = 0; action = Plan.Partition [ [ 0; 1 ]; [ 1; 2 ] ] } ]
    "overlapping partition groups";
  bad
    [ { Plan.at = 0; action = Plan.Drop_matching (Plan.any, 0) } ]
    "zero-length window";
  bad
    [ { Plan.at = 0; action = Plan.Duplicate_matching (Plan.any, 0, 10) } ]
    "zero copies";
  bad
    [ { Plan.at = 0; action = Plan.Torn_write (Some [ 9 ], 10) } ]
    "disk pid out of range";
  bad
    [ { Plan.at = 0; action = Plan.Sync_loss (Some [], 10) } ]
    "empty disk pid set";
  bad
    [ { Plan.at = 0; action = Plan.Io_error (None, 0) } ]
    "zero-length storage window";
  bad
    [ { Plan.at = 0; action = Plan.Disk_stall (None, 0, 10) } ]
    "zero stall extra"

(* --- plan: serialization ------------------------------------------------ *)

let roundtrip_preserves_plan () =
  let text = Plan.to_string sample_plan in
  check Alcotest.bool "text is non-trivial" true (String.length text > 40);
  let back = Plan.of_string text in
  check Alcotest.bool "roundtrip identical" true (back = sample_plan);
  check Alcotest.bool "storage actions roundtrip" true
    (Plan.of_string (Plan.to_string storage_plan) = storage_plan)

let of_string_tolerates_comments () =
  let plan =
    Plan.of_string "# a comment\n\n@5 crash 0\n  @9 heal  \n# done\n"
  in
  check Alcotest.bool "parsed both steps" true
    (plan
    = [
        { Plan.at = 5; action = Plan.Crash 0 };
        { Plan.at = 9; action = Plan.Heal };
      ])

let of_string_rejects_garbage () =
  let rejects text =
    match Plan.of_string text with
    | exception Plan.Parse_error _ -> ()
    | _ -> Alcotest.failf "parsed garbage %S" text
  in
  rejects "crash 0";
  rejects "@x crash 0";
  rejects "@5 explode 3";
  rejects "@5 drop src=0 for 10";
  rejects "@5 dup src=* dst=* for 10"

(* --- generator ---------------------------------------------------------- *)

let prop_generated_plans_well_formed =
  QCheck.Test.make ~name:"generated plans are well-formed" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 9))
    (fun (seed, n) ->
      let plan = Gen.generate (Gen.default ~n) ~seed in
      Plan.validate ~n plan = [])

let prop_generated_plans_roundtrip =
  QCheck.Test.make ~name:"generated plans roundtrip through text" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 9))
    (fun (seed, n) ->
      let plan = Gen.generate (Gen.default ~n) ~seed in
      Plan.of_string (Plan.to_string plan) = plan)

let prop_benign_plans_go_quiet =
  QCheck.Test.make ~name:"benign plans end all faults before the horizon"
    ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 7))
    (fun (seed, n) ->
      let p = { (Gen.default ~n) with Gen.benign = true } in
      match Plan.quiet_after (Gen.generate p ~seed) with
      | Some h -> h < p.Gen.horizon
      | None -> false)

let generation_is_deterministic () =
  let p = Gen.default ~n:5 in
  check Alcotest.bool "same seed, same plan" true
    (Gen.generate p ~seed:42 = Gen.generate p ~seed:42);
  (* sanity: some nearby seed differs, or the generator is a constant *)
  check Alcotest.bool "different seeds eventually differ" true
    (List.exists
       (fun s -> Gen.generate p ~seed:s <> Gen.generate p ~seed:42)
       [ 1; 2; 3; 4; 5 ])

(* --- interpreter on a bare network -------------------------------------- *)

let interp_drives_bare_net () =
  let plan : Plan.t =
    [
      { Plan.at = 10; action = Plan.Crash 1 };
      { Plan.at = 20; action = Plan.Partition [ [ 0; 2 ]; [ 3 ] ] };
      { Plan.at = 40; action = Plan.Heal };
      { Plan.at = 50; action = Plan.Restart 1 };
    ]
  in
  let eng = Dsim.Engine.create ~seed:3L () in
  let net = Netsim.Async_net.create eng ~n:4 ~latency:(Netsim.Latency.Fixed 1) () in
  Interp.schedule ~engine:eng (Interp.handle_of_net net) plan;
  (* probes at characteristic times *)
  let probe at f = Dsim.Engine.schedule eng ~delay:at f in
  let crashed_mid = ref false and cut_mid = ref false in
  probe 15 (fun () -> crashed_mid := Netsim.Async_net.is_crashed net 1);
  probe 25 (fun () ->
      Netsim.Async_net.send net ~src:0 ~dst:3 "cross-cut";
      cut_mid := true);
  probe 45 (fun () -> Netsim.Async_net.send net ~src:0 ~dst:3 "healed");
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  check Alcotest.bool "crash step fired" true !crashed_mid;
  check Alcotest.bool "restart step fired" false (Netsim.Async_net.is_crashed net 1);
  check Alcotest.bool "probe ran" true !cut_mid;
  let got =
    List.map (fun e -> e.Netsim.Async_net.payload) (Netsim.Async_net.inbox net 3)
  in
  check (Alcotest.list Alcotest.string) "partition dropped, heal restored"
    [ "healed" ] got;
  check Alcotest.bool "nemesis steps traced" true
    (Dsim.Trace.count (Dsim.Engine.trace eng) "nemesis" = 4)

let policy_windows_apply_by_send_time () =
  let plan : Plan.t =
    [
      {
        Plan.at = 100;
        action = Plan.Drop_matching ({ Plan.srcs = Some [ 0 ]; dsts = None }, 50);
      };
      { Plan.at = 100; action = Plan.Duplicate_matching (Plan.any, 3, 50) };
      { Plan.at = 200; action = Plan.Delay_spike (Plan.any, 77, 10) };
    ]
  in
  let policy = Interp.policy plan in
  let env ~src ~dst ~at : string Netsim.Async_net.envelope =
    { env_id = 0; src; dst; sent_at = at; payload = "m" }
  in
  check Alcotest.bool "before any window: deliver" true
    (policy (env ~src:0 ~dst:1 ~at:99) = Netsim.Async_net.Deliver);
  check Alcotest.bool "drop window, matching src" true
    (policy (env ~src:0 ~dst:1 ~at:100) = Netsim.Async_net.Drop);
  check Alcotest.bool "same window, other src falls to dup rule" true
    (policy (env ~src:2 ~dst:1 ~at:120) = Netsim.Async_net.Duplicate 3);
  check Alcotest.bool "window end is exclusive" true
    (policy (env ~src:0 ~dst:1 ~at:150) = Netsim.Async_net.Deliver);
  check Alcotest.bool "later delay window" true
    (policy (env ~src:0 ~dst:1 ~at:205) = Netsim.Async_net.Delay_extra 77)

(* --- campaign over the RSM ---------------------------------------------- *)

let campaign_smoke () =
  let cfg =
    { (Campaign.default_config ~n:4 ()) with Campaign.plans = 12; first_seed = 7 }
  in
  let r = Campaign.run cfg in
  check Alcotest.int "all runs executed" 12 r.Campaign.runs;
  check Alcotest.int "no safety failures" 0 (List.length r.Campaign.safety_failures);
  check Alcotest.int "no incomplete runs" 0 (List.length r.Campaign.incomplete);
  check Alcotest.int "coverage sums to faults injected" r.Campaign.faults_injected
    (List.fold_left (fun a (_, c) -> a + c) 0 r.Campaign.coverage);
  check Alcotest.bool "some faults were actually injected" true
    (r.Campaign.faults_injected > 0)

let campaign_replay_is_deterministic () =
  let cfg = Campaign.default_config ~n:4 () in
  let plan = Campaign.plan_for cfg ~seed:11 in
  let r1 = Campaign.run_plan cfg ~backend:Rsm.Backend.ben_or ~seed:11 plan in
  let r2 = Campaign.run_plan cfg ~backend:Rsm.Backend.ben_or ~seed:11 plan in
  check Alcotest.int "same acked" r1.Rsm.Runner.acked r2.Rsm.Runner.acked;
  check Alcotest.int "same virtual time" r1.Rsm.Runner.virtual_time
    r2.Rsm.Runner.virtual_time;
  check Alcotest.int "same slots" r1.Rsm.Runner.slots r2.Rsm.Runner.slots;
  check Alcotest.int "same messages" r1.Rsm.Runner.messages_sent
    r2.Rsm.Runner.messages_sent

(* Storage windows compile to a time-keyed Store.Policy. *)
let store_policy_compiles_windows () =
  let p = Interp.store_policy storage_plan in
  check Alcotest.bool "torn applies to pid 0 inside window" true
    (Store.Policy.torn_write p ~pid:0 ~now:10);
  check Alcotest.bool "torn skips pid 1" false
    (Store.Policy.torn_write p ~pid:1 ~now:10);
  check Alcotest.bool "torn window end exclusive" false
    (Store.Policy.torn_write p ~pid:0 ~now:35);
  check Alcotest.bool "sync loss hits everyone" true
    (Store.Policy.sync_lost p ~pid:3 ~now:12);
  check Alcotest.bool "io error windowed to pid 1" true
    (Store.Policy.io_erroring p ~pid:1 ~now:30);
  check Alcotest.int "stall sums matching extras" 50
    (Store.Policy.stall_of p ~pid:0 ~now:40);
  check Alcotest.int "no stall outside window" 0
    (Store.Policy.stall_of p ~pid:0 ~now:100);
  check Alcotest.bool "network-only plan compiles to none" true
    (Store.Policy.is_none (Interp.store_policy sample_plan))

(* Storage-fault campaign: minority crashes + disk faults across all
   three backends must never cost durability — every acked command is
   recoverable (the PR's acceptance property, scaled down for CI; the
   oocon binary runs the 100-plan version). *)
let storage_campaign_durability () =
  let cfg =
    {
      (Campaign.default_config ~n:4 ()) with
      Campaign.backends = Rsm.Backend.all;
      plans = 7;
      first_seed = 3;
      storage = true;
    }
  in
  let r = Campaign.run cfg in
  check Alcotest.int "all runs executed"
    (7 * List.length Rsm.Backend.all)
    r.Campaign.runs;
  check Alcotest.int "no durability failures" 0
    (List.length r.Campaign.durability_failures);
  check Alcotest.int "no safety failures" 0 (List.length r.Campaign.safety_failures);
  let storage_faults =
    List.fold_left
      (fun a k -> a + List.assoc k r.Campaign.coverage)
      0
      [ "torn"; "sync-loss"; "io-err"; "stall" ]
  in
  check Alcotest.bool "storage faults were actually injected" true
    (storage_faults > 0)

(* --- liveness: quiet-horizon plans drain -------------------------------- *)

(* Under any generated plan whose faults all end (heal + restarts) before
   a quiet horizon, the Ben-Or-backed RSM still completes every client
   command: all acked, applied at every live replica, no safety
   violations.  This is the campaign analogue of the checker's
   completeness lemma. *)
let prop_liveness_under_benign_plans =
  QCheck.Test.make ~name:"benign plans never cost liveness (ben-or RSM)"
    ~count:20
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let cfg = Campaign.default_config ~n:4 () in
      let cfg =
        {
          cfg with
          Campaign.profile = { cfg.Campaign.profile with Gen.benign = true };
        }
      in
      let plan = Campaign.plan_for cfg ~seed in
      QCheck.assume (Plan.quiet_after plan <> None);
      let r = Campaign.run_plan cfg ~backend:Rsm.Backend.ben_or ~seed plan in
      Campaign.safety_ok r && Campaign.complete r)

(* --- shrinking ---------------------------------------------------------- *)

(* A deliberately under-provisioned campaign: every replica may crash, so
   some seeded plan kills the whole cluster and the workload cannot
   drain.  The shrinker must reduce that plan to a tiny core (the fatal
   crashes) that still reproduces deterministically. *)
let shrinker_minimizes_failing_plan () =
  let n = 3 in
  let cfg =
    {
      (Campaign.default_config ~n ()) with
      Campaign.profile =
        { (Gen.default ~n) with Gen.max_down = n; max_actions = 12 };
      max_events = 120_000;
      ack_timeout = 200;
    }
  in
  let backend = Rsm.Backend.ben_or in
  let failing r = not (Campaign.complete r) in
  (* scan seeds for a failing plan, as the campaign runner would *)
  let rec find seed =
    if seed > 400 then Alcotest.fail "no failing plan in 400 seeds"
    else
      let plan = Campaign.plan_for cfg ~seed in
      if failing (Campaign.run_plan cfg ~backend ~seed plan) then (seed, plan)
      else find (seed + 1)
  in
  let seed, plan = find 1 in
  let oracle =
    { Shrink.run = (fun p -> Campaign.run_plan cfg ~backend ~seed p); failing }
  in
  let s = Shrink.shrink oracle plan in
  check Alcotest.bool
    (Printf.sprintf "shrunk to <= 3 actions (got %d from %d)"
       (Plan.length s.Shrink.plan) s.Shrink.reduced_from)
    true
    (Plan.length s.Shrink.plan <= 3);
  check Alcotest.bool "shrunk plan is still well-formed-ish" true
    (Plan.length s.Shrink.plan > 0);
  (* the minimized plan still fails, deterministically: two replays agree *)
  let r1 = Campaign.run_plan cfg ~backend ~seed s.Shrink.plan in
  let r2 = Campaign.run_plan cfg ~backend ~seed s.Shrink.plan in
  check Alcotest.bool "still failing" true (failing r1);
  check Alcotest.int "deterministic replay: acked" r1.Rsm.Runner.acked
    r2.Rsm.Runner.acked;
  check Alcotest.int "deterministic replay: virtual time"
    r1.Rsm.Runner.virtual_time r2.Rsm.Runner.virtual_time;
  (* 1-minimality: removing any single remaining action repairs the run *)
  List.iteri
    (fun i _ ->
      let weaker = List.filteri (fun j _ -> j <> i) s.Shrink.plan in
      check Alcotest.bool
        (Printf.sprintf "dropping action %d repairs the run" i)
        false
        (failing (Campaign.run_plan cfg ~backend ~seed weaker)))
    s.Shrink.plan

(* Shrinking a storage-fault counterexample: a torn-write window across
   every disk plus a full-cluster crash–restart makes acked commands
   unrecoverable (torn writes are silent at fsync time, so the honest
   ack gate is fooled) — a real durability violation, not a checker bug.
   The shrinker must keep the plan failing while discarding what the
   failure does not need. *)
let shrinker_minimizes_torn_write_plan () =
  let n = 3 in
  let store =
    { Rsm.Runner.default_store_config with Rsm.Runner.snapshot_every = 0 }
  in
  let run plan =
    fst
      (Workload.Rsm_load.run_one ~n ~clients:2 ~commands:3 ~batch:4 ~seed:5
         ~trace_capacity:2_000 ~ack_timeout:300 ~max_events:300_000
         ~inject:(Interp.install_rsm plan)
         ~store ~backend:Rsm.Backend.ben_or ())
  in
  let failing (r : _ Rsm.Runner.report) = r.Rsm.Runner.durability <> [] in
  let plan : Plan.t =
    [
      { Plan.at = 0; action = Plan.Torn_write (None, 300) };
      { Plan.at = 10; action = Plan.Sync_loss (Some [ 1 ], 20) };
      { Plan.at = 40; action = Plan.Disk_stall (None, 15, 30) };
      { Plan.at = 150; action = Plan.Crash 0 };
      { Plan.at = 150; action = Plan.Crash 1 };
      { Plan.at = 150; action = Plan.Crash 2 };
      { Plan.at = 400; action = Plan.Restart 0 };
      { Plan.at = 400; action = Plan.Restart 1 };
      { Plan.at = 400; action = Plan.Restart 2 };
    ]
  in
  check (Alcotest.list Alcotest.string) "plan well-formed" []
    (Plan.validate ~n plan);
  check Alcotest.bool "the torn-write plan fails durability" true
    (failing (run plan));
  let oracle = { Shrink.run; failing } in
  let s = Shrink.shrink oracle plan in
  check Alcotest.bool
    (Printf.sprintf "shrunk (got %d from %d)" (Plan.length s.Shrink.plan)
       s.Shrink.reduced_from)
    true
    (Plan.length s.Shrink.plan < Plan.length plan);
  check Alcotest.bool "minimized plan still fails" true (failing (run s.Shrink.plan));
  check Alcotest.bool "the torn window is load-bearing" true
    (List.exists
       (fun { Plan.action; _ } ->
         match action with Plan.Torn_write _ -> true | _ -> false)
       s.Shrink.plan)

let shrink_rejects_passing_plan () =
  let oracle = { Shrink.run = (fun _ -> ()); failing = (fun () -> false) } in
  match Shrink.shrink oracle sample_plan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shrink must refuse a plan that does not fail"

(* --- the sharded campaign ------------------------------------------ *)

let small_shard_cfg ?(plans = 6) ?(storage = false) () =
  {
    (Shard_campaign.default_config ~shards:2 ()) with
    Shard_campaign.plans;
    first_seed = 5;
    clients = 8;
    ops_per_client = 2;
    storage;
  }

let shard_campaign_smoke () =
  let r = Shard_campaign.run (small_shard_cfg ()) in
  check Alcotest.int "all runs executed" 6 r.Shard_campaign.runs;
  check Alcotest.int "no safety failures" 0
    (List.length r.Shard_campaign.safety_failures);
  check Alcotest.int "no atomicity failures" 0
    (List.length r.Shard_campaign.atomicity_failures);
  check Alcotest.int "no incomplete runs" 0
    (List.length r.Shard_campaign.incomplete);
  check Alcotest.int "coverage sums to faults injected"
    r.Shard_campaign.faults_injected
    (List.fold_left (fun a (_, c) -> a + c) 0 r.Shard_campaign.coverage);
  check Alcotest.bool "some faults were actually injected" true
    (r.Shard_campaign.faults_injected > 0)

let shard_campaign_storage_durability () =
  let r = Shard_campaign.run (small_shard_cfg ~plans:4 ~storage:true ()) in
  check Alcotest.int "all runs executed" 4 r.Shard_campaign.runs;
  check Alcotest.int "no durability failures" 0
    (List.length r.Shard_campaign.durability_failures);
  check Alcotest.int "no atomicity failures" 0
    (List.length r.Shard_campaign.atomicity_failures);
  let storage_faults =
    List.fold_left
      (fun a k -> a + List.assoc k r.Shard_campaign.coverage)
      0
      [ "torn"; "sync-loss"; "io-err"; "stall" ]
  in
  check Alcotest.bool "storage faults were actually injected" true
    (storage_faults > 0)

let shard_campaign_jobs_independent () =
  let stable r =
    let buf = Buffer.create 512 in
    let ppf = Format.formatter_of_buffer buf in
    Shard_campaign.pp_report_stable ppf r;
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let cfg = small_shard_cfg ~plans:4 () in
  check Alcotest.string "stable report identical at jobs=1 and jobs=2"
    (stable (Shard_campaign.run ~jobs:1 cfg))
    (stable (Shard_campaign.run ~jobs:2 cfg))

let suite =
  [
    Alcotest.test_case "validate accepts well-formed" `Quick
      validate_accepts_well_formed;
    Alcotest.test_case "validate rejects ill-formed" `Quick
      validate_rejects_ill_formed;
    Alcotest.test_case "to_string/of_string roundtrip" `Quick
      roundtrip_preserves_plan;
    Alcotest.test_case "of_string tolerates comments" `Quick
      of_string_tolerates_comments;
    Alcotest.test_case "of_string rejects garbage" `Quick of_string_rejects_garbage;
    qtest prop_generated_plans_well_formed;
    qtest prop_generated_plans_roundtrip;
    qtest prop_benign_plans_go_quiet;
    Alcotest.test_case "generation is deterministic" `Quick
      generation_is_deterministic;
    Alcotest.test_case "interp drives a bare net" `Quick interp_drives_bare_net;
    Alcotest.test_case "policy windows by send time" `Quick
      policy_windows_apply_by_send_time;
    Alcotest.test_case "campaign smoke (safety audit)" `Quick campaign_smoke;
    Alcotest.test_case "campaign replay is deterministic" `Quick
      campaign_replay_is_deterministic;
    qtest prop_liveness_under_benign_plans;
    Alcotest.test_case "shrinker minimizes a failing plan" `Quick
      shrinker_minimizes_failing_plan;
    Alcotest.test_case "shrinker minimizes a torn-write plan" `Quick
      shrinker_minimizes_torn_write_plan;
    Alcotest.test_case "shrink rejects a passing plan" `Quick
      shrink_rejects_passing_plan;
    Alcotest.test_case "store policy compiles windows" `Quick
      store_policy_compiles_windows;
    Alcotest.test_case "storage campaign durability" `Quick
      storage_campaign_durability;
    Alcotest.test_case "shard campaign smoke" `Quick shard_campaign_smoke;
    Alcotest.test_case "shard campaign storage durability" `Quick
      shard_campaign_storage_durability;
    Alcotest.test_case "shard campaign independent of jobs" `Quick
      shard_campaign_jobs_independent;
  ]
