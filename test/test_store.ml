(* Tests for the simulated stable-storage subsystem: WAL semantics
   (append / fsync / read_back), the four storage fault classes, snapshot
   + compaction, and the durable RSM path built on top — honest
   crash-recovery, full-cluster outages, and the durability audit
   catching an ack-before-fsync store. *)

module Policy = Store.Policy
module Disk = Store.Disk
module Runner = Rsm.Runner
module App = Obj.Kv
module Checker = Rsm.Checker

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let disk ?policy ~seed () =
  let eng = Dsim.Engine.create ~seed () in
  let d = Disk.create ~engine:eng ~pid:0 ?policy () in
  (eng, d)

let append_ok d s =
  match Disk.append d s with
  | Ok seq -> seq
  | Error `Io_error -> Alcotest.fail (Printf.sprintf "append %S refused" s)

let fsync_ok ?(k = fun () -> ()) d =
  match Disk.fsync d ~k with
  | Ok () -> ()
  | Error `Io_error -> Alcotest.fail "fsync refused"

let datas d = List.map (fun (r : Disk.record) -> r.Disk.data) (Disk.read_back d)

(* --- WAL basics --------------------------------------------------------- *)

(* Fsynced records survive a crash; the unsynced tail does not. *)
let lose_unsynced_tail () =
  let _eng, d = disk ~seed:1L () in
  ignore (append_ok d "a" : int);
  ignore (append_ok d "b" : int);
  fsync_ok d;
  ignore (append_ok d "c" : int);
  check Alcotest.int "one unsynced record" 1 (Disk.unsynced_count d);
  Disk.crash d;
  check Alcotest.(list string) "durable prefix survives" [ "a"; "b" ] (datas d);
  let st = Disk.stats d in
  check Alcotest.int "the tail is counted lost" 1 st.Disk.lost_records;
  check Alcotest.int "crash bumps the epoch" 1 (Disk.epoch d)

(* fsync's continuation fires exactly when data is durable (immediately,
   with no stall window). *)
let fsync_continuation_fires () =
  let _eng, d = disk ~seed:2L () in
  ignore (append_ok d "x" : int);
  let fired = ref false in
  fsync_ok ~k:(fun () -> fired := true) d;
  check Alcotest.bool "k fired synchronously" true !fired;
  check Alcotest.(list string) "record durable" [ "x" ] (datas d)

(* --- torn writes -------------------------------------------------------- *)

(* A record appended inside a torn window reads back as corrupt:
   read_back stops just before it, records sees everything. *)
let torn_write_truncates_read_back () =
  let policy = { Policy.none with Policy.torn = [ Policy.rule ~from_:0 ~until_:10 () ] } in
  let eng, d = disk ~policy:(fun () -> policy) ~seed:3L () in
  ignore (append_ok d "early" : int);
  fsync_ok d;
  Dsim.Engine.schedule eng ~delay:50 (fun () ->
      ignore (append_ok d "late" : int);
      fsync_ok d);
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  (* "early" was torn (written at t=0, inside the window); "late" is
     fine but unreachable behind the corruption. *)
  check Alcotest.(list string) "read_back stops at the torn record" [] (datas d);
  check Alcotest.int "records still sees both" 2 (List.length (Disk.records d));
  check Alcotest.int "torn stat" 1 (Disk.stats d).Disk.torn_records

(* --- lying fsyncs ------------------------------------------------------- *)

let sync_loss_drops_batch_silently () =
  let policy =
    { Policy.none with Policy.sync_loss = [ Policy.rule ~from_:0 ~until_:10 () ] }
  in
  let _eng, d = disk ~policy:(fun () -> policy) ~seed:4L () in
  ignore (append_ok d "doomed" : int);
  let fired = ref false in
  fsync_ok ~k:(fun () -> fired := true) d;
  check Alcotest.bool "the disk lies: k fires" true !fired;
  check Alcotest.(list string) "but nothing is durable" [] (datas d);
  check Alcotest.int "sync-lost stat" 1 (Disk.stats d).Disk.sync_lost_records

(* --- io errors ---------------------------------------------------------- *)

let io_error_window_fails_then_recovers () =
  let policy =
    { Policy.none with Policy.io_error = [ Policy.rule ~from_:0 ~until_:10 () ] }
  in
  let eng, d = disk ~policy:(fun () -> policy) ~seed:5L () in
  check Alcotest.bool "window open" true (Disk.io_erroring d);
  (match Disk.append d "no" with
  | Error `Io_error -> ()
  | Ok _ -> Alcotest.fail "append must fail inside the io-error window");
  (match Disk.fsync d ~k:(fun () -> ()) with
  | Error `Io_error -> ()
  | Ok () -> Alcotest.fail "fsync must fail inside the io-error window");
  Dsim.Engine.schedule eng ~delay:20 (fun () ->
      check Alcotest.bool "window closed" false (Disk.io_erroring d);
      ignore (append_ok d "yes" : int);
      fsync_ok d);
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  check Alcotest.(list string) "retry after the window lands" [ "yes" ] (datas d);
  check Alcotest.int "io errors counted" 2 (Disk.stats d).Disk.io_errors

(* --- stalls ------------------------------------------------------------- *)

(* A stalled fsync becomes durable [extra] virtual time later; a crash
   inside the stall loses the batch even though fsync was accepted. *)
let stall_defers_durability () =
  let policy =
    { Policy.none with Policy.stall = [ (Policy.rule ~from_:0 ~until_:10 (), 40) ] }
  in
  let eng, d = disk ~policy:(fun () -> policy) ~seed:6L () in
  ignore (append_ok d "slow" : int);
  let durable_at = ref (-1) in
  fsync_ok ~k:(fun () -> durable_at := Dsim.Engine.now eng) d;
  check Alcotest.(list string) "not durable yet" [] (datas d);
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  check Alcotest.int "durable exactly after the stall" 40 !durable_at;
  check Alcotest.(list string) "record landed" [ "slow" ] (datas d);
  check Alcotest.int "stalled time accounted" 40 (Disk.stats d).Disk.stalled_time

let crash_inside_stall_loses_batch () =
  let policy =
    { Policy.none with Policy.stall = [ (Policy.rule ~from_:0 ~until_:10 (), 40) ] }
  in
  let eng, d = disk ~policy:(fun () -> policy) ~seed:7L () in
  ignore (append_ok d "in-flight" : int);
  let fired = ref false in
  fsync_ok ~k:(fun () -> fired := true) d;
  Dsim.Engine.schedule eng ~delay:10 (fun () -> Disk.crash d);
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  check Alcotest.bool "k never fires" false !fired;
  check Alcotest.(list string) "batch lost" [] (datas d)

(* --- snapshots + compaction --------------------------------------------- *)

let snapshot_then_compact () =
  let _eng, d = disk ~seed:8L () in
  let seqs = List.map (fun s -> append_ok d s) [ "a"; "b"; "c"; "d" ] in
  fsync_ok d;
  let installed = ref false in
  (match Disk.save_snapshot d ~upto:1 "state-after-b" ~k:(fun () -> installed := true) with
  | Ok () -> ()
  | Error `Io_error -> Alcotest.fail "snapshot refused");
  check Alcotest.bool "snapshot installed" true !installed;
  Disk.compact d ~upto_seq:(List.nth seqs 1);
  check Alcotest.(list string) "only the tail remains" [ "c"; "d" ] (datas d);
  (match Disk.latest_snapshot d with
  | Some s ->
      check Alcotest.int "snapshot covers upto" 1 s.Disk.upto;
      check Alcotest.string "payload kept" "state-after-b" s.Disk.payload
  | None -> Alcotest.fail "no snapshot installed");
  let st = Disk.stats d in
  check Alcotest.int "snapshot counted" 1 st.Disk.snapshots_taken;
  check Alcotest.int "compaction counted" 2 st.Disk.compacted_records

(* Snapshots survive crashes (atomic-rename model). *)
let snapshot_survives_crash () =
  let _eng, d = disk ~seed:9L () in
  ignore (append_ok d "a" : int);
  fsync_ok d;
  (match Disk.save_snapshot d ~upto:0 "snap" ~k:(fun () -> ()) with
  | Ok () -> ()
  | Error `Io_error -> Alcotest.fail "snapshot refused");
  Disk.crash d;
  check Alcotest.bool "snapshot still there" true (Disk.latest_snapshot d <> None)

(* --- properties --------------------------------------------------------- *)

(* Under any combination of fault windows and crash times, what read_back
   reproduces is an in-order subsequence of the accepted appends: a lying
   fsync can drop a middle batch while later fsyncs land, and a stalled
   batch can be overtaken by a later un-stalled fsync and then lost to
   the crash — gaps, but never reordering or fabrication. *)
let prop_read_back_is_prefix =
  QCheck.Test.make ~name:"read_back is an append-order subsequence under any policy"
    ~count:100
    QCheck.(
      quad (int_range 1 1_000_000) (int_range 0 3) (int_range 0 3) (int_range 0 3))
    (fun (seed, torn_n, loss_n, io_n) ->
      let rng = Dsim.Rng.create (Int64.of_int seed) in
      let windows n =
        List.init n (fun _ ->
            let from_ = Dsim.Rng.int rng 200 in
            Policy.rule ~from_ ~until_:(from_ + 1 + Dsim.Rng.int rng 60) ())
      in
      let policy =
        {
          Policy.torn = windows torn_n;
          Policy.sync_loss = windows loss_n;
          Policy.io_error = windows io_n;
          Policy.stall =
            List.map (fun r -> (r, 1 + Dsim.Rng.int rng 30)) (windows 1);
        }
      in
      let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
      let d = Disk.create ~engine:eng ~pid:0 ~policy:(fun () -> policy) () in
      let accepted = ref [] in
      for i = 0 to 19 do
        Dsim.Engine.schedule eng ~delay:(i * 13) (fun () ->
            let s = Printf.sprintf "r%d" i in
            match Disk.append d s with
            | Ok _ -> (
                accepted := s :: !accepted;
                match Disk.fsync d ~k:(fun () -> ()) with
                | Ok () | Error `Io_error -> ())
            | Error `Io_error -> ())
      done;
      let crash_at = 30 + Dsim.Rng.int rng 200 in
      Dsim.Engine.schedule eng ~delay:crash_at (fun () -> Disk.crash d);
      ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
      let got = List.map (fun (r : Disk.record) -> r.Disk.data) (Disk.read_back d) in
      let all = List.rev !accepted in
      let rec is_subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _ :: _, [] -> false
        | x :: xs', y :: ys' ->
            if String.equal x y then is_subseq xs' ys' else is_subseq xs ys'
      in
      is_subseq got all)

(* Snapshot + compaction loses nothing: the snapshot payload plus the
   records that survive compaction reconstruct the full append history. *)
let prop_snapshot_compact_replay =
  QCheck.Test.make ~name:"snapshot + compaction + tail replay = full history"
    ~count:100
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 20))
    (fun (seed, total) ->
      let rng = Dsim.Rng.create (Int64.of_int seed) in
      let _eng, d = disk ~seed:(Int64.of_int seed) () in
      let all = List.init total (fun i -> Printf.sprintf "r%d" i) in
      let seqs = List.map (fun s -> append_ok d s) all in
      fsync_ok d;
      let cut = Dsim.Rng.int rng total in
      (* snapshot covers the first [cut] records *)
      let covered = List.filteri (fun i _ -> i < cut) all in
      (match
         Disk.save_snapshot d ~upto:(cut - 1) (String.concat ";" covered)
           ~k:(fun () -> ())
       with
      | Ok () -> ()
      | Error `Io_error -> QCheck.Test.fail_report "snapshot refused");
      (match List.filteri (fun i _ -> i = cut - 1) seqs with
      | [ seq ] -> Disk.compact d ~upto_seq:seq
      | _ -> () (* cut = 0: nothing to compact *));
      let from_snap =
        match Disk.latest_snapshot d with
        | Some s when s.Disk.payload <> "" ->
            String.split_on_char ';' s.Disk.payload
        | _ -> []
      in
      List.equal String.equal all (from_snap @ datas d))

(* --- the durable RSM ---------------------------------------------------- *)

let set k v = App.Set (k, v)

let ops_of_n ~client n =
  List.init n (fun k -> set (Printf.sprintf "k%d-%d" client k) (string_of_int k))

let run_store ?(backend = Rsm.Backend.ben_or) ?(n = 4) ?(batch = 4) ?(seed = 1)
    ?(crash_schedule = []) ?(restart_schedule = [])
    ?(store = Runner.default_store_config) ops =
  Runner.run Workload.Rsm_load.kv_app
    {
      (Runner.default_config ~n ~ops) with
      backend;
      batch;
      seed = Int64.of_int seed;
      crash_schedule;
      restart_schedule;
      store = Some store;
    }

let no_violations ?(msg = "no violations") (r : _ Runner.report) =
  let show vs = Fmt.str "%a" (Fmt.list Checker.pp_violation) vs in
  check Alcotest.string (msg ^ " (order)") "" (show r.violations);
  check Alcotest.string (msg ^ " (completeness)") "" (show r.completeness);
  check Alcotest.string (msg ^ " (durability)") "" (show r.durability);
  check Alcotest.bool (msg ^ " (digests)") true r.digests_agree

(* Honest disks, no faults: everything acks, the WAL sees traffic, and
   snapshots compact it. *)
let durable_clean_run backend () =
  let ops = Array.init 3 (fun c -> ops_of_n ~client:c 4) in
  let r =
    run_store ~backend
      ~store:{ Runner.default_store_config with Runner.snapshot_every = 2 }
      ops
  in
  check Alcotest.int "all acked" 12 r.acked;
  no_violations r;
  check Alcotest.bool "WAL saw appends" true
    (Array.for_all (fun st -> st.Disk.appends > 0) r.store_stats);
  check Alcotest.bool "fsyncs happened" true
    (Array.for_all (fun st -> st.Disk.fsyncs > 0) r.store_stats);
  check Alcotest.bool "snapshots taken" true
    (Array.exists (fun st -> st.Disk.snapshots_taken > 0) r.store_stats);
  check Alcotest.bool "compaction ran" true
    (Array.exists (fun st -> st.Disk.compacted_records > 0) r.store_stats)

(* Minority crash-restart through real WAL recovery: the restarted
   replicas replay their disks (plus peer catch-up / snapshot install)
   and everything converges. *)
let durable_crash_recovery backend () =
  for seed = 1 to 3 do
    let ops = Array.init 2 (fun c -> ops_of_n ~client:c 4) in
    let r =
      run_store ~backend ~n:4 ~seed
        ~crash_schedule:[ (40, 0) ]
        ~restart_schedule:[ (190, 0) ]
        ~store:{ Runner.default_store_config with Runner.snapshot_every = 2 }
        ops
    in
    check Alcotest.int (Printf.sprintf "seed %d: all acked" seed) 8 r.acked;
    no_violations ~msg:(Printf.sprintf "seed %d" seed) r
  done

(* Full-cluster outage, honest store: acks are gated on durability, so
   whatever was acked is on disk somewhere and recovery reproduces it —
   the durability audit stays clean even with a stall window making the
   gap between delivery and durability wide. *)
let full_outage_honest () =
  let stall_policy =
    { Policy.none with Policy.stall = [ (Policy.rule ~from_:0 ~until_:400 (), 60) ] }
  in
  let ops = Array.init 2 (fun c -> ops_of_n ~client:c 3) in
  let r =
    run_store ~n:3 ~seed:2
      ~crash_schedule:[ (120, 0); (120, 1); (120, 2) ]
      ~restart_schedule:[ (300, 0); (300, 1); (300, 2) ]
      ~store:
        {
          Runner.default_store_config with
          Runner.policy = stall_policy;
          snapshot_every = 0;
        }
      ops
  in
  check Alcotest.int "all acked in the end" 6 r.acked;
  check Alcotest.string "durability audit clean" ""
    (Fmt.str "%a" (Fmt.list Checker.pp_violation) r.durability)

(* The same outage with an ack-before-fsync store: commands acked at
   delivery time are still in the stalled fsync when the whole cluster
   dies, so recovery cannot reproduce them anywhere — the durability
   audit must catch it.  This is the checker's regression test: a broken
   store MUST NOT pass. *)
let full_outage_ack_before_fsync_caught () =
  let stall_policy =
    { Policy.none with Policy.stall = [ (Policy.rule ~from_:0 ~until_:400 (), 500) ] }
  in
  let ops = Array.init 2 (fun c -> ops_of_n ~client:c 3) in
  let r =
    run_store ~n:3 ~seed:2
      ~crash_schedule:[ (120, 0); (120, 1); (120, 2) ]
      ~restart_schedule:[ (300, 0); (300, 1); (300, 2) ]
      ~store:
        {
          Runner.policy = stall_policy;
          snapshot_every = 0;
          ack_before_fsync = true;
        }
      ops
  in
  check Alcotest.bool "durability audit catches the broken store" true
    (r.durability <> []);
  List.iter
    (fun (v : Checker.violation) ->
      check Alcotest.string "violations are durability violations" "durability"
        v.Checker.property)
    r.durability

(* Per-replica WAL recovery state is inspectable through the report's
   disks. *)
let report_exposes_disks () =
  let ops = Array.init 2 (fun c -> ops_of_n ~client:c 2) in
  let r = run_store ~n:3 ops in
  check Alcotest.int "one disk per replica" 3 (Array.length r.disks);
  (* Compaction may legitimately have emptied the WAL — then the data
     lives in the snapshot chain instead. *)
  check Alcotest.bool "every disk holds records or a snapshot" true
    (Array.for_all
       (fun d -> Disk.records d <> [] || Disk.latest_snapshot d <> None)
       r.disks)

(* --- suite -------------------------------------------------------------- *)

let suite =
  List.concat
    [
      [
        Alcotest.test_case "lose unsynced tail on crash" `Quick lose_unsynced_tail;
        Alcotest.test_case "fsync continuation fires" `Quick
          fsync_continuation_fires;
        Alcotest.test_case "torn write truncates read_back" `Quick
          torn_write_truncates_read_back;
        Alcotest.test_case "sync loss drops batch silently" `Quick
          sync_loss_drops_batch_silently;
        Alcotest.test_case "io error window fails then recovers" `Quick
          io_error_window_fails_then_recovers;
        Alcotest.test_case "stall defers durability" `Quick stall_defers_durability;
        Alcotest.test_case "crash inside stall loses batch" `Quick
          crash_inside_stall_loses_batch;
        Alcotest.test_case "snapshot then compact" `Quick snapshot_then_compact;
        Alcotest.test_case "snapshot survives crash" `Quick snapshot_survives_crash;
        qtest prop_read_back_is_prefix;
        qtest prop_snapshot_compact_replay;
      ];
      List.map
        (fun b ->
          Alcotest.test_case
            (Printf.sprintf "durable clean run (%s)" (Rsm.Backend.name b))
            `Quick (durable_clean_run b))
        Rsm.Backend.all;
      List.map
        (fun b ->
          Alcotest.test_case
            (Printf.sprintf "durable crash recovery (%s)" (Rsm.Backend.name b))
            `Quick (durable_crash_recovery b))
        Rsm.Backend.all;
      [
        Alcotest.test_case "full outage, honest store" `Quick full_outage_honest;
        Alcotest.test_case "ack-before-fsync caught by audit" `Quick
          full_outage_ack_before_fsync_caught;
        Alcotest.test_case "report exposes disks" `Quick report_exposes_disks;
      ];
    ]
