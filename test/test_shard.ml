(* Tests for the sharded multi-group RSM: command codec, router,
   per-shard state machine (2PC participant rules), the cross-shard
   atomicity checker, and end-to-end runs — including the 2PC edge
   cases (coordinator crash between prepare and commit, participant
   crash after prepare, aborts under shard-local partition) and the
   deliberately broken commit-without-quorum mutant. *)

module Cmd = Shard.Cmd
module Router = Shard.Router
module Machine = Shard.Machine
module XChecker = Shard.Checker
module Runner = Shard.Runner

let check = Alcotest.check

(* --- helpers ----------------------------------------------------------- *)

(* Keys grouped by owning shard, so tests can build transactions with a
   known span. *)
let keys_of_shard router ~shard ~count =
  let rec go i acc =
    if List.length acc >= count then List.rev acc
    else
      let k = Printf.sprintf "k%d" i in
      if Router.shard_of_key router k = shard then go (i + 1) (k :: acc)
      else go (i + 1) acc
  in
  go 0 []

let run_cfg ?(shards = 3) ?(replicas = 3) ?(batch = 8) ?(seed = 1)
    ?(arrival = Runner.Closed_loop { think = 5 }) ?store ?inject
    ?(broken_2pc = false) ?(coordinator_crash = fun _ -> Runner.No_crash)
    ?(ack_timeout = 2_000) ops =
  Runner.run
    {
      (Runner.default_config ~shards ~ops) with
      replicas;
      batch;
      seed = Int64.of_int seed;
      arrival;
      store;
      inject;
      broken_2pc;
      coordinator_crash;
      ack_timeout;
    }

let show_rsm vs = Fmt.str "%a" (Fmt.list Rsm.Checker.pp_violation) vs
let show_x vs = Fmt.str "%a" (Fmt.list XChecker.pp_violation) vs

let no_violations ?(durability = true) (r : Runner.report) =
  Array.iter
    (fun (sr : Runner.shard_report) ->
      let tag p = Printf.sprintf "shard %d %s" sr.Runner.sr_shard p in
      check Alcotest.string (tag "order") "" (show_rsm sr.Runner.sr_violations);
      check Alcotest.string (tag "completeness") ""
        (show_rsm sr.Runner.sr_completeness);
      if durability then
        check Alcotest.string (tag "durability") ""
          (show_rsm sr.Runner.sr_durability);
      check Alcotest.bool (tag "digests") true sr.Runner.sr_digests_agree)
    r.Runner.shard_reports;
  check Alcotest.string "atomicity" "" (show_x r.Runner.atomicity);
  check Alcotest.string "tx completeness" "" (show_x r.Runner.tx_completeness)

let drained (r : Runner.report) =
  check Alcotest.string "drained" "quiescent"
    (match r.Runner.engine_outcome with
    | Dsim.Engine.Quiescent -> "quiescent"
    | Deadlock _ -> "deadlock"
    | Time_limit -> "time-limit"
    | Event_limit -> "event-limit")

(* A mixed workload over a fixed router: singles plus cross-shard
   transactions, with adjustable contention. *)
let mixed_ops ~router ~clients ~per_client ~tx_every ~hot_keys =
  let s0 = keys_of_shard router ~shard:0 ~count:hot_keys in
  let s1 = keys_of_shard router ~shard:1 ~count:hot_keys in
  Array.init clients (fun c ->
      List.init per_client (fun k ->
          if tx_every > 0 && k mod tx_every = 0 then
            let a = List.nth s0 ((c + k) mod hot_keys) in
            let b = List.nth s1 ((c * 3 + k) mod hot_keys) in
            Runner.Tx [ Cmd.W_add (a, 1); Cmd.W_add (b, 1) ]
          else
            Runner.Single
              (Obj.Kv.Set (Printf.sprintf "c%d-%d" c k, string_of_int k))))

(* --- cmd codec --------------------------------------------------------- *)

let codec_roundtrip () =
  let samples =
    [
      Cmd.Kv (Obj.Kv.Set ("a b", "x\ny"));
      Cmd.Kv (Obj.Kv.Get "k");
      Cmd.Kv (Obj.Kv.Cas { key = "k"; expect = Some "1 2"; update = "3" });
      Cmd.Decide { txid = 42; commit = true };
      Cmd.Outcome { txid = 7; commit = false };
      Cmd.Prepare
        {
          Cmd.txid = 1048577;
          participants = [ 0; 2 ];
          ops =
            [
              (0, [ Cmd.W_set ("key with space", "v\"quoted\""); Cmd.W_add ("x", -3) ]);
              (2, [ Cmd.W_add ("y", 10) ]);
            ];
        };
    ]
  in
  List.iter
    (fun c ->
      let s = Cmd.to_string c in
      check Alcotest.bool
        (Printf.sprintf "single line: %s" s)
        false
        (String.contains s '\n');
      check Alcotest.string s s (Cmd.to_string (Cmd.of_string s)))
    samples

let cid_tags () =
  let txid = Cmd.base ~client:5 ~seq:9 in
  check Alcotest.bool "kinds distinct" true
    (List.length
       (List.sort_uniq compare
          [
            Cmd.kv_cid ~client:5 ~seq:9;
            Cmd.prepare_cid ~txid;
            Cmd.decide_cid ~txid ~commit:true;
            Cmd.decide_cid ~txid ~commit:false;
            Cmd.outcome_cid ~txid ~commit:true;
            Cmd.outcome_cid ~txid ~commit:false;
          ])
    = 6);
  (match Cmd.kind_of_cid (Cmd.prepare_cid ~txid) with
  | Cmd.K_prepare t -> check Alcotest.int "prepare txid" txid t
  | _ -> Alcotest.fail "wrong kind");
  match Cmd.kind_of_cid (Cmd.outcome_cid ~txid ~commit:true) with
  | Cmd.K_outcome (t, true) -> check Alcotest.int "outcome txid" txid t
  | _ -> Alcotest.fail "wrong kind"

(* --- router ------------------------------------------------------------ *)

let router_slices () =
  let r = Router.create ~shards:4 in
  let wops =
    List.init 20 (fun i -> Cmd.W_add (Printf.sprintf "key%d" i, i))
  in
  let tx = Router.make_tx r ~txid:1 wops in
  check Alcotest.bool "participants sorted" true
    (List.sort compare tx.Cmd.participants = tx.Cmd.participants);
  check Alcotest.(list int) "participants = slice keys"
    (List.map fst tx.Cmd.ops) tx.Cmd.participants;
  check Alcotest.int "every op in some slice" 20
    (List.fold_left (fun a (_, l) -> a + List.length l) 0 tx.Cmd.ops);
  List.iter
    (fun (s, wl) ->
      List.iter
        (fun w ->
          check Alcotest.int "op routed to its owner" s
            (Router.shard_of_key r (Cmd.wop_key w)))
        wl)
    tx.Cmd.ops;
  check Alcotest.int "coordinator is first participant"
    (List.hd tx.Cmd.participants)
    (Router.coordinator tx)

(* --- machine: participant-side 2PC rules ------------------------------- *)

let tx2 ~txid keys =
  {
    Cmd.txid;
    participants = [ 0 ];
    ops = [ (0, List.map (fun k -> Cmd.W_add (k, 1)) keys) ];
  }

let machine_prepare_commit () =
  let m = Machine.create ~shard:0 in
  (match Machine.apply m (Cmd.Prepare (tx2 ~txid:8 [ "a"; "b" ])) with
  | Machine.O_vote v -> check Alcotest.bool "vote yes" true v
  | _ -> Alcotest.fail "expected vote");
  check Alcotest.int "locks held" 2 (Machine.locked_keys m);
  check (Alcotest.option Alcotest.string) "buffered, not applied" None
    (Machine.lookup m "a");
  (match Machine.apply m (Cmd.Decide { txid = 8; commit = true }) with
  | Machine.O_decided c -> check Alcotest.bool "committed" true c
  | _ -> Alcotest.fail "expected decision");
  check (Alcotest.option Alcotest.string) "applied" (Some "1")
    (Machine.lookup m "a");
  check Alcotest.int "locks released" 0 (Machine.locked_keys m)

let machine_conflict_votes_no () =
  let m = Machine.create ~shard:0 in
  ignore (Machine.apply m (Cmd.Prepare (tx2 ~txid:8 [ "a" ])) : Machine.output);
  (match Machine.apply m (Cmd.Prepare (tx2 ~txid:9 [ "a"; "c" ])) with
  | Machine.O_vote v -> check Alcotest.bool "conflicting prepare votes no" false v
  | _ -> Alcotest.fail "expected vote");
  (* the loser must not have taken any lock *)
  (match Machine.apply m (Cmd.Outcome { txid = 9; commit = false }) with
  | Machine.O_outcome c -> check Alcotest.bool "aborted" false c
  | _ -> Alcotest.fail "expected outcome");
  ignore (Machine.apply m (Cmd.Decide { txid = 8; commit = true }) : Machine.output);
  check (Alcotest.option Alcotest.string) "winner applied" (Some "1")
    (Machine.lookup m "a");
  check (Alcotest.option Alcotest.string) "loser never applied" None
    (Machine.lookup m "c")

let machine_fences_late_prepare () =
  let m = Machine.create ~shard:0 in
  (* decision records arriving before the prepare fence the txid *)
  ignore (Machine.apply m (Cmd.Outcome { txid = 4; commit = false }) : Machine.output);
  (match Machine.apply m (Cmd.Prepare (tx2 ~txid:4 [ "a" ])) with
  | Machine.O_vote v -> check Alcotest.bool "fenced prepare votes no" false v
  | _ -> Alcotest.fail "expected vote");
  check (Alcotest.option Alcotest.string) "nothing applied" None
    (Machine.lookup m "a");
  check Alcotest.int "no locks" 0 (Machine.locked_keys m)

let machine_first_decision_wins () =
  let m = Machine.create ~shard:0 in
  ignore (Machine.apply m (Cmd.Prepare (tx2 ~txid:8 [ "a" ])) : Machine.output);
  ignore (Machine.apply m (Cmd.Decide { txid = 8; commit = false }) : Machine.output);
  (match Machine.apply m (Cmd.Decide { txid = 8; commit = true }) with
  | Machine.O_decided c ->
      check Alcotest.bool "late conflicting decide reports canonical" false c
  | _ -> Alcotest.fail "expected decision");
  check (Alcotest.option Alcotest.string) "abort stuck" None (Machine.lookup m "a")

let machine_snapshot_roundtrip () =
  let m = Machine.create ~shard:2 in
  ignore (Machine.apply m (Cmd.Kv (Obj.Kv.Set ("k \"1\"", "v\n2"))) : Machine.output);
  ignore
    (Machine.apply m
       (Cmd.Prepare
          { Cmd.txid = 3; participants = [ 2 ]; ops = [ (2, [ Cmd.W_add ("z", 5) ]) ] })
      : Machine.output);
  ignore (Machine.apply m (Cmd.Outcome { txid = 9; commit = true }) : Machine.output);
  let s = Machine.snapshot m in
  check Alcotest.bool "single line" false (String.contains s '\n');
  let m' = Machine.restore s in
  check Alcotest.string "digest survives roundtrip" (Machine.digest m)
    (Machine.digest m');
  (* the restored machine still holds tx 3's lock *)
  match Machine.apply m' (Cmd.Prepare (tx2 ~txid:11 [ "z" ])) with
  | Machine.O_vote v -> check Alcotest.bool "restored lock conflicts" false v
  | _ -> Alcotest.fail "expected vote"

(* --- cross-shard checker ----------------------------------------------- *)

let xchecker_catches_partial_commit () =
  let c = XChecker.create () in
  XChecker.record_tx c ~txid:1 ~participants:[ 0; 1 ];
  XChecker.record_vote c ~txid:1 ~shard:0 ~vote:true;
  XChecker.record_vote c ~txid:1 ~shard:1 ~vote:false;
  XChecker.record_outcome c ~txid:1 ~shard:0 ~committed:true;
  XChecker.record_outcome c ~txid:1 ~shard:1 ~committed:false;
  let vs = XChecker.check c in
  check Alcotest.bool "commit without quorum flagged" true
    (List.exists (fun v -> v.XChecker.property = "commit-quorum") vs);
  check Alcotest.bool "outcome disagreement flagged" true
    (List.exists (fun v -> v.XChecker.property = "outcome-agreement") vs)

let xchecker_accepts_clean_commit () =
  let c = XChecker.create () in
  XChecker.record_tx c ~txid:1 ~participants:[ 0; 1 ];
  XChecker.record_vote c ~txid:1 ~shard:0 ~vote:true;
  XChecker.record_vote c ~txid:1 ~shard:1 ~vote:true;
  XChecker.record_outcome c ~txid:1 ~shard:0 ~committed:true;
  XChecker.record_outcome c ~txid:1 ~shard:1 ~committed:true;
  check Alcotest.string "clean commit passes" "" (show_x (XChecker.check c));
  check Alcotest.string "complete" "" (show_x (XChecker.check_complete c));
  check Alcotest.int "committed" 1 (XChecker.committed c)

let xchecker_completeness () =
  let c = XChecker.create () in
  XChecker.record_tx c ~txid:1 ~participants:[ 0; 1 ];
  XChecker.record_outcome c ~txid:1 ~shard:0 ~committed:false;
  check Alcotest.bool "missing outcome flagged" true
    (XChecker.check_complete c <> [])

(* --- end-to-end runs --------------------------------------------------- *)

let basic_run () =
  let router = Router.create ~shards:3 in
  let ops = mixed_ops ~router ~clients:12 ~per_client:6 ~tx_every:3 ~hot_keys:4 in
  let r = run_cfg ~shards:3 ops in
  drained r;
  no_violations r;
  check Alcotest.int "all singles acked" r.Runner.singles_submitted
    r.Runner.singles_acked;
  check Alcotest.int "every tx finished" r.Runner.txs_started
    (r.Runner.txs_committed + r.Runner.txs_aborted);
  check Alcotest.bool "some transactions committed" true
    (r.Runner.txs_committed > 0)

let deterministic_replay () =
  let mk () =
    let router = Router.create ~shards:3 in
    let ops = mixed_ops ~router ~clients:8 ~per_client:5 ~tx_every:2 ~hot_keys:3 in
    run_cfg ~shards:3 ~seed:42 ops
  in
  let a = mk () and b = mk () in
  check Alcotest.int "virtual time equal" a.Runner.virtual_time
    b.Runner.virtual_time;
  check Alcotest.int "committed equal" a.Runner.txs_committed
    b.Runner.txs_committed;
  check Alcotest.int "aborted equal" a.Runner.txs_aborted b.Runner.txs_aborted;
  Array.iteri
    (fun i (sa : Runner.shard_report) ->
      check
        Alcotest.(array string)
        (Printf.sprintf "shard %d digests equal" i)
        sa.Runner.sr_digests
        b.Runner.shard_reports.(i).Runner.sr_digests)
    a.Runner.shard_reports

let open_loop_run () =
  let router = Router.create ~shards:2 in
  let ops = mixed_ops ~router ~clients:10 ~per_client:4 ~tx_every:4 ~hot_keys:3 in
  let r = run_cfg ~shards:2 ~arrival:(Runner.Open_loop { mean_gap = 40. }) ops in
  drained r;
  no_violations r;
  check Alcotest.int "all ops done" r.Runner.singles_submitted
    r.Runner.singles_acked

(* Coordinator crash between prepare and commit: the driver abandons the
   transaction after submitting prepares; the recovery daemon must
   finish it from the logs. *)
let coordinator_crash_after_prepare () =
  let router = Router.create ~shards:3 in
  let ops = mixed_ops ~router ~clients:6 ~per_client:4 ~tx_every:2 ~hot_keys:3 in
  let r =
    run_cfg ~shards:3
      ~coordinator_crash:(fun txid ->
        if txid mod 2 = 0 then Runner.After_prepare else Runner.No_crash)
      ops
  in
  drained r;
  no_violations r;
  check Alcotest.int "every tx finished despite dead coordinators"
    r.Runner.txs_started
    (r.Runner.txs_committed + r.Runner.txs_aborted)

(* Coordinator crash between decide and outcome propagation. *)
let coordinator_crash_after_decide () =
  let router = Router.create ~shards:3 in
  let ops = mixed_ops ~router ~clients:6 ~per_client:4 ~tx_every:2 ~hot_keys:3 in
  let r =
    run_cfg ~shards:3
      ~coordinator_crash:(fun txid ->
        if txid mod 3 = 0 then Runner.After_decide else Runner.No_crash)
      ops
  in
  drained r;
  no_violations r;
  check Alcotest.int "every tx finished" r.Runner.txs_started
    (r.Runner.txs_committed + r.Runner.txs_aborted)

(* A participant replica crashes after prepares started flowing and
   recovers from its WAL; atomicity and per-shard order must hold. *)
let participant_crash_after_prepare () =
  let router = Router.create ~shards:2 in
  let ops = mixed_ops ~router ~clients:8 ~per_client:4 ~tx_every:2 ~hot_keys:3 in
  let inject (f : Runner.faults) =
    Dsim.Engine.schedule f.Runner.engine ~delay:150 (fun () ->
        f.Runner.crash ~shard:1 ~replica:0);
    Dsim.Engine.schedule f.Runner.engine ~delay:900 (fun () ->
        f.Runner.restart ~shard:1 ~replica:0)
  in
  let r =
    run_cfg ~shards:2 ~store:Rsm.Runner.default_store_config ~inject ops
  in
  drained r;
  no_violations r;
  check Alcotest.bool "replica crashed and recovered" true
    (r.Runner.shard_reports.(1).Runner.sr_crashed = [ 0 ]
    && r.Runner.shard_reports.(1).Runner.sr_restarted = [ 0 ])

(* Shard-local partition: minority-cut one shard for a window.  Safety
   must hold throughout; the contention plus delay produces aborts. *)
let aborts_under_partition () =
  let router = Router.create ~shards:2 in
  let ops = mixed_ops ~router ~clients:10 ~per_client:5 ~tx_every:1 ~hot_keys:2 in
  let inject (f : Runner.faults) =
    Dsim.Engine.schedule f.Runner.engine ~delay:100 (fun () ->
        f.Runner.partition ~shard:1 [ [ 0 ]; [ 1; 2 ] ]);
    Dsim.Engine.schedule f.Runner.engine ~delay:1_200 (fun () ->
        f.Runner.heal ~shard:1)
  in
  let r = run_cfg ~shards:2 ~inject ops in
  drained r;
  no_violations r;
  check Alcotest.int "every tx finished" r.Runner.txs_started
    (r.Runner.txs_committed + r.Runner.txs_aborted);
  check Alcotest.bool "contention produced aborts" true (r.Runner.txs_aborted > 0)

(* The deliberately broken coordinator commits on the first yes vote;
   under contention some participant has voted no, and the cross-shard
   checker must catch the partial commit. *)
let broken_2pc_caught () =
  let router = Router.create ~shards:2 in
  let ops = mixed_ops ~router ~clients:12 ~per_client:4 ~tx_every:1 ~hot_keys:2 in
  let r = run_cfg ~shards:2 ~broken_2pc:true ops in
  check Alcotest.bool "mutant detected" true (r.Runner.atomicity <> []);
  check Alcotest.bool "commit-quorum property fired" true
    (List.exists
       (fun v -> v.XChecker.property = "commit-quorum")
       r.Runner.atomicity)

(* Storage faults + crash/restart: durable acks must survive. *)
let durable_under_storage_faults () =
  let router = Router.create ~shards:2 in
  let ops = mixed_ops ~router ~clients:6 ~per_client:4 ~tx_every:2 ~hot_keys:3 in
  let policy =
    {
      Store.Policy.none with
      torn = [ Store.Policy.rule ~from_:300 ~until_:340 () ];
      io_error = [ Store.Policy.rule ~from_:500 ~until_:560 () ];
    }
  in
  let inject (f : Runner.faults) =
    Dsim.Engine.schedule f.Runner.engine ~delay:400 (fun () ->
        f.Runner.crash ~shard:0 ~replica:1);
    Dsim.Engine.schedule f.Runner.engine ~delay:1_000 (fun () ->
        f.Runner.restart ~shard:0 ~replica:1)
  in
  let r =
    run_cfg ~shards:2
      ~store:{ Rsm.Runner.default_store_config with policy }
      ~inject ops
  in
  drained r;
  no_violations r

let suite =
  [
    Alcotest.test_case "cmd codec roundtrip" `Quick codec_roundtrip;
    Alcotest.test_case "cid tagging" `Quick cid_tags;
    Alcotest.test_case "router slices by owner" `Quick router_slices;
    Alcotest.test_case "machine: prepare/commit" `Quick machine_prepare_commit;
    Alcotest.test_case "machine: conflict votes no" `Quick
      machine_conflict_votes_no;
    Alcotest.test_case "machine: fences late prepare" `Quick
      machine_fences_late_prepare;
    Alcotest.test_case "machine: first decision wins" `Quick
      machine_first_decision_wins;
    Alcotest.test_case "machine: snapshot roundtrip" `Quick
      machine_snapshot_roundtrip;
    Alcotest.test_case "xchecker: partial commit caught" `Quick
      xchecker_catches_partial_commit;
    Alcotest.test_case "xchecker: clean commit passes" `Quick
      xchecker_accepts_clean_commit;
    Alcotest.test_case "xchecker: completeness" `Quick xchecker_completeness;
    Alcotest.test_case "run: mixed workload, no violations" `Quick basic_run;
    Alcotest.test_case "run: deterministic replay" `Quick deterministic_replay;
    Alcotest.test_case "run: open-loop arrivals" `Quick open_loop_run;
    Alcotest.test_case "2pc: coordinator crash after prepare" `Quick
      coordinator_crash_after_prepare;
    Alcotest.test_case "2pc: coordinator crash after decide" `Quick
      coordinator_crash_after_decide;
    Alcotest.test_case "2pc: participant crash after prepare" `Quick
      participant_crash_after_prepare;
    Alcotest.test_case "2pc: aborts under shard-local partition" `Quick
      aborts_under_partition;
    Alcotest.test_case "2pc: broken commit-without-quorum caught" `Quick
      broken_2pc_caught;
    Alcotest.test_case "2pc: durable under storage faults" `Quick
      durable_under_storage_faults;
  ]
