(* Tests for structured traces. *)

let check = Alcotest.check

let emit_and_read () =
  let t = Dsim.Trace.create () in
  Dsim.Trace.emit t ~time:1 ~pid:0 ~tag:"send" "hello";
  Dsim.Trace.emit t ~time:2 ~tag:"recv" "world";
  check Alcotest.int "length" 2 (Dsim.Trace.length t);
  match Dsim.Trace.events t with
  | [ e1; e2 ] ->
      check Alcotest.int "first time" 1 e1.Dsim.Trace.time;
      check (Alcotest.option Alcotest.int) "first pid" (Some 0) e1.Dsim.Trace.pid;
      check Alcotest.string "first tag" "send" e1.Dsim.Trace.tag;
      check (Alcotest.option Alcotest.int) "second pid" None e2.Dsim.Trace.pid;
      check Alcotest.string "second detail" "world" e2.Dsim.Trace.detail
  | other -> Alcotest.failf "expected 2 events, got %d" (List.length other)

let filtering () =
  let t = Dsim.Trace.create () in
  for i = 1 to 10 do
    Dsim.Trace.emit t ~time:i ~tag:(if i mod 2 = 0 then "even" else "odd") "x"
  done;
  check Alcotest.int "count even" 5 (Dsim.Trace.count t "even");
  check Alcotest.int "count other" 0 (Dsim.Trace.count t "missing");
  let evens = Dsim.Trace.with_tag t "even" in
  check (Alcotest.list Alcotest.int) "ordered ascending" [ 2; 4; 6; 8; 10 ]
    (List.map (fun e -> e.Dsim.Trace.time) evens)

let capacity_keeps_newest () =
  let t = Dsim.Trace.create ~capacity:10 () in
  for i = 1 to 100 do
    Dsim.Trace.emit t ~time:i ~tag:"e" "x"
  done;
  let times = List.map (fun e -> e.Dsim.Trace.time) (Dsim.Trace.events t) in
  check Alcotest.bool "bounded" true (List.length times <= 20);
  check Alcotest.int "newest retained" 100 (List.fold_left max 0 times)

let last_is_the_tail () =
  let t = Dsim.Trace.create () in
  for i = 1 to 7 do
    Dsim.Trace.emit t ~time:i ~tag:"e" "x"
  done;
  let times evs = List.map (fun e -> e.Dsim.Trace.time) evs in
  check (Alcotest.list Alcotest.int) "last 3, oldest first" [ 5; 6; 7 ]
    (times (Dsim.Trace.last t 3));
  check (Alcotest.list Alcotest.int) "k beyond length gives everything"
    (times (Dsim.Trace.events t))
    (times (Dsim.Trace.last t 100));
  check (Alcotest.list Alcotest.int) "k = 0 gives nothing" []
    (times (Dsim.Trace.last t 0));
  check (Alcotest.list Alcotest.int) "negative k gives nothing" []
    (times (Dsim.Trace.last t (-2)))

let pp_formats () =
  let t = Dsim.Trace.create () in
  Dsim.Trace.emit t ~time:5 ~pid:3 ~tag:"kill" "victim";
  match Dsim.Trace.events t with
  | [ e ] ->
      let s = Format.asprintf "%a" Dsim.Trace.pp_event e in
      check Alcotest.bool "mentions time" true
        (Astring_like.contains s "t=5" || Astring_like.contains s "5");
      check Alcotest.bool "mentions tag" true (Astring_like.contains s "kill")
  | _ -> Alcotest.fail "expected one event"

let suite =
  [
    Alcotest.test_case "emit and read" `Quick emit_and_read;
    Alcotest.test_case "filtering" `Quick filtering;
    Alcotest.test_case "capacity keeps newest" `Quick capacity_keeps_newest;
    Alcotest.test_case "last is the tail" `Quick last_is_the_tail;
    Alcotest.test_case "pp formats" `Quick pp_formats;
  ]
