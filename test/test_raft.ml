(* Tests for the Raft substrate: elections, replication, repair,
   partitions, and the three quoted invariants. *)

module Cluster = Raft.Cluster
module Replica = Raft.Replica

let check = Alcotest.check

let elect cl =
  check Alcotest.bool "leader elected" true
    (Cluster.run_until cl (fun () -> Cluster.current_leader cl <> None));
  Option.get (Cluster.current_leader cl)

let invariants_hold cl =
  Cluster.violations cl = [] && Cluster.check_log_matching cl = []

let commit_everywhere cl index =
  Cluster.run_until cl (fun () ->
      Array.for_all
        (fun r -> Replica.is_stopped r || Replica.last_applied r >= index)
        (Cluster.replicas cl))

let election_basic () =
  let cl = Cluster.create ~seed:1L ~n:5 () in
  Cluster.start cl;
  let leader = elect cl in
  check Alcotest.bool "leader id in range" true (leader >= 0 && leader < 5);
  check Alcotest.int "term 1" 1 (Replica.current_term (Cluster.replica cl leader));
  check Alcotest.bool "invariants" true (invariants_hold cl)

let single_node_cluster () =
  let cl = Cluster.create ~seed:2L ~n:1 () in
  Cluster.start cl;
  let leader = elect cl in
  check Alcotest.int "self-elected" 0 leader;
  check Alcotest.bool "propose works" true (Cluster.propose_via_leader cl "solo");
  check Alcotest.bool "commits alone" true (commit_everywhere cl 1)

let replication_applies_in_order () =
  let cl = Cluster.create ~seed:3L ~n:5 () in
  let applied = Array.make 5 [] in
  Array.iteri
    (fun i r ->
      Replica.subscribe r (fun ev ->
          match ev with
          | Replica.Event.Applied { index; cmd } ->
              applied.(i) <- (index, cmd) :: applied.(i)
          | _ -> ()))
    (Cluster.replicas cl);
  Cluster.start cl;
  ignore (elect cl : int);
  List.iteri
    (fun k cmd ->
      check Alcotest.bool "accepted" true (Cluster.propose_via_leader cl cmd);
      check Alcotest.bool "committed" true (commit_everywhere cl (k + 1)))
    [ "a"; "b"; "c" ];
  Array.iteri
    (fun i log ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
        (Printf.sprintf "replica %d applied in order" i)
        [ (1, "a"); (2, "b"); (3, "c") ]
        (List.rev log))
    applied;
  check Alcotest.bool "invariants" true (invariants_hold cl)

let propose_rejected_by_followers () =
  let cl = Cluster.create ~seed:4L ~n:3 () in
  Cluster.start cl;
  let leader = elect cl in
  let follower = if leader = 0 then 1 else 0 in
  check Alcotest.bool "follower refuses" false
    (Replica.propose (Cluster.replica cl follower) "nope")

let leader_crash_failover () =
  let cl = Cluster.create ~seed:5L ~n:5 () in
  Cluster.start cl;
  let l1 = elect cl in
  check Alcotest.bool "first commit" true
    (Cluster.propose_via_leader cl "pre" && commit_everywhere cl 1);
  Cluster.crash cl l1;
  check Alcotest.bool "new leader emerges" true
    (Cluster.run_until cl (fun () ->
         match Cluster.current_leader cl with Some l -> l <> l1 | None -> false));
  check Alcotest.bool "cluster keeps committing" true
    (Cluster.propose_via_leader cl "post"
    && Cluster.run_until cl (fun () ->
           let live_done = ref 0 in
           Array.iter
             (fun r ->
               if (not (Replica.is_stopped r)) && Replica.last_applied r >= 2 then
                 incr live_done)
             (Cluster.replicas cl);
           !live_done >= 4));
  check Alcotest.bool "invariants" true (invariants_hold cl)

let restart_catches_up_via_repair () =
  let cl = Cluster.create ~seed:6L ~n:5 () in
  Cluster.start cl;
  ignore (elect cl : int);
  (* Crash a follower, commit a batch it misses, then restart it. *)
  let leader = Option.get (Cluster.current_leader cl) in
  let victim = if leader = 0 then 1 else 0 in
  Cluster.crash cl victim;
  for k = 1 to 5 do
    check Alcotest.bool "accepted" true
      (Cluster.propose_via_leader cl (Printf.sprintf "cmd%d" k));
    ignore
      (Cluster.run_until cl (fun () ->
           let live_done = ref 0 in
           Array.iter
             (fun r ->
               if (not (Replica.is_stopped r)) && Replica.commit_index r >= k then
                 incr live_done)
             (Cluster.replicas cl);
           !live_done >= 4)
      : bool)
  done;
  Cluster.restart cl victim;
  check Alcotest.bool "victim replays all 5" true
    (Cluster.run_until cl (fun () ->
         Replica.last_applied (Cluster.replica cl victim) >= 5));
  check Alcotest.int "victim log caught up" 5
    (Replica.commit_index (Cluster.replica cl victim));
  check Alcotest.bool "invariants" true (invariants_hold cl)

let minority_partition_cannot_commit () =
  let cl = Cluster.create ~seed:7L ~n:5 () in
  Cluster.start cl;
  let leader = elect cl in
  let others = List.filter (fun i -> i <> leader) [ 0; 1; 2; 3; 4 ] in
  Cluster.partition cl [ [ leader ]; others ];
  (* The isolated leader accepts a proposal but can never commit it. *)
  check Alcotest.bool "stale leader still accepts" true
    (Replica.propose (Cluster.replica cl leader) "doomed");
  Cluster.run_for cl 3_000;
  check Alcotest.int "nothing committed by stale leader" 0
    (Replica.commit_index (Cluster.replica cl leader));
  (* The majority side elects its own leader at a higher term. *)
  check Alcotest.bool "majority re-elects" true
    (List.exists
       (fun i ->
         Replica.role (Cluster.replica cl i) = Replica.Leader
         && Replica.current_term (Cluster.replica cl i)
            > Replica.current_term (Cluster.replica cl leader))
       others);
  (* After healing, the stale leader steps down and its doomed entry is
     eventually overwritten or orphaned — invariants must hold. *)
  Cluster.heal cl;
  check Alcotest.bool "old leader steps down" true
    (Cluster.run_until cl (fun () ->
         Replica.role (Cluster.replica cl leader) = Replica.Follower));
  check Alcotest.bool "invariants after heal" true (invariants_hold cl)

let no_quorum_no_leader () =
  let cl = Cluster.create ~seed:8L ~n:5 () in
  Cluster.start cl;
  (* Full fragmentation: nobody can gather votes. *)
  Cluster.partition cl [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ];
  Cluster.run_for cl 5_000;
  check (Alcotest.option Alcotest.int) "no leader" None (Cluster.current_leader cl);
  (* Terms still grow (candidates keep trying): liveness pressure exists. *)
  check Alcotest.bool "terms grew" true
    (Array.exists (fun r -> Replica.current_term r > 3) (Cluster.replicas cl))

let election_safety_over_seeds () =
  for seed = 1 to 20 do
    let cl = Cluster.create ~seed:(Int64.of_int seed) ~n:5 () in
    Cluster.start cl;
    ignore (elect cl : int);
    ignore (Cluster.propose_via_leader cl "x" : bool);
    Cluster.run_for cl 2_000;
    check Alcotest.bool (Printf.sprintf "seed %d invariants" seed) true
      (invariants_hold cl);
    (* at most one leader per term, already monitored; also check census *)
    let terms = List.map fst (Cluster.leaders_by_term cl) in
    check Alcotest.bool "terms unique" true
      (List.length terms = List.length (List.sort_uniq compare terms))
  done

let message_loss_tolerated () =
  let policy _env = Netsim.Async_net.Deliver in
  ignore policy;
  let lossy env =
    (* Drop ~20% of messages deterministically by envelope id. *)
    if env.Netsim.Async_net.env_id mod 5 = 0 then Netsim.Async_net.Drop
    else Netsim.Async_net.Deliver
  in
  let cl = Cluster.create ~seed:9L ~policy:lossy ~n:5 () in
  Cluster.start cl;
  ignore (elect cl : int);
  check Alcotest.bool "commits despite loss" true
    (Cluster.run_until cl (fun () -> Cluster.propose_via_leader cl "lossy")
    && commit_everywhere cl 1);
  check Alcotest.bool "invariants" true (invariants_hold cl)

let full_cluster_restart_recovers () =
  (* Commit a batch, stop every replica, restart everyone: persistent
     state (term, vote, log) must survive and the committed prefix must be
     re-applied identically. *)
  let cl = Cluster.create ~seed:12L ~n:3 () in
  Cluster.start cl;
  ignore (elect cl : int);
  for k = 1 to 3 do
    check Alcotest.bool "accepted" true
      (Cluster.propose_via_leader cl (Printf.sprintf "v%d" k));
    check Alcotest.bool "committed" true (commit_everywhere cl k)
  done;
  for i = 0 to 2 do
    Cluster.crash cl i
  done;
  Cluster.run_for cl 500;
  for i = 0 to 2 do
    Cluster.restart cl i
  done;
  check Alcotest.bool "re-elects after full restart" true
    (Cluster.run_until cl (fun () -> Cluster.current_leader cl <> None));
  (* The figure-8 guard forbids committing old-term entries directly: the
     restarted cluster re-commits the prefix only once a current-term
     entry lands on top (real Raft plants a no-op at election; the
     consensus reduction re-proposes its D&S command). *)
  Cluster.run_for cl 1_000;
  Array.iter
    (fun r ->
      check Alcotest.int "prefix not yet re-committed (figure-8 guard)" 0
        (Replica.commit_index r))
    (Cluster.replicas cl);
  check Alcotest.bool "post-restart proposal accepted" true
    (Cluster.propose_via_leader cl "v4");
  check Alcotest.bool "prefix + new entry committed" true (commit_everywhere cl 4);
  Array.iter
    (fun r ->
      check Alcotest.string "first entry preserved" "v1"
        (Replica.log_entry r 1).Raft.Types.cmd)
    (Cluster.replicas cl);
  check Alcotest.bool "invariants" true (invariants_hold cl)

let term_monotonicity () =
  let cl = Cluster.create ~seed:10L ~n:3 () in
  let term_history = Array.make 3 [] in
  Array.iteri
    (fun i r ->
      Replica.subscribe r (fun ev ->
          match ev with
          | Replica.Event.Became_candidate { term }
          | Replica.Event.Became_leader { term }
          | Replica.Event.Stepped_down { term } ->
              term_history.(i) <- term :: term_history.(i)
          | _ -> ()))
    (Cluster.replicas cl);
  Cluster.start cl;
  let l = elect cl in
  Cluster.crash cl l;
  ignore
    (Cluster.run_until cl (fun () ->
         match Cluster.current_leader cl with Some l2 -> l2 <> l | None -> false)
    : bool);
  Array.iteri
    (fun i history ->
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> b <= a && non_decreasing rest
        | [ _ ] | [] -> true
      in
      check Alcotest.bool (Printf.sprintf "replica %d terms monotone" i) true
        (non_decreasing history))
    term_history

(* --- disk-backed persistence ------------------------------------------- *)

(* A 3-node cluster where every replica persists through a simulated WAL.
   After committing entries and crash-restarting a follower, recovery
   must reproduce exactly the fsynced term and log — and the commit
   index must NOT survive: it restarts at 0 and is re-derived from the
   protocol. *)
let disk_run_until eng ?(timeout = 100_000) pred =
  let module E = Dsim.Engine in
  let deadline = E.now eng + timeout in
  let rec go () =
    if pred () then true
    else if E.now eng >= deadline then false
    else
      match E.run ~until:(min deadline (E.now eng + 50)) eng with
      | E.Time_limit -> go ()
      | E.Quiescent | E.Deadlock _ | E.Event_limit -> pred ()
  in
  go ()

let make_disk_cluster ~seed ~n ~policy =
  let eng = Dsim.Engine.create ~seed () in
  let net = Netsim.Async_net.create eng ~n ~latency:(Netsim.Latency.Uniform (5, 20)) () in
  let disks =
    Array.init n (fun pid ->
        Store.Disk.create ~engine:eng ~pid ~policy:(fun () -> !policy) ())
  in
  let replicas =
    Array.init n (fun i ->
        Replica.create ~net ~id:i ~disk:disks.(i)
          ~apply:(fun _ _ -> ())
          ~rng:(Dsim.Rng.split (Dsim.Engine.rng eng))
          ())
  in
  Array.iter Replica.start replicas;
  (eng, replicas, disks)

let disk_recovery_reproduces_fsynced_state () =
  let policy = ref Store.Policy.none in
  let eng, replicas, _disks = make_disk_cluster ~seed:31L ~n:3 ~policy in
  check Alcotest.bool "leader elected" true
    (disk_run_until eng (fun () ->
         Array.exists (fun r -> Replica.role r = Replica.Leader) replicas));
  let leader = ref replicas.(0) in
  Array.iter
    (fun r -> if Replica.role r = Replica.Leader then leader := r)
    replicas;
  List.iter
    (fun cmd ->
      check Alcotest.bool "accepted" true (Replica.propose !leader cmd);
      check Alcotest.bool "committed" true
        (disk_run_until eng (fun () ->
             Array.for_all (fun r -> Replica.commit_index r >= 1) replicas)))
    [ "a"; "b" ];
  check Alcotest.bool "all committed" true
    (disk_run_until eng (fun () ->
         Array.for_all (fun r -> Replica.commit_index r >= 2) replicas));
  let victim =
    Option.get
      (Array.find_opt (fun r -> Replica.role r <> Replica.Leader) replicas)
  in
  let term_before = Replica.current_term victim in
  let log_before = Replica.log_length victim in
  let recovered = ref None in
  Replica.subscribe victim (fun ev ->
      match ev with
      | Replica.Event.Recovered { term; log } -> recovered := Some (term, log)
      | _ -> ());
  Replica.stop victim;
  Replica.restart victim;
  (match !recovered with
  | Some (term, log) ->
      check Alcotest.int "recovered term is the fsynced term" term_before term;
      check Alcotest.int "recovered log is the fsynced log" log_before log
  | None -> Alcotest.fail "no Recovered event on disk-backed restart");
  check Alcotest.int "commit index is volatile: restarts at 0" 0
    (Replica.commit_index victim);
  check Alcotest.bool "commit index re-derived from the protocol" true
    (disk_run_until eng (fun () -> Replica.commit_index victim >= 2))

(* A follower whose fsyncs stall indefinitely accepts nothing durably:
   its in-memory log grows, but recovery only reproduces what made it to
   disk — the stalled entries are gone after crash-restart, and repair
   re-sends them. *)
let disk_recovery_drops_unsynced_entries () =
  let policy = ref Store.Policy.none in
  let eng, replicas, _disks = make_disk_cluster ~seed:37L ~n:3 ~policy in
  check Alcotest.bool "leader elected" true
    (disk_run_until eng (fun () ->
         Array.exists (fun r -> Replica.role r = Replica.Leader) replicas));
  let leader = ref replicas.(0) in
  Array.iter
    (fun r -> if Replica.role r = Replica.Leader then leader := r)
    replicas;
  check Alcotest.bool "first entry accepted" true (Replica.propose !leader "pre");
  check Alcotest.bool "first entry committed everywhere" true
    (disk_run_until eng (fun () ->
         Array.for_all (fun r -> Replica.commit_index r >= 1) replicas));
  let victim =
    Option.get
      (Array.find_opt (fun r -> Replica.role r <> Replica.Leader) replicas)
  in
  let vid = Replica.id victim in
  (* From now on the victim's fsyncs stall (effectively) forever. *)
  policy :=
    {
      Store.Policy.none with
      Store.Policy.stall =
        [
          ( Store.Policy.rule ~pids:[ vid ] ~from_:0 ~until_:max_int (),
            10_000_000 );
        ];
    };
  check Alcotest.bool "second entry accepted" true (Replica.propose !leader "post");
  check Alcotest.bool "second entry reaches the victim's memory" true
    (disk_run_until eng (fun () -> Replica.log_length victim >= 2));
  let recovered_log = ref (-1) in
  Replica.subscribe victim (fun ev ->
      match ev with
      | Replica.Event.Recovered { log; _ } -> recovered_log := log
      | _ -> ());
  Replica.stop victim;
  policy := Store.Policy.none;
  Replica.restart victim;
  check Alcotest.int "only the fsynced prefix recovered" 1 !recovered_log;
  check Alcotest.bool "repair re-sends the lost entry" true
    (disk_run_until eng (fun () ->
         Replica.log_length victim >= 2 && Replica.commit_index victim >= 2))

let suite =
  [
    Alcotest.test_case "election basic" `Quick election_basic;
    Alcotest.test_case "single-node cluster" `Quick single_node_cluster;
    Alcotest.test_case "replication applies in order" `Quick replication_applies_in_order;
    Alcotest.test_case "followers reject proposals" `Quick propose_rejected_by_followers;
    Alcotest.test_case "leader crash failover" `Quick leader_crash_failover;
    Alcotest.test_case "restart catches up" `Quick restart_catches_up_via_repair;
    Alcotest.test_case "minority partition cannot commit" `Quick
      minority_partition_cannot_commit;
    Alcotest.test_case "no quorum, no leader" `Quick no_quorum_no_leader;
    Alcotest.test_case "election safety over seeds" `Slow election_safety_over_seeds;
    Alcotest.test_case "message loss tolerated" `Quick message_loss_tolerated;
    Alcotest.test_case "full cluster restart" `Quick full_cluster_restart_recovers;
    Alcotest.test_case "term monotonicity" `Quick term_monotonicity;
    Alcotest.test_case "disk recovery reproduces fsynced state" `Quick
      disk_recovery_reproduces_fsynced_state;
    Alcotest.test_case "disk recovery drops unsynced entries" `Quick
      disk_recovery_drops_unsynced_entries;
  ]
