(* Tests for the discrete-event engine: scheduling, suspension, faults. *)

module Engine = Dsim.Engine

let check = Alcotest.check

let outcome_testable =
  Alcotest.testable
    (fun ppf -> function
      | Engine.Quiescent -> Format.fprintf ppf "Quiescent"
      | Engine.Deadlock pids ->
          Format.fprintf ppf "Deadlock(%s)"
            (String.concat "," (List.map string_of_int pids))
      | Engine.Time_limit -> Format.fprintf ppf "Time_limit"
      | Engine.Event_limit -> Format.fprintf ppf "Event_limit")
    ( = )

let schedule_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:10 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:5 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := "c" :: !log);
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  check (Alcotest.list Alcotest.string) "time order, FIFO ties" [ "a"; "b"; "c" ]
    (List.rev !log);
  check Alcotest.int "clock at last event" 10 (Engine.now e)

let negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1) (fun () -> ()))

let await_immediate () =
  let e = Engine.create () in
  let steps = ref [] in
  let _p =
    Engine.spawn e (fun _ctx ->
        (* Condition already true: must not yield at all. *)
        let v = Engine.await (fun () -> Some 42) in
        steps := v :: !steps)
  in
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  check (Alcotest.list Alcotest.int) "ran" [ 42 ] !steps

let await_wakes_on_change () =
  let e = Engine.create () in
  let flag = ref false in
  let woke_at = ref (-1) in
  let _p =
    Engine.spawn e (fun _ctx ->
        Engine.await_cond (fun () -> !flag);
        woke_at := Engine.now e)
  in
  Engine.schedule e ~delay:30 (fun () -> flag := true);
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  check Alcotest.int "woke when flag set" 30 !woke_at

let sleep_accumulates () =
  let e = Engine.create () in
  let t1 = ref 0 and t2 = ref 0 in
  let _p =
    Engine.spawn e (fun ctx ->
        Engine.sleep ctx 7;
        t1 := Engine.now e;
        Engine.sleep ctx 5;
        t2 := Engine.now e)
  in
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "first sleep" 7 !t1;
  check Alcotest.int "second sleep" 12 !t2

let deadlock_detection () =
  let e = Engine.create () in
  let p = Engine.spawn e (fun _ -> Engine.await_cond (fun () -> false)) in
  match Engine.run e with
  | Engine.Deadlock pids -> check (Alcotest.list Alcotest.int) "blocked pid" [ p ] pids
  | other ->
      Alcotest.failf "expected deadlock, got %a" (fun ppf o ->
          Fmt.pf ppf "%s"
            (match o with
            | Engine.Quiescent -> "quiescent"
            | Engine.Time_limit -> "time"
            | Engine.Event_limit -> "events"
            | Engine.Deadlock _ -> "deadlock")) other

let kill_blocked_process_runs_finalizers () =
  let e = Engine.create () in
  let cleaned = ref false in
  let p =
    Engine.spawn e (fun _ ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> Engine.await_cond (fun () -> false)))
  in
  Engine.schedule e ~delay:5 (fun () -> Engine.kill e p);
  check outcome_testable "quiescent after kill" Engine.Quiescent (Engine.run e);
  check Alcotest.bool "finalizer ran" true !cleaned;
  check Alcotest.bool "not alive" false (Engine.alive e p)

let kill_sleeping_process () =
  let e = Engine.create () in
  let resumed = ref false in
  let p =
    Engine.spawn e (fun ctx ->
        Engine.sleep ctx 100;
        resumed := true)
  in
  Engine.schedule e ~delay:10 (fun () -> Engine.kill e p);
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  check Alcotest.bool "never resumed" false !resumed

let kill_is_idempotent () =
  let e = Engine.create () in
  let p = Engine.spawn e (fun _ -> Engine.await_cond (fun () -> false)) in
  Engine.schedule e ~delay:1 (fun () ->
      Engine.kill e p;
      Engine.kill e p);
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e)

let yield_interleaves () =
  let e = Engine.create () in
  let log = ref [] in
  let _a =
    Engine.spawn e (fun ctx ->
        log := "a1" :: !log;
        Engine.yield ctx;
        log := "a2" :: !log)
  in
  let _b =
    Engine.spawn e (fun ctx ->
        log := "b1" :: !log;
        Engine.yield ctx;
        log := "b2" :: !log)
  in
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.string) "spawn order then yield order"
    [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let process_exception_is_recorded () =
  let e = Engine.create () in
  let p = Engine.spawn e (fun _ -> failwith "boom") in
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.bool "not alive" false (Engine.alive e p);
  match Engine.process_failed e p with
  | Some (Failure msg) -> check Alcotest.string "message" "boom" msg
  | Some _ | None -> Alcotest.fail "expected recorded failure"

let time_limit_then_resume () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:100 (fun () -> fired := true);
  check outcome_testable "time limit" Engine.Time_limit (Engine.run ~until:50 e);
  check Alcotest.bool "not yet" false !fired;
  check Alcotest.int "clock clamped" 50 (Engine.now e);
  check outcome_testable "finishes later" Engine.Quiescent (Engine.run e);
  check Alcotest.bool "fired eventually" true !fired

let event_limit () =
  let e = Engine.create () in
  for i = 1 to 10 do
    Engine.schedule e ~delay:i (fun () -> ())
  done;
  check outcome_testable "event limit" Engine.Event_limit
    (Engine.run ~max_events:3 e)

let determinism_same_seed () =
  let run_once () =
    let e = Engine.create ~seed:77L () in
    let log = ref [] in
    for i = 0 to 3 do
      ignore
        (Engine.spawn e (fun ctx ->
             Engine.sleep ctx (Dsim.Rng.int_in ctx.Engine.rng 1 50);
             log := (i, Engine.now e) :: !log)
        : Engine.pid)
    done;
    ignore (Engine.run e : Engine.outcome);
    List.rev !log
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "identical schedules" (run_once ()) (run_once ())

let names_and_ids () =
  let e = Engine.create () in
  let p = Engine.spawn e ~name:"alice" (fun _ -> ()) in
  let q = Engine.spawn e (fun _ -> ()) in
  check Alcotest.string "explicit name" "alice" (Engine.name e p);
  check Alcotest.string "default name" (Printf.sprintf "p%d" q) (Engine.name e q);
  check Alcotest.bool "distinct pids" true (p <> q)

let suspension_outside_process () =
  Alcotest.check_raises "await outside" Engine.Not_in_process (fun () ->
      ignore (Engine.await (fun () -> None) : unit))

let emit_goes_to_trace () =
  let e = Engine.create () in
  Engine.schedule e ~delay:4 (fun () -> Engine.emit e ~pid:1 ~tag:"custom" "detail");
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "one custom event" 1 (Dsim.Trace.count (Engine.trace e) "custom")

let quiet_engine_never_forces_thunks () =
  (* The lazy-emit contract: with tracing off, emitk must not build the
     trace string — the thunk is never called, nothing is retained. *)
  let forced = ref 0 in
  let e = Engine.create ~tracing:false () in
  Engine.schedule e ~delay:1 (fun () ->
      Engine.emitk e ~tag:"quiet" (fun () ->
          incr forced;
          "expensive detail");
      Engine.emit e ~tag:"quiet" "eager detail");
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "thunk never forced" 0 !forced;
  check Alcotest.int "trace stays empty" 0 (Dsim.Trace.length (Engine.trace e))

let tracing_toggle () =
  let e = Engine.create () in
  check Alcotest.bool "tracing defaults on" true (Engine.tracing e);
  Engine.set_tracing e false;
  Engine.emit e ~tag:"t" "dropped";
  Engine.set_tracing e true;
  Engine.emit e ~tag:"t" "kept";
  check Alcotest.int "only the traced emit retained" 1
    (Dsim.Trace.length (Engine.trace e))

let run_quiet_restores_tracing () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1 (fun () -> Engine.emit e ~tag:"t" "inside");
  ignore (Engine.run_quiet e : Engine.outcome);
  check Alcotest.bool "tracing restored after run_quiet" true (Engine.tracing e);
  check Alcotest.int "nothing traced during quiet run" 0
    (Dsim.Trace.length (Engine.trace e));
  Engine.emit e ~tag:"t" "after";
  check Alcotest.int "emit works again afterwards" 1
    (Dsim.Trace.length (Engine.trace e))

let quiet_matches_traced_schedule () =
  (* Tracing must affect trace retention only: the same seeded workload
     run quiet and traced takes identical scheduling decisions. *)
  let run_once ~tracing =
    let e = Engine.create ~seed:99L ~tracing () in
    let log = ref [] in
    for p = 0 to 3 do
      ignore
        (Engine.spawn e (fun ctx ->
             for _ = 1 to 5 do
               Engine.sleep ctx (1 + Dsim.Rng.int ctx.Engine.rng 7);
               Engine.emitk e ~tag:"step" (fun () -> "step");
               log := (p, Engine.now e) :: !log
             done)
          : Engine.pid)
    done;
    ignore (Engine.run e : Engine.outcome);
    List.rev !log
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "identical schedules" (run_once ~tracing:true) (run_once ~tracing:false)

let nested_spawn () =
  (* A process spawning another process mid-flight. *)
  let e = Engine.create () in
  let log = ref [] in
  let _parent =
    Engine.spawn e (fun ctx ->
        log := "parent-start" :: !log;
        let _child =
          Engine.spawn e (fun ctx' ->
              Engine.sleep ctx' 5;
              log := "child" :: !log)
        in
        Engine.sleep ctx 10;
        log := "parent-end" :: !log)
  in
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  check (Alcotest.list Alcotest.string) "interleaving"
    [ "parent-start"; "child"; "parent-end" ] (List.rev !log)

let kill_from_sibling_process () =
  (* One process killing another that is blocked; the killer keeps
     running. *)
  let e = Engine.create () in
  let victim = Engine.spawn e (fun _ -> Engine.await_cond (fun () -> false)) in
  let finished = ref false in
  let _killer =
    Engine.spawn e (fun ctx ->
        Engine.sleep ctx 5;
        Engine.kill e victim;
        Engine.sleep ctx 5;
        finished := true)
  in
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  check Alcotest.bool "killer finished" true !finished;
  check Alcotest.bool "victim dead" false (Engine.alive e victim)

let await_value_passes_through () =
  let e = Engine.create () in
  let cell = ref None in
  let got = ref "" in
  let _p =
    Engine.spawn e (fun _ ->
        got := Engine.await (fun () -> !cell))
  in
  Engine.schedule e ~delay:3 (fun () -> cell := Some "payload");
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.string "payload delivered" "payload" !got

let many_processes_stress () =
  (* 200 processes ping-ponging through a shared counter: exercises the
     blocked-list scanning at scale. *)
  let e = Engine.create ~seed:9L () in
  let turn = ref 0 in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore
      (Engine.spawn e (fun _ ->
           Engine.await_cond (fun () -> !turn = i);
           incr turn)
      : Engine.pid)
  done;
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  check Alcotest.int "all took their turn" n !turn

let prop_determinism =
  (* For arbitrary seeds, two engines running the same randomized program
     produce identical traces. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"same seed, same trace (any seed)" ~count:100
       QCheck.int64 (fun seed ->
         let run_once () =
           let e = Engine.create ~seed () in
           let log = Buffer.create 64 in
           for i = 0 to 4 do
             ignore
               (Engine.spawn e (fun ctx ->
                    Engine.sleep ctx (Dsim.Rng.int_in ctx.Engine.rng 1 30);
                    Buffer.add_string log (Printf.sprintf "%d@%d;" i (Engine.now e));
                    if Dsim.Rng.bool ctx.Engine.rng then Engine.yield ctx;
                    Buffer.add_string log (Printf.sprintf "%d!%d;" i (Engine.now e)))
               : Engine.pid)
           done;
           ignore (Engine.run e : Engine.outcome);
           Buffer.contents log
         in
         String.equal (run_once ()) (run_once ())))

(* --- flat events, queue backends, same-tick batching ------------------- *)

let flat_kind_events () =
  (* register_kind/schedule_kind must interleave with closure-based
     schedule in strict (time, insertion) order, and the packed 30-bit
     argument must round-trip intact — including the extremes. *)
  let e = Engine.create () in
  let log = ref [] in
  let record name arg = log := (name, arg, Engine.now e) :: !log in
  let k1 = Engine.register_kind e (record "k1") in
  let k2 = Engine.register_kind e (record "k2") in
  Engine.schedule_kind e ~owner:(-1) ~delay:5 ~kind:k1 42;
  Engine.schedule e ~delay:5 (fun () -> record "closure" 0);
  Engine.schedule_kind e ~owner:3 ~delay:5 ~kind:k2 7;
  Engine.schedule_kind e ~owner:(-1) ~delay:2 ~kind:k2 0x3FFF_FFFF;
  Engine.schedule_kind e ~owner:(-1) ~delay:2 ~kind:k1 0;
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  check
    (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.int Alcotest.int))
    "time order, FIFO ties, args intact"
    [
      ("k2", 0x3FFF_FFFF, 2);
      ("k1", 0, 2);
      ("k1", 42, 5);
      ("closure", 0, 5);
      ("k2", 7, 5);
    ]
    (List.rev !log)

(* A seeded workload with deliberate same-tick ties: several processes
   sleeping tiny random amounts plus flat-kind events at delay 0. *)
let mixed_workload ~queue ~batching ~seed =
  let e = Engine.create ~seed ~queue ~batching () in
  let log = Buffer.create 256 in
  let k =
    Engine.register_kind e (fun arg ->
        Buffer.add_string log (Printf.sprintf "k%d@%d;" arg (Engine.now e)))
  in
  for i = 0 to 4 do
    ignore
      (Engine.spawn e (fun ctx ->
           for r = 1 to 6 do
             Engine.sleep ctx (Dsim.Rng.int ctx.Engine.rng 4);
             Buffer.add_string log
               (Printf.sprintf "p%d.%d@%d;" i r (Engine.now e));
             if r mod 2 = 0 then Engine.schedule_kind e ~owner:i ~delay:0 ~kind:k i
           done)
        : Engine.pid)
  done;
  let o = Engine.run e in
  (o, Buffer.contents log)

let run_testable = Alcotest.pair outcome_testable Alcotest.string

let batching_toggle_equivalence () =
  (* Batch draining is a pure mechanism: flipping it must not move a
     single event. *)
  let on = mixed_workload ~queue:Dsim.Equeue.Heap ~batching:true ~seed:5L in
  let off = mixed_workload ~queue:Dsim.Equeue.Heap ~batching:false ~seed:5L in
  check run_testable "batching on = batching off" on off

let wheel_backend_equivalence () =
  (* Same seeded program, heap vs wheel event queue: identical trace. *)
  let heap = mixed_workload ~queue:Dsim.Equeue.Heap ~batching:true ~seed:5L in
  let wheel = mixed_workload ~queue:Dsim.Equeue.Wheel ~batching:true ~seed:5L in
  check run_testable "heap = wheel" heap wheel;
  let wheel_nb =
    mixed_workload ~queue:Dsim.Equeue.Wheel ~batching:false ~seed:5L
  in
  check run_testable "heap = wheel, batching off" heap wheel_nb

let oracle_bypasses_batching () =
  (* With an oracle installed the engine must fall back to per-event
     granularity even though batching is on: the first "sched" choice
     sees the whole tie set (arity 3, owners decoded from the packed
     representation), and picking the last alternative each time
     reverses the firing order. *)
  let e = Engine.create ~batching:true () in
  check Alcotest.bool "batching enabled" true (Engine.batching e);
  let fired = ref [] in
  let k = Engine.register_kind e (fun arg -> fired := arg :: !fired) in
  Engine.schedule_kind e ~owner:4 ~delay:3 ~kind:k 0;
  Engine.schedule_kind e ~owner:9 ~delay:3 ~kind:k 1;
  Engine.schedule e ~delay:3 (fun () -> fired := 2 :: !fired);
  let choices = ref [] in
  Engine.set_oracle e
    (Some
       {
         Engine.choose =
           (fun c ->
             if c.Engine.c_domain = "sched" then
               choices :=
                 (c.Engine.c_arity, Array.to_list c.Engine.c_owners)
                 :: !choices;
             c.Engine.c_arity - 1);
       });
  check outcome_testable "quiescent" Engine.Quiescent (Engine.run e);
  let choices = List.rev !choices in
  check
    (Alcotest.list
       (Alcotest.pair Alcotest.int
          (Alcotest.list (Alcotest.option Alcotest.int))))
    "tie set surfaced per-event with owners decoded"
    [ (3, [ Some 4; Some 9; None ]); (2, [ Some 4; Some 9 ]) ]
    choices;
  check (Alcotest.list Alcotest.int) "oracle-chosen order (last first)"
    [ 2; 1; 0 ] (List.rev !fired)

let suite =
  [
    Alcotest.test_case "schedule ordering" `Quick schedule_ordering;
    Alcotest.test_case "nested spawn" `Quick nested_spawn;
    prop_determinism;
    Alcotest.test_case "kill from sibling" `Quick kill_from_sibling_process;
    Alcotest.test_case "await passes value" `Quick await_value_passes_through;
    Alcotest.test_case "200-process stress" `Quick many_processes_stress;
    Alcotest.test_case "negative delay rejected" `Quick negative_delay_rejected;
    Alcotest.test_case "await immediate" `Quick await_immediate;
    Alcotest.test_case "await wakes on change" `Quick await_wakes_on_change;
    Alcotest.test_case "sleep accumulates" `Quick sleep_accumulates;
    Alcotest.test_case "deadlock detection" `Quick deadlock_detection;
    Alcotest.test_case "kill runs finalizers" `Quick kill_blocked_process_runs_finalizers;
    Alcotest.test_case "kill sleeping process" `Quick kill_sleeping_process;
    Alcotest.test_case "kill idempotent" `Quick kill_is_idempotent;
    Alcotest.test_case "yield interleaves" `Quick yield_interleaves;
    Alcotest.test_case "exception recorded" `Quick process_exception_is_recorded;
    Alcotest.test_case "time limit then resume" `Quick time_limit_then_resume;
    Alcotest.test_case "event limit" `Quick event_limit;
    Alcotest.test_case "determinism" `Quick determinism_same_seed;
    Alcotest.test_case "names and ids" `Quick names_and_ids;
    Alcotest.test_case "suspension outside process" `Quick suspension_outside_process;
    Alcotest.test_case "emit goes to trace" `Quick emit_goes_to_trace;
    Alcotest.test_case "quiet never forces thunks" `Quick
      quiet_engine_never_forces_thunks;
    Alcotest.test_case "tracing toggle" `Quick tracing_toggle;
    Alcotest.test_case "run_quiet restores tracing" `Quick
      run_quiet_restores_tracing;
    Alcotest.test_case "quiet matches traced schedule" `Quick
      quiet_matches_traced_schedule;
    Alcotest.test_case "flat kind events" `Quick flat_kind_events;
    Alcotest.test_case "batching toggle equivalence" `Quick
      batching_toggle_equivalence;
    Alcotest.test_case "wheel backend equivalence" `Quick
      wheel_backend_equivalence;
    Alcotest.test_case "oracle bypasses batching" `Quick
      oracle_bypasses_batching;
  ]
