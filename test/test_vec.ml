(* Tests for the growable array. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let push_get () =
  let v = Dsim.Vec.create () in
  for i = 0 to 99 do
    Dsim.Vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Dsim.Vec.length v);
  check Alcotest.int "get 0" 0 (Dsim.Vec.get v 0);
  check Alcotest.int "get 99" (99 * 99) (Dsim.Vec.get v 99);
  check (Alcotest.option Alcotest.int) "last" (Some (99 * 99)) (Dsim.Vec.last v)

let bounds () =
  let v = Dsim.Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index 3 out of bounds (size 3)") (fun () ->
      ignore (Dsim.Vec.get v 3 : int));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Vec.get: index -1 out of bounds (size 3)") (fun () ->
      ignore (Dsim.Vec.get v (-1) : int))

let set () =
  let v = Dsim.Vec.of_list [ 1; 2; 3 ] in
  Dsim.Vec.set v 1 42;
  check (Alcotest.list Alcotest.int) "after set" [ 1; 42; 3 ] (Dsim.Vec.to_list v)

let truncate () =
  let v = Dsim.Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Dsim.Vec.truncate v 2;
  check (Alcotest.list Alcotest.int) "truncated" [ 1; 2 ] (Dsim.Vec.to_list v);
  Dsim.Vec.push v 9;
  check (Alcotest.list Alcotest.int) "push after truncate" [ 1; 2; 9 ]
    (Dsim.Vec.to_list v);
  Alcotest.check_raises "truncate beyond length"
    (Invalid_argument "Vec.truncate: bad length") (fun () -> Dsim.Vec.truncate v 4);
  Dsim.Vec.truncate v 0;
  check Alcotest.bool "truncate to zero" true (Dsim.Vec.is_empty v)

let copy_is_independent () =
  let v = Dsim.Vec.of_list [ 1; 2 ] in
  let w = Dsim.Vec.copy v in
  Dsim.Vec.push w 3;
  Dsim.Vec.set w 0 100;
  check (Alcotest.list Alcotest.int) "original untouched" [ 1; 2 ] (Dsim.Vec.to_list v);
  check (Alcotest.list Alcotest.int) "copy mutated" [ 100; 2; 3 ] (Dsim.Vec.to_list w)

let iteri_and_fold () =
  let v = Dsim.Vec.of_list [ 10; 20; 30 ] in
  let acc = ref [] in
  Dsim.Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "iteri order"
    [ (0, 10); (1, 20); (2, 30) ]
    (List.rev !acc);
  check Alcotest.int "fold sum" 60 (Dsim.Vec.fold_left ( + ) 0 v)

let prop_roundtrip =
  QCheck.Test.make ~name:"to_list (of_list l) = l" ~count:300
    QCheck.(list small_int)
    (fun l -> Dsim.Vec.to_list (Dsim.Vec.of_list l) = l)

let prop_truncate_prefix =
  QCheck.Test.make ~name:"truncate keeps a prefix" ~count:300
    QCheck.(pair (list small_int) small_nat)
    (fun (l, k) ->
      let v = Dsim.Vec.of_list l in
      let k = min k (List.length l) in
      Dsim.Vec.truncate v k;
      Dsim.Vec.to_list v = List.filteri (fun i _ -> i < k) l)

let clear () =
  let v = Dsim.Vec.of_list [ 1; 2; 3 ] in
  Dsim.Vec.clear v;
  Alcotest.(check int) "length 0" 0 (Dsim.Vec.length v);
  Dsim.Vec.push v 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Dsim.Vec.to_list v)

let suite =
  [
    Alcotest.test_case "push/get/last" `Quick push_get;
    Alcotest.test_case "clear" `Quick clear;
    Alcotest.test_case "bounds checking" `Quick bounds;
    Alcotest.test_case "set" `Quick set;
    Alcotest.test_case "truncate" `Quick truncate;
    Alcotest.test_case "copy independence" `Quick copy_is_independent;
    Alcotest.test_case "iteri and fold" `Quick iteri_and_fold;
    qtest prop_roundtrip;
    qtest prop_truncate_prefix;
  ]
