(* Tests for the event-queue binary heap. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let pop_all heap =
  let rec go acc =
    match Dsim.Heap.pop heap with
    | None -> List.rev acc
    | Some (key, v) -> go ((key, v) :: acc)
  in
  go []

let empty_heap () =
  let h = Dsim.Heap.create () in
  check Alcotest.bool "is_empty" true (Dsim.Heap.is_empty h);
  check Alcotest.int "length" 0 (Dsim.Heap.length h);
  check Alcotest.bool "pop None" true (Dsim.Heap.pop h = None);
  check Alcotest.bool "peek None" true (Dsim.Heap.peek_key h = None)

let ordering () =
  let h = Dsim.Heap.create () in
  List.iter (fun k -> Dsim.Heap.add h ~key:k k) [ 5; 1; 4; 1; 3; 9; 0 ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted ascending"
    [ (0, 0); (1, 1); (1, 1); (3, 3); (4, 4); (5, 5); (9, 9) ]
    (pop_all h)

let fifo_on_ties () =
  let h = Dsim.Heap.create () in
  List.iteri (fun i label -> Dsim.Heap.add h ~key:(i mod 2) label)
    [ 10; 11; 12; 13; 14 ];
  (* keys: 10:0 11:1 12:0 13:1 14:0 — ties must pop in insertion order *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "insertion order within equal keys"
    [ (0, 10); (0, 12); (0, 14); (1, 11); (1, 13) ]
    (pop_all h)

let peek_does_not_remove () =
  let h = Dsim.Heap.create () in
  Dsim.Heap.add h ~key:3 0;
  Dsim.Heap.add h ~key:1 1;
  check (Alcotest.option Alcotest.int) "peek min" (Some 1) (Dsim.Heap.peek_key h);
  check Alcotest.int "length unchanged" 2 (Dsim.Heap.length h)

let interleaved () =
  let h = Dsim.Heap.create () in
  Dsim.Heap.add h ~key:10 3;
  Dsim.Heap.add h ~key:1 1;
  check Alcotest.bool "pop early" true (Dsim.Heap.pop h = Some (1, 1));
  Dsim.Heap.add h ~key:5 2;
  check Alcotest.bool "pop mid" true (Dsim.Heap.pop h = Some (5, 2));
  check Alcotest.bool "pop late" true (Dsim.Heap.pop h = Some (10, 3));
  check Alcotest.bool "empty again" true (Dsim.Heap.is_empty h)

let clear () =
  let h = Dsim.Heap.create () in
  for i = 1 to 100 do
    Dsim.Heap.add h ~key:i i
  done;
  Dsim.Heap.clear h;
  check Alcotest.bool "cleared" true (Dsim.Heap.is_empty h);
  Dsim.Heap.add h ~key:1 7;
  check Alcotest.bool "usable after clear" true (Dsim.Heap.pop h = Some (1, 7))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains keys in sorted order" ~count:300
    QCheck.(list small_int)
    (fun keys ->
      let h = Dsim.Heap.create () in
      List.iter (fun k -> Dsim.Heap.add h ~key:k 0) keys;
      let drained = List.map fst (pop_all h) in
      drained = List.sort compare keys)

let prop_heap_stable_sort =
  (* Stronger than sortedness: payloads record insertion order, so this
     checks the insertion-order tie-break (the engine's FIFO guarantee
     for same-time events), not just nondecreasing keys. *)
  QCheck.Test.make ~name:"pop is a stable sort of (key, insertion index)"
    ~count:300
    QCheck.(list small_int)
    (fun keys ->
      let h = Dsim.Heap.create () in
      List.iteri (fun i k -> Dsim.Heap.add h ~key:k i) keys;
      let expected =
        List.stable_sort
          (fun (k1, _) (k2, _) -> compare k1 k2)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      pop_all h = expected)

let clear_then_reuse () =
  (* clear retains the backing array for reuse but must reset the
     tie-break sequence, so a reused heap pops exactly like a fresh
     one — including insertion order on equal keys. *)
  let inserts = [ (3, 20); (1, 21); (3, 22); (0, 23); (1, 24) ] in
  let fresh = Dsim.Heap.create () in
  List.iter (fun (k, v) -> Dsim.Heap.add fresh ~key:k v) inserts;
  let reused = Dsim.Heap.create () in
  for i = 1 to 64 do
    Dsim.Heap.add reused ~key:i i
  done;
  Dsim.Heap.clear reused;
  List.iter (fun (k, v) -> Dsim.Heap.add reused ~key:k v) inserts;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "reused heap pops like a fresh one" (pop_all fresh) (pop_all reused)

let prop_heap_length =
  QCheck.Test.make ~name:"length tracks adds and pops" ~count:300
    QCheck.(list small_int)
    (fun keys ->
      let h = Dsim.Heap.create () in
      List.iteri (fun i k -> Dsim.Heap.add h ~key:k i) keys;
      let n = List.length keys in
      let ok = ref (Dsim.Heap.length h = n) in
      for expected = n - 1 downto 0 do
        ignore (Dsim.Heap.pop h : (int * int) option);
        if Dsim.Heap.length h <> expected then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick empty_heap;
    Alcotest.test_case "ordering" `Quick ordering;
    Alcotest.test_case "FIFO on ties" `Quick fifo_on_ties;
    Alcotest.test_case "peek does not remove" `Quick peek_does_not_remove;
    Alcotest.test_case "interleaved add/pop" `Quick interleaved;
    Alcotest.test_case "clear" `Quick clear;
    Alcotest.test_case "clear then reuse" `Quick clear_then_reuse;
    qtest prop_heap_sorts;
    qtest prop_heap_stable_sort;
    qtest prop_heap_length;
  ]
