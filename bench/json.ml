(* Minimal JSON support for the bench baseline: a value type, a writer,
   and a recursive-descent parser — just enough to emit BENCH_core.json
   and validate it in CI without adding a dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------ writer -- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  (* JSON has no inf/nan literals. *)
  if not (Float.is_finite f) then "0" else Printf.sprintf "%.6g" f

let rec write buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          write buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          write buf ~indent:(indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------ parser -- *)

exception Parse_error of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub text !pos 4) in
              pos := !pos + 4;
              (* ASCII only; good enough for our own output *)
              Buffer.add_char buf (Char.chr (code land 0x7f));
              go ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); field ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          field ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --------------------------------------------------------- accessors -- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
