(* Benchmark harness.

   Two parts, mirroring the per-experiment index in DESIGN.md:

   1. The table harness — regenerates every experiment table (E1..E8) by
      calling [Workload.Experiments], exactly what `oocon experiments`
      does.  Pass "tables-only" or "bench-only" to run half.  Pass "full"
      for the full-scale workloads (default: quick).

   2. Bechamel micro-benchmarks — one [Test.make] per experiment id,
      timing the core simulated run each table is built from, plus the
      decomposed-vs-monolithic pairs behind E8's modularity-cost claim. *)

open Bechamel
open Toolkit

let split_inputs n = Array.init n (fun i -> i mod 2 = 0)

(* --- benchmark bodies (one representative run per experiment) ---------- *)

let benor_run mode seed =
  let cfg =
    {
      (Ben_or.Runner.default_config ~n:8 ~inputs:(split_inputs 8)) with
      seed = Int64.of_int seed;
      mode;
    }
  in
  ignore (Ben_or.Runner.run cfg : Ben_or.Runner.report)

let benor_crashy seed =
  let cfg =
    {
      (Ben_or.Runner.default_config ~n:8 ~inputs:(split_inputs 8)) with
      seed = Int64.of_int seed;
      crash_schedule = [ (10, 0); (21, 2); (32, 4) ];
    }
  in
  ignore (Ben_or.Runner.run cfg : Ben_or.Runner.report)

let phase_king_run ?(n = 10) mode seed =
  let cfg =
    {
      (Phase_king.Runner.default_config ~n ~inputs:(Array.init n (fun i -> i mod 2)))
      with
      seed = Int64.of_int seed;
      strategy = Phase_king.Strategies.camp_splitter;
      mode;
    }
  in
  ignore (Phase_king.Runner.run cfg : Phase_king.Runner.report)

let raft_run ?(crash = false) seed =
  let cl = Raft.Cluster.create ~seed:(Int64.of_int seed) ~n:5 () in
  let cons =
    Raft.Consensus_raft.create ~cluster:cl ~inputs:(Array.init 5 (fun i -> 100 + i))
  in
  Raft.Cluster.start cl;
  if crash then begin
    ignore
      (Raft.Cluster.run_until cl (fun () -> Raft.Cluster.current_leader cl <> None)
      : bool);
    match Raft.Cluster.current_leader cl with
    | Some l -> Raft.Cluster.crash cl l
    | None -> ()
  end;
  ignore (Raft.Consensus_raft.run_until_all_decided ~timeout:300_000 cons : bool)

module Sm = Sharedmem.Protocol.Make (Consensus.Objects.Bool_value)

let sharedmem_run seed =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
  let world = Sharedmem.World.create eng () in
  let shared = Sm.create_shared ~n:6 world in
  for i = 0 to 5 do
    ignore
      (Dsim.Engine.spawn eng (fun ectx ->
           let ctx = { Sm.shared; proc = { Sharedmem.World.world; me = i; ectx } } in
           ignore (Sm.Consensus_sm.consensus ctx (i mod 2 = 0) : bool * int))
      : Dsim.Engine.pid)
  done;
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome)

let vac_from_two_ac_run seed =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
  let world = Sharedmem.World.create eng () in
  let shared = Sm.create_shared ~n:5 world in
  for i = 0 to 4 do
    ignore
      (Dsim.Engine.spawn eng (fun ectx ->
           let ctx = { Sm.shared; proc = { Sharedmem.World.world; me = i; ectx } } in
           ignore (Sm.Vac.invoke ctx ~round:1 (i mod 2 = 0) : bool Consensus.Types.vac_result))
      : Dsim.Engine.pid)
  done;
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome)

let decentralized_run seed =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) ~trace_capacity:1_000 () in
  let net = Netsim.Async_net.create eng ~n:7 ~retain_inbox:false () in
  for i = 0 to 6 do
    ignore
      (Dsim.Engine.spawn eng (fun _ectx ->
           let ctx =
             Raft.Decentralized.make_ctx ~net ~me:i ~faults:3 ~input:(100 + (i mod 3))
           in
           ignore
             (Raft.Decentralized.Consensus_decentralized.consensus ~max_rounds:500 ctx
                (100 + (i mod 3))
             : int * int))
      : Dsim.Engine.pid)
  done;
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome)

let rsm_run backend seed =
  ignore
    (Workload.Rsm_load.run_one ~n:5 ~clients:4 ~commands:2 ~batch:8 ~seed ~backend ()
      : Obj.Kv.op Rsm.Runner.report * Workload.Rsm_load.summary)

let rsm_durable_run ~snapshot_every backend seed =
  let store = { Rsm.Runner.default_store_config with snapshot_every } in
  ignore
    (Workload.Rsm_load.run_one ~n:5 ~clients:4 ~commands:2 ~batch:8 ~seed ~store
       ~backend ()
      : Obj.Kv.op Rsm.Runner.report * Workload.Rsm_load.summary)

(* WAL overhead and snapshot/compaction cost vs the in-memory baseline:
   same workload three ways — no store, WAL only (ack gated on fsync, no
   snapshots), WAL + snapshot-every-4.  Virtual time measures protocol
   cost (fsync stalls, floor round-trips); appends/fsyncs/compacted come
   straight from the disks' counters. *)
type store_row = {
  so_backend : string;
  so_store : string;
  so_vt : int;
  so_thr : float;
  so_appends : int;
  so_fsyncs : int;
  so_snapshots : int;
  so_compacted : int;
  so_ok : bool;
}

let store_overhead_rows ~scale =
  let clients, commands = if scale = Workload.Experiments.Full then (6, 6) else (4, 3) in
  let rows =
    List.concat_map
      (fun backend ->
        List.map
          (fun (label, store) ->
            let runs =
              List.map
                (fun seed ->
                  Workload.Rsm_load.run_one ~n:5 ~clients ~commands ~batch:4
                    ~seed ~quiet:true ?store ~backend ())
                [ 1; 2; 3 ]
            in
            let avg f =
              List.fold_left (fun a r -> a + f r) 0 runs / List.length runs
            in
            let sum_stats f =
              avg (fun (r, _) ->
                  Array.fold_left (fun a st -> a + f st) 0 r.Rsm.Runner.store_stats)
            in
            {
              so_backend = Rsm.Backend.name backend;
              so_store = label;
              so_vt = avg (fun (r, _) -> r.Rsm.Runner.virtual_time);
              so_thr =
                List.fold_left
                  (fun a (_, s) -> a +. s.Workload.Rsm_load.throughput)
                  0. runs
                /. float_of_int (List.length runs);
              so_appends = sum_stats (fun st -> st.Store.Disk.appends);
              so_fsyncs = sum_stats (fun st -> st.Store.Disk.fsyncs);
              so_snapshots = sum_stats (fun st -> st.Store.Disk.snapshots_taken);
              so_compacted = sum_stats (fun st -> st.Store.Disk.compacted_records);
              so_ok = List.for_all (fun (_, s) -> s.Workload.Rsm_load.ok) runs;
            })
          [
            ("none", None);
            ("wal", Some { Rsm.Runner.default_store_config with snapshot_every = 0 });
            ("wal+snap4", Some Rsm.Runner.default_store_config);
          ])
      Rsm.Backend.all
  in
  (clients, commands, rows)

let store_overhead_table ~scale ppf =
  let clients, commands, rows = store_overhead_rows ~scale in
  Format.fprintf ppf
    "@.Durable-store overhead (n=5, %d clients x %d cmds, seed-averaged x3)@."
    clients commands;
  Format.fprintf ppf
    "%-12s %-14s %8s %10s %8s %8s %6s %10s@." "backend" "store" "vt"
    "thr/kvt" "appends" "fsyncs" "snaps" "compacted";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %-14s %8d %10.2f %8d %8d %6d %10d@."
        r.so_backend r.so_store r.so_vt r.so_thr r.so_appends r.so_fsyncs
        r.so_snapshots r.so_compacted;
      if not r.so_ok then
        Format.fprintf ppf "  WARNING: %s/%s reported violations@." r.so_backend
          r.so_store)
    rows

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* The sharded scaling load: the same client traffic at every shard
   count, so single-shard ops/kvt should grow with shards while the
   cross-shard 2PC mix pays for coordination. *)
let shard_bench_load =
  {
    Workload.Load.default with
    Workload.Load.clients = 192;
    ops_per_client = 3;
    keys = 512;
    tx_pct = 10;
    tx_span = 2;
  }

let shard_scaling_rows ~scale =
  let seeds = if scale = Workload.Experiments.Full then 3 else 1 in
  Workload.Shard_load.sweep_shards ~shard_counts:[ 1; 2; 4 ]
    ~load:shard_bench_load ~seeds ~backends:[ Rsm.Backend.ben_or ] null_ppf

let shard_run ?(shards = 4) backend seed =
  ignore
    (Workload.Shard_load.run_one ~shards ~seed
       ~load:
         {
           shard_bench_load with
           Workload.Load.clients = 32;
           ops_per_client = 2;
         }
       ~backend ()
      : Shard.Runner.report * Workload.Shard_load.summary)

(* One fault-injected RSM run: generate a seeded plan, install it, audit. *)
let nemesis_run backend seed =
  let cfg = Nemesis.Campaign.default_config ~n:5 () in
  let plan = Nemesis.Campaign.plan_for cfg ~seed in
  ignore
    (Nemesis.Campaign.run_plan cfg ~backend ~seed plan
      : Obj.Kv.op Rsm.Runner.report)

(* Campaign throughput: a whole seeded sweep through the safety auditor,
   reported as runs/sec and faults injected (the numbers `oocon nemesis`
   prints), one backend to keep the quick scale quick. *)
let nemesis_campaign_table ~scale ppf =
  let plans = if scale = Workload.Experiments.Full then 200 else 40 in
  let cfg =
    {
      (Nemesis.Campaign.default_config ~n:5 ()) with
      Nemesis.Campaign.backends = [ Rsm.Backend.ben_or ];
      plans;
    }
  in
  let r = Nemesis.Campaign.run cfg in
  Format.fprintf ppf
    "@.Nemesis campaign (ben-or, %d plans): %d runs, %d faults injected, \
     %.0f runs/sec, %d safety failures, %d incomplete@."
    plans r.Nemesis.Campaign.runs r.Nemesis.Campaign.faults_injected
    r.Nemesis.Campaign.runs_per_sec
    (List.length r.Nemesis.Campaign.safety_failures)
    (List.length r.Nemesis.Campaign.incomplete)

(* --- machine-readable baseline (BENCH_core.json) ----------------------- *)

(* The engine hot loop under both profiles: four processes stepping the
   virtual clock [iters] times each, every step emitting a thunked trace
   line.  Traced forces each thunk (sprintf + trace record); quiet drops
   it before allocation, so the alloc-per-event delta is exactly the
   cost lazy emission removes from campaign runs. *)
let engine_profile ~tracing ~iters =
  let eng = Dsim.Engine.create ~seed:42L ~trace_capacity:1_024 () in
  for p = 0 to 3 do
    ignore
      (Dsim.Engine.spawn eng (fun ctx ->
           for i = 1 to iters do
             Dsim.Engine.emitk eng ~tag:"bench" (fun () ->
                 Printf.sprintf "process %d step %d" p i);
             Dsim.Engine.sleep ctx 1
           done)
        : Dsim.Engine.pid)
  done;
  (* Both profiles start from the same (traced) engine; the quiet one
     goes through [run_quiet], the campaign/bench entry point. *)
  let run = if tracing then Dsim.Engine.run else Dsim.Engine.run_quiet in
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  ignore (run eng : Dsim.Engine.outcome);
  let wall = Unix.gettimeofday () -. t0 in
  let alloc = Gc.allocated_bytes () -. a0 in
  let events = float_of_int (4 * iters) in
  (events /. Float.max wall 1e-9, alloc /. events)

(* The flat hot path: self-rescheduling registered-kind events — no
   fiber, no closure per event, the emitk thunk is the only per-event
   allocation (and quiet drops it before the trace record).  This is
   the path Async_net deliveries, timers and detector wakers compile
   to, so its quiet figure is the engine's raw event throughput. *)
let engine_flat_profile ~tracing ~iters =
  let eng = Dsim.Engine.create ~seed:42L ~trace_capacity:1_024 () in
  let sources = 4 in
  let remaining = Array.make sources iters in
  let k = ref (-1) in
  k :=
    Dsim.Engine.register_kind eng (fun src ->
        (* Guarding the thunk on [tracing] is the idiom the flat layers
           use (Async_net's quiet path allocates nothing per delivery),
           so the quiet figure is the engine's raw event cost. *)
        if Dsim.Engine.tracing eng then
          Dsim.Engine.emitk eng ~tag:"bench" (fun () ->
              Printf.sprintf "source %d step" src);
        let r = remaining.(src) - 1 in
        remaining.(src) <- r;
        if r > 0 then
          Dsim.Engine.schedule_kind eng ~owner:(-1) ~delay:1 ~kind:!k src);
  for src = 0 to sources - 1 do
    Dsim.Engine.schedule_kind eng ~owner:(-1) ~delay:1 ~kind:!k src
  done;
  let run = if tracing then Dsim.Engine.run else Dsim.Engine.run_quiet in
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  ignore (run eng : Dsim.Engine.outcome);
  let wall = Unix.gettimeofday () -. t0 in
  let alloc = Gc.allocated_bytes () -. a0 in
  let events = float_of_int (sources * iters) in
  (events /. Float.max wall 1e-9, alloc /. events)

(* Heap-vs-wheel on the workloads where the queue backend matters:
   many concurrent timers (the wheel's O(1) add/pop vs the heap's
   O(log n) sifts), a timer-driven Raft cluster, and the heartbeat
   failure detector. *)
let flat_timer_wall ~queue ~sources ~iters =
  let eng = Dsim.Engine.create ~seed:7L ~tracing:false ~queue () in
  let remaining = Array.make sources iters in
  let k = ref (-1) in
  let fire eng src =
    Dsim.Engine.schedule_kind eng ~owner:(-1)
      ~delay:(1 + (src * 7 land 63))
      ~kind:!k src
  in
  k :=
    Dsim.Engine.register_kind eng (fun src ->
        let r = remaining.(src) - 1 in
        remaining.(src) <- r;
        if r > 0 then fire eng src);
  for src = 0 to sources - 1 do
    fire eng src
  done;
  let t0 = Unix.gettimeofday () in
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  (Unix.gettimeofday () -. t0, sources * iters)

let raft_queue_wall ~queue ~rounds =
  let t0 = Unix.gettimeofday () in
  for seed = 1 to rounds do
    let cl = Raft.Cluster.create ~seed:(Int64.of_int seed) ~queue ~n:5 () in
    let cons =
      Raft.Consensus_raft.create ~cluster:cl
        ~inputs:(Array.init 5 (fun i -> 100 + i))
    in
    Raft.Cluster.start cl;
    ignore (Raft.Consensus_raft.run_until_all_decided ~timeout:300_000 cons : bool)
  done;
  Unix.gettimeofday () -. t0

let detect_queue_wall ~queue ~rounds =
  let t0 = Unix.gettimeofday () in
  for seed = 1 to rounds do
    ignore
      (Detect.Runner.run ~n:8 ~seed:(Int64.of_int seed) ~quiet:true ~queue ()
        : Detect.Runner.report)
  done;
  Unix.gettimeofday () -. t0

let queue_compare_rows () =
  let backends = [ ("heap", Dsim.Equeue.Heap); ("wheel", Dsim.Equeue.Wheel) ] in
  let row ~workload ~backend ~wall ~events =
    Json.Obj
      [
        ("workload", Json.String workload);
        ("backend", Json.String backend);
        ("wall_seconds", Json.Float wall);
        ( "events_per_sec",
          match events with
          | Some e -> Json.Float (float_of_int e /. Float.max wall 1e-9)
          | None -> Json.Null );
      ]
  in
  List.concat_map
    (fun (name, queue) ->
      (* 4096 concurrent timers: enough in-flight events that the
         backends' asymptotics (heap O(log n) sift vs wheel O(1) slot
         append) actually separate. *)
      let tw, tev = flat_timer_wall ~queue ~sources:4_096 ~iters:600 in
      [
        row ~workload:"flat-timers.4k" ~backend:name ~wall:tw ~events:(Some tev);
        row ~workload:"raft-smoke.n5" ~backend:name
          ~wall:(raft_queue_wall ~queue ~rounds:40)
          ~events:None;
        row ~workload:"detect.n8" ~backend:name
          ~wall:(detect_queue_wall ~queue ~rounds:40)
          ~events:None;
      ])
    backends

let campaign_scaling ~plans jobs_list =
  let cfg =
    {
      (Nemesis.Campaign.default_config ~n:5 ()) with
      Nemesis.Campaign.backends = [ Rsm.Backend.ben_or ];
      plans;
      storage = true;
    }
  in
  List.map (fun jobs -> (jobs, Nemesis.Campaign.run ~jobs cfg)) jobs_list

(* One bounded exploration, reported as schedules/sec.  Kept small: the
   json baseline runs on every CI build. *)
let mcheck_cell ~model ~depth ?(reduction = Mcheck.Explorer.Rsleep) make_model =
  let config = { Mcheck.Explorer.default_config with depth; reduction } in
  let r = Mcheck.Explorer.explore ~jobs:1 ~config (make_model ()) in
  let rate =
    if r.Mcheck.Explorer.r_wall > 0. then
      float_of_int r.Mcheck.Explorer.r_executions /. r.Mcheck.Explorer.r_wall
    else 0.
  in
  Json.Obj
    [
      ("model", Json.String model);
      ("depth", Json.Int depth);
      ("reduction", Json.String (Mcheck.Explorer.reduction_name reduction));
      ("executions", Json.Int r.Mcheck.Explorer.r_executions);
      ("violating", Json.Int r.Mcheck.Explorer.r_violating);
      ("schedules_per_sec", Json.Float rate);
    ]

(* One PCT sampling campaign: the empirical bug-finding probability per
   schedule at a fixed budget — the figure of merit for randomized
   testing where exhaustive sweeps are hopeless.  Deterministic for a
   fixed seed, so the baseline can pin it. *)
let pct_cell ~model ~schedules make_model =
  let config = { Mcheck.Pct.default_config with Mcheck.Pct.schedules } in
  let r = Mcheck.Pct.run ~jobs:1 ~config (make_model ()) in
  let rate =
    if r.Mcheck.Pct.pr_wall > 0. then
      float_of_int schedules /. r.Mcheck.Pct.pr_wall
    else 0.
  in
  Json.Obj
    [
      ("model", Json.String model);
      ("schedules", Json.Int schedules);
      ("d", Json.Int config.Mcheck.Pct.d);
      ("violating", Json.Int r.Mcheck.Pct.pr_violating);
      ("probability", Json.Float r.Mcheck.Pct.pr_probability);
      ("schedules_per_sec", Json.Float rate);
    ]

(* Per-object universal-construction rows: the object's own sequential
   [apply] throughput, and the Wing–Gong checker's price on a real
   replicated history (states visited, wall seconds, verdict).  One row
   per registry instance — the checker cost is the part that scales
   badly (memoized exponential), so it gets its own column. *)
let obj_row (type a) name (module O : Obj.Spec.S with type op = a) =
  let rng = Dsim.Rng.create 11L in
  let stream =
    Array.init 64 (fun k ->
        O.gen_op ~rng
          ~key:(Printf.sprintf "k%d" (k mod 8))
          ~tag:(Printf.sprintf "b%d" k))
  in
  let iters = 50_000 in
  let st = ref O.init in
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    st := fst (O.apply !st stream.(i mod Array.length stream))
  done;
  let apply_wall = Unix.gettimeofday () -. t0 in
  ignore (O.digest !st : string);
  let module Rep = Obj.Replicated.Make (O) in
  let ops =
    Workload.Load.gen_obj_ops (module O) ~seed:5L ~clients:3 ~commands:6 ()
  in
  let r =
    Rsm.Runner.run (Rep.app ())
      { (Rsm.Runner.default_config ~n:5 ~ops) with quiet = true }
  in
  let t0 = Unix.gettimeofday () in
  let wg = Rep.check r.Rsm.Runner.history in
  let wg_wall = Unix.gettimeofday () -. t0 in
  let linearizable =
    match wg.Rep.W.verdict with Rep.W.Linearizable _ -> true | _ -> false
  in
  Json.Obj
    [
      ("object", Json.String name);
      ( "apply_ops_per_sec",
        Json.Float (float_of_int iters /. Float.max apply_wall 1e-9) );
      ("history_events", Json.Int (List.length r.Rsm.Runner.history));
      ("wg_states", Json.Int wg.Rep.W.states);
      ("wg_seconds", Json.Float wg_wall);
      ("linearizable", Json.Bool linearizable);
    ]

let obj_rows () =
  List.map
    (fun (name, (module O : Obj.Spec.S)) -> obj_row name (module O))
    Obj.Registry.all

let bench_core_json () =
  let cores = Exec.Pool.cores () in
  let row events_per_sec alloc_per_event =
    Json.Obj
      [
        ("events_per_sec", Json.Float events_per_sec);
        ("alloc_bytes_per_event", Json.Float alloc_per_event);
      ]
  in
  let profile ~flat tracing =
    let p = if flat then engine_flat_profile else engine_profile in
    let events_per_sec, alloc_per_event =
      p ~tracing ~iters:(if flat then 500_000 else 50_000)
    in
    row events_per_sec alloc_per_event
  in
  (* The headline traced/quiet rows measure the flat registered-kind
     path — what network deliveries, timers and detector wakers cost.
     The fiber rows keep the old effect-suspension workload visible:
     its floor is the ~70ns perform+continue round trip per event,
     which no queue work can remove.  Traced first in each pair so its
     trace buffers don't sit in quiet's Gc delta. *)
  let traced = profile ~flat:true true in
  let quiet = profile ~flat:true false in
  let fiber_traced = profile ~flat:false true in
  let fiber_quiet = profile ~flat:false false in
  let campaign =
    (* [cores] rides at the recommended-domain cap; anything above it
       would be oversubscribed and is tagged so readers don't take the
       flat spot beyond the cap for a scaling defect. *)
    let cap = Domain.recommended_domain_count () in
    let jobs_list = List.sort_uniq compare [ 1; 2; 4; cores ] in
    List.map
      (fun (jobs, (r : Nemesis.Campaign.report)) ->
        Json.Obj
          [
            ("jobs", Json.Int jobs);
            ("oversubscribed", Json.Bool (jobs > cap));
            ("runs", Json.Int r.Nemesis.Campaign.runs);
            ("wall_seconds", Json.Float r.Nemesis.Campaign.wall_seconds);
            ("runs_per_sec", Json.Float r.Nemesis.Campaign.runs_per_sec);
            ( "safety_failures",
              Json.Int (List.length r.Nemesis.Campaign.safety_failures) );
            ( "durability_failures",
              Json.Int (List.length r.Nemesis.Campaign.durability_failures) );
          ])
      (campaign_scaling ~plans:300 jobs_list)
  in
  let rsm =
    List.map
      (fun (s : Workload.Rsm_load.summary) ->
        Json.Obj
          [
            ("backend", Json.String s.Workload.Rsm_load.backend_name);
            ("batch", Json.Int s.Workload.Rsm_load.batch);
            ("throughput_per_kvt", Json.Float s.Workload.Rsm_load.throughput);
            ("ok", Json.Bool s.Workload.Rsm_load.ok);
          ])
      (Workload.Rsm_load.sweep_batches ~clients:12 ~commands:3 ~seeds:1 null_ppf)
  in
  let wal =
    let _, _, rows = store_overhead_rows ~scale:Workload.Experiments.Quick in
    List.map
      (fun r ->
        Json.Obj
          [
            ("backend", Json.String r.so_backend);
            ("store", Json.String r.so_store);
            ("virtual_time", Json.Int r.so_vt);
            ("throughput_per_kvt", Json.Float r.so_thr);
            ("appends", Json.Int r.so_appends);
            ("fsyncs", Json.Int r.so_fsyncs);
            ("snapshots", Json.Int r.so_snapshots);
            ("compacted", Json.Int r.so_compacted);
            ("ok", Json.Bool r.so_ok);
          ])
      rows
  in
  let shard =
    List.map
      (fun (s : Workload.Shard_load.summary) ->
        Json.Obj
          [
            ("backend", Json.String s.Workload.Shard_load.backend_name);
            ("shards", Json.Int s.Workload.Shard_load.shards);
            ("clients", Json.Int s.Workload.Shard_load.clients);
            ("singles_acked", Json.Int s.Workload.Shard_load.singles_acked);
            ("txs_committed", Json.Int s.Workload.Shard_load.txs_committed);
            ("txs_aborted", Json.Int s.Workload.Shard_load.txs_aborted);
            ("abort_rate", Json.Float s.Workload.Shard_load.abort_rate);
            ("virtual_time", Json.Int s.Workload.Shard_load.virtual_time);
            ("throughput_per_kvt", Json.Float s.Workload.Shard_load.throughput);
            ("ok", Json.Bool s.Workload.Shard_load.ok);
          ])
      (shard_scaling_rows ~scale:Workload.Experiments.Quick)
  in
  let mcheck =
    [
      mcheck_cell ~model:"toy-ac" ~depth:8 (fun () ->
          Mcheck.Models.toy_ac ~check_termination:true ());
      mcheck_cell ~model:"toy-ac" ~depth:8 ~reduction:Mcheck.Explorer.Rdpor
        (fun () -> Mcheck.Models.toy_ac ~check_termination:true ());
      mcheck_cell ~model:"ben-or" ~depth:5 (fun () ->
          Mcheck.Models.benor ~check_termination:false ());
    ]
  in
  let pct =
    [
      pct_cell ~model:"toy-ac-broken" ~schedules:2000 (fun () ->
          Mcheck.Models.toy_ac ~broken:true ~check_termination:true ());
    ]
  in
  let detect =
    let row kind (c : Workload.Detect_load.summary) =
      Json.Obj
        [
          ("kind", Json.String kind);
          ("period", Json.Int c.Workload.Detect_load.period);
          ("window", Json.Int c.Workload.Detect_load.window);
          ( "mean_decision_latency",
            match c.Workload.Detect_load.mean_latency with
            | Some m -> Json.Float m
            | None -> Json.Null );
          ( "mean_omega_stability",
            match c.Workload.Detect_load.mean_stability with
            | Some m -> Json.Float m
            | None -> Json.Null );
          ("suspicions", Json.Int c.Workload.Detect_load.suspicions);
          ( "false_suspicions",
            Json.Int c.Workload.Detect_load.false_suspicions );
          ( "heartbeats_per_kvt",
            Json.Float c.Workload.Detect_load.heartbeats_per_kvt );
          ("ok", Json.Bool c.Workload.Detect_load.ok);
        ]
    in
    List.map (row "window")
      (Workload.Detect_load.sweep_windows ~seeds:2 null_ppf)
    @ List.map (row "period")
        (Workload.Detect_load.sweep_periods ~seeds:2 null_ppf)
  in
  Json.Obj
    [
      ("schema", Json.String "oocon-bench-core/6");
      ("cores", Json.Int cores);
      ( "engine",
        Json.Obj
          [
            ("traced", traced);
            ("quiet", quiet);
            ("fiber_traced", fiber_traced);
            ("fiber_quiet", fiber_quiet);
          ] );
      ("queue_compare", Json.List (queue_compare_rows ()));
      ("campaign", Json.List campaign);
      ("rsm", Json.List rsm);
      ("obj", Json.List (obj_rows ()));
      ("shard", Json.List shard);
      ("wal_overhead", Json.List wal);
      ("mcheck", Json.List mcheck);
      ("pct", Json.List pct);
      ("detect", Json.List detect);
    ]

let write_bench_json file =
  let json = bench_core_json () in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Json.to_string json));
  Format.printf "bench baseline written to %s@." file

(* Schema check for CI: parse errors, missing keys, wrong types, and
   figures that make no sense (zero rates, quiet allocating more than
   traced) all fail the build. *)
let validate_bench_json file =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match
     Json.parse (In_channel.with_open_text file In_channel.input_all)
   with
  | exception Json.Parse_error msg -> err "parse error: %s" msg
  | exception Sys_error msg -> err "cannot read: %s" msg
  | v ->
      let open Json in
      (match Option.bind (member "schema" v) to_string_opt with
      | Some "oocon-bench-core/6" -> ()
      | Some other -> err "unexpected schema %S" other
      | None -> err "missing schema");
      (match Option.bind (member "cores" v) to_int with
      | Some c when c >= 1 -> ()
      | Some c -> err "cores must be >= 1, got %d" c
      | None -> err "missing cores");
      let engine_field profile key =
        Option.bind (member "engine" v) (fun e ->
            Option.bind (member profile e) (fun p ->
                Option.bind (member key p) to_float))
      in
      let check_profile profile =
        (match engine_field profile "events_per_sec" with
        | Some r when r > 0. -> ()
        | Some _ -> err "engine.%s.events_per_sec must be > 0" profile
        | None -> err "missing engine.%s.events_per_sec" profile);
        match engine_field profile "alloc_bytes_per_event" with
        | Some a when a >= 0. -> ()
        | Some _ -> err "engine.%s.alloc_bytes_per_event must be >= 0" profile
        | None -> err "missing engine.%s.alloc_bytes_per_event" profile
      in
      check_profile "traced";
      check_profile "quiet";
      check_profile "fiber_traced";
      check_profile "fiber_quiet";
      List.iter
        (fun (q_prof, t_prof) ->
          match
            ( engine_field q_prof "alloc_bytes_per_event",
              engine_field t_prof "alloc_bytes_per_event" )
          with
          | Some q, Some t when q >= t ->
              err "%s profile allocates %.1f B/event, %s only %.1f" q_prof q
                t_prof t
          | _ -> ())
        [ ("quiet", "traced"); ("fiber_quiet", "fiber_traced") ];
      (match Option.bind (member "queue_compare" v) to_list with
      | Some (_ :: _ as rows) ->
          List.iteri
            (fun i row ->
              (match Option.bind (member "workload" row) to_string_opt with
              | Some _ -> ()
              | None -> err "queue_compare[%d]: missing workload" i);
              (match Option.bind (member "backend" row) to_string_opt with
              | Some ("heap" | "wheel") -> ()
              | _ -> err "queue_compare[%d]: backend must be heap|wheel" i);
              match Option.bind (member "wall_seconds" row) to_float with
              | Some w when w > 0. -> ()
              | _ -> err "queue_compare[%d]: bad wall_seconds" i)
            rows
      | Some [] -> err "queue_compare is empty"
      | None -> err "missing queue_compare");
      (match Option.bind (member "campaign" v) to_list with
      | Some (_ :: _ as cells) ->
          List.iteri
            (fun i cell ->
              let num key = Option.bind (member key cell) to_float in
              (match Option.bind (member "jobs" cell) to_int with
              | Some j when j >= 1 -> ()
              | _ -> err "campaign[%d]: bad jobs" i);
              (match Option.bind (member "oversubscribed" cell) to_bool with
              | Some _ -> ()
              | None -> err "campaign[%d]: missing oversubscribed" i);
              (match num "runs" with
              | Some r when r > 0. -> ()
              | _ -> err "campaign[%d]: bad runs" i);
              match num "runs_per_sec" with
              | Some r when r > 0. -> ()
              | _ -> err "campaign[%d]: bad runs_per_sec" i)
            cells
      | Some [] -> err "campaign is empty"
      | None -> err "missing campaign");
      let check_rows key fields =
        match Option.bind (member key v) to_list with
        | Some (_ :: _ as rows) ->
            List.iteri
              (fun i row ->
                List.iter
                  (fun f ->
                    if member f row = None then err "%s[%d]: missing %s" key i f)
                  fields)
              rows
        | Some [] -> err "%s is empty" key
        | None -> err "missing %s" key
      in
      check_rows "rsm" [ "backend"; "batch"; "throughput_per_kvt"; "ok" ];
      check_rows "obj"
        [
          "object";
          "apply_ops_per_sec";
          "history_events";
          "wg_states";
          "wg_seconds";
          "linearizable";
        ];
      (match Option.bind (member "obj" v) to_list with
      | Some rows ->
          List.iteri
            (fun i row ->
              (match Option.bind (member "apply_ops_per_sec" row) to_float with
              | Some r when r > 0. -> ()
              | _ -> err "obj[%d]: bad apply_ops_per_sec" i);
              (match Option.bind (member "wg_states" row) to_int with
              | Some s when s >= 1 -> ()
              | _ -> err "obj[%d]: bad wg_states" i);
              match Option.bind (member "linearizable" row) to_bool with
              | Some true -> ()
              | _ -> err "obj[%d]: history not linearizable" i)
            rows
      | None -> ());
      check_rows "shard"
        [
          "backend";
          "shards";
          "singles_acked";
          "txs_committed";
          "abort_rate";
          "throughput_per_kvt";
          "ok";
        ];
      (match Option.bind (member "shard" v) to_list with
      | Some rows ->
          List.iteri
            (fun i row ->
              (match Option.bind (member "shards" row) to_int with
              | Some s when s >= 1 -> ()
              | _ -> err "shard[%d]: bad shards" i);
              (match Option.bind (member "throughput_per_kvt" row) to_float with
              | Some t when t > 0. -> ()
              | _ -> err "shard[%d]: bad throughput_per_kvt" i);
              match Option.bind (member "ok" row) to_bool with
              | Some true -> ()
              | _ -> err "shard[%d]: run reported violations" i)
            rows
      | None -> ());
      check_rows "wal_overhead"
        [ "backend"; "store"; "virtual_time"; "appends"; "fsyncs"; "ok" ];
      check_rows "mcheck"
        [
          "model";
          "depth";
          "reduction";
          "executions";
          "violating";
          "schedules_per_sec";
        ];
      check_rows "pct"
        [
          "model";
          "schedules";
          "d";
          "violating";
          "probability";
          "schedules_per_sec";
        ];
      check_rows "detect"
        [
          "kind";
          "period";
          "window";
          "suspicions";
          "false_suspicions";
          "heartbeats_per_kvt";
          "ok";
        ];
      (match Option.bind (member "detect" v) to_list with
      | Some rows ->
          List.iteri
            (fun i row ->
              (match Option.bind (member "heartbeats_per_kvt" row) to_float with
              | Some h when h > 0. -> ()
              | _ -> err "detect[%d]: bad heartbeats_per_kvt" i);
              (match Option.bind (member "kind" row) to_string_opt with
              | Some "window" -> (
                  (* the window sweep exists to show the latency curve *)
                  match
                    Option.bind (member "mean_decision_latency" row) to_float
                  with
                  | Some l when l > 0. -> ()
                  | _ -> err "detect[%d]: window row lacks decision latency" i)
              | Some "period" -> ()
              | _ -> err "detect[%d]: bad kind" i);
              match Option.bind (member "ok" row) to_bool with
              | Some true -> ()
              | _ -> err "detect[%d]: run reported violations or no decision" i)
            rows
      | None -> ());
      (match Option.bind (member "mcheck" v) to_list with
      | Some rows ->
          List.iteri
            (fun i row ->
              (match Option.bind (member "executions" row) to_int with
              | Some e when e >= 1 -> ()
              | _ -> err "mcheck[%d]: bad executions" i);
              match Option.bind (member "schedules_per_sec" row) to_float with
              | Some r when r > 0. -> ()
              | _ -> err "mcheck[%d]: bad schedules_per_sec" i)
            rows
      | None -> ());
      (match Option.bind (member "pct" v) to_list with
      | Some rows ->
          List.iteri
            (fun i row ->
              (match Option.bind (member "schedules" row) to_int with
              | Some s when s >= 1 -> ()
              | _ -> err "pct[%d]: bad schedules" i);
              match Option.bind (member "probability" row) to_float with
              | Some p when p >= 0. && p <= 1. -> ()
              | _ -> err "pct[%d]: probability outside [0, 1]" i)
            rows
      | None -> ()));
  match List.rev !errors with
  | [] ->
      Format.printf "%s: valid oocon-bench-core/6 baseline@." file;
      0
  | errs ->
      List.iter (Format.eprintf "%s: %s@." file) errs;
      1

(* --- baseline comparison (S2) ------------------------------------------

   [--compare OLD.json] collects every numeric leaf of the old and new
   baselines as a dotted path, prints per-metric deltas, and exits
   non-zero if the headline quiet engine throughput regressed by more
   than the threshold.  The new side is regenerated in-process unless
   [--compare-to NEW.json] points at an already-written baseline (CI
   reuses the fresh file it just validated). *)

let collect_metrics json =
  let out = ref [] in
  (* Rows inside lists are labelled by their identifying fields — the
     string-valued members plus the small-int discriminators — so the
     same logical cell lines up across files even if row order moves. *)
  let row_label i item =
    let tags =
      match item with
      | Json.Obj fields ->
          List.filter_map
            (fun (k, v) ->
              match v with
              | Json.String s -> Some s
              | Json.Int n
                when List.mem k
                       [ "jobs"; "shards"; "period"; "window"; "depth"; "batch" ]
                ->
                  Some (Printf.sprintf "%s%d" k n)
              | _ -> None)
            fields
      | _ -> []
    in
    match tags with [] -> string_of_int i | ts -> String.concat "." ts
  in
  let rec go path v =
    match v with
    | Json.Int i -> out := (path, float_of_int i) :: !out
    | Json.Float f -> out := (path, f) :: !out
    | Json.Obj fields -> List.iter (fun (k, v) -> go (path ^ "." ^ k) v) fields
    | Json.List items ->
        List.iteri (fun i item -> go (path ^ "." ^ row_label i item) item) items
    | Json.Null | Json.Bool _ | Json.String _ -> ()
  in
  go "" json;
  List.rev !out

let gate_metric = ".engine.quiet.events_per_sec"

let compare_bench_json ~threshold ~old_file ~new_source =
  let load file = Json.parse (In_channel.with_open_text file In_channel.input_all) in
  match load old_file with
  | exception (Json.Parse_error msg | Sys_error msg) ->
      Format.eprintf "%s: %s@." old_file msg;
      1
  | old_json -> (
      let new_json =
        match new_source with
        | Some file -> (
            match load file with
            | exception (Json.Parse_error msg | Sys_error msg) ->
                Format.eprintf "%s: %s@." file msg;
                exit 1
            | v ->
                Format.printf "comparing %s (old) vs %s (new)@." old_file file;
                v)
        | None ->
            Format.printf
              "comparing %s (old) vs freshly measured baseline (new)@."
              old_file;
            bench_core_json ()
      in
      let old_m = collect_metrics old_json and new_m = collect_metrics new_json in
      let missing = ref 0 in
      Format.printf "%-64s %14s %14s %9s@." "metric" "old" "new" "delta";
      Format.printf "%s@." (String.make 104 '-');
      List.iter
        (fun (path, ov) ->
          match List.assoc_opt path new_m with
          | None -> incr missing
          | Some nv ->
              let delta =
                if Float.abs ov > 1e-12 then (nv -. ov) /. ov *. 100. else 0.
              in
              Format.printf "%-64s %14.4g %14.4g %+8.1f%%@." path ov nv delta)
        old_m;
      let only_new =
        List.length (List.filter (fun (p, _) -> List.assoc_opt p old_m = None) new_m)
      in
      if !missing > 0 then
        Format.printf "(%d metrics only in old baseline)@." !missing;
      if only_new > 0 then
        Format.printf "(%d metrics only in new baseline)@." only_new;
      match (List.assoc_opt gate_metric old_m, List.assoc_opt gate_metric new_m) with
      | Some ov, Some nv ->
          let floor = ov *. (1. -. (threshold /. 100.)) in
          if nv < floor then begin
            Format.eprintf
              "REGRESSION: %s fell %.1f%% (%.3g -> %.3g, threshold %.0f%%)@."
              gate_metric
              ((ov -. nv) /. ov *. 100.)
              ov nv threshold;
            1
          end
          else begin
            Format.printf "gate ok: %s %.3g -> %.3g (threshold %.0f%%)@."
              gate_metric ov nv threshold;
            0
          end
      | _ ->
          Format.eprintf "REGRESSION GATE: %s missing from a baseline@."
            gate_metric;
          1)

(* --- engine micro-bench smoke (S6) -------------------------------------

   A seconds-long sanity run for every PR: the flat and fiber quiet
   profiles must clear a catastrophic-failure floor.  The floor is far
   below the committed baseline on purpose — CI machines vary widely —
   it exists to catch the engine accidentally falling off the fast
   path (per-event closures, quiet tracing, O(n) queue ops). *)
let engine_smoke () =
  let flat_rate, flat_alloc = engine_flat_profile ~tracing:false ~iters:200_000 in
  let fiber_rate, fiber_alloc = engine_profile ~tracing:false ~iters:20_000 in
  Format.printf "engine smoke (quiet profiles)@.";
  Format.printf "  flat  : %10.3g events/sec  %6.1f B/event@." flat_rate
    flat_alloc;
  Format.printf "  fiber : %10.3g events/sec  %6.1f B/event@." fiber_rate
    fiber_alloc;
  let floor = 5e6 in
  if flat_rate < floor then begin
    Format.eprintf "FAIL: flat quiet %.3g events/sec below %.0e floor@."
      flat_rate floor;
    1
  end
  else begin
    Format.printf "ok: flat quiet clears the %.0e events/sec floor@." floor;
    0
  end

(* Rotate seeds so the benchmark averages over schedules instead of
   re-simulating one fixed run. *)
let rotating f =
  let seed = ref 0 in
  Staged.stage (fun () ->
      incr seed;
      f ((!seed mod 97) + 1))

let tests =
  Test.make_grouped ~name:"ooc"
    [
      Test.make_grouped ~name:"e1-e2.ben-or"
        [
          Test.make ~name:"decomposed.n8" (rotating (benor_run Ben_or.Runner.Decomposed));
          Test.make ~name:"monolithic.n8" (rotating (benor_run Ben_or.Runner.Monolithic));
          Test.make ~name:"decomposed.crashes" (rotating benor_crashy);
        ];
      Test.make_grouped ~name:"e3-e4.phase-king"
        [
          Test.make ~name:"decomposed.n10"
            (rotating (phase_king_run Phase_king.Runner.Decomposed));
          Test.make ~name:"monolithic.n10"
            (rotating (phase_king_run Phase_king.Runner.Monolithic));
          Test.make ~name:"decomposed.n19"
            (rotating (phase_king_run ~n:19 Phase_king.Runner.Decomposed));
        ];
      Test.make_grouped ~name:"e5-e6.raft"
        [
          Test.make ~name:"consensus.n5" (rotating (raft_run ~crash:false));
          Test.make ~name:"consensus.leader-crash" (rotating (raft_run ~crash:true));
          Test.make ~name:"decentralized.n7" (rotating decentralized_run);
        ];
      Test.make_grouped ~name:"e7.sharedmem"
        [
          Test.make ~name:"consensus.n6" (rotating sharedmem_run);
          Test.make ~name:"vac-from-two-ac.n5" (rotating vac_from_two_ac_run);
        ];
      Test.make_grouped ~name:"rsm"
        (List.map
           (fun b ->
             Test.make
               ~name:(Printf.sprintf "%s.n5" (Rsm.Backend.name b))
               (rotating (rsm_run b)))
           Rsm.Backend.all);
      Test.make_grouped ~name:"shard"
        [
          Test.make ~name:"ben-or.s4" (rotating (shard_run Rsm.Backend.ben_or));
          Test.make ~name:"raft.s4" (rotating (shard_run Rsm.Backend.raft));
          Test.make ~name:"ben-or.s1"
            (rotating (shard_run ~shards:1 Rsm.Backend.ben_or));
        ];
      Test.make_grouped ~name:"store"
        [
          Test.make ~name:"rsm.ben-or.wal"
            (rotating (rsm_durable_run ~snapshot_every:0 Rsm.Backend.ben_or));
          Test.make ~name:"rsm.ben-or.wal-snap4"
            (rotating (rsm_durable_run ~snapshot_every:4 Rsm.Backend.ben_or));
          Test.make ~name:"rsm.raft.wal"
            (rotating (rsm_durable_run ~snapshot_every:0 Rsm.Backend.raft));
        ];
      Test.make_grouped ~name:"nemesis"
        (List.map
           (fun b ->
             Test.make
               ~name:(Printf.sprintf "faulted-run.%s.n5" (Rsm.Backend.name b))
               (rotating (nemesis_run b)))
           Rsm.Backend.all);
      Test.make_grouped ~name:"mcheck"
        [
          (* Whole bounded explorations per iteration, so ns/run here is
             wall per frontier; the json baseline reports schedules/sec. *)
          Test.make ~name:"explore.toy-ac.d6"
            (Staged.stage (fun () ->
                 ignore
                   (Mcheck.Explorer.explore ~jobs:1
                      ~config:
                        { Mcheck.Explorer.default_config with depth = 6 }
                      (Mcheck.Models.toy_ac ~check_termination:true ())
                     : Mcheck.Explorer.report)));
          Test.make ~name:"explore.ben-or.d4"
            (Staged.stage (fun () ->
                 ignore
                   (Mcheck.Explorer.explore ~jobs:1
                      ~config:
                        { Mcheck.Explorer.default_config with depth = 4 }
                      (Mcheck.Models.benor ~check_termination:false ())
                     : Mcheck.Explorer.report)));
        ];
      (* E8 is the decomposed/monolithic pairs above read side by side. *)
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true
      ~compaction:false ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  (* Plain-text report: one line per test, nanoseconds per run. *)
  Format.printf "@.Bechamel micro-benchmarks (ns per simulated run, OLS fit)@.";
  Format.printf "%s@." (String.make 72 '-');
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Format.printf "%-44s %14.0f ns/run@." name est
      | Some _ | None -> Format.printf "%-44s (no estimate)@." name)
    (List.sort compare rows);
  Format.printf "@."

let rec arg_value key = function
  | [] -> None
  | flag :: value :: _ when flag = key -> Some value
  | _ :: rest -> arg_value key rest

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  (match arg_value "--validate-json" args with
  | Some file -> exit (validate_bench_json file)
  | None -> ());
  (match arg_value "--compare" args with
  | Some old_file ->
      let threshold =
        match arg_value "--compare-threshold" args with
        | Some s -> (
            match float_of_string_opt s with
            | Some t when t > 0. -> t
            | _ ->
                Format.eprintf "bad --compare-threshold %S@." s;
                exit 2)
        | None -> 20.
      in
      exit
        (compare_bench_json ~threshold ~old_file
           ~new_source:(arg_value "--compare-to" args))
  | None -> ());
  if has "--engine-smoke" then exit (engine_smoke ());
  if has "--json" then begin
    write_bench_json
      (Option.value (arg_value "--json-out" args) ~default:"BENCH_core.json");
    exit 0
  end;
  let scale =
    if has "full" then Workload.Experiments.Full else Workload.Experiments.Quick
  in
  if not (has "bench-only") then begin
    Format.printf "Experiment tables (scale: %s) — paper-shape checks@.@."
      (if scale = Workload.Experiments.Full then "full" else "quick");
    Workload.Experiments.run_all ~scale Format.std_formatter;
    (* RSM batching throughput: acked cmds per 1000 virtual-time units at
       batch sizes {1, 8, 32} — batching should win monotonically. *)
    let summaries =
      if scale = Workload.Experiments.Full then
        Workload.Rsm_load.sweep_batches Format.std_formatter
      else
        Workload.Rsm_load.sweep_batches ~clients:12 ~commands:3 ~seeds:1
          Format.std_formatter
    in
    if List.exists (fun s -> not s.Workload.Rsm_load.ok) summaries then
      Format.printf "WARNING: some RSM sweep cells reported violations@.";
    (* Sharded scaling: the same traffic at 1/2/4 shards — single-shard
       ops/kvt should grow with the shard count. *)
    let shard_cells =
      let seeds = if scale = Workload.Experiments.Full then 3 else 1 in
      Workload.Shard_load.sweep_shards ~shard_counts:[ 1; 2; 4 ]
        ~load:shard_bench_load ~seeds ~backends:[ Rsm.Backend.ben_or ]
        Format.std_formatter
    in
    if List.exists (fun s -> not s.Workload.Shard_load.ok) shard_cells then
      Format.printf "WARNING: some shard sweep cells reported violations@.";
    store_overhead_table ~scale Format.std_formatter;
    nemesis_campaign_table ~scale Format.std_formatter
  end;
  if not (has "tables-only") then run_benchmarks ()
