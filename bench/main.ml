(* Benchmark harness.

   Two parts, mirroring the per-experiment index in DESIGN.md:

   1. The table harness — regenerates every experiment table (E1..E8) by
      calling [Workload.Experiments], exactly what `oocon experiments`
      does.  Pass "tables-only" or "bench-only" to run half.  Pass "full"
      for the full-scale workloads (default: quick).

   2. Bechamel micro-benchmarks — one [Test.make] per experiment id,
      timing the core simulated run each table is built from, plus the
      decomposed-vs-monolithic pairs behind E8's modularity-cost claim. *)

open Bechamel
open Toolkit

let split_inputs n = Array.init n (fun i -> i mod 2 = 0)

(* --- benchmark bodies (one representative run per experiment) ---------- *)

let benor_run mode seed =
  let cfg =
    {
      (Ben_or.Runner.default_config ~n:8 ~inputs:(split_inputs 8)) with
      seed = Int64.of_int seed;
      mode;
    }
  in
  ignore (Ben_or.Runner.run cfg : Ben_or.Runner.report)

let benor_crashy seed =
  let cfg =
    {
      (Ben_or.Runner.default_config ~n:8 ~inputs:(split_inputs 8)) with
      seed = Int64.of_int seed;
      crash_schedule = [ (10, 0); (21, 2); (32, 4) ];
    }
  in
  ignore (Ben_or.Runner.run cfg : Ben_or.Runner.report)

let phase_king_run ?(n = 10) mode seed =
  let cfg =
    {
      (Phase_king.Runner.default_config ~n ~inputs:(Array.init n (fun i -> i mod 2)))
      with
      seed = Int64.of_int seed;
      strategy = Phase_king.Strategies.camp_splitter;
      mode;
    }
  in
  ignore (Phase_king.Runner.run cfg : Phase_king.Runner.report)

let raft_run ?(crash = false) seed =
  let cl = Raft.Cluster.create ~seed:(Int64.of_int seed) ~n:5 () in
  let cons =
    Raft.Consensus_raft.create ~cluster:cl ~inputs:(Array.init 5 (fun i -> 100 + i))
  in
  Raft.Cluster.start cl;
  if crash then begin
    ignore
      (Raft.Cluster.run_until cl (fun () -> Raft.Cluster.current_leader cl <> None)
      : bool);
    match Raft.Cluster.current_leader cl with
    | Some l -> Raft.Cluster.crash cl l
    | None -> ()
  end;
  ignore (Raft.Consensus_raft.run_until_all_decided ~timeout:300_000 cons : bool)

module Sm = Sharedmem.Protocol.Make (Consensus.Objects.Bool_value)

let sharedmem_run seed =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
  let world = Sharedmem.World.create eng () in
  let shared = Sm.create_shared ~n:6 world in
  for i = 0 to 5 do
    ignore
      (Dsim.Engine.spawn eng (fun ectx ->
           let ctx = { Sm.shared; proc = { Sharedmem.World.world; me = i; ectx } } in
           ignore (Sm.Consensus_sm.consensus ctx (i mod 2 = 0) : bool * int))
      : Dsim.Engine.pid)
  done;
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome)

let vac_from_two_ac_run seed =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
  let world = Sharedmem.World.create eng () in
  let shared = Sm.create_shared ~n:5 world in
  for i = 0 to 4 do
    ignore
      (Dsim.Engine.spawn eng (fun ectx ->
           let ctx = { Sm.shared; proc = { Sharedmem.World.world; me = i; ectx } } in
           ignore (Sm.Vac.invoke ctx ~round:1 (i mod 2 = 0) : bool Consensus.Types.vac_result))
      : Dsim.Engine.pid)
  done;
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome)

let decentralized_run seed =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) ~trace_capacity:1_000 () in
  let net = Netsim.Async_net.create eng ~n:7 ~retain_inbox:false () in
  for i = 0 to 6 do
    ignore
      (Dsim.Engine.spawn eng (fun _ectx ->
           let ctx =
             Raft.Decentralized.make_ctx ~net ~me:i ~faults:3 ~input:(100 + (i mod 3))
           in
           ignore
             (Raft.Decentralized.Consensus_decentralized.consensus ~max_rounds:500 ctx
                (100 + (i mod 3))
             : int * int))
      : Dsim.Engine.pid)
  done;
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome)

let rsm_run backend seed =
  ignore
    (Workload.Rsm_load.run_one ~n:5 ~clients:4 ~commands:2 ~batch:8 ~seed ~backend ()
      : Rsm.Runner.report * Workload.Rsm_load.summary)

let rsm_durable_run ~snapshot_every backend seed =
  let store = { Rsm.Runner.default_store_config with snapshot_every } in
  ignore
    (Workload.Rsm_load.run_one ~n:5 ~clients:4 ~commands:2 ~batch:8 ~seed ~store
       ~backend ()
      : Rsm.Runner.report * Workload.Rsm_load.summary)

(* WAL overhead and snapshot/compaction cost vs the in-memory baseline:
   same workload three ways — no store, WAL only (ack gated on fsync, no
   snapshots), WAL + snapshot-every-4.  Virtual time measures protocol
   cost (fsync stalls, floor round-trips); appends/fsyncs/compacted come
   straight from the disks' counters. *)
let store_overhead_table ~scale ppf =
  let clients, commands = if scale = Workload.Experiments.Full then (6, 6) else (4, 3) in
  Format.fprintf ppf
    "@.Durable-store overhead (n=5, %d clients x %d cmds, seed-averaged x3)@."
    clients commands;
  Format.fprintf ppf
    "%-12s %-14s %8s %10s %8s %8s %6s %10s@." "backend" "store" "vt"
    "thr/kvt" "appends" "fsyncs" "snaps" "compacted";
  List.iter
    (fun backend ->
      List.iter
        (fun (label, store) ->
          let runs =
            List.map
              (fun seed ->
                Workload.Rsm_load.run_one ~n:5 ~clients ~commands ~batch:4
                  ~seed ?store ~backend ())
              [ 1; 2; 3 ]
          in
          let avg f =
            List.fold_left (fun a r -> a + f r) 0 runs / List.length runs
          in
          let vt = avg (fun (r, _) -> r.Rsm.Runner.virtual_time) in
          let thr =
            List.fold_left
              (fun a (_, s) -> a +. s.Workload.Rsm_load.throughput)
              0. runs
            /. float_of_int (List.length runs)
          in
          let sum_stats f =
            avg (fun (r, _) ->
                Array.fold_left (fun a st -> a + f st) 0 r.Rsm.Runner.store_stats)
          in
          Format.fprintf ppf "%-12s %-14s %8d %10.2f %8d %8d %6d %10d@."
            (Rsm.Backend.name backend) label vt thr
            (sum_stats (fun st -> st.Store.Disk.appends))
            (sum_stats (fun st -> st.Store.Disk.fsyncs))
            (sum_stats (fun st -> st.Store.Disk.snapshots_taken))
            (sum_stats (fun st -> st.Store.Disk.compacted_records));
          if List.exists (fun (_, s) -> not s.Workload.Rsm_load.ok) runs then
            Format.fprintf ppf "  WARNING: %s/%s reported violations@."
              (Rsm.Backend.name backend) label)
        [
          ("none", None);
          ("wal", Some { Rsm.Runner.default_store_config with snapshot_every = 0 });
          ("wal+snap4", Some Rsm.Runner.default_store_config);
        ])
    Rsm.Backend.all

(* One fault-injected RSM run: generate a seeded plan, install it, audit. *)
let nemesis_run backend seed =
  let cfg = Nemesis.Campaign.default_config ~n:5 () in
  let plan = Nemesis.Campaign.plan_for cfg ~seed in
  ignore
    (Nemesis.Campaign.run_plan cfg ~backend ~seed plan : Rsm.Runner.report)

(* Campaign throughput: a whole seeded sweep through the safety auditor,
   reported as runs/sec and faults injected (the numbers `oocon nemesis`
   prints), one backend to keep the quick scale quick. *)
let nemesis_campaign_table ~scale ppf =
  let plans = if scale = Workload.Experiments.Full then 200 else 40 in
  let cfg =
    {
      (Nemesis.Campaign.default_config ~n:5 ()) with
      Nemesis.Campaign.backends = [ Rsm.Backend.ben_or ];
      plans;
    }
  in
  let r = Nemesis.Campaign.run cfg in
  Format.fprintf ppf
    "@.Nemesis campaign (ben-or, %d plans): %d runs, %d faults injected, \
     %.0f runs/sec, %d safety failures, %d incomplete@."
    plans r.Nemesis.Campaign.runs r.Nemesis.Campaign.faults_injected
    r.Nemesis.Campaign.runs_per_sec
    (List.length r.Nemesis.Campaign.safety_failures)
    (List.length r.Nemesis.Campaign.incomplete)

(* Rotate seeds so the benchmark averages over schedules instead of
   re-simulating one fixed run. *)
let rotating f =
  let seed = ref 0 in
  Staged.stage (fun () ->
      incr seed;
      f ((!seed mod 97) + 1))

let tests =
  Test.make_grouped ~name:"ooc"
    [
      Test.make_grouped ~name:"e1-e2.ben-or"
        [
          Test.make ~name:"decomposed.n8" (rotating (benor_run Ben_or.Runner.Decomposed));
          Test.make ~name:"monolithic.n8" (rotating (benor_run Ben_or.Runner.Monolithic));
          Test.make ~name:"decomposed.crashes" (rotating benor_crashy);
        ];
      Test.make_grouped ~name:"e3-e4.phase-king"
        [
          Test.make ~name:"decomposed.n10"
            (rotating (phase_king_run Phase_king.Runner.Decomposed));
          Test.make ~name:"monolithic.n10"
            (rotating (phase_king_run Phase_king.Runner.Monolithic));
          Test.make ~name:"decomposed.n19"
            (rotating (phase_king_run ~n:19 Phase_king.Runner.Decomposed));
        ];
      Test.make_grouped ~name:"e5-e6.raft"
        [
          Test.make ~name:"consensus.n5" (rotating (raft_run ~crash:false));
          Test.make ~name:"consensus.leader-crash" (rotating (raft_run ~crash:true));
          Test.make ~name:"decentralized.n7" (rotating decentralized_run);
        ];
      Test.make_grouped ~name:"e7.sharedmem"
        [
          Test.make ~name:"consensus.n6" (rotating sharedmem_run);
          Test.make ~name:"vac-from-two-ac.n5" (rotating vac_from_two_ac_run);
        ];
      Test.make_grouped ~name:"rsm"
        (List.map
           (fun b ->
             Test.make
               ~name:(Printf.sprintf "%s.n5" (Rsm.Backend.name b))
               (rotating (rsm_run b)))
           Rsm.Backend.all);
      Test.make_grouped ~name:"store"
        [
          Test.make ~name:"rsm.ben-or.wal"
            (rotating (rsm_durable_run ~snapshot_every:0 Rsm.Backend.ben_or));
          Test.make ~name:"rsm.ben-or.wal-snap4"
            (rotating (rsm_durable_run ~snapshot_every:4 Rsm.Backend.ben_or));
          Test.make ~name:"rsm.raft.wal"
            (rotating (rsm_durable_run ~snapshot_every:0 Rsm.Backend.raft));
        ];
      Test.make_grouped ~name:"nemesis"
        (List.map
           (fun b ->
             Test.make
               ~name:(Printf.sprintf "faulted-run.%s.n5" (Rsm.Backend.name b))
               (rotating (nemesis_run b)))
           Rsm.Backend.all);
      (* E8 is the decomposed/monolithic pairs above read side by side. *)
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true
      ~compaction:false ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  (* Plain-text report: one line per test, nanoseconds per run. *)
  Format.printf "@.Bechamel micro-benchmarks (ns per simulated run, OLS fit)@.";
  Format.printf "%s@." (String.make 72 '-');
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Format.printf "%-44s %14.0f ns/run@." name est
      | Some _ | None -> Format.printf "%-44s (no estimate)@." name)
    (List.sort compare rows);
  Format.printf "@."

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let scale =
    if has "full" then Workload.Experiments.Full else Workload.Experiments.Quick
  in
  if not (has "bench-only") then begin
    Format.printf "Experiment tables (scale: %s) — paper-shape checks@.@."
      (if scale = Workload.Experiments.Full then "full" else "quick");
    Workload.Experiments.run_all ~scale Format.std_formatter;
    (* RSM batching throughput: acked cmds per 1000 virtual-time units at
       batch sizes {1, 8, 32} — batching should win monotonically. *)
    let summaries =
      if scale = Workload.Experiments.Full then
        Workload.Rsm_load.sweep_batches Format.std_formatter
      else
        Workload.Rsm_load.sweep_batches ~clients:12 ~commands:3 ~seeds:1
          Format.std_formatter
    in
    if List.exists (fun s -> not s.Workload.Rsm_load.ok) summaries then
      Format.printf "WARNING: some RSM sweep cells reported violations@.";
    store_overhead_table ~scale Format.std_formatter;
    nemesis_campaign_table ~scale Format.std_formatter
  end;
  if not (has "tables-only") then run_benchmarks ()
