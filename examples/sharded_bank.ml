(* A bank sharded across four consensus groups.

   Accounts are hash-partitioned over the shards by the router; a
   transfer between accounts on different shards is a cross-shard
   transaction — two W_add write-ops (debit, credit) run through 2PC
   over the consensus logs.  Money conservation is the classic
   atomicity probe: if a commit ever applied at one shard but not the
   other, the total balance drifts.  We check it two ways: the
   cross-shard checker certifies every transaction's votes/outcomes,
   and we sum the final balances directly off a live replica of every
   shard — committed and aborted transfers alike must leave the total
   at zero.

     dune exec examples/sharded_bank.exe *)

let shards = 4
let accounts = 64
let clients = 24
let transfers_each = 4

let acct i = Printf.sprintf "acct%d" i

let () =
  Format.printf "sharded bank: %d accounts over %d shards, %d clients x %d \
                 transfers@.@."
    accounts shards clients transfers_each;
  (* Every client's ops are cross-shard transfers between two random
     accounts: debit one, credit the other, atomically or not at all. *)
  let rng = Dsim.Rng.create 99L in
  let ops =
    Array.init clients (fun _ ->
        List.init transfers_each (fun _ ->
            let from_ = Dsim.Rng.int rng accounts in
            let to_ = (from_ + 1 + Dsim.Rng.int rng (accounts - 1)) mod accounts in
            let amount = 1 + Dsim.Rng.int rng 100 in
            Shard.Runner.Tx
              [
                Shard.Cmd.W_add (acct from_, -amount);
                Shard.Cmd.W_add (acct to_, amount);
              ]))
  in
  let cfg =
    {
      (Shard.Runner.default_config ~shards ~ops) with
      Shard.Runner.backend = Rsm.Backend.ben_or;
      seed = 7L;
    }
  in
  let r = Shard.Runner.run cfg in
  Format.printf "%d transfers: %d committed, %d aborted (lock conflicts)@."
    r.Shard.Runner.txs_started r.Shard.Runner.txs_committed
    r.Shard.Runner.txs_aborted;
  (* 1. The checker's verdict on every vote and outcome. *)
  let checker_problems =
    r.Shard.Runner.atomicity @ r.Shard.Runner.tx_completeness
  in
  List.iter
    (fun v -> Format.printf "  %a@." Shard.Checker.pp_violation v)
    checker_problems;
  let shard_problems =
    Array.exists
      (fun (sr : Shard.Runner.shard_report) ->
        sr.Shard.Runner.sr_violations <> []
        || (not sr.Shard.Runner.sr_digests_agree)
        || sr.Shard.Runner.sr_completeness <> [])
      r.Shard.Runner.shard_reports
  in
  (* 2. Money conservation, read off a live replica of every shard. *)
  let total = ref 0 in
  for a = 0 to accounts - 1 do
    let shard = Shard.Router.shard_of_key r.Shard.Runner.router (acct a) in
    let group = r.Shard.Runner.groups.(shard) in
    let replica = List.hd (Shard.Group.live group) in
    let balance =
      match Shard.Machine.lookup (Shard.Group.machine group replica) (acct a) with
      | Some v -> int_of_string v
      | None -> 0
    in
    total := !total + balance
  done;
  Format.printf "total balance across all shards: %d (must be 0)@." !total;
  if checker_problems = [] && (not shard_problems) && !total = 0 then
    Format.printf
      "@.atomicity certified: every transfer committed everywhere or \
       nowhere; money conserved@."
  else begin
    Format.printf "@.ATOMICITY FAILURE@.";
    exit 1
  end
