(* A replicated key-value store on the RSM subsystem, Raft backend.

   The earlier version of this example drove the Raft cluster machinery
   directly, parsing "SET key value" strings by hand.  Now that lib/rsm
   lifts one-shot consensus into a replicated state machine, a
   downstream system gets the same result from the typed KV interface:
   closed-loop clients submit [Set]/[Get]/[Cas] commands, the
   total-order-broadcast layer batches them into numbered log slots,
   each slot is decided by nested Raft consensus instances, and the
   checker certifies the total order — through two replica crashes.

     dune exec examples/raft_kv.exe *)

let () =
  let n = 5 in
  let ops =
    [|
      (* client 0 writes, then checks its own write is visible *)
      [
        Obj.Kv.Set ("currency", "OCaml");
        Obj.Kv.Set ("paper", "object-oriented-consensus");
        Obj.Kv.Get "currency";
      ];
      (* client 1 races client 2 on the same key via CAS *)
      [
        Obj.Kv.Set ("lock", "free");
        Obj.Kv.Cas { key = "lock"; expect = Some "free"; update = "held-by-1" };
        Obj.Kv.Set ("survivor", "true");
      ];
      [
        Obj.Kv.Cas { key = "lock"; expect = Some "free"; update = "held-by-2" };
        Obj.Kv.Set ("partition", "tolerated");
        Obj.Kv.Get "lock";
      ];
    |]
  in
  let cfg =
    {
      (Rsm.Runner.default_config ~n ~ops) with
      backend = Rsm.Backend.raft;
      batch = 4;
      seed = 11L;
      (* crash two replicas mid-stream: a minority, so the RSM keeps going *)
      crash_schedule = [ (50, 0); (120, 3) ];
    }
  in
  let r = Rsm.Runner.run Workload.Rsm_load.kv_app cfg in
  Format.printf "replicated KV over %s consensus: n=%d, %d commands@."
    (Rsm.Backend.name cfg.backend) n r.Rsm.Runner.submitted;
  Format.printf "%d/%d acked in %d slots (%d nested consensus instances, t=%d)@."
    r.Rsm.Runner.acked r.Rsm.Runner.submitted r.Rsm.Runner.slots
    r.Rsm.Runner.instances r.Rsm.Runner.virtual_time;
  List.iter (Format.printf "crashed replica p%d mid-run@.") r.Rsm.Runner.crashed;
  Array.iteri
    (fun pid digest ->
      let crashed = List.mem pid r.Rsm.Runner.crashed in
      Format.printf "replica %d%s: applied %d, state {%s}@." pid
        (if crashed then " (crashed)" else "")
        r.Rsm.Runner.delivered.(pid)
        (if crashed then "..." else digest))
    r.Rsm.Runner.digests;
  match r.Rsm.Runner.violations @ r.Rsm.Runner.completeness with
  | [] when r.Rsm.Runner.digests_agree ->
      Format.printf
        "total order, integrity, completeness held; live replicas agree@."
  | vs ->
      List.iter (Format.printf "VIOLATION: %a@." Rsm.Checker.pp_violation) vs;
      if not r.Rsm.Runner.digests_agree then
        Format.printf "VIOLATION: live replica digests diverged@.";
      exit 1
