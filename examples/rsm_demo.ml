(* The same replicated-KV workload over every consensus backend.

   The point of the RSM subsystem is that the state-machine layer is
   indifferent to which one-shot consensus protocol decides each log
   slot — Ben-Or's randomized protocol, Phase-King, or the paper's
   decomposed Raft template all slot in behind the same first-class
   module interface.  This demo runs one fixed workload (with a replica
   crash) over each backend and prints the resulting scorecards: same
   total order guarantees, different latency profiles.

     dune exec examples/rsm_demo.exe *)

let () =
  Format.printf "one workload, three consensus backends (n=5, 1 crash)@.@.";
  let summaries =
    List.map
      (fun backend ->
        let _r, s =
          Workload.Rsm_load.run_one ~n:5 ~clients:6 ~commands:4 ~batch:8
            ~crashes:1 ~seed:7 ~backend ()
        in
        Format.printf
          "%-10s  %2d/%2d acked  %2d slots  %3d instances  t=%-6d  %s@."
          s.Workload.Rsm_load.backend_name s.Workload.Rsm_load.acked
          s.Workload.Rsm_load.commands s.Workload.Rsm_load.slots
          s.Workload.Rsm_load.instances s.Workload.Rsm_load.virtual_time
          (if s.Workload.Rsm_load.ok then "order certified" else "VIOLATIONS");
        s)
      Rsm.Backend.all
  in
  Format.printf "@.";
  if List.for_all (fun s -> s.Workload.Rsm_load.ok) summaries then
    Format.printf "all three backends produced a certified total order@."
  else begin
    Format.printf "some backend violated the total-order checker@.";
    exit 1
  end
